// Recovery drill (ISSUE 5 acceptance): crash the streaming engine after
// every epoch k across 3 seeds, resume from the latest snapshot, and assert
// the remaining epoch reports (the golden byte-compare surface), the
// horizon-wide churn mean, and the journal tail are byte-identical to an
// uninterrupted run — at serial and parallel thread counts. Corrupted /
// mismatched snapshots must be rejected with typed errors (or fall back to
// the next-oldest valid snapshot), never resumed divergently.
#include "sim/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/observe.hpp"
#include "sim/timeline_io.hpp"
#include "state/checkpoint.hpp"
#include "state/snapshot.hpp"
#include "state/store.hpp"

namespace vdx::sim {
namespace {

constexpr double kEpochSeconds = 600.0;  // 3600s trace horizon -> 6 epochs

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vdx_recovery_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

state::RunFingerprint fingerprint_for(std::uint64_t seed) {
  state::RunFingerprint fingerprint;
  fingerprint.seed = seed;
  fingerprint.design = static_cast<std::uint8_t>(Design::kMarketplace);
  fingerprint.broker_sessions = 800;
  fingerprint.duration_s = 3600.0;
  fingerprint.epoch_s = kEpochSeconds;
  fingerprint.config_hash = 0x5EED;
  return fingerprint;
}

Scenario build_scenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.trace.session_count = 800;
  config.seed = seed;
  return Scenario::build(config);
}

struct DrillOptions {
  std::uint64_t seed = 11;
  std::size_t threads = 1;
  std::size_t journal_capacity = 512;
  /// 0 = run to completion; k = simulated crash after k executed epochs.
  std::size_t halt_after = 0;
  std::size_t keep = 16;
};

struct DrillRun {
  StreamingResult result;
  std::vector<obs::Event> journal;
};

StreamingConfig drill_config(const DrillOptions& options, state::CheckpointStore* store,
                             obs::Observer obs) {
  StreamingConfig config;
  config.design = Design::kMarketplace;
  config.run.threads = options.threads;
  config.epoch_s = kEpochSeconds;
  config.obs = obs;
  config.checkpoint.every_epochs = 1;
  config.checkpoint.store = store;
  config.checkpoint.fingerprint = fingerprint_for(options.seed);
  config.halt_after_epochs = options.halt_after;
  return config;
}

/// Runs (or crashes) a checkpointed streaming run into `dir`.
DrillRun run_drill(const Scenario& scenario, const std::filesystem::path& dir,
                   const DrillOptions& options) {
  obs::MetricsRegistry metrics;
  obs::RunJournal journal{options.journal_capacity};
  const obs::Observer obs{&metrics, nullptr, &journal};
  state::CheckpointStore store{dir, options.keep, obs};
  const StreamingConfig config = drill_config(options, &store, obs);

  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  DrillRun run;
  run.result = StreamingTimeline{scenario, config}.run(broker, background);
  run.journal = journal.events();
  return run;
}

/// Resumes from the latest valid snapshot in `dir` and plays to the end.
core::Result<DrillRun> resume_drill(const Scenario& scenario,
                                    const std::filesystem::path& dir,
                                    const DrillOptions& options) {
  obs::MetricsRegistry metrics;
  obs::RunJournal journal{options.journal_capacity};
  const obs::Observer obs{&metrics, nullptr, &journal};
  state::CheckpointStore store{dir, options.keep, obs};
  const StreamingConfig config = drill_config(options, &store, obs);

  const auto loaded = store.load_latest([&](std::span<const std::uint8_t> bytes) {
    auto decoded = state::decode_timeline(bytes);
    if (!decoded.ok()) return core::Status{decoded.error()};
    if (!(decoded.value().fingerprint == config.checkpoint.fingerprint)) {
      return core::Status::failure(core::Errc::kInvalidArgument,
                                   "fingerprint mismatch");
    }
    return core::ok_status();
  });
  if (!loaded.ok()) return core::Result<DrillRun>{loaded.error()};

  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  auto resumed = StreamingTimeline{scenario, config}.resume(broker, background,
                                                            loaded.value().bytes);
  if (!resumed.ok()) return core::Result<DrillRun>{resumed.error()};
  DrillRun run;
  run.result = std::move(resumed).value();
  run.journal = journal.events();
  EXPECT_DOUBLE_EQ(metrics.counter("state.resumes").value(), 1.0);
  return run;
}

/// The golden byte-compare surface restricted to epochs >= start_epoch, with
/// the horizon-wide churn mean (which the resumed run must also reproduce).
std::string tail_jsonl(const DrillRun& full, std::size_t start_epoch) {
  TimelineResult tail;
  for (const EpochReport& report : full.result.timeline.epochs) {
    if (report.epoch >= start_epoch) tail.epochs.push_back(report);
  }
  tail.mean_cdn_switch_fraction = full.result.timeline.mean_cdn_switch_fraction;
  return epoch_reports_jsonl(tail);
}

/// Journals must agree event-for-event except the one seq slot where the
/// uninterrupted run recorded kCheckpoint and the resumed run kResume (same
/// seq, subject, value — the snapshot is byte-deterministic). A small ring
/// may have already overwritten that slot, leaving zero differences.
void expect_journal_tail_identical(const std::vector<obs::Event>& full,
                                   const std::vector<obs::Event>& resumed) {
  ASSERT_EQ(full.size(), resumed.size());
  std::size_t differences = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == resumed[i]) continue;
    ++differences;
    EXPECT_EQ(full[i].kind, obs::EventKind::kCheckpoint);
    EXPECT_EQ(resumed[i].kind, obs::EventKind::kResume);
    obs::Event renamed = full[i];
    renamed.kind = obs::EventKind::kResume;
    EXPECT_EQ(renamed, resumed[i]) << "event " << i
                                   << " differs beyond the checkpoint/resume kind";
  }
  EXPECT_LE(differences, 1u);
}

void expect_crash_resume_equivalent(const Scenario& scenario, const DrillRun& full,
                                    std::uint64_t seed, std::size_t crash_after,
                                    std::size_t threads,
                                    const std::filesystem::path& full_dir) {
  TempDir crash_dir{"crash_s" + std::to_string(seed) + "_k" +
                    std::to_string(crash_after) + "_t" + std::to_string(threads)};
  DrillOptions options;
  options.seed = seed;
  options.threads = threads;

  options.halt_after = crash_after;
  (void)run_drill(scenario, crash_dir.path(), options);

  options.halt_after = 0;
  const auto resumed = resume_drill(scenario, crash_dir.path(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message;

  // The crash landed after epoch crash_after - 1, whose snapshot resumes at
  // crash_after; the tail and the horizon-wide mean must match bytewise.
  EXPECT_EQ(epoch_reports_jsonl(resumed.value().result.timeline),
            tail_jsonl(full, crash_after))
      << "seed=" << seed << " crash_after=" << crash_after << " threads=" << threads;
  expect_journal_tail_identical(full.journal, resumed.value().journal);

  // Crash+resume must also reproduce the uninterrupted run's snapshots
  // wherever the two directories hold the same epoch. The embedded journal
  // is the one legitimate difference — a post-resume snapshot's history
  // contains the kResume event where the uninterrupted run's has
  // kCheckpoint — so compare the decoded state with journals factored out.
  for (const auto& entry : std::filesystem::directory_iterator{crash_dir.path()}) {
    const std::filesystem::path twin = full_dir / entry.path().filename();
    if (!std::filesystem::exists(twin)) continue;
    const auto ours = state::read_file(entry.path());
    const auto theirs = state::read_file(twin);
    ASSERT_TRUE(ours.ok() && theirs.ok());
    auto resumed_side = state::decode_timeline(ours.value());
    auto full_side = state::decode_timeline(theirs.value());
    ASSERT_TRUE(resumed_side.ok() && full_side.ok());
    expect_journal_tail_identical(full_side.value().journal.events,
                                  resumed_side.value().journal.events);
    EXPECT_EQ(resumed_side.value().journal.total, full_side.value().journal.total);
    EXPECT_EQ(resumed_side.value().journal.round, full_side.value().journal.round);
    resumed_side.value().journal = state::JournalState{};
    full_side.value().journal = state::JournalState{};
    EXPECT_EQ(state::encode(resumed_side.value()), state::encode(full_side.value()))
        << entry.path().filename() << " diverged after resume";
  }
}

TEST(RecoveryDrill, CrashAtEveryEpochMatchesUninterruptedRun) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const Scenario scenario = build_scenario(seed);
    TempDir full_dir{"full_s" + std::to_string(seed)};
    DrillOptions options;
    options.seed = seed;
    const DrillRun full = run_drill(scenario, full_dir.path(), options);
    ASSERT_GE(full.result.timeline.epochs.size(), 4u);

    const auto epochs = static_cast<std::size_t>(
        std::ceil(scenario.broker_trace().duration_s() / kEpochSeconds));
    for (std::size_t crash_after = 1; crash_after < epochs; ++crash_after) {
      expect_crash_resume_equivalent(scenario, full, seed, crash_after, 1,
                                     full_dir.path());
    }
  }
}

TEST(RecoveryDrill, CrashResumeIsThreadCountInvariant) {
  const std::uint64_t seed = 11;
  const Scenario scenario = build_scenario(seed);
  TempDir full_dir{"full_threads"};
  DrillOptions options;
  options.seed = seed;
  const DrillRun full = run_drill(scenario, full_dir.path(), options);

  // The serial uninterrupted run is the reference; the crashed and resumed
  // halves both run parallel. Byte-identity across thread counts is the
  // engine's standing guarantee and must survive a checkpoint boundary.
  expect_crash_resume_equivalent(scenario, full, seed, 2, 4, full_dir.path());
}

TEST(RecoveryDrill, JournalSurvivesRingWrapAcrossResume) {
  // Capacity 8 forces the ring to wrap during the run, so the restore path
  // re-seats a wrapped window rather than a from-the-start one.
  const std::uint64_t seed = 22;
  const Scenario scenario = build_scenario(seed);
  TempDir full_dir{"full_wrap"};
  DrillOptions options;
  options.seed = seed;
  options.journal_capacity = 8;
  const DrillRun full = run_drill(scenario, full_dir.path(), options);

  TempDir crash_dir{"crash_wrap"};
  options.halt_after = 4;
  (void)run_drill(scenario, crash_dir.path(), options);
  options.halt_after = 0;
  const auto resumed = resume_drill(scenario, crash_dir.path(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message;
  expect_journal_tail_identical(full.journal, resumed.value().journal);
  // Seqs stay strictly monotone and dense across crash + wrap.
  for (std::size_t i = 1; i < resumed.value().journal.size(); ++i) {
    EXPECT_EQ(resumed.value().journal[i].seq, resumed.value().journal[i - 1].seq + 1);
  }
}

TEST(RecoveryDrill, CorruptedLatestSnapshotFallsBackOneInterval) {
  const std::uint64_t seed = 33;
  const Scenario scenario = build_scenario(seed);
  TempDir full_dir{"full_fallback"};
  DrillOptions options;
  options.seed = seed;
  const DrillRun full = run_drill(scenario, full_dir.path(), options);

  TempDir crash_dir{"crash_fallback"};
  options.halt_after = 3;  // snapshots after epochs 0, 1, 2
  (void)run_drill(scenario, crash_dir.path(), options);

  // Flip one payload bit in the newest snapshot: recovery must reject it and
  // resume from epoch 1's snapshot instead — one interval earlier, still
  // byte-identical from epoch 2 onward.
  {
    const std::filesystem::path newest = crash_dir.path() / "checkpoint-00000002.vdxsnap";
    ASSERT_TRUE(std::filesystem::exists(newest));
    std::fstream file{newest, std::ios::in | std::ios::out | std::ios::binary};
    file.seekg(20);
    const char original = static_cast<char>(file.get());
    file.seekp(20);
    file.put(static_cast<char>(original ^ 0x10));
  }

  options.halt_after = 0;
  const auto resumed = resume_drill(scenario, crash_dir.path(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.error().message;
  EXPECT_EQ(epoch_reports_jsonl(resumed.value().result.timeline), tail_jsonl(full, 2));
}

TEST(RecoveryDrill, ResumeRejectsFingerprintMismatch) {
  const Scenario scenario = build_scenario(11);
  TempDir dir{"fingerprint"};
  DrillOptions options;
  options.seed = 11;
  options.halt_after = 2;
  (void)run_drill(scenario, dir.path(), options);

  // A run configured with a different seed must refuse the snapshot.
  options.seed = 999;
  options.halt_after = 0;
  const auto resumed = resume_drill(scenario, dir.path(), options);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, core::Errc::kInvalidArgument);
}

TEST(RecoveryDrill, ResumeRejectsOutOfHorizonCheckpoint) {
  const Scenario scenario = build_scenario(11);
  state::TimelineCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint_for(11);
  checkpoint.next_epoch = 999;  // far past the 6-epoch horizon
  const std::vector<std::uint8_t> bytes = state::encode(checkpoint);

  StreamingConfig config;
  config.epoch_s = kEpochSeconds;
  config.checkpoint.fingerprint = fingerprint_for(11);
  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  const auto resumed =
      StreamingTimeline{scenario, config}.resume(broker, background, bytes);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, core::Errc::kCorruptSnapshot);
}

TEST(RecoveryDrill, ResumeRejectsInternallyInconsistentCursor) {
  const Scenario scenario = build_scenario(11);
  state::TimelineCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint_for(11);
  checkpoint.next_epoch = 1;
  // Cursor positioned past the trace horizon: decode succeeds (the envelope
  // and section grammar are fine) but the stream seek must reject it, and
  // resume() surfaces that as typed corruption rather than a crash.
  checkpoint.broker.consumed = 1'000'000;
  const std::vector<std::uint8_t> bytes = state::encode(checkpoint);

  StreamingConfig config;
  config.epoch_s = kEpochSeconds;
  config.checkpoint.fingerprint = fingerprint_for(11);
  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  const auto resumed =
      StreamingTimeline{scenario, config}.resume(broker, background, bytes);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, core::Errc::kCorruptSnapshot);
}

}  // namespace
}  // namespace vdx::sim
