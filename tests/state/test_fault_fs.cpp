// state::FaultFs crash model + the crash-at-every-syscall-boundary sweep
// proving CheckpointStore's write-tmp-fsync-rename discipline never tears or
// silently loses an acknowledged snapshot (DESIGN.md §15).
#include "state/fault_fs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "state/snapshot.hpp"
#include "state/store.hpp"

namespace vdx::state {
namespace {

std::vector<std::uint8_t> payload_for(std::uint64_t epoch) {
  std::vector<std::uint8_t> bytes(16);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(epoch >> (8 * i));
    bytes[8 + i] = static_cast<std::uint8_t>(~bytes[i]);
  }
  return bytes;
}

/// A real parseable snapshot whose single section encodes `epoch`, so the
/// sweep can detect torn files via the envelope checksums exactly the way
/// recovery would.
std::vector<std::uint8_t> snapshot_bytes(std::uint64_t epoch) {
  SnapshotWriter writer;
  writer.add_section(7, payload_for(epoch));
  return writer.finish();
}

TEST(FaultFs, FsyncedRenameSurvivesCrash) {
  FaultFs fs;
  const std::vector<std::uint8_t> bytes = payload_for(1);
  ASSERT_TRUE(write_file_atomic(fs, "dir/file.bin", bytes).ok());
  fs.crash_at_op(1);
  EXPECT_FALSE(fs.read_file("nudge").ok());  // the power cut fires
  ASSERT_TRUE(fs.crashed());
  fs.reboot();
  auto read = fs.read_file("dir/file.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
}

TEST(FaultFs, UnsyncedRenameEvaporatesOnCrash) {
  FaultFs fs;
  // Hand-rolled write WITHOUT fsync: rename is atomic for visibility, but
  // the carried image was never durable — the classic torn-rename trap.
  auto handle = fs.open_write("f.tmp");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs.write(handle.value(), payload_for(2)).ok());
  ASSERT_TRUE(fs.close(handle.value()).ok());
  ASSERT_TRUE(fs.rename("f.tmp", "f").ok());
  EXPECT_TRUE(fs.visible_exists("f"));
  fs.crash_at_op(1);
  EXPECT_FALSE(fs.read_file("f").ok());
  fs.reboot();
  EXPECT_FALSE(fs.visible_exists("f"));
  EXPECT_FALSE(fs.durable_exists("f"));
}

TEST(FaultFs, ShortWritePersistsPrefixAndFailsTyped) {
  FsFaultProfile profile;
  profile.short_write_rate = 1.0;
  FaultFs fs{profile};
  auto handle = fs.open_write("f");
  ASSERT_TRUE(handle.ok());
  const core::Status status = fs.write(handle.value(), payload_for(3));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kUnavailable);
  auto read = fs.read_file("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), payload_for(3).size() / 2);  // torn prefix
}

TEST(FaultFs, FsyncLossReportsSuccessButLosesBytesOnCrash) {
  FsFaultProfile profile;
  profile.fsync_loss_rate = 1.0;
  FaultFs fs{profile};
  auto handle = fs.open_write("f");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs.write(handle.value(), payload_for(4)).ok());
  ASSERT_TRUE(fs.fsync(handle.value()).ok());  // the disk lies
  ASSERT_TRUE(fs.close(handle.value()).ok());
  EXPECT_TRUE(fs.visible_exists("f"));
  EXPECT_FALSE(fs.durable_exists("f"));
  fs.crash_at_op(1);
  (void)fs.read_file("f");
  fs.reboot();
  EXPECT_FALSE(fs.visible_exists("f"));
}

TEST(FaultFs, FaultWindowGatesRates) {
  FsFaultProfile profile;
  profile.enospc_rate = 1.0;
  profile.window = {5, 10};
  FaultFs fs{profile};
  EXPECT_TRUE(fs.open_write("before").ok());  // tick 0: window closed
  fs.advance_to(5);
  EXPECT_FALSE(fs.open_write("inside").ok());
  fs.advance_to(10);
  EXPECT_TRUE(fs.open_write("after").ok());
}

TEST(FaultFs, DeterministicReplaySameSeed) {
  FsFaultProfile profile;
  profile.enospc_rate = 0.3;
  profile.eio_rate = 0.2;
  profile.seed = 99;
  const auto run = [&profile] {
    FaultFs fs{profile};
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          write_file_atomic(fs, "d/f" + std::to_string(i), payload_for(7)).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

// The durability theorem: sweep a simulated power cut across EVERY syscall
// boundary of a multi-epoch CheckpointStore run. Invariants after reboot:
//  (1) if store.write(epoch) returned ok before the crash, load_latest
//      recovers an epoch >= it (an acknowledged snapshot is never lost);
//  (2) no checkpoint-*.vdxsnap file is ever torn (rejected set is empty) —
//      partially written bytes can only live under the ignored .tmp name.
TEST(FaultFsCrashSweep, CheckpointStoreNeverTearsOrLosesAckedSnapshots) {
  constexpr std::uint64_t kEpochs = 6;
  for (std::uint64_t crash_op = 1; crash_op <= 60; ++crash_op) {
    FaultFs fs;
    fs.crash_at_op(crash_op);
    std::uint64_t last_acked = 0;
    {
      CheckpointStore store{"ckpt", 2, {}, &fs};
      for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
        if (store.write(epoch, snapshot_bytes(epoch)).ok()) last_acked = epoch;
      }
    }
    fs.disarm_crash();
    if (fs.crashed()) fs.reboot();

    CheckpointStore recovered{"ckpt", 2, {}, &fs};
    auto loaded = recovered.load_latest();
    if (last_acked == 0) continue;  // crashed before the first ack: no claim
    ASSERT_TRUE(loaded.ok()) << "crash_op=" << crash_op << ": "
                             << loaded.error().message;
    EXPECT_GE(loaded.value().epoch, last_acked) << "crash_op=" << crash_op;
    EXPECT_TRUE(loaded.value().rejected.empty())
        << "crash_op=" << crash_op << ": torn snapshot survived under a "
        << "checkpoint name: " << loaded.value().rejected.front();
    EXPECT_EQ(loaded.value().bytes, snapshot_bytes(loaded.value().epoch))
        << "crash_op=" << crash_op;
  }
}

// Retention edge cases through the fault layer: a failed or interrupted
// prune must never un-apply the just-acknowledged write.
TEST(FaultFsRetention, CrashOnPruneKeepsBothSnapshotsIntact) {
  FaultFs fs;
  CheckpointStore store{"ckpt", 1, {}, &fs};
  ASSERT_TRUE(store.write(1, snapshot_bytes(1)).ok());
  EXPECT_EQ(store.list().size(), 1u);  // epoch 1 pruned nothing
  // Ops per write here: mkdir, open, write, fsync, close, rename, list,
  // remove — land the power cut exactly on the prune's remove (the 8th op
  // of write(2), counting from now).
  fs.crash_at_op(8);
  const core::Status second = store.write(2, snapshot_bytes(2));
  EXPECT_TRUE(second.ok());  // the snapshot itself was acked before the cut
  EXPECT_EQ(store.prune_failures(), 1u);
  fs.reboot();
  CheckpointStore recovered{"ckpt", 1, {}, &fs};
  const auto snapshots = recovered.list();
  ASSERT_EQ(snapshots.size(), 2u);  // stale survivor costs disk, not data
  auto loaded = recovered.load_latest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 2u);
  EXPECT_EQ(loaded.value().bytes, snapshot_bytes(2));
}

TEST(FaultFsRetention, FullOutageFailsTypedAndAppliesNothing) {
  FaultFs fs;
  CheckpointStore store{"ckpt", 3, {}, &fs};
  ASSERT_TRUE(store.write(1, snapshot_bytes(1)).ok());
  fs.set_failing(true);  // read-only / out-of-space directory from here on
  const core::Status status = store.write(2, snapshot_bytes(2));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kUnavailable);
  fs.set_failing(false);
  // Nothing partially applied: epoch 1 is still the newest valid snapshot.
  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 1u);
  EXPECT_FALSE(fs.visible_exists("ckpt/checkpoint-00000002.vdxsnap"));
}

TEST(FaultFsRetention, EnospcMidRunSuspendsThenRecovers) {
  FsFaultProfile profile;
  profile.enospc_rate = 1.0;
  profile.window = {3, 6};  // disk full during ticks [3, 6)
  FaultFs fs{profile};
  CheckpointStore store{"ckpt", 2, {}, &fs};
  std::uint64_t acked = 0;
  for (std::uint64_t epoch = 1; epoch <= 8; ++epoch) {
    fs.advance_to(epoch);
    const core::Status status = store.write(epoch, snapshot_bytes(epoch));
    if (status.ok()) {
      acked = epoch;
    } else {
      EXPECT_EQ(status.error().code, core::Errc::kUnavailable);
    }
  }
  EXPECT_EQ(acked, 8u);  // the store resumed once the outage window closed
  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 8u);
}

}  // namespace
}  // namespace vdx::state
