// Snapshot envelope + CheckpointStore unit tests: round-trips, exhaustive
// truncation/bit-flip rejection, version gating, trailing-byte rejection,
// atomic writes, retention, and corrupted-latest fallback (DESIGN.md §10).
#include "state/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/observe.hpp"
#include "state/store.hpp"

namespace vdx::state {
namespace {

std::vector<std::uint8_t> sample_snapshot() {
  SnapshotWriter writer;
  writer.add_section(1, {0xDE, 0xAD, 0xBE, 0xEF});
  writer.add_section(7, {});
  writer.add_section(42, std::vector<std::uint8_t>(100, 0x5A));
  return writer.finish();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("vdx_state_test_" + tag + "_" +
               std::to_string(::testing::UnitTest::GetInstance()->random_seed()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(Snapshot, RoundTripsSections) {
  const std::vector<std::uint8_t> bytes = sample_snapshot();
  const auto parsed = SnapshotView::parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const SnapshotView& view = parsed.value();
  ASSERT_EQ(view.sections().size(), 3u);
  ASSERT_NE(view.find(1), nullptr);
  EXPECT_EQ(view.find(1)->bytes, (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
  ASSERT_NE(view.find(7), nullptr);
  EXPECT_TRUE(view.find(7)->bytes.empty());
  ASSERT_NE(view.find(42), nullptr);
  EXPECT_EQ(view.find(42)->bytes.size(), 100u);
  EXPECT_EQ(view.find(999), nullptr);
}

TEST(Snapshot, EmptySnapshotParses) {
  const std::vector<std::uint8_t> bytes = SnapshotWriter{}.finish();
  const auto parsed = SnapshotView::parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_TRUE(parsed.value().sections().empty());
}

TEST(Snapshot, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> bytes = sample_snapshot();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto parsed = SnapshotView::parse(
        std::span<const std::uint8_t>{bytes.data(), len});
    ASSERT_FALSE(parsed.ok()) << "prefix of length " << len << " parsed";
    EXPECT_TRUE(parsed.error().code == core::Errc::kCorruptSnapshot ||
                parsed.error().code == core::Errc::kVersionMismatch)
        << "prefix " << len << ": " << errc_name(parsed.error().code);
  }
}

TEST(Snapshot, EveryBitFlipIsRejected) {
  const std::vector<std::uint8_t> bytes = sample_snapshot();
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
      const auto parsed = SnapshotView::parse(mutated);
      ASSERT_FALSE(parsed.ok()) << "flip at byte " << pos << " bit " << bit
                                << " still parsed";
      EXPECT_TRUE(parsed.error().code == core::Errc::kCorruptSnapshot ||
                  parsed.error().code == core::Errc::kVersionMismatch);
    }
  }
}

TEST(Snapshot, WrongMagicIsCorrupt) {
  std::vector<std::uint8_t> bytes = sample_snapshot();
  bytes[0] ^= 0xFF;
  const auto parsed = SnapshotView::parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, core::Errc::kCorruptSnapshot);
}

TEST(Snapshot, FutureVersionIsVersionMismatch) {
  // The version field sits right after the 8-byte magic; it is validated
  // before the file checksum so a format bump reports as kVersionMismatch,
  // not generic corruption.
  std::vector<std::uint8_t> bytes = sample_snapshot();
  bytes[8] = static_cast<std::uint8_t>(kFormatVersion + 1);
  const auto parsed = SnapshotView::parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, core::Errc::kVersionMismatch);
}

TEST(Snapshot, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> bytes = sample_snapshot();
  bytes.push_back(0x00);
  auto parsed = SnapshotView::parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, core::Errc::kCorruptSnapshot);

  // A duplicated (self-concatenated) snapshot must not parse as its first
  // copy — exactly the shape a duplicate-write fault produces.
  std::vector<std::uint8_t> doubled = sample_snapshot();
  const std::vector<std::uint8_t> original = doubled;
  doubled.insert(doubled.end(), original.begin(), original.end());
  parsed = SnapshotView::parse(doubled);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, core::Errc::kCorruptSnapshot);
}

TEST(Snapshot, AtomicWriteRoundTripsAndLeavesNoTmp) {
  const TempDir dir{"atomic"};
  const std::filesystem::path path = dir.path() / "snap.vdxsnap";
  const std::vector<std::uint8_t> bytes = sample_snapshot();
  ASSERT_TRUE(write_file_atomic(path, bytes).ok());
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  const auto read = read_file(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
}

TEST(Snapshot, ReadMissingFileIsUnavailable) {
  const auto read = read_file("/nonexistent/vdx/snapshot.vdxsnap");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, core::Errc::kUnavailable);
}

TEST(CheckpointStore, RetainsOnlyNewestK) {
  const TempDir dir{"retention"};
  obs::MetricsRegistry metrics;
  CheckpointStore store{dir.path(), 2, obs::Observer{&metrics, nullptr, nullptr}};
  const std::vector<std::uint8_t> bytes = sample_snapshot();
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    ASSERT_TRUE(store.write(epoch, bytes).ok());
  }
  const auto snapshots = store.list();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots[0].filename().string(), "checkpoint-00000004.vdxsnap");
  EXPECT_EQ(snapshots[1].filename().string(), "checkpoint-00000003.vdxsnap");
  EXPECT_DOUBLE_EQ(metrics.counter("state.snapshots_written").value(), 5.0);
  EXPECT_DOUBLE_EQ(metrics.counter("state.snapshot_bytes").value(),
                   5.0 * static_cast<double>(bytes.size()));
}

TEST(CheckpointStore, ListIgnoresForeignAndTmpFiles) {
  const TempDir dir{"foreign"};
  CheckpointStore store{dir.path(), 3};
  ASSERT_TRUE(store.write(1, sample_snapshot()).ok());
  std::ofstream{dir.path() / "notes.txt"} << "not a snapshot";
  std::ofstream{dir.path() / "checkpoint-00000009.vdxsnap.tmp"} << "torn write";
  std::ofstream{dir.path() / "checkpoint-abc.vdxsnap"} << "bad epoch";
  EXPECT_EQ(store.list().size(), 1u);
}

TEST(CheckpointStore, LoadLatestFallsBackPastCorruptedSnapshots) {
  const TempDir dir{"fallback"};
  obs::MetricsRegistry metrics;
  CheckpointStore store{dir.path(), 3, obs::Observer{&metrics, nullptr, nullptr}};
  const std::vector<std::uint8_t> bytes = sample_snapshot();
  ASSERT_TRUE(store.write(1, bytes).ok());
  ASSERT_TRUE(store.write(2, bytes).ok());
  ASSERT_TRUE(store.write(3, bytes).ok());

  // Corrupt the newest on disk (bit flip) and truncate the second-newest.
  {
    std::fstream f{dir.path() / "checkpoint-00000003.vdxsnap",
                   std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(12);
    f.put(static_cast<char>(0x7F));
  }
  std::filesystem::resize_file(dir.path() / "checkpoint-00000002.vdxsnap", 10);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().epoch, 1u);
  EXPECT_EQ(loaded.value().bytes, bytes);
  EXPECT_EQ(loaded.value().rejected.size(), 2u);
  EXPECT_DOUBLE_EQ(metrics.counter("state.snapshots_rejected").value(), 2.0);
}

TEST(CheckpointStore, LoadLatestHonorsValidator) {
  const TempDir dir{"validator"};
  CheckpointStore store{dir.path(), 3};
  ASSERT_TRUE(store.write(5, sample_snapshot()).ok());

  std::size_t calls = 0;
  const auto reject_all = [&calls](std::span<const std::uint8_t>) {
    ++calls;
    return core::Status::failure(core::Errc::kInvalidArgument, "wrong fingerprint");
  };
  const auto failed = store.load_latest(reject_all);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, core::Errc::kInvalidArgument);
  EXPECT_EQ(calls, 1u);

  const auto accepted =
      store.load_latest([](std::span<const std::uint8_t>) { return core::ok_status(); });
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted.value().epoch, 5u);
}

TEST(CheckpointStore, EmptyDirectoryIsUnavailable) {
  const TempDir dir{"empty"};
  const CheckpointStore store{dir.path(), 3};
  const auto loaded = store.load_latest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, core::Errc::kUnavailable);
}

}  // namespace
}  // namespace vdx::state
