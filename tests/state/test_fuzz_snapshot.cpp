// Snapshot fuzzing via the PR-1 chaos transport: valid checkpoint bytes are
// routed through proto::FaultInjector (truncation, bit corruption,
// duplication) and every mutated output must be rejected with a typed error
// — or, at the store layer, fall back to an older intact snapshot. A failed
// exchange restore must leave the exchange bit-exactly unchanged. No input
// may crash, allocate unboundedly, or silently resume divergent state.
#include "state/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "market/exchange.hpp"
#include "proto/fault.hpp"
#include "sim/scenario.hpp"
#include "state/snapshot.hpp"
#include "state/store.hpp"

namespace vdx::state {
namespace {

bool typed_rejection(core::Errc code) {
  return code == core::Errc::kCorruptSnapshot ||
         code == core::Errc::kVersionMismatch ||
         code == core::Errc::kInvalidArgument;
}

/// A representative timeline checkpoint: non-trivial cursors, churn history,
/// and a consistent journal window, so mutations have real structure to hit.
TimelineCheckpoint sample_checkpoint() {
  TimelineCheckpoint checkpoint;
  checkpoint.fingerprint.seed = 2017;
  checkpoint.fingerprint.broker_sessions = 800;
  checkpoint.fingerprint.duration_s = 3600.0;
  checkpoint.fingerprint.epoch_s = 600.0;
  checkpoint.next_epoch = 3;
  checkpoint.broker.consumed = 420;
  for (std::uint32_t i = 0; i < 24; ++i) {
    checkpoint.broker.active.push_back({400 + i, i % 9, 1.5 + 0.25 * i, 1800.0 + i});
  }
  checkpoint.background.consumed = 1260;
  for (std::uint32_t i = 0; i < 40; ++i) {
    checkpoint.background.active.push_back({1200 + i, i % 11, 2.0, 1900.0 + i});
  }
  for (std::uint32_t i = 0; i < 24; ++i) checkpoint.churn.previous.emplace_back(400 + i, i % 5);
  checkpoint.churn.sum = 12.5;
  checkpoint.churn.weight = 840.0;
  checkpoint.background_loads = {10.0, 20.5, 0.0, 33.25};
  checkpoint.background_stale = false;
  checkpoint.peak_active_sessions = 77;
  checkpoint.decision_rounds = 3;
  checkpoint.logical_clock = 91;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    obs::Event event;
    event.kind = obs::EventKind::kEpoch;
    event.seq = seq;
    event.subject = static_cast<std::uint32_t>(seq);
    event.value = 100.0 + static_cast<double>(seq);
    checkpoint.journal.events.push_back(event);
  }
  checkpoint.journal.total = 6;
  checkpoint.journal.round = 3;
  return checkpoint;
}

proto::FaultProfile fuzz_profile(std::uint64_t seed) {
  proto::FaultProfile profile;
  profile.truncate_rate = 0.35;
  profile.corrupt_rate = 0.35;
  profile.duplicate_rate = 0.2;
  profile.seed = seed;
  return profile;
}

TEST(SnapshotFuzz, MutatedTimelineSnapshotsAreRejectedWithTypedErrors) {
  const std::vector<std::uint8_t> bytes = encode(sample_checkpoint());
  ASSERT_TRUE(decode_timeline(bytes).ok());

  std::size_t mutated_seen = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    proto::FaultInjector injector{fuzz_profile(seed)};
    for (std::size_t frame = 0; frame < 300; ++frame) {
      for (const proto::FaultedFrame& copy : injector.apply(frame % 7, bytes)) {
        const auto decoded = decode_timeline(copy.bytes);
        if (copy.bytes == bytes) {
          // Unmutated copy (possibly a duplicate delivery): must still parse.
          EXPECT_TRUE(decoded.ok());
          continue;
        }
        ++mutated_seen;
        ASSERT_FALSE(decoded.ok())
            << "mutated snapshot (" << copy.bytes.size() << " bytes, frame "
            << frame << ", seed " << seed << ") decoded successfully";
        EXPECT_TRUE(typed_rejection(decoded.error().code))
            << errc_name(decoded.error().code);
        EXPECT_FALSE(decoded.error().message.empty());
      }
    }
  }
  // The profile must actually have exercised the rejection path.
  EXPECT_GE(mutated_seen, 100u);
}

TEST(SnapshotFuzz, StoreFallsBackToIntactSnapshotUnderMutation) {
  const std::vector<std::uint8_t> bytes = encode(sample_checkpoint());
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vdx_fuzz_store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  proto::FaultInjector injector{fuzz_profile(7)};
  std::size_t mutated_files = 0;
  for (std::size_t trial = 0; trial < 60; ++trial) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    CheckpointStore store{dir, 4};
    ASSERT_TRUE(store.write(0, bytes).ok());  // intact baseline

    const auto copies = injector.apply(0, bytes);
    if (copies.empty()) continue;  // dropped: nothing newer than the baseline
    ASSERT_TRUE(store.write(1, copies.front().bytes).ok());
    mutated_files += copies.front().bytes != bytes ? 1 : 0;

    const auto loaded = store.load_latest([](std::span<const std::uint8_t> raw) {
      const auto decoded = decode_timeline(raw);
      if (!decoded.ok()) return core::Status{decoded.error()};
      return core::ok_status();
    });
    // Recovery always lands on a snapshot that decodes — the mutated newest
    // when the fault left it intact, the baseline otherwise.
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_TRUE(decode_timeline(loaded.value().bytes).ok());
    if (copies.front().bytes != bytes) {
      EXPECT_EQ(loaded.value().epoch, 0u);
      EXPECT_EQ(loaded.value().rejected.size(), 1u);
    }
  }
  EXPECT_GE(mutated_files, 20u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotFuzz, ExchangeRejectsMutatedStateAndStaysUnchanged) {
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 2000;
  const sim::Scenario scenario = sim::Scenario::build(scenario_config);

  market::VdxExchange reference{scenario};
  (void)reference.run(2);
  const std::vector<std::uint8_t> bytes = reference.save_state();
  const market::RoundReport expected = reference.run_round();

  market::VdxExchange subject{scenario};
  ASSERT_TRUE(subject.restore_state(bytes).ok());

  proto::FaultInjector injector{fuzz_profile(11)};
  std::size_t mutated_seen = 0;
  for (std::size_t frame = 0; frame < 150; ++frame) {
    for (const proto::FaultedFrame& copy : injector.apply(frame % 3, bytes)) {
      if (copy.bytes == bytes) continue;
      ++mutated_seen;
      const core::Status status = subject.restore_state(copy.bytes);
      ASSERT_FALSE(status.ok()) << "mutated exchange state restored";
      EXPECT_TRUE(typed_rejection(status.error().code))
          << errc_name(status.error().code);
    }
  }
  EXPECT_GE(mutated_seen, 50u);

  // Every rejection above must have left the exchange untouched: its next
  // round is byte-identical to the uninterrupted reference.
  const market::RoundReport actual = subject.run_round();
  EXPECT_EQ(actual.round, expected.round);
  EXPECT_EQ(actual.mean_score, expected.mean_score);
  EXPECT_EQ(actual.mean_cost, expected.mean_cost);
  EXPECT_EQ(actual.mean_prediction_error, expected.mean_prediction_error);
  EXPECT_EQ(actual.awarded_mbps, expected.awarded_mbps);
}

}  // namespace
}  // namespace vdx::state
