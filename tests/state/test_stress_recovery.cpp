// Checkpoint/resume drill under every workload modulator (DESIGN.md §11):
// crash the streaming engine mid-spike, mid-blackout, mid-shock, and under a
// diurnal swing, resume from the latest snapshot, and byte-compare the
// remaining epoch reports against an uninterrupted run. Demand modulation is
// a pure function of (seed, block) and supply stress a pure function of
// epoch time, so the resumed tail must be identical — including the shed-
// session accumulator, which rides in the checkpoint.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/observe.hpp"
#include "sim/scenario.hpp"
#include "sim/streaming.hpp"
#include "sim/stress.hpp"
#include "sim/timeline_io.hpp"
#include "state/checkpoint.hpp"
#include "state/store.hpp"
#include "trace/generator.hpp"

namespace vdx::sim {
namespace {

constexpr double kEpochSeconds = 600.0;  // 3600s horizon -> 6 epochs
constexpr std::size_t kBrokerSessions = 1500;
constexpr std::size_t kBackgroundSessions = 500;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vdx_stress_rec_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

Scenario build_scenario() {
  ScenarioConfig config;
  config.trace.session_count = 600;
  config.seed = 11;
  return Scenario::build(config);
}

StressConfig stress_config_for(StressScenario scenario) {
  StressConfig config;
  config.scenario = scenario;
  config.shed_budget = 250;  // forces shedding inside the spike
  return config;
}

state::RunFingerprint fingerprint_for(const StressConfig& stress) {
  state::RunFingerprint fingerprint;
  fingerprint.seed = 2017;
  fingerprint.design = static_cast<std::uint8_t>(Design::kMarketplace);
  fingerprint.broker_sessions = kBrokerSessions;
  fingerprint.background_sessions = kBackgroundSessions;
  fingerprint.duration_s = 3600.0;
  fingerprint.epoch_s = kEpochSeconds;
  fingerprint.config_hash = stress_config_hash(stress);
  return fingerprint;
}

/// One drill invocation: fresh generators, a fresh controller, and a
/// checkpointed streaming run (or a resume when `resume` is set). Every
/// piece of stress state is rebuilt from the config — nothing survives the
/// "crash" except the snapshot bytes, exactly like a real restart.
core::Result<StreamingResult> drill(Scenario& scenario, const StressConfig& stress,
                                    const std::filesystem::path& dir,
                                    std::size_t halt_after, bool resume) {
  const StressProfile profile =
      make_stress_profile(scenario.world(), stress, 3600.0);

  core::Rng root{2017};
  core::Rng broker_rng = root.fork("stress-broker");
  core::Rng background_rng = root.fork("stress-background");
  trace::TraceConfig trace_config;
  trace_config.session_count = kBrokerSessions;
  trace::BrokerTraceGenerator::Options broker_options;
  broker_options.block_sessions = 400;
  broker_options.modulation = &profile.demand;
  trace::BrokerTraceGenerator broker_generator{scenario.world(), trace_config,
                                               broker_rng, broker_options};
  trace::TraceConfig background_config = trace_config;
  background_config.session_count = kBackgroundSessions;
  trace::BrokerTraceGenerator::Options background_options;
  background_options.block_sessions = 400;
  background_options.broker_controlled = false;
  trace::BrokerTraceGenerator background_generator{
      scenario.world(), background_config, background_rng, background_options};

  std::optional<SupplyStressController> controller;
  state::CheckpointStore store{dir, 16};
  StreamingConfig config;
  config.design = Design::kMarketplace;
  config.epoch_s = kEpochSeconds;
  config.checkpoint.every_epochs = 1;
  config.checkpoint.store = &store;
  config.checkpoint.fingerprint = fingerprint_for(stress);
  config.overload.max_active_sessions = stress.shed_budget;
  config.halt_after_epochs = halt_after;
  if (profile.supply_active()) {
    controller.emplace(scenario, profile);
    config.stress = &*controller;
  }

  GeneratorStream broker{broker_generator};
  GeneratorStream background{background_generator};
  const StreamingTimeline timeline{scenario, config};
  if (!resume) return timeline.run(broker, background);
  const auto loaded = store.load_latest([&](std::span<const std::uint8_t> bytes) {
    auto decoded = state::decode_timeline(bytes);
    if (!decoded.ok()) return core::Status{decoded.error()};
    if (!(decoded.value().fingerprint == config.checkpoint.fingerprint)) {
      return core::Status::failure(core::Errc::kInvalidArgument,
                                   "fingerprint mismatch");
    }
    return core::ok_status();
  });
  if (!loaded.ok()) return core::Result<StreamingResult>{loaded.error()};
  return timeline.resume(broker, background, loaded.value().bytes);
}

std::string tail_jsonl(const StreamingResult& full, std::size_t start_epoch) {
  TimelineResult tail;
  for (const EpochReport& report : full.timeline.epochs) {
    if (report.epoch >= start_epoch) tail.epochs.push_back(report);
  }
  tail.mean_cdn_switch_fraction = full.timeline.mean_cdn_switch_fraction;
  return epoch_reports_jsonl(tail);
}

void drill_every_crash_point(StressScenario kind, const std::string& tag) {
  const StressConfig stress = stress_config_for(kind);
  Scenario scenario = build_scenario();
  TempDir full_dir{tag + "_full"};
  const auto full = drill(scenario, stress, full_dir.path(), 0, false);
  ASSERT_TRUE(full.ok()) << full.error().message;
  const std::size_t epochs = full.value().timeline.epochs.size();
  ASSERT_GE(epochs, 4u);

  for (std::size_t crash_after = 1; crash_after < epochs; ++crash_after) {
    TempDir crash_dir{tag + "_k" + std::to_string(crash_after)};
    (void)drill(scenario, stress, crash_dir.path(), crash_after, false);
    const auto resumed = drill(scenario, stress, crash_dir.path(), 0, true);
    ASSERT_TRUE(resumed.ok())
        << tag << " crash_after=" << crash_after << ": " << resumed.error().message;
    EXPECT_EQ(epoch_reports_jsonl(resumed.value().timeline),
              tail_jsonl(full.value(), crash_after))
        << tag << " diverged after resume at epoch " << crash_after;
    // The shed accumulator rides in the checkpoint: horizon totals match.
    EXPECT_EQ(resumed.value().shed_sessions, full.value().shed_sessions)
        << tag << " crash_after=" << crash_after;
  }
}

TEST(StressRecoveryDrill, CrashMidFlashCrowdResumesByteIdentically) {
  // The spike window spans epochs 1-3; shedding is active inside it, so the
  // crash points cover ramp, hold, and decay with a non-trivial shed count.
  drill_every_crash_point(StressScenario::kFlashCrowd, "spike");
}

TEST(StressRecoveryDrill, CrashMidBlackoutResumesByteIdentically) {
  // Blackout window 1440-2520s: crash points 3 and 4 land mid-blackout, so
  // the resumed run must reconstitute the darkened catalog from time alone.
  drill_every_crash_point(StressScenario::kBlackout, "blackout");
}

TEST(StressRecoveryDrill, CrashUnderDiurnalResumesByteIdentically) {
  drill_every_crash_point(StressScenario::kDiurnal, "diurnal");
}

TEST(StressRecoveryDrill, CrashMidPriceShockResumesByteIdentically) {
  drill_every_crash_point(StressScenario::kPriceShock, "shock");
}

TEST(StressRecoveryDrill, CrashUnderPerfectStormResumesByteIdentically) {
  drill_every_crash_point(StressScenario::kPerfectStorm, "storm");
}

TEST(StressRecoveryDrill, ResumeUnderDifferentScenarioIsRejected) {
  Scenario scenario = build_scenario();
  const StressConfig spike = stress_config_for(StressScenario::kFlashCrowd);
  TempDir dir{"mismatch"};
  (void)drill(scenario, spike, dir.path(), 2, false);

  // Same seed and horizon, different stress scenario: the config hash folds
  // the stress knobs into the fingerprint, so the resume must refuse.
  const StressConfig blackout = stress_config_for(StressScenario::kBlackout);
  const auto resumed = drill(scenario, blackout, dir.path(), 0, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, core::Errc::kInvalidArgument);
}

}  // namespace
}  // namespace vdx::sim
