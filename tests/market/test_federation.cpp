#include "market/federation.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vdx::market {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 5000;
    config.seed = 83;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* FederationTest::scenario_ = nullptr;

TEST_F(FederationTest, PartitionCoversAllCities) {
  FederationConfig config;
  config.region_count = 4;
  const FederationResult result = run_federated_marketplace(scenario(), config);
  EXPECT_EQ(result.region_city_counts.size(), 4u);
  const std::size_t covered = std::accumulate(result.region_city_counts.begin(),
                                              result.region_city_counts.end(),
                                              std::size_t{0});
  EXPECT_EQ(covered, scenario().world().cities().size());
  for (const std::size_t count : result.region_city_counts) EXPECT_GT(count, 0u);
}

TEST_F(FederationTest, AllClientsServed) {
  FederationConfig config;
  config.region_count = 4;
  const FederationResult result = run_federated_marketplace(scenario(), config);
  double expected = 0.0;
  for (const auto& g : scenario().broker_groups()) {
    expected += g.client_count * g.bitrate_mbps;
  }
  EXPECT_NEAR(result.metrics.broker_traffic_mbps, expected, expected * 1e-3);
}

TEST_F(FederationTest, SingleRegionMatchesGlobalMarketplace) {
  FederationConfig config;
  config.region_count = 1;
  const FederationResult federated = run_federated_marketplace(scenario(), config);
  const sim::DesignOutcome global =
      sim::run_design(scenario(), sim::Design::kMarketplace);
  const sim::DesignMetrics global_metrics = sim::compute_metrics(scenario(), global);
  EXPECT_NEAR(federated.metrics.mean_score, global_metrics.mean_score,
              0.02 * global_metrics.mean_score);
  EXPECT_NEAR(federated.metrics.mean_cost, global_metrics.mean_cost,
              0.02 * global_metrics.mean_cost);
}

TEST_F(FederationTest, RegionalizationShrinksInstancesButCostsQuality) {
  FederationConfig one;
  one.region_count = 1;
  FederationConfig eight;
  eight.region_count = 8;
  const FederationResult global = run_federated_marketplace(scenario(), one);
  const FederationResult regional = run_federated_marketplace(scenario(), eight);

  // Scalability win: the largest optimization instance shrinks.
  EXPECT_LT(regional.largest_instance_options, global.largest_instance_options);
  // Quality cost (the paper's §6.3 warning): the federated optimum cannot
  // beat the global one on the broker's own objective; allow fp slack.
  const auto objective = [](const FederationResult& r) {
    return r.metrics.mean_score + 2.0 * r.metrics.mean_cost;
  };
  EXPECT_GE(objective(regional), objective(global) - 1e-6);
}

TEST_F(FederationTest, RejectsZeroRegions) {
  FederationConfig config;
  config.region_count = 0;
  EXPECT_THROW((void)run_federated_marketplace(scenario(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdx::market
