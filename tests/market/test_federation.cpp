#include "market/federation.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace vdx::market {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 5000;
    config.seed = 83;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* FederationTest::scenario_ = nullptr;

TEST_F(FederationTest, PartitionCoversAllCities) {
  FederationConfig config;
  config.region_count = 4;
  const FederationResult result = run_federated_marketplace(scenario(), config);
  EXPECT_EQ(result.region_city_counts.size(), 4u);
  const std::size_t covered = std::accumulate(result.region_city_counts.begin(),
                                              result.region_city_counts.end(),
                                              std::size_t{0});
  EXPECT_EQ(covered, scenario().world().cities().size());
  for (const std::size_t count : result.region_city_counts) EXPECT_GT(count, 0u);
}

TEST_F(FederationTest, AllClientsServed) {
  FederationConfig config;
  config.region_count = 4;
  const FederationResult result = run_federated_marketplace(scenario(), config);
  double expected = 0.0;
  for (const auto& g : scenario().broker_groups()) {
    expected += g.client_count * g.bitrate_mbps;
  }
  EXPECT_NEAR(result.metrics.broker_traffic_mbps, expected, expected * 1e-3);
}

TEST_F(FederationTest, SingleRegionMatchesGlobalMarketplace) {
  FederationConfig config;
  config.region_count = 1;
  const FederationResult federated = run_federated_marketplace(scenario(), config);
  const sim::DesignOutcome global =
      sim::run_design(scenario(), sim::Design::kMarketplace);
  const sim::DesignMetrics global_metrics = sim::compute_metrics(scenario(), global);
  EXPECT_NEAR(federated.metrics.mean_score, global_metrics.mean_score,
              0.02 * global_metrics.mean_score);
  EXPECT_NEAR(federated.metrics.mean_cost, global_metrics.mean_cost,
              0.02 * global_metrics.mean_cost);
}

TEST_F(FederationTest, RegionalizationShrinksInstancesButCostsQuality) {
  FederationConfig one;
  one.region_count = 1;
  FederationConfig eight;
  eight.region_count = 8;
  const FederationResult global = run_federated_marketplace(scenario(), one);
  const FederationResult regional = run_federated_marketplace(scenario(), eight);

  // Scalability win: the largest optimization instance shrinks.
  EXPECT_LT(regional.largest_instance_options, global.largest_instance_options);
  // Quality cost (the paper's §6.3 warning): the federated optimum cannot
  // beat the global one on the broker's own objective; allow fp slack.
  const auto objective = [](const FederationResult& r) {
    return r.metrics.mean_score + 2.0 * r.metrics.mean_cost;
  };
  EXPECT_GE(objective(regional), objective(global) - 1e-6);
}

TEST_F(FederationTest, RejectsZeroRegions) {
  FederationConfig config;
  config.region_count = 0;
  EXPECT_THROW((void)run_federated_marketplace(scenario(), config),
               std::invalid_argument);
}

TEST_F(FederationTest, SeedsAreDistinctAndStartAtTopDemand) {
  const auto seeds = pick_region_seeds(scenario().world(), 6);
  ASSERT_EQ(seeds.size(), 6u);
  std::set<geo::CityId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
  // The first seed is the highest-demand city (deterministic anchor).
  double top = -1.0;
  geo::CityId top_city;
  for (const geo::City& city : scenario().world().cities()) {
    if (city.demand_weight > top) {
      top = city.demand_weight;
      top_city = city.id;
    }
  }
  EXPECT_EQ(seeds.front(), top_city);
}

TEST_F(FederationTest, SeedCountClampsToCityCountWithoutDuplicates) {
  // Regression: asking for more regions than cities used to keep appending
  // duplicate seeds (the farthest-point loop had nothing fresh to pick), so
  // several "regions" collapsed onto the same city while the result still
  // claimed the requested count.
  const std::size_t cities = scenario().world().cities().size();
  const auto seeds = pick_region_seeds(scenario().world(), cities + 50);
  ASSERT_EQ(seeds.size(), cities);
  std::set<geo::CityId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
}

TEST_F(FederationTest, ResultRecordsEffectiveRegionCount) {
  const std::size_t cities = scenario().world().cities().size();
  FederationConfig config;
  config.region_count = cities + 10;
  const FederationResult result = run_federated_marketplace(scenario(), config);
  EXPECT_EQ(result.region_count, cities);  // clamped, not the requested count
  EXPECT_EQ(result.region_city_counts.size(), cities);
  for (const std::size_t count : result.region_city_counts) EXPECT_GT(count, 0u);
  // One-city regions rarely contain a usable cluster menu: the global
  // fallback serves those clients, and its bids are counted separately.
  EXPECT_GT(result.fallback_clients, 0.0);
  EXPECT_GT(result.fallback_bids, 0u);
}

TEST_F(FederationTest, GlobalRegionNeedsNoFallback) {
  FederationConfig config;
  config.region_count = 1;
  const FederationResult result = run_federated_marketplace(scenario(), config);
  EXPECT_EQ(result.fallback_clients, 0.0);
  EXPECT_EQ(result.fallback_bids, 0u);
}

TEST_F(FederationTest, ParallelRegionsMatchSerialExactly) {
  FederationConfig serial;
  serial.region_count = 8;
  serial.threads = 1;
  FederationConfig parallel = serial;
  parallel.threads = 8;
  const FederationResult a = run_federated_marketplace(scenario(), serial);
  const FederationResult b = run_federated_marketplace(scenario(), parallel);
  EXPECT_EQ(a.region_count, b.region_count);
  EXPECT_EQ(a.region_city_counts, b.region_city_counts);
  EXPECT_EQ(a.fallback_clients, b.fallback_clients);
  EXPECT_EQ(a.fallback_bids, b.fallback_bids);
  EXPECT_EQ(a.largest_instance_options, b.largest_instance_options);
  // Metrics are pure functions of the merged placements: bit-exact.
  EXPECT_EQ(a.metrics.median_cost, b.metrics.median_cost);
  EXPECT_EQ(a.metrics.median_score, b.metrics.median_score);
  EXPECT_EQ(a.metrics.median_distance_miles, b.metrics.median_distance_miles);
  EXPECT_EQ(a.metrics.mean_cost, b.metrics.mean_cost);
  EXPECT_EQ(a.metrics.mean_score, b.metrics.mean_score);
  EXPECT_EQ(a.metrics.broker_traffic_mbps, b.metrics.broker_traffic_mbps);
}

}  // namespace
}  // namespace vdx::market
