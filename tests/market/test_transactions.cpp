#include "market/transactions.hpp"

#include <gtest/gtest.h>

namespace vdx::market {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 3000;
    config.seed = 41;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* TransactionTest::scenario_ = nullptr;

TEST_F(TransactionTest, CommitsImmediatelyWithoutStrategicVetoes) {
  TransactionConfig config;
  config.veto_threshold = 0.0;
  const TransactionResult result = run_transactions(scenario(), config);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.rounds_used, 1u);
  EXPECT_EQ(result.withdrawn_cdns, 0u);
  EXPECT_GT(result.final_mean_score, 0.0);
}

TEST_F(TransactionTest, StrategicVetoesForceRecomputeRounds) {
  TransactionConfig config;
  config.veto_threshold = 0.3;
  const TransactionResult result = run_transactions(scenario(), config);
  // Some CDNs inevitably win less than 30% of what they bid for (the broker
  // concentrates traffic), so the first mapping cannot stand.
  EXPECT_GT(result.rounds_used, 1u);
  EXPECT_FALSE(result.rounds.front().vetoes.empty());
  EXPECT_GT(result.withdrawn_cdns, 0u);
}

TEST_F(TransactionTest, CommittedMappingIsWorseThanFirstAttempt) {
  TransactionConfig config;
  config.veto_threshold = 0.3;
  const TransactionResult result = run_transactions(scenario(), config);
  if (!result.committed) GTEST_SKIP() << "never committed at this threshold";
  // Every withdrawal shrinks the broker's option set, so the committed
  // mapping cannot beat the first (vetoed) one — the cost of "strong TP".
  EXPECT_GE(result.final_mean_score, result.rounds.front().mean_score - 1e-9);
}

TEST_F(TransactionTest, GreedyVetoThresholdNeverCommits) {
  TransactionConfig config;
  config.veto_threshold = 1.01;  // demand more than everything bid
  config.max_rounds = 5;
  const TransactionResult result = run_transactions(scenario(), config);
  // Every bidding CDN vetoes every round until all have walked away (or the
  // round limit hits) — the paper's "CDNs may never all approve".
  EXPECT_FALSE(result.committed && result.withdrawn_cdns == 0);
  EXPECT_GE(result.withdrawn_cdns, 1u);
}

TEST_F(TransactionTest, VetoRoundsAreRecorded) {
  TransactionConfig config;
  config.veto_threshold = 0.3;
  const TransactionResult result = run_transactions(scenario(), config);
  ASSERT_EQ(result.rounds.size(), result.rounds_used);
  // All rounds except possibly the last carry vetoes.
  for (std::size_t r = 0; r + 1 < result.rounds.size(); ++r) {
    EXPECT_FALSE(result.rounds[r].vetoes.empty()) << "round " << r;
  }
  if (result.committed) {
    EXPECT_TRUE(result.rounds.back().vetoes.empty());
  }
}

TEST_F(TransactionTest, MidProtocolCrashAbortsCleanlyAndReassigns) {
  // Baseline: no vetoes, no crash — commits in one round.
  TransactionConfig baseline;
  baseline.veto_threshold = 0.0;
  const TransactionResult clean = run_transactions(scenario(), baseline);
  ASSERT_TRUE(clean.committed);

  // Same run, but CDN 0 crashes between its Bid and the commit phase of
  // round 0: the transaction aborts (no partial commit), the crashed CDN is
  // withdrawn, and the recompute commits without it.
  TransactionConfig config;
  config.veto_threshold = 0.0;
  config.crash_cdn = 0;
  config.crash_round = 0;
  const TransactionResult result = run_transactions(scenario(), config);

  EXPECT_EQ(result.aborts, 1u);
  ASSERT_EQ(result.crashed.size(), 1u);
  EXPECT_EQ(result.crashed[0].value(), 0u);
  ASSERT_GE(result.rounds.size(), 2u);
  EXPECT_TRUE(result.rounds[0].aborted);
  EXPECT_TRUE(result.rounds[0].vetoes.empty());  // never reached the commit vote
  EXPECT_FALSE(result.rounds[1].aborted);

  // The retry commits with the survivors; the crashed CDN's clients were
  // re-assigned, so the mapping still serves everyone (score stays sane).
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.withdrawn_cdns, 1u);
  EXPECT_GT(result.final_mean_score, 0.0);
  EXPECT_GE(result.final_mean_score, clean.final_mean_score - 1e-9);
}

TEST_F(TransactionTest, CrashDrillDisabledByDefault) {
  TransactionConfig config;
  config.veto_threshold = 0.0;
  const TransactionResult result = run_transactions(scenario(), config);
  EXPECT_EQ(result.aborts, 0u);
  EXPECT_TRUE(result.crashed.empty());
  for (const TransactionRound& round : result.rounds) {
    EXPECT_FALSE(round.aborted);
  }
}

}  // namespace
}  // namespace vdx::market
