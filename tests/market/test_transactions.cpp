#include "market/transactions.hpp"

#include <gtest/gtest.h>

namespace vdx::market {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 3000;
    config.seed = 41;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* TransactionTest::scenario_ = nullptr;

TEST_F(TransactionTest, CommitsImmediatelyWithoutStrategicVetoes) {
  TransactionConfig config;
  config.veto_threshold = 0.0;
  const TransactionResult result = run_transactions(scenario(), config);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.rounds_used, 1u);
  EXPECT_EQ(result.withdrawn_cdns, 0u);
  EXPECT_GT(result.final_mean_score, 0.0);
}

TEST_F(TransactionTest, StrategicVetoesForceRecomputeRounds) {
  TransactionConfig config;
  config.veto_threshold = 0.3;
  const TransactionResult result = run_transactions(scenario(), config);
  // Some CDNs inevitably win less than 30% of what they bid for (the broker
  // concentrates traffic), so the first mapping cannot stand.
  EXPECT_GT(result.rounds_used, 1u);
  EXPECT_FALSE(result.rounds.front().vetoes.empty());
  EXPECT_GT(result.withdrawn_cdns, 0u);
}

TEST_F(TransactionTest, CommittedMappingIsWorseThanFirstAttempt) {
  TransactionConfig config;
  config.veto_threshold = 0.3;
  const TransactionResult result = run_transactions(scenario(), config);
  if (!result.committed) GTEST_SKIP() << "never committed at this threshold";
  // Every withdrawal shrinks the broker's option set, so the committed
  // mapping cannot beat the first (vetoed) one — the cost of "strong TP".
  EXPECT_GE(result.final_mean_score, result.rounds.front().mean_score - 1e-9);
}

TEST_F(TransactionTest, GreedyVetoThresholdNeverCommits) {
  TransactionConfig config;
  config.veto_threshold = 1.01;  // demand more than everything bid
  config.max_rounds = 5;
  const TransactionResult result = run_transactions(scenario(), config);
  // Every bidding CDN vetoes every round until all have walked away (or the
  // round limit hits) — the paper's "CDNs may never all approve".
  EXPECT_FALSE(result.committed && result.withdrawn_cdns == 0);
  EXPECT_GE(result.withdrawn_cdns, 1u);
}

TEST_F(TransactionTest, VetoRoundsAreRecorded) {
  TransactionConfig config;
  config.veto_threshold = 0.3;
  const TransactionResult result = run_transactions(scenario(), config);
  ASSERT_EQ(result.rounds.size(), result.rounds_used);
  // All rounds except possibly the last carry vetoes.
  for (std::size_t r = 0; r + 1 < result.rounds.size(); ++r) {
    EXPECT_FALSE(result.rounds[r].vetoes.empty()) << "round " << r;
  }
  if (result.committed) {
    EXPECT_TRUE(result.rounds.back().vetoes.empty());
  }
}

}  // namespace
}  // namespace vdx::market
