#include "market/exchange.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vdx::market {
namespace {

class ExchangeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 3000;
    config.seed = 31;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* ExchangeTest::scenario_ = nullptr;

TEST_F(ExchangeTest, SingleRoundProducesDecisionsOverTheWire) {
  VdxExchange exchange{scenario()};
  const RoundReport report = exchange.run_round();
  EXPECT_GT(report.wire.shares_sent, 0u);
  EXPECT_GT(report.wire.bids_received, 0u);
  EXPECT_GT(report.wire.accepts_sent, report.wire.bids_received);  // fan-out
  EXPECT_GT(report.wire.bytes_on_wire, 0u);
  EXPECT_GT(report.mean_score, 0.0);
  EXPECT_GT(report.mean_cost, 0.0);
  EXPECT_LT(report.congested_fraction, 0.05);

  const double total_awarded =
      std::accumulate(report.awarded_mbps.begin(), report.awarded_mbps.end(), 0.0);
  EXPECT_GT(total_awarded, 0.0);
}

TEST_F(ExchangeTest, RiskAverseLearnsTrafficPredictability) {
  ExchangeConfig risk_config;
  risk_config.strategy = StrategyKind::kRiskAverse;
  VdxExchange learner{scenario(), risk_config};
  const auto reports = learner.run(8);

  ExchangeConfig static_config;
  static_config.strategy = StrategyKind::kStatic;
  VdxExchange fixed{scenario(), static_config};
  const auto static_reports = fixed.run(8);

  // The learner's prediction error falls well below round 0 and below the
  // static bidder's steady-state error (the paper's §6.3 argument).
  EXPECT_LT(reports.back().mean_prediction_error,
            reports.front().mean_prediction_error * 0.8);
  EXPECT_LT(reports.back().mean_prediction_error,
            static_reports.back().mean_prediction_error);
}

TEST_F(ExchangeTest, FailedCdnIsAbsorbedByOthers) {
  VdxExchange exchange{scenario()};
  const RoundReport healthy = exchange.run_round();

  // Kill the CDN that carried the most traffic.
  std::size_t top = 0;
  for (std::size_t i = 1; i < healthy.awarded_mbps.size(); ++i) {
    if (healthy.awarded_mbps[i] > healthy.awarded_mbps[top]) top = i;
  }
  exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, true);
  const RoundReport degraded = exchange.run_round();

  // The failed CDN gets nothing; every client is still served.
  EXPECT_DOUBLE_EQ(degraded.awarded_mbps[top], 0.0);
  const double healthy_total =
      std::accumulate(healthy.awarded_mbps.begin(), healthy.awarded_mbps.end(), 0.0);
  const double degraded_total =
      std::accumulate(degraded.awarded_mbps.begin(), degraded.awarded_mbps.end(), 0.0);
  EXPECT_NEAR(degraded_total, healthy_total, healthy_total * 0.02);

  // Recovery.
  exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, false);
  const RoundReport recovered = exchange.run_round();
  EXPECT_GT(recovered.awarded_mbps[top], 0.0);
}

TEST_F(ExchangeTest, FraudulentCdnLosesReputationAndTraffic) {
  ExchangeConfig config;
  config.strategy = StrategyKind::kStatic;  // isolate the reputation effect
  VdxExchange exchange{scenario(), config};

  const RoundReport before = exchange.run_round();
  // Pick a CDN that currently wins traffic and turn it fraudulent.
  std::size_t culprit = 0;
  for (std::size_t i = 1; i < before.awarded_mbps.size(); ++i) {
    if (before.awarded_mbps[i] > before.awarded_mbps[culprit]) culprit = i;
  }
  const cdn::CdnId culprit_id{static_cast<std::uint32_t>(culprit)};
  exchange.set_fraudulent(culprit_id, true);

  // Fraud initially wins MORE traffic (great fake scores/prices)...
  const RoundReport fraud_round = exchange.run_round();
  EXPECT_GT(fraud_round.awarded_mbps[culprit], 0.0);

  // ...but the reputation system catches the misreports and squeezes it.
  std::vector<RoundReport> later = exchange.run(6);
  EXPECT_GT(exchange.reputation().error_estimate(culprit_id), 0.5);
  EXPECT_LT(later.back().awarded_mbps[culprit], fraud_round.awarded_mbps[culprit]);
}

TEST_F(ExchangeTest, DeliveryProtocolServesClients) {
  VdxExchange exchange{scenario()};
  // No round yet: a typed error, not an exception (§6.3 hardening).
  const auto premature = exchange.deliver(1, geo::CityId{0}, 2.0);
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.error().code, core::Errc::kNotReady);
  (void)exchange.run_round();

  // Deliver a client in a city that has broker traffic.
  const auto& group = scenario().broker_groups().front();
  const proto::DeliveryOutcome outcome =
      exchange.deliver(123, group.city, group.bitrate_mbps).value();
  EXPECT_EQ(outcome.delivery.session_id, 123u);
  EXPECT_GT(outcome.delivery.delivered_mbps, 0.0);
  EXPECT_LE(outcome.delivery.delivered_mbps, group.bitrate_mbps + 1e-9);
  EXPECT_GT(outcome.bytes_on_wire, 0u);
}

TEST_F(ExchangeTest, InvalidCdnSwitchesThrow) {
  VdxExchange exchange{scenario()};
  EXPECT_THROW(exchange.set_failed(cdn::CdnId{999}, true), std::out_of_range);
  EXPECT_THROW(exchange.set_fraudulent(cdn::CdnId{}, true), std::out_of_range);
}

TEST_F(ExchangeTest, RoundsAreStableWithStaticStrategy) {
  ExchangeConfig config;
  config.strategy = StrategyKind::kStatic;
  config.broker.enable_reputation = false;
  VdxExchange exchange{scenario(), config};
  const RoundReport first = exchange.run_round();
  const RoundReport second = exchange.run_round();
  // No learning, no reputation: identical decisions round over round (the
  // Decision Protocol is deterministic).
  ASSERT_EQ(first.awarded_mbps.size(), second.awarded_mbps.size());
  for (std::size_t i = 0; i < first.awarded_mbps.size(); ++i) {
    EXPECT_NEAR(first.awarded_mbps[i], second.awarded_mbps[i], 1e-6);
  }
}

TEST_F(ExchangeTest, IncrementalActiveLoadReshapesTheNextRound) {
  // The streaming-timeline feed: between epochs the exchange is handed the
  // *current* audience and ambient load, and the next round prices exactly
  // that — not the whole-trace snapshot it was built with.
  ExchangeConfig config;
  config.strategy = StrategyKind::kStatic;
  config.broker.enable_reputation = false;
  config.broker.allow_unbid_groups = true;
  VdxExchange exchange{scenario(), config};
  const RoundReport full = exchange.run_round();

  // Keep every fourth group at a quarter of its audience, re-ided densely.
  std::vector<broker::ClientGroup> slice;
  const auto groups = scenario().broker_groups();
  for (std::size_t g = 0; g < groups.size(); g += 4) {
    broker::ClientGroup group = groups[g];
    group.id = broker::ShareId{static_cast<std::uint32_t>(slice.size())};
    group.client_count *= 0.25;
    slice.push_back(group);
  }
  const std::vector<double> quiet(scenario().catalog().clusters().size(), 0.0);
  exchange.set_active_load(slice, quiet);
  const RoundReport offpeak = exchange.run_round();

  // Shares fan out once per CDN on the wire.
  EXPECT_EQ(offpeak.wire.shares_sent,
            slice.size() * scenario().catalog().cdns().size());
  const double full_awarded =
      std::accumulate(full.awarded_mbps.begin(), full.awarded_mbps.end(), 0.0);
  const double offpeak_awarded = std::accumulate(
      offpeak.awarded_mbps.begin(), offpeak.awarded_mbps.end(), 0.0);
  EXPECT_GT(offpeak_awarded, 0.0);
  EXPECT_LT(offpeak_awarded, full_awarded * 0.5);
  EXPECT_GT(offpeak.mean_score, 0.0);

  // An empty audience is a legal update: the round completes with nothing
  // gathered and nothing awarded instead of erroring out.
  exchange.set_active_load({}, quiet);
  const RoundReport idle = exchange.run_round();
  EXPECT_EQ(idle.wire.shares_sent, 0u);
  EXPECT_DOUBLE_EQ(
      std::accumulate(idle.awarded_mbps.begin(), idle.awarded_mbps.end(), 0.0), 0.0);
}

TEST_F(ExchangeTest, MalformedActiveLoadThrows) {
  VdxExchange exchange{scenario()};
  const std::vector<double> short_loads(1, 0.0);
  EXPECT_THROW(exchange.set_active_load({}, short_loads), std::invalid_argument);

  // Demand ids must be dense and in order (what broker::group_sessions
  // emits); anything else would silently mis-attribute placements.
  std::vector<broker::ClientGroup> sparse{scenario().broker_groups().begin(),
                                          scenario().broker_groups().end()};
  ASSERT_GT(sparse.size(), 1u);
  sparse[0].id = broker::ShareId{42'000};
  const std::vector<double> quiet(scenario().catalog().clusters().size(), 0.0);
  EXPECT_THROW(exchange.set_active_load(sparse, quiet), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::market
