// Chaos-transport acceptance tests (§6.3): the exchange must keep deciding —
// deterministically — while the wire drops and corrupts frames, degrade
// gracefully via stale-bid substitution, and re-home delivery sessions when
// a CDN goes dark mid-stream.
#include <gtest/gtest.h>

#include <numeric>

#include "market/exchange.hpp"

namespace vdx::market {
namespace {

class ChaosExchangeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 3000;
    config.seed = 31;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

  static ExchangeConfig chaos_config() {
    ExchangeConfig config;
    config.chaos.faults.drop_rate = 0.10;
    config.chaos.faults.corrupt_rate = 0.02;
    config.chaos.faults.seed = 0x5EED;
    return config;
  }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* ChaosExchangeTest::scenario_ = nullptr;

TEST_F(ChaosExchangeTest, LossyRunCompletesDegradedButClose) {
  VdxExchange faulty{scenario(), chaos_config()};
  const auto reports = faulty.run(10);
  ASSERT_EQ(reports.size(), 10u);

  VdxExchange perfect{scenario()};
  const auto clean = perfect.run(10);

  std::size_t degraded_rounds = 0;
  std::size_t stale_rounds = 0;
  double faulty_score = 0.0;
  double clean_score = 0.0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    // Chaos really happened on the wire...
    EXPECT_GT(reports[i].wire.chaos.messages, 0u);
    EXPECT_GT(reports[i].wire.chaos.frames_dropped, 0u);
    // ...and the market still decided.
    EXPECT_GT(reports[i].mean_score, 0.0);
    const double total = std::accumulate(reports[i].awarded_mbps.begin(),
                                         reports[i].awarded_mbps.end(), 0.0);
    EXPECT_GT(total, 0.0);
    if (reports[i].degraded) ++degraded_rounds;
    if (reports[i].stale_bids_used > 0) ++stale_rounds;
    faulty_score += reports[i].mean_score;
    clean_score += clean[i].mean_score;
  }
  EXPECT_GE(degraded_rounds, 1u);
  // The stale-bid fallback actually carried traffic in some round.
  EXPECT_GE(stale_rounds, 1u);

  // Mean score stays within 15% of the fault-free exchange.
  faulty_score /= static_cast<double>(reports.size());
  clean_score /= static_cast<double>(clean.size());
  EXPECT_NEAR(faulty_score, clean_score, 0.15 * clean_score);

  // Injector totals reconcile.
  const proto::FaultCounters& counters = faulty.fault_counters();
  EXPECT_GT(counters.frames, 0u);
  EXPECT_EQ(counters.delivered + counters.dropped,
            counters.frames + counters.duplicated);
}

TEST_F(ChaosExchangeTest, SameSeedReplaysByteIdentically) {
  VdxExchange first{scenario(), chaos_config()};
  VdxExchange second{scenario(), chaos_config()};
  const auto a = first.run(10);
  const auto b = second.run(10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].wire.bids_received, b[i].wire.bids_received);
    EXPECT_EQ(a[i].wire.bytes_on_wire, b[i].wire.bytes_on_wire);
    EXPECT_EQ(a[i].wire.chaos.retries, b[i].wire.chaos.retries);
    EXPECT_EQ(a[i].wire.chaos.timeouts, b[i].wire.chaos.timeouts);
    EXPECT_EQ(a[i].wire.chaos.decode_rejects, b[i].wire.chaos.decode_rejects);
    EXPECT_EQ(a[i].wire.chaos.frames_dropped, b[i].wire.chaos.frames_dropped);
    EXPECT_EQ(a[i].degraded, b[i].degraded);
    EXPECT_EQ(a[i].stale_bids_used, b[i].stale_bids_used);
    // Exact — not approximate — equality: the run must replay bit-for-bit.
    EXPECT_EQ(a[i].mean_score, b[i].mean_score);
    EXPECT_EQ(a[i].mean_cost, b[i].mean_cost);
    EXPECT_EQ(a[i].stale_bid_share, b[i].stale_bid_share);
    ASSERT_EQ(a[i].awarded_mbps.size(), b[i].awarded_mbps.size());
    for (std::size_t c = 0; c < a[i].awarded_mbps.size(); ++c) {
      EXPECT_EQ(a[i].awarded_mbps[c], b[i].awarded_mbps[c]);
    }
  }
}

TEST_F(ChaosExchangeTest, PerfectTransportReportsNoChaos) {
  VdxExchange exchange{scenario()};
  const RoundReport report = exchange.run_round();
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.quorum_met);
  EXPECT_EQ(report.stale_bids_used, 0u);
  EXPECT_EQ(report.timeout_rate, 0.0);
  EXPECT_EQ(report.wire.chaos.messages, 0u);
  EXPECT_EQ(exchange.fault_counters().frames, 0u);
}

TEST_F(ChaosExchangeTest, TotalBlackoutDegradesToEmptyRound) {
  ExchangeConfig config;
  config.chaos.faults.drop_rate = 1.0;
  config.chaos.faults.seed = 0x5EED;
  VdxExchange exchange{scenario(), config};
  // Every frame is lost, the stale cache is empty: the round must still
  // complete — zero bids, zero awards, degraded, no quorum — not throw.
  RoundReport report;
  ASSERT_NO_THROW(report = exchange.run_round());
  EXPECT_EQ(report.wire.bids_received, 0u);
  EXPECT_TRUE(report.degraded);
  EXPECT_FALSE(report.quorum_met);
  EXPECT_GT(report.wire.chaos.timeouts, 0u);
  for (const double mbps : report.awarded_mbps) EXPECT_EQ(mbps, 0.0);
}

TEST_F(ChaosExchangeTest, MassCdnFailureRidesOnStaleBidsThenAgesOut) {
  ExchangeConfig config = chaos_config();
  VdxExchange exchange{scenario(), config};
  (void)exchange.run_round();  // primes the broker's stale-bid cache

  // Fail all but one CDN. The broker cannot tell dead from timed-out: the
  // next round substitutes the dark CDNs' cached bids (their former winners
  // among them), so stale bids carry real traffic through the outage.
  const std::size_t cdn_count = scenario().catalog().cdns().size();
  ASSERT_GE(cdn_count, 2u);
  for (std::size_t i = 1; i < cdn_count; ++i) {
    exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(i)}, true);
  }
  const RoundReport outage = exchange.run_round();
  EXPECT_TRUE(outage.degraded);
  EXPECT_TRUE(outage.quorum_met);  // 1 of 1 *live* CDNs delivered fresh bids
  EXPECT_GT(outage.stale_bids_used, 0u);
  EXPECT_GT(outage.stale_bid_share, 0.0);

  // Once the cache ages past stale_ttl_rounds the dead CDNs stop winning:
  // the market converges on the survivor (whose own occasionally-dropped
  // bids may still ride the cache — that is the mechanism working).
  RoundReport settled;
  for (std::size_t r = 0; r <= config.broker.stale_ttl_rounds; ++r) {
    settled = exchange.run_round();
  }
  for (std::size_t i = 1; i < cdn_count; ++i) {
    EXPECT_EQ(settled.awarded_mbps[i], 0.0);
  }
  const double survivor_total = std::accumulate(
      settled.awarded_mbps.begin(), settled.awarded_mbps.end(), 0.0);
  EXPECT_GT(survivor_total, 0.0);
}

TEST_F(ChaosExchangeTest, DarkCdnSessionsAreRehomedMidStream) {
  VdxExchange exchange{scenario()};
  const RoundReport report = exchange.run_round();

  // Kill the CDN carrying the most traffic; its clusters go dark mid-stream.
  std::size_t top = 0;
  for (std::size_t i = 1; i < report.awarded_mbps.size(); ++i) {
    if (report.awarded_mbps[i] > report.awarded_mbps[top]) top = i;
  }
  exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, true);

  std::size_t rehomed = 0;
  std::size_t served = 0;
  const auto groups = scenario().broker_groups();
  for (std::uint32_t session = 0; session < 200; ++session) {
    const auto& group = groups[session % groups.size()];
    const auto outcome = exchange.deliver(session, group.city, group.bitrate_mbps);
    ASSERT_TRUE(outcome.ok());
    if (outcome.value().delivery.delivered_mbps > 0.0) ++served;
    if (outcome.value().rehomed) {
      ++rehomed;
      // The session ended up on a live cluster owned by someone else.
      const cdn::ClusterId home{outcome.value().result.cluster_id};
      EXPECT_NE(scenario().catalog().cluster(home).cdn.value(),
                static_cast<std::uint32_t>(top));
      EXPECT_GT(outcome.value().delivery.delivered_mbps, 0.0);
    }
  }
  // The top CDN carried real traffic, so a visible share of sessions must
  // have hit its dark clusters and been re-homed.
  EXPECT_GE(rehomed, 1u);
  EXPECT_GT(served, 150u);
}

}  // namespace
}  // namespace vdx::market
