// Observability acceptance (DESIGN.md §7): the exchange threads metrics,
// spans, and journal events through every layer; logical-clock traces are
// byte-identical across same-seed chaos runs; and RoundReport's fault
// telemetry agrees with the named `exchange.*` counters it is derived from.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "market/exchange.hpp"
#include "obs/observe.hpp"

namespace vdx::market {
namespace {

class ObsExchangeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 3000;
    config.seed = 31;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

  static ExchangeConfig chaos_config() {
    ExchangeConfig config;
    config.chaos.faults.drop_rate = 0.10;
    config.chaos.faults.corrupt_rate = 0.02;
    config.chaos.faults.seed = 0x5EED;
    return config;
  }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* ObsExchangeTest::scenario_ = nullptr;

/// One fully observed run: trace + journal JSONL and the report stream.
struct ObservedRun {
  std::string trace;
  std::string journal;
  std::vector<RoundReport> reports;
};

ObservedRun observed_run(const sim::Scenario& scenario, ExchangeConfig config,
                         std::size_t rounds) {
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  config.obs = obs::Observer{&metrics, &tracer, &journal};
  VdxExchange exchange{scenario, config};
  ObservedRun run;
  run.reports = exchange.run(rounds);
  std::ostringstream trace_out;
  tracer.write_jsonl(trace_out);
  run.trace = trace_out.str();
  std::ostringstream journal_out;
  journal.write_jsonl(journal_out);
  run.journal = journal_out.str();
  return run;
}

TEST_F(ObsExchangeTest, SameSeedChaosRunsProduceByteIdenticalTraces) {
  const ObservedRun first = observed_run(scenario(), chaos_config(), 4);
  const ObservedRun second = observed_run(scenario(), chaos_config(), 4);
  EXPECT_FALSE(first.trace.empty());
  EXPECT_FALSE(first.journal.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.journal, second.journal);
  // And chaos really happened — this is not a trivially empty transport.
  EXPECT_NE(first.journal.find("\"event\":\"retry\""), std::string::npos);
}

TEST_F(ObsExchangeTest, TraceCoversAllSevenDecisionStepsOnBothTransports) {
  for (const bool chaos : {false, true}) {
    obs::SpanTracer tracer;
    ExchangeConfig config = chaos ? chaos_config() : ExchangeConfig{};
    config.obs.tracer = &tracer;
    VdxExchange exchange{scenario(), config};
    (void)exchange.run_round();

    std::set<std::string> seen;
    for (const auto& span : tracer.spans()) {
      seen.emplace(tracer.name(span));
    }
    for (const char* step :
         {"decision.round", "decision.estimate", "decision.gather",
          "decision.share", "decision.matching", "decision.announce",
          "decision.optimize", "decision.accept", "broker.optimize",
          "solver.solve"}) {
      EXPECT_TRUE(seen.contains(step)) << (chaos ? "chaos: " : "perfect: ")
                                       << step << " span missing";
    }
    // The logical clock moved: the trace is not flat.
    EXPECT_GT(tracer.logical_now(), 0u);
  }
}

TEST_F(ObsExchangeTest, RoundReportTelemetryMatchesNamedCounters) {
  obs::MetricsRegistry metrics;
  ExchangeConfig config = chaos_config();
  config.obs.metrics = &metrics;
  VdxExchange exchange{scenario(), config};

  constexpr std::size_t kRounds = 5;
  std::size_t timeouts = 0;
  std::size_t retries = 0;
  std::size_t stale = 0;
  std::size_t degraded = 0;
  std::size_t quorum_misses = 0;
  for (const RoundReport& report : exchange.run(kRounds)) {
    timeouts += report.wire.chaos.timeouts;
    retries += report.wire.chaos.retries;
    stale += report.stale_bids_used;
    if (report.degraded) ++degraded;
    if (!report.quorum_met) ++quorum_misses;
  }

  const auto counter = [&](const char* name) {
    const auto row = metrics.find(name);
    return row.has_value() ? row->value : -1.0;
  };
  EXPECT_DOUBLE_EQ(counter("exchange.rounds"), kRounds);
  EXPECT_DOUBLE_EQ(counter("exchange.timeouts"), static_cast<double>(timeouts));
  EXPECT_DOUBLE_EQ(counter("exchange.retries"), static_cast<double>(retries));
  EXPECT_DOUBLE_EQ(counter("exchange.stale_bids"), static_cast<double>(stale));
  EXPECT_DOUBLE_EQ(counter("exchange.degraded_rounds"),
                   static_cast<double>(degraded));
  EXPECT_DOUBLE_EQ(counter("exchange.quorum_misses"),
                   static_cast<double>(quorum_misses));
  // The engine's own aggregation agrees with the exchange's view.
  EXPECT_DOUBLE_EQ(counter("proto.timeouts"), static_cast<double>(timeouts));
  EXPECT_DOUBLE_EQ(counter("proto.retries"), static_cast<double>(retries));
  // The solver was invoked under the broker's Optimize each round.
  const auto solves = metrics.find("broker.optimize.calls");
  ASSERT_TRUE(solves.has_value());
  EXPECT_DOUBLE_EQ(solves->value, kRounds);
}

TEST_F(ObsExchangeTest, ExchangeWithoutObserverStillSelfMeters) {
  VdxExchange exchange{scenario(), chaos_config()};
  (void)exchange.run(2);
  // The owned fallback registry backs RoundReport even when the caller
  // supplied no observer at all.
  const auto row = exchange.metrics().find("exchange.rounds");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->value, 2.0);
}

TEST_F(ObsExchangeTest, DarkClusterFailoverLandsInJournalAndCounters) {
  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  ExchangeConfig config;
  config.obs.metrics = &metrics;
  config.obs.journal = &journal;
  VdxExchange exchange{scenario(), config};
  const RoundReport report = exchange.run_round();

  // Kill the CDN carrying the most traffic; its clusters go dark.
  std::size_t top = 0;
  for (std::size_t i = 1; i < report.awarded_mbps.size(); ++i) {
    if (report.awarded_mbps[i] > report.awarded_mbps[top]) top = i;
  }
  exchange.set_failed(cdn::CdnId{static_cast<std::uint32_t>(top)}, true);

  const auto groups = scenario().broker_groups();
  for (std::uint32_t session = 0; session < 200; ++session) {
    const auto& group = groups[session % groups.size()];
    ASSERT_TRUE(exchange.deliver(session, group.city, group.bitrate_mbps).ok());
  }

  const auto failovers = metrics.find("exchange.failovers");
  ASSERT_TRUE(failovers.has_value());
  EXPECT_GE(failovers->value, 1.0);
  std::size_t failover_events = 0;
  for (const obs::Event& event : journal.events()) {
    if (event.kind == obs::EventKind::kFailover) ++failover_events;
  }
  EXPECT_GE(failover_events, 1u);
  const auto sessions = metrics.find("delivery.sessions");
  ASSERT_TRUE(sessions.has_value());
  EXPECT_DOUBLE_EQ(sessions->value, 200.0);
}

}  // namespace
}  // namespace vdx::market
