// Exchange save_state()/restore_state(): a fresh exchange restored from a
// mid-run snapshot must continue with byte-identical RoundReports — on the
// perfect transport and through the chaos transport (whose injector RNG
// positions ride in the snapshot). Corrupt or incompatible bytes are
// rejected typed and leave the exchange unchanged (DESIGN.md §10).
#include "market/exchange.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "state/checkpoint.hpp"

namespace vdx::market {
namespace {

class ExchangeStateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 3000;
    config.seed = 31;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

  static ExchangeConfig chaos_config() {
    ExchangeConfig config;
    config.chaos.faults.drop_rate = 0.10;
    config.chaos.faults.corrupt_rate = 0.02;
    config.chaos.faults.seed = 0x5EED;
    return config;
  }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* ExchangeStateTest::scenario_ = nullptr;

void expect_reports_identical(const RoundReport& actual, const RoundReport& expected) {
  EXPECT_EQ(actual.round, expected.round);
  EXPECT_EQ(actual.mean_score, expected.mean_score);
  EXPECT_EQ(actual.mean_cost, expected.mean_cost);
  EXPECT_EQ(actual.congested_fraction, expected.congested_fraction);
  EXPECT_EQ(actual.mean_prediction_error, expected.mean_prediction_error);
  EXPECT_EQ(actual.awarded_mbps, expected.awarded_mbps);
  EXPECT_EQ(actual.wire.shares_sent, expected.wire.shares_sent);
  EXPECT_EQ(actual.wire.bids_received, expected.wire.bids_received);
  EXPECT_EQ(actual.wire.accepts_sent, expected.wire.accepts_sent);
  EXPECT_EQ(actual.wire.bytes_on_wire, expected.wire.bytes_on_wire);
  EXPECT_EQ(actual.degraded, expected.degraded);
  EXPECT_EQ(actual.quorum_met, expected.quorum_met);
  EXPECT_EQ(actual.stale_bids_used, expected.stale_bids_used);
  EXPECT_EQ(actual.stale_bid_share, expected.stale_bid_share);
  EXPECT_EQ(actual.timeout_rate, expected.timeout_rate);
}

TEST_F(ExchangeStateTest, PerfectTransportRestoreContinuesByteIdentically) {
  VdxExchange reference{scenario()};
  (void)reference.run(3);
  const std::vector<std::uint8_t> bytes = reference.save_state();

  VdxExchange restored{scenario()};
  const core::Status status = restored.restore_state(bytes);
  ASSERT_TRUE(status.ok()) << status.error().message;

  // The risk-averse strategies' learned market state, the reputation
  // ledger, and the round counter all crossed the snapshot, so the next
  // rounds replay bit-exactly.
  for (int round = 0; round < 3; ++round) {
    expect_reports_identical(restored.run_round(), reference.run_round());
  }
}

TEST_F(ExchangeStateTest, ChaosTransportRestoreReplaysTheFaultSequence) {
  VdxExchange reference{scenario(), chaos_config()};
  (void)reference.run(3);
  const std::vector<std::uint8_t> bytes = reference.save_state();

  VdxExchange restored{scenario(), chaos_config()};
  ASSERT_TRUE(restored.restore_state(bytes).ok());

  // The injector's per-link RNG positions and burst flags are part of the
  // snapshot: post-restore rounds see the exact faults — drops, corruptions,
  // stale-bid substitutions — the uninterrupted run would have seen.
  for (int round = 0; round < 3; ++round) {
    const RoundReport expected = reference.run_round();
    const RoundReport actual = restored.run_round();
    expect_reports_identical(actual, expected);
    EXPECT_EQ(actual.wire.chaos.frames_dropped, expected.wire.chaos.frames_dropped);
    EXPECT_EQ(actual.wire.chaos.retries, expected.wire.chaos.retries);
    EXPECT_EQ(actual.wire.chaos.timeouts, expected.wire.chaos.timeouts);
    EXPECT_EQ(actual.wire.chaos.decode_rejects, expected.wire.chaos.decode_rejects);
  }
  EXPECT_EQ(restored.fault_counters().frames, reference.fault_counters().frames);
  EXPECT_EQ(restored.fault_counters().dropped, reference.fault_counters().dropped);
}

TEST_F(ExchangeStateTest, FaultSwitchesSurviveTheSnapshot) {
  VdxExchange reference{scenario()};
  reference.set_failed(cdn::CdnId{2}, true);
  reference.set_fraudulent(cdn::CdnId{5}, true);
  (void)reference.run(2);
  const std::vector<std::uint8_t> bytes = reference.save_state();

  VdxExchange restored{scenario()};
  ASSERT_TRUE(restored.restore_state(bytes).ok());
  expect_reports_identical(restored.run_round(), reference.run_round());
}

TEST_F(ExchangeStateTest, CorruptBytesAreRejectedAndLeaveTheExchangeUnchanged) {
  VdxExchange reference{scenario()};
  (void)reference.run(2);
  const std::vector<std::uint8_t> bytes = reference.save_state();

  VdxExchange subject{scenario()};
  ASSERT_TRUE(subject.restore_state(bytes).ok());

  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  core::Status status = subject.restore_state(flipped);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kCorruptSnapshot);

  std::vector<std::uint8_t> truncated{bytes.begin(), bytes.end() - 5};
  status = subject.restore_state(truncated);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kCorruptSnapshot);

  status = subject.restore_state(std::vector<std::uint8_t>{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kCorruptSnapshot);

  // All three rejections left the restored state intact.
  expect_reports_identical(subject.run_round(), reference.run_round());
}

TEST_F(ExchangeStateTest, TimelineSnapshotIsNotAnExchangeSnapshot) {
  // A structurally valid envelope of the *wrong kind* (a timeline
  // checkpoint) must fail on its missing exchange sections, not restore
  // garbage.
  state::TimelineCheckpoint checkpoint;
  checkpoint.next_epoch = 1;
  const std::vector<std::uint8_t> bytes = state::encode(checkpoint);

  VdxExchange exchange{scenario()};
  const core::Status status = exchange.restore_state(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kCorruptSnapshot);
}

TEST_F(ExchangeStateTest, TransportKindMismatchIsRejected) {
  VdxExchange chaotic{scenario(), chaos_config()};
  (void)chaotic.run(1);
  VdxExchange perfect{scenario()};
  (void)perfect.run(1);

  core::Status status = perfect.restore_state(chaotic.save_state());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kInvalidArgument);

  status = chaotic.restore_state(perfect.save_state());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kInvalidArgument);
}

TEST_F(ExchangeStateTest, DifferentCatalogIsRejected) {
  VdxExchange reference{scenario()};
  (void)reference.run(1);
  const std::vector<std::uint8_t> bytes = reference.save_state();

  // A scenario with extra city CDNs has a different CDN count; its exchange
  // must refuse the snapshot instead of mis-mapping agents.
  sim::ScenarioConfig other_config;
  other_config.trace.session_count = 3000;
  other_config.seed = 31;
  other_config.city_cdn_count = 3;
  const sim::Scenario other = sim::Scenario::build(other_config);
  VdxExchange mismatched{other};
  const core::Status status = mismatched.restore_state(bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kInvalidArgument);
}

}  // namespace
}  // namespace vdx::market
