#include "market/agents.hpp"

#include <gtest/gtest.h>

#include "cdn/menu_cache.hpp"
#include "sim/designs.hpp"

namespace vdx::market {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 2000;
    config.seed = 77;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
    background_ = new std::vector<double>(sim::place_background(*scenario_));
  }
  static void TearDownTestSuite() {
    delete background_;
    delete scenario_;
    scenario_ = nullptr;
    background_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }
  static const std::vector<double>& background() { return *background_; }

  static std::vector<proto::ShareMessage> gather_shares() {
    VdxBrokerAgent broker{scenario()};
    return broker.gather();
  }

 private:
  static sim::Scenario* scenario_;
  static std::vector<double>* background_;
};

sim::Scenario* AgentTest::scenario_ = nullptr;
std::vector<double>* AgentTest::background_ = nullptr;

TEST_F(AgentTest, BrokerGatherMatchesGroups) {
  const auto shares = gather_shares();
  ASSERT_EQ(shares.size(), scenario().broker_groups().size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const broker::ClientGroup& group = scenario().broker_groups()[i];
    EXPECT_EQ(shares[i].share_id, group.id.value());
    EXPECT_EQ(shares[i].location, group.city.value());
    EXPECT_DOUBLE_EQ(shares[i].data_size_mbps, group.bitrate_mbps);
    EXPECT_EQ(shares[i].client_count,
              static_cast<std::uint32_t>(std::llround(group.client_count)));
  }
}

TEST_F(AgentTest, CdnAgentBidsOnlyWithSpareCapacity) {
  cdn::StaticStrategy strategy;
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  const auto bids = agent.announce();
  ASSERT_FALSE(bids.empty());
  for (const proto::BidMessage& bid : bids) {
    EXPECT_EQ(bid.cdn_id, 0u);
    EXPECT_GT(bid.capacity_mbps, 0.0);
    EXPECT_GT(bid.price, 0.0);
    EXPECT_GT(bid.performance_estimate, 0.0);
    const cdn::Cluster& cluster =
        scenario().catalog().cluster(cdn::ClusterId{bid.cluster_id});
    EXPECT_EQ(cluster.cdn, cdn::CdnId{0});
    // Committed capacity never exceeds capacity net of background.
    EXPECT_LE(bid.capacity_mbps,
              cluster.capacity - background()[bid.cluster_id] + 1e-9);
  }
}

TEST_F(AgentTest, CachedAndFallbackMenusProduceIdenticalBids) {
  // The announce() loop reads candidate lanes either out of the shared arena
  // or staged locally from candidates_for (no usable cache). Both shapes
  // must produce bit-identical bids — including through a cache whose config
  // mismatches, which has to be ignored in favor of the fallback.
  const auto shares = gather_shares();
  CdnAgentConfig config;

  cdn::MatchingConfig matching;
  matching.max_candidates = config.bid_count;
  matching.score_tolerance = config.menu_tolerance;
  const cdn::CandidateMenuCache cache{scenario().catalog(), scenario().mapping(),
                                      scenario().world().cities().size(), matching};
  cdn::MatchingConfig other = matching;
  other.max_candidates = config.bid_count + 1;
  const cdn::CandidateMenuCache mismatched{scenario().catalog(), scenario().mapping(),
                                           scenario().world().cities().size(), other};

  const auto announce_with = [&](const cdn::CandidateMenuCache* menus) {
    cdn::StaticStrategy strategy;
    CdnAgentConfig with_menus = config;
    with_menus.menus = menus;
    VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background(), with_menus};
    agent.handle_share(shares);
    return agent.announce();
  };

  const auto cached = announce_with(&cache);
  const auto fallback = announce_with(nullptr);
  const auto ignored = announce_with(&mismatched);
  ASSERT_EQ(cached.size(), fallback.size());
  ASSERT_EQ(ignored.size(), fallback.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].share_id, fallback[i].share_id);
    EXPECT_EQ(cached[i].cluster_id, fallback[i].cluster_id);
    EXPECT_EQ(cached[i].performance_estimate, fallback[i].performance_estimate);
    EXPECT_EQ(cached[i].price, fallback[i].price);
    EXPECT_EQ(cached[i].capacity_mbps, fallback[i].capacity_mbps);
    EXPECT_EQ(ignored[i].cluster_id, fallback[i].cluster_id);
    EXPECT_EQ(ignored[i].capacity_mbps, fallback[i].capacity_mbps);
  }
}

TEST_F(AgentTest, StaticStrategyPricesAtMarkup) {
  cdn::StaticStrategy strategy{1.2};
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  for (const proto::BidMessage& bid : agent.announce()) {
    const cdn::Cluster& cluster =
        scenario().catalog().cluster(cdn::ClusterId{bid.cluster_id});
    EXPECT_NEAR(bid.price, cluster.unit_cost() * 1.2, 1e-9);
  }
}

TEST_F(AgentTest, FailedAgentGoesSilent) {
  cdn::StaticStrategy strategy;
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  agent.set_failed(true);
  EXPECT_TRUE(agent.announce().empty());
  agent.set_failed(false);
  EXPECT_FALSE(agent.announce().empty());
}

TEST_F(AgentTest, FraudulentAgentMisreports) {
  cdn::StaticStrategy strategy;
  VdxCdnAgent honest{scenario(), cdn::CdnId{0}, strategy, background()};
  honest.handle_share(gather_shares());
  const auto honest_bids = honest.announce();

  cdn::StaticStrategy strategy2;
  VdxCdnAgent liar{scenario(), cdn::CdnId{0}, strategy2, background()};
  liar.handle_share(gather_shares());
  liar.set_fraudulent(true);
  const auto fraud_bids = liar.announce();

  ASSERT_EQ(honest_bids.size(), fraud_bids.size());
  for (std::size_t i = 0; i < honest_bids.size(); ++i) {
    EXPECT_LT(fraud_bids[i].performance_estimate,
              honest_bids[i].performance_estimate);
    EXPECT_LT(fraud_bids[i].price, honest_bids[i].price);
  }
}

TEST_F(AgentTest, AcceptFeedbackReachesStrategy) {
  cdn::RiskAverseStrategy strategy;
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  const auto bids = agent.announce();
  ASSERT_FALSE(bids.empty());

  // Feed back: everything lost.
  std::vector<proto::AcceptMessage> accepts;
  for (const proto::BidMessage& bid : bids) {
    proto::AcceptMessage accept;
    accept.cluster_id = bid.cluster_id;
    accept.share_id = bid.share_id;
    accept.cdn_id = bid.cdn_id;
    accept.awarded_mbps = 0.0;
    accepts.push_back(accept);
  }
  agent.handle_accept(accepts);
  EXPECT_DOUBLE_EQ(agent.awarded_mbps(), 0.0);

  // After losses, the learner shades its capacity commitments down.
  const auto shaded = agent.announce();
  double before = 0.0;
  double after = 0.0;
  for (const auto& b : bids) before += b.capacity_mbps;
  for (const auto& b : shaded) after += b.capacity_mbps;
  EXPECT_LT(after, before);
}

TEST_F(AgentTest, AcceptIgnoresOtherCdns) {
  cdn::RiskAverseStrategy strategy;
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  (void)agent.announce();
  proto::AcceptMessage foreign;
  foreign.cdn_id = 5;
  foreign.awarded_mbps = 1000.0;
  agent.handle_accept(std::vector<proto::AcceptMessage>{foreign});
  EXPECT_DOUBLE_EQ(agent.awarded_mbps(), 0.0);
}

TEST_F(AgentTest, BrokerOptimizeProducesAcceptPerBid) {
  VdxBrokerAgent broker{scenario()};
  (void)broker.gather();

  cdn::StaticStrategy strategy;
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  const auto bids = agent.announce();

  const auto accepts = broker.optimize(bids);
  EXPECT_EQ(accepts.size(), bids.size());
  double awarded = 0.0;
  for (const proto::AcceptMessage& accept : accepts) awarded += accept.awarded_mbps;
  EXPECT_GT(awarded, 0.0);  // the lone bidder wins everything it can host
  EXPECT_FALSE(broker.placements().empty());
}

TEST_F(AgentTest, ResolveReturnsWinningClusters) {
  VdxBrokerAgent broker{scenario()};
  (void)broker.gather();
  cdn::StaticStrategy strategy;
  VdxCdnAgent agent{scenario(), cdn::CdnId{0}, strategy, background()};
  agent.handle_share(gather_shares());
  (void)broker.optimize(agent.announce());

  const broker::ClientGroup& group = scenario().broker_groups().front();
  proto::QueryMessage query;
  query.session_id = 9;
  query.location = group.city.value();
  const proto::ResultMessage result = broker.resolve(query);
  EXPECT_EQ(result.session_id, 9u);
  ASSERT_NE(result.cluster_id, cdn::ClusterId::invalid_value);
  EXPECT_EQ(scenario().catalog().cluster(cdn::ClusterId{result.cluster_id}).cdn,
            cdn::CdnId{0});
}

TEST_F(AgentTest, ResolveFailsGracefullyWithoutDecision) {
  VdxBrokerAgent broker{scenario()};
  proto::QueryMessage query;
  query.location = 0;
  const proto::ResultMessage result = broker.resolve(query);
  EXPECT_EQ(result.cluster_id, cdn::ClusterId::invalid_value);
}

TEST_F(AgentTest, ClusterServiceDegradesWhenOverloaded) {
  std::vector<double> loads(scenario().catalog().clusters().size(), 0.0);
  const cdn::Cluster& cluster = scenario().catalog().clusters().front();
  loads[cluster.id.value()] = cluster.capacity * 2.0;  // 200% loaded

  ClusterService service{scenario(), loads};
  service.register_session(1, 4.0);
  proto::RequestMessage request;
  request.session_id = 1;
  request.cluster_id = cluster.id.value();
  const proto::DeliveryMessage delivery = service.serve(request);
  EXPECT_NEAR(delivery.delivered_mbps, 2.0, 1e-9);  // fair-share halved

  // Unknown cluster: delivery fails, no crash.
  request.cluster_id = 999999;
  EXPECT_DOUBLE_EQ(service.serve(request).delivered_mbps, 0.0);
}

TEST_F(AgentTest, BackgroundArityValidated) {
  cdn::StaticStrategy strategy;
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(
      (VdxCdnAgent{scenario(), cdn::CdnId{0}, strategy, wrong}),
      std::invalid_argument);
}

}  // namespace
}  // namespace vdx::market
