#include "solver/problem.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vdx::solver {
namespace {

AssignmentProblem tiny_problem() {
  AssignmentProblem p;
  p.group_counts = {3.0, 2.0};
  p.capacities = {4.0, 10.0};
  p.options = {
      {0, 0, 1.0, 1.0},           // group 0 -> resource 0
      {0, 1, 2.0, 1.0},           // group 0 -> resource 1
      {1, 0, 1.5, 2.0},           // group 1 -> resource 0 (demand 2/client)
      {1, kNoResource, 5.0, 1.0}, // group 1 -> uncapacitated
  };
  return p;
}

TEST(Problem, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(tiny_problem().validate());
}

TEST(Problem, ValidateCatchesDefects) {
  AssignmentProblem p = tiny_problem();
  p.options[0].group = 9;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = tiny_problem();
  p.options[0].resource = 9;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = tiny_problem();
  p.group_counts[0] = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = tiny_problem();
  p.capacities[0] = -2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = tiny_problem();
  p.options[2].unit_demand = 0.0;  // resource-consuming with zero demand
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = tiny_problem();
  p.options.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);  // groups with no options
}

TEST(Problem, TotalClients) {
  EXPECT_DOUBLE_EQ(tiny_problem().total_clients(), 5.0);
}

TEST(Evaluate, ObjectiveAndCompleteness) {
  const AssignmentProblem p = tiny_problem();
  const Assignment a = evaluate(p, {3.0, 0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(a.objective, 3.0 * 1.0 + 2.0 * 1.5);
  EXPECT_TRUE(a.complete);
  // Resource 0 load: 3*1 + 2*2 = 7 > cap 4 -> overflow 3.
  EXPECT_DOUBLE_EQ(a.overflow_demand, 3.0);
  EXPECT_DOUBLE_EQ(a.penalized_objective(10.0), a.objective + 30.0);
}

TEST(Evaluate, IncompleteWhenGroupUnderassigned) {
  const AssignmentProblem p = tiny_problem();
  const Assignment a = evaluate(p, {1.0, 0.0, 2.0, 0.0});
  EXPECT_FALSE(a.complete);
}

TEST(Evaluate, RejectsNegativeAmountsAndArityMismatch) {
  const AssignmentProblem p = tiny_problem();
  EXPECT_THROW(evaluate(p, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(evaluate(p, {-1.0, 0.0, 0.0, 0.0}), std::invalid_argument);
}

TEST(ResourceLoads, AccumulatesDemand) {
  const AssignmentProblem p = tiny_problem();
  const auto loads = resource_loads(p, std::vector<double>{1.0, 2.0, 1.0, 1.0});
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 1.0 * 1.0 + 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(loads[1], 2.0 * 1.0);
}

TEST(RoundToIntegers, PreservesGroupTotals) {
  const AssignmentProblem p = tiny_problem();
  const auto rounded = round_to_integers(p, std::vector<double>{1.4, 1.6, 0.5, 1.5});
  double g0 = rounded[0] + rounded[1];
  double g1 = rounded[2] + rounded[3];
  EXPECT_DOUBLE_EQ(g0, 3.0);
  EXPECT_DOUBLE_EQ(g1, 2.0);
  for (const double r : rounded) {
    EXPECT_DOUBLE_EQ(r, std::round(r));  // integral
    EXPECT_GE(r, 0.0);
  }
}

TEST(RoundToIntegers, AlreadyIntegralIsUnchanged) {
  const AssignmentProblem p = tiny_problem();
  const std::vector<double> amounts{3.0, 0.0, 2.0, 0.0};
  const auto rounded = round_to_integers(p, amounts);
  EXPECT_EQ(rounded, amounts);
}

TEST(RoundToIntegers, LargestRemainderWins) {
  AssignmentProblem p;
  p.group_counts = {1.0};
  p.options = {{0, kNoResource, 1.0, 1.0}, {0, kNoResource, 2.0, 1.0}};
  // 0.3 vs 0.7 fractional: the 0.7 option should receive the unit.
  const auto rounded = round_to_integers(p, std::vector<double>{0.3, 0.7});
  EXPECT_DOUBLE_EQ(rounded[0], 0.0);
  EXPECT_DOUBLE_EQ(rounded[1], 1.0);
}

}  // namespace
}  // namespace vdx::solver
