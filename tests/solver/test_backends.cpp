// Cross-backend property tests: every backend must deliver a complete
// assignment, and on exactly-solvable instances the heuristics must land
// within a bounded optimality gap of the exact solvers (DESIGN.md §5).
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "solver/branch_bound.hpp"
#include "solver/greedy.hpp"
#include "solver/lagrangian.hpp"
#include "solver/mincost_flow.hpp"
#include "solver/solver.hpp"

namespace vdx::solver {
namespace {

constexpr double kPenalty = 1e5;

/// Random capacitated assignment instance with per-group uniform demand
/// (the structure every broker problem has).
AssignmentProblem random_instance(std::uint64_t seed, std::size_t groups,
                                  std::size_t resources, std::size_t options_per_group,
                                  double capacity_headroom) {
  core::Rng rng{seed};
  AssignmentProblem p;
  p.group_counts.resize(groups);
  double total_demand = 0.0;
  std::vector<double> group_demand(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    p.group_counts[g] = static_cast<double>(rng.range(1, 8));
    group_demand[g] = 0.5 + 0.5 * static_cast<double>(rng.range(1, 8));
    total_demand += p.group_counts[g] * group_demand[g];
  }
  p.capacities.assign(resources, capacity_headroom * total_demand /
                                     static_cast<double>(resources));
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t o = 0; o < options_per_group; ++o) {
      Option opt;
      opt.group = static_cast<std::uint32_t>(g);
      opt.resource = static_cast<std::uint32_t>(rng.below(resources));
      opt.unit_cost = rng.uniform(1.0, 20.0);
      opt.unit_demand = group_demand[g];
      p.options.push_back(opt);
    }
    // Every group gets one uncapacitated escape hatch (expensive).
    p.options.push_back(
        {static_cast<std::uint32_t>(g), kNoResource, 40.0, group_demand[g]});
  }
  return p;
}

struct InstanceParams {
  std::uint64_t seed;
  std::size_t groups;
  std::size_t resources;
  std::size_t options_per_group;
  double headroom;
};

class BackendProperty : public ::testing::TestWithParam<InstanceParams> {};

TEST_P(BackendProperty, AllBackendsProduceCompleteAssignments) {
  const auto& prm = GetParam();
  const AssignmentProblem p = random_instance(prm.seed, prm.groups, prm.resources,
                                              prm.options_per_group, prm.headroom);
  for (const Backend backend :
       {Backend::kSimplex, Backend::kMinCostFlow, Backend::kGreedy,
        Backend::kLagrangian}) {
    SolveOptions options;
    options.backend = backend;
    options.overflow_penalty = kPenalty;
    const Assignment a = solve(p, options);
    EXPECT_TRUE(a.complete) << to_string(backend);
    for (const double amount : a.amounts) EXPECT_GE(amount, -1e-9) << to_string(backend);
  }
}

TEST_P(BackendProperty, McfMatchesSimplexLpOptimum) {
  const auto& prm = GetParam();
  const AssignmentProblem p = random_instance(prm.seed, prm.groups, prm.resources,
                                              prm.options_per_group, prm.headroom);
  SolveOptions simplex_options;
  simplex_options.backend = Backend::kSimplex;
  simplex_options.overflow_penalty = kPenalty;
  const Assignment lp = solve(p, simplex_options);

  const Assignment flow = solve_assignment_mcf(p, kPenalty);

  // Both solve the same LP; values agree up to demand-scaling quantization.
  const double lp_value = lp.penalized_objective(kPenalty);
  const double flow_value = flow.penalized_objective(kPenalty);
  const double tolerance = 1e-3 * std::max(1.0, std::abs(lp_value)) + 1e-3;
  EXPECT_NEAR(lp_value, flow_value, tolerance);
}

TEST_P(BackendProperty, HeuristicsWithinGapOfLp) {
  const auto& prm = GetParam();
  const AssignmentProblem p = random_instance(prm.seed, prm.groups, prm.resources,
                                              prm.options_per_group, prm.headroom);
  SolveOptions simplex_options;
  simplex_options.backend = Backend::kSimplex;
  simplex_options.overflow_penalty = kPenalty;
  const double lp_value = solve(p, simplex_options).penalized_objective(kPenalty);

  for (const Backend backend : {Backend::kGreedy, Backend::kLagrangian}) {
    SolveOptions options;
    options.backend = backend;
    options.overflow_penalty = kPenalty;
    const double value = solve(p, options).penalized_objective(kPenalty);
    EXPECT_GE(value, lp_value - 1e-6) << to_string(backend);  // LP is a lower bound
    // Calibrated bounds: on instances with capacity headroom the heuristics
    // track the LP within ~20%; on adversarially tight instances (headroom
    // < 1, i.e. overload is *forced*) construction order effects cost up to
    // ~50%. The evaluation pipeline uses the exact MCF backend at trace
    // scale, so these bounds document heuristic behaviour rather than gate
    // result quality.
    const double factor = prm.headroom <= 1.0 ? 1.5 : 1.2;
    EXPECT_LE(value, lp_value * factor + 1.0) << to_string(backend) << " gap too large";
  }
}

TEST_P(BackendProperty, IntegralRoundingPreservesCompleteness) {
  const auto& prm = GetParam();
  const AssignmentProblem p = random_instance(prm.seed, prm.groups, prm.resources,
                                              prm.options_per_group, prm.headroom);
  SolveOptions options;
  options.backend = Backend::kMinCostFlow;
  options.overflow_penalty = kPenalty;
  options.integral = true;
  const Assignment a = solve(p, options);
  EXPECT_TRUE(a.complete);
  for (const double amount : a.amounts) {
    EXPECT_NEAR(amount, std::round(amount), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BackendProperty,
    ::testing::Values(InstanceParams{1, 4, 3, 3, 1.5}, InstanceParams{2, 8, 4, 4, 1.2},
                      InstanceParams{3, 12, 5, 3, 1.0}, InstanceParams{4, 6, 2, 5, 0.8},
                      InstanceParams{5, 16, 6, 4, 2.0}, InstanceParams{6, 10, 3, 2, 0.6},
                      InstanceParams{7, 20, 8, 5, 1.1},
                      InstanceParams{8, 5, 5, 6, 3.0}));

TEST(BranchBound, ExactOnTinyInstanceBeatsOrMatchesRoundedLp) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AssignmentProblem p = random_instance(seed, 3, 2, 3, 1.0);
    BranchBoundConfig config;
    config.overflow_penalty = kPenalty;
    const BranchBoundResult exact = solve_branch_bound(p, config);
    EXPECT_TRUE(exact.proved_optimal) << "seed " << seed;
    EXPECT_TRUE(exact.assignment.complete);

    SolveOptions rounded_options;
    rounded_options.backend = Backend::kMinCostFlow;
    rounded_options.overflow_penalty = kPenalty;
    rounded_options.integral = true;
    const Assignment rounded = solve(p, rounded_options);
    EXPECT_LE(exact.assignment.penalized_objective(kPenalty),
              rounded.penalized_objective(kPenalty) + 1e-6)
        << "seed " << seed;
  }
}

TEST(BranchBound, LpBoundIsValid) {
  const AssignmentProblem p = random_instance(11, 4, 3, 3, 0.9);
  SolveOptions lp_options;
  lp_options.backend = Backend::kSimplex;
  lp_options.overflow_penalty = kPenalty;
  const double lp_value = solve(p, lp_options).penalized_objective(kPenalty);

  BranchBoundConfig config;
  config.overflow_penalty = kPenalty;
  const BranchBoundResult exact = solve_branch_bound(p, config);
  // Integral optimum >= LP relaxation.
  EXPECT_GE(exact.assignment.penalized_objective(kPenalty), lp_value - 1e-6);
}

TEST(BranchBound, RejectsFractionalCounts) {
  AssignmentProblem p;
  p.group_counts = {1.5};
  p.options = {{0, kNoResource, 1.0, 1.0}};
  EXPECT_THROW((void)solve_branch_bound(p), std::invalid_argument);
}

TEST(Solver, AutoPicksAndSolves) {
  const AssignmentProblem small = random_instance(21, 3, 2, 2, 1.5);
  const Assignment a = solve(small);  // auto -> simplex
  EXPECT_TRUE(a.complete);

  const AssignmentProblem big = random_instance(22, 300, 20, 8, 1.5);
  const Assignment b = solve(big);  // auto -> mcf
  EXPECT_TRUE(b.complete);
}

TEST(Solver, ToStringCoversAllBackends) {
  EXPECT_EQ(to_string(Backend::kAuto), "auto");
  EXPECT_EQ(to_string(Backend::kSimplex), "simplex");
  EXPECT_EQ(to_string(Backend::kBranchAndBound), "branch-and-bound");
  EXPECT_EQ(to_string(Backend::kMinCostFlow), "min-cost-flow");
  EXPECT_EQ(to_string(Backend::kGreedy), "greedy");
  EXPECT_EQ(to_string(Backend::kLagrangian), "lagrangian");
}

TEST(Lagrangian, DualBoundBelowPrimal) {
  const AssignmentProblem p = random_instance(31, 10, 4, 4, 1.0);
  const LagrangianResult result = solve_lagrangian(p);
  EXPECT_TRUE(result.assignment.complete);
  // Weak duality: dual bound <= optimal <= our primal value.
  EXPECT_LE(result.dual_bound, result.assignment.objective + 1e-6);
  for (const double dual : result.duals) EXPECT_GE(dual, 0.0);
}

TEST(Greedy, RespectsCapacityWhenFeasible) {
  AssignmentProblem p;
  p.group_counts = {5.0, 5.0};
  p.capacities = {5.0, 5.0};
  p.options = {
      {0, 0, 1.0, 1.0}, {0, 1, 2.0, 1.0},
      {1, 0, 1.0, 1.0}, {1, 1, 2.0, 1.0},
  };
  const Assignment a = solve_greedy(p);
  EXPECT_TRUE(a.complete);
  EXPECT_NEAR(a.overflow_demand, 0.0, 1e-9);
}

}  // namespace
}  // namespace vdx::solver
