#include "solver/mincost_flow.hpp"

#include <gtest/gtest.h>

namespace vdx::solver {
namespace {

TEST(MinCostFlowGraph, SingleArcPath) {
  MinCostFlowGraph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  const auto arc = g.add_arc(s, t, 5, 2.0);
  const auto result = g.solve(s, t, 3);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.flow, 3);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_EQ(g.flow_on(arc), 3);
}

TEST(MinCostFlowGraph, PrefersCheaperParallelArc) {
  MinCostFlowGraph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  const auto cheap = g.add_arc(s, t, 4, 1.0);
  const auto expensive = g.add_arc(s, t, 10, 3.0);
  const auto result = g.solve(s, t, 6);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(g.flow_on(cheap), 4);
  EXPECT_EQ(g.flow_on(expensive), 2);
  EXPECT_DOUBLE_EQ(result.cost, 4.0 * 1.0 + 2.0 * 3.0);
}

TEST(MinCostFlowGraph, ResidualReroutingFindsOptimum) {
  // Diamond where the greedy shortest path must be partially undone.
  MinCostFlowGraph g;
  const auto s = g.add_node();
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, a, 2, 1.0);
  g.add_arc(s, b, 2, 3.0);
  g.add_arc(a, t, 2, 3.0);
  g.add_arc(b, t, 2, 1.0);
  g.add_arc(a, b, 2, 1.0);  // shortcut making s->a->b->t cheapest (cost 3)
  const auto result = g.solve(s, t, 4);
  EXPECT_TRUE(result.reached_target);
  // SSP first pushes 2 units along s->a->b->t (cost 3). The remaining 2
  // units must enter via s->b with b->t saturated, forcing the algorithm to
  // reroute through the b->a residual onto a->t (cost 3 - 1 + 3 = 5).
  // Hand-verified optimum: 2*3 + 2*5 = 16, equal to the direct split
  // (2 via s->a->t and 2 via s->b->t at cost 8 each... i.e. 16 total).
  EXPECT_DOUBLE_EQ(result.cost, 16.0);
}

TEST(MinCostFlowGraph, ReportsPartialFlowWhenCutSaturates) {
  MinCostFlowGraph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, t, 2, 1.0);
  const auto result = g.solve(s, t, 10);
  EXPECT_FALSE(result.reached_target);
  EXPECT_EQ(result.flow, 2);
}

TEST(MinCostFlowGraph, NegativeCostArcsHandled) {
  MinCostFlowGraph g;
  const auto s = g.add_node();
  const auto m = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, m, 3, -2.0);
  g.add_arc(m, t, 3, 1.0);
  const auto result = g.solve(s, t, 3);
  EXPECT_TRUE(result.reached_target);
  EXPECT_DOUBLE_EQ(result.cost, 3.0 * (-2.0 + 1.0));
}

TEST(MinCostFlowGraph, SolveIsRepeatable) {
  MinCostFlowGraph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  const auto arc = g.add_arc(s, t, 5, 1.0);
  (void)g.solve(s, t, 5);
  const auto second = g.solve(s, t, 4);
  EXPECT_EQ(second.flow, 4);
  EXPECT_EQ(g.flow_on(arc), 4);  // state reset between solves
}

TEST(MinCostFlowGraph, RejectsBadArguments) {
  MinCostFlowGraph g;
  const auto s = g.add_node();
  EXPECT_THROW((void)g.add_arc(s, 99, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_arc(s, s, -1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)g.solve(s, 99, 1), std::invalid_argument);
  EXPECT_THROW((void)g.flow_on(MinCostFlowGraph::ArcRef{99}), std::out_of_range);
}

TEST(AssignmentMcf, MatchesHandComputedOptimum) {
  AssignmentProblem p;
  p.group_counts = {10.0, 10.0};
  p.capacities = {12.0, 100.0};
  p.options = {
      {0, 0, 1.0, 1.0},  // cheap but shares resource 0
      {0, 1, 3.0, 1.0},
      {1, 0, 1.0, 1.0},
      {1, 1, 2.0, 1.0},
  };
  const Assignment a = solve_assignment_mcf(p, 1e6);
  EXPECT_TRUE(a.complete);
  EXPECT_NEAR(a.overflow_demand, 0.0, 1e-6);
  // Resource 0 fits 12 of the 20 clients; the marginal move to resource 1 is
  // cheaper for group 1 (2-1=1) than group 0 (3-1=2), so group 1 spills.
  // Optimum = 10*1 (g0@r0) + 2*1 (g1@r0) + 8*2 (g1@r1) = 28.
  EXPECT_NEAR(a.objective, 28.0, 1e-6);
}

TEST(AssignmentMcf, UsesOverflowWhenCheaperThanAlternative) {
  AssignmentProblem p;
  p.group_counts = {4.0};
  p.capacities = {2.0};
  p.options = {
      {0, 0, 1.0, 1.0},
      {0, kNoResource, 50.0, 1.0},
  };
  // With a small penalty (10), overloading resource 0 costs 1+10=11 per
  // client, cheaper than the 50-cost fallback.
  const Assignment cheap_penalty = solve_assignment_mcf(p, 10.0);
  EXPECT_TRUE(cheap_penalty.complete);
  EXPECT_NEAR(cheap_penalty.amounts[0], 4.0, 1e-6);
  EXPECT_NEAR(cheap_penalty.overflow_demand, 2.0, 1e-6);

  // With a large penalty the fallback wins for the excess.
  const Assignment big_penalty = solve_assignment_mcf(p, 1e6);
  EXPECT_NEAR(big_penalty.amounts[0], 2.0, 1e-6);
  EXPECT_NEAR(big_penalty.amounts[1], 2.0, 1e-6);
  EXPECT_NEAR(big_penalty.overflow_demand, 0.0, 1e-6);
}

TEST(AssignmentMcf, HandlesFractionalBitrates) {
  AssignmentProblem p;
  p.group_counts = {8.0};
  p.capacities = {3.0};
  p.options = {
      {0, 0, 1.0, 0.5},  // 0.5 demand per client -> 6 clients fit
      {0, kNoResource, 10.0, 0.5},
  };
  const Assignment a = solve_assignment_mcf(p, 1e6);
  EXPECT_TRUE(a.complete);
  EXPECT_NEAR(a.amounts[0], 6.0, 1e-5);
  EXPECT_NEAR(a.amounts[1], 2.0, 1e-5);
}

TEST(AssignmentMcf, RejectsMixedDemandWithinGroup) {
  AssignmentProblem p;
  p.group_counts = {1.0};
  p.capacities = {1.0};
  p.options = {{0, 0, 1.0, 1.0}, {0, 0, 1.0, 2.0}};
  EXPECT_THROW((void)solve_assignment_mcf(p, 1e6), std::invalid_argument);
}

TEST(AssignmentMcf, EmptyGroupsAreSkipped) {
  AssignmentProblem p;
  p.group_counts = {0.0, 5.0};
  p.capacities = {10.0};
  p.options = {{0, 0, 1.0, 1.0}, {1, 0, 2.0, 1.0}};
  const Assignment a = solve_assignment_mcf(p, 1e6);
  EXPECT_TRUE(a.complete);
  EXPECT_NEAR(a.amounts[0], 0.0, 1e-9);
  EXPECT_NEAR(a.amounts[1], 5.0, 1e-6);
}

}  // namespace
}  // namespace vdx::solver
