// Exhaustive-enumeration ground truth: on tiny instances, branch & bound
// must find the true integral optimum, and the LP relaxation must lower-
// bound it. The enumerator tries every integral assignment directly.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "core/rng.hpp"
#include "solver/branch_bound.hpp"
#include "solver/lp_bridge.hpp"
#include "solver/simplex.hpp"

namespace vdx::solver {
namespace {

constexpr double kPenalty = 1e4;

/// Enumerates all integral solutions of a tiny problem and returns the best
/// penalized objective.
double brute_force(const AssignmentProblem& problem) {
  std::vector<std::vector<std::size_t>> options_of(problem.group_count());
  for (std::size_t i = 0; i < problem.options.size(); ++i) {
    options_of[problem.options[i].group].push_back(i);
  }

  std::vector<double> amounts(problem.options.size(), 0.0);
  double best = std::numeric_limits<double>::infinity();

  // Recursive enumeration over per-group compositions.
  const std::function<void(std::size_t)> recurse = [&](std::size_t g) {
    if (g == problem.group_count()) {
      const Assignment a = evaluate(problem, amounts);
      best = std::min(best, a.penalized_objective(kPenalty));
      return;
    }
    const auto count = static_cast<int>(std::llround(problem.group_counts[g]));
    const auto& opts = options_of[g];
    // Enumerate compositions of `count` over |opts| options.
    const std::function<void(std::size_t, int)> compose = [&](std::size_t k,
                                                              int remaining) {
      if (k + 1 == opts.size()) {
        amounts[opts[k]] = remaining;
        recurse(g + 1);
        amounts[opts[k]] = 0.0;
        return;
      }
      for (int take = 0; take <= remaining; ++take) {
        amounts[opts[k]] = take;
        compose(k + 1, remaining - take);
      }
      amounts[opts[k]] = 0.0;
    };
    if (opts.empty()) {
      recurse(g + 1);
    } else {
      compose(0, count);
    }
  };
  recurse(0);
  return best;
}

AssignmentProblem tiny_random(std::uint64_t seed) {
  core::Rng rng{seed};
  AssignmentProblem p;
  const std::size_t groups = 2 + rng.below(2);     // 2-3 groups
  const std::size_t resources = 2 + rng.below(2);  // 2-3 resources
  p.group_counts.resize(groups);
  for (auto& c : p.group_counts) c = static_cast<double>(1 + rng.below(3));
  p.capacities.resize(resources);
  for (auto& cap : p.capacities) cap = rng.uniform(1.0, 6.0);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t n_options = 2 + rng.below(2);
    for (std::size_t o = 0; o < n_options; ++o) {
      Option option;
      option.group = static_cast<std::uint32_t>(g);
      option.resource = static_cast<std::uint32_t>(rng.below(resources));
      option.unit_cost = rng.uniform(1.0, 10.0);
      option.unit_demand = 1.0;
      p.options.push_back(option);
    }
  }
  return p;
}

class Exactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Exactness, BranchBoundMatchesBruteForce) {
  const AssignmentProblem p = tiny_random(GetParam());
  const double truth = brute_force(p);

  BranchBoundConfig config;
  config.overflow_penalty = kPenalty;
  const BranchBoundResult exact = solve_branch_bound(p, config);
  ASSERT_TRUE(exact.proved_optimal);
  EXPECT_NEAR(exact.assignment.penalized_objective(kPenalty), truth,
              1e-6 * std::max(1.0, std::abs(truth)));
}

TEST_P(Exactness, LpRelaxationLowerBoundsTheIntegerOptimum) {
  const AssignmentProblem p = tiny_random(GetParam());
  const double truth = brute_force(p);
  const LpSolution lp = solve_lp(build_assignment_lp(p, kPenalty));
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_LE(lp.objective, truth + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, Exactness,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

}  // namespace
}  // namespace vdx::solver
