#include "solver/simplex.hpp"

#include <gtest/gtest.h>

namespace vdx::solver {
namespace {

using Relation = LpConstraint::Relation;

LpConstraint row(std::vector<std::pair<std::uint32_t, double>> terms, Relation rel,
                 double rhs) {
  LpConstraint c;
  c.terms = std::move(terms);
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

TEST(Simplex, SimpleTwoVariableMaximizationAsMin) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {-3.0, -2.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0),
                    row({{0, 1.0}}, Relation::kLessEqual, 2.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1  ->  x=2, y=1.
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {1.0, 2.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 3.0),
                    row({{0, 1.0}, {1, -1.0}}, Relation::kEqual, 1.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  x=4, y=0 (cost 8).
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {2.0, 3.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 4.0),
                    row({{0, 1.0}}, Relation::kGreaterEqual, 1.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2 is infeasible.
  LpProblem lp;
  lp.variable_count = 1;
  lp.objective = {1.0};
  lp.constraints = {row({{0, 1.0}}, Relation::kLessEqual, 1.0),
                    row({{0, 1.0}}, Relation::kGreaterEqual, 2.0)};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with only x >= 0: unbounded below.
  LpProblem lp;
  lp.variable_count = 1;
  lp.objective = {-1.0};
  lp.constraints = {row({{0, 1.0}}, Relation::kGreaterEqual, 0.0)};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpProblem lp;
  lp.variable_count = 1;
  lp.objective = {1.0};
  lp.constraints = {row({{0, -1.0}}, Relation::kLessEqual, -3.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, ZeroVariablesFeasibility) {
  LpProblem lp;  // no variables, no constraints
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kOptimal);

  LpProblem bad;
  bad.constraints = {row({}, Relation::kGreaterEqual, 1.0)};
  EXPECT_EQ(solve_lp(bad).status, LpStatus::kInfeasible);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum (degeneracy).
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {-1.0, -1.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 2.0),
                    row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 2.0),
                    row({{0, 2.0}, {1, 2.0}}, Relation::kLessEqual, 4.0),
                    row({{0, 1.0}}, Relation::kLessEqual, 2.0),
                    row({{1, 1.0}}, Relation::kLessEqual, 2.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

// Beale's classic cycling instance: under the pure Dantzig rule with a
// lowest-basis-index ratio tie-break, the tableau revisits the same bases
// forever without the degenerate-pivot cutover to Bland's rule.
LpProblem beale_cycling_lp() {
  LpProblem lp;
  lp.variable_count = 4;
  lp.objective = {-0.75, 150.0, -0.02, 6.0};
  lp.constraints = {
      row({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, Relation::kLessEqual, 0.0),
      row({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, Relation::kLessEqual, 0.0),
      row({{2, 1.0}}, Relation::kLessEqual, 1.0)};
  return lp;
}

TEST(Simplex, BealeCyclingInstanceSolvesWithDegenerateCutover) {
  const LpSolution s = solve_lp(beale_cycling_lp());
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
  EXPECT_NEAR(s.x[0], 0.04, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
  EXPECT_NEAR(s.x[2], 1.0, 1e-9);
  EXPECT_NEAR(s.x[3], 0.0, 1e-9);
}

TEST(Simplex, BealeCyclingInstanceSpinsWithoutCutover) {
  // Disable the cutover: the cycle burns the whole iteration budget. This is
  // the guard the previous test relies on being load-bearing.
  SimplexConfig config;
  config.degenerate_pivot_limit = SIZE_MAX;
  config.max_iterations = 10'000;
  const LpSolution s = solve_lp(beale_cycling_lp(), config);
  EXPECT_EQ(s.status, LpStatus::kIterationLimit);
  EXPECT_EQ(s.iterations, 10'000u);
}

TEST(Simplex, DegenerateCutoverLeavesNondegenerateSolvesUntouched) {
  // The limit only matters on degenerate stalls: an ordinary LP solves to
  // the same solution with the cutover effectively disabled.
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {-3.0, -2.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0),
                    row({{0, 1.0}}, Relation::kLessEqual, 2.0)};
  SimplexConfig no_cutover;
  no_cutover.degenerate_pivot_limit = SIZE_MAX;
  const LpSolution with_default = solve_lp(lp);
  const LpSolution without = solve_lp(lp, no_cutover);
  ASSERT_EQ(with_default.status, LpStatus::kOptimal);
  ASSERT_EQ(without.status, LpStatus::kOptimal);
  EXPECT_EQ(with_default.iterations, without.iterations);
  EXPECT_EQ(with_default.objective, without.objective);
  EXPECT_EQ(with_default.x, without.x);
}

TEST(Simplex, TransportationProblemOptimal) {
  // Classic 2x3 transportation instance with known optimum.
  // Supplies: 20, 30. Demands: 10, 25, 15.
  // Costs: [8, 6, 10; 9, 12, 13]. Optimal cost = 10*8+... compute via LP.
  LpProblem lp;
  lp.variable_count = 6;  // x[s][d]
  lp.objective = {8.0, 6.0, 10.0, 9.0, 12.0, 13.0};
  lp.constraints = {
      row({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Relation::kLessEqual, 20.0),
      row({{3, 1.0}, {4, 1.0}, {5, 1.0}}, Relation::kLessEqual, 30.0),
      row({{0, 1.0}, {3, 1.0}}, Relation::kEqual, 10.0),
      row({{1, 1.0}, {4, 1.0}}, Relation::kEqual, 25.0),
      row({{2, 1.0}, {5, 1.0}}, Relation::kEqual, 15.0),
  };
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Hand-verified optimum: s1's 20 units go to d2 (largest per-unit saving),
  // s2 covers d1=10, d2's remaining 5, and d3=15:
  // 20*6 + 10*9 + 5*12 + 15*13 = 465.
  EXPECT_NEAR(s.objective, 465.0, 1e-6);
}

TEST(Simplex, RejectsMalformedProblem) {
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {1.0};  // arity mismatch
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);

  lp.objective = {1.0, 1.0};
  lp.constraints = {row({{7, 1.0}}, Relation::kLessEqual, 1.0)};  // bad index
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::solver
