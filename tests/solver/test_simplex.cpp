#include "solver/simplex.hpp"

#include <gtest/gtest.h>

namespace vdx::solver {
namespace {

using Relation = LpConstraint::Relation;

LpConstraint row(std::vector<std::pair<std::uint32_t, double>> terms, Relation rel,
                 double rhs) {
  LpConstraint c;
  c.terms = std::move(terms);
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

TEST(Simplex, SimpleTwoVariableMaximizationAsMin) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {-3.0, -2.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0),
                    row({{0, 1.0}}, Relation::kLessEqual, 2.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1  ->  x=2, y=1.
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {1.0, 2.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 3.0),
                    row({{0, 1.0}, {1, -1.0}}, Relation::kEqual, 1.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  x=4, y=0 (cost 8).
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {2.0, 3.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 4.0),
                    row({{0, 1.0}}, Relation::kGreaterEqual, 1.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2 is infeasible.
  LpProblem lp;
  lp.variable_count = 1;
  lp.objective = {1.0};
  lp.constraints = {row({{0, 1.0}}, Relation::kLessEqual, 1.0),
                    row({{0, 1.0}}, Relation::kGreaterEqual, 2.0)};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with only x >= 0: unbounded below.
  LpProblem lp;
  lp.variable_count = 1;
  lp.objective = {-1.0};
  lp.constraints = {row({{0, 1.0}}, Relation::kGreaterEqual, 0.0)};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpProblem lp;
  lp.variable_count = 1;
  lp.objective = {1.0};
  lp.constraints = {row({{0, -1.0}}, Relation::kLessEqual, -3.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, ZeroVariablesFeasibility) {
  LpProblem lp;  // no variables, no constraints
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kOptimal);

  LpProblem bad;
  bad.constraints = {row({}, Relation::kGreaterEqual, 1.0)};
  EXPECT_EQ(solve_lp(bad).status, LpStatus::kInfeasible);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum (degeneracy).
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {-1.0, -1.0};
  lp.constraints = {row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 2.0),
                    row({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 2.0),
                    row({{0, 2.0}, {1, 2.0}}, Relation::kLessEqual, 4.0),
                    row({{0, 1.0}}, Relation::kLessEqual, 2.0),
                    row({{1, 1.0}}, Relation::kLessEqual, 2.0)};
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Simplex, TransportationProblemOptimal) {
  // Classic 2x3 transportation instance with known optimum.
  // Supplies: 20, 30. Demands: 10, 25, 15.
  // Costs: [8, 6, 10; 9, 12, 13]. Optimal cost = 10*8+... compute via LP.
  LpProblem lp;
  lp.variable_count = 6;  // x[s][d]
  lp.objective = {8.0, 6.0, 10.0, 9.0, 12.0, 13.0};
  lp.constraints = {
      row({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Relation::kLessEqual, 20.0),
      row({{3, 1.0}, {4, 1.0}, {5, 1.0}}, Relation::kLessEqual, 30.0),
      row({{0, 1.0}, {3, 1.0}}, Relation::kEqual, 10.0),
      row({{1, 1.0}, {4, 1.0}}, Relation::kEqual, 25.0),
      row({{2, 1.0}, {5, 1.0}}, Relation::kEqual, 15.0),
  };
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  // Hand-verified optimum: s1's 20 units go to d2 (largest per-unit saving),
  // s2 covers d1=10, d2's remaining 5, and d3=15:
  // 20*6 + 10*9 + 5*12 + 15*13 = 465.
  EXPECT_NEAR(s.objective, 465.0, 1e-6);
}

TEST(Simplex, RejectsMalformedProblem) {
  LpProblem lp;
  lp.variable_count = 2;
  lp.objective = {1.0};  // arity mismatch
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);

  lp.objective = {1.0, 1.0};
  lp.constraints = {row({{7, 1.0}}, Relation::kLessEqual, 1.0)};  // bad index
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::solver
