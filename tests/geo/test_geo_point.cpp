#include "geo/geo_point.hpp"

#include <gtest/gtest.h>

namespace vdx::geo {
namespace {

TEST(Haversine, ZeroDistanceForSamePoint) {
  const GeoPoint p{40.0, -75.0};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{52.52, 13.405};   // Berlin
  const GeoPoint b{40.7128, -74.006};  // New York
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, KnownCityPairWithinTolerance) {
  // Berlin <-> New York great-circle distance is about 6385 km.
  const GeoPoint berlin{52.52, 13.405};
  const GeoPoint nyc{40.7128, -74.006};
  EXPECT_NEAR(haversine_km(berlin, nyc), 6385.0, 50.0);
}

TEST(Haversine, QuarterMeridian) {
  // Equator to pole along a meridian is ~10007 km.
  const GeoPoint equator{0.0, 0.0};
  const GeoPoint pole{90.0, 0.0};
  EXPECT_NEAR(haversine_km(equator, pole), 10007.5, 10.0);
}

TEST(Haversine, AntipodesAreHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), M_PI * kEarthRadiusKm, 1.0);
}

TEST(Haversine, MilesConversion) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 1.0};
  EXPECT_NEAR(haversine_miles(a, b), haversine_km(a, b) / kKmPerMile, 1e-9);
}

TEST(Haversine, TriangleInequalityHolds) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-30.0, 140.0};
  const GeoPoint c{55.0, -100.0};
  EXPECT_LE(haversine_km(a, c), haversine_km(a, b) + haversine_km(b, c) + 1e-9);
}

TEST(Normalized, WrapsLongitudeAndClampsLatitude) {
  const GeoPoint wrapped = normalized({95.0, 190.0});
  EXPECT_DOUBLE_EQ(wrapped.latitude_deg, 90.0);
  EXPECT_DOUBLE_EQ(wrapped.longitude_deg, -170.0);

  const GeoPoint negative = normalized({-95.0, -190.0});
  EXPECT_DOUBLE_EQ(negative.latitude_deg, -90.0);
  EXPECT_DOUBLE_EQ(negative.longitude_deg, 170.0);

  const GeoPoint identity = normalized({45.0, -45.0});
  EXPECT_EQ(identity, (GeoPoint{45.0, -45.0}));
}

TEST(DegToRad, Basics) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), M_PI);
  EXPECT_DOUBLE_EQ(deg_to_rad(0.0), 0.0);
}

}  // namespace
}  // namespace vdx::geo
