#include "geo/world.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace vdx::geo {
namespace {

WorldConfig small_config() {
  WorldConfig config;
  config.country_count = 5;
  config.city_count = 14;
  config.cost_spread = 10.0;
  config.seed = 99;
  return config;
}

TEST(WorldGenerate, RespectsCounts) {
  const World world = World::generate(small_config());
  EXPECT_EQ(world.countries().size(), 5u);
  EXPECT_EQ(world.cities().size(), 14u);
}

TEST(WorldGenerate, DeterministicForSameSeed) {
  const World a = World::generate(small_config());
  const World b = World::generate(small_config());
  for (std::size_t i = 0; i < a.countries().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.countries()[i].bandwidth_cost_factor,
                     b.countries()[i].bandwidth_cost_factor);
  }
  for (std::size_t i = 0; i < a.cities().size(); ++i) {
    EXPECT_EQ(a.cities()[i].location, b.cities()[i].location);
    EXPECT_DOUBLE_EQ(a.cities()[i].demand_weight, b.cities()[i].demand_weight);
  }
}

TEST(WorldGenerate, CostLadderDescendsFromA) {
  const World world = World::generate({});
  const auto countries = world.countries();
  EXPECT_EQ(countries.front().name, "A");
  for (std::size_t i = 1; i < countries.size(); ++i) {
    EXPECT_GE(countries[i - 1].bandwidth_cost_factor,
              countries[i].bandwidth_cost_factor);
  }
}

TEST(WorldGenerate, CostSpreadRoughlyMatchesConfig) {
  const World world = World::generate({});
  const double top = world.countries().front().bandwidth_cost_factor;
  const double bottom = world.countries().back().bandwidth_cost_factor;
  // ~30x configured; jitter allows modest deviation. (Paper Fig. 3: ~30x.)
  EXPECT_GT(top / bottom, 20.0);
  EXPECT_LT(top / bottom, 45.0);
}

TEST(WorldGenerate, DemandWeightsNormalized) {
  const World world = World::generate({});
  double city_total = 0.0;
  for (const auto& city : world.cities()) {
    EXPECT_GT(city.demand_weight, 0.0);
    city_total += city.demand_weight;
  }
  EXPECT_NEAR(city_total, 1.0, 1e-9);

  double country_total = 0.0;
  for (const auto& country : world.countries()) country_total += country.demand_share;
  EXPECT_NEAR(country_total, 1.0, 1e-9);
}

TEST(WorldGenerate, DemandIsPowerLawSkewed) {
  const World world = World::generate({});
  std::vector<double> weights;
  for (const auto& city : world.cities()) weights.push_back(city.demand_weight);
  std::sort(weights.rbegin(), weights.rend());
  const double top_share = weights[0] + weights[1] + weights[2];
  EXPECT_GT(top_share, 0.3);  // heavy head
}

TEST(WorldGenerate, EveryCountryHasAtLeastTwoCities) {
  const World world = World::generate({});
  for (const auto& country : world.countries()) {
    EXPECT_GE(world.cities_in(country.id).size(), 2u) << country.name;
  }
}

TEST(WorldGenerate, RejectsBadConfig) {
  WorldConfig config;
  config.country_count = 0;
  EXPECT_THROW(World::generate(config), std::invalid_argument);
  config = {};
  config.city_count = config.country_count;  // < 2 per country
  EXPECT_THROW(World::generate(config), std::invalid_argument);
  config = {};
  config.cost_spread = 0.5;
  EXPECT_THROW(World::generate(config), std::invalid_argument);
}

TEST(World, LookupsAndErrors) {
  const World world = World::generate(small_config());
  const auto& city = world.cities().front();
  EXPECT_EQ(world.city(city.id).name, city.name);
  EXPECT_EQ(world.country_of(city.id).id, city.country);
  EXPECT_THROW(world.city(CityId{999}), std::out_of_range);
  EXPECT_THROW(world.country(CountryId{999}), std::out_of_range);
  EXPECT_THROW(world.city(CityId{}), std::out_of_range);
}

TEST(World, DistanceSymmetricZeroOnSelf) {
  const World world = World::generate(small_config());
  const CityId a = world.cities()[0].id;
  const CityId b = world.cities()[5].id;
  EXPECT_DOUBLE_EQ(world.distance_km(a, b), world.distance_km(b, a));
  EXPECT_DOUBLE_EQ(world.distance_km(a, a), 0.0);
}

TEST(World, WeightedCostFactorBetweenExtremes) {
  const World world = World::generate({});
  const double avg = world.demand_weighted_cost_factor();
  EXPECT_GT(avg, world.countries().back().bandwidth_cost_factor);
  EXPECT_LT(avg, world.countries().front().bandwidth_cost_factor);
}

TEST(World, ConstructorValidatesIds) {
  std::vector<Country> countries{{CountryId{0}, "A", 1.0, 1.0, 1.0}};
  std::vector<City> cities{{CityId{1}, "A1", CountryId{0}, {0, 0}, 1.0}};
  EXPECT_THROW((World{countries, cities}), std::invalid_argument);  // gap in city ids

  cities = {{CityId{0}, "A1", CountryId{3}, {0, 0}, 1.0}};
  EXPECT_THROW((World{countries, cities}), std::invalid_argument);  // bad country ref
}

}  // namespace
}  // namespace vdx::geo
