// Cross-seed / cross-scale property sweep: the structural invariants every
// scenario must satisfy, independent of the RNG draw or workload size.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace vdx::sim {
namespace {

struct SweepParams {
  std::uint64_t seed;
  std::size_t sessions;
  std::size_t city_cdns;
};

class ScenarioSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(ScenarioSweep, StructuralInvariantsHold) {
  const SweepParams& prm = GetParam();
  ScenarioConfig config;
  config.seed = prm.seed;
  config.trace.session_count = prm.sessions;
  config.city_cdn_count = prm.city_cdns;
  const Scenario scenario = Scenario::build(config);

  // Every cluster provisioned, every CDN priced.
  for (const cdn::Cluster& cluster : scenario.catalog().clusters()) {
    EXPECT_GT(cluster.capacity, 0.0);
    EXPECT_GT(cluster.unit_cost(), 0.0);
  }
  for (const cdn::Cdn& cdn : scenario.catalog().cdns()) {
    EXPECT_GT(cdn.contract_price, 0.0);
  }

  // Per-CDN capacity conservation: 2x the solo workload.
  double broker_demand = 0.0;
  for (const auto& g : scenario.broker_groups()) broker_demand += g.demand_mbps();
  for (const cdn::Cdn& cdn : scenario.catalog().cdns()) {
    double capacity = 0.0;
    for (const cdn::ClusterId id : scenario.catalog().clusters_of(cdn.id)) {
      capacity += scenario.catalog().cluster(id).capacity;
    }
    EXPECT_NEAR(capacity, 2.0 * broker_demand, broker_demand * 1e-6) << cdn.name;
  }

  // Groups conserve the session count.
  EXPECT_NEAR(broker::total_clients(scenario.broker_groups()),
              static_cast<double>(prm.sessions), 1e-9);
}

TEST_P(ScenarioSweep, MarketplaceBeatsBrokeredEverywhere) {
  const SweepParams& prm = GetParam();
  ScenarioConfig config;
  config.seed = prm.seed;
  config.trace.session_count = prm.sessions;
  config.city_cdn_count = prm.city_cdns;
  const Scenario scenario = Scenario::build(config);

  const DesignMetrics brokered =
      compute_metrics(scenario, run_design(scenario, Design::kBrokered));
  const DesignMetrics vdx =
      compute_metrics(scenario, run_design(scenario, Design::kMarketplace));

  // The headline result must be seed-robust: better score AND no congestion,
  // with cost no worse than ~Brokered (usually much better). In the
  // proliferation scenarios the 200 city CDNs hand Brokered very cheap
  // single-cluster answers, so the cost comparison is looser there — the
  // paper's Fig. 16 point is about *profit fairness*, not Brokered's cost.
  EXPECT_LT(vdx.median_score, brokered.median_score) << "seed " << prm.seed;
  EXPECT_LT(vdx.congested_fraction, 0.01) << "seed " << prm.seed;
  const double cost_slack = prm.city_cdns > 0 ? 1.5 : 1.05;
  EXPECT_LT(vdx.median_cost, brokered.median_cost * cost_slack) << "seed " << prm.seed;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndScales, ScenarioSweep,
                         ::testing::Values(SweepParams{1, 3000, 0},
                                           SweepParams{2, 3000, 0},
                                           SweepParams{3, 6000, 0},
                                           SweepParams{4, 6000, 50},
                                           SweepParams{5, 12000, 0},
                                           SweepParams{2024, 3000, 100}));

}  // namespace
}  // namespace vdx::sim
