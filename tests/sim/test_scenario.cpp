#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace vdx::sim {
namespace {

/// Reduced-size config so scenario tests stay fast.
ScenarioConfig small_config() {
  ScenarioConfig config;
  config.trace.session_count = 4000;
  config.seed = 7;
  return config;
}

TEST(Scenario, BuildsAllComponents) {
  const Scenario s = Scenario::build(small_config());
  EXPECT_EQ(s.world().countries().size(), 19u);
  EXPECT_EQ(s.catalog().cdns().size(), 14u);
  EXPECT_EQ(s.broker_trace().size(), 4000u);
  EXPECT_EQ(s.background_trace().size(), 12000u);  // 3x
  EXPECT_FALSE(s.broker_groups().empty());
  EXPECT_FALSE(s.background_groups().empty());
  EXPECT_EQ(s.mapping().vantage_count(), s.catalog().clusters().size());
}

TEST(Scenario, GroupsCoverAllSessions) {
  const Scenario s = Scenario::build(small_config());
  EXPECT_NEAR(broker::total_clients(s.broker_groups()), 4000.0, 1e-9);
  EXPECT_NEAR(broker::total_clients(s.background_groups()), 12000.0, 1e-9);
}

TEST(Scenario, ProvisioningRanForAllCdns) {
  const Scenario s = Scenario::build(small_config());
  for (const cdn::Cdn& cdn : s.catalog().cdns()) {
    EXPECT_GT(cdn.contract_price, 0.0) << cdn.name;
    EXPECT_GT(s.provisioning().median_capacity[cdn.id.value()], 0.0) << cdn.name;
  }
  for (const cdn::Cluster& cluster : s.catalog().clusters()) {
    EXPECT_GT(cluster.capacity, 0.0);
  }
}

TEST(Scenario, DeterministicForSameSeed) {
  const Scenario a = Scenario::build(small_config());
  const Scenario b = Scenario::build(small_config());
  ASSERT_EQ(a.catalog().clusters().size(), b.catalog().clusters().size());
  for (std::size_t i = 0; i < a.catalog().clusters().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.catalog().clusters()[i].capacity,
                     b.catalog().clusters()[i].capacity);
  }
  ASSERT_EQ(a.broker_groups().size(), b.broker_groups().size());
  for (std::size_t i = 0; i < a.broker_groups().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.broker_groups()[i].client_count,
                     b.broker_groups()[i].client_count);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig other = small_config();
  other.seed = 8;
  const Scenario a = Scenario::build(small_config());
  const Scenario b = Scenario::build(other);
  bool any_difference = false;
  for (std::size_t i = 0;
       i < std::min(a.broker_groups().size(), b.broker_groups().size()); ++i) {
    if (a.broker_groups()[i].client_count != b.broker_groups()[i].client_count) {
      any_difference = true;
      break;
    }
  }
  any_difference |= a.broker_groups().size() != b.broker_groups().size();
  EXPECT_TRUE(any_difference);
}

TEST(Scenario, CityCdnScenarioAppendsCdns) {
  ScenarioConfig config = small_config();
  config.city_cdn_count = 50;
  const Scenario s = Scenario::build(config);
  EXPECT_EQ(s.catalog().cdns().size(), 64u);
  // City CDNs were provisioned too.
  for (const cdn::Cdn& cdn : s.catalog().cdns()) {
    EXPECT_GT(cdn.contract_price, 0.0) << cdn.name;
  }
}

TEST(Scenario, DistanceMilesMatchesGeodesic) {
  const Scenario s = Scenario::build(small_config());
  const auto& cluster = s.catalog().clusters().front();
  const auto city = s.world().cities().front().id;
  const double expected = geo::haversine_miles(
      s.world().city(city).location, s.world().city(cluster.city).location);
  EXPECT_DOUBLE_EQ(s.distance_miles(city, cluster.id), expected);
}

TEST(ToDemand, PreservesTotals) {
  const Scenario s = Scenario::build(small_config());
  const auto demand = to_demand(s.broker_groups());
  ASSERT_EQ(demand.size(), s.broker_groups().size());
  double total = 0.0;
  for (const auto& point : demand) total += point.count;
  EXPECT_NEAR(total, 4000.0, 1e-9);
}

}  // namespace
}  // namespace vdx::sim
