// SessionStore structural tests: free-list reuse, canonical group order
// under churn (the erase-on-zero count-map regression), cursor/restore of a
// store with holes, and an A/B sweep against a map-based reference model of
// the container this store replaced.
#include "sim/session_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace vdx::sim {
namespace {

core::CityId city(std::uint32_t c) { return core::CityId{c}; }

/// The container SessionStore replaced: a session map plus a
/// (city, kbps, isp) count tree, grouped by in-order tree traversal.
struct ReferenceModel {
  struct Rec {
    std::uint32_t city;
    double bitrate_mbps;
    double end_s;
  };
  std::map<std::uint32_t, Rec> sessions;

  bool admit(std::uint32_t id, std::uint32_t c, double bitrate, double end_s,
             double now) {
    if (end_s <= now) return false;
    sessions.emplace(id, Rec{c, bitrate, end_s});
    return true;
  }

  std::size_t drop_until(double t) {
    std::size_t dropped = 0;
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (it->second.end_s <= t) {
        it = sessions.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  std::size_t shed_lowest(std::size_t n) {
    n = std::min(n, sessions.size());
    for (std::size_t i = 0; i < n; ++i) {
      auto victim = sessions.begin();
      for (auto it = sessions.begin(); it != sessions.end(); ++it) {
        if (it->second.bitrate_mbps < victim->second.bitrate_mbps) victim = it;
        // ties fall to the lowest id, which the id-ordered scan already gives
      }
      sessions.erase(victim);
    }
    return n;
  }

  [[nodiscard]] std::vector<broker::ClientGroup> groups() const {
    std::map<std::tuple<std::uint32_t, std::int64_t>, std::uint32_t> counts;
    for (const auto& [id, rec] : sessions) {
      const auto kbps =
          static_cast<std::int64_t>(std::llround(rec.bitrate_mbps * 1000.0));
      ++counts[{rec.city, kbps}];
    }
    std::vector<broker::ClientGroup> out;
    for (const auto& [key, count] : counts) {
      broker::ClientGroup g;
      g.id = broker::ShareId{static_cast<std::uint32_t>(out.size())};
      g.city = core::CityId{std::get<0>(key)};
      g.isp = 0;
      g.bitrate_mbps = static_cast<double>(std::get<1>(key)) / 1000.0;
      g.client_count = static_cast<double>(count);
      out.push_back(g);
    }
    return out;
  }

  [[nodiscard]] std::vector<state::ActiveSession> cursor_active() const {
    std::vector<state::ActiveSession> out;
    for (const auto& [id, rec] : sessions) {
      out.push_back(state::ActiveSession{id, rec.city, rec.bitrate_mbps, rec.end_s});
    }
    return out;
  }
};

void expect_groups_equal(std::span<const broker::ClientGroup> got,
                         const std::vector<broker::ClientGroup>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id.value(), want[i].id.value()) << "group " << i;
    EXPECT_EQ(got[i].city.value(), want[i].city.value()) << "group " << i;
    EXPECT_EQ(got[i].isp, want[i].isp) << "group " << i;
    EXPECT_EQ(got[i].bitrate_mbps, want[i].bitrate_mbps) << "group " << i;
    EXPECT_EQ(got[i].client_count, want[i].client_count) << "group " << i;
  }
}

TEST(SessionStore, FreeListReusesSlotsAfterMassDeparture) {
  SessionStore store;
  for (std::uint32_t id = 0; id < 1000; ++id) {
    // Ids 0..899 end by t=900; the last hundred live to t=2000.
    const double end = id < 900 ? 1.0 + id : 2000.0;
    ASSERT_TRUE(store.admit(id, city(id % 7), 1.0 + (id % 3), end, 0.0));
  }
  EXPECT_EQ(store.slot_capacity(), 1000u);
  EXPECT_EQ(store.free_count(), 0u);

  EXPECT_EQ(store.drop_until(900.0), 900u);
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.free_count(), 900u);
  EXPECT_EQ(store.slot_capacity(), 1000u);  // slots retained, not reallocated

  // A second wave the same size as the departure fits entirely in the holes.
  for (std::uint32_t id = 1000; id < 1900; ++id) {
    ASSERT_TRUE(store.admit(id, city(id % 7), 2.0, 3000.0, 900.0));
  }
  EXPECT_EQ(store.size(), 1000u);
  EXPECT_EQ(store.free_count(), 0u);
  EXPECT_EQ(store.slot_capacity(), 1000u);

  // The recycled population still serializes in id order.
  const state::StreamCursor cursor = store.cursor();
  ASSERT_EQ(cursor.active.size(), 1000u);
  for (std::size_t i = 1; i < cursor.active.size(); ++i) {
    EXPECT_LT(cursor.active[i - 1].id, cursor.active[i].id);
  }
}

TEST(SessionStore, GroupOrderIsCanonicalRegardlessOfChurnHistory) {
  // Two populations with identical live sets but wildly different
  // insertion/erasure histories. The old count map erased keys on zero and
  // reinserted them, so iteration order was history-free only because
  // std::map sorts; a hash map (or any order-carrying bug) diverges here.
  SessionStore direct;
  for (std::uint32_t id = 0; id < 60; ++id) {
    ASSERT_TRUE(direct.admit(id, city(id % 5), 1.0 + (id % 4), 100.0, 0.0));
  }

  SessionStore churned;
  // Same 60 sessions, but interleaved with 300 transients that drain cells
  // to zero and repopulate them between every survivor.
  std::uint32_t transient = 1000;
  for (std::uint32_t id = 0; id < 60; ++id) {
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(
          churned.admit(transient++, city((id + k) % 5), 1.0 + (k % 4), 50.0, 0.0));
    }
    ASSERT_TRUE(churned.admit(id, city(id % 5), 1.0 + (id % 4), 100.0, 0.0));
    churned.drop_until(50.0);  // all transients out; cells hit zero repeatedly
  }
  ASSERT_EQ(churned.size(), 60u);

  const auto a = direct.groups();
  const auto b = churned.groups();
  expect_groups_equal(b, std::vector<broker::ClientGroup>(a.begin(), a.end()));
}

TEST(SessionStore, CursorRestoreRoundTripsAStoreWithHoles) {
  SessionStore store;
  for (std::uint32_t id = 0; id < 500; ++id) {
    const double end = (id % 2 == 0) ? 10.0 : 100.0 + id;
    ASSERT_TRUE(store.admit(id, city(id % 11), 0.5 + (id % 6), end, 0.0));
  }
  store.drop_until(10.0);   // every even id leaves a hole
  store.shed_lowest(25);    // and a few more holes out of victim order
  ASSERT_EQ(store.size(), 225u);
  ASSERT_GT(store.free_count(), 0u);

  const state::StreamCursor snapshot = store.cursor();
  SessionStore resumed;
  resumed.restore(snapshot.active);

  EXPECT_EQ(resumed.size(), store.size());
  EXPECT_EQ(resumed.cursor().active, snapshot.active);
  {
    const auto want = store.groups();
    expect_groups_equal(resumed.groups(),
                        std::vector<broker::ClientGroup>(want.begin(), want.end()));
  }

  // Derived state (the departure heap) was rebuilt, so both stores must now
  // evolve identically through further departures and admissions.
  for (double t : {150.0, 300.0, 480.0}) {
    EXPECT_EQ(store.drop_until(t), resumed.drop_until(t));
    const std::uint32_t id = 10'000 + static_cast<std::uint32_t>(t);
    EXPECT_EQ(store.admit(id, city(3), 2.0, 600.0, t),
              resumed.admit(id, city(3), 2.0, 600.0, t));
    EXPECT_EQ(store.cursor().active, resumed.cursor().active);
  }
}

TEST(SessionStore, RestoreKeepsFirstOfDuplicateIdsAndSortsInput) {
  std::vector<state::ActiveSession> active = {
      {7, 2, 3.0, 90.0},
      {3, 1, 1.0, 50.0},
      {7, 4, 9.0, 99.0},  // duplicate id: the first occurrence wins
      {1, 0, 2.0, 70.0},
  };
  SessionStore store;
  store.restore(active);
  ASSERT_EQ(store.size(), 3u);
  const auto out = store.cursor().active;
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (state::ActiveSession{1, 0, 2.0, 70.0}));
  EXPECT_EQ(out[1], (state::ActiveSession{3, 1, 1.0, 50.0}));
  EXPECT_EQ(out[2], (state::ActiveSession{7, 2, 3.0, 90.0}));
}

TEST(SessionStore, AdmitSkipsSessionsThatAlreadyEnded) {
  SessionStore store;
  EXPECT_FALSE(store.admit(0, city(0), 1.0, 5.0, 5.0));   // end_s == now
  EXPECT_FALSE(store.admit(1, city(0), 1.0, 4.0, 5.0));   // ended earlier
  EXPECT_TRUE(store.admit(2, city(0), 1.0, 6.0, 5.0));
  EXPECT_EQ(store.size(), 1u);
}

TEST(SessionStore, AssignmentLaneTracksTheLatestEpochOnly) {
  SessionStore store;
  for (std::uint32_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(store.admit(id, city(0), 1.0, 100.0, 0.0));
  }
  std::vector<std::pair<std::uint32_t, cdn::ClusterId>> first = {
      {0, cdn::ClusterId{5}}, {2, cdn::ClusterId{6}}};
  store.apply_assignment(first);
  std::vector<std::pair<std::uint32_t, cdn::ClusterId>> second = {
      {2, cdn::ClusterId{7}}, {3, cdn::ClusterId{8}}};
  store.apply_assignment(second);

  std::vector<std::uint32_t> assigned;
  store.for_each_live([&](std::uint32_t, std::uint32_t slot) {
    assigned.push_back(store.assigned_cluster_of_slot(slot));
  });
  // Id 0's epoch-1 assignment no longer counts; only epoch 2 survives.
  const std::vector<std::uint32_t> want = {SessionStore::kNoCluster,
                                           SessionStore::kNoCluster, 7, 8};
  EXPECT_EQ(assigned, want);
}

TEST(SessionStore, MatchesMapReferenceModelThroughRandomizedChurn) {
  // Deterministic LCG so the drill is reproducible; ~40 epochs of mixed
  // arrivals, departures, and shedding, checking every observable surface
  // against the map-based model after each step.
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  const auto next = [&lcg](std::uint32_t bound) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>((lcg >> 33) % bound);
  };

  SessionStore store;
  ReferenceModel reference;
  std::uint32_t next_id = 0;
  double now = 0.0;
  for (int epoch = 0; epoch < 40; ++epoch) {
    const std::uint32_t arrivals = 20 + next(60);
    for (std::uint32_t i = 0; i < arrivals; ++i) {
      const std::uint32_t id = next_id++;
      const std::uint32_t c = next(9);
      const double bitrate = 0.5 * (1 + next(8));
      const double end = now + static_cast<double>(next(120));  // may be <= now
      EXPECT_EQ(store.admit(id, city(c), bitrate, end, now),
                reference.admit(id, c, bitrate, end, now));
    }
    now += 30.0;
    EXPECT_EQ(store.drop_until(now), reference.drop_until(now));
    if (epoch % 5 == 4) {
      const std::size_t shed = next(10);
      EXPECT_EQ(store.shed_lowest(shed), reference.shed_lowest(shed));
    }

    ASSERT_EQ(store.size(), reference.sessions.size()) << "epoch " << epoch;
    expect_groups_equal(store.groups(), reference.groups());
    EXPECT_EQ(store.cursor().active, reference.cursor_active()) << "epoch " << epoch;
  }
  // The drill must actually have exercised the free list.
  EXPECT_GT(store.free_count() + store.size(), 0u);
  EXPECT_LT(store.slot_capacity(), static_cast<std::size_t>(next_id));
}

}  // namespace
}  // namespace vdx::sim
