// §6.2's third fix: "Applications with non-standard QoE metrics (e.g.,
// latency agnostic applications) are easy to accommodate" — the CP's goal
// weights flow straight into the broker's optimization.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace vdx::sim {
namespace {

class CpGoalsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 5000;
    config.seed = 101;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* CpGoalsTest::scenario_ = nullptr;

TEST_F(CpGoalsTest, LatencyAgnosticCpGetsCheapestDelivery) {
  // A latency-agnostic CP (bulk downloads): wp = 0.
  RunConfig agnostic;
  agnostic.weights = {0.0, 1.0};
  const DesignMetrics bulk =
      compute_metrics(scenario(), run_design(scenario(), Design::kMarketplace, agnostic));

  RunConfig standard;  // default video weights
  const DesignMetrics video =
      compute_metrics(scenario(), run_design(scenario(), Design::kMarketplace, standard));

  // Cheapest possible delivery, QoE be damned.
  EXPECT_LT(bulk.mean_cost, video.mean_cost);
  EXPECT_GE(bulk.mean_score, video.mean_score);
}

TEST_F(CpGoalsTest, QoeObsessedCpGetsBestScores) {
  RunConfig premium;
  premium.weights = {1.0, 0.0};
  const DesignMetrics live =
      compute_metrics(scenario(), run_design(scenario(), Design::kMarketplace, premium));

  RunConfig standard;
  const DesignMetrics video =
      compute_metrics(scenario(), run_design(scenario(), Design::kMarketplace, standard));

  EXPECT_LE(live.mean_score, video.mean_score + 1e-9);
  EXPECT_GE(live.mean_cost, video.mean_cost - 1e-9);
}

TEST_F(CpGoalsTest, GoalSpectrumIsMonotoneInCost) {
  // Sweeping wp:wc from performance-only to cost-only gives monotonically
  // non-increasing delivery cost.
  double previous_cost = 1e18;
  for (const double wc : {0.0, 0.5, 2.0, 8.0, 1e6}) {
    RunConfig config;
    config.weights = {wc == 0.0 ? 1.0 : 1.0, wc};
    const DesignMetrics m =
        compute_metrics(scenario(), run_design(scenario(), Design::kMarketplace, config));
    EXPECT_LE(m.mean_cost, previous_cost + 1e-6) << "wc=" << wc;
    previous_cost = m.mean_cost;
  }
}

}  // namespace
}  // namespace vdx::sim
