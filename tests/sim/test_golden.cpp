// Golden-snapshot regression suite (ISSUE 4): canonical JSONL outputs —
// timeline epoch reports and snapshot placement summaries — for three
// seeds, diffed byte-for-byte against tests/golden/. Any change to the
// decision pipeline's numerics shows up here as a reviewable line diff;
// intentional changes regenerate with --update-golden.
#include <gtest/gtest.h>

#include "sim/streaming.hpp"
#include "sim/timeline_io.hpp"
#include "support/golden.hpp"

namespace vdx::sim {
namespace {

Scenario golden_scenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.trace.session_count = 600;  // small: goldens stay reviewable & fast
  config.seed = seed;
  return Scenario::build(config);
}

std::string timeline_jsonl(const Scenario& scenario, Design design) {
  TimelineConfig config;
  config.design = design;
  return epoch_reports_jsonl(run_timeline(scenario, config));
}

class GoldenTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenTest, MarketplaceTimelineMatchesSnapshot) {
  const Scenario scenario = golden_scenario(GetParam());
  const std::string name =
      "timeline_marketplace_seed" + std::to_string(GetParam()) + ".jsonl";
  EXPECT_TRUE(test::golden_compare(name, timeline_jsonl(scenario, Design::kMarketplace)));
}

TEST_P(GoldenTest, BrokeredTimelineMatchesSnapshot) {
  const Scenario scenario = golden_scenario(GetParam());
  const std::string name =
      "timeline_brokered_seed" + std::to_string(GetParam()) + ".jsonl";
  EXPECT_TRUE(test::golden_compare(name, timeline_jsonl(scenario, Design::kBrokered)));
}

TEST_P(GoldenTest, PlacementSummaryMatchesSnapshot) {
  const Scenario scenario = golden_scenario(GetParam());
  const DesignOutcome outcome = run_design(scenario, Design::kMarketplace);
  const std::string name =
      "placements_marketplace_seed" + std::to_string(GetParam()) + ".jsonl";
  EXPECT_TRUE(test::golden_compare(name, placement_summary_jsonl(outcome)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenTest, ::testing::Values(7u, 55u, 2017u));

TEST(GoldenStreamingTest, StreamingEngineMatchesTheSameSnapshots) {
  // The streaming engine must hit the very same goldens as the batch
  // engine — a second, independent witness of the equivalence guarantee.
  const Scenario scenario = golden_scenario(7);
  StreamingConfig config;
  config.design = Design::kMarketplace;
  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  const StreamingResult result =
      StreamingTimeline{scenario, config}.run(broker, background);
  EXPECT_TRUE(test::golden_compare("timeline_marketplace_seed7.jsonl",
                                   epoch_reports_jsonl(result.timeline)));
}

}  // namespace
}  // namespace vdx::sim
