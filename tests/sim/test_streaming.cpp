// StreamingTimeline acceptance: the streaming engine reproduces the batch
// engine's epoch reports byte-identically (ISSUE 4 acceptance criterion),
// at --threads 1 and --threads 8, for several designs; plus the engine's
// resource-accounting invariants.
#include "sim/streaming.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/observe.hpp"
#include "sim/timeline_io.hpp"

namespace vdx::sim {
namespace {

std::size_t env_threads(std::size_t fallback) {
  // The TSan CI lane pins thread counts via VDX_TEST_THREADS.
  if (const char* env = std::getenv("VDX_TEST_THREADS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// Runs batch and streaming over the same scenario and diffs the serialized
/// epoch reports byte-for-byte.
void expect_equivalent(const Scenario& scenario, Design design, std::size_t threads,
                       std::size_t batch_sessions) {
  TimelineConfig batch;
  batch.design = design;
  batch.run.threads = threads;
  const TimelineResult batch_result = run_timeline(scenario, batch);

  StreamingConfig streaming;
  streaming.design = design;
  streaming.run.threads = threads;
  streaming.batch_sessions = batch_sessions;
  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  const StreamingResult streamed =
      StreamingTimeline{scenario, streaming}.run(broker, background);

  EXPECT_EQ(epoch_reports_jsonl(streamed.timeline),
            epoch_reports_jsonl(batch_result))
      << "design=" << to_string(design) << " threads=" << threads
      << " batch_sessions=" << batch_sessions;
}

// -- Seed-scale equivalence (the labeled acceptance ctest) -------------------

class StreamingSeedScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 5000;
    config.seed = 55;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* StreamingSeedScaleTest::scenario_ = nullptr;

TEST_F(StreamingSeedScaleTest, MatchesBatchByteForByteSingleThread) {
  expect_equivalent(scenario(), Design::kMarketplace, 1, 512);
}

TEST_F(StreamingSeedScaleTest, MatchesBatchByteForByteEightThreads) {
  expect_equivalent(scenario(), Design::kMarketplace, 8, 512);
}

TEST_F(StreamingSeedScaleTest, MatchesBatchForBrokeredDesign) {
  // Brokered exercises the blurred-QoE path (qoe_epoch-dependent scores).
  expect_equivalent(scenario(), Design::kBrokered, 1, 512);
}

TEST_F(StreamingSeedScaleTest, PullGranularityNeverChangesResults) {
  StreamingConfig config;
  config.batch_sessions = 7;  // pathological pull size
  TraceStream broker7{scenario().broker_trace()};
  TraceStream background7{scenario().background_trace()};
  const auto tiny = StreamingTimeline{scenario(), config}.run(broker7, background7);

  config.batch_sessions = 100'000;  // one pull
  TraceStream broker_all{scenario().broker_trace()};
  TraceStream background_all{scenario().background_trace()};
  const auto whole =
      StreamingTimeline{scenario(), config}.run(broker_all, background_all);

  EXPECT_EQ(epoch_reports_jsonl(tiny.timeline), epoch_reports_jsonl(whole.timeline));
  EXPECT_EQ(tiny.peak_active_sessions, whole.peak_active_sessions);
}

// -- Small-scenario equivalence (fast enough for the asan/tsan lanes) --------

class StreamingSmallTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 1200;
    config.seed = 7;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* StreamingSmallTest::scenario_ = nullptr;

TEST_F(StreamingSmallTest, EquivalenceSmallSerialAndParallel) {
  expect_equivalent(scenario(), Design::kMarketplace, 1, 256);
  expect_equivalent(scenario(), Design::kMarketplace, env_threads(8), 256);
}

TEST_F(StreamingSmallTest, PerSessionPullsMatchBulkPullsByteForByte) {
  // Regression for the count-map churn bug: pulling one session at a time
  // maximizes erase-on-zero/reinsert churn in the active population between
  // epochs. With the dense count arrays the export must not depend on that
  // history at all — byte-identical to one-big-pull, and to the batch engine.
  expect_equivalent(scenario(), Design::kMarketplace, 1, 1);

  StreamingConfig config;
  config.batch_sessions = 1;
  TraceStream broker1{scenario().broker_trace()};
  TraceStream background1{scenario().background_trace()};
  const auto drip = StreamingTimeline{scenario(), config}.run(broker1, background1);

  config.batch_sessions = 4096;
  TraceStream broker_bulk{scenario().broker_trace()};
  TraceStream background_bulk{scenario().background_trace()};
  const auto bulk =
      StreamingTimeline{scenario(), config}.run(broker_bulk, background_bulk);

  EXPECT_EQ(epoch_reports_jsonl(drip.timeline), epoch_reports_jsonl(bulk.timeline));
  EXPECT_EQ(drip.peak_active_sessions, bulk.peak_active_sessions);
}

TEST_F(StreamingSmallTest, ResourceAccountingInvariants) {
  StreamingConfig config;
  config.batch_sessions = 128;
  TraceStream broker{scenario().broker_trace()};
  TraceStream background{scenario().background_trace()};
  const StreamingResult result =
      StreamingTimeline{scenario(), config}.run(broker, background);

  // Every broker session arrives within the horizon, so the stream drains
  // fully (minus any sessions arriving after the last epoch midpoint).
  EXPECT_LE(result.broker_sessions, scenario().broker_trace().size());
  EXPECT_GT(result.broker_sessions, 0u);
  EXPECT_GT(result.background_sessions, 0u);
  // The concurrent population is a fraction of the horizon total: the whole
  // point of streaming.
  EXPECT_LT(result.peak_active_sessions,
            scenario().broker_trace().size() + scenario().background_trace().size());
  EXPECT_GT(result.peak_active_sessions, 0u);
  EXPECT_EQ(result.decision_rounds, result.timeline.epochs.size());
  EXPECT_LE(result.background_recomputes, result.decision_rounds);
}

TEST_F(StreamingSmallTest, EmitsTimelineObservability) {
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal{256};

  StreamingConfig config;
  config.obs = obs::Observer{&metrics, &tracer, &journal};
  TraceStream broker{scenario().broker_trace()};
  TraceStream background{scenario().background_trace()};
  const StreamingResult result =
      StreamingTimeline{scenario(), config}.run(broker, background);

  EXPECT_DOUBLE_EQ(metrics.counter("timeline.decision_rounds").value(),
                   static_cast<double>(result.decision_rounds));
  EXPECT_DOUBLE_EQ(metrics.gauge("timeline.peak_active_sessions").value(),
                   static_cast<double>(result.peak_active_sessions));
  // One journal event per executed round, carrying the active count.
  std::size_t epoch_events = 0;
  for (const obs::Event& event : journal.events()) {
    if (event.kind == obs::EventKind::kEpoch) ++epoch_events;
  }
  EXPECT_EQ(epoch_events, result.decision_rounds);
}

}  // namespace
}  // namespace vdx::sim
