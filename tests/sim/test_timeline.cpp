#include "sim/timeline.hpp"

#include <gtest/gtest.h>

namespace vdx::sim {
namespace {

class TimelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 5000;
    config.seed = 55;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* TimelineTest::scenario_ = nullptr;

TEST_F(TimelineTest, CoversTheFullTraceHour) {
  TimelineConfig config;
  config.epoch_s = 300.0;
  const TimelineResult result = run_timeline(scenario(), config);
  EXPECT_EQ(result.epochs.size(), 12u);  // 3600 / 300
  for (const EpochReport& epoch : result.epochs) {
    EXPECT_GT(epoch.active_sessions, 0u);
    EXPECT_GE(epoch.cdn_switch_fraction, 0.0);
    EXPECT_LE(epoch.cdn_switch_fraction, 1.0);
    // Cluster switching subsumes CDN switching.
    EXPECT_GE(epoch.cluster_switch_fraction, epoch.cdn_switch_fraction - 1e-12);
  }
  EXPECT_DOUBLE_EQ(result.epochs.front().cdn_switch_fraction, 0.0);  // no prior
}

TEST_F(TimelineTest, BrokeredChurnsLikeFigure4) {
  TimelineConfig config;
  config.design = Design::kBrokered;
  const TimelineResult result = run_timeline(scenario(), config);
  // Fig. 4: ~40% of sessions moved; our per-epoch re-decisions land in a
  // generous band around that.
  EXPECT_GT(result.mean_cdn_switch_fraction, 0.20);
  EXPECT_LT(result.mean_cdn_switch_fraction, 0.70);
}

TEST_F(TimelineTest, MarketplaceIsDramaticallyMoreStable) {
  TimelineConfig brokered;
  brokered.design = Design::kBrokered;
  TimelineConfig marketplace;
  marketplace.design = Design::kMarketplace;
  const TimelineResult churny = run_timeline(scenario(), brokered);
  const TimelineResult stable = run_timeline(scenario(), marketplace);
  // §6.2: "Traffic unpredictability is greatly reduced in VDX".
  EXPECT_LT(stable.mean_cdn_switch_fraction,
            0.25 * churny.mean_cdn_switch_fraction);
}

TEST_F(TimelineTest, RejectsBadEpoch) {
  TimelineConfig config;
  config.epoch_s = 0.0;
  EXPECT_THROW((void)run_timeline(scenario(), config), std::invalid_argument);
}

TEST_F(TimelineTest, DeterministicAcrossRuns) {
  TimelineConfig config;
  const TimelineResult a = run_timeline(scenario(), config);
  const TimelineResult b = run_timeline(scenario(), config);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].cdn_switch_fraction, b.epochs[e].cdn_switch_fraction);
  }
}

}  // namespace
}  // namespace vdx::sim
