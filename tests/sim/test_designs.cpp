#include "sim/designs.hpp"

#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace vdx::sim {
namespace {

/// One shared scenario for the whole suite (construction is the slow part).
class DesignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 6000;
    config.seed = 17;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* DesignTest::scenario_ = nullptr;

TEST_F(DesignTest, BackgroundPlacementConservesTraffic) {
  const auto loads = place_background(scenario());
  double placed = 0.0;
  for (const double l : loads) placed += l;
  double expected = 0.0;
  for (const auto& g : scenario().background_groups()) expected += g.demand_mbps();
  EXPECT_NEAR(placed, expected, expected * 1e-9);
}

TEST_F(DesignTest, BackgroundNeverOverloadsAlone) {
  const auto loads = place_background(scenario());
  std::size_t overloaded = 0;
  for (const auto& cluster : scenario().catalog().clusters()) {
    if (loads[cluster.id.value()] > cluster.capacity * 1.001) ++overloaded;
  }
  // pick_load_balanced prefers headroom; with 2x-provisioned CDNs the
  // background alone should not congest anything.
  EXPECT_EQ(overloaded, 0u);
}

class DesignParam : public DesignTest, public ::testing::WithParamInterface<Design> {};

TEST_P(DesignParam, EveryClientIsPlacedExactlyOnce) {
  const DesignOutcome outcome = run_design(scenario(), GetParam());
  std::vector<double> placed(scenario().broker_groups().size(), 0.0);
  for (const Placement& p : outcome.placements) {
    EXPECT_GE(p.clients, 0.0);
    placed[p.group] += p.clients;
  }
  for (std::size_t g = 0; g < placed.size(); ++g) {
    EXPECT_NEAR(placed[g], scenario().broker_groups()[g].client_count,
                1e-3 * std::max(1.0, scenario().broker_groups()[g].client_count))
        << "group " << g;
  }
}

TEST_P(DesignParam, LoadsAreConsistentWithPlacements) {
  const DesignOutcome outcome = run_design(scenario(), GetParam());
  std::vector<double> recomputed = outcome.background_loads;
  for (const Placement& p : outcome.placements) {
    recomputed[p.cluster.value()] +=
        p.clients * scenario().broker_groups()[p.group].bitrate_mbps;
  }
  for (std::size_t c = 0; c < recomputed.size(); ++c) {
    EXPECT_NEAR(recomputed[c], outcome.cluster_loads[c],
                1e-6 * std::max(1.0, recomputed[c]));
  }
}

TEST_P(DesignParam, PricesMatchDesignPricingModel) {
  const Design design = GetParam();
  const DesignOutcome outcome = run_design(scenario(), design);
  const bool flat = design == Design::kBrokered || design == Design::kMulticluster2 ||
                    design == Design::kMulticluster100;
  // DynamicPricing is single-cluster: delivery-time rebalancing can move
  // clients to a sibling cluster while the CP keeps paying the *announced*
  // cluster's price, so exact per-cluster equality only holds for the
  // multi-cluster dynamic designs.
  const bool exact_dynamic = design == Design::kDynamicMulticluster ||
                             design == Design::kBestLookup ||
                             design == Design::kMarketplace ||
                             design == Design::kOmniscient;
  for (const Placement& p : outcome.placements) {
    const cdn::Cluster& cluster = scenario().catalog().cluster(p.cluster);
    const cdn::Cdn& cdn = scenario().catalog().cdn(cluster.cdn);
    if (flat) {
      EXPECT_NEAR(p.price, cdn.contract_price, 1e-9);
    } else if (exact_dynamic) {
      EXPECT_NEAR(p.price, cluster.unit_cost() * cdn.markup, 1e-9);
    } else {
      // DynamicPricing: the price must still be a marked-up cost of *some*
      // cluster of the serving CDN.
      double lo = 1e18;
      double hi = 0.0;
      for (const cdn::ClusterId id : scenario().catalog().clusters_of(cluster.cdn)) {
        const double c = scenario().catalog().cluster(id).unit_cost() * cdn.markup;
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      EXPECT_GE(p.price, lo - 1e-9);
      EXPECT_LE(p.price, hi + 1e-9);
    }
  }
}

TEST_P(DesignParam, DeterministicAcrossRuns) {
  const DesignOutcome a = run_design(scenario(), GetParam());
  const DesignOutcome b = run_design(scenario(), GetParam());
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].cluster, b.placements[i].cluster);
    EXPECT_DOUBLE_EQ(a.placements[i].clients, b.placements[i].clients);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignParam, ::testing::ValuesIn(kAllDesigns),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST_F(DesignTest, SingleClusterDesignsOfferOneBidPerCdn) {
  // Brokered must never place one group's clients of a CDN on more clusters
  // than the CDN's internal rebalancing allows; in particular the optimizer
  // input had a single option per (group, CDN) pair — indirectly visible as
  // zero congestion after rebalancing.
  const DesignOutcome outcome = run_design(scenario(), Design::kBrokered);
  const DesignMetrics metrics = compute_metrics(scenario(), outcome);
  EXPECT_LT(metrics.congested_fraction, 0.02);
}

TEST_F(DesignTest, MarketplaceRespectsNetCapacity) {
  const DesignOutcome outcome = run_design(scenario(), Design::kMarketplace);
  for (const auto& cluster : scenario().catalog().clusters()) {
    EXPECT_LE(outcome.cluster_loads[cluster.id.value()],
              cluster.capacity * 1.01 + 1e-6)
        << "cluster " << cluster.id.value();
  }
}

TEST_F(DesignTest, TraitsMatchTable2) {
  EXPECT_FALSE(traits_of(Design::kBrokered).cluster_level_optimization);
  EXPECT_FALSE(traits_of(Design::kBrokered).dynamic_cluster_pricing);
  EXPECT_EQ(traits_of(Design::kBrokered).traffic_predictability, 0);

  EXPECT_TRUE(traits_of(Design::kMulticluster2).cluster_level_optimization);
  EXPECT_FALSE(traits_of(Design::kMulticluster2).dynamic_cluster_pricing);

  EXPECT_TRUE(traits_of(Design::kDynamicPricing).dynamic_cluster_pricing);
  EXPECT_FALSE(traits_of(Design::kDynamicPricing).cluster_level_optimization);

  const DesignTraits marketplace = traits_of(Design::kMarketplace);
  EXPECT_TRUE(marketplace.shares_clients);
  EXPECT_TRUE(marketplace.cluster_level_optimization);
  EXPECT_TRUE(marketplace.dynamic_cluster_pricing);
  EXPECT_EQ(marketplace.traffic_predictability, 1);

  EXPECT_TRUE(traits_of(Design::kBestLookup).announces_capacity);
  EXPECT_EQ(traits_of(Design::kBestLookup).traffic_predictability, 0);
}

TEST_F(DesignTest, RebalanceMovesOverloadToSiblings) {
  DesignOutcome outcome = run_design(scenario(), Design::kBrokered);
  // Manufacture an overload: pile the first placement's cluster far above
  // capacity and verify rebalancing drains it.
  ASSERT_FALSE(outcome.placements.empty());
  Placement& p = outcome.placements.front();
  const auto& cluster = scenario().catalog().cluster(p.cluster);
  const double bitrate = scenario().broker_groups()[p.group].bitrate_mbps;
  const double extra_clients = (2.0 * cluster.capacity) / bitrate;
  p.clients += extra_clients;
  outcome.cluster_loads[p.cluster.value()] += extra_clients * bitrate;

  const double before = outcome.cluster_loads[p.cluster.value()];
  ASSERT_GT(before, cluster.capacity);
  rebalance_within_cdn(scenario(), outcome);
  EXPECT_LT(outcome.cluster_loads[p.cluster.value()], before);
}

}  // namespace
}  // namespace vdx::sim
