#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace vdx::sim {
namespace {

TEST(WeightedMedian, EmptyAndZeroMass) {
  EXPECT_DOUBLE_EQ(weighted_median({}), 0.0);
  EXPECT_DOUBLE_EQ(weighted_median({{1.0, 0.0}, {2.0, 0.0}}), 0.0);
}

TEST(WeightedMedian, UnweightedMatchesPlainMedian) {
  EXPECT_DOUBLE_EQ(weighted_median({{3.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}}), 2.0);
}

TEST(WeightedMedian, HeavyItemDominates) {
  EXPECT_DOUBLE_EQ(weighted_median({{1.0, 1.0}, {10.0, 100.0}, {5.0, 1.0}}), 10.0);
}

TEST(WeightedMedian, FractionalWeights) {
  // Mass: 0.4 below 2.0, 0.6 at 2.0 -> median 2.0.
  EXPECT_DOUBLE_EQ(weighted_median({{1.0, 0.4}, {2.0, 0.6}}), 2.0);
}

class MetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 6000;
    config.seed = 23;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* MetricsTest::scenario_ = nullptr;

TEST_F(MetricsTest, MetricsArePositiveAndBounded) {
  const DesignOutcome outcome = run_design(scenario(), Design::kMarketplace);
  const DesignMetrics m = compute_metrics(scenario(), outcome);
  EXPECT_GT(m.median_cost, 0.0);
  EXPECT_GT(m.median_score, 0.0);
  EXPECT_GE(m.median_distance_miles, 0.0);
  EXPECT_GE(m.median_load, 0.0);
  EXPECT_GE(m.congested_fraction, 0.0);
  EXPECT_LE(m.congested_fraction, 1.0);
  EXPECT_GT(m.mean_cost, 0.0);
  EXPECT_GT(m.mean_score, 0.0);
  EXPECT_GT(m.broker_traffic_mbps, 0.0);
}

TEST_F(MetricsTest, CdnAccountsBalance) {
  const DesignOutcome outcome = run_design(scenario(), Design::kMarketplace);
  const auto accounts = per_cdn_accounts(scenario(), outcome);
  ASSERT_EQ(accounts.size(), scenario().catalog().cdns().size());

  const DesignMetrics m = compute_metrics(scenario(), outcome);
  double traffic = 0.0;
  for (const CdnAccount& account : accounts) {
    traffic += account.traffic_mbps;
    EXPECT_EQ(account.profit, account.revenue - account.cost);
    if (account.traffic_mbps > 0.0) {
      EXPECT_GT(account.revenue.dollars(), 0.0);
      EXPECT_GT(account.cost.dollars(), 0.0);
    }
  }
  EXPECT_NEAR(traffic, m.broker_traffic_mbps, 1e-6 * std::max(1.0, traffic));
}

TEST_F(MetricsTest, MarketplaceProfitsAreNonNegative) {
  // VDX's headline: per-cluster pricing means every CDN profits (Fig. 12).
  const DesignOutcome outcome = run_design(scenario(), Design::kMarketplace);
  for (const CdnAccount& account : per_cdn_accounts(scenario(), outcome)) {
    EXPECT_GE(account.profit.micros(), -1) << "CDN " << account.cdn.value();
    if (account.traffic_mbps > 0.0) {
      // Price = 1.2 x cost -> ratio 1.2 exactly.
      EXPECT_NEAR(account.price_to_cost, 1.2, 1e-6);
    }
  }
}

TEST_F(MetricsTest, BrokeredCreatesWinnersAndLosers) {
  // Fig. 10/12: under flat-rate pricing some CDNs deliver below cost.
  const DesignOutcome outcome = run_design(scenario(), Design::kBrokered);
  const auto accounts = per_cdn_accounts(scenario(), outcome);
  bool any_loss = false;
  bool any_profit = false;
  for (const CdnAccount& account : accounts) {
    if (account.traffic_mbps <= 0.0) continue;
    any_loss |= account.profit.micros() < 0;
    any_profit |= account.profit.micros() > 0;
  }
  EXPECT_TRUE(any_loss);
  EXPECT_TRUE(any_profit);
}

TEST_F(MetricsTest, CountryAccountsGroupByClusterCountry) {
  const DesignOutcome outcome = run_design(scenario(), Design::kBrokered);
  const auto accounts = per_country_accounts(scenario(), outcome);
  ASSERT_EQ(accounts.size(), scenario().world().countries().size());
  double traffic = 0.0;
  for (const CountryAccount& account : accounts) traffic += account.traffic_mbps;
  const DesignMetrics m = compute_metrics(scenario(), outcome);
  EXPECT_NEAR(traffic, m.broker_traffic_mbps, 1e-6 * std::max(1.0, traffic));
}

TEST_F(MetricsTest, VdxAvoidsExpensiveCountries) {
  // Fig. 14: VDX moves delivery away from the most expensive countries.
  const DesignOutcome brokered = run_design(scenario(), Design::kBrokered);
  const DesignOutcome vdx = run_design(scenario(), Design::kMarketplace);
  const auto brokered_accounts = per_country_accounts(scenario(), brokered);
  const auto vdx_accounts = per_country_accounts(scenario(), vdx);

  // Share of traffic delivered from the 5 most expensive countries (A-E).
  const auto expensive_share = [&](const std::vector<CountryAccount>& accounts) {
    double expensive = 0.0;
    double total = 0.0;
    for (const CountryAccount& account : accounts) {
      total += account.traffic_mbps;
      if (account.country.value() < 5) expensive += account.traffic_mbps;
    }
    return total > 0.0 ? expensive / total : 0.0;
  };
  EXPECT_LT(expensive_share(vdx_accounts), expensive_share(brokered_accounts));
}

TEST(WeightedQuantile, EdgesAndMonotone) {
  std::vector<std::pair<double, double>> data{{1.0, 1.0}, {2.0, 1.0}, {3.0, 2.0}};
  EXPECT_DOUBLE_EQ(weighted_quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(data, 1.0), 3.0);
  double previous = 0.0;
  for (int d = 1; d <= 9; ++d) {
    const double q = weighted_quantile(data, d / 10.0);
    EXPECT_GE(q, previous);
    previous = q;
  }
  EXPECT_THROW((void)weighted_quantile(data, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(weighted_quantile({}, 0.5), 0.0);
}

TEST(WeightedQuantile, RejectsNegativeWeights) {
  // Regression: negative weights used to be folded silently into the total,
  // shifting every threshold. They have no quantile semantics.
  EXPECT_THROW((void)weighted_quantile({{1.0, -1.0}, {2.0, 2.0}}, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)weighted_median({{1.0, -0.001}}), std::invalid_argument);
}

TEST(WeightedQuantile, ZeroWeightEntriesCarryNoMass) {
  // Regression: a trailing zero-weight entry used to win the q=1 fallback
  // (and a leading one the q=0 return) despite carrying no mass.
  const std::vector<std::pair<double, double>> data{
      {3.0, 0.1}, {2.0, 0.2}, {1.0, 0.7}, {999.0, 0.0}};
  EXPECT_DOUBLE_EQ(weighted_quantile(data, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(weighted_quantile({{-999.0, 0.0}, {5.0, 1.0}}, 0.0), 5.0);
  // All-zero mass behaves like empty input.
  EXPECT_DOUBLE_EQ(weighted_quantile({{1.0, 0.0}, {2.0, 0.0}}, 0.5), 0.0);
}

TEST(WeightedQuantile, ExactAtPinnedQuantiles) {
  // Regression: `cumulative >= total * q` was FP-fragile at q -> 1 when the
  // weights don't sum exactly (0.1 + 0.2 + 0.7 != 1.0 in binary). The total
  // is now accumulated in sorted order so the final cumulative equals it
  // bit-for-bit.
  const std::vector<std::pair<double, double>> data{
      {3.0, 0.1}, {2.0, 0.2}, {1.0, 0.7}};
  EXPECT_DOUBLE_EQ(weighted_quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(data, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(data, 1.0), 3.0);
  // Many tiny equal weights: q=1 must still land on the max value.
  std::vector<std::pair<double, double>> fine;
  for (int i = 0; i < 1000; ++i) fine.emplace_back(static_cast<double>(i), 0.001);
  EXPECT_DOUBLE_EQ(weighted_quantile(fine, 1.0), 999.0);
}

TEST_F(MetricsTest, DistributionDecilesAreMonotoneAndBracketMedian) {
  const DesignOutcome outcome = run_design(scenario(), Design::kMarketplace);
  const DistributionSummary cdf = design_distributions(scenario(), outcome);
  const DesignMetrics m = compute_metrics(scenario(), outcome);
  ASSERT_EQ(cdf.cost_deciles.size(), 9u);
  for (std::size_t d = 1; d < 9; ++d) {
    EXPECT_GE(cdf.cost_deciles[d], cdf.cost_deciles[d - 1]);
    EXPECT_GE(cdf.score_deciles[d], cdf.score_deciles[d - 1]);
    EXPECT_GE(cdf.distance_deciles[d], cdf.distance_deciles[d - 1]);
  }
  // The 5th decile IS the weighted median.
  EXPECT_NEAR(cdf.cost_deciles[4], m.median_cost, 1e-9);
  EXPECT_NEAR(cdf.score_deciles[4], m.median_score, 1e-9);
}

TEST_F(MetricsTest, VdxCdfDominatesBrokeredOnScore) {
  // "Same trends in the CDFs": VDX's score deciles sit at or below
  // Brokered's pointwise (stochastic dominance up to noise).
  const DesignOutcome brokered = run_design(scenario(), Design::kBrokered);
  const DesignOutcome vdx = run_design(scenario(), Design::kMarketplace);
  const DistributionSummary b = design_distributions(scenario(), brokered);
  const DistributionSummary v = design_distributions(scenario(), vdx);
  std::size_t dominated = 0;
  for (std::size_t d = 0; d < 9; ++d) {
    if (v.score_deciles[d] <= b.score_deciles[d] + 1e-9) ++dominated;
  }
  EXPECT_GE(dominated, 7u);  // near-pointwise dominance
}

}  // namespace
}  // namespace vdx::sim
