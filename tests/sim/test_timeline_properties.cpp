// Property-based invariants of the timeline engines (ISSUE 4): across
// randomized seeds/configs — conservation (every active session assigned
// exactly once per epoch), monotone session clocks, churn fractions in
// [0,1], streaming-vs-batch equivalence — plus the epoch-boundary
// regression tests pinning the half-open activity convention (the audited
// "double-counted churn denominator" off-by-one: the audit found the
// half-open midpoint sampling cannot double-count, and these tests keep it
// that way).
#include <gtest/gtest.h>

#include <vector>

#include "sim/streaming.hpp"
#include "sim/timeline_detail.hpp"
#include "sim/timeline_io.hpp"

namespace vdx::sim {
namespace {

Scenario small_scenario(std::uint64_t seed, std::size_t sessions) {
  ScenarioConfig config;
  config.trace.session_count = sessions;
  config.seed = seed;
  return Scenario::build(config);
}

void expect_report_invariants(const TimelineResult& result, double epoch_s) {
  double previous_time = -1.0;
  std::size_t previous_epoch = 0;
  bool first = true;
  for (const EpochReport& r : result.epochs) {
    // Monotone session clocks: epoch indices and midpoints strictly
    // increase, and the midpoint is the epoch's.
    EXPECT_GT(r.time_s, previous_time);
    EXPECT_DOUBLE_EQ(r.time_s, (static_cast<double>(r.epoch) + 0.5) * epoch_s);
    if (!first) {
      EXPECT_GT(r.epoch, previous_epoch);
    }
    previous_time = r.time_s;
    previous_epoch = r.epoch;
    first = false;

    // Conservation: every active session is assigned exactly once (the
    // assignment is a map keyed by session id, so "at most once" holds by
    // construction; equality makes it "exactly once").
    EXPECT_EQ(r.assigned_sessions, r.active_sessions);

    // Churn fractions are fractions.
    EXPECT_GE(r.cdn_switch_fraction, 0.0);
    EXPECT_LE(r.cdn_switch_fraction, 1.0);
    EXPECT_GE(r.cluster_switch_fraction, 0.0);
    EXPECT_LE(r.cluster_switch_fraction, 1.0);
    // Cluster switching subsumes CDN switching.
    EXPECT_GE(r.cluster_switch_fraction, r.cdn_switch_fraction - 1e-12);
  }
  EXPECT_GE(result.mean_cdn_switch_fraction, 0.0);
  EXPECT_LE(result.mean_cdn_switch_fraction, 1.0);
}

TEST(TimelineProperties, HoldAcrossSeedsConfigsAndBothEngines) {
  const struct {
    std::uint64_t seed;
    std::size_t sessions;
    Design design;
    double epoch_s;
  } cases[] = {
      {1, 700, Design::kMarketplace, 300.0},
      {2, 900, Design::kBrokered, 240.0},
      {3, 1100, Design::kDynamicMulticluster, 450.0},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(::testing::Message() << "seed=" << c.seed
                                      << " design=" << to_string(c.design));
    const Scenario scenario = small_scenario(c.seed, c.sessions);

    TimelineConfig batch;
    batch.design = c.design;
    batch.epoch_s = c.epoch_s;
    const TimelineResult batch_result = run_timeline(scenario, batch);
    expect_report_invariants(batch_result, c.epoch_s);

    StreamingConfig streaming;
    streaming.design = c.design;
    streaming.epoch_s = c.epoch_s;
    streaming.batch_sessions = 128;
    TraceStream broker{scenario.broker_trace()};
    TraceStream background{scenario.background_trace()};
    const StreamingResult streamed =
        StreamingTimeline{scenario, streaming}.run(broker, background);
    expect_report_invariants(streamed.timeline, c.epoch_s);

    // Streaming-vs-batch equivalence, byte-for-byte.
    EXPECT_EQ(epoch_reports_jsonl(streamed.timeline),
              epoch_reports_jsonl(batch_result));
  }
}

TEST(TimelineProperties, ConservationHoldsUnderShedding) {
  // With admission control the exact-assignment invariant relaxes to
  // assigned + shed <= active, and the admitted population never exceeds
  // the budget — across seeds, designs, and budgets.
  const struct {
    std::uint64_t seed;
    std::size_t sessions;
    Design design;
    std::size_t budget;
  } cases[] = {
      {1, 700, Design::kMarketplace, 50},
      {2, 900, Design::kBrokered, 120},
      {3, 1100, Design::kDynamicMulticluster, 1},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(::testing::Message() << "seed=" << c.seed << " budget=" << c.budget);
    const Scenario scenario = small_scenario(c.seed, c.sessions);
    StreamingConfig streaming;
    streaming.design = c.design;
    streaming.epoch_s = 300.0;
    streaming.overload.max_active_sessions = c.budget;
    TraceStream broker{scenario.broker_trace()};
    TraceStream background{scenario.background_trace()};
    const StreamingResult streamed =
        StreamingTimeline{scenario, streaming}.run(broker, background);

    std::size_t total_shed = 0;
    for (const EpochReport& r : streamed.timeline.epochs) {
      EXPECT_LE(r.assigned_sessions + r.shed_sessions, r.active_sessions);
      EXPECT_LE(r.active_sessions - r.shed_sessions, c.budget);
      // Shedding only ever removes the overflow, never more.
      if (r.active_sessions > c.budget) {
        EXPECT_EQ(r.shed_sessions, r.active_sessions - c.budget);
      } else {
        EXPECT_EQ(r.shed_sessions, 0u);
      }
      total_shed += r.shed_sessions;
    }
    EXPECT_EQ(streamed.shed_sessions, total_shed);
  }
}

// -- Epoch-boundary regression (the satellite-4 audit) -----------------------

/// Hand-built arrival-ordered stream for boundary cases.
class VectorStream final : public SessionStream {
 public:
  VectorStream(std::vector<trace::Session> sessions, double duration_s)
      : sessions_(std::move(sessions)), duration_s_(duration_s) {}

  [[nodiscard]] std::vector<trace::Session> next_batch(
      std::size_t max_sessions) override {
    std::vector<trace::Session> out;
    while (pos_ < sessions_.size() && out.size() < max_sessions) {
      out.push_back(sessions_[pos_++]);
    }
    return out;
  }
  [[nodiscard]] bool exhausted() const override { return pos_ >= sessions_.size(); }
  [[nodiscard]] double duration_s() const override { return duration_s_; }
  void seek(std::uint64_t consumed) override {
    pos_ = static_cast<std::size_t>(consumed);
  }

 private:
  std::vector<trace::Session> sessions_;
  double duration_s_;
  std::size_t pos_ = 0;
};

trace::Session make_session(std::uint32_t id, double arrival, double duration,
                            geo::CityId city, double bitrate) {
  trace::Session s;
  s.id = trace::SessionId{id};
  s.arrival_s = arrival;
  s.duration_s = duration;
  s.city = city;
  s.bitrate_mbps = bitrate;
  return s;
}

TEST(TimelineBoundaryRegression, ActiveAtIsHalfOpenAtSessionEnd) {
  const trace::Session s = make_session(0, 100.0, 200.0, geo::CityId{0}, 1.5);
  EXPECT_DOUBLE_EQ(s.end_s(), 300.0);
  EXPECT_TRUE(s.active_at(100.0));   // arrival inclusive
  EXPECT_TRUE(s.active_at(299.999));
  EXPECT_FALSE(s.active_at(300.0));  // end exclusive
}

TEST(TimelineBoundaryRegression, SessionEndingOnEpochBoundaryCountsInOneEpoch) {
  // epoch_s = 300: midpoints at 150, 450, 750, ... A session ending exactly
  // at the epoch-1/epoch-2 boundary (t = 600) must be active at midpoint
  // 450 and NOT at 750 — it appears in exactly one epoch's churn
  // denominator, never two (the audited off-by-one).
  const Scenario scenario = small_scenario(5, 400);
  const geo::CityId city = scenario.broker_trace().sessions()[0].city;
  const double bitrate = scenario.broker_trace().sessions()[0].bitrate_mbps;

  std::vector<trace::Session> sessions;
  // One long-lived anchor so no epoch is empty.
  sessions.push_back(make_session(0, 0.0, 1200.0, city, bitrate));
  // The boundary session: [300, 600) — ends exactly on an epoch boundary.
  sessions.push_back(make_session(1, 300.0, 300.0, city, bitrate));

  StreamingConfig config;
  config.epoch_s = 300.0;
  VectorStream broker{sessions, 1200.0};
  VectorStream background{{}, 1200.0};
  const StreamingResult result =
      StreamingTimeline{scenario, config}.run(broker, background);

  ASSERT_EQ(result.timeline.epochs.size(), 4u);
  EXPECT_EQ(result.timeline.epochs[0].active_sessions, 1u);  // mid 150
  EXPECT_EQ(result.timeline.epochs[1].active_sessions, 2u);  // mid 450
  EXPECT_EQ(result.timeline.epochs[2].active_sessions, 1u);  // mid 750: gone
  EXPECT_EQ(result.timeline.epochs[3].active_sessions, 1u);
  for (const EpochReport& r : result.timeline.epochs) {
    EXPECT_EQ(r.assigned_sessions, r.active_sessions);
  }
}

TEST(TimelineBoundaryRegression, SessionEndingOnMidpointIsExcludedThatEpoch) {
  // End exactly at a sample midpoint (t = 450): half-open ⇒ not active.
  const Scenario scenario = small_scenario(5, 400);
  const geo::CityId city = scenario.broker_trace().sessions()[0].city;
  const double bitrate = scenario.broker_trace().sessions()[0].bitrate_mbps;

  std::vector<trace::Session> sessions;
  sessions.push_back(make_session(0, 0.0, 900.0, city, bitrate));
  sessions.push_back(make_session(1, 120.0, 330.0, city, bitrate));  // ends 450

  StreamingConfig config;
  config.epoch_s = 300.0;
  VectorStream broker{sessions, 900.0};
  VectorStream background{{}, 900.0};
  const StreamingResult result =
      StreamingTimeline{scenario, config}.run(broker, background);

  ASSERT_EQ(result.timeline.epochs.size(), 3u);
  EXPECT_EQ(result.timeline.epochs[0].active_sessions, 2u);  // mid 150
  EXPECT_EQ(result.timeline.epochs[1].active_sessions, 1u);  // mid 450: excluded
  EXPECT_EQ(result.timeline.epochs[2].active_sessions, 1u);
}

TEST(TimelineBoundaryRegression, ChurnDenominatorCountsEachSurvivorOnce) {
  // Direct ChurnTracker check: a session present in consecutive assignments
  // contributes exactly 1 to the denominator; disappeared or newly arrived
  // sessions contribute 0.
  const Scenario scenario = small_scenario(5, 400);
  const auto& catalog = scenario.catalog();
  // Two clusters of different CDNs (the scenario has 4 CDNs).
  const cdn::ClusterId a = catalog.cdns()[0].clusters.front();
  const cdn::ClusterId b = catalog.cdns()[1].clusters.front();

  detail::ChurnTracker tracker;
  EpochReport first;
  tracker.observe(catalog, detail::Assignment{{1, a}, {2, a}, {3, a}}, first);
  EXPECT_DOUBLE_EQ(first.cdn_switch_fraction, 0.0);  // no prior epoch

  EpochReport second;
  // Session 1 survives and switches CDN; session 2 survives and stays;
  // session 3 departed; session 4 is new.
  tracker.observe(catalog, detail::Assignment{{1, b}, {2, a}, {4, b}}, second);
  // Denominator is exactly the 2 survivors — 3 and 4 don't count.
  EXPECT_DOUBLE_EQ(second.cdn_switch_fraction, 0.5);
  EXPECT_DOUBLE_EQ(second.cluster_switch_fraction, 0.5);
  EXPECT_DOUBLE_EQ(tracker.mean_cdn_switch_fraction(), 0.5);
}

}  // namespace
}  // namespace vdx::sim
