#include "sim/hybrid.hpp"

#include <gtest/gtest.h>

namespace vdx::sim {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 5000;
    config.seed = 61;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* HybridTest::scenario_ = nullptr;

TEST_F(HybridTest, EveryClientServedUnderSomeOffer) {
  const HybridOutcome hybrid = run_hybrid_pricing(scenario());
  double total = 0.0;
  for (const broker::ClientGroup& g : scenario().broker_groups()) {
    total += g.client_count;
  }
  EXPECT_NEAR(hybrid.flat_clients + hybrid.dynamic_clients, total, total * 1e-3);
}

TEST_F(HybridTest, DynamicOffersDominateButFlatSurvives) {
  const HybridOutcome hybrid = run_hybrid_pricing(scenario());
  // The marketplace menu wins most traffic (it is strictly richer), but the
  // flat offer is not extinct: where a CDN's contract price undercuts its
  // per-cluster price (adverse contracts), flat remains attractive.
  EXPECT_GT(hybrid.dynamic_clients, hybrid.flat_clients);
  EXPECT_GT(hybrid.flat_clients, 0.0);
}

TEST_F(HybridTest, HybridIsAtLeastAsGoodAsPureMarketplace) {
  const HybridOutcome hybrid = run_hybrid_pricing(scenario());
  const DesignOutcome pure = run_design(scenario(), Design::kMarketplace);
  const DesignMetrics pure_metrics = compute_metrics(scenario(), pure);
  // The hybrid's option set is a superset, so the broker's objective can
  // only improve; check the headline score is not meaningfully worse. The
  // flat offers carry *estimated* capacities, so a slice of the traffic that
  // takes them re-inherits today's estimate-based congestion — that is the
  // price of keeping flat contracts around, and it stays bounded.
  EXPECT_LE(hybrid.metrics.mean_score, pure_metrics.mean_score * 1.05);
  EXPECT_LE(hybrid.metrics.congested_fraction, 0.15);
}

TEST_F(HybridTest, DeterministicAcrossRuns) {
  const HybridOutcome a = run_hybrid_pricing(scenario());
  const HybridOutcome b = run_hybrid_pricing(scenario());
  EXPECT_DOUBLE_EQ(a.flat_clients, b.flat_clients);
  EXPECT_DOUBLE_EQ(a.dynamic_clients, b.dynamic_clients);
}

}  // namespace
}  // namespace vdx::sim
