// Adversarial stress suite (DESIGN.md §11): scenario registry + flag
// parsing, supply-side controller determinism (blackouts zero capacity,
// price shocks scale prices, state is a pure function of time), shedding
// conservation and monotonicity in the streaming engine, and the exchange's
// admission control + QoS peering response.
#include "sim/stress.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cdn/menu_cache.hpp"
#include "market/exchange.hpp"
#include "obs/observe.hpp"
#include "sim/scenario.hpp"
#include "sim/streaming.hpp"

namespace vdx::sim {
namespace {

Scenario build_scenario(std::uint64_t seed = 11, std::size_t sessions = 800) {
  ScenarioConfig config;
  config.trace.session_count = sessions;
  config.seed = seed;
  return Scenario::build(config);
}

// --- registry + flags -----------------------------------------------------

TEST(StressRegistry, NamesRoundTrip) {
  const auto names = stress_scenario_names();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string_view name : names) {
    const auto scenario = stress_scenario_from(name);
    ASSERT_TRUE(scenario.has_value()) << name;
    EXPECT_EQ(to_string(*scenario), name);
  }
  EXPECT_FALSE(stress_scenario_from("bogus").has_value());
  EXPECT_FALSE(stress_scenario_from("").has_value());
}

TEST(StressFlags, ParsesTheFullKnobSet) {
  core::Flags flags{{"--scenario", "flash-crowd", "--spike-city", "3",
                     "--spike-factor", "12.5", "--blackout-region", "B",
                     "--shock-factor", "4", "--shed-budget", "1000"}};
  const StressConfig config = stress_config_from_flags(flags);
  EXPECT_EQ(config.scenario, StressScenario::kFlashCrowd);
  EXPECT_EQ(config.spike_city, 3u);
  EXPECT_DOUBLE_EQ(config.spike_factor, 12.5);
  EXPECT_EQ(config.blackout_region, "B");
  EXPECT_DOUBLE_EQ(config.shock_factor, 4.0);
  EXPECT_EQ(config.shed_budget, 1000u);
  flags.check_all_used();
}

TEST(StressFlags, RejectsNonsenseWithOneLineErrors) {
  {
    core::Flags flags{{"--scenario", "tsunami"}};
    EXPECT_THROW((void)stress_config_from_flags(flags), std::invalid_argument);
  }
  {
    core::Flags flags{{"--spike-factor", "0"}};
    EXPECT_THROW((void)stress_config_from_flags(flags), std::invalid_argument);
  }
  {
    core::Flags flags{{"--spike-factor", "-50"}};
    EXPECT_THROW((void)stress_config_from_flags(flags), std::invalid_argument);
  }
  {
    core::Flags flags{{"--shock-factor", "nan"}};
    EXPECT_THROW((void)stress_config_from_flags(flags), std::invalid_argument);
  }
}

TEST(StressFlags, HashSeparatesConfigurations) {
  StressConfig a;
  StressConfig b;
  EXPECT_EQ(stress_config_hash(a), stress_config_hash(b));
  b.scenario = StressScenario::kBlackout;
  EXPECT_NE(stress_config_hash(a), stress_config_hash(b));
  StressConfig c;
  c.spike_factor = 51.0;
  EXPECT_NE(stress_config_hash(a), stress_config_hash(c));
  StressConfig d;
  d.shed_budget = 1;
  EXPECT_NE(stress_config_hash(a), stress_config_hash(d));
}

// --- profile resolution ---------------------------------------------------

TEST(StressProfileTest, SteadyIsInert) {
  const Scenario scenario = build_scenario();
  StressConfig config;
  const StressProfile profile =
      make_stress_profile(scenario.world(), config, 3600.0);
  EXPECT_FALSE(profile.demand.active());
  EXPECT_FALSE(profile.supply_active());
}

TEST(StressProfileTest, PerfectStormComposesEveryRegime) {
  const Scenario scenario = build_scenario();
  StressConfig config;
  config.scenario = StressScenario::kPerfectStorm;
  const StressProfile profile =
      make_stress_profile(scenario.world(), config, 3600.0);
  EXPECT_EQ(profile.demand.flash_crowds().size(), 1u);
  EXPECT_EQ(profile.demand.diurnals().size(), 1u);
  EXPECT_EQ(profile.blackouts.size(), 1u);
  EXPECT_EQ(profile.price_shocks.size(), 1u);
  // Every window lies inside the horizon.
  EXPECT_GE(profile.demand.flash_crowds()[0].start_s, 0.0);
  EXPECT_LE(profile.demand.flash_crowds()[0].end_s(), 3600.0);
  EXPECT_LT(profile.blackouts[0].start_s, profile.blackouts[0].end_s);
  EXPECT_LE(profile.blackouts[0].end_s, 3600.0);
}

TEST(StressProfileTest, RejectsUnknownCityAndRegion) {
  const Scenario scenario = build_scenario();
  StressConfig config;
  config.scenario = StressScenario::kFlashCrowd;
  config.spike_city = scenario.world().cities().size() + 7;
  EXPECT_THROW((void)make_stress_profile(scenario.world(), config, 3600.0),
               std::invalid_argument);
  StressConfig blackout;
  blackout.scenario = StressScenario::kBlackout;
  blackout.blackout_region = "Atlantis";
  EXPECT_THROW((void)make_stress_profile(scenario.world(), blackout, 3600.0),
               std::invalid_argument);
  EXPECT_THROW((void)make_stress_profile(scenario.world(), StressConfig{}, 0.0),
               std::invalid_argument);
}

// --- supply-side controller ----------------------------------------------

TEST(SupplyStressControllerTest, BlackoutZeroesRegionCapacityAndRestores) {
  Scenario scenario = build_scenario();
  StressConfig config;
  config.scenario = StressScenario::kBlackout;
  const StressProfile profile =
      make_stress_profile(scenario.world(), config, 3600.0);
  ASSERT_EQ(profile.blackouts.size(), 1u);
  const BlackoutSpec blackout = profile.blackouts[0];

  const std::vector<cdn::Cluster> base{scenario.catalog().clusters().begin(),
                                       scenario.catalog().clusters().end()};
  SupplyStressController controller{scenario, profile};

  const double mid = 0.5 * (blackout.start_s + blackout.end_s);
  EXPECT_TRUE(controller.apply(mid));
  EXPECT_FALSE(controller.apply(mid));  // same active set: no transition
  std::size_t darkened = 0;
  for (std::size_t c = 0; c < base.size(); ++c) {
    const cdn::Cluster& cluster = scenario.catalog().clusters()[c];
    const bool in_region =
        scenario.world().country_of(cluster.city).id == blackout.country;
    if (in_region) {
      ++darkened;
      EXPECT_DOUBLE_EQ(cluster.capacity, 0.0);
      EXPECT_TRUE(controller.cluster_dark(cdn::ClusterId{
          static_cast<std::uint32_t>(c)}));
    } else {
      EXPECT_DOUBLE_EQ(cluster.capacity, base[c].capacity);
      EXPECT_FALSE(controller.cluster_dark(cdn::ClusterId{
          static_cast<std::uint32_t>(c)}));
    }
  }
  EXPECT_GT(darkened, 0u);

  // Past the window everything restores bit-exactly.
  EXPECT_TRUE(controller.apply(blackout.end_s + 1.0));
  for (std::size_t c = 0; c < base.size(); ++c) {
    EXPECT_DOUBLE_EQ(scenario.catalog().clusters()[c].capacity, base[c].capacity);
  }
}

TEST(SupplyStressControllerTest, PriceShockScalesPricesAndResetRestores) {
  Scenario scenario = build_scenario();
  StressConfig config;
  config.scenario = StressScenario::kPriceShock;
  config.shock_factor = 3.0;
  const StressProfile profile =
      make_stress_profile(scenario.world(), config, 3600.0);
  ASSERT_EQ(profile.price_shocks.size(), 1u);
  const PriceShockSpec shock = profile.price_shocks[0];

  const double base_cost = scenario.catalog().clusters()[0].bandwidth_cost;
  const double base_price = scenario.catalog().cdns()[0].contract_price;
  SupplyStressController controller{scenario, profile};
  EXPECT_TRUE(controller.apply(0.5 * (shock.start_s + shock.end_s)));
  EXPECT_DOUBLE_EQ(scenario.catalog().clusters()[0].bandwidth_cost,
                   base_cost * 3.0);
  EXPECT_DOUBLE_EQ(scenario.catalog().cdns()[0].contract_price, base_price * 3.0);
  controller.reset();
  EXPECT_DOUBLE_EQ(scenario.catalog().clusters()[0].bandwidth_cost, base_cost);
  EXPECT_DOUBLE_EQ(scenario.catalog().cdns()[0].contract_price, base_price);
}

TEST(SupplyStressControllerTest, CatalogStateIsAPureFunctionOfTime) {
  StressConfig config;
  config.scenario = StressScenario::kPerfectStorm;

  // Controller A replays a whole epoch schedule; controller B (on a fresh
  // scenario) jumps straight to the final time. Identical catalogs — the
  // crash/resume guarantee.
  Scenario replayed = build_scenario();
  Scenario fresh = build_scenario();
  SupplyStressController a{
      replayed, make_stress_profile(replayed.world(), config, 3600.0)};
  SupplyStressController b{fresh,
                           make_stress_profile(fresh.world(), config, 3600.0)};
  for (double t = 150.0; t <= 3450.0; t += 300.0) a.apply(t);
  b.apply(3450.0);
  EXPECT_EQ(a.state_key(), b.state_key());
  const auto clusters_a = replayed.catalog().clusters();
  const auto clusters_b = fresh.catalog().clusters();
  ASSERT_EQ(clusters_a.size(), clusters_b.size());
  for (std::size_t c = 0; c < clusters_a.size(); ++c) {
    EXPECT_DOUBLE_EQ(clusters_a[c].capacity, clusters_b[c].capacity);
    EXPECT_DOUBLE_EQ(clusters_a[c].bandwidth_cost, clusters_b[c].bandwidth_cost);
  }
}

// --- streaming engine: shedding + stress hooks ---------------------------

StreamingResult run_streaming(const Scenario& scenario, StreamingConfig config) {
  TraceStream broker{scenario.broker_trace()};
  TraceStream background{scenario.background_trace()};
  return StreamingTimeline{scenario, config}.run(broker, background);
}

TEST(StreamingOverloadTest, SheddingPreservesConservationPerEpoch) {
  const Scenario scenario = build_scenario(11);
  obs::MetricsRegistry metrics;
  StreamingConfig config;
  config.epoch_s = 600.0;
  config.obs.metrics = &metrics;
  // The 800-session scenario peaks at ~33 midpoint-active broker sessions;
  // a budget of 20 binds in the middle epochs without silencing the early
  // ones.
  config.overload.max_active_sessions = 20;

  const StreamingResult result = run_streaming(scenario, config);
  std::size_t total_shed = 0;
  bool shed_any = false;
  for (const EpochReport& epoch : result.timeline.epochs) {
    EXPECT_LE(epoch.assigned_sessions + epoch.shed_sessions,
              epoch.active_sessions)
        << "epoch " << epoch.epoch;
    EXPECT_LE(epoch.active_sessions - epoch.shed_sessions,
              config.overload.max_active_sessions + 0u)
        << "epoch " << epoch.epoch << " admitted past the budget";
    total_shed += epoch.shed_sessions;
    shed_any |= epoch.shed_sessions > 0;
  }
  EXPECT_TRUE(shed_any);
  EXPECT_EQ(result.shed_sessions, total_shed);
  EXPECT_DOUBLE_EQ(metrics.counter("timeline.overload.shed_sessions").value(),
                   static_cast<double>(total_shed));
}

TEST(StreamingOverloadTest, SheddingIsMonotoneInStressIntensity) {
  // Fixed admission budget; rising flash-crowd factor. The engine must shed
  // monotonically more as the spike intensifies.
  const Scenario scenario = build_scenario(11, 400);
  trace::TraceConfig trace_config;
  trace_config.session_count = 2000;

  std::size_t previous_shed = 0;
  bool first = true;
  for (const double factor : {1.0, 10.0, 50.0}) {
    StressConfig stress_config;
    stress_config.scenario = StressScenario::kFlashCrowd;
    stress_config.spike_factor = factor;
    const StressProfile profile = make_stress_profile(
        scenario.world(), stress_config, trace_config.duration_s);

    core::Rng root{2017};
    core::Rng broker_rng = root.fork("stress-broker");
    core::Rng background_rng = root.fork("stress-background");
    trace::BrokerTraceGenerator::Options broker_options;
    broker_options.modulation = &profile.demand;
    trace::BrokerTraceGenerator broker_generator{
        scenario.world(), trace_config, broker_rng, broker_options};
    trace::TraceConfig background_config = trace_config;
    background_config.session_count = 500;
    trace::BrokerTraceGenerator::Options background_options;
    background_options.broker_controlled = false;
    trace::BrokerTraceGenerator background_generator{
        scenario.world(), background_config, background_rng, background_options};

    StreamingConfig config;
    config.epoch_s = 600.0;
    config.overload.max_active_sessions = 300;
    GeneratorStream broker{broker_generator};
    GeneratorStream background{background_generator};
    const StreamingResult result =
        StreamingTimeline{scenario, config}.run(broker, background);
    if (!first) {
      EXPECT_GE(result.shed_sessions, previous_shed)
          << "factor " << factor << " shed less than a weaker spike";
    }
    first = false;
    previous_shed = result.shed_sessions;
  }
  EXPECT_GT(previous_shed, 0u);  // the 50x spike must actually shed
}

TEST(StreamingStressTest, SupplyShiftsRebuildMenusAndRaiseCostsInWindow) {
  Scenario scenario = build_scenario(11);
  StressConfig stress_config;
  stress_config.scenario = StressScenario::kPriceShock;
  stress_config.shock_factor = 3.0;
  const StressProfile profile =
      make_stress_profile(scenario.world(), stress_config, 3600.0);
  ASSERT_EQ(profile.price_shocks.size(), 1u);
  const PriceShockSpec shock = profile.price_shocks[0];
  SupplyStressController controller{scenario, profile};

  obs::MetricsRegistry metrics;
  StreamingConfig config;
  config.epoch_s = 300.0;
  config.obs.metrics = &metrics;
  config.stress = &controller;
  const StreamingResult result = run_streaming(scenario, config);

  // Enter + exit are two transitions.
  EXPECT_GE(metrics.counter("timeline.stress.supply_shifts").value(), 2.0);
  double inside = 0.0;
  double inside_n = 0.0;
  double outside = 0.0;
  double outside_n = 0.0;
  for (const EpochReport& epoch : result.timeline.epochs) {
    const double mid = epoch.time_s;
    if (epoch.metrics.mean_cost <= 0.0) continue;
    if (mid >= shock.start_s && mid < shock.end_s) {
      inside += epoch.metrics.mean_cost;
      inside_n += 1.0;
    } else {
      outside += epoch.metrics.mean_cost;
      outside_n += 1.0;
    }
  }
  ASSERT_GT(inside_n, 0.0);
  ASSERT_GT(outside_n, 0.0);
  EXPECT_GT(inside / inside_n, 1.5 * (outside / outside_n));
}

TEST(StreamingStressTest, RejectsExternalMenusWhenStressAttached) {
  Scenario scenario = build_scenario(11);
  const StressProfile profile = make_stress_profile(
      scenario.world(),
      [] {
        StressConfig c;
        c.scenario = StressScenario::kBlackout;
        return c;
      }(),
      3600.0);
  SupplyStressController controller{scenario, profile};

  cdn::CandidateMenuCache menus{scenario.catalog(), scenario.mapping(),
                                scenario.world().cities().size(), {}};
  StreamingConfig config;
  config.run.menus = &menus;
  config.stress = &controller;
  EXPECT_THROW((StreamingTimeline{scenario, config}), std::invalid_argument);
}

// --- exchange: admission control + QoS peering ---------------------------

TEST(ShedToBudgetTest, ValidatesAndShedsLowestValueFirst) {
  using broker::ClientGroup;
  const auto group = [](std::uint32_t id, double bitrate, double clients) {
    return ClientGroup{broker::ShareId{id}, geo::CityId{0}, 0, bitrate, clients};
  };

  std::vector<ClientGroup> groups{group(0, 4.5, 10.0), group(1, 0.35, 100.0),
                                  group(2, 1.5, 20.0)};
  // total = 45 + 35 + 30 = 110 Mbps.
  auto invalid = market::shed_to_budget(groups, -1.0);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.error().code, core::Errc::kInvalidArgument);
  auto nan = market::shed_to_budget(
      groups, std::numeric_limits<double>::quiet_NaN());
  ASSERT_FALSE(nan.ok());

  auto under = market::shed_to_budget(groups, 200.0);
  ASSERT_TRUE(under.ok());
  EXPECT_DOUBLE_EQ(under.value().shed_mbps, 0.0);
  ASSERT_EQ(groups.size(), 3u);

  // Budget 60: drop all of group 1 (35 Mbps, lowest bitrate), then shave
  // group 2 (1.5 Mbps) down by 15 Mbps; group 0 untouched.
  auto trimmed = market::shed_to_budget(groups, 60.0);
  ASSERT_TRUE(trimmed.ok());
  EXPECT_DOUBLE_EQ(trimmed.value().shed_mbps, 50.0);
  EXPECT_EQ(trimmed.value().groups_dropped, 1u);
  ASSERT_EQ(groups.size(), 2u);
  double total = 0.0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].id.value(), i);  // ids renumbered densely
    total += groups[i].client_count * groups[i].bitrate_mbps;
  }
  EXPECT_NEAR(total, 60.0, 1e-9);

  // Budget 0 sheds everything.
  auto drained = market::shed_to_budget(groups, 0.0);
  ASSERT_TRUE(drained.ok());
  EXPECT_NEAR(drained.value().shed_mbps, 60.0, 1e-9);
  EXPECT_TRUE(groups.empty());
}

TEST(ExchangeOverloadTest, AdmissionControlCapsRoundDemand) {
  const Scenario scenario = build_scenario(11);
  obs::MetricsRegistry metrics;
  market::ExchangeConfig config;
  config.overload.demand_budget_mbps = 500.0;
  config.obs.metrics = &metrics;
  market::VdxExchange exchange{scenario, config};

  const market::RoundReport report = exchange.run_round();
  EXPECT_GT(report.shed_mbps, 0.0);
  EXPECT_GT(report.shed_clients, 0.0);
  EXPECT_DOUBLE_EQ(metrics.counter("exchange.shed.rounds").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("exchange.shed.mbps").value(),
                   report.shed_mbps);
  // The round that actually ran saw at most the budget.
  double admitted = 0.0;
  for (const double awarded : report.awarded_mbps) admitted += awarded;
  EXPECT_LE(admitted, config.overload.demand_budget_mbps + 1e-6);
}

TEST(ExchangeOverloadTest, WithoutBudgetNothingSheds) {
  const Scenario scenario = build_scenario(11);
  market::VdxExchange exchange{scenario, {}};
  const market::RoundReport report = exchange.run_round();
  EXPECT_DOUBLE_EQ(report.shed_mbps, 0.0);
  EXPECT_DOUBLE_EQ(report.shed_clients, 0.0);
}

TEST(ExchangeOverloadTest, QosPeeringRehomesFromSaturatedClustersOrRejects) {
  Scenario scenario = build_scenario(11);
  obs::MetricsRegistry metrics;
  market::ExchangeConfig config;
  config.overload.saturation_threshold = 0.9;
  config.obs.metrics = &metrics;
  market::VdxExchange exchange{scenario, config};
  (void)exchange.run_round();

  // Healthy catalog: a delivery succeeds and lands on a live cluster.
  const geo::CityId city{0};
  auto first = exchange.deliver(1, city, 1.5);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_GT(first.value().delivery.delivered_mbps, 0.0);

  // Regional blackout: zero every cluster's capacity. With peering on,
  // every cluster is saturated/dark, so the session must be rejected with
  // the typed overload error instead of landing on a dead cluster.
  cdn::CdnCatalog& catalog = scenario.catalog_mutable();
  for (std::size_t c = 0; c < catalog.clusters().size(); ++c) {
    catalog.cluster_mutable(cdn::ClusterId{static_cast<std::uint32_t>(c)})
        .capacity = 0.0;
  }
  auto rejected = exchange.deliver(2, city, 1.5);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, core::Errc::kOverloaded);
  EXPECT_GE(metrics.counter("exchange.peering.rejected").value(), 1.0);
}

}  // namespace
}  // namespace vdx::sim
