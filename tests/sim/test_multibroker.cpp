#include "sim/multibroker.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace vdx::sim {
namespace {

class MultiBrokerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 6000;
    config.seed = 91;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

 private:
  static Scenario* scenario_;
};

Scenario* MultiBrokerTest::scenario_ = nullptr;

TEST_F(MultiBrokerTest, PartitionCoversAllSessions) {
  MultiBrokerConfig config;
  config.broker_count = 3;
  const MultiBrokerResult result = run_multibroker(scenario(), config);
  const double total = std::accumulate(result.broker_clients.begin(),
                                       result.broker_clients.end(), 0.0);
  EXPECT_NEAR(total, 6000.0, 1e-9);
  for (const double clients : result.broker_clients) EXPECT_GT(clients, 0.0);
}

TEST_F(MultiBrokerTest, BestLookupOverbookingGrowsWithBrokers) {
  double previous_congestion = -1.0;
  for (const std::size_t brokers : {1u, 2u, 4u}) {
    MultiBrokerConfig config;
    config.design = Design::kBestLookup;
    config.broker_count = brokers;
    const MultiBrokerResult result = run_multibroker(scenario(), config);
    if (previous_congestion >= 0.0) {
      // The paper's §4.2 argument: more independent brokers filling the same
      // announced capacities -> more overbooking (monotone up to noise).
      EXPECT_GE(result.metrics.congested_fraction, previous_congestion - 0.03)
          << brokers << " brokers";
    }
    previous_congestion = result.metrics.congested_fraction;
    EXPECT_GT(result.overbooked_clusters, 0u);
  }
}

TEST_F(MultiBrokerTest, MarketplaceNeverOverbooksRegardlessOfBrokers) {
  for (const std::size_t brokers : {1u, 2u, 4u}) {
    MultiBrokerConfig config;
    config.design = Design::kMarketplace;
    config.broker_count = brokers;
    const MultiBrokerResult result = run_multibroker(scenario(), config);
    EXPECT_LT(result.metrics.congested_fraction, 0.01) << brokers << " brokers";
    EXPECT_EQ(result.overbooked_clusters, 0u) << brokers << " brokers";
  }
}

TEST_F(MultiBrokerTest, MarketplaceWorseThanBestLookupOnCongestionNever) {
  MultiBrokerConfig best_lookup;
  best_lookup.design = Design::kBestLookup;
  best_lookup.broker_count = 2;
  MultiBrokerConfig marketplace;
  marketplace.design = Design::kMarketplace;
  marketplace.broker_count = 2;
  const MultiBrokerResult bl = run_multibroker(scenario(), best_lookup);
  const MultiBrokerResult mkt = run_multibroker(scenario(), marketplace);
  EXPECT_LT(mkt.metrics.congested_fraction, bl.metrics.congested_fraction);
}

TEST_F(MultiBrokerTest, RejectsBadConfig) {
  MultiBrokerConfig config;
  config.broker_count = 0;
  EXPECT_THROW((void)run_multibroker(scenario(), config), std::invalid_argument);
  config.broker_count = 2;
  config.design = Design::kBrokered;
  EXPECT_THROW((void)run_multibroker(scenario(), config), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::sim
