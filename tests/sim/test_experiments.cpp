// Integration tests: every experiment driver must reproduce the *shape* of
// its paper artifact (who wins, rough factors, crossovers) — the acceptance
// criteria recorded in EXPERIMENTS.md.
#include "sim/experiments.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace vdx::sim {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.trace.session_count = 8000;
    config.seed = 2017;
    scenario_ = new Scenario(Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const Scenario& scenario() { return *scenario_; }

  static const Table3Row& row_of(const std::vector<Table3Row>& rows, Design d) {
    const auto it = std::find_if(rows.begin(), rows.end(),
                                 [d](const Table3Row& r) { return r.design == d; });
    EXPECT_NE(it, rows.end());
    return *it;
  }

 private:
  static Scenario* scenario_;
};

Scenario* ExperimentTest::scenario_ = nullptr;

TEST_F(ExperimentTest, Fig3CountryCostSpreadIsLarge) {
  const auto rows = fig3_country_costs(scenario());
  ASSERT_EQ(rows.size(), 19u);
  double lo = 1e18;
  double hi = 0.0;
  for (const Fig3Row& row : rows) {
    lo = std::min(lo, row.cost_vs_average);
    hi = std::max(hi, row.cost_vs_average);
  }
  // Paper Fig. 3: some countries cost up to ~4x the average; ~30x spread
  // between extremes.
  EXPECT_GT(hi, 2.5);
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi / lo, 15.0);
}

TEST_F(ExperimentTest, Fig4MovedFractionBand) {
  const auto series = fig4_moved_series(scenario());
  ASSERT_FALSE(series.empty());
  std::vector<double> steady(series.begin() + series.size() / 6, series.end());
  double sum = 0.0;
  for (const double v : steady) sum += v;
  const double avg = sum / static_cast<double>(steady.size());
  EXPECT_NEAR(avg, 0.40, 0.12);  // paper: ~40% on average
}

TEST_F(ExperimentTest, Fig5CdnADeclinesWithCitySize) {
  const Fig5Result result = fig5_city_usage(scenario());
  const auto& fit_a = result.fits[static_cast<std::size_t>(trace::TraceCdn::kCdnA)];
  ASSERT_TRUE(fit_a.has_value());
  EXPECT_LT(fit_a->slope, 0.0);
}

TEST_F(ExperimentTest, Fig7HasWideCountryVariation) {
  const auto usage = fig7_country_usage(scenario());
  ASSERT_GT(usage.size(), 3u);
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& u : usage) {
    lo = std::min(lo, u.share[0]);
    hi = std::max(hi, u.share[0]);
  }
  EXPECT_GT(hi - lo, 0.25);
}

TEST_F(ExperimentTest, Table1LadderInPaperBallpark) {
  const auto stats = table1_alternatives(scenario());
  ASSERT_EQ(stats.fraction_with_at_least.size(), 4u);
  // Paper: 77.8% / 64.5% / 53.7% / 43.8%. Accept the ballpark.
  EXPECT_NEAR(stats.fraction_with_at_least[0], 0.778, 0.15);
  EXPECT_NEAR(stats.fraction_with_at_least[3], 0.438, 0.15);
  // Monotone ladder.
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_LE(stats.fraction_with_at_least[k], stats.fraction_with_at_least[k - 1]);
  }
}

TEST_F(ExperimentTest, Table3ReproducesPaperShape) {
  const auto rows = table3_design_comparison(scenario());
  ASSERT_EQ(rows.size(), 8u);
  const auto& brokered = row_of(rows, Design::kBrokered).metrics;
  const auto& mc100 = row_of(rows, Design::kMulticluster100).metrics;
  const auto& marketplace = row_of(rows, Design::kMarketplace).metrics;
  const auto& best_lookup = row_of(rows, Design::kBestLookup).metrics;
  const auto& omniscient = row_of(rows, Design::kOmniscient).metrics;

  // Brokered: no congestion, but worst performance and distance.
  EXPECT_LT(brokered.congested_fraction, 0.02);
  EXPECT_GT(brokered.median_score, marketplace.median_score);
  EXPECT_GT(brokered.median_distance_miles, marketplace.median_distance_miles);

  // Multicluster: better performance than Brokered, with overloaded
  // clusters, and no delivery-cost saving relative to the cost-aware
  // designs (it optimizes performance blind to cluster costs).
  EXPECT_LT(mc100.median_score, brokered.median_score);
  EXPECT_GT(mc100.median_cost, marketplace.median_cost);
  EXPECT_GT(mc100.congested_fraction, 0.05);

  // Marketplace: cheaper AND better-performing than Brokered, zero
  // congestion (the paper's headline row).
  EXPECT_LT(marketplace.median_cost, brokered.median_cost);
  EXPECT_LT(marketplace.median_score, brokered.median_score);
  EXPECT_LT(marketplace.congested_fraction, 0.01);

  // BestLookup performs like Marketplace but overloads clusters (blind to
  // non-broker traffic).
  EXPECT_GT(best_lookup.congested_fraction, 0.05);
  EXPECT_LT(std::abs(best_lookup.median_score - marketplace.median_score),
            0.25 * marketplace.median_score);

  // Omniscient: at least as good as Marketplace on cost, no congestion.
  EXPECT_LE(omniscient.median_cost, marketplace.median_cost * 1.02);
  EXPECT_LT(omniscient.congested_fraction, 0.01);
}

TEST_F(ExperimentTest, SettlementBrokeredLosersBecomeVdxWinners) {
  const SettlementComparison cmp = settlement_comparison(scenario());

  // Fig. 10: under Brokered some CDNs have price-to-cost < 1.
  bool any_below_one = false;
  for (const CdnAccount& account : cmp.brokered_cdn) {
    if (account.traffic_mbps > 0.0 && account.price_to_cost < 1.0) {
      any_below_one = true;
    }
  }
  EXPECT_TRUE(any_below_one);

  // Fig. 12: under VDX every CDN with traffic profits.
  for (const CdnAccount& account : cmp.vdx_cdn) {
    if (account.traffic_mbps > 0.0) {
      EXPECT_GT(account.profit.micros(), 0) << "CDN " << account.cdn.value();
    }
  }

  // Fig. 15: per-country — Brokered loses money somewhere, VDX nowhere.
  bool any_country_loss = false;
  for (const CountryAccount& account : cmp.brokered_country) {
    if (account.profit.micros() < 0) any_country_loss = true;
  }
  EXPECT_TRUE(any_country_loss);
  for (const CountryAccount& account : cmp.vdx_country) {
    EXPECT_GE(account.profit.micros(), -1);
  }
}

TEST_F(ExperimentTest, Fig17VdxDominatesBrokeredSomewhereOnTheCurve) {
  const double weights[] = {0.25, 1.0, 4.0, 16.0};
  const Design designs[] = {Design::kBrokered, Design::kMarketplace};
  const auto points = fig17_tradeoff(scenario(), weights, designs);
  ASSERT_EQ(points.size(), 8u);

  // The paper's knee claim, qualitatively: at some shared operating point
  // (same wc), Marketplace beats Brokered on BOTH cost and distance.
  bool dominating_point = false;
  for (const Fig17Point& vdx : points) {
    if (vdx.design != Design::kMarketplace) continue;
    for (const Fig17Point& brokered : points) {
      if (brokered.design != Design::kBrokered ||
          brokered.cost_weight != vdx.cost_weight) {
        continue;
      }
      if (vdx.median_cost < brokered.median_cost &&
          vdx.median_distance_miles < brokered.median_distance_miles) {
        dominating_point = true;
      }
    }
  }
  EXPECT_TRUE(dominating_point);
}

TEST_F(ExperimentTest, Fig17CostWeightMovesCostDown) {
  const double weights[] = {0.25, 16.0};
  const Design designs[] = {Design::kMarketplace};
  const auto points = fig17_tradeoff(scenario(), weights, designs);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].median_cost, points[1].median_cost);       // wc up -> cost down
  EXPECT_LE(points[0].median_distance_miles,
            points[1].median_distance_miles + 1e-9);             // ... distance up
}

TEST_F(ExperimentTest, Fig18SecondBidGivesLargestScoreDrop) {
  const std::size_t bid_counts[] = {1, 2, 4, 16, 64};
  const auto points = fig18_bid_count(scenario(), bid_counts);
  ASSERT_EQ(points.size(), 5u);
  // Score improves (drops) with more bids...
  EXPECT_GT(points[0].mean_score, points.back().mean_score);
  // ...and adding the second bid yields the largest *per-added-bid* score
  // improvement (paper: "the largest increase in performance is just
  // achieved by adding the second bid").
  const double first_drop = points[0].mean_score - points[1].mean_score;
  EXPECT_GT(first_drop, 0.0);
  for (std::size_t i = 1; i + 1 < points.size(); ++i) {
    const double added_bids =
        static_cast<double>(bid_counts[i + 1] - bid_counts[i]);
    const double per_bid_drop =
        (points[i].mean_score - points[i + 1].mean_score) / added_bids;
    EXPECT_GE(first_drop, per_bid_drop - 1e-9);
  }
}

}  // namespace
}  // namespace vdx::sim
