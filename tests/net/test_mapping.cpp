#include "net/mapping.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace vdx::net {
namespace {

class MappingTest : public ::testing::Test {
 protected:
  MappingTest()
      : world_(geo::World::generate(world_config())), model_(PathModelConfig{}, 5) {
    for (const auto& city : world_.cities()) {
      vantages_.push_back(Vantage{city.id, city.id.value()});
    }
  }

  static geo::WorldConfig world_config() {
    geo::WorldConfig config;
    config.country_count = 6;
    config.city_count = 20;
    config.seed = 42;
    return config;
  }

  geo::World world_;
  PathModel model_;
  std::vector<Vantage> vantages_;
};

TEST_F(MappingTest, FullyMeasuredTableMatchesModel) {
  core::Rng rng{1};
  MappingConfig config;
  config.measured_fraction = 1.0;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);
  for (const auto& city : world_.cities()) {
    for (std::size_t v = 0; v < vantages_.size(); ++v) {
      EXPECT_TRUE(table.measured(city.id, v));
      const double expected = model_.score(
          city.location, world_.city(vantages_[v].city).location, vantages_[v].salt);
      EXPECT_DOUBLE_EQ(table.score(city.id, v), expected);
    }
  }
}

TEST_F(MappingTest, MissingPairsAreExtrapolatedPositive) {
  core::Rng rng{2};
  MappingConfig config;
  config.measured_fraction = 0.5;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);
  std::size_t unmeasured = 0;
  for (const auto& city : world_.cities()) {
    for (std::size_t v = 0; v < vantages_.size(); ++v) {
      if (!table.measured(city.id, v)) {
        ++unmeasured;
        EXPECT_GT(table.score(city.id, v), 0.0);
      }
    }
  }
  EXPECT_GT(unmeasured, 0u);
  ASSERT_TRUE(table.extrapolation_fit().has_value());
  // Scores grow with distance, so the fit slope must be positive.
  EXPECT_GT(table.extrapolation_fit()->slope, 0.0);
}

TEST_F(MappingTest, SimilarVantagesSortedBestFirstAndWithinCutoff) {
  core::Rng rng{3};
  MappingConfig config;
  config.measured_fraction = 1.0;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);

  std::vector<std::size_t> subset(vantages_.size());
  std::iota(subset.begin(), subset.end(), std::size_t{0});
  const geo::CityId city = world_.cities().front().id;

  const auto similar = table.similar_vantages(city, subset, 0.25);
  ASSERT_FALSE(similar.empty());
  const double best = table.score(city, subset[similar.front()]);
  double previous = 0.0;
  for (const std::size_t i : similar) {
    const double s = table.score(city, subset[i]);
    EXPECT_GE(s, previous);
    EXPECT_LE(s, best * 1.25 + 1e-9);
    previous = s;
  }
}

TEST_F(MappingTest, SimilarVantagesEmptySubset) {
  core::Rng rng{4};
  MappingConfig config;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);
  EXPECT_TRUE(
      table.similar_vantages(world_.cities().front().id, {}, 0.25).empty());
}

TEST_F(MappingTest, AlternativeStatsLadderIsMonotone) {
  core::Rng rng{5};
  MappingConfig config;
  config.measured_fraction = 1.0;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);

  std::vector<std::size_t> subset(vantages_.size());
  std::iota(subset.begin(), subset.end(), std::size_t{0});
  const AlternativeStats stats = table.alternative_stats(world_, subset, 0.25);
  ASSERT_EQ(stats.fraction_with_at_least.size(), 4u);
  for (std::size_t k = 1; k < stats.fraction_with_at_least.size(); ++k) {
    EXPECT_LE(stats.fraction_with_at_least[k], stats.fraction_with_at_least[k - 1]);
  }
  for (const double f : stats.fraction_with_at_least) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_GE(stats.mean_similar_clusters, 1.0);
}

TEST_F(MappingTest, WiderToleranceFindsMoreAlternatives) {
  core::Rng rng{6};
  MappingConfig config;
  config.measured_fraction = 1.0;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);
  std::vector<std::size_t> subset(vantages_.size());
  std::iota(subset.begin(), subset.end(), std::size_t{0});
  const auto narrow = table.alternative_stats(world_, subset, 0.05);
  const auto wide = table.alternative_stats(world_, subset, 0.50);
  EXPECT_GE(wide.fraction_with_at_least[0], narrow.fraction_with_at_least[0]);
  EXPECT_GE(wide.mean_similar_clusters, narrow.mean_similar_clusters);
}

TEST_F(MappingTest, RejectsBadInputs) {
  core::Rng rng{7};
  MappingConfig config;
  EXPECT_THROW(MappingTable::measure(world_, {}, model_, config, rng),
               std::invalid_argument);
  config.measured_fraction = 0.0;
  EXPECT_THROW(MappingTable::measure(world_, vantages_, model_, config, rng),
               std::invalid_argument);

  config.measured_fraction = 1.0;
  const MappingTable table = MappingTable::measure(world_, vantages_, model_, config, rng);
  EXPECT_THROW((void)table.score(geo::CityId{999}, 0), std::out_of_range);
  EXPECT_THROW((void)table.score(world_.cities().front().id, 9999), std::out_of_range);
}

}  // namespace
}  // namespace vdx::net
