#include "net/performance.hpp"

#include <gtest/gtest.h>

namespace vdx::net {
namespace {

const geo::GeoPoint kClient{40.0, -74.0};
const geo::GeoPoint kNear{41.0, -73.0};
const geo::GeoPoint kFar{-33.0, 151.0};

TEST(PathModel, DeterministicForSameInputs) {
  const PathModel model;
  const PathQuality a = model.quality(kClient, kNear, 1);
  const PathQuality b = model.quality(kClient, kNear, 1);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  EXPECT_DOUBLE_EQ(a.loss_rate, b.loss_rate);
}

TEST(PathModel, SaltChangesJitter) {
  const PathModel model;
  const PathQuality a = model.quality(kClient, kNear, 1);
  const PathQuality b = model.quality(kClient, kNear, 2);
  EXPECT_NE(a.latency_ms, b.latency_ms);
}

TEST(PathModel, SeedChangesJitter) {
  const PathModel a{{}, 7};
  const PathModel b{{}, 8};
  EXPECT_NE(a.quality(kClient, kNear, 1).latency_ms,
            b.quality(kClient, kNear, 1).latency_ms);
}

TEST(PathModel, FartherIsSlowerOnAverage) {
  const PathModel model;
  // Average over many salts to wash out jitter.
  double near_total = 0.0;
  double far_total = 0.0;
  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    near_total += model.quality(kClient, kNear, salt).latency_ms;
    far_total += model.quality(kClient, kFar, salt).latency_ms;
  }
  EXPECT_GT(far_total, near_total * 2.0);
}

TEST(PathModel, LossWithinBounds) {
  const PathModel model;
  for (std::uint64_t salt = 0; salt < 256; ++salt) {
    const PathQuality q = model.quality(kClient, kFar, salt);
    EXPECT_GE(q.loss_rate, 0.0);
    EXPECT_LE(q.loss_rate, model.config().max_loss);
  }
}

TEST(PathModel, ScoreMonotoneInLatencyAndLoss) {
  const PathModel model;
  const PathQuality base{50.0, 0.01};
  EXPECT_GT(model.score(PathQuality{60.0, 0.01}), model.score(base));
  EXPECT_GT(model.score(PathQuality{50.0, 0.02}), model.score(base));
}

TEST(PathModel, ScorePositive) {
  const PathModel model;
  EXPECT_GT(model.score(PathQuality{0.1, 0.0}), 0.0);
  EXPECT_GT(model.score(kClient, kNear, 3), 0.0);
}

TEST(PathModel, RejectsBadConfig) {
  PathModelConfig config;
  config.rtt_ms_per_km = 0.0;
  EXPECT_THROW((void)PathModel{config}, std::invalid_argument);
  config = {};
  config.max_loss = 0.0;
  EXPECT_THROW((void)PathModel{config}, std::invalid_argument);
}

}  // namespace
}  // namespace vdx::net
