#include "net/fusion.hpp"

#include <gtest/gtest.h>

namespace vdx::net {
namespace {

TEST(FuseEstimates, NoBrokerSampleReturnsCdnEstimate) {
  EXPECT_DOUBLE_EQ(fuse_estimates(42.0, 0.35, std::nullopt, 0.15), 42.0);
}

TEST(FuseEstimates, FusedLandsBetweenTheEstimates) {
  const double fused = fuse_estimates(40.0, 0.35, 20.0, 0.15);
  EXPECT_GT(fused, 20.0);
  EXPECT_LT(fused, 40.0);
}

TEST(FuseEstimates, LeansTowardTheLessNoisyVantage) {
  // Broker sigma much smaller -> fused should sit near the broker estimate.
  const double fused = fuse_estimates(40.0, 0.5, 20.0, 0.05);
  EXPECT_LT(fused, 22.0);
  // Symmetric sigmas -> geometric mean.
  const double balanced = fuse_estimates(40.0, 0.3, 10.0, 0.3);
  EXPECT_NEAR(balanced, 20.0, 1e-9);
}

TEST(FuseEstimates, RejectsNonPositive) {
  EXPECT_THROW((void)fuse_estimates(0.0, 0.3, std::nullopt, 0.3),
               std::invalid_argument);
  EXPECT_THROW((void)fuse_estimates(1.0, 0.3, 0.0, 0.3), std::invalid_argument);
}

class FusionTest : public ::testing::Test {
 protected:
  FusionTest() : world_(geo::World::generate({})) {
    std::vector<Vantage> vantages;
    for (const geo::City& city : world_.cities()) {
      vantages.push_back(Vantage{city.id, city.id.value()});
    }
    PathModel model{{}, 3};
    core::Rng rng{4};
    truth_ = std::make_unique<MappingTable>(
        MappingTable::measure(world_, vantages, model, {}, rng));
  }

  geo::World world_;
  std::unique_ptr<MappingTable> truth_;
};

TEST_F(FusionTest, FusionBeatsCdnOnlyEstimates) {
  core::Rng rng{11};
  const FusionReport report = evaluate_fusion(world_, *truth_, {}, rng);
  EXPECT_GT(report.pairs, 0u);
  EXPECT_GT(report.broker_covered_pairs, 0u);
  // §3.3's claim quantified: the fused map is strictly more accurate.
  EXPECT_LT(report.fused_error, report.cdn_only_error);
  // On covered pairs the broker's in-connection samples are sharper.
  EXPECT_LT(report.broker_only_error, report.cdn_only_error);
  EXPECT_GT(report.improved_fraction, 0.15);  // at least the covered share
}

TEST_F(FusionTest, MoreBrokerCoverageMoreAccuracy) {
  VantageNoise sparse;
  sparse.broker_coverage = 0.1;
  VantageNoise dense;
  dense.broker_coverage = 0.9;
  core::Rng rng_a{21};
  core::Rng rng_b{21};
  const FusionReport low = evaluate_fusion(world_, *truth_, sparse, rng_a);
  const FusionReport high = evaluate_fusion(world_, *truth_, dense, rng_b);
  EXPECT_LT(high.fused_error, low.fused_error);
  EXPECT_GT(high.broker_covered_pairs, low.broker_covered_pairs);
}

TEST_F(FusionTest, ZeroCoverageDegradesToCdnOnly) {
  VantageNoise none;
  none.broker_coverage = 0.0;
  core::Rng rng{31};
  const FusionReport report = evaluate_fusion(world_, *truth_, none, rng);
  EXPECT_EQ(report.broker_covered_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.fused_error, report.cdn_only_error);
}

TEST_F(FusionTest, RejectsBadCoverage) {
  VantageNoise bad;
  bad.broker_coverage = 1.5;
  core::Rng rng{41};
  EXPECT_THROW((void)evaluate_fusion(world_, *truth_, bad, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdx::net
