#include "proto/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vdx::proto {
namespace {

std::vector<std::uint8_t> sample_frame(std::size_t size = 32) {
  std::vector<std::uint8_t> frame(size);
  for (std::size_t i = 0; i < size; ++i) frame[i] = static_cast<std::uint8_t>(i * 7);
  return frame;
}

TEST(FaultInjector, EmptyProfileIsPerfectTransport) {
  FaultInjector injector;
  EXPECT_FALSE(injector.profile().any());
  const auto frame = sample_frame();
  for (int i = 0; i < 100; ++i) {
    const auto copies = injector.apply(0, frame);
    ASSERT_EQ(copies.size(), 1u);
    EXPECT_EQ(copies[0].bytes, frame);
    EXPECT_EQ(copies[0].delay_ticks, 0u);
    EXPECT_FALSE(copies[0].mutated);
  }
  EXPECT_EQ(injector.counters().frames, 100u);
  EXPECT_EQ(injector.counters().delivered, 100u);
  EXPECT_EQ(injector.counters().dropped, 0u);
}

TEST(FaultInjector, SameSeedReplaysExactly) {
  FaultProfile profile;
  profile.drop_rate = 0.2;
  profile.duplicate_rate = 0.1;
  profile.delay_rate = 0.2;
  profile.truncate_rate = 0.1;
  profile.corrupt_rate = 0.1;
  profile.seed = 1234;

  FaultInjector a{profile};
  FaultInjector b{profile};
  const auto frame = sample_frame();
  for (int i = 0; i < 2000; ++i) {
    const std::size_t link = static_cast<std::size_t>(i) % 3;
    const auto ca = a.apply(link, frame);
    const auto cb = b.apply(link, frame);
    ASSERT_EQ(ca.size(), cb.size()) << "frame " << i;
    for (std::size_t c = 0; c < ca.size(); ++c) {
      EXPECT_EQ(ca[c].bytes, cb[c].bytes);
      EXPECT_EQ(ca[c].delay_ticks, cb[c].delay_ticks);
      EXPECT_EQ(ca[c].mutated, cb[c].mutated);
    }
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_EQ(a.counters().corrupted, b.counters().corrupted);
}

TEST(FaultInjector, LinksAreIndependentStreams) {
  FaultProfile profile;
  profile.drop_rate = 0.3;
  profile.corrupt_rate = 0.2;
  profile.seed = 99;

  // Reference: link 1 alone.
  FaultInjector solo{profile};
  std::vector<std::size_t> solo_sizes;
  const auto frame = sample_frame();
  for (int i = 0; i < 500; ++i) solo_sizes.push_back(solo.apply(1, frame).size());

  // Same seed, but link 0 carries varying extra traffic interleaved.
  FaultInjector busy{profile};
  std::vector<std::size_t> busy_sizes;
  for (int i = 0; i < 500; ++i) {
    for (int j = 0; j < i % 4; ++j) (void)busy.apply(0, frame);
    busy_sizes.push_back(busy.apply(1, frame).size());
  }
  EXPECT_EQ(solo_sizes, busy_sizes);
}

TEST(FaultInjector, DropRateIsRespectedStatistically) {
  FaultProfile profile;
  profile.drop_rate = 0.25;
  profile.seed = 7;
  FaultInjector injector{profile};
  const auto frame = sample_frame();
  const int n = 20'000;
  for (int i = 0; i < n; ++i) (void)injector.apply(0, frame);
  const double observed =
      static_cast<double>(injector.counters().dropped) / static_cast<double>(n);
  EXPECT_NEAR(observed, 0.25, 0.02);
  EXPECT_EQ(injector.counters().delivered + injector.counters().dropped,
            static_cast<std::size_t>(n));
}

TEST(FaultInjector, FullDropDeliversNothing) {
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector injector{profile};
  const auto frame = sample_frame();
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(injector.apply(3, frame).empty());
  EXPECT_EQ(injector.counters().dropped, 50u);
  EXPECT_EQ(injector.counters().delivered, 0u);
}

TEST(FaultInjector, MutationsAreFlaggedAndShaped) {
  FaultProfile truncating;
  truncating.truncate_rate = 1.0;
  FaultInjector trunc{truncating};
  const auto frame = sample_frame(40);
  for (int i = 0; i < 200; ++i) {
    const auto copies = trunc.apply(0, frame);
    ASSERT_EQ(copies.size(), 1u);
    EXPECT_TRUE(copies[0].mutated);
    EXPECT_LT(copies[0].bytes.size(), frame.size());
  }
  EXPECT_EQ(trunc.counters().truncated, 200u);

  FaultProfile corrupting;
  corrupting.corrupt_rate = 1.0;
  FaultInjector corrupt{corrupting};
  int changed = 0;
  for (int i = 0; i < 200; ++i) {
    const auto copies = corrupt.apply(0, frame);
    ASSERT_EQ(copies.size(), 1u);
    EXPECT_TRUE(copies[0].mutated);
    ASSERT_EQ(copies[0].bytes.size(), frame.size());  // same length, flipped bits
    if (copies[0].bytes != frame) ++changed;
  }
  // A pair of flips can land on the same bit and cancel; nearly all trials
  // must still differ.
  EXPECT_GE(changed, 190);
  EXPECT_EQ(corrupt.counters().corrupted, 200u);
}

TEST(FaultInjector, DuplicatesAndDelaysAreBounded) {
  FaultProfile profile;
  profile.duplicate_rate = 1.0;
  profile.delay_rate = 1.0;
  profile.max_delay_ticks = 3;
  FaultInjector injector{profile};
  const auto frame = sample_frame();
  for (int i = 0; i < 100; ++i) {
    const auto copies = injector.apply(0, frame);
    ASSERT_EQ(copies.size(), 2u);
    for (const FaultedFrame& copy : copies) {
      EXPECT_GE(copy.delay_ticks, 1u);
      EXPECT_LE(copy.delay_ticks, 3u);
    }
  }
  EXPECT_EQ(injector.counters().duplicated, 100u);
  EXPECT_EQ(injector.counters().delivered, 200u);
}

TEST(FaultInjector, BurstStateAmplifiesLoss) {
  // Force the link into the bad state and keep it there: burst losses at the
  // amplified rate.
  FaultProfile profile;
  profile.drop_rate = 0.2;
  profile.burst_enter = 1.0;
  profile.burst_exit = 0.0;
  profile.burst_multiplier = 5.0;  // 0.2 * 5 = certain loss while bursting
  profile.seed = 5;
  FaultInjector injector{profile};
  const auto frame = sample_frame();
  (void)injector.apply(0, frame);  // enters the bad state
  EXPECT_TRUE(injector.in_burst(0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(injector.apply(0, frame).empty());
}

TEST(FaultCounters, Accumulate) {
  FaultCounters a{10, 8, 2, 1, 0, 3, 4};
  const FaultCounters b{1, 1, 0, 0, 5, 0, 0};
  a += b;
  EXPECT_EQ(a.frames, 11u);
  EXPECT_EQ(a.delivered, 9u);
  EXPECT_EQ(a.dropped, 2u);
  EXPECT_EQ(a.duplicated, 1u);
  EXPECT_EQ(a.delayed, 5u);
  EXPECT_EQ(a.truncated, 3u);
  EXPECT_EQ(a.corrupted, 4u);
}

}  // namespace
}  // namespace vdx::proto
