#include "proto/messages.hpp"

#include <gtest/gtest.h>

namespace vdx::proto {
namespace {

ShareMessage sample_share() {
  return ShareMessage{42, 7, 12345, 99, 2.5, 120};
}

BidMessage sample_bid() {
  return BidMessage{17, 42, 23.5, 1500.0, 1.75, 3};
}

AcceptMessage sample_accept() {
  return AcceptMessage{17, 42, 23.5, 1500.0, 1.75, 3, 600.0};
}

TEST(Messages, ShareRoundTrip) {
  const Message original = sample_share();
  const Message decoded = decode(encode(original));
  EXPECT_EQ(std::get<ShareMessage>(decoded), sample_share());
}

TEST(Messages, BidRoundTrip) {
  const Message decoded = decode(encode(Message{sample_bid()}));
  EXPECT_EQ(std::get<BidMessage>(decoded), sample_bid());
}

TEST(Messages, AcceptRoundTrip) {
  const Message decoded = decode(encode(Message{sample_accept()}));
  EXPECT_EQ(std::get<AcceptMessage>(decoded), sample_accept());
}

TEST(Messages, DeliveryProtocolRoundTrips) {
  const QueryMessage query{5, 9, 3.5};
  EXPECT_EQ(std::get<QueryMessage>(decode(encode(Message{query}))), query);
  const ResultMessage result{5, 2, 17};
  EXPECT_EQ(std::get<ResultMessage>(decode(encode(Message{result}))), result);
  const RequestMessage request{5, 17, 99};
  EXPECT_EQ(std::get<RequestMessage>(decode(encode(Message{request}))), request);
  const DeliveryMessage delivery{5, 17, 3.47};
  EXPECT_EQ(std::get<DeliveryMessage>(decode(encode(Message{delivery}))), delivery);
}

TEST(Messages, TypeOfMatchesVariant) {
  EXPECT_EQ(type_of(Message{sample_share()}), MessageType::kShare);
  EXPECT_EQ(type_of(Message{sample_bid()}), MessageType::kBid);
  EXPECT_EQ(type_of(Message{sample_accept()}), MessageType::kAccept);
  EXPECT_EQ(type_of(Message{QueryMessage{}}), MessageType::kQuery);
  EXPECT_EQ(type_of(Message{ResultMessage{}}), MessageType::kResult);
  EXPECT_EQ(type_of(Message{RequestMessage{}}), MessageType::kRequest);
  EXPECT_EQ(type_of(Message{DeliveryMessage{}}), MessageType::kDelivery);
}

TEST(Messages, ConsumedReportsEnvelopeSize) {
  const auto frame = encode(Message{sample_bid()});
  std::size_t consumed = 0;
  (void)decode(frame, &consumed);
  EXPECT_EQ(consumed, frame.size());
}

TEST(Messages, DecodeStreamSplitsFrames) {
  auto bytes = encode(Message{sample_share()});
  const auto second = encode(Message{sample_bid()});
  const auto third = encode(Message{sample_accept()});
  bytes.insert(bytes.end(), second.begin(), second.end());
  bytes.insert(bytes.end(), third.begin(), third.end());

  const auto messages = decode_stream(bytes);
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(type_of(messages[0]), MessageType::kShare);
  EXPECT_EQ(type_of(messages[1]), MessageType::kBid);
  EXPECT_EQ(type_of(messages[2]), MessageType::kAccept);
}

TEST(Messages, TruncatedEnvelopeThrows) {
  auto frame = encode(Message{sample_bid()});
  frame.resize(frame.size() - 1);
  EXPECT_THROW((void)decode(frame), WireError);
}

TEST(Messages, UnknownTypeThrows) {
  auto frame = encode(Message{sample_bid()});
  frame[4] = 0x7F;  // type byte
  EXPECT_THROW((void)decode(frame), WireError);
}

TEST(Messages, WrongVersionThrows) {
  auto frame = encode(Message{sample_bid()});
  frame[5] = 0x55;  // version low byte
  EXPECT_THROW((void)decode(frame), WireError);
}

TEST(Messages, TrailingPayloadBytesThrow) {
  // Hand-build an envelope whose payload is one byte longer than a Result.
  auto frame = encode(Message{ResultMessage{1, 2, 3}});
  // Extend payload length by 1 and append a byte.
  frame[0] += 1;
  frame.push_back(0xEE);
  EXPECT_THROW((void)decode(frame), WireError);
}

TEST(Messages, EmptyInputThrows) {
  EXPECT_THROW((void)decode({}), WireError);
  EXPECT_TRUE(decode_stream({}).empty());
}

}  // namespace
}  // namespace vdx::proto
