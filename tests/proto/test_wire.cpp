#include "proto/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace vdx::proto {
namespace {

TEST(Wire, IntegerRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0xBEEF);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);

  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0xBEEF);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, LittleEndianLayout) {
  ByteWriter w;
  w.write_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Wire, DoubleRoundTripIncludingSpecials) {
  ByteWriter w;
  w.write_f64(3.141592653589793);
  w.write_f64(-0.0);
  w.write_f64(std::numeric_limits<double>::infinity());
  w.write_f64(std::numeric_limits<double>::denorm_min());

  ByteReader r{w.data()};
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.141592653589793);
  EXPECT_EQ(std::signbit(r.read_f64()), true);
  EXPECT_TRUE(std::isinf(r.read_f64()));
  EXPECT_DOUBLE_EQ(r.read_f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Wire, NanRoundTripsBitExact) {
  ByteWriter w;
  w.write_f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r{w.data()};
  EXPECT_TRUE(std::isnan(r.read_f64()));
}

TEST(Wire, StringRoundTrip) {
  ByteWriter w;
  w.write_string("hello");
  w.write_string("");
  w.write_string(std::string("\0binary\xff", 8));

  ByteReader r{w.data()};
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string("\0binary\xff", 8));
}

TEST(Wire, TruncationThrows) {
  ByteWriter w;
  w.write_u32(42);
  ByteReader r{std::span<const std::uint8_t>{w.data().data(), 3}};
  EXPECT_THROW((void)r.read_u32(), WireError);
}

TEST(Wire, StringLengthBeyondBufferThrows) {
  ByteWriter w;
  w.write_u32(1000);  // claims 1000 bytes follow
  ByteReader r{w.data()};
  EXPECT_THROW((void)r.read_string(), WireError);
}

TEST(Wire, ReadBytesAndRemaining) {
  ByteWriter w;
  w.write_u8(1);
  w.write_u8(2);
  w.write_u8(3);
  ByteReader r{w.data()};
  EXPECT_EQ(r.remaining(), 3u);
  const auto bytes = r.read_bytes(2);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[1], 2);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW((void)r.read_bytes(2), WireError);
}

TEST(Wire, PatchU32) {
  ByteWriter w;
  w.write_u32(0);
  w.write_u8(7);
  w.patch_u32(0, 0xCAFEBABE);
  ByteReader r{w.data()};
  EXPECT_EQ(r.read_u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_THROW(w.patch_u32(2, 0), WireError);
}

}  // namespace
}  // namespace vdx::proto
