#include "proto/engine.hpp"

#include <gtest/gtest.h>

namespace vdx::proto {
namespace {

/// Scripted CDN: bids a fixed price per share, records what it saw.
class ScriptedCdn final : public CdnParticipant {
 public:
  explicit ScriptedCdn(std::uint32_t id, double price) : id_(id), price_(price) {}

  void handle_share(std::span<const ShareMessage> shares) override {
    shares_.assign(shares.begin(), shares.end());
  }

  std::vector<BidMessage> announce() override {
    std::vector<BidMessage> bids;
    for (const ShareMessage& share : shares_) {
      BidMessage bid;
      bid.cluster_id = id_ * 100;
      bid.share_id = share.share_id;
      bid.performance_estimate = 10.0;
      bid.capacity_mbps = 1000.0;
      bid.price = price_;
      bid.cdn_id = id_;
      bids.push_back(bid);
    }
    return bids;
  }

  void handle_accept(std::span<const AcceptMessage> accepts) override {
    accepts_.assign(accepts.begin(), accepts.end());
  }

  std::vector<ShareMessage> shares_;
  std::vector<AcceptMessage> accepts_;
  std::uint32_t id_;
  double price_;
};

/// Scripted broker: one share, accepts the cheapest bid fully.
class ScriptedBroker final : public BrokerParticipant {
 public:
  std::vector<ShareMessage> gather() override {
    ShareMessage share;
    share.share_id = 1;
    share.location = 3;
    share.data_size_mbps = 2.0;
    share.client_count = 50;
    return {share};
  }

  std::vector<AcceptMessage> optimize(std::span<const BidMessage> bids) override {
    seen_bids_.assign(bids.begin(), bids.end());
    std::vector<AcceptMessage> accepts;
    const BidMessage* cheapest = nullptr;
    for (const BidMessage& bid : bids) {
      if (cheapest == nullptr || bid.price < cheapest->price) cheapest = &bid;
    }
    for (const BidMessage& bid : bids) {
      AcceptMessage accept;
      accept.cluster_id = bid.cluster_id;
      accept.share_id = bid.share_id;
      accept.performance_estimate = bid.performance_estimate;
      accept.capacity_mbps = bid.capacity_mbps;
      accept.price = bid.price;
      accept.cdn_id = bid.cdn_id;
      accept.awarded_mbps = (&bid == cheapest) ? 100.0 : 0.0;
      accepts.push_back(accept);
    }
    return accepts;
  }

  std::vector<BidMessage> seen_bids_;
};

TEST(DecisionEngine, RunsFullRoundWithShares) {
  ScriptedBroker broker;
  ScriptedCdn cheap{1, 1.0};
  ScriptedCdn pricey{2, 3.0};
  std::vector<CdnParticipant*> cdns{&cheap, &pricey};

  const RoundStats stats = run_decision_round(broker, cdns);

  // Both CDNs received the share.
  ASSERT_EQ(cheap.shares_.size(), 1u);
  EXPECT_EQ(cheap.shares_[0].share_id, 1u);
  ASSERT_EQ(pricey.shares_.size(), 1u);

  // Broker saw both bids.
  EXPECT_EQ(broker.seen_bids_.size(), 2u);

  // Both CDNs got the full accept feed, and the cheap one won.
  ASSERT_EQ(cheap.accepts_.size(), 2u);
  double cheap_award = 0.0;
  double pricey_award = 0.0;
  for (const AcceptMessage& accept : cheap.accepts_) {
    if (accept.cdn_id == 1) cheap_award += accept.awarded_mbps;
    if (accept.cdn_id == 2) pricey_award += accept.awarded_mbps;
  }
  EXPECT_GT(cheap_award, 0.0);
  EXPECT_EQ(pricey_award, 0.0);

  EXPECT_EQ(stats.shares_sent, 2u);   // 1 share x 2 CDNs
  EXPECT_EQ(stats.bids_received, 2u);
  EXPECT_EQ(stats.accepts_sent, 4u);  // 2 accepts x 2 CDNs
  EXPECT_GT(stats.bytes_on_wire, 0u);
}

TEST(DecisionEngine, NoShareModeDeliversEmptySpans) {
  ScriptedBroker broker;
  ScriptedCdn cdn{1, 1.0};
  cdn.shares_ = {ShareMessage{9, 9, 9, 9, 9.0, 9}};  // stale state to be cleared
  std::vector<CdnParticipant*> cdns{&cdn};

  DecisionEngineConfig config;
  config.share_client_data = false;
  const RoundStats stats = run_decision_round(broker, cdns, config);
  EXPECT_TRUE(cdn.shares_.empty());
  EXPECT_EQ(stats.shares_sent, 0u);
}

TEST(DecisionEngine, NullParticipantRejected) {
  ScriptedBroker broker;
  std::vector<CdnParticipant*> cdns{nullptr};
  EXPECT_THROW((void)run_decision_round(broker, cdns), std::invalid_argument);
}

class ScriptedDirectory final : public DeliveryDirectory {
 public:
  ResultMessage resolve(const QueryMessage& query) override {
    last_query_ = query;
    return ResultMessage{query.session_id, 7, 42};
  }
  QueryMessage last_query_;
};

class ScriptedFrontend final : public ClusterFrontend {
 public:
  DeliveryMessage serve(const RequestMessage& request) override {
    last_request_ = request;
    return DeliveryMessage{request.session_id, request.cluster_id, 2.5};
  }
  RequestMessage last_request_;
};

TEST(ChaosEngine, ZeroProfileInjectorMatchesPerfectTransport) {
  ScriptedBroker perfect_broker;
  ScriptedCdn perfect_cdn{1, 1.0};
  std::vector<CdnParticipant*> perfect_cdns{&perfect_cdn};
  const RoundStats perfect = run_decision_round(perfect_broker, perfect_cdns);

  FaultInjector injector;  // empty profile: chaos path must not engage
  DecisionEngineConfig config;
  config.faults = &injector;
  ScriptedBroker broker;
  ScriptedCdn cdn{1, 1.0};
  std::vector<CdnParticipant*> cdns{&cdn};
  const RoundStats stats = run_decision_round(broker, cdns, config);

  EXPECT_EQ(stats.shares_sent, perfect.shares_sent);
  EXPECT_EQ(stats.bids_received, perfect.bids_received);
  EXPECT_EQ(stats.accepts_sent, perfect.accepts_sent);
  EXPECT_EQ(stats.bytes_on_wire, perfect.bytes_on_wire);
  EXPECT_EQ(stats.chaos.messages, 0u);
  EXPECT_EQ(stats.chaos.timeouts, 0u);
}

TEST(ChaosEngine, TotalLossTimesOutEveryMessageButCompletes) {
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector injector{profile};
  DecisionEngineConfig config;
  config.faults = &injector;

  ScriptedBroker broker;
  ScriptedCdn cdn{1, 1.0};
  std::vector<CdnParticipant*> cdns{&cdn};
  const RoundStats stats = run_decision_round(broker, cdns, config);

  // Nothing gets through, yet the round terminates: shares lost, no bids,
  // no accepts to send.
  EXPECT_TRUE(cdn.shares_.empty());
  EXPECT_TRUE(broker.seen_bids_.empty());
  EXPECT_EQ(stats.bids_received, 0u);
  EXPECT_GT(stats.chaos.messages, 0u);
  EXPECT_EQ(stats.chaos.timeouts, stats.chaos.messages);
  EXPECT_GT(stats.chaos.retries, 0u);
  // Each timed-out step is pinned to its deadline.
  EXPECT_GT(stats.chaos.ticks_elapsed, 0u);
}

TEST(ChaosEngine, ModerateLossRetriesAndIsDeterministic) {
  FaultProfile profile;
  profile.drop_rate = 0.4;
  profile.seed = 2024;

  const auto run_once = [&profile]() {
    FaultInjector injector{profile};
    DecisionEngineConfig config;
    config.faults = &injector;
    ScriptedBroker broker;
    ScriptedCdn a{1, 1.0};
    ScriptedCdn b{2, 3.0};
    std::vector<CdnParticipant*> cdns{&a, &b};
    return run_decision_round(broker, cdns, config);
  };

  const RoundStats first = run_once();
  const RoundStats second = run_once();
  EXPECT_GT(first.chaos.retries, 0u);
  EXPECT_EQ(first.chaos.retries, second.chaos.retries);
  EXPECT_EQ(first.chaos.timeouts, second.chaos.timeouts);
  EXPECT_EQ(first.chaos.frames_dropped, second.chaos.frames_dropped);
  EXPECT_EQ(first.bids_received, second.bids_received);
  EXPECT_EQ(first.bytes_on_wire, second.bytes_on_wire);
}

TEST(ChaosEngine, CorruptedFramesAreRejectedNotThrown) {
  FaultProfile profile;
  profile.corrupt_rate = 1.0;  // every frame mutated: checksum rejects all
  profile.seed = 5;
  FaultInjector injector{profile};
  DecisionEngineConfig config;
  config.faults = &injector;

  ScriptedBroker broker;
  ScriptedCdn cdn{1, 1.0};
  std::vector<CdnParticipant*> cdns{&cdn};
  RoundStats stats;
  ASSERT_NO_THROW(stats = run_decision_round(broker, cdns, config));
  EXPECT_GT(stats.chaos.decode_rejects, 0u);
  EXPECT_EQ(stats.chaos.timeouts, stats.chaos.messages);
  EXPECT_TRUE(broker.seen_bids_.empty());
}

TEST(DeliveryEngine, RunsFourSteps) {
  ScriptedDirectory directory;
  ScriptedFrontend frontend;
  const QueryMessage query{11, 3, 2.5};
  const DeliveryOutcome outcome = run_delivery(query, directory, frontend);

  EXPECT_EQ(directory.last_query_.session_id, 11u);
  EXPECT_EQ(frontend.last_request_.cluster_id, 42u);
  EXPECT_EQ(outcome.result.cluster_id, 42u);
  EXPECT_EQ(outcome.result.cdn_id, 7u);
  EXPECT_EQ(outcome.delivery.session_id, 11u);
  EXPECT_DOUBLE_EQ(outcome.delivery.delivered_mbps, 2.5);
  EXPECT_GT(outcome.bytes_on_wire, 0u);
}

/// Directory whose primary answer is a dark cluster; the failover points at
/// a healthy one (or nowhere, when exhausted=true).
class FailoverDirectory final : public DeliveryDirectory {
 public:
  ResultMessage resolve(const QueryMessage& query) override {
    return ResultMessage{query.session_id, 7, 42};
  }
  ResultMessage resolve_excluding(const QueryMessage& query,
                                  std::uint32_t dark_cluster) override {
    excluded_ = dark_cluster;
    if (exhausted_) return ResultMessage{query.session_id, UINT32_MAX, UINT32_MAX};
    return ResultMessage{query.session_id, 8, 43};
  }
  std::uint32_t excluded_ = 0;
  bool exhausted_ = false;
};

/// Frontend where cluster 42 is dark (delivers nothing).
class DarkClusterFrontend final : public ClusterFrontend {
 public:
  DeliveryMessage serve(const RequestMessage& request) override {
    const double mbps = request.cluster_id == 42 ? 0.0 : 2.5;
    return DeliveryMessage{request.session_id, request.cluster_id, mbps};
  }
};

TEST(DeliveryEngine, DarkClusterFailsOverToAlternative) {
  FailoverDirectory directory;
  DarkClusterFrontend frontend;
  const QueryMessage query{11, 3, 2.5};
  const DeliveryOutcome outcome = run_delivery(query, directory, frontend);

  EXPECT_TRUE(outcome.rehomed);
  EXPECT_EQ(outcome.failed_cluster, 42u);
  EXPECT_EQ(directory.excluded_, 42u);
  EXPECT_EQ(outcome.result.cluster_id, 43u);
  EXPECT_EQ(outcome.result.cdn_id, 8u);
  EXPECT_DOUBLE_EQ(outcome.delivery.delivered_mbps, 2.5);
}

TEST(DeliveryEngine, FailoverGivesUpWhenNoAlternativeExists) {
  FailoverDirectory directory;
  directory.exhausted_ = true;
  DarkClusterFrontend frontend;
  const QueryMessage query{12, 3, 2.5};
  const DeliveryOutcome outcome = run_delivery(query, directory, frontend);

  EXPECT_FALSE(outcome.rehomed);
  EXPECT_EQ(outcome.result.cluster_id, 42u);  // still pointing at the failure
  EXPECT_DOUBLE_EQ(outcome.delivery.delivered_mbps, 0.0);
}

}  // namespace
}  // namespace vdx::proto
