// Robustness fuzzing: the codec must never crash, hang, or accept garbage —
// every malformed input must surface as WireError (throwing API) or a typed
// error (try_decode); a hostile marketplace peer or a corrupting transport
// cannot take the exchange down.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "proto/fault.hpp"
#include "proto/messages.hpp"

namespace vdx::proto {
namespace {

Message sample_message(std::size_t kind) {
  switch (kind % 7) {
    case 0:
      return ShareMessage{1, 2, 3, 4, 5.0, 6};
    case 1:
      return BidMessage{1, 2, 3.0, 4.0, 5.0, 6};
    case 2:
      return AcceptMessage{1, 2, 3.0, 4.0, 5.0, 6, 7.0};
    case 3:
      return QueryMessage{1, 2, 3.0};
    case 4:
      return ResultMessage{1, 2, 3};
    case 5:
      return RequestMessage{1, 2, 3};
    default:
      return DeliveryMessage{1, 2, 3.0};
  }
}

TEST(WireFuzz, RandomBytesNeverCrash) {
  core::Rng rng{0xF022};
  for (int trial = 0; trial < 20'000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const Message m = decode(bytes);
      // Rarely, random bytes form a valid frame; it must round-trip.
      const Message again = decode(encode(m));
      EXPECT_EQ(type_of(again), type_of(m));
    } catch (const WireError&) {
      // expected for almost all inputs
    }
  }
}

TEST(WireFuzz, EveryTruncationOfAValidFrameThrows) {
  for (std::size_t kind = 0; kind < 7; ++kind) {
    const auto frame = encode(sample_message(kind));
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      std::vector<std::uint8_t> truncated(frame.begin(),
                                          frame.begin() + static_cast<long>(cut));
      EXPECT_THROW((void)decode(truncated), WireError) << "kind " << kind
                                                       << " cut " << cut;
    }
  }
}

TEST(WireFuzz, SingleByteCorruptionAlwaysRejected) {
  // Envelope v2 carries an FNV-1a checksum over header + payload, so *any*
  // single-byte corruption — length, type, version, payload, or the checksum
  // itself — must be detected, not silently accepted.
  core::Rng rng{77};
  for (std::size_t kind = 0; kind < 7; ++kind) {
    const auto frame = encode(sample_message(kind));
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      auto corrupted = frame;
      corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      EXPECT_THROW((void)decode(corrupted), WireError)
          << "kind " << kind << " pos " << pos;
      EXPECT_FALSE(try_decode(corrupted).ok());
    }
  }
}

TEST(WireFuzz, StreamWithGarbageTailThrowsNotHangs) {
  auto stream = encode(sample_message(1));
  const auto second = encode(sample_message(2));
  stream.insert(stream.end(), second.begin(), second.end());
  stream.push_back(0xFF);  // dangling garbage
  EXPECT_THROW((void)decode_stream(stream), WireError);
}

TEST(WireFuzz, HugeClaimedLengthRejected) {
  ByteWriter w;
  w.write_u32(0x7FFFFFFF);  // absurd payload length
  w.write_u8(static_cast<std::uint8_t>(MessageType::kBid));
  w.write_u16(kProtocolVersion);
  EXPECT_THROW((void)decode(w.data()), WireError);
}

TEST(WireFuzz, TryDecodeAgreesWithDecodeOnRandomBytes) {
  core::Rng rng{0xABCD};
  for (int trial = 0; trial < 20'000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(72));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    const core::Result<Message> safe = try_decode(bytes);
    bool threw = false;
    try {
      const Message m = decode(bytes);
      ASSERT_TRUE(safe.ok());
      EXPECT_EQ(type_of(m), type_of(safe.value()));
    } catch (const WireError&) {
      threw = true;
    }
    EXPECT_EQ(threw, !safe.ok());
    if (!safe.ok()) EXPECT_EQ(safe.error().code, core::Errc::kCorruptFrame);
  }
}

TEST(WireFuzz, FaultInjectorMutationsAlwaysRejectedCleanly) {
  // Drive every frame type through the chaos transport's mutation paths
  // (bit corruption + truncation) and require that every mutated copy is
  // rejected by the non-throwing decoder — no crash, no garbage accepted.
  FaultProfile profile;
  profile.corrupt_rate = 0.6;
  profile.truncate_rate = 0.4;
  profile.seed = 0xFA117;
  FaultInjector injector{profile};

  std::size_t mutated_seen = 0;
  for (int trial = 0; trial < 4'000; ++trial) {
    const auto frame = encode(sample_message(static_cast<std::size_t>(trial)));
    for (const FaultedFrame& copy :
         injector.apply(static_cast<std::size_t>(trial) % 5, frame)) {
      const core::Result<Message> decoded = try_decode(copy.bytes);
      if (!copy.mutated) {
        EXPECT_TRUE(decoded.ok());
        continue;
      }
      ++mutated_seen;
      if (decoded.ok()) {
        // A mutation can only slip through if flips cancelled exactly (the
        // bytes are identical); anything else accepted is a codec hole.
        EXPECT_EQ(copy.bytes, frame);
      } else {
        EXPECT_EQ(decoded.error().code, core::Errc::kCorruptFrame);
      }
    }
  }
  EXPECT_GT(mutated_seen, 1'000u);
}

TEST(WireFuzz, RoundTripFuzzAllTypesWithRandomValues) {
  core::Rng rng{31337};
  for (int trial = 0; trial < 5'000; ++trial) {
    BidMessage bid;
    bid.cluster_id = static_cast<std::uint32_t>(rng());
    bid.share_id = static_cast<std::uint32_t>(rng());
    bid.performance_estimate = rng.uniform(-1e12, 1e12);
    bid.capacity_mbps = rng.uniform(0.0, 1e9);
    bid.price = rng.uniform(-1e6, 1e6);
    bid.cdn_id = static_cast<std::uint32_t>(rng());
    const Message decoded = decode(encode(Message{bid}));
    EXPECT_EQ(std::get<BidMessage>(decoded), bid);
  }
}

}  // namespace
}  // namespace vdx::proto
