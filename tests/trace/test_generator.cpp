#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trace/stats.hpp"

namespace vdx::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : world_(geo::World::generate({})) {}

  BrokerTrace make_trace(std::uint64_t seed = 2017) {
    core::Rng rng{seed};
    return generate_trace(world_, config_, rng);
  }

  geo::World world_;
  TraceConfig config_;
};

TEST_F(TraceTest, GeneratesConfiguredSessionCount) {
  const BrokerTrace trace = make_trace();
  EXPECT_EQ(trace.size(), 33'400u);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 3600.0);
}

TEST_F(TraceTest, SessionsAreWellFormedAndArrivalOrdered) {
  const BrokerTrace trace = make_trace();
  double previous = 0.0;
  for (const Session& s : trace.sessions()) {
    EXPECT_GE(s.arrival_s, previous);
    previous = s.arrival_s;
    EXPECT_GE(s.duration_s, 0.0);
    EXPECT_LE(s.end_s(), trace.duration_s() + 1e-9);
    EXPECT_GT(s.bitrate_mbps, 0.0);
    EXPECT_LT(s.city.value(), world_.cities().size());
    // Switch events are time-ordered, within the session, and chain.
    double t = s.arrival_s;
    TraceCdn current = s.initial_cdn;
    for (const SwitchEvent& e : s.switches) {
      EXPECT_GE(e.time_s, t);
      EXPECT_LE(e.time_s, s.end_s());
      EXPECT_EQ(e.from, current);
      EXPECT_NE(e.to, e.from);
      current = e.to;
      t = e.time_s;
    }
  }
}

TEST_F(TraceTest, AbandonmentRateMatchesPaper) {
  const BrokerTrace trace = make_trace();
  EXPECT_NEAR(abandonment_rate(trace), 0.78, 0.01);
}

TEST_F(TraceTest, BitrateDistributionIsBimodal) {
  const BrokerTrace trace = make_trace();
  std::size_t lowest = 0;
  std::size_t highest = 0;
  for (const Session& s : trace.sessions()) {
    if (s.bitrate_mbps == config_.bitrate_ladder.front()) ++lowest;
    if (s.bitrate_mbps == config_.bitrate_ladder.back()) ++highest;
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_GT(lowest / n, 0.25);   // peak at the lowest rung
  EXPECT_GT(highest / n, 0.25);  // peak at the highest rung
}

TEST_F(TraceTest, VideoPopularityIsZipfLike) {
  const BrokerTrace trace = make_trace();
  const auto slope = video_zipf_slope(trace);
  ASSERT_TRUE(slope.has_value());
  // Configured exponent 0.8; the head fit should land in the neighbourhood.
  EXPECT_LT(*slope, -0.5);
  EXPECT_GT(*slope, -1.2);
}

TEST_F(TraceTest, CityDistributionIsHeavyTailed) {
  const BrokerTrace trace = make_trace();
  auto counts = requests_per_city(trace, world_);
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top3 = counts[0] + counts[1] + counts[2];
  EXPECT_GT(static_cast<double>(top3) / static_cast<double>(trace.size()), 0.3);
}

TEST_F(TraceTest, MovedFractionMatchesFigure4Band) {
  const BrokerTrace trace = make_trace();
  const auto series = moved_fraction_timeseries(trace, 5.0);
  ASSERT_EQ(series.size(), 720u);

  // Skip the warm-up (no session has had time to move yet).
  std::vector<double> steady(series.begin() + 120, series.end());
  double sum = 0.0;
  double lo = 1.0;
  double hi = 0.0;
  for (const double v : steady) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double avg = sum / static_cast<double>(steady.size());
  // Paper Fig. 4: mean ~40%, dips to ~20%, rises above ~60%.
  EXPECT_NEAR(avg, 0.40, 0.10);
  EXPECT_LT(lo, 0.35);
  EXPECT_GT(hi, 0.50);
}

TEST_F(TraceTest, CdnAFavoredInSmallCities) {
  const BrokerTrace trace = make_trace();
  const auto usage = city_usage(trace, world_);
  ASSERT_GT(usage.size(), 10u);
  const auto fit_a = usage_fit(usage, TraceCdn::kCdnA);
  ASSERT_TRUE(fit_a.has_value());
  // Fig. 5: CDN A's usage *declines* with city size...
  EXPECT_LT(fit_a->slope, 0.0);
  // ...while B and C stay roughly flat (|slope| much smaller than A's).
  const auto fit_b = usage_fit(usage, TraceCdn::kCdnB);
  const auto fit_c = usage_fit(usage, TraceCdn::kCdnC);
  ASSERT_TRUE(fit_b.has_value());
  ASSERT_TRUE(fit_c.has_value());
  EXPECT_LT(std::abs(fit_b->slope), std::abs(fit_a->slope));
  EXPECT_LT(std::abs(fit_c->slope), std::abs(fit_a->slope));
}

TEST_F(TraceTest, CountryUsageVariesWidely) {
  const BrokerTrace trace = make_trace();
  const auto usage = country_usage(trace, world_, 100);
  ASSERT_GT(usage.size(), 5u);
  // Fig. 7: usage varies significantly across countries — some country gives
  // one CDN a dominant share while another nearly starves it.
  for (const std::size_t cdn :
       {static_cast<std::size_t>(TraceCdn::kCdnA), static_cast<std::size_t>(TraceCdn::kCdnB)}) {
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& u : usage) {
      lo = std::min(lo, u.share[cdn]);
      hi = std::max(hi, u.share[cdn]);
    }
    EXPECT_GT(hi - lo, 0.3) << "cdn index " << cdn;
  }
  for (const auto& u : usage) {
    double total = 0.0;
    for (const double s : u.share) total += s;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(u.requests, 100u);
  }
}

TEST_F(TraceTest, DeterministicForSeed) {
  const BrokerTrace a = make_trace(5);
  const BrokerTrace b = make_trace(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sessions()[i].arrival_s, b.sessions()[i].arrival_s);
    EXPECT_EQ(a.sessions()[i].city, b.sessions()[i].city);
    EXPECT_EQ(a.sessions()[i].switches.size(), b.sessions()[i].switches.size());
  }
}

TEST_F(TraceTest, BackgroundTrafficIsUncontrolled) {
  core::Rng rng{9};
  const BrokerTrace background = generate_background(world_, config_, 3.0, rng);
  EXPECT_EQ(background.size(), 3u * config_.session_count);
  for (const Session& s : background.sessions()) {
    EXPECT_EQ(s.initial_cdn, TraceCdn::kOther);
    EXPECT_TRUE(s.switches.empty());
  }
  EXPECT_DOUBLE_EQ(moved_fraction_overall(background), 0.0);
}

TEST_F(TraceTest, RejectsBadConfigs) {
  core::Rng rng{1};
  TraceConfig bad = config_;
  bad.session_count = 0;
  EXPECT_THROW((void)generate_trace(world_, bad, rng), std::invalid_argument);
  bad = config_;
  bad.bitrate_weights.pop_back();
  EXPECT_THROW((void)generate_trace(world_, bad, rng), std::invalid_argument);
  bad = config_;
  bad.abandonment_rate = 1.5;
  EXPECT_THROW((void)generate_trace(world_, bad, rng), std::invalid_argument);
  EXPECT_THROW((void)generate_background(world_, config_, 0.0, rng),
               std::invalid_argument);
}

TEST(SessionRecord, CdnAtAndMovedBy) {
  Session s;
  s.arrival_s = 10.0;
  s.duration_s = 100.0;
  s.initial_cdn = TraceCdn::kCdnA;
  s.switches = {{40.0, TraceCdn::kCdnA, TraceCdn::kCdnB},
                {80.0, TraceCdn::kCdnB, TraceCdn::kCdnC}};
  EXPECT_EQ(s.cdn_at(20.0), TraceCdn::kCdnA);
  EXPECT_EQ(s.cdn_at(50.0), TraceCdn::kCdnB);
  EXPECT_EQ(s.cdn_at(90.0), TraceCdn::kCdnC);
  EXPECT_EQ(s.final_cdn(), TraceCdn::kCdnC);
  EXPECT_FALSE(s.moved_by(30.0));
  EXPECT_TRUE(s.moved_by(45.0));
  EXPECT_TRUE(s.active_at(50.0));
  EXPECT_FALSE(s.active_at(200.0));
}

}  // namespace
}  // namespace vdx::trace
