// BrokerTraceGenerator (chunked/streaming API): chunk-boundary determinism,
// substream independence, horizon truncation edge cases (ISSUE 4).
#include <gtest/gtest.h>

#include <vector>

#include "trace/generator.hpp"

namespace vdx::trace {
namespace {

geo::World test_world() { return geo::World::generate({}); }

std::vector<Session> drain(BrokerTraceGenerator& generator, std::size_t batch) {
  std::vector<Session> all;
  while (!generator.exhausted()) {
    auto chunk = generator.next_batch(batch);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

void expect_same_sessions(const std::vector<Session>& a,
                          const std::vector<Session>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id.value(), b[i].id.value());
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_DOUBLE_EQ(a[i].duration_s, b[i].duration_s);
    EXPECT_EQ(a[i].city.value(), b[i].city.value());
    EXPECT_DOUBLE_EQ(a[i].bitrate_mbps, b[i].bitrate_mbps);
    EXPECT_EQ(a[i].abandoned, b[i].abandoned);
    EXPECT_EQ(a[i].initial_cdn, b[i].initial_cdn);
    EXPECT_EQ(a[i].switches.size(), b[i].switches.size());
  }
}

TEST(BrokerTraceGeneratorTest, ChunkBoundaryDeterminism) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 3000;

  // The batch size passed to next_batch must never change the stream.
  BrokerTraceGenerator one{world, config, core::Rng{42}};
  BrokerTraceGenerator other{world, config, core::Rng{42}};
  const auto by_ones = drain(one, 1);
  const auto by_big = drain(other, 1024);
  expect_same_sessions(by_ones, by_big);
}

TEST(BrokerTraceGeneratorTest, EmitsTheFullHorizonInArrivalOrderWithDenseIds) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 2500;

  BrokerTraceGenerator generator{world, config, core::Rng{42}};
  EXPECT_EQ(generator.total_sessions(), 2500u);
  const auto sessions = drain(generator, 700);
  ASSERT_EQ(sessions.size(), 2500u);
  EXPECT_EQ(generator.emitted(), 2500u);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(sessions[i].id.value(), i);
    if (i > 0) EXPECT_GE(sessions[i].arrival_s, sessions[i - 1].arrival_s);
    EXPECT_GE(sessions[i].arrival_s, 0.0);
    EXPECT_LT(sessions[i].arrival_s, config.duration_s);
    // Durations are clamped to the horizon.
    EXPECT_LE(sessions[i].arrival_s + sessions[i].duration_s,
              config.duration_s + 1e-9);
  }
}

TEST(BrokerTraceGeneratorTest, SubstreamIndependence) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 4000;
  BrokerTraceGenerator::Options options;
  options.block_sessions = 1000;  // 4 blocks

  // A prefix consumer and a full consumer see identical sessions: block b
  // depends only on (seed, b), never on how much of the stream was pulled.
  BrokerTraceGenerator full{world, config, core::Rng{7}, options};
  BrokerTraceGenerator partial{world, config, core::Rng{7}, options};
  const auto everything = drain(full, 512);
  const auto prefix = partial.next_batch(1500);
  ASSERT_EQ(prefix.size(), 1500u);
  expect_same_sessions(prefix,
                       {everything.begin(), everything.begin() + 1500});
}

TEST(BrokerTraceGeneratorTest, BlockSizePartitionsTheHorizon) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 1000;
  BrokerTraceGenerator::Options options;
  options.block_sessions = 300;

  BrokerTraceGenerator generator{world, config, core::Rng{3}, options};
  EXPECT_EQ(generator.block_count(), 4u);  // ceil(1000 / 300)
  const auto sessions = drain(generator, 250);
  EXPECT_EQ(sessions.size(), 1000u);
  // Memory bound: the buffer never holds more than ~one block.
  EXPECT_LE(generator.buffered(), options.block_sessions);
}

TEST(BrokerTraceGeneratorTest, ZeroSessionsIsAnEmptyStreamNotAnError) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 0;

  BrokerTraceGenerator generator{world, config, core::Rng{42}};
  EXPECT_TRUE(generator.exhausted());
  EXPECT_EQ(generator.block_count(), 0u);
  EXPECT_TRUE(generator.next_batch(100).empty());
  EXPECT_EQ(generator.emitted(), 0u);
}

TEST(BrokerTraceGeneratorTest, SingleChunkCoversEverything) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 50;  // far below the default block size: one block

  BrokerTraceGenerator generator{world, config, core::Rng{42}};
  EXPECT_EQ(generator.block_count(), 1u);
  const auto sessions = generator.next_batch(1'000'000);
  EXPECT_EQ(sessions.size(), 50u);
  EXPECT_TRUE(generator.exhausted());
  EXPECT_TRUE(generator.next_batch(1).empty());
}

TEST(BrokerTraceGeneratorTest, ResetReplaysTheIdenticalStream) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 800;
  BrokerTraceGenerator::Options options;
  options.block_sessions = 256;

  BrokerTraceGenerator generator{world, config, core::Rng{42}, options};
  const auto first = drain(generator, 123);
  generator.reset();
  const auto second = drain(generator, 777);
  expect_same_sessions(first, second);
}

TEST(BrokerTraceGeneratorTest, BackgroundStreamNeverCarriesBrokerState) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 500;
  BrokerTraceGenerator::Options options;
  options.broker_controlled = false;

  BrokerTraceGenerator generator{world, config, core::Rng{42}, options};
  for (const Session& s : drain(generator, 200)) {
    EXPECT_EQ(s.initial_cdn, TraceCdn::kOther);
    EXPECT_TRUE(s.switches.empty());
  }
}

TEST(BrokerTraceGeneratorTest, MatchesMonolithicMarginals) {
  // Not byte-identical to generate_trace (different substream layout), but
  // the same statistical model: abandonment and mean-duration land within a
  // few percent of the monolithic trace's.
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 20'000;

  core::Rng mono_rng{42};
  const BrokerTrace mono = generate_trace(world, config, mono_rng);
  BrokerTraceGenerator generator{world, config, core::Rng{42},
                                 {.block_sessions = 4096}};
  const auto streamed = drain(generator, 4096);

  const auto abandoned_fraction = [](std::span<const Session> sessions) {
    std::size_t abandoned = 0;
    for (const Session& s : sessions) abandoned += s.abandoned ? 1 : 0;
    return static_cast<double>(abandoned) / static_cast<double>(sessions.size());
  };
  EXPECT_NEAR(abandoned_fraction(streamed), abandoned_fraction(mono.sessions()),
              0.02);
}

}  // namespace
}  // namespace vdx::trace
