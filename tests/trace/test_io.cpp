#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace vdx::trace {
namespace {

BrokerTrace sample_trace() {
  const geo::World world = geo::World::generate({});
  TraceConfig config;
  config.session_count = 2000;
  core::Rng rng{7};
  return generate_trace(world, config, rng);
}

void expect_equal(const BrokerTrace& a, const BrokerTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.duration_s(), b.duration_s());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Session& x = a.sessions()[i];
    const Session& y = b.sessions()[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_DOUBLE_EQ(x.arrival_s, y.arrival_s);
    EXPECT_EQ(x.video, y.video);
    EXPECT_DOUBLE_EQ(x.bitrate_mbps, y.bitrate_mbps);
    EXPECT_DOUBLE_EQ(x.duration_s, y.duration_s);
    EXPECT_EQ(x.city, y.city);
    EXPECT_EQ(x.as_number, y.as_number);
    EXPECT_EQ(x.abandoned, y.abandoned);
    EXPECT_EQ(x.initial_cdn, y.initial_cdn);
    ASSERT_EQ(x.switches.size(), y.switches.size());
    for (std::size_t k = 0; k < x.switches.size(); ++k) {
      EXPECT_DOUBLE_EQ(x.switches[k].time_s, y.switches[k].time_s);
      EXPECT_EQ(x.switches[k].from, y.switches[k].from);
      EXPECT_EQ(x.switches[k].to, y.switches[k].to);
    }
  }
}

TEST(TraceIo, StreamRoundTripIsBitExact) {
  const BrokerTrace original = sample_trace();
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  save_trace(original, buffer);
  const BrokerTrace loaded = load_trace(buffer);
  expect_equal(original, loaded);
}

TEST(TraceIo, FileRoundTrip) {
  const BrokerTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/vdx_trace_io_test.bin";
  save_trace_file(original, path);
  const BrokerTrace loaded = load_trace_file(path);
  expect_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  save_trace(sample_trace(), buffer);
  std::string bytes = buffer.str();
  bytes[0] = 'X';
  std::stringstream corrupted{bytes, std::ios::in | std::ios::binary};
  EXPECT_THROW((void)load_trace(corrupted), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation) {
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  save_trace(sample_trace(), buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated{bytes, std::ios::in | std::ios::binary};
  EXPECT_THROW((void)load_trace(truncated), std::runtime_error);
}

TEST(TraceIo, RejectsTrailingGarbage) {
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  save_trace(sample_trace(), buffer);
  std::string bytes = buffer.str() + "junk";
  std::stringstream padded{bytes, std::ios::in | std::ios::binary};
  EXPECT_THROW((void)load_trace(padded), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)load_trace_file("/nonexistent/path/trace.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace vdx::trace
