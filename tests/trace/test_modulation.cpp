// Workload modulators (DESIGN.md §11): rate-clamp regressions at
// adversarial factors, byte-identity of the inactive path, chunk/seek/reset
// determinism under active modulation, and the statistical signatures (a
// flash crowd boosts its city's share and the horizon total; a diurnal
// redistributes arrivals without touching per-session marginals).
#include "trace/modulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "trace/generator.hpp"

namespace vdx::trace {
namespace {

geo::World test_world() { return geo::World::generate({}); }

std::vector<Session> drain(BrokerTraceGenerator& generator, std::size_t batch) {
  std::vector<Session> all;
  while (!generator.exhausted()) {
    auto chunk = generator.next_batch(batch);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

void expect_same_sessions(const std::vector<Session>& a,
                          const std::vector<Session>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id.value(), b[i].id.value());
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_DOUBLE_EQ(a[i].duration_s, b[i].duration_s);
    EXPECT_EQ(a[i].city.value(), b[i].city.value());
    EXPECT_DOUBLE_EQ(a[i].bitrate_mbps, b[i].bitrate_mbps);
    EXPECT_EQ(a[i].abandoned, b[i].abandoned);
    EXPECT_EQ(a[i].initial_cdn, b[i].initial_cdn);
    EXPECT_EQ(a[i].switches.size(), b[i].switches.size());
  }
}

std::uint32_t busiest_city(const geo::World& world) {
  std::uint32_t best = 0;
  double best_weight = -1.0;
  for (const geo::City& city : world.cities()) {
    if (city.demand_weight > best_weight) {
      best_weight = city.demand_weight;
      best = city.id.value();
    }
  }
  return best;
}

// --- satellite (b): the clamp regression at factor 0 and 1e6 -------------

TEST(ClampRateMultiplier, NeverYieldsNegativeNanOrRunawayRates) {
  EXPECT_DOUBLE_EQ(clamp_rate_multiplier(0.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp_rate_multiplier(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp_rate_multiplier(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp_rate_multiplier(1e6), 1e6);
  EXPECT_DOUBLE_EQ(clamp_rate_multiplier(1e12), kMaxRateMultiplier);
  EXPECT_DOUBLE_EQ(
      clamp_rate_multiplier(std::numeric_limits<double>::infinity()),
      kMaxRateMultiplier);
  // NaN is "no modulation", never a poisoned rate.
  EXPECT_DOUBLE_EQ(
      clamp_rate_multiplier(std::numeric_limits<double>::quiet_NaN()), 1.0);
}

TEST(WorkloadModulationTest, RejectsNonsenseSpecs) {
  WorkloadModulation modulation;
  FlashCrowdSpec bad;
  bad.city = core::CityId{0};
  bad.factor = -1.0;
  EXPECT_THROW(modulation.add_flash_crowd(bad), std::invalid_argument);
  bad.factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(modulation.add_flash_crowd(bad), std::invalid_argument);
  DiurnalSpec diurnal;
  diurnal.period_s = 0.0;
  EXPECT_THROW(modulation.add_diurnal(diurnal), std::invalid_argument);
  EXPECT_FALSE(modulation.active());
}

TEST(WorkloadModulationTest, ExtremeFactorsStayFiniteAndClamped) {
  WorkloadModulation modulation;
  FlashCrowdSpec spike;
  spike.city = core::CityId{0};
  spike.factor = 1e6;
  spike.start_s = 0.0;
  spike.ramp_s = 10.0;
  spike.hold_s = 100.0;
  spike.decay_s = 10.0;
  modulation.add_flash_crowd(spike);
  // Factor 0 silences a second city entirely.
  FlashCrowdSpec silence = spike;
  silence.city = core::CityId{1};
  silence.factor = 0.0;
  modulation.add_flash_crowd(silence);

  for (double t = 0.0; t < 200.0; t += 7.0) {
    const double boosted = modulation.city_boost(0, t);
    EXPECT_TRUE(std::isfinite(boosted));
    EXPECT_GE(boosted, 0.0);
    EXPECT_LE(boosted, kMaxRateMultiplier);
    const double silenced = modulation.city_boost(1, t);
    EXPECT_GE(silenced, 0.0);
    EXPECT_LE(silenced, 1.0);
  }
  EXPECT_DOUBLE_EQ(modulation.city_boost(1, 60.0), 0.0);  // mid-hold
}

// --- byte-identity of the inactive path ----------------------------------

TEST(ModulatedGeneratorTest, NullAndInactiveModulationAreByteIdentical) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 2000;

  BrokerTraceGenerator plain{world, config, core::Rng{42}};
  const auto baseline = drain(plain, 512);

  const WorkloadModulation inactive;  // active() == false
  BrokerTraceGenerator::Options options;
  options.modulation = &inactive;
  BrokerTraceGenerator gated{world, config, core::Rng{42}, options};
  EXPECT_EQ(gated.total_sessions(), 2000u);
  expect_same_sessions(baseline, drain(gated, 512));
}

// --- determinism contracts under active modulation -----------------------

WorkloadModulation flagship_spike(const geo::World& world, double factor = 50.0) {
  WorkloadModulation modulation;
  FlashCrowdSpec spike;
  spike.city = core::CityId{busiest_city(world)};
  spike.factor = factor;
  spike.start_s = 900.0;
  spike.ramp_s = 120.0;
  spike.hold_s = 600.0;
  spike.decay_s = 300.0;
  modulation.add_flash_crowd(spike);
  return modulation;
}

TEST(ModulatedGeneratorTest, ChunkBoundaryDeterminismUnderFlashCrowd) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 3000;
  const WorkloadModulation modulation = flagship_spike(world);
  BrokerTraceGenerator::Options options;
  options.modulation = &modulation;
  options.block_sessions = 700;

  BrokerTraceGenerator one{world, config, core::Rng{42}, options};
  BrokerTraceGenerator other{world, config, core::Rng{42}, options};
  expect_same_sessions(drain(one, 1), drain(other, 1024));
}

TEST(ModulatedGeneratorTest, ResetAndSeekReplayByteIdentically) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 2500;
  WorkloadModulation modulation = flagship_spike(world);
  modulation.add_diurnal({0.5, 3600.0, 0.0});
  BrokerTraceGenerator::Options options;
  options.modulation = &modulation;
  options.block_sessions = 600;

  BrokerTraceGenerator generator{world, config, core::Rng{7}, options};
  const auto full = drain(generator, 800);

  generator.reset();
  expect_same_sessions(full, drain(generator, 800));

  // Seek into the middle of a block inside the spike window and replay.
  const std::size_t mid = full.size() / 3;
  generator.seek(mid);
  const auto tail = drain(generator, 800);
  ASSERT_EQ(tail.size(), full.size() - mid);
  expect_same_sessions({full.begin() + static_cast<std::ptrdiff_t>(mid), full.end()},
                       tail);
  EXPECT_THROW(generator.seek(generator.total_sessions() + 1), std::invalid_argument);
}

// --- statistical signatures ----------------------------------------------

TEST(ModulatedGeneratorTest, FlashCrowdBoostsTargetCityShareAndHorizonTotal) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 6000;
  const std::uint32_t hotspot = busiest_city(world);
  const WorkloadModulation modulation = flagship_spike(world);
  BrokerTraceGenerator::Options options;
  options.modulation = &modulation;

  BrokerTraceGenerator plain{world, config, core::Rng{42}};
  BrokerTraceGenerator spiked{world, config, core::Rng{42}, options};
  // A 50x boost on the busiest city adds sessions to the horizon.
  EXPECT_GT(spiked.total_sessions(), plain.total_sessions());

  const auto baseline = drain(plain, 2048);
  const auto stressed = drain(spiked, 2048);
  const auto window_share = [hotspot](const std::vector<Session>& sessions) {
    std::size_t in_window = 0;
    std::size_t hot = 0;
    for (const Session& s : sessions) {
      if (s.arrival_s < 900.0 || s.arrival_s >= 1920.0) continue;
      ++in_window;
      if (s.city.value() == hotspot) ++hot;
    }
    return in_window > 0 ? static_cast<double>(hot) / static_cast<double>(in_window)
                         : 0.0;
  };
  // The hotspot dominates the spike window under stress.
  EXPECT_GT(window_share(stressed), 2.0 * window_share(baseline));
  EXPECT_GT(window_share(stressed), 0.5);
}

TEST(ModulatedGeneratorTest, SuppressionAtFactorZeroSilencesTheCity) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 4000;
  const std::uint32_t hotspot = busiest_city(world);
  const WorkloadModulation modulation = flagship_spike(world, 0.0);
  BrokerTraceGenerator::Options options;
  options.modulation = &modulation;

  BrokerTraceGenerator generator{world, config, core::Rng{42}, options};
  // Suppressing the busiest city removes sessions from the horizon, and
  // during the hold no arrival lands there.
  EXPECT_LT(generator.total_sessions(), config.session_count);
  for (const Session& s : drain(generator, 2048)) {
    if (s.arrival_s >= 1020.0 && s.arrival_s < 1620.0) {
      EXPECT_NE(s.city.value(), hotspot) << "arrival at t=" << s.arrival_s;
    }
  }
}

TEST(ModulatedGeneratorTest, ExtremeSpikeFactorKeepsTheStreamFiniteAndOrdered) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 500;
  config.duration_s = 1800.0;
  WorkloadModulation modulation;
  FlashCrowdSpec spike;
  spike.city = core::CityId{busiest_city(world)};
  spike.factor = 1e6;  // adversarial but legal: the clamp holds it
  spike.start_s = 600.0;
  spike.ramp_s = 30.0;
  spike.hold_s = 60.0;
  spike.decay_s = 30.0;
  modulation.add_flash_crowd(spike);
  BrokerTraceGenerator::Options options;
  options.modulation = &modulation;
  options.block_sessions = 250;

  BrokerTraceGenerator generator{world, config, core::Rng{3}, options};
  const auto sessions = drain(generator, 1024);
  ASSERT_EQ(sessions.size(), generator.total_sessions());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_TRUE(std::isfinite(sessions[i].arrival_s));
    EXPECT_GE(sessions[i].arrival_s, 0.0);
    EXPECT_LT(sessions[i].arrival_s, config.duration_s);
    EXPECT_EQ(sessions[i].id.value(), i);
    if (i > 0) {
      EXPECT_GE(sessions[i].arrival_s, sessions[i - 1].arrival_s);
    }
  }
}

TEST(ModulatedGeneratorTest, DiurnalRedistributesArrivalsTowardTheCrest) {
  const geo::World world = test_world();
  TraceConfig config;
  config.session_count = 6000;
  WorkloadModulation modulation;
  // One full period over the hour: crest in the first half (sin > 0),
  // trough in the second.
  modulation.add_diurnal({0.8, 3600.0, 0.0});
  BrokerTraceGenerator::Options options;
  options.modulation = &modulation;

  BrokerTraceGenerator generator{world, config, core::Rng{42}, options};
  std::size_t first_half = 0;
  std::size_t second_half = 0;
  for (const Session& s : drain(generator, 2048)) {
    (s.arrival_s < 1800.0 ? first_half : second_half) += 1;
  }
  EXPECT_GT(first_half, second_half * 2);
}

}  // namespace
}  // namespace vdx::trace
