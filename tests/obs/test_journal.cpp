// RunJournal: ring wraparound, round stamping, JSONL round-trip, CSV, and
// the end-of-run summary table.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/journal.hpp"

namespace vdx::obs {
namespace {

TEST(RunJournalTest, RecordsEventsWithAmbientRound) {
  RunJournal journal{16};
  journal.begin_round(3);
  journal.record(EventKind::kTimeout, 7, 2.0, 41);
  journal.record(EventKind::kRoundEnd);

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kTimeout);
  EXPECT_EQ(events[0].round, 3u);
  EXPECT_EQ(events[0].subject, 7u);
  EXPECT_DOUBLE_EQ(events[0].value, 2.0);
  EXPECT_EQ(events[0].logical, 41u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].kind, EventKind::kRoundEnd);
  EXPECT_EQ(events[1].subject, RunJournal::kNoSubject);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST(RunJournalTest, RingWrapsKeepingNewestAndCountingOverwrites) {
  RunJournal journal{8};
  for (std::uint32_t i = 0; i < 20; ++i) {
    journal.record(EventKind::kBid, i, static_cast<double>(i));
  }
  EXPECT_EQ(journal.size(), 8u);
  EXPECT_EQ(journal.capacity(), 8u);
  EXPECT_EQ(journal.total_recorded(), 20u);
  EXPECT_EQ(journal.overwritten(), 12u);

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and seq survives the overwrites: 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].subject, 12 + i);
  }
}

TEST(RunJournalTest, JsonlRoundTripsExactly) {
  RunJournal journal{32};
  journal.begin_round(1);
  journal.record(EventKind::kRoundStart);
  journal.record(EventKind::kRetry, 4, 2.0, 17);
  journal.record(EventKind::kStaleBid, 2, 0.5, 19);
  journal.begin_round(2);
  journal.record(EventKind::kFailover, 9, 123.25, 23);
  journal.record(EventKind::kDegradedRound, RunJournal::kNoSubject, 0.125, 29);

  std::ostringstream out;
  journal.write_jsonl(out);
  std::istringstream in{out.str()};
  const auto parsed = RunJournal::read_jsonl(in);
  EXPECT_EQ(parsed, journal.events());
}

TEST(RunJournalTest, ReadJsonlRejectsMalformedInput) {
  std::istringstream missing_kind{R"({"seq":0,"round":0,"value":1})" "\n"};
  EXPECT_THROW((void)RunJournal::read_jsonl(missing_kind), std::runtime_error);
  std::istringstream unknown_kind{
      R"({"event":"no_such_event","seq":0,"round":0,"logical":0,"value":0})" "\n"};
  EXPECT_THROW((void)RunJournal::read_jsonl(unknown_kind), std::runtime_error);
}

TEST(RunJournalTest, EventKindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(EventKind::kCustom); ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto back = event_kind_from(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(event_kind_from("bogus").has_value());
}

TEST(RunJournalTest, CsvHasHeaderAndOneLinePerEvent) {
  RunJournal journal{8};
  journal.record(EventKind::kBid, 1, 10.0);
  journal.record(EventKind::kSolve, 0, 99.0);
  std::ostringstream out;
  journal.write_csv(out);
  std::istringstream lines{out.str()};
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("event"), std::string::npos);
  EXPECT_NE(header.find("seq"), std::string::npos);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(RunJournalTest, SummaryTableAggregatesPerKind) {
  RunJournal journal{64};
  journal.begin_round(0);
  journal.record(EventKind::kRoundStart);
  journal.record(EventKind::kTimeout, 1, 1.0);
  journal.begin_round(4);
  journal.record(EventKind::kTimeout, 2, 1.0);
  const core::Table table = journal.summary_table();
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("timeout"), std::string::npos);
  EXPECT_NE(text.find("round_start"), std::string::npos);
  // First/last round of the timeout rows: 0 through 4.
  EXPECT_NE(text.find("0-4"), std::string::npos);
}

TEST(RunJournalTest, SeqStaysStrictlyMonotoneAcrossManyWraps) {
  RunJournal journal{8};
  for (std::uint32_t i = 0; i < 100; ++i) {
    journal.record(EventKind::kEpoch, i, static_cast<double>(i));
  }
  EXPECT_EQ(journal.total_recorded(), 100u);
  EXPECT_EQ(journal.overwritten(), 92u);
  const std::vector<Event> events = journal.events();
  ASSERT_EQ(events.size(), 8u);
  // The ring wrapped 12 times; seqs must still be dense and ascending,
  // ending at total - 1 — gaps or resets would make exported windows lie.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 92u + i);
  }
}

TEST(RunJournalTest, RestoreRoundTripsAWrappedWindowAndSeqSurvivesResume) {
  RunJournal original{8};
  original.begin_round(3);
  for (std::uint32_t i = 0; i < 20; ++i) {
    original.record(i % 2 == 0 ? EventKind::kEpoch : EventKind::kCheckpoint, i,
                    0.5 * i);
  }

  RunJournal resumed{8};
  ASSERT_TRUE(resumed
                  .restore(original.events(), original.total_recorded(),
                           original.current_round())
                  .ok());
  EXPECT_EQ(resumed.events(), original.events());
  EXPECT_EQ(resumed.total_recorded(), original.total_recorded());
  EXPECT_EQ(resumed.overwritten(), original.overwritten());
  EXPECT_EQ(resumed.current_round(), original.current_round());

  // Seq keeps counting from where the crash left off — strictly monotone
  // across the snapshot boundary, and both journals keep agreeing.
  original.record(EventKind::kResume, 99, 1.0);
  resumed.record(EventKind::kResume, 99, 1.0);
  EXPECT_EQ(resumed.events(), original.events());
  EXPECT_EQ(resumed.events().back().seq, 20u);
}

TEST(RunJournalTest, RestoreRejectsInconsistentWindows) {
  RunJournal source{8};
  for (std::uint32_t i = 0; i < 12; ++i) source.record(EventKind::kEpoch, i);
  const std::vector<Event> window = source.events();

  RunJournal target{8};
  // Window larger than this journal's capacity.
  EXPECT_FALSE(RunJournal{4}.restore(window, 12, 0).ok());
  // Window shorter than what total + capacity imply was retained.
  std::vector<Event> truncated{window.begin(), window.end() - 2};
  EXPECT_FALSE(target.restore(truncated, 12, 0).ok());
  // Tail seq disagreeing with total.
  EXPECT_FALSE(target.restore(window, 13, 0).ok());
  // Non-contiguous seqs inside the window.
  std::vector<Event> gapped = window;
  gapped[3].seq += 1;
  EXPECT_FALSE(target.restore(gapped, 12, 0).ok());
  // The untouched window restores fine afterwards (failed attempts did not
  // poison the journal).
  EXPECT_TRUE(target.restore(window, 12, 0).ok());
  EXPECT_EQ(target.events(), window);
}

}  // namespace
}  // namespace vdx::obs
