// RunJournal: ring wraparound, round stamping, JSONL round-trip, CSV, and
// the end-of-run summary table.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/journal.hpp"

namespace vdx::obs {
namespace {

TEST(RunJournalTest, RecordsEventsWithAmbientRound) {
  RunJournal journal{16};
  journal.begin_round(3);
  journal.record(EventKind::kTimeout, 7, 2.0, 41);
  journal.record(EventKind::kRoundEnd);

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kTimeout);
  EXPECT_EQ(events[0].round, 3u);
  EXPECT_EQ(events[0].subject, 7u);
  EXPECT_DOUBLE_EQ(events[0].value, 2.0);
  EXPECT_EQ(events[0].logical, 41u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].kind, EventKind::kRoundEnd);
  EXPECT_EQ(events[1].subject, RunJournal::kNoSubject);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST(RunJournalTest, RingWrapsKeepingNewestAndCountingOverwrites) {
  RunJournal journal{8};
  for (std::uint32_t i = 0; i < 20; ++i) {
    journal.record(EventKind::kBid, i, static_cast<double>(i));
  }
  EXPECT_EQ(journal.size(), 8u);
  EXPECT_EQ(journal.capacity(), 8u);
  EXPECT_EQ(journal.total_recorded(), 20u);
  EXPECT_EQ(journal.overwritten(), 12u);

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and seq survives the overwrites: 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].subject, 12 + i);
  }
}

TEST(RunJournalTest, JsonlRoundTripsExactly) {
  RunJournal journal{32};
  journal.begin_round(1);
  journal.record(EventKind::kRoundStart);
  journal.record(EventKind::kRetry, 4, 2.0, 17);
  journal.record(EventKind::kStaleBid, 2, 0.5, 19);
  journal.begin_round(2);
  journal.record(EventKind::kFailover, 9, 123.25, 23);
  journal.record(EventKind::kDegradedRound, RunJournal::kNoSubject, 0.125, 29);

  std::ostringstream out;
  journal.write_jsonl(out);
  std::istringstream in{out.str()};
  const auto parsed = RunJournal::read_jsonl(in);
  EXPECT_EQ(parsed, journal.events());
}

TEST(RunJournalTest, ReadJsonlRejectsMalformedInput) {
  std::istringstream missing_kind{R"({"seq":0,"round":0,"value":1})" "\n"};
  EXPECT_THROW((void)RunJournal::read_jsonl(missing_kind), std::runtime_error);
  std::istringstream unknown_kind{
      R"({"event":"no_such_event","seq":0,"round":0,"logical":0,"value":0})" "\n"};
  EXPECT_THROW((void)RunJournal::read_jsonl(unknown_kind), std::runtime_error);
}

TEST(RunJournalTest, EventKindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(EventKind::kCustom); ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto back = event_kind_from(to_string(kind));
    ASSERT_TRUE(back.has_value()) << to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(event_kind_from("bogus").has_value());
}

TEST(RunJournalTest, CsvHasHeaderAndOneLinePerEvent) {
  RunJournal journal{8};
  journal.record(EventKind::kBid, 1, 10.0);
  journal.record(EventKind::kSolve, 0, 99.0);
  std::ostringstream out;
  journal.write_csv(out);
  std::istringstream lines{out.str()};
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("event"), std::string::npos);
  EXPECT_NE(header.find("seq"), std::string::npos);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(RunJournalTest, SummaryTableAggregatesPerKind) {
  RunJournal journal{64};
  journal.begin_round(0);
  journal.record(EventKind::kRoundStart);
  journal.record(EventKind::kTimeout, 1, 1.0);
  journal.begin_round(4);
  journal.record(EventKind::kTimeout, 2, 1.0);
  const core::Table table = journal.summary_table();
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("timeout"), std::string::npos);
  EXPECT_NE(text.find("round_start"), std::string::npos);
  // First/last round of the timeout rows: 0 through 4.
  EXPECT_NE(text.find("0-4"), std::string::npos);
}

}  // namespace
}  // namespace vdx::obs
