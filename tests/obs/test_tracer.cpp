// SpanTracer: nesting/depth, the logical clock, capacity bounds, and the
// deterministic (wall-clock-free) JSONL export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/tracer.hpp"

namespace vdx::obs {
namespace {

TEST(SpanTracerTest, NestedSpansRecordParentAndDepth) {
  SpanTracer tracer;
  const auto outer = tracer.begin("round");
  const auto inner = tracer.begin("solve");
  tracer.end(inner);
  tracer.end(outer);
  const auto sibling = tracer.begin("accept");
  tracer.end(sibling);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(tracer.name(spans[0]), "round");
  EXPECT_EQ(spans[0].parent, UINT32_MAX);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(tracer.name(spans[1]), "solve");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(tracer.name(spans[2]), "accept");
  EXPECT_EQ(spans[2].parent, UINT32_MAX);
  for (const auto& span : spans) EXPECT_TRUE(span.closed);
  // seq pairs nest: open(round) < open(solve) < close(solve) < close(round).
  EXPECT_LT(spans[0].seq_open, spans[1].seq_open);
  EXPECT_LT(spans[1].seq_close, spans[0].seq_close);
}

TEST(SpanTracerTest, LogicalClockStampsOpenAndClose) {
  SpanTracer tracer;
  tracer.advance(10);
  const auto span = tracer.begin("step");
  tracer.advance(7);
  tracer.end(span);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].logical_open, 10u);
  EXPECT_EQ(tracer.spans()[0].logical_close, 17u);
  EXPECT_EQ(tracer.logical_now(), 17u);
}

TEST(SpanTracerTest, InstantIsZeroDurationAndClosed) {
  SpanTracer tracer;
  tracer.advance(5);
  tracer.instant("estimate");
  ASSERT_EQ(tracer.spans().size(), 1u);
  const auto& span = tracer.spans()[0];
  EXPECT_TRUE(span.closed);
  EXPECT_EQ(span.logical_open, 5u);
  EXPECT_EQ(span.logical_close, 5u);
}

TEST(SpanTracerTest, CapacityBoundsSpansAndCountsDrops) {
  SpanTracer tracer{2};
  const auto a = tracer.begin("a");
  const auto b = tracer.begin("b");
  const auto c = tracer.begin("c");  // over capacity: dropped
  EXPECT_EQ(c, 0u);
  tracer.end(c);  // no-op, must not disturb the open stack
  tracer.end(b);
  tracer.end(a);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_TRUE(tracer.spans()[0].closed);
  EXPECT_TRUE(tracer.spans()[1].closed);
}

TEST(SpanTracerTest, ScopedWithNullTracerIsNoOp) {
  {
    const SpanTracer::Scoped scope{nullptr, "nothing"};
  }
  SpanTracer tracer;
  {
    const SpanTracer::Scoped scope{&tracer, "real"};
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.name(tracer.spans()[0]), "real");
}

TEST(SpanTracerTest, DefaultJsonlIsDeterministicAndWallClockFree) {
  const auto run = [](SpanTracer& tracer) {
    const auto round = tracer.begin("round");
    tracer.advance(3);
    tracer.instant("estimate");
    const auto solve = tracer.begin("solve");
    tracer.advance(2);
    tracer.end(solve);
    tracer.end(round);
  };
  SpanTracer first;
  SpanTracer second;
  run(first);
  run(second);

  std::ostringstream a;
  std::ostringstream b;
  first.write_jsonl(a);
  second.write_jsonl(b);
  EXPECT_EQ(a.str(), b.str());
  // Two separately constructed tracers agree byte for byte only because the
  // default export carries no wall-clock fields.
  EXPECT_EQ(a.str().find("wall"), std::string::npos);

  std::ostringstream with_wall;
  first.write_jsonl(with_wall, /*include_wall=*/true);
  EXPECT_NE(with_wall.str().find("wall_open_s"), std::string::npos);
}

}  // namespace
}  // namespace vdx::obs
