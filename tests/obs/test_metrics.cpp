// MetricsRegistry: bucket boundaries, quantile estimates, label interning,
// handle semantics, deterministic exports, and thread safety.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace vdx::obs {
namespace {

TEST(MetricsBuckets, UnderflowAndEdgeValuesLandInBucketZero) {
  EXPECT_EQ(MetricsRegistry::bucket_index(0.0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(-5.0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(MetricsRegistry::kBucketMin / 2), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(std::nan("")), 0u);
  // kBucketMin itself is the first bounded bucket.
  EXPECT_EQ(MetricsRegistry::bucket_index(MetricsRegistry::kBucketMin), 1u);
}

TEST(MetricsBuckets, BoundsAndIndexAreConsistent) {
  for (std::size_t i = 1; i + 1 < MetricsRegistry::kBucketCount; ++i) {
    const double lower = MetricsRegistry::bucket_lower_bound(i);
    const double upper = MetricsRegistry::bucket_upper_bound(i);
    ASSERT_LT(lower, upper);
    // Each bucket's lower bound indexes back to that bucket, and its upper
    // bound is the next bucket's lower bound (half-open intervals).
    EXPECT_EQ(MetricsRegistry::bucket_index(lower), i) << "bucket " << i;
    EXPECT_DOUBLE_EQ(MetricsRegistry::bucket_upper_bound(i),
                     MetricsRegistry::bucket_lower_bound(i + 1));
    // 4 sub-buckets per octave: width ratio is 2^(1/4).
    EXPECT_NEAR(upper / lower, std::exp2(0.25), 1e-12);
  }
  // Everything enormous lands in the overflow bucket.
  EXPECT_EQ(MetricsRegistry::bucket_index(1e300),
            MetricsRegistry::kBucketCount - 1);
  EXPECT_TRUE(std::isinf(
      MetricsRegistry::bucket_upper_bound(MetricsRegistry::kBucketCount - 1)));
}

TEST(MetricsBuckets, IndexIsMonotoneInValue) {
  double v = MetricsRegistry::kBucketMin;
  std::size_t last = MetricsRegistry::bucket_index(v);
  for (int i = 0; i < 200; ++i) {
    v *= 1.31;
    const std::size_t index = MetricsRegistry::bucket_index(v);
    EXPECT_GE(index, last);
    last = index;
  }
}

TEST(MetricsHistogram, QuantilesWithinOneBucketOfExact) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram("latency");
  // 1..1000 ms, uniformly.
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.sum(), 500.5, 1e-9);
  // Log buckets at 2^(1/4) spacing: relative error below ~19% + interpolation.
  EXPECT_NEAR(h.quantile(0.50), 0.5, 0.5 * 0.20);
  EXPECT_NEAR(h.quantile(0.90), 0.9, 0.9 * 0.20);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.99 * 0.20);
  // Extremes clamp to the exact envelope.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(MetricsHistogram, SingleObservationIsExactAtEveryQuantile) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram("one");
  h.observe(0.125);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.125) << "q=" << q;
  }
}

TEST(MetricsRegistryTest, LabelInterningIsOrderInsensitive) {
  MetricsRegistry registry;
  const Counter a = registry.counter("reqs", {{"cdn", "A"}, {"region", "eu"}});
  const Counter b = registry.counter("reqs", {{"region", "eu"}, {"cdn", "A"}});
  const Counter c = registry.counter("reqs", {{"cdn", "B"}, {"region", "eu"}});
  a.add(2.0);
  b.add(3.0);
  c.add(10.0);
  // a and b resolved to the same cell; c did not.
  EXPECT_DOUBLE_EQ(a.value(), 5.0);
  EXPECT_DOUBLE_EQ(b.value(), 5.0);
  EXPECT_DOUBLE_EQ(c.value(), 10.0);
  EXPECT_EQ(registry.size(), 2u);

  const auto row = registry.find("reqs", {{"region", "eu"}, {"cdn", "A"}});
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->value, 5.0);
  EXPECT_FALSE(registry.find("reqs", {{"cdn", "Z"}}).has_value());
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistryTest, DefaultHandlesAreNoOpSinks) {
  const Counter counter;
  const Gauge gauge;
  const Histogram histogram;
  counter.add(42.0);
  gauge.set(42.0);
  histogram.observe(42.0);
  EXPECT_FALSE(counter.valid());
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, RowsAreSortedAndJsonlHonorsPrefix) {
  MetricsRegistry registry;
  registry.gauge("zz.last").set(1.0);
  registry.counter("aa.first").add(1.0);
  registry.counter("mm.mid", {{"k", "2"}}).add(1.0);
  registry.counter("mm.mid", {{"k", "1"}}).add(1.0);

  const auto rows = registry.rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "aa.first");
  EXPECT_EQ(rows[1].name, "mm.mid");
  EXPECT_EQ(rows[1].labels, (Labels{{"k", "1"}}));
  EXPECT_EQ(rows[2].labels, (Labels{{"k", "2"}}));
  EXPECT_EQ(rows[3].name, "zz.last");

  std::ostringstream out;
  registry.write_jsonl(out, "BENCH_JSON ");
  std::istringstream lines{out.str()};
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("BENCH_JSON {", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(MetricsRegistryTest, CsvHasHeaderAndOneRowPerMetric) {
  MetricsRegistry registry;
  registry.counter("a").add(1.0);
  registry.histogram("b").observe(2.0);
  std::ostringstream out;
  registry.write_csv(out);
  std::istringstream lines{out.str()};
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, "metric,labels,kind,value,count,sum,min,max,p50,p90,p99");
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(MetricsReadback, QuantileByNameMatchesHandleQuantile) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram("serve.round_ms", {{"mode", "sim"}});
  for (int i = 1; i <= 500; ++i) h.observe(static_cast<double>(i));
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(registry.quantile("serve.round_ms", q, {{"mode", "sim"}}),
                     h.quantile(q))
        << "q=" << q;
  }
}

TEST(MetricsReadback, MissingWrongKindAndEmptyNeverThrow) {
  MetricsRegistry registry;
  // Missing name: 0 / nullopt, not a throw (readback is a no-op sink).
  EXPECT_DOUBLE_EQ(registry.quantile("no.such.metric", 0.99), 0.0);
  EXPECT_FALSE(registry.histogram_summary("no.such.metric").has_value());
  // Registered but not a histogram.
  (void)registry.counter("serve.rounds");
  EXPECT_DOUBLE_EQ(registry.quantile("serve.rounds", 0.5), 0.0);
  EXPECT_FALSE(registry.histogram_summary("serve.rounds").has_value());
  // Registered histogram with no observations: zeroed summary, count 0.
  (void)registry.histogram("serve.empty");
  EXPECT_DOUBLE_EQ(registry.quantile("serve.empty", 0.5), 0.0);
  const auto summary = registry.histogram_summary("serve.empty");
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->count, 0u);
  EXPECT_DOUBLE_EQ(summary->min, 0.0);
  EXPECT_DOUBLE_EQ(summary->max, 0.0);
  EXPECT_DOUBLE_EQ(summary->p999, 0.0);
}

TEST(MetricsReadback, SingleBucketInterpolationStaysInsideMinMaxEnvelope) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram("one.bucket");
  // All observations land in the same log bucket: interpolation across the
  // bucket would overshoot, but the [min, max] clamp must contain it.
  h.observe(1.00);
  h.observe(1.01);
  h.observe(1.02);
  const auto summary = registry.histogram_summary("one.bucket");
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->count, 3u);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.999, 1.0}) {
    const double estimate = registry.quantile("one.bucket", q);
    EXPECT_GE(estimate, 1.00) << "q=" << q;
    EXPECT_LE(estimate, 1.02) << "q=" << q;
  }
  // q extremes are exact: clamped to the tracked min/max, not bucket edges.
  EXPECT_DOUBLE_EQ(registry.quantile("one.bucket", 0.0), 1.00);
  EXPECT_DOUBLE_EQ(registry.quantile("one.bucket", 1.0), 1.02);
}

TEST(MetricsReadback, SummaryQuantilesAreMonotoneAndP999CoversTail) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram("tail");
  // 994 fast rounds and 6 slow outliers (0.6% tail): p99 must stay in the
  // body while p999 reaches into the outliers' bucket.
  for (int i = 0; i < 994; ++i) h.observe(0.001);
  for (int i = 0; i < 6; ++i) h.observe(10.0);
  const auto summary = registry.histogram_summary("tail");
  ASSERT_TRUE(summary.has_value());
  EXPECT_LE(summary->p50, summary->p90);
  EXPECT_LE(summary->p90, summary->p99);
  EXPECT_LE(summary->p99, summary->p999);
  EXPECT_LT(summary->p99, 1.0);
  EXPECT_GT(summary->p999, 1.0);
  EXPECT_DOUBLE_EQ(summary->max, 10.0);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  const Counter counter = registry.counter("hits");
  const Histogram histogram = registry.histogram("obs");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1.0);
        histogram.observe(1e-3);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace vdx::obs
