// Mid-serve checkpoint/resume equivalence (the serving lane of the
// crash-consistency contract): halt a checkpointing serve partway, resume
// from the latest snapshot with a fresh daemon, and assert the continued
// decision stream and journal are byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/codec.hpp"
#include "serve/daemon.hpp"
#include "serve_util.hpp"
#include "state/store.hpp"

namespace vdx::serve {
namespace {

using test::HarnessOptions;
using test::RunOutput;
using test::TempDir;
using test::run_serve;

/// Decision lines of `decisions` with round >= first_round, re-serialized.
std::string decision_tail(const std::string& decisions,
                          std::uint64_t first_round) {
  std::ostringstream tail;
  std::istringstream in{decisions};
  std::string line;
  while (std::getline(in, line)) {
    const auto parsed = parse_decision(line);
    EXPECT_TRUE(parsed.ok()) << parsed.error().message;
    if (parsed.ok() && parsed.value().round >= first_round) {
      tail << line << '\n';
    }
  }
  return tail.str();
}

/// Journals must agree event-for-event except the one seq slot where the
/// uninterrupted run recorded kCheckpoint and the resumed run kResume (the
/// same convention as the streaming recovery drill).
void expect_journal_tail_identical(const std::vector<obs::Event>& full,
                                   const std::vector<obs::Event>& resumed) {
  ASSERT_EQ(full.size(), resumed.size());
  std::size_t differences = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == resumed[i]) continue;
    ++differences;
    EXPECT_EQ(full[i].kind, obs::EventKind::kCheckpoint);
    EXPECT_EQ(resumed[i].kind, obs::EventKind::kResume);
    obs::Event renamed = full[i];
    renamed.kind = obs::EventKind::kResume;
    EXPECT_EQ(renamed, resumed[i])
        << "event " << i << " differs beyond the checkpoint/resume kind";
  }
  EXPECT_LE(differences, 1u);
}

struct ResumedRun {
  core::Result<ServeReport> result{
      core::Error{core::Errc::kNotReady, "not run"}};
  std::string decisions;
  std::vector<obs::Event> journal;
  std::uint64_t resumed_round = 0;
};

ResumedRun resume_from_dir(const HarnessOptions& options) {
  ResumedRun out;
  const state::CheckpointStore store{options.checkpoint_dir};
  auto loaded = store.load_latest(
      [](std::span<const std::uint8_t>) { return core::ok_status(); });
  if (!loaded.ok()) {
    out.result = core::Result<ServeReport>{loaded.error()};
    return out;
  }
  out.resumed_round = loaded.value().epoch;

  GeneratorFeed feed = test::make_feed(options);
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  const obs::Observer obs{&metrics, &tracer, &journal};
  std::ostringstream decisions;
  ServeDaemon daemon{test::test_scenario(), feed,
                     test::config_for(options, obs, &decisions)};
  out.result = daemon.resume(loaded.value().bytes);
  out.decisions = decisions.str();
  out.journal = journal.events();
  return out;
}

TEST(ServeRecovery, HaltResumeContinuesByteIdentically) {
  TempDir full_dir{"resume_full"};
  TempDir crash_dir{"resume_crash"};

  HarnessOptions options;
  options.budget_mbps = 150.0;  // sheds must survive the resume too
  options.checkpoint_every = 7;
  options.checkpoint_dir = full_dir.path();
  const RunOutput full = run_serve(options);
  ASSERT_GT(full.report.checkpoints_written, 0u);

  options.checkpoint_dir = crash_dir.path();
  options.halt_after = 17;
  const RunOutput crashed = run_serve(options);
  EXPECT_TRUE(crashed.report.halted);
  EXPECT_EQ(crashed.report.rounds, 17u);

  options.halt_after = 0;
  const ResumedRun resumed = resume_from_dir(options);
  ASSERT_TRUE(resumed.result.ok()) << resumed.result.error().message;
  EXPECT_EQ(resumed.resumed_round, 14u);  // latest multiple of 7 before 17

  // The resumed decision stream replays rounds 14.. exactly as the
  // uninterrupted run emitted them.
  EXPECT_EQ(resumed.decisions, decision_tail(full.decisions, 14));
  expect_journal_tail_identical(full.journal, resumed.journal);

  // Cross-resume accumulators cover the whole serve, not just the tail.
  EXPECT_EQ(resumed.result.value().rounds, full.report.rounds);
  EXPECT_EQ(resumed.result.value().decision_rounds, full.report.decision_rounds);
  EXPECT_EQ(resumed.result.value().arrivals, full.report.arrivals);
  EXPECT_EQ(resumed.result.value().shed_mbps_total, full.report.shed_mbps_total);
  EXPECT_EQ(resumed.result.value().shed_rounds, full.report.shed_rounds);
}

TEST(ServeRecovery, ResumeRejectsMismatchedFingerprint) {
  TempDir dir{"resume_fingerprint"};
  HarnessOptions options;
  options.checkpoint_every = 7;
  options.checkpoint_dir = dir.path();
  options.halt_after = 10;
  (void)run_serve(options);

  options.halt_after = 0;
  options.budget_mbps = 999.0;  // config change -> different serving run
  HarnessOptions mismatched = options;
  mismatched.seed = 12;
  const ResumedRun resumed = resume_from_dir(mismatched);
  ASSERT_FALSE(resumed.result.ok());
  EXPECT_EQ(resumed.result.error().code, core::Errc::kInvalidArgument);
}

TEST(ServeRecovery, ResumeRejectsLiveFeed) {
  TempDir dir{"resume_live"};
  HarnessOptions options;
  options.checkpoint_every = 7;
  options.checkpoint_dir = dir.path();
  options.halt_after = 10;
  const RunOutput crashed = run_serve(options);
  ASSERT_TRUE(crashed.report.halted);

  const state::CheckpointStore store{dir.path()};
  auto loaded = store.load_latest(
      [](std::span<const std::uint8_t>) { return core::ok_status(); });
  ASSERT_TRUE(loaded.ok());

  std::istringstream empty_stream;
  JsonlFeed live{empty_stream};
  ServeDaemon daemon{test::test_scenario(), live,
                     test::config_for(options, {}, nullptr)};
  const auto resumed = daemon.resume(loaded.value().bytes);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, core::Errc::kInvalidArgument);
}

TEST(ServeRecovery, ResumeRejectsCorruptSnapshot) {
  TempDir dir{"resume_corrupt"};
  HarnessOptions options;
  options.checkpoint_every = 7;
  options.checkpoint_dir = dir.path();
  options.halt_after = 10;
  (void)run_serve(options);

  const state::CheckpointStore store{dir.path()};
  auto loaded = store.load_latest(
      [](std::span<const std::uint8_t>) { return core::ok_status(); });
  ASSERT_TRUE(loaded.ok());
  std::vector<std::uint8_t> bytes = loaded.value().bytes;
  bytes[bytes.size() / 2] ^= 0xFF;

  options.halt_after = 0;
  GeneratorFeed feed = test::make_feed(options);
  ServeDaemon daemon{test::test_scenario(), feed,
                     test::config_for(options, {}, nullptr)};
  const auto resumed = daemon.resume(bytes);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.error().code, core::Errc::kCorruptSnapshot);
}

}  // namespace
}  // namespace vdx::serve
