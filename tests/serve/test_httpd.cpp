// /metrics endpoint round-trip over a real socket: scrape the registry
// through the daemon's HTTP responder and parse every line back.
#include "serve/httpd.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace vdx::serve {
namespace {

/// One blocking HTTP/1.0 request against 127.0.0.1:port; returns the whole
/// response (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string{} : response.substr(at + 4);
}

TEST(ServeHttpd, MetricsScrapeRoundTripsEveryLine) {
  obs::MetricsRegistry registry;
  registry.counter("serve.rounds").add(42);
  registry.gauge("serve.active_sessions").set(17);
  auto latency = registry.histogram("serve.round_ms");
  for (int i = 1; i <= 100; ++i) latency.observe(static_cast<double>(i));

  Httpd httpd{registry, 0};
  ASSERT_GT(httpd.port(), 0);

  const std::string response = http_get(httpd.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);

  const std::string body = body_of(response);
  EXPECT_NE(body.find("serve_rounds 42"), std::string::npos);
  EXPECT_NE(body.find("serve_active_sessions 17"), std::string::npos);
  EXPECT_NE(body.find("serve_round_ms_count 100"), std::string::npos);

  // Every non-empty line is `name[{labels}] value` with a finite value —
  // the round-trip-parse half of the contract.
  std::istringstream lines{body};
  std::string line;
  std::size_t parsed = 0;
  bool saw_quantile = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    EXPECT_TRUE(std::isfinite(value)) << line;
    EXPECT_FALSE(name.empty());
    saw_quantile = saw_quantile ||
                   name.find("quantile=\"0.999\"") != std::string::npos;
    ++parsed;
  }
  EXPECT_GE(parsed, 7u);  // counter + gauge + count/sum + >=3 quantiles
  EXPECT_TRUE(saw_quantile);
  EXPECT_EQ(httpd.requests(), 1u);
}

TEST(ServeHttpd, HealthzAndUnknownTargets) {
  obs::MetricsRegistry registry;
  Httpd httpd{registry, 0};
  const std::string healthz = http_get(httpd.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(healthz), "ok\n");
  const std::string missing = http_get(httpd.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_EQ(httpd.requests(), 2u);
  httpd.stop();
  httpd.stop();  // idempotent
}

TEST(ServeHttpd, EmptyRegistryStillServes) {
  obs::MetricsRegistry registry;
  Httpd httpd{registry, 0};
  const std::string response = http_get(httpd.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

}  // namespace
}  // namespace vdx::serve
