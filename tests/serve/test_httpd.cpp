// /metrics endpoint round-trip over a real socket: scrape the registry
// through the daemon's HTTP responder and parse every line back.
#include "serve/httpd.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace vdx::serve {
namespace {

/// One blocking HTTP/1.0 request against 127.0.0.1:port; returns the whole
/// response (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string{} : response.substr(at + 4);
}

TEST(ServeHttpd, MetricsScrapeRoundTripsEveryLine) {
  obs::MetricsRegistry registry;
  registry.counter("serve.rounds").add(42);
  registry.gauge("serve.active_sessions").set(17);
  auto latency = registry.histogram("serve.round_ms");
  for (int i = 1; i <= 100; ++i) latency.observe(static_cast<double>(i));

  Httpd httpd{registry, 0};
  ASSERT_GT(httpd.port(), 0);

  const std::string response = http_get(httpd.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);

  const std::string body = body_of(response);
  EXPECT_NE(body.find("serve_rounds 42"), std::string::npos);
  EXPECT_NE(body.find("serve_active_sessions 17"), std::string::npos);
  EXPECT_NE(body.find("serve_round_ms_count 100"), std::string::npos);

  // Every non-empty line is `name[{labels}] value` with a finite value —
  // the round-trip-parse half of the contract.
  std::istringstream lines{body};
  std::string line;
  std::size_t parsed = 0;
  bool saw_quantile = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    char* end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    EXPECT_TRUE(std::isfinite(value)) << line;
    EXPECT_FALSE(name.empty());
    saw_quantile = saw_quantile ||
                   name.find("quantile=\"0.999\"") != std::string::npos;
    ++parsed;
  }
  EXPECT_GE(parsed, 7u);  // counter + gauge + count/sum + >=3 quantiles
  EXPECT_TRUE(saw_quantile);
  EXPECT_EQ(httpd.requests(), 1u);
}

TEST(ServeHttpd, HealthzAndUnknownTargets) {
  obs::MetricsRegistry registry;
  Httpd httpd{registry, 0};
  const std::string healthz = http_get(httpd.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(healthz), "ok\n");
  const std::string missing = http_get(httpd.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_EQ(httpd.requests(), 2u);
  httpd.stop();
  httpd.stop();  // idempotent
}

// /healthz with a HealthState attached surfaces the live lifecycle and
// brownout verdict instead of the legacy hard-coded "ok" — and tracks
// writer-side updates across scrapes of the same server.
TEST(ServeHttpd, HealthzReflectsLifecycleAndBrownout) {
  obs::MetricsRegistry registry;
  HealthState health;
  Httpd httpd{registry, 0, &health};
  ASSERT_GT(httpd.port(), 0);

  // Fresh state: healthy but not yet serving.
  EXPECT_EQ(body_of(http_get(httpd.port(), "/healthz")),
            "ok lifecycle=starting brownout_step=0 open_breakers=0\n");

  health.set_lifecycle(Lifecycle::kServing);
  health.set_brownout(resilience::Health::kDegraded, 2);
  health.set_open_breakers(1);
  EXPECT_EQ(body_of(http_get(httpd.port(), "/healthz")),
            "degraded lifecycle=serving brownout_step=2 open_breakers=1\n");

  health.set_brownout(resilience::Health::kCritical, 3);
  const std::string critical = body_of(http_get(httpd.port(), "/healthz"));
  EXPECT_EQ(critical.substr(0, critical.find(' ')), "critical");

  health.set_brownout(resilience::Health::kOk, 0);
  health.set_open_breakers(0);
  health.set_lifecycle(Lifecycle::kStopped);
  EXPECT_EQ(body_of(http_get(httpd.port(), "/healthz")),
            "ok lifecycle=stopped brownout_step=0 open_breakers=0\n");
  EXPECT_EQ(httpd.requests(), 4u);
}

TEST(ServeHttpd, EmptyRegistryStillServes) {
  obs::MetricsRegistry registry;
  Httpd httpd{registry, 0};
  const std::string response = http_get(httpd.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

// Regression: the response loop used to abort on any write() that returned
// -1 — including EINTR — silently truncating large /metrics bodies; a peer
// that disconnected mid-send could even raise a fatal SIGPIPE. Scrape a
// multi-megabyte body through a deliberately tiny client receive buffer
// (forcing the server into many short, blockable writes) while an interval
// timer peppers the serve thread with signals, and require every byte.
TEST(ServeHttpd, LargeScrapeSurvivesSignalsAndShortWrites) {
  obs::MetricsRegistry registry;
  // ~50k series => a body well past any default socket buffer.
  for (int i = 0; i < 50000; ++i) {
    registry.counter("serve.slow_scrape_" + std::to_string(i)).add(i);
  }
  Httpd httpd{registry, 0};
  ASSERT_GT(httpd.port(), 0);

  // The serve thread inherited an unblocked SIGALRM at construction; block
  // it here so every timer tick is delivered to the serve thread, landing
  // mid-read or mid-send.
  struct sigaction action {};
  action.sa_handler = [](int) {};
  // No SA_RESTART: the whole point is to surface EINTR to the server.
  sigemptyset(&action.sa_mask);
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGALRM, &action, &previous), 0);
  sigset_t block, old_mask;
  sigemptyset(&block);
  sigaddset(&block, SIGALRM);
  ASSERT_EQ(pthread_sigmask(SIG_BLOCK, &block, &old_mask), 0);
  itimerval timer{};
  timer.it_interval = {0, 2000};  // every 2ms
  timer.it_value = {0, 2000};
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, nullptr), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;  // keep the server's sends short
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(httpd.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // Drain slowly so the server's socket buffer stays full and its writes
  // keep blocking (prime EINTR territory).
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
    ::usleep(200);
  }
  ::close(fd);

  const itimerval disarm{};
  setitimer(ITIMER_REAL, &disarm, nullptr);
  sigaction(SIGALRM, &previous, nullptr);
  pthread_sigmask(SIG_SETMASK, &old_mask, nullptr);

  // The advertised length and the delivered body must agree exactly.
  const std::size_t header_at = response.find("Content-Length: ");
  ASSERT_NE(header_at, std::string::npos);
  const std::size_t advertised = std::strtoull(
      response.c_str() + header_at + std::string{"Content-Length: "}.size(),
      nullptr, 10);
  const std::string body = body_of(response);
  EXPECT_GT(advertised, 1u << 20);  // the scrape really was multi-megabyte
  EXPECT_EQ(body.size(), advertised);
  EXPECT_NE(body.find("serve_slow_scrape_49999 49999"), std::string::npos);
}

}  // namespace
}  // namespace vdx::serve
