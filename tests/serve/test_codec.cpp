// Serving wire codec: arrival/decision JSONL round-trips exactly, and
// hostile lines fail with typed errors (never exceptions) so the daemon's
// stdin feed can count-and-skip them.
#include "serve/codec.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/feed.hpp"

namespace vdx::serve {
namespace {

trace::Session sample_session() {
  trace::Session session;
  session.id = trace::SessionId{42};
  session.arrival_s = 12.625;
  session.video = trace::VideoId{7};
  session.bitrate_mbps = 2.35;
  session.duration_s = 301.5;
  session.city = trace::CityId{19};
  session.as_number = 64500;
  return session;
}

TEST(ServeCodec, ArrivalLineRoundTripsExactly) {
  const trace::Session session = sample_session();
  std::ostringstream out;
  write_arrival(out, session);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  const auto parsed = parse_arrival(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().id.value(), session.id.value());
  EXPECT_EQ(parsed.value().arrival_s, session.arrival_s);
  EXPECT_EQ(parsed.value().video.value(), session.video.value());
  EXPECT_EQ(parsed.value().bitrate_mbps, session.bitrate_mbps);
  EXPECT_EQ(parsed.value().duration_s, session.duration_s);
  EXPECT_EQ(parsed.value().city.value(), session.city.value());
  EXPECT_EQ(parsed.value().as_number, session.as_number);
}

TEST(ServeCodec, DecisionLineRoundTripsExactly) {
  DecisionLine line;
  line.round = 17;
  line.active_sessions = 240;
  line.demand_mbps = 812.4375;
  line.admitted_mbps = 700.25;
  line.shed_mbps = 112.1875;
  line.shed_clients = 31;
  line.mean_score = 23.84;
  line.mean_cost = 1.0625;
  line.logical_ticks = 3;

  std::ostringstream out;
  write_decision(out, line);
  const auto parsed = parse_decision(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), line);
}

TEST(ServeCodec, MalformedArrivalLinesFailTypedNeverThrow) {
  const std::vector<std::string> hostile{
      "",
      "not json at all",
      R"({"id":1,"arrival_s":0.5,"bitrate_mbps":2.0,"duration_s":30})",  // no city
      R"({"id":1,"arrival_s":"soon","bitrate_mbps":2.0,"duration_s":30,"city":3})",
      R"({"id":1,"arrival_s":-4,"bitrate_mbps":2.0,"duration_s":30,"city":3})",
      R"({"id":1,"arrival_s":0.5,"bitrate_mbps":0,"duration_s":30,"city":3})",
      R"({"id":1,"arrival_s":0.5,"bitrate_mbps":2.0,"duration_s":-1,"city":3})",
      R"({"id":99999999999,"arrival_s":0.5,"bitrate_mbps":2,"duration_s":3,"city":3})",
      R"({"id":1,"arrival_s":inf,"bitrate_mbps":2.0,"duration_s":30,"city":3})",
  };
  for (const std::string& line : hostile) {
    const auto parsed = parse_arrival(line);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << line;
    EXPECT_EQ(parsed.error().code, core::Errc::kCorruptFrame) << line;
  }
}

TEST(ServeCodec, JsonlFeedSkipsMalformedLinesAndKeepsServing) {
  std::istringstream in{
      R"({"id":1,"arrival_s":1,"bitrate_mbps":2,"duration_s":60,"city":3})"
      "\n"
      "garbage line\n"
      R"({"id":2,"arrival_s":2,"bitrate_mbps":1.5,"duration_s":60,"city":4})"
      "\n"
      R"({"id":3,"arrival_s":900,"bitrate_mbps":1,"duration_s":60,"city":4})"
      "\n"};
  JsonlFeed feed{in};
  EXPECT_FALSE(feed.seekable());

  const auto first = feed.next_until(10.0);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].id.value(), 1u);
  EXPECT_EQ(first[1].id.value(), 2u);
  EXPECT_EQ(feed.malformed(), 1u);
  EXPECT_FALSE(feed.exhausted());

  const auto second = feed.next_until(1000.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id.value(), 3u);
  EXPECT_TRUE(feed.exhausted());
  EXPECT_EQ(feed.consumed(), 3u);
  EXPECT_THROW(feed.seek(0), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::serve
