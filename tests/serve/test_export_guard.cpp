// ExportGuard abnormal-exit drill: kill the daemon mid-round with an
// injected throw and assert the guard's unwinding flush still leaves a
// well-formed JSONL journal tail on disk.
#include "serve/export_guard.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "serve/daemon.hpp"
#include "serve_util.hpp"

namespace vdx::serve {
namespace {

using test::HarnessOptions;
using test::TempDir;

TEST(ExportGuard, CrashMidRoundStillWritesWellFormedJournal) {
  TempDir dir{"export_crash"};
  const auto journal_path = dir.path() / "journal.jsonl";
  const auto metrics_path = dir.path() / "metrics.jsonl";

  HarnessOptions options;
  options.throw_after = 5;

  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  const obs::Observer obs{&metrics, &tracer, &journal};
  {
    ExportGuard guard{{metrics_path, journal_path, {}}, obs};
    GeneratorFeed feed = test::make_feed(options);
    ServeDaemon daemon{test::test_scenario(), feed,
                       test::config_for(options, obs, nullptr)};
    EXPECT_THROW((void)daemon.run(), std::runtime_error);
    // guard destructs here, mid-unwind as far as the run is concerned
  }

  // The journal tail must parse as JSONL, event for event — not truncated
  // mid-line, not empty.
  std::ifstream in{journal_path};
  ASSERT_TRUE(in.is_open());
  const std::vector<obs::Event> events = obs::RunJournal::read_jsonl(in);
  EXPECT_FALSE(events.empty());
  EXPECT_EQ(events.size(), journal.events().size());

  std::ifstream metrics_in{metrics_path};
  ASSERT_TRUE(metrics_in.is_open());
  std::size_t lines = 0;
  for (std::string line; std::getline(metrics_in, line);) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++lines;
  }
  EXPECT_GT(lines, 0u);
}

TEST(ExportGuard, FlushIsIdempotentAndEagerFlushDisarmsDestructor) {
  TempDir dir{"export_idempotent"};
  const auto journal_path = dir.path() / "journal.jsonl";
  obs::RunJournal journal;
  obs::Observer obs;
  obs.journal = &journal;
  journal.record(obs::EventKind::kCustom, obs::RunJournal::kNoSubject, 1.0);

  ExportGuard guard{{{}, journal_path, {}}, obs};
  guard.flush();
  EXPECT_TRUE(guard.flushed());
  EXPECT_TRUE(guard.errors().empty());

  // A record landing after the flush must not be picked up by the
  // destructor — the flush is one-shot by design.
  journal.record(obs::EventKind::kCustom, obs::RunJournal::kNoSubject, 2.0);
  guard.flush();
  std::ifstream in{journal_path};
  const std::vector<obs::Event> events = obs::RunJournal::read_jsonl(in);
  EXPECT_EQ(events.size(), 1u);
}

TEST(ExportGuard, CollectsErrorsInsteadOfThrowing) {
  TempDir dir{"export_errors"};
  // The parent "directory" is a regular file, so the atomic write must fail
  // and the failure must surface via errors(), never an exception.
  const auto blocker = dir.path() / "blocker";
  { std::ofstream touch{blocker}; }
  const auto unwritable = blocker / "journal.jsonl";

  obs::RunJournal journal;
  obs::Observer obs;
  obs.journal = &journal;
  journal.record(obs::EventKind::kCustom, obs::RunJournal::kNoSubject, 1.0);

  ExportGuard guard{{{}, unwritable, {}}, obs};
  guard.flush();
  ASSERT_EQ(guard.errors().size(), 1u);
  EXPECT_NE(guard.errors()[0].find(unwritable.string()), std::string::npos);
}

TEST(ExportGuard, NullSinksAndEmptyPathsAreSkipped) {
  ExportGuard guard{{{}, {}, {}}, obs::Observer{}};
  guard.flush();
  EXPECT_TRUE(guard.errors().empty());
}

}  // namespace
}  // namespace vdx::serve
