// Shared fixtures for the serve tests: a small cached scenario, a scratch
// directory, and a one-call daemon harness that captures the run's decision
// lines, journal, and report.
#pragma once

#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/observe.hpp"
#include "serve/daemon.hpp"
#include "serve/feed.hpp"
#include "sim/scenario.hpp"

namespace vdx::serve::test {

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vdx_serve_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// One shared world/catalog for every serve test (scenario construction
/// dominates test wall time; the daemon never mutates it).
inline const sim::Scenario& test_scenario() {
  static const sim::Scenario scenario = [] {
    sim::ScenarioConfig config;
    config.trace.session_count = 1'500;
    config.seed = 11;
    return sim::Scenario::build(config);
  }();
  return scenario;
}

struct HarnessOptions {
  std::size_t sessions = 600;
  std::uint64_t seed = 11;
  /// 120s rounds over the 3600s trace horizon -> 30 rounds per run.
  double round_s = 120.0;
  double budget_mbps = 0.0;
  std::size_t queue_capacity = 0;
  std::size_t checkpoint_every = 0;
  std::filesystem::path checkpoint_dir;
  std::uint64_t halt_after = 0;
  std::uint64_t throw_after = 0;
  /// Last-mile hook over the assembled ServeConfig (resilience knobs, fault
  /// filesystems, health sinks, round hooks) before the daemon is built.
  std::function<void(ServeConfig&)> customize;
};

struct RunOutput {
  ServeReport report;
  std::string decisions;
  std::string journal_jsonl;
  std::vector<obs::Event> journal;
};

inline state::RunFingerprint fingerprint_for(const HarnessOptions& options) {
  state::RunFingerprint fingerprint;
  fingerprint.seed = options.seed;
  fingerprint.design = kDaemonDesign;
  fingerprint.broker_sessions = options.sessions;
  fingerprint.duration_s = 3600.0;
  fingerprint.epoch_s = options.round_s;
  fingerprint.config_hash = 0xF00D;
  return fingerprint;
}

inline GeneratorFeed make_feed(const HarnessOptions& options) {
  trace::TraceConfig trace;
  trace.session_count = options.sessions;
  core::Rng root{options.seed};
  core::Rng rng = root.fork("stream-trace");
  return GeneratorFeed{test_scenario().world(), trace, rng};
}

inline ServeConfig config_for(const HarnessOptions& options, obs::Observer obs,
                              std::ostream* decisions) {
  ServeConfig config;
  config.round_s = options.round_s;
  config.queue_capacity = options.queue_capacity;
  config.checkpoint_every_rounds = options.checkpoint_every;
  config.checkpoint_dir = options.checkpoint_dir;
  config.halt_after_rounds = options.halt_after;
  config.throw_after_rounds = options.throw_after;
  config.exchange.overload.demand_budget_mbps = options.budget_mbps;
  config.fingerprint = fingerprint_for(options);
  config.obs = obs;
  config.decisions = decisions;
  if (options.customize) options.customize(config);
  return config;
}

/// Runs a whole serve and captures every deterministic output.
inline RunOutput run_serve(const HarnessOptions& options) {
  GeneratorFeed feed = make_feed(options);
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  const obs::Observer obs{&metrics, &tracer, &journal};
  std::ostringstream decisions;
  ServeDaemon daemon{test_scenario(), feed,
                     config_for(options, obs, &decisions)};
  RunOutput output;
  output.report = daemon.run();
  output.decisions = decisions.str();
  std::ostringstream journal_out;
  journal.write_jsonl(journal_out);
  output.journal_jsonl = journal_out.str();
  output.journal = journal.events();
  return output;
}

}  // namespace vdx::serve::test
