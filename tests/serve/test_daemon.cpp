// ServeDaemon acceptance: same-seed byte-identity of every deterministic
// output, backpressure monotonicity under rising offered load, and the
// arrival-queue door bound.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "serve/codec.hpp"
#include "serve_util.hpp"

namespace vdx::serve {
namespace {

using test::HarnessOptions;
using test::RunOutput;
using test::run_serve;

std::vector<DecisionLine> parse_lines(const std::string& decisions) {
  std::vector<DecisionLine> lines;
  std::istringstream in{decisions};
  std::string line;
  while (std::getline(in, line)) {
    const auto parsed = parse_decision(line);
    EXPECT_TRUE(parsed.ok()) << parsed.error().message << ": " << line;
    if (parsed.ok()) lines.push_back(parsed.value());
  }
  return lines;
}

TEST(ServeDaemon, SameSeedRunsAreByteIdentical) {
  HarnessOptions options;
  options.budget_mbps = 150.0;  // exercise the shed path in the comparison
  const RunOutput first = run_serve(options);
  const RunOutput second = run_serve(options);

  ASSERT_FALSE(first.decisions.empty());
  EXPECT_EQ(first.decisions, second.decisions);
  EXPECT_EQ(first.journal_jsonl, second.journal_jsonl);
  EXPECT_EQ(first.report.decision_rounds, second.report.decision_rounds);
  EXPECT_EQ(first.report.shed_mbps_total, second.report.shed_mbps_total);
  // Wall-clock latency is the one legitimate divergence; the logical-tick
  // ledger inside the decision lines already matched byte-for-byte above.
}

TEST(ServeDaemon, BackpressureIsMonotoneInOfferedLoad) {
  // Calibrate the round budget off an unthrottled baseline: 1.5x its
  // busiest round fits all of 1x under budget and overflows at 2x/4x.
  HarnessOptions options;
  const RunOutput unthrottled = run_serve(options);
  double max_demand = 0.0;
  for (const DecisionLine& line : parse_lines(unthrottled.decisions)) {
    max_demand = std::max(max_demand, line.demand_mbps);
  }
  ASSERT_GT(max_demand, 0.0);
  const double budget = 1.5 * max_demand;

  std::vector<double> sheds;
  for (const std::size_t sessions : {600u, 1200u, 2400u}) {
    HarnessOptions point = options;
    point.sessions = sessions;
    point.budget_mbps = budget;
    const RunOutput run = run_serve(point);
    for (const DecisionLine& line : parse_lines(run.decisions)) {
      // Admission control is a hard bound, not advisory: what the round
      // prices never exceeds the budget.
      EXPECT_LE(line.admitted_mbps, budget + 1e-9);
      EXPECT_NEAR(line.admitted_mbps + line.shed_mbps, line.demand_mbps, 1e-6);
    }
    sheds.push_back(run.report.shed_mbps_total);
  }
  EXPECT_EQ(sheds[0], 0.0);  // at baseline load the budget never binds
  EXPECT_GT(sheds[2], 0.0);  // at 4x it always does
  EXPECT_LE(sheds[0], sheds[1]);
  EXPECT_LE(sheds[1], sheds[2]);
}

TEST(ServeDaemon, QueueCapacityTurnsAwayArrivalsAtTheDoor) {
  HarnessOptions options;
  options.sessions = 1200;
  options.queue_capacity = 40;
  const RunOutput bounded = run_serve(options);

  EXPECT_GT(bounded.report.queue_dropped, 0u);
  EXPECT_LE(bounded.report.peak_active_sessions, 40u);
  const bool journaled_admit = std::any_of(
      bounded.journal.begin(), bounded.journal.end(), [](const obs::Event& e) {
        return e.kind == obs::EventKind::kAdmit;
      });
  EXPECT_TRUE(journaled_admit);

  // The door bound composes with (and precedes) the exchange budget: the
  // same run without the bound admits strictly more.
  HarnessOptions unbounded = options;
  unbounded.queue_capacity = 0;
  const RunOutput free_run = run_serve(unbounded);
  EXPECT_EQ(free_run.report.queue_dropped, 0u);
  EXPECT_GT(free_run.report.peak_active_sessions,
            bounded.report.peak_active_sessions);
}

TEST(ServeDaemon, ReportAccountsEveryRoundAndArrival) {
  HarnessOptions options;
  const RunOutput run = run_serve(options);
  EXPECT_EQ(run.report.rounds,
            run.report.decision_rounds + run.report.skipped_rounds);
  // Arrivals after the final round midpoint stay in the feed unconsumed,
  // so the count can fall just short of the configured 600.
  EXPECT_LE(run.report.arrivals, 600u);
  EXPECT_GT(run.report.arrivals, 550u);
  EXPECT_EQ(run.report.slo.rounds, run.report.decision_rounds);
  EXPECT_GT(run.report.slo.p50_ms, 0.0);
  EXPECT_LE(run.report.slo.p50_ms, run.report.slo.p99_ms);
  EXPECT_LE(run.report.slo.p99_ms, run.report.slo.p999_ms);
  EXPECT_LE(run.report.slo.p999_ms, run.report.slo.max_ms);
  const std::vector<DecisionLine> lines = parse_lines(run.decisions);
  EXPECT_EQ(lines.size(), run.report.decision_rounds);
}

TEST(ServeDaemon, RejectsInvalidConfiguration) {
  test::HarnessOptions options;
  GeneratorFeed feed = test::make_feed(options);
  ServeConfig bad_round = test::config_for(options, {}, nullptr);
  bad_round.round_s = 0.0;
  EXPECT_THROW(ServeDaemon(test::test_scenario(), feed, std::move(bad_round)),
               std::invalid_argument);
  ServeConfig no_dir = test::config_for(options, {}, nullptr);
  no_dir.checkpoint_every_rounds = 5;
  no_dir.checkpoint_dir.clear();
  EXPECT_THROW(ServeDaemon(test::test_scenario(), feed, std::move(no_dir)),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdx::serve
