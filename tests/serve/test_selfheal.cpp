// Self-healing serving drills (DESIGN.md §15): the checkpointer breaker
// suspends-then-resumes across a disk outage, /healthz tracks the brownout
// ladder live, and the compound-failure drill — link chaos + quarantine +
// checkpoint outage at once — never kills the daemon and never changes a
// decision byte (brownout capped at step 2, stale-slice settlement is
// byte-identical by construction).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/serve_util.hpp"
#include "state/fault_fs.hpp"

namespace vdx::serve {
namespace {

using test::HarnessOptions;
using test::RunOutput;

/// Like test::run_serve but keeps the daemon in scope so the test can read
/// the exchange frontend after the run (open breakers, etc.).
struct DrillRun {
  ServeReport report;
  std::string decisions;
  std::vector<obs::Event> journal;
  std::size_t open_breakers_at_end = 0;
};

DrillRun run_drill(const HarnessOptions& options) {
  GeneratorFeed feed = test::make_feed(options);
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  std::ostringstream decisions;
  ServeDaemon daemon{test::test_scenario(), feed,
                     test::config_for(options,
                                      obs::Observer{&metrics, &tracer, &journal},
                                      &decisions)};
  DrillRun out;
  out.report = daemon.run();
  out.decisions = decisions.str();
  out.journal = journal.events();
  out.open_breakers_at_end = daemon.exchange().open_breakers();
  return out;
}

bool journal_has(const std::vector<obs::Event>& events, obs::EventKind kind) {
  for (const obs::Event& event : events) {
    if (event.kind == kind) return true;
  }
  return false;
}

// A disk outage mid-run: checkpoint writes fail, the checkpointer breaker
// opens (suspending further attempts), a half-open probe eventually lands
// after the disk heals, and checkpointing resumes. Decision lines never
// notice — checkpointing is off the decision path by design.
TEST(ServeSelfHeal, CheckpointBreakerSuspendsThenResumes) {
  HarnessOptions options;
  options.checkpoint_every = 2;
  options.checkpoint_dir = "ckpt";
  const RunOutput clean = test::run_serve([&] {
    HarnessOptions o = options;
    o.checkpoint_dir.clear();
    o.checkpoint_every = 0;
    return o;
  }());

  state::FaultFs fs;
  HealthState health;
  std::vector<std::string> sampled_health;
  options.customize = [&](ServeConfig& config) {
    config.checkpoint_fs = &fs;
    config.checkpoint_breaker.failure_threshold = 2;
    config.checkpoint_breaker.open_ticks = 4;
    config.health = &health;
    config.round_hook = [&](std::uint64_t r) {
      // Disk dead while serving rounds [6, 14); checkpoints land at even
      // next_round values, so attempts 8/10 fail (tripping the breaker),
      // 12/16 are suspended, the probe at 14 fails, and 18 heals.
      fs.set_failing(r >= 6 && r < 14);
      if (r == 12 || r == 29) sampled_health.push_back(health.healthz_body());
    };
  };
  const RunOutput faulted = test::run_serve(options);

  // Suspension accounting: 2 failures + 2 suspended skips + 1 failed probe.
  EXPECT_EQ(faulted.report.checkpoint_skips, 5u);
  // 2, 4, 6 before the outage; 18 through 30 after it healed.
  EXPECT_EQ(faulted.report.checkpoints_written, 10u);
  EXPECT_TRUE(journal_has(faulted.journal, obs::EventKind::kCheckpointSkip));
  EXPECT_TRUE(journal_has(faulted.journal, obs::EventKind::kBreakerOpen));
  EXPECT_TRUE(journal_has(faulted.journal, obs::EventKind::kBreakerHalfOpen));
  EXPECT_TRUE(journal_has(faulted.journal, obs::EventKind::kBreakerClose));

  // The brownout ladder rode the suspension up and recovered fully.
  EXPECT_GT(faulted.report.brownout_rounds, 0u);
  EXPECT_EQ(faulted.report.final_brownout_step, 0);

  // /healthz mid-outage vs. end-of-run, sampled live from the loop. By
  // round 12 the suspension has driven the default ladder to its ceiling.
  ASSERT_EQ(sampled_health.size(), 2u);
  EXPECT_NE(sampled_health[0].find("critical"), std::string::npos)
      << sampled_health[0];
  EXPECT_NE(sampled_health[0].find("brownout_step=3"), std::string::npos);
  EXPECT_NE(sampled_health[0].find("lifecycle=serving"), std::string::npos);
  EXPECT_EQ(sampled_health[1].substr(0, 2), "ok") << sampled_health[1];
  EXPECT_EQ(health.lifecycle(), Lifecycle::kStopped);

  // The decision stream is byte-identical to a run with no checkpointing
  // at all: storage faults must never leak into settlement.
  EXPECT_EQ(clean.decisions, faulted.decisions);
  EXPECT_EQ(clean.report.decision_rounds, faulted.report.decision_rounds);
}

// The compound drill: sharded serving under bursty link chaos (tripping
// per-link breakers into stale-slice quarantine), a checkpoint disk outage,
// and the brownout ladder capped at step 2 — across multiple feed seeds the
// daemon finishes every round and the decision stream stays byte-identical
// to the clean single-shard run.
TEST(ServeSelfHeal, CompoundDrillKeepsDecisionsByteIdentical) {
  for (const std::uint64_t seed : {11ULL, 23ULL}) {
    HarnessOptions options;
    options.seed = seed;
    options.budget_mbps = 50'000.0;  // armed so a step-3 shrink WOULD diverge
    const RunOutput clean = test::run_serve(options);
    ASSERT_GT(clean.report.decision_rounds, 0u);

    state::FaultFs fs;
    HarnessOptions drill = options;
    drill.checkpoint_every = 2;
    drill.checkpoint_dir = "ckpt";
    drill.customize = [&](ServeConfig& config) {
      config.shards = 2;
      // Gilbert-Elliott black bursts: the bad state drops every frame
      // (0.25 * 4 caps at 1.0) and lingers (exit 0.02), so a burst can
      // outlast the 64-attempt link retry budget and trip the breaker —
      // the only way past it, since independent drops at any sane rate
      // never produce 65 consecutive losses.
      config.shard_link_faults.drop_rate = 0.25;
      config.shard_link_faults.corrupt_rate = 0.02;
      config.shard_link_faults.burst_enter = 0.05;
      config.shard_link_faults.burst_exit = 0.02;
      config.shard_link_faults.burst_multiplier = 4.0;
      config.shard_link_breaker.failure_threshold = 1;
      config.shard_link_breaker.open_ticks = 2;
      config.shard_worker_restart.max_restarts = 2;
      config.shard_worker_restart.window_ticks = 8;
      config.checkpoint_fs = &fs;
      config.checkpoint_breaker.failure_threshold = 1;
      config.checkpoint_breaker.open_ticks = 3;
      config.brownout.max_step = 2;  // byte-transparency ceiling
      config.round_hook = [&fs](std::uint64_t r) {
        fs.set_failing(r >= 8 && r < 16);  // disk outage mid-drill
      };
    };
    const DrillRun faulted = run_drill(drill);

    const std::string at = "seed " + std::to_string(seed);
    // Alive to the end: every clean round was served, none skipped or
    // failed, and the report covers the full horizon.
    EXPECT_EQ(faulted.report.rounds, clean.report.rounds) << at;
    EXPECT_EQ(faulted.report.decision_rounds, clean.report.decision_rounds) << at;
    // The tentpole claim: decisions are byte-identical through quarantine,
    // stale settlement, suspended checkpoints, and brownout steps.
    EXPECT_EQ(clean.decisions, faulted.decisions) << at;
    // The drill actually exercised the machinery it claims to survive.
    EXPECT_TRUE(journal_has(faulted.journal, obs::EventKind::kBreakerOpen)) << at;
    EXPECT_TRUE(journal_has(faulted.journal, obs::EventKind::kStaleBid)) << at;
    EXPECT_GT(faulted.report.checkpoint_skips, 0u) << at;
    EXPECT_GT(faulted.report.checkpoints_written, 0u) << at;
    EXPECT_GT(faulted.report.brownout_rounds, 0u) << at;
    EXPECT_LE(faulted.report.final_brownout_step, 2) << at;
  }
}

}  // namespace
}  // namespace vdx::serve
