// Journal merge across shards (DESIGN.md §14, satellite of the sharded
// exchange): every shard numbers its own events from seq 0, so a naive
// concatenation repeats seq values and breaks the journal's strict
// monotonicity contract. merge_journal_slices must reassign seqs densely
// over the (logical, round, source, seq) total order — this suite pins the
// exact interleaving that used to produce non-monotone output, plus the
// end-to-end merged_worker_journal() surface.
#include <gtest/gtest.h>

#include <vector>

#include "market/shard.hpp"
#include "obs/journal.hpp"
#include "shard/shard_test_util.hpp"
#include "sim/designs.hpp"

namespace vdx::obs {
namespace {

Event event(std::uint64_t seq, std::uint32_t round, std::uint64_t logical,
            EventKind kind = EventKind::kRoundStart, double value = 0.0) {
  Event e;
  e.seq = seq;
  e.round = round;
  e.logical = logical;
  e.kind = kind;
  e.value = value;
  return e;
}

// The regression: two shards, SAME seq values 0..2, interleaved logical
// clocks. The old concatenation kept duplicate seqs (0,1,2,0,1,2); the
// merge must emit 0..5 strictly monotone while interleaving on the shared
// logical clock.
TEST(ShardJournalMerge, ReassignsDuplicateSeqsStrictlyMonotone) {
  JournalSlice a;
  a.source = 0;
  a.total_recorded = 3;
  a.events = {event(0, 0, 10), event(1, 1, 30), event(2, 2, 50)};
  JournalSlice b;
  b.source = 1;
  b.total_recorded = 3;
  b.events = {event(0, 0, 20), event(1, 1, 40), event(2, 2, 60)};

  const std::vector<JournalSlice> slices = {a, b};
  const std::vector<Event> merged = merge_journal_slices(slices);
  ASSERT_EQ(merged.size(), 6u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, i) << "seq not dense at " << i;
  }
  // Interleaved on logical: 10, 20, 30, 40, 50, 60.
  const std::uint64_t want_logical[] = {10, 20, 30, 40, 50, 60};
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].logical, want_logical[i]) << i;
  }
}

// Equal (logical, round): the source shard breaks the tie, and within one
// shard the original recorded order survives (stable).
TEST(ShardJournalMerge, TiesBreakBySourceShardThenOriginalSeq) {
  JournalSlice a;
  a.source = 2;
  a.total_recorded = 2;
  a.events = {event(0, 5, 100, EventKind::kRoundStart, 2.0),
              event(1, 5, 100, EventKind::kRoundEnd, 2.5)};
  JournalSlice b;
  b.source = 0;
  b.total_recorded = 2;
  b.events = {event(0, 5, 100, EventKind::kRoundStart, 0.0),
              event(1, 5, 100, EventKind::kRoundEnd, 0.5)};

  const std::vector<JournalSlice> slices = {a, b};
  const std::vector<Event> merged = merge_journal_slices(slices);
  ASSERT_EQ(merged.size(), 4u);
  // Shard 0's pair first (lower source), each pair in recorded order.
  EXPECT_EQ(merged[0].value, 0.0);
  EXPECT_EQ(merged[1].value, 0.5);
  EXPECT_EQ(merged[2].value, 2.0);
  EXPECT_EQ(merged[3].value, 2.5);
  for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i].seq, i);
}

TEST(ShardJournalMerge, EmptyAndSingleSliceAreTrivial) {
  EXPECT_TRUE(merge_journal_slices({}).empty());
  JournalSlice only;
  only.source = 3;
  only.total_recorded = 2;
  only.events = {event(7, 1, 5), event(8, 2, 6)};
  const std::vector<Event> merged = merge_journal_slices(std::span{&only, 1});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].seq, 0u);  // reassigned even for one slice
  EXPECT_EQ(merged[1].seq, 1u);
}

// End to end: a real 4-shard run's merged worker journal is strictly
// monotone, round-ordered, and covers every shard that announced groups.
TEST(ShardJournalMerge, MergedWorkerJournalIsStrictlyMonotone) {
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 700;
  scenario_config.seed = 41;
  const sim::Scenario scenario = sim::Scenario::build(scenario_config);
  const std::vector<double> background = sim::place_background(scenario);

  market::ShardedConfig config;
  config.shards = 4;
  market::ShardedExchange exchange{scenario, config};
  const auto script = market::shard_test::make_script(
      scenario, sim::StressScenario::kSteady, 3);
  for (const auto& action : script) {
    exchange.set_active_load(action.groups, background);
    (void)exchange.run_round();
  }

  const auto merged = exchange.merged_worker_journal();
  ASSERT_TRUE(merged.ok());
  ASSERT_FALSE(merged.value().empty());
  std::uint32_t last_round = 0;
  for (std::size_t i = 0; i < merged.value().size(); ++i) {
    const Event& e = merged.value()[i];
    EXPECT_EQ(e.seq, i) << "merged seq must be dense and strictly monotone";
    EXPECT_GE(e.round, last_round) << "rounds must not run backwards at " << i;
    last_round = e.round;
  }
  // Every shard recorded at least one round-start on the shared clock.
  std::vector<bool> seen(config.shards, false);
  for (const Event& e : merged.value()) {
    if (e.kind == EventKind::kRoundStart && e.subject < config.shards) {
      seen[e.subject] = true;
    }
  }
  for (std::size_t s = 0; s < config.shards; ++s) {
    EXPECT_TRUE(seen[s]) << "shard " << s << " missing from the merged journal";
  }
}

}  // namespace
}  // namespace vdx::obs
