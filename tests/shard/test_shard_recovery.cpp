// Kill-and-resume drill (DESIGN.md §14): hard-kill every worker shard (a
// real SIGKILL under the process backend) after every settlement round,
// resume from the per-shard checkpoint stores, and byte-compare the
// settlement against the monolithic reference. A killed coordinator
// rebuilds from its own store with resume_from_stores(). Crash tolerance
// must cost restarts — never settlement bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "market/shard.hpp"
#include "shard/shard_test_util.hpp"
#include "sim/designs.hpp"

namespace vdx::market {
namespace {

using shard_test::RoundAction;
using shard_test::RunCapture;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vdx_shard_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

class ShardRecovery : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 900;
    config.seed = 29;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
    background_ = new std::vector<double>(sim::place_background(*scenario_));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
    delete background_;
    background_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }
  static std::span<const double> background() { return *background_; }

  static RunCapture run_mono(const std::vector<RoundAction>& script) {
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    ExchangeConfig config;
    config.obs = obs::Observer{&metrics, nullptr, &journal};
    VdxExchange exchange{scenario(), config};
    return shard_test::drive(exchange, script, background(), journal, metrics);
  }

 private:
  static sim::Scenario* scenario_;
  static std::vector<double>* background_;
};

sim::Scenario* ShardRecovery::scenario_ = nullptr;
std::vector<double>* ShardRecovery::background_ = nullptr;

constexpr std::size_t kRounds = 5;

// Demand mode needs no store at all: the coordinator's cached slice is
// authoritative, so a storeless worker death costs one respawn + re-push.
TEST_F(ShardRecovery, StorelessWorkerDeathInDemandModeIsInvisible) {
  const auto script = shard_test::make_script(
      scenario(), sim::StressScenario::kFlashCrowd, kRounds);
  const RunCapture mono = run_mono(script);

  for (const ShardBackend backend :
       {ShardBackend::kInproc, ShardBackend::kProcess}) {
    ShardedConfig config;
    config.shards = 4;
    config.backend = backend;
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario(), config};

    RunCapture capture;
    for (std::size_t r = 0; r < script.size(); ++r) {
      const RoundAction& action = script[r];
      if (action.fail.has_value()) exchange.set_failed(cdn::CdnId{1}, *action.fail);
      if (action.budget.has_value()) exchange.set_demand_budget(*action.budget);
      exchange.set_active_load(action.groups, background());
      capture.reports.push_back(exchange.run_round());
      exchange.kill_worker(r % config.shards);
      EXPECT_FALSE(exchange.worker_alive(r % config.shards));
    }
    const auto placed = exchange.settlement().placements();
    capture.placements.assign(placed.begin(), placed.end());
    std::ostringstream journal_out;
    journal.write_jsonl(journal_out);
    capture.journal_jsonl = journal_out.str();
    std::ostringstream metrics_out;
    metrics.write_jsonl(metrics_out);
    capture.metrics_jsonl = metrics_out.str();

    shard_test::expect_identical(
        mono, capture,
        std::string{"storeless kill "} + std::string{to_string(backend)});
    EXPECT_EQ(exchange.worker_restarts(), kRounds - 1);  // last kill never recovered
  }
}

// Session mode CANNOT replay lost ledgers from the coordinator — per-shard
// checkpoint stores are mandatory, and with checkpoint_every_rounds=1 a
// SIGKILL after every settlement round must still be byte-invisible.
TEST_F(ShardRecovery, SessionModeResumesFromPerShardStoresAfterEveryRoundKill) {
  const std::size_t cities = scenario().world().cities().size();
  const auto add_of = [&](std::uint32_t id) {
    return proto::ShardSessionAdd{id, id % static_cast<std::uint32_t>(cities),
                                  id % 2 == 0 ? 1.2 : 3.6};
  };

  // Monolithic reference over the same deltas (global ledger, regrouped).
  std::vector<RoundReport> mono_reports;
  {
    VdxExchange mono{scenario()};
    SessionLedger global;
    for (std::size_t r = 0; r < kRounds; ++r) {
      std::vector<proto::ShardSessionAdd> adds;
      for (std::uint32_t k = 0; k < 300; ++k) {
        adds.push_back(add_of(static_cast<std::uint32_t>(r) * 300 + k));
      }
      ASSERT_TRUE(global.apply(adds, {}).ok());
      mono.set_active_load(global.groups(), background());
      mono_reports.push_back(mono.run_round());
    }
  }

  for (const ShardBackend backend :
       {ShardBackend::kInproc, ShardBackend::kProcess}) {
    TempDir dir{std::string{"sessions_"} + std::string{to_string(backend)}};
    ShardedConfig config;
    config.shards = 4;
    config.backend = backend;
    config.checkpoint_dir = dir.path();
    config.checkpoint_every_rounds = 1;
    ShardedExchange exchange{scenario(), config};

    for (std::size_t r = 0; r < kRounds; ++r) {
      std::vector<proto::ShardSessionAdd> adds;
      for (std::uint32_t k = 0; k < 300; ++k) {
        adds.push_back(add_of(static_cast<std::uint32_t>(r) * 300 + k));
      }
      ASSERT_TRUE(exchange.push_session_delta(adds, {}).ok());
      const RoundReport report = exchange.run_round();
      EXPECT_EQ(mono_reports[r].awarded_mbps, report.awarded_mbps)
          << to_string(backend) << " round " << r;
      EXPECT_EQ(mono_reports[r].mean_score, report.mean_score)
          << to_string(backend) << " round " << r;
      // The auto-checkpoint has landed; now the shard dies for real.
      exchange.kill_worker(r % config.shards);
    }
    EXPECT_GT(exchange.worker_restarts(), 0u);
  }
}

// A session-fed worker that dies WITHOUT a store is unrecoverable — the
// next round must fail with a typed error, not silently settle wrong bytes.
TEST_F(ShardRecovery, SessionModeWithoutStoreFailsClosedOnWorkerDeath) {
  ShardedConfig config;
  config.shards = 2;
  ShardedExchange exchange{scenario(), config};
  std::vector<proto::ShardSessionAdd> adds;
  for (std::uint32_t id = 0; id < 200; ++id) {
    adds.push_back({id, id % static_cast<std::uint32_t>(
                            scenario().world().cities().size()),
                    1.5});
  }
  ASSERT_TRUE(exchange.push_session_delta(adds, {}).ok());
  (void)exchange.run_round();

  exchange.kill_worker(0);
  const auto result = exchange.try_run_round();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, core::Errc::kUnavailable);
  EXPECT_THROW((void)exchange.run_round(), std::runtime_error);
}

// A delta that fails mid-push leaves some shards applied and routing
// uncommitted. The batch stays OUTSTANDING: settlement and snapshots refuse
// to run, a DIFFERENT batch is refused outright, and only the verbatim
// retry passes the gate (idempotent on the shards that already applied it).
TEST_F(ShardRecovery, FailedDeltaPushWedgesSettlementUntilVerbatimRetry) {
  ShardedConfig config;
  config.shards = 2;
  ShardedExchange exchange{scenario(), config};
  // One city per shard so the batch demonstrably spans both workers.
  const auto& plan = exchange.plan();
  std::uint32_t city0 = UINT32_MAX;
  std::uint32_t city1 = UINT32_MAX;
  for (std::uint32_t c = 0; c < plan.shard_of_city.size(); ++c) {
    (plan.shard_of_city[c] == 0 ? city0 : city1) = c;
  }
  ASSERT_NE(city0, UINT32_MAX);
  ASSERT_NE(city1, UINT32_MAX);

  std::vector<proto::ShardSessionAdd> first{{1, city0, 1.0}, {2, city1, 1.0}};
  ASSERT_TRUE(exchange.push_session_delta(first, {}).ok());
  (void)exchange.run_round();

  // Shard 1 is session-fed with no store: unrecoverable. The push applies
  // on shard 0, then fails on shard 1 — the exact partial state.
  exchange.kill_worker(1);
  std::vector<proto::ShardSessionAdd> second{{3, city0, 2.0}, {4, city1, 2.0}};
  const auto failed = exchange.push_session_delta(second, {});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, core::Errc::kUnavailable);

  // Settlement and snapshots fail closed while the batch is outstanding.
  const auto round = exchange.try_run_round();
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.error().code, core::Errc::kNotReady);
  const auto snapshot = exchange.try_save_state();
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.error().code, core::Errc::kNotReady);
  EXPECT_THROW((void)exchange.save_state(), std::runtime_error);

  // A different batch is refused at the gate...
  std::vector<proto::ShardSessionAdd> different{{5, city0, 3.0}};
  const auto refused = exchange.push_session_delta(different, {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, core::Errc::kNotReady);

  // ...while the verbatim retry passes it (and here fails only because the
  // worker is truly unrecoverable — a healed worker would clear the wedge).
  const auto retried = exchange.push_session_delta(second, {});
  ASSERT_FALSE(retried.ok());
  EXPECT_EQ(retried.error().code, core::Errc::kUnavailable);
}

// Coordinator crash: a FRESH ShardedExchange over the same stores resumes
// via resume_from_stores() and the tail is byte-identical to the
// uninterrupted run — for both backends, killing a worker mid-tail too.
TEST_F(ShardRecovery, CoordinatorResumesFromStoreWithIdenticalTail) {
  const auto script = shard_test::make_script(
      scenario(), sim::StressScenario::kPerfectStorm, kRounds);
  const RunCapture uninterrupted = run_mono(script);
  constexpr std::size_t kCrashAfter = 2;

  for (const ShardBackend backend :
       {ShardBackend::kInproc, ShardBackend::kProcess}) {
    TempDir dir{std::string{"coord_"} + std::string{to_string(backend)}};
    ShardedConfig config;
    config.shards = 4;
    config.backend = backend;
    config.checkpoint_dir = dir.path();
    config.checkpoint_every_rounds = 1;

    std::vector<RoundReport> head;
    {
      ShardedExchange first{scenario(), config};
      for (std::size_t r = 0; r < kCrashAfter; ++r) {
        const RoundAction& action = script[r];
        if (action.fail.has_value()) first.set_failed(cdn::CdnId{1}, *action.fail);
        if (action.budget.has_value()) first.set_demand_budget(*action.budget);
        first.set_active_load(action.groups, background());
        head.push_back(first.run_round());
      }
      // ~first: the coordinator process "dies" (stores survive on disk).
    }

    ShardedExchange resumed{scenario(), config};
    ASSERT_TRUE(resumed.resume_from_stores().ok()) << to_string(backend);
    ASSERT_EQ(resumed.rounds_completed(), kCrashAfter);
    // The resumed coordinator must re-learn the failure/budget knobs the
    // script had applied before the crash (external control state, exactly
    // like the daemon re-applies its own config on resume).
    bool fail_on = false;
    double budget = 0.0;
    for (std::size_t r = 0; r < kCrashAfter; ++r) {
      if (script[r].fail.has_value()) fail_on = *script[r].fail;
      if (script[r].budget.has_value()) budget = *script[r].budget;
    }
    resumed.set_failed(cdn::CdnId{1}, fail_on);
    resumed.set_demand_budget(budget);

    std::vector<RoundReport> tail;
    for (std::size_t r = kCrashAfter; r < script.size(); ++r) {
      const RoundAction& action = script[r];
      if (action.fail.has_value()) resumed.set_failed(cdn::CdnId{1}, *action.fail);
      if (action.budget.has_value()) resumed.set_demand_budget(*action.budget);
      resumed.set_active_load(action.groups, background());
      tail.push_back(resumed.run_round());
      resumed.kill_worker(r % config.shards);  // and workers keep dying
    }

    for (std::size_t r = 0; r < script.size(); ++r) {
      const RoundReport& expected = uninterrupted.reports[r];
      const RoundReport& actual =
          r < kCrashAfter ? head[r] : tail[r - kCrashAfter];
      const std::string at = std::string{to_string(backend)} + " resumed round " +
                             std::to_string(r);
      EXPECT_EQ(expected.awarded_mbps, actual.awarded_mbps) << at;
      EXPECT_EQ(expected.mean_score, actual.mean_score) << at;
      EXPECT_EQ(expected.mean_cost, actual.mean_cost) << at;
      EXPECT_EQ(expected.shed_mbps, actual.shed_mbps) << at;
      EXPECT_EQ(expected.wire.bytes_on_wire, actual.wire.bytes_on_wire) << at;
    }
  }
}

// The embedded snapshot path (the daemon's checkpoint file): save_state()
// bundles coordinator + settlement + every worker; restore_state() on a
// fresh exchange continues byte-identically.
TEST_F(ShardRecovery, EmbeddedSnapshotRoundTripsAcrossAFreshExchange) {
  const auto script = shard_test::make_script(
      scenario(), sim::StressScenario::kDiurnal, kRounds);
  const RunCapture uninterrupted = run_mono(script);
  constexpr std::size_t kCrashAfter = 3;

  ShardedConfig config;
  config.shards = 3;
  std::vector<std::uint8_t> snapshot;
  {
    ShardedExchange first{scenario(), config};
    for (std::size_t r = 0; r < kCrashAfter; ++r) {
      first.set_active_load(script[r].groups, background());
      (void)first.run_round();
    }
    snapshot = first.save_state();
  }
  ASSERT_FALSE(snapshot.empty());

  ShardedExchange resumed{scenario(), config};
  ASSERT_TRUE(resumed.restore_state(snapshot).ok());
  ASSERT_EQ(resumed.rounds_completed(), kCrashAfter);
  for (std::size_t r = kCrashAfter; r < script.size(); ++r) {
    resumed.set_active_load(script[r].groups, background());
    const RoundReport report = resumed.run_round();
    EXPECT_EQ(uninterrupted.reports[r].awarded_mbps, report.awarded_mbps)
        << "embedded round " << r;
    EXPECT_EQ(uninterrupted.reports[r].mean_score, report.mean_score)
        << "embedded round " << r;
  }

  // A snapshot from a different shard topology must be refused.
  ShardedConfig other = config;
  other.shards = 2;
  ShardedExchange wrong_plan{scenario(), other};
  EXPECT_FALSE(wrong_plan.restore_state(snapshot).ok());
}

}  // namespace
}  // namespace vdx::market
