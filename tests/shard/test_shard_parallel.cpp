// Pooled in-process collect path (DESIGN.md §14): with collect_threads > 1
// the coordinator fans batch frames across a ThreadPool — the TSan lane's
// target for the shard subsystem. Byte-identity must survive the pool, and
// the pool must be refused whenever the link injector (ordered state) is on.
#include <gtest/gtest.h>

#include <vector>

#include "market/shard.hpp"
#include "shard/shard_test_util.hpp"
#include "sim/designs.hpp"

namespace vdx::market {
namespace {

using shard_test::RunCapture;

TEST(ShardParallel, PooledCollectMatchesSerialByteForByte) {
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 900;
  scenario_config.seed = 23;
  const sim::Scenario scenario = sim::Scenario::build(scenario_config);
  const std::vector<double> background = sim::place_background(scenario);
  const auto script =
      shard_test::make_script(scenario, sim::StressScenario::kFlashCrowd, 3);

  const auto run = [&](std::size_t collect_threads) {
    ShardedConfig config;
    config.shards = 4;
    config.collect_threads = collect_threads;
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario, config};
    return shard_test::drive(exchange, script, background, journal, metrics);
  };

  const RunCapture serial = run(1);
  const RunCapture pooled = run(4);
  ASSERT_FALSE(serial.placements.empty());
  shard_test::expect_identical(serial, pooled, "pooled collect");
}

TEST(ShardParallel, ChaosForcesTheSerialPath) {
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = 600;
  scenario_config.seed = 23;
  const sim::Scenario scenario = sim::Scenario::build(scenario_config);
  const std::vector<double> background = sim::place_background(scenario);
  const auto script =
      shard_test::make_script(scenario, sim::StressScenario::kSteady, 2);

  // collect_threads > 1 AND link faults: the injector streams are ordered
  // state, so the coordinator must walk shards serially — and the output
  // must still match the fault-free pooled run.
  const auto run = [&](bool chaos, std::size_t collect_threads) {
    ShardedConfig config;
    config.shards = 4;
    config.collect_threads = collect_threads;
    if (chaos) {
      config.link_faults.drop_rate = 0.15;
      config.link_faults.corrupt_rate = 0.1;
    }
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario, config};
    return shard_test::drive(exchange, script, background, journal, metrics);
  };

  const RunCapture clean = run(false, 4);
  const RunCapture chaotic = run(true, 4);
  shard_test::expect_identical(clean, chaotic, "chaos over pooled config");
}

}  // namespace
}  // namespace vdx::market
