// Shard wire-codec fuzz (DESIGN.md §14): every corrupted, truncated, or
// otherwise mangled frame — produced by proto::FaultInjector, the same
// mutation engine the chaos drills use — must be rejected with a typed
// Errc::kCorruptFrame, and a worker fed such bytes must NEVER partially
// apply state: its save_state() image is byte-identical before and after
// every rejected frame.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "market/shard.hpp"
#include "proto/fault.hpp"
#include "proto/shard_wire.hpp"
#include "proto/wire.hpp"
#include "state/snapshot.hpp"

namespace vdx::proto {
namespace {

/// A representative valid frame of every data-plane type.
std::vector<ShardFrame> corpus() {
  std::vector<ShardFrame> frames;
  {
    ShardFrame hello;
    hello.type = ShardFrameType::kHello;
    ShardHello payload;
    payload.shard = 1;
    payload.shard_count = 4;
    payload.city_count = 6;
    payload.plan_hash = 0xfeedfacecafebeefULL;
    payload.cdn_of_cluster = {0, 0, 1, 2, 2, 2};
    hello.shard = 1;
    hello.payload = encode_shard_hello(payload);
    frames.push_back(hello);
  }
  {
    ShardFrame demand;
    demand.type = ShardFrameType::kSetDemand;
    demand.shard = 1;
    std::vector<ShardGroup> groups;
    for (std::uint32_t i = 0; i < 5; ++i) {
      broker::ClientGroup g{broker::ShareId{i}, geo::CityId{i % 3}, 0,
                            1.0 + 0.5 * i, 10.0 * (i + 1)};
      groups.push_back(ShardGroup{i, g});
    }
    demand.payload = encode_shard_groups(groups);
    frames.push_back(demand);
  }
  {
    ShardFrame delta;
    delta.type = ShardFrameType::kSessionDelta;
    delta.shard = 1;
    ShardSessionDelta payload;
    for (std::uint32_t i = 0; i < 8; ++i) payload.adds.push_back({i, i % 3, 2.4});
    payload.removes = {100, 101};
    delta.payload = encode_session_delta(payload);
    frames.push_back(delta);
  }
  {
    ShardFrame collect;
    collect.type = ShardFrameType::kCollect;
    collect.shard = 1;
    collect.round = 7;
    frames.push_back(collect);
  }
  {
    ShardFrame allocation;
    allocation.type = ShardFrameType::kAllocation;
    allocation.shard = 1;
    allocation.round = 7;
    std::vector<ShardPlacement> placements;
    for (std::uint32_t i = 0; i < 4; ++i) {
      placements.push_back({i, i * 3, 12.5, 0.02, 3.9, 1.5});
    }
    allocation.payload = encode_allocation(placements);
    frames.push_back(allocation);
  }
  return frames;
}

TEST(ShardWireFuzz, EveryInjectorMutationIsRejectedWithCorruptFrame) {
  // 100% corruption (1-3 bit flips) and, in a second pass, 100% truncation.
  for (const bool truncate : {false, true}) {
    FaultProfile profile;
    profile.corrupt_rate = truncate ? 0.0 : 1.0;
    profile.truncate_rate = truncate ? 1.0 : 0.0;
    profile.seed = truncate ? 77 : 33;
    FaultInjector injector{profile};

    std::size_t mutated_frames = 0;
    for (std::size_t round = 0; round < 64; ++round) {
      for (const ShardFrame& frame : corpus()) {
        const std::vector<std::uint8_t> wire = encode_shard_frame(frame);
        for (const FaultedFrame& out : injector.apply(round % 8, wire)) {
          const auto decoded = try_decode_shard_frame(out.bytes);
          if (!out.mutated) {
            // An unmutated copy must still decode to the original.
            ASSERT_TRUE(decoded.ok());
            EXPECT_EQ(decoded.value(), frame);
            continue;
          }
          ++mutated_frames;
          ASSERT_FALSE(decoded.ok())
              << "mutated frame decoded cleanly (round " << round << ")";
          EXPECT_EQ(decoded.error().code, core::Errc::kCorruptFrame);
        }
      }
    }
    EXPECT_GT(mutated_frames, 100u);  // the injector demonstrably fired
  }
}

TEST(ShardWireFuzz, EveryTruncationPrefixIsRejected) {
  for (const ShardFrame& frame : corpus()) {
    const std::vector<std::uint8_t> wire = encode_shard_frame(frame);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const auto decoded =
          try_decode_shard_frame(std::span{wire.data(), len});
      ASSERT_FALSE(decoded.ok()) << "prefix " << len << "/" << wire.size();
      EXPECT_EQ(decoded.error().code, core::Errc::kCorruptFrame);
    }
    // Trailing garbage after a valid frame is just as corrupt.
    std::vector<std::uint8_t> padded = wire;
    padded.push_back(0xAB);
    const auto decoded = try_decode_shard_frame(padded);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, core::Errc::kCorruptFrame);
  }
}

TEST(ShardWireFuzz, DuplicatedFramesDecodeToTheOriginal) {
  FaultProfile profile;
  profile.duplicate_rate = 1.0;
  profile.seed = 55;
  FaultInjector injector{profile};
  for (const ShardFrame& frame : corpus()) {
    const std::vector<std::uint8_t> wire = encode_shard_frame(frame);
    const auto copies = injector.apply(0, wire);
    ASSERT_EQ(copies.size(), 2u);
    for (const FaultedFrame& out : copies) {
      const auto decoded = try_decode_shard_frame(out.bytes);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value(), frame);
    }
  }
}

/// Configures `worker` (shard 1 of 2) with a populated session ledger —
/// state worth protecting from partial application.
void configure_worker(market::ShardWorker& worker) {
  ShardFrame hello;
  hello.type = ShardFrameType::kHello;
  hello.shard = 1;
  ShardHello payload;
  payload.shard = 1;
  payload.shard_count = 2;
  payload.city_count = 4;
  payload.plan_hash = 42;
  payload.cdn_of_cluster = {0, 1, 1, 2};
  hello.payload = encode_shard_hello(payload);
  EXPECT_EQ(worker.handle(hello).type, ShardFrameType::kAck);

  ShardFrame delta;
  delta.type = ShardFrameType::kSessionDelta;
  delta.shard = 1;
  ShardSessionDelta sessions;
  for (std::uint32_t i = 0; i < 16; ++i) sessions.adds.push_back({i, i % 4, 1.8});
  delta.payload = encode_session_delta(sessions);
  EXPECT_EQ(worker.handle(delta).type, ShardFrameType::kAck);
}

TEST(ShardWireFuzz, WorkerRejectsMutatedBytesWithoutTouchingState) {
  market::ShardWorker worker{1};
  configure_worker(worker);
  const std::vector<std::uint8_t> before = worker.save_state();
  ASSERT_FALSE(before.empty());

  FaultProfile profile;
  profile.corrupt_rate = 0.6;
  profile.truncate_rate = 0.4;
  profile.seed = 99;
  FaultInjector injector{profile};

  std::size_t rejected = 0;
  for (std::size_t round = 0; round < 48; ++round) {
    for (const ShardFrame& frame : corpus()) {
      const std::vector<std::uint8_t> wire = encode_shard_frame(frame);
      for (const FaultedFrame& out : injector.apply(0, wire)) {
        if (!out.mutated) continue;
        bool shutdown = false;
        const auto response_bytes = worker.handle_bytes(out.bytes, &shutdown);
        EXPECT_FALSE(shutdown);
        const auto response = try_decode_shard_frame(response_bytes);
        ASSERT_TRUE(response.ok());  // the REPLY is always well-formed
        ASSERT_EQ(response.value().type, ShardFrameType::kError);
        const auto error = decode_shard_error(response.value().payload);
        ASSERT_TRUE(error.ok());
        EXPECT_EQ(error.value().code, core::Errc::kCorruptFrame);
        ++rejected;
        EXPECT_EQ(worker.save_state(), before)
            << "rejected frame partially applied state (round " << round << ")";
      }
    }
  }
  EXPECT_GT(rejected, 50u);
}

TEST(ShardWireFuzz, WorkerRejectsWellFormedButInvalidPayloadsAtomically) {
  market::ShardWorker worker{1};
  configure_worker(worker);
  const std::vector<std::uint8_t> before = worker.save_state();

  const auto expect_rejected = [&](const ShardFrame& frame, core::Errc want) {
    const ShardFrame response = worker.handle(frame);
    ASSERT_EQ(response.type, ShardFrameType::kError);
    const auto error = decode_shard_error(response.payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error.value().code, want);
    EXPECT_EQ(worker.save_state(), before);
  };

  // A delta whose LAST add references an unknown city: the valid prefix
  // must not survive the rejection.
  ShardFrame bad_city;
  bad_city.type = ShardFrameType::kSessionDelta;
  bad_city.shard = 1;
  ShardSessionDelta payload;
  payload.adds = {{200, 0, 1.0}, {201, 1, 1.0}, {202, 999, 1.0}};
  bad_city.payload = encode_session_delta(payload);
  expect_rejected(bad_city, core::Errc::kInvalidArgument);

  // Non-finite bitrate.
  ShardFrame bad_rate = bad_city;
  payload.adds = {{203, 0, std::numeric_limits<double>::quiet_NaN()}};
  bad_rate.payload = encode_session_delta(payload);
  expect_rejected(bad_rate, core::Errc::kInvalidArgument);

  // Re-add of a live session with DIFFERENT attributes.
  ShardFrame conflict = bad_city;
  payload.adds = {{0, 2, 9.9}};
  conflict.payload = encode_session_delta(payload);
  expect_rejected(conflict, core::Errc::kInvalidArgument);

  // A frame addressed to the wrong shard.
  ShardFrame misrouted;
  misrouted.type = ShardFrameType::kCollect;
  misrouted.shard = 3;
  expect_rejected(misrouted, core::Errc::kInvalidArgument);

  // kSetDemand onto a session-fed worker (modes are exclusive).
  ShardFrame mode_mix;
  mode_mix.type = ShardFrameType::kSetDemand;
  mode_mix.shard = 1;
  mode_mix.payload = encode_shard_groups({});
  expect_rejected(mode_mix, core::Errc::kInvalidArgument);
}

// A checksum-valid snapshot whose session set cannot form a ledger (bad
// bitrate, conflicting duplicate ids) must be rejected with NO partial
// mutation — rounds/mode/demand/ledger/journal all stay exactly as they
// were, even though the failure is only discoverable after the envelope
// and every section decoded cleanly.
TEST(ShardWireFuzz, WorkerSnapshotWithUnappliableSessionsIsRejectedAtomically) {
  market::ShardWorker worker{1};
  configure_worker(worker);
  const std::vector<std::uint8_t> before = worker.save_state();

  // Replicates ShardWorker::save_state's layout (sections 20/21/22) around
  // an arbitrary session set, with the topology configure_worker pinned.
  const auto snapshot_with = [](const std::vector<ShardSessionAdd>& sessions) {
    state::SnapshotWriter writer;
    ByteWriter w;
    w.write_u32(1);   // shard
    w.write_u32(2);   // shard_count
    w.write_u32(4);   // city_count
    w.write_u64(42);  // plan_hash
    w.write_u64(3);   // rounds_applied
    w.write_u64(2);   // last allocation round
    w.write_u64(2);   // last collect round
    w.write_u8(2);    // ShardDemandMode::kSessions
    const auto demand = encode_shard_groups({});
    w.write_u32(static_cast<std::uint32_t>(demand.size()));
    w.write_bytes(demand);
    w.write_u32(static_cast<std::uint32_t>(sessions.size()));
    for (const ShardSessionAdd& s : sessions) {
      w.write_u32(s.id);
      w.write_u32(s.city);
      w.write_f64(s.bitrate_mbps);
    }
    writer.add_section(20, w.take());  // worker core
    writer.add_section(21, encode_journal_slice({0, 0, {}}));
    ByteWriter counters;
    counters.write_u32(0);
    writer.add_section(22, counters.take());  // counters
    return writer.finish();
  };

  const std::vector<std::vector<ShardSessionAdd>> bad_sets = {
      {{900, 0, -1.0}},                    // non-positive bitrate
      {{901, 0, 1.0}, {901, 1, 1.0}},      // same id, conflicting city
  };
  for (const auto& sessions : bad_sets) {
    ShardFrame restore;
    restore.type = ShardFrameType::kRestoreState;
    restore.shard = 1;
    restore.payload = snapshot_with(sessions);
    const ShardFrame response = worker.handle(restore);
    ASSERT_EQ(response.type, ShardFrameType::kError);
    const auto error = decode_shard_error(response.payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error.value().code, core::Errc::kInvalidArgument);
    EXPECT_EQ(worker.save_state(), before)
        << "rejected snapshot partially applied state";
  }
}

// The chaos path delivers EVERY duplicated copy to the worker (no
// collapsing), so a redelivered data-plane frame must ack byte-identically
// and leave no extra state behind.
TEST(ShardWireFuzz, RedeliveredFramesAreIdempotentAtTheWorker) {
  market::ShardWorker worker{1};
  configure_worker(worker);

  ShardFrame delta;
  delta.type = ShardFrameType::kSessionDelta;
  delta.shard = 1;
  ShardSessionDelta payload;
  payload.adds = {{500, 0, 2.0}, {501, 1, 4.0}};
  payload.removes = {0};
  delta.payload = encode_session_delta(payload);

  ShardFrame collect;
  collect.type = ShardFrameType::kCollect;
  collect.shard = 1;
  collect.round = 0;

  ShardFrame allocation;
  allocation.type = ShardFrameType::kAllocation;
  allocation.shard = 1;
  allocation.round = 0;
  const std::vector<ShardPlacement> placements{{0, 1, 3.0, 0.01, 1.0, 2.0}};
  allocation.payload = encode_allocation(placements);

  for (const ShardFrame& frame : {delta, collect, allocation}) {
    const ShardFrame first = worker.handle(frame);
    ASSERT_NE(first.type, ShardFrameType::kError)
        << static_cast<int>(frame.type);
    const auto after_first = worker.save_state();
    const ShardFrame second = worker.handle(frame);
    EXPECT_EQ(encode_shard_frame(first), encode_shard_frame(second))
        << static_cast<int>(frame.type);
    EXPECT_EQ(worker.save_state(), after_first)
        << "redelivered frame mutated state (" << static_cast<int>(frame.type)
        << ")";
  }
}

TEST(ShardWireFuzz, UnconfiguredWorkerRefusesEverythingButHello) {
  market::ShardWorker worker{0};
  for (const ShardFrameType type :
       {ShardFrameType::kSetDemand, ShardFrameType::kSessionDelta,
        ShardFrameType::kCollect, ShardFrameType::kAllocation,
        ShardFrameType::kCheckpoint, ShardFrameType::kJournalRequest}) {
    ShardFrame frame;
    frame.type = type;
    frame.shard = 0;
    const ShardFrame response = worker.handle(frame);
    ASSERT_EQ(response.type, ShardFrameType::kError) << static_cast<int>(type);
    const auto error = decode_shard_error(response.payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error.value().code, core::Errc::kNotReady);
  }
}

}  // namespace
}  // namespace vdx::proto
