// Shared driver for the sharded-exchange differential suite (DESIGN.md §14).
//
// The whole suite rests on one shape: build a per-round demand SCRIPT (a
// pure value — groups, budget changes, CDN failure toggles), replay it
// identically through a monolithic VdxExchange and a ShardedExchange, and
// byte-compare every deterministic surface the exchanges expose: the
// per-round RoundReports, the settled placements, the journal JSONL, and
// the metrics JSONL. Anything short of exact equality is a bug — the
// sharded topology promises byte-identity by construction.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "broker/grouping.hpp"
#include "market/exchange.hpp"
#include "market/shard.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "sim/designs.hpp"
#include "sim/scenario.hpp"
#include "sim/stress.hpp"

namespace vdx::market::shard_test {

/// One scripted settlement round. `groups` is always pushed (the daemon
/// idiom: set_active_load every round); budget/fail fire before the push.
struct RoundAction {
  std::vector<broker::ClientGroup> groups;
  /// set_demand_budget(*budget) this round (admission-control window edges).
  std::optional<double> budget;
  /// set_failed(cdn::CdnId{1}, *fail) this round (blackout window edges).
  std::optional<bool> fail;
};

/// Deterministic surfaces of one scripted run.
struct RunCapture {
  std::vector<RoundReport> reports;
  std::vector<sim::Placement> placements;  // final round's settled placements
  std::string journal_jsonl;
  std::string metrics_jsonl;
};

/// Replays `script` through either exchange type (both expose the same
/// demand/budget/failure knobs; only set_failed is outside the frontend
/// interface, hence the template).
template <typename Exchange>
RunCapture drive(Exchange& exchange, const std::vector<RoundAction>& script,
                 std::span<const double> background, const obs::RunJournal& journal,
                 const obs::MetricsRegistry& metrics) {
  RunCapture capture;
  for (const RoundAction& action : script) {
    if (action.fail.has_value()) exchange.set_failed(cdn::CdnId{1}, *action.fail);
    if (action.budget.has_value()) exchange.set_demand_budget(*action.budget);
    exchange.set_active_load(action.groups, background);
    capture.reports.push_back(exchange.run_round());
  }
  if constexpr (std::is_same_v<Exchange, ShardedExchange>) {
    const auto placed = exchange.settlement().placements();
    capture.placements.assign(placed.begin(), placed.end());
  } else {
    const auto placed = exchange.placements();
    capture.placements.assign(placed.begin(), placed.end());
  }
  std::ostringstream journal_out;
  journal.write_jsonl(journal_out);
  capture.journal_jsonl = journal_out.str();
  std::ostringstream metrics_out;
  metrics.write_jsonl(metrics_out);
  capture.metrics_jsonl = metrics_out.str();
  return capture;
}

/// Builds the per-round demand script for one stress scenario: the
/// scenario's broker groups reshaped by the profile's demand modulators
/// (flash-crowd trapezoid, diurnal sinusoid), with the supply-side events
/// expressed through the exchange-facing knobs — a blackout window fails a
/// CDN, a price-shock window clamps the admission budget (the menu cache is
/// fixed for an exchange's lifetime, so catalog-level supply mutation is a
/// timeline concern; at the exchange boundary these are the supply events).
inline std::vector<RoundAction> make_script(const sim::Scenario& scenario,
                                            sim::StressScenario kind,
                                            std::size_t rounds) {
  constexpr double kEpochS = 600.0;
  const double horizon_s = static_cast<double>(rounds) * kEpochS;
  sim::StressConfig config;
  config.scenario = kind;
  config.spike_factor = 12.0;  // big enough to reshape, small enough to settle
  const sim::StressProfile profile =
      make_stress_profile(scenario.world(), config, horizon_s);

  const auto base = scenario.broker_groups();
  double base_demand_mbps = 0.0;
  for (const broker::ClientGroup& group : base) {
    base_demand_mbps += group.demand_mbps();
  }

  const auto in_any = [](double t, const auto& windows) {
    for (const auto& w : windows) {
      if (t >= w.start_s && t < w.end_s) return true;
    }
    return false;
  };

  std::vector<RoundAction> script(rounds);
  bool budget_on = false;
  bool fail_on = false;
  for (std::size_t r = 0; r < rounds; ++r) {
    const double t = (static_cast<double>(r) + 0.5) * kEpochS;
    RoundAction& action = script[r];
    const double diurnal = profile.demand.diurnal_multiplier(t);
    action.groups.assign(base.begin(), base.end());
    for (broker::ClientGroup& group : action.groups) {
      group.client_count *=
          diurnal * profile.demand.city_boost(group.city.value(), t);
    }
    const bool shock = in_any(t, profile.price_shocks);
    if (shock != budget_on) {
      action.budget = shock ? 0.6 * base_demand_mbps : 0.0;
      budget_on = shock;
    }
    const bool dark = in_any(t, profile.blackouts);
    if (dark != fail_on) {
      action.fail = dark;
      fail_on = dark;
    }
  }
  return script;
}

/// Exact (bitwise, for doubles) equality of every captured surface.
inline void expect_identical(const RunCapture& mono, const RunCapture& sharded,
                             const std::string& context) {
  ASSERT_EQ(mono.reports.size(), sharded.reports.size()) << context;
  for (std::size_t r = 0; r < mono.reports.size(); ++r) {
    const RoundReport& a = mono.reports[r];
    const RoundReport& b = sharded.reports[r];
    const std::string at = context + " round " + std::to_string(r);
    EXPECT_EQ(a.round, b.round) << at;
    EXPECT_EQ(a.wire.shares_sent, b.wire.shares_sent) << at;
    EXPECT_EQ(a.wire.bids_received, b.wire.bids_received) << at;
    EXPECT_EQ(a.wire.accepts_sent, b.wire.accepts_sent) << at;
    EXPECT_EQ(a.wire.bytes_on_wire, b.wire.bytes_on_wire) << at;
    EXPECT_EQ(a.mean_score, b.mean_score) << at;
    EXPECT_EQ(a.mean_cost, b.mean_cost) << at;
    EXPECT_EQ(a.congested_fraction, b.congested_fraction) << at;
    EXPECT_EQ(a.shed_mbps, b.shed_mbps) << at;
    EXPECT_EQ(a.shed_clients, b.shed_clients) << at;
    EXPECT_EQ(a.shed_groups, b.shed_groups) << at;
    EXPECT_EQ(a.mean_prediction_error, b.mean_prediction_error) << at;
    EXPECT_EQ(a.awarded_mbps, b.awarded_mbps) << at;
    EXPECT_EQ(a.degraded, b.degraded) << at;
    EXPECT_EQ(a.quorum_met, b.quorum_met) << at;
    EXPECT_EQ(a.stale_bids_used, b.stale_bids_used) << at;
    EXPECT_EQ(a.stale_bid_share, b.stale_bid_share) << at;
  }
  ASSERT_EQ(mono.placements.size(), sharded.placements.size()) << context;
  for (std::size_t i = 0; i < mono.placements.size(); ++i) {
    const sim::Placement& a = mono.placements[i];
    const sim::Placement& b = sharded.placements[i];
    const std::string at = context + " placement " + std::to_string(i);
    EXPECT_EQ(a.group, b.group) << at;
    EXPECT_EQ(a.cluster.value(), b.cluster.value()) << at;
    EXPECT_EQ(a.clients, b.clients) << at;
    EXPECT_EQ(a.price, b.price) << at;
    EXPECT_EQ(a.score, b.score) << at;
  }
  EXPECT_EQ(mono.journal_jsonl, sharded.journal_jsonl) << context;
  EXPECT_EQ(mono.metrics_jsonl, sharded.metrics_jsonl) << context;
}

}  // namespace vdx::market::shard_test
