// Supervisor + circuit-breaker drill for the sharded exchange (DESIGN.md
// §15): a restart budget turns a crash loop into a typed failure, and the
// per-link breaker turns it into quarantine — stale-slice settlement that
// stays byte-identical to the monolith (the coordinator cache is
// authoritative in demand mode) until a half-open probe re-pushes the slice.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "market/shard.hpp"
#include "shard/shard_test_util.hpp"
#include "sim/designs.hpp"

namespace vdx::market {
namespace {

using shard_test::RoundAction;
using shard_test::RunCapture;

class ShardResilience : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 900;
    config.seed = 29;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
    background_ = new std::vector<double>(sim::place_background(*scenario_));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
    delete background_;
    background_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }
  static std::span<const double> background() { return *background_; }

  static RunCapture run_mono(const std::vector<RoundAction>& script) {
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    ExchangeConfig config;
    config.obs = obs::Observer{&metrics, nullptr, &journal};
    VdxExchange exchange{scenario(), config};
    return shard_test::drive(exchange, script, background(), journal, metrics);
  }

 private:
  static sim::Scenario* scenario_;
  static std::vector<double>* background_;
};

sim::Scenario* ShardResilience::scenario_ = nullptr;
std::vector<double>* ShardResilience::background_ = nullptr;

constexpr std::size_t kRounds = 6;

// Without a breaker the legacy fail-closed contract holds, but the
// supervisor caps the respawn loop: once the window budget is spent, the
// round fails with a typed "restart budget" error instead of burning a free
// respawn per call, and the worker is kept dead (not half-initialized).
TEST_F(ShardResilience, RestartBudgetExhaustionFailsTypedAndKeepsWorkerDead) {
  ShardedConfig config;
  config.shards = 2;
  config.worker_restart.max_restarts = 1;
  config.worker_restart.window_ticks = 100;
  ShardedExchange exchange{scenario(), config};
  exchange.set_active_load(scenario().broker_groups(), background());
  (void)exchange.run_round();

  // First kill: inside budget — the supervisor respawns and the round runs.
  exchange.kill_worker(0);
  ASSERT_TRUE(exchange.try_run_round().ok());
  EXPECT_EQ(exchange.worker_restarts(), 1u);

  // Second kill: budget spent in-window — typed failure, twice (the round
  // clock cannot advance past a failing round, so the window never slides).
  exchange.kill_worker(0);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto result = exchange.try_run_round();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, core::Errc::kUnavailable);
    EXPECT_NE(result.error().message.find("restart budget"), std::string::npos)
        << result.error().message;
    EXPECT_FALSE(exchange.worker_alive(0));
  }
  EXPECT_EQ(exchange.worker_supervisor().denied_total(), 2u);
  EXPECT_EQ(exchange.worker_restarts(), 1u);
  EXPECT_THROW((void)exchange.run_round(), std::runtime_error);
}

// The tentpole drill: with the link breaker armed, a flapping worker whose
// restart budget is exhausted is QUARANTINED — rounds keep settling from
// the coordinator's cached slice, byte-identical to the monolith because
// set_active_load refreshes the cache before every push — and a half-open
// probe later respawns the worker and rejoins it to the live collect.
TEST_F(ShardResilience, BreakerQuarantineSettlesStaleThenProbeRecovers) {
  const auto script = shard_test::make_script(
      scenario(), sim::StressScenario::kFlashCrowd, kRounds);
  RunCapture mono = run_mono(script);

  for (const ShardBackend backend :
       {ShardBackend::kInproc, ShardBackend::kProcess}) {
    ShardedConfig config;
    config.shards = 4;
    config.backend = backend;
    // Budget: one respawn per 2-round window; backoff stays immediate so the
    // denial comes from the window budget alone.
    config.worker_restart.max_restarts = 1;
    config.worker_restart.window_ticks = 2;
    // Breaker: trip on the first push failure, probe after 2 rounds.
    config.link_breaker.failure_threshold = 1;
    config.link_breaker.open_ticks = 2;
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario(), config};
    const std::string tag = std::string{"breaker "} + std::string{to_string(backend)};

    RunCapture capture;
    for (std::size_t r = 0; r < script.size(); ++r) {
      const RoundAction& action = script[r];
      if (action.fail.has_value()) exchange.set_failed(cdn::CdnId{1}, *action.fail);
      if (action.budget.has_value()) exchange.set_demand_budget(*action.budget);
      exchange.set_active_load(action.groups, background());
      capture.reports.push_back(exchange.run_round());
      // Round 1 ends at clock 2: kill once (respawned inside budget), then
      // round 2 ends at clock 3: kill again — the second recovery attempt is
      // denied in-window, trips the breaker, and quarantines shard 0.
      if (r == 1 || r == 2) {
        exchange.kill_worker(0);
        EXPECT_FALSE(exchange.worker_alive(0)) << tag;
      }
      if (r == 3) {
        // Mid-quarantine: the breaker is open and the shard settles stale.
        EXPECT_EQ(exchange.open_breakers(), 1u) << tag;
        EXPECT_TRUE(exchange.shard_quarantined(0)) << tag;
      }
    }
    const auto placed = exchange.settlement().placements();
    capture.placements.assign(placed.begin(), placed.end());
    std::ostringstream metrics_out;
    metrics.write_jsonl(metrics_out);
    capture.metrics_jsonl = metrics_out.str();
    // The journal intentionally diverges under quarantine (typed
    // kBreakerOpen/kStaleBid/kRestartDenied events land in it) — verified
    // below instead of byte-compared; every decision surface must match.
    capture.journal_jsonl = mono.journal_jsonl;

    shard_test::expect_identical(mono, capture, tag);

    // The open_ticks window passed at clock 5: the half-open probe respawned
    // the worker (the old restart aged out of the supervisor window),
    // re-pushed the slice, and closed the breaker.
    EXPECT_EQ(exchange.open_breakers(), 0u) << tag;
    EXPECT_FALSE(exchange.shard_quarantined(0)) << tag;
    EXPECT_TRUE(exchange.worker_alive(0)) << tag;
    EXPECT_EQ(exchange.stale_rounds(), 2u) << tag;          // rounds 3 and 4
    EXPECT_EQ(exchange.worker_restarts(), 2u) << tag;       // kill 1 + probe
    EXPECT_EQ(exchange.worker_supervisor().denied_total(), 1u) << tag;

    bool opened = false, half = false, closed = false, stale = false,
         denied = false;
    for (const obs::Event& event : journal.events()) {
      opened |= event.kind == obs::EventKind::kBreakerOpen;
      half |= event.kind == obs::EventKind::kBreakerHalfOpen;
      closed |= event.kind == obs::EventKind::kBreakerClose;
      stale |= event.kind == obs::EventKind::kStaleBid && event.subject == 0u;
      denied |= event.kind == obs::EventKind::kRestartDenied;
    }
    EXPECT_TRUE(opened) << tag;
    EXPECT_TRUE(half) << tag;
    EXPECT_TRUE(closed) << tag;
    EXPECT_TRUE(stale) << tag;
    EXPECT_TRUE(denied) << tag;
  }
}

}  // namespace
}  // namespace vdx::market
