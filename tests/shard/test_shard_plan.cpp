// ShardPlan partition + SessionLedger structural units (DESIGN.md §14).
// The plan must be a total, deterministic function of (world, shard count);
// the ledger must apply batches atomically and emit groups in the canonical
// (city, bitrate) order whose per-shard concatenation equals the global
// ledger — the property the equivalence suite leans on end to end.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "market/shard.hpp"
#include "sim/scenario.hpp"

namespace vdx::market {
namespace {

const geo::World& world() {
  static const sim::Scenario* scenario = [] {
    sim::ScenarioConfig config;
    config.trace.session_count = 400;
    config.seed = 7;
    return new sim::Scenario(sim::Scenario::build(config));
  }();
  return scenario->world();
}

TEST(ShardPlanTest, EveryCityLandsOnExactlyOneShard) {
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const ShardPlan plan = ShardPlan::build(world(), shards);
    ASSERT_EQ(plan.shard_count, shards);
    ASSERT_EQ(plan.shard_of_city.size(), world().cities().size());
    std::vector<std::size_t> counted(shards, 0);
    for (const std::uint32_t owner : plan.shard_of_city) {
      ASSERT_LT(owner, shards);
      ++counted[owner];
    }
    ASSERT_EQ(plan.city_counts.size(), shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(plan.city_counts[s], counted[s]);
      EXPECT_GT(plan.city_counts[s], 0u)
          << "farthest-point seeding left shard " << s << " empty";
    }
  }
}

TEST(ShardPlanTest, BuildIsDeterministicAndHashDiscriminates) {
  const ShardPlan a = ShardPlan::build(world(), 4);
  const ShardPlan b = ShardPlan::build(world(), 4);
  EXPECT_EQ(a.shard_of_city, b.shard_of_city);
  EXPECT_EQ(a.hash(), b.hash());
  const ShardPlan other = ShardPlan::build(world(), 3);
  EXPECT_NE(a.hash(), other.hash());
}

TEST(ShardPlanTest, ShardCountClampsToCityCount) {
  const std::size_t cities = world().cities().size();
  const ShardPlan plan = ShardPlan::build(world(), cities + 50);
  EXPECT_EQ(plan.shard_count, cities);
  const ShardPlan zero = ShardPlan::build(world(), 0);
  EXPECT_EQ(zero.shard_count, 1u);  // floor at one shard
}

TEST(SessionLedgerTest, GroupsAreCanonicallyOrderedWithDenseIds) {
  SessionLedger ledger;
  const std::vector<proto::ShardSessionAdd> adds = {
      {0, 3, 2.4}, {1, 1, 1.2}, {2, 3, 1.2}, {3, 1, 1.2}, {4, 0, 4.8},
  };
  ASSERT_TRUE(ledger.apply(adds, {}).ok());
  const auto groups = ledger.groups();
  ASSERT_EQ(groups.size(), 4u);  // (0,4.8) (1,1.2)x2 (3,1.2) (3,2.4)
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].id.value(), i);
    if (i > 0) {
      const bool ordered =
          groups[i - 1].city.value() < groups[i].city.value() ||
          (groups[i - 1].city == groups[i].city &&
           groups[i - 1].bitrate_mbps < groups[i].bitrate_mbps);
      EXPECT_TRUE(ordered) << "groups out of (city, bitrate) order at " << i;
    }
  }
  EXPECT_EQ(groups[1].city.value(), 1u);
  EXPECT_DOUBLE_EQ(groups[1].client_count, 2.0);
}

TEST(SessionLedgerTest, RejectedBatchMutatesNothing) {
  SessionLedger ledger;
  const std::vector<proto::ShardSessionAdd> seed = {{0, 0, 1.0}, {1, 1, 2.0}};
  ASSERT_TRUE(ledger.apply(seed, {}).ok());
  const auto before = ledger.sessions();

  // Valid adds + one conflicting re-add: the WHOLE batch must bounce.
  const std::vector<proto::ShardSessionAdd> mixed = {
      {2, 0, 1.0}, {3, 1, 2.0}, {0, 1, 9.0},
  };
  const auto status = ledger.apply(mixed, {});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, core::Errc::kInvalidArgument);
  EXPECT_EQ(ledger.sessions(), before);
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(SessionLedgerTest, RetriedDeliveriesAreIdempotent) {
  SessionLedger ledger;
  const std::vector<proto::ShardSessionAdd> adds = {{5, 2, 1.6}};
  ASSERT_TRUE(ledger.apply(adds, {}).ok());
  // Identical re-add: no-op. Unknown remove: no-op.
  ASSERT_TRUE(ledger.apply(adds, {}).ok());
  EXPECT_EQ(ledger.size(), 1u);
  const std::vector<std::uint32_t> unknown = {777};
  ASSERT_TRUE(ledger.apply({}, unknown).ok());
  EXPECT_EQ(ledger.size(), 1u);
  // Remove then re-add round-trips.
  const std::vector<std::uint32_t> known = {5};
  ASSERT_TRUE(ledger.apply({}, known).ok());
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_TRUE(ledger.groups().empty());
  ASSERT_TRUE(ledger.apply(adds, {}).ok());
  EXPECT_EQ(ledger.size(), 1u);
}

// The load-bearing property: cities are disjoint across shards, so the
// (city, bitrate)-ordered concatenation of per-shard ledgers equals one
// global ledger over the same sessions.
TEST(SessionLedgerTest, PerShardConcatenationEqualsGlobalLedger) {
  const ShardPlan plan = ShardPlan::build(world(), 4);
  const std::size_t cities = world().cities().size();

  std::vector<proto::ShardSessionAdd> all;
  for (std::uint32_t id = 0; id < 500; ++id) {
    all.push_back({id, id % static_cast<std::uint32_t>(cities),
                   id % 3 == 0 ? 1.2 : 3.6});
  }
  SessionLedger global;
  ASSERT_TRUE(global.apply(all, {}).ok());

  std::vector<SessionLedger> shards(plan.shard_count);
  for (const proto::ShardSessionAdd& add : all) {
    ASSERT_TRUE(
        shards[plan.shard_of_city[add.city]].apply(std::span{&add, 1}, {}).ok());
  }
  std::vector<broker::ClientGroup> concat;
  for (const SessionLedger& ledger : shards) {
    for (const broker::ClientGroup& group : ledger.groups()) concat.push_back(group);
  }
  std::stable_sort(concat.begin(), concat.end(),
                   [](const broker::ClientGroup& a, const broker::ClientGroup& b) {
                     if (a.city.value() != b.city.value()) {
                       return a.city.value() < b.city.value();
                     }
                     return a.bitrate_mbps < b.bitrate_mbps;
                   });
  const auto expected = global.groups();
  ASSERT_EQ(concat.size(), expected.size());
  for (std::size_t i = 0; i < concat.size(); ++i) {
    EXPECT_EQ(concat[i].city.value(), expected[i].city.value()) << i;
    EXPECT_EQ(concat[i].bitrate_mbps, expected[i].bitrate_mbps) << i;
    EXPECT_EQ(concat[i].client_count, expected[i].client_count) << i;
  }
}

TEST(ShardBackendTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(ShardBackend::kInproc), "inproc");
  EXPECT_EQ(to_string(ShardBackend::kProcess), "process");
  EXPECT_EQ(shard_backend_from("inproc"), ShardBackend::kInproc);
  EXPECT_EQ(shard_backend_from("process"), ShardBackend::kProcess);
  EXPECT_FALSE(shard_backend_from("threads").has_value());
  EXPECT_FALSE(shard_backend_from("").has_value());
}

}  // namespace
}  // namespace vdx::market
