// Differential equivalence suite (DESIGN.md §14): a ShardedExchange at
// N in {1, 2, 4, 7} must be byte-identical to the monolithic VdxExchange —
// RoundReports, settled placements, journal JSONL, metrics JSONL — for the
// steady workload and all five adversarial stress scenarios, over both
// backends, with link chaos on, and with the pooled in-process collect path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "market/shard.hpp"
#include "shard/shard_test_util.hpp"
#include "sim/designs.hpp"

namespace vdx::market {
namespace {

using shard_test::RoundAction;
using shard_test::RunCapture;

constexpr std::size_t kShardCounts[] = {1, 2, 4, 7};
constexpr std::size_t kRounds = 4;

class ShardEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 1200;
    config.seed = 17;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
    background_ = new std::vector<double>(sim::place_background(*scenario_));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
    delete background_;
    background_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }
  static std::span<const double> background() { return *background_; }

  /// The monolithic reference for `script`.
  static RunCapture run_mono(const std::vector<RoundAction>& script) {
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    ExchangeConfig config;
    config.obs = obs::Observer{&metrics, nullptr, &journal};
    VdxExchange exchange{scenario(), config};
    return shard_test::drive(exchange, script, background(), journal, metrics);
  }

  static RunCapture run_sharded(const std::vector<RoundAction>& script,
                                ShardedConfig config) {
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario(), config};
    return shard_test::drive(exchange, script, background(), journal, metrics);
  }

  /// The core differential: one scenario, every shard count, inproc backend.
  static void expect_scenario_identical(sim::StressScenario kind) {
    const auto script = shard_test::make_script(scenario(), kind, kRounds);
    const RunCapture mono = run_mono(script);
    ASSERT_FALSE(mono.placements.empty());
    for (const std::size_t shards : kShardCounts) {
      ShardedConfig config;
      config.shards = shards;
      const RunCapture sharded = run_sharded(script, config);
      shard_test::expect_identical(
          mono, sharded,
          std::string{to_string(kind)} + " shards=" + std::to_string(shards));
    }
  }

 private:
  static sim::Scenario* scenario_;
  static std::vector<double>* background_;
};

sim::Scenario* ShardEquivalence::scenario_ = nullptr;
std::vector<double>* ShardEquivalence::background_ = nullptr;

TEST_F(ShardEquivalence, SteadyMatchesMonolithAtEveryShardCount) {
  expect_scenario_identical(sim::StressScenario::kSteady);
}

TEST_F(ShardEquivalence, FlashCrowdMatchesMonolithAtEveryShardCount) {
  expect_scenario_identical(sim::StressScenario::kFlashCrowd);
}

TEST_F(ShardEquivalence, DiurnalMatchesMonolithAtEveryShardCount) {
  expect_scenario_identical(sim::StressScenario::kDiurnal);
}

TEST_F(ShardEquivalence, BlackoutMatchesMonolithAtEveryShardCount) {
  expect_scenario_identical(sim::StressScenario::kBlackout);
}

TEST_F(ShardEquivalence, PriceShockMatchesMonolithAtEveryShardCount) {
  expect_scenario_identical(sim::StressScenario::kPriceShock);
}

TEST_F(ShardEquivalence, PerfectStormMatchesMonolithAtEveryShardCount) {
  expect_scenario_identical(sim::StressScenario::kPerfectStorm);
}

TEST_F(ShardEquivalence, ProcessBackendMatchesMonolith) {
  for (const sim::StressScenario kind :
       {sim::StressScenario::kSteady, sim::StressScenario::kPerfectStorm}) {
    const auto script = shard_test::make_script(scenario(), kind, kRounds);
    const RunCapture mono = run_mono(script);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      ShardedConfig config;
      config.shards = shards;
      config.backend = ShardBackend::kProcess;
      const RunCapture sharded = run_sharded(script, config);
      shard_test::expect_identical(mono, sharded,
                                   std::string{"process "} +
                                       std::string{to_string(kind)} +
                                       " shards=" + std::to_string(shards));
    }
  }
}

// Link chaos costs retries, never settlement bytes: with drop + corrupt +
// duplicate on every coordinator<->worker link, the output must still be
// byte-identical — and the injector must demonstrably have fired.
TEST_F(ShardEquivalence, LinkChaosNeverChangesSettlementBytes) {
  for (const sim::StressScenario kind :
       {sim::StressScenario::kSteady, sim::StressScenario::kFlashCrowd}) {
    const auto script = shard_test::make_script(scenario(), kind, kRounds);
    const RunCapture mono = run_mono(script);
    ShardedConfig config;
    config.shards = 7;
    config.link_faults.drop_rate = 0.2;
    config.link_faults.corrupt_rate = 0.1;
    config.link_faults.duplicate_rate = 0.1;

    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario(), config};
    const RunCapture sharded =
        shard_test::drive(exchange, script, background(), journal, metrics);
    shard_test::expect_identical(mono, sharded,
                                 std::string{"chaos "} +
                                     std::string{to_string(kind)});

    const proto::FaultCounters link = exchange.link_fault_counters();
    EXPECT_GT(link.frames, 0u);
    EXPECT_GT(link.dropped + link.corrupted + link.duplicated, 0u);
  }
}

// Duplicate-only chaos: every duplicated frame is delivered to its worker
// TWICE — no collapsing at the coordinator — so per-round idempotency is
// exercised end to end, and the settlement bytes still must not move.
TEST_F(ShardEquivalence, DuplicatedFramesAreDeliveredWithoutChangingBytes) {
  const auto script =
      shard_test::make_script(scenario(), sim::StressScenario::kSteady, kRounds);
  const RunCapture mono = run_mono(script);
  ShardedConfig config;
  config.shards = 4;
  config.link_faults.duplicate_rate = 1.0;  // EVERY data-plane frame, twice

  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
  ShardedExchange exchange{scenario(), config};
  const RunCapture sharded =
      shard_test::drive(exchange, script, background(), journal, metrics);
  shard_test::expect_identical(mono, sharded, "duplicate-only chaos");

  const proto::FaultCounters link = exchange.link_fault_counters();
  EXPECT_GT(link.duplicated, 0u);
  // Each apply emitted both copies and none were dropped: everything the
  // injector produced really went to (or came back from) a worker.
  EXPECT_EQ(link.delivered, link.frames + link.duplicated);
}

// Session-fed mode: the coordinator routes deltas to per-shard ledgers; a
// monolith holding ONE global ledger and regrouping each round must settle
// identically (the per-shard concatenation property, end to end).
TEST_F(ShardEquivalence, SessionFedMatchesGlobalLedgerAtEveryShardCount) {
  constexpr double kLadder[] = {0.8, 1.6, 3.2};
  const std::size_t cities = scenario().world().cities().size();
  const auto add_of = [&](std::uint32_t id) {
    return proto::ShardSessionAdd{id, id % static_cast<std::uint32_t>(cities),
                                  kLadder[(id / cities) % std::size(kLadder)]};
  };

  // Round r: admit [400r, 400r+400), retire [200(r-1), 200r).
  constexpr std::size_t kAdds = 400;
  constexpr std::size_t kDrops = 200;
  const auto deltas_of = [&](std::size_t r) {
    std::pair<std::vector<proto::ShardSessionAdd>, std::vector<std::uint32_t>> d;
    for (std::size_t k = 0; k < kAdds; ++k) {
      d.first.push_back(add_of(static_cast<std::uint32_t>(r * kAdds + k)));
    }
    if (r > 0) {
      for (std::size_t k = 0; k < kDrops; ++k) {
        d.second.push_back(static_cast<std::uint32_t>((r - 1) * kDrops + k));
      }
    }
    return d;
  };

  // Monolithic reference: one global ledger, regrouped per round. Session
  // mode prices against the scenario's placed background load.
  obs::MetricsRegistry mono_metrics;
  obs::RunJournal mono_journal;
  ExchangeConfig mono_config;
  mono_config.obs = obs::Observer{&mono_metrics, nullptr, &mono_journal};
  VdxExchange mono{scenario(), mono_config};
  SessionLedger global;
  std::vector<RoundReport> mono_reports;
  for (std::size_t r = 0; r < kRounds; ++r) {
    const auto [adds, removes] = deltas_of(r);
    ASSERT_TRUE(global.apply(adds, removes).ok());
    mono.set_active_load(global.groups(), background());
    mono_reports.push_back(mono.run_round());
  }
  std::ostringstream mono_journal_out;
  mono_journal.write_jsonl(mono_journal_out);
  std::ostringstream mono_metrics_out;
  mono_metrics.write_jsonl(mono_metrics_out);

  for (const std::size_t shards : kShardCounts) {
    ShardedConfig config;
    config.shards = shards;
    obs::MetricsRegistry metrics;
    obs::RunJournal journal;
    config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
    ShardedExchange exchange{scenario(), config};
    std::vector<RoundReport> reports;
    for (std::size_t r = 0; r < kRounds; ++r) {
      const auto [adds, removes] = deltas_of(r);
      ASSERT_TRUE(exchange.push_session_delta(adds, removes).ok());
      reports.push_back(exchange.run_round());
    }
    const std::string at = "sessions shards=" + std::to_string(shards);
    ASSERT_EQ(mono_reports.size(), reports.size()) << at;
    for (std::size_t r = 0; r < reports.size(); ++r) {
      EXPECT_EQ(mono_reports[r].awarded_mbps, reports[r].awarded_mbps)
          << at << " round " << r;
      EXPECT_EQ(mono_reports[r].mean_score, reports[r].mean_score)
          << at << " round " << r;
      EXPECT_EQ(mono_reports[r].wire.bytes_on_wire, reports[r].wire.bytes_on_wire)
          << at << " round " << r;
    }
    std::ostringstream journal_out;
    journal.write_jsonl(journal_out);
    EXPECT_EQ(mono_journal_out.str(), journal_out.str()) << at;
    std::ostringstream metrics_out;
    metrics.write_jsonl(metrics_out);
    EXPECT_EQ(mono_metrics_out.str(), metrics_out.str()) << at;
  }
}

// A batch whose removes target ids added in the SAME batch: the remove must
// follow its add to the owning shard (adds apply before removes, the
// SessionLedger contract). Routing removes off the committed table alone
// used to drop them, leaking phantom sessions into the worker ledgers that
// no later delta could ever remove — this pins the fix differentially.
TEST_F(ShardEquivalence, SameBatchAddRemoveMatchesGlobalLedger) {
  const auto cities =
      static_cast<std::uint32_t>(scenario().world().cities().size());
  constexpr std::uint32_t kAdds = 120;
  constexpr std::size_t kBatchRounds = 4;
  const auto add_of = [&](std::uint32_t id) {
    return proto::ShardSessionAdd{id, id % cities, id % 2 == 0 ? 1.1 : 2.7};
  };
  // Round r adds a block and, in the SAME batch, removes every third id of
  // that block — plus a slice of the previous round's ids, some of which
  // were already removed (idempotent re-remove coverage).
  const auto deltas_of = [&](std::size_t r) {
    std::pair<std::vector<proto::ShardSessionAdd>, std::vector<std::uint32_t>> d;
    const auto base = static_cast<std::uint32_t>(r) * kAdds;
    for (std::uint32_t k = 0; k < kAdds; ++k) d.first.push_back(add_of(base + k));
    for (std::uint32_t k = 0; k < kAdds; k += 3) d.second.push_back(base + k);
    if (r > 0) {
      for (std::uint32_t k = 1; k < kAdds; k += 4) {
        d.second.push_back(base - kAdds + k);
      }
    }
    return d;
  };

  std::vector<RoundReport> mono_reports;
  {
    VdxExchange mono{scenario()};
    SessionLedger global;
    for (std::size_t r = 0; r < kBatchRounds; ++r) {
      const auto [adds, removes] = deltas_of(r);
      ASSERT_TRUE(global.apply(adds, removes).ok());
      mono.set_active_load(global.groups(), background());
      mono_reports.push_back(mono.run_round());
    }
  }

  for (const std::size_t shards : kShardCounts) {
    ShardedConfig config;
    config.shards = shards;
    ShardedExchange exchange{scenario(), config};
    for (std::size_t r = 0; r < kBatchRounds; ++r) {
      const auto [adds, removes] = deltas_of(r);
      ASSERT_TRUE(exchange.push_session_delta(adds, removes).ok());
      const RoundReport report = exchange.run_round();
      const std::string at = "same-batch shards=" + std::to_string(shards) +
                             " round " + std::to_string(r);
      EXPECT_EQ(mono_reports[r].awarded_mbps, report.awarded_mbps) << at;
      EXPECT_EQ(mono_reports[r].mean_score, report.mean_score) << at;
      EXPECT_EQ(mono_reports[r].wire.bytes_on_wire, report.wire.bytes_on_wire)
          << at;
    }
  }
}

// Coordinator bookkeeping lands in the separate exchange.shard.* registry —
// never in the settlement registry, whose export must stay monolith-shaped.
TEST_F(ShardEquivalence, ShardMetricsStayOutOfTheSettlementRegistry) {
  const auto script =
      shard_test::make_script(scenario(), sim::StressScenario::kSteady, 2);
  ShardedConfig config;
  config.shards = 4;
  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  config.exchange.obs = obs::Observer{&metrics, nullptr, &journal};
  ShardedExchange exchange{scenario(), config};
  (void)shard_test::drive(exchange, script, background(), journal, metrics);

  for (const auto& row : metrics.rows()) {
    EXPECT_EQ(row.name.rfind("exchange.shard.", 0), std::string::npos)
        << row.name << " leaked into the settlement registry";
  }
  const auto rounds = exchange.shard_metrics().find("exchange.shard.rounds");
  ASSERT_TRUE(rounds.has_value());
  EXPECT_DOUBLE_EQ(rounds->value, 2.0);
  const auto shards = exchange.shard_metrics().find("exchange.shard.shards");
  ASSERT_TRUE(shards.has_value());
  EXPECT_DOUBLE_EQ(shards->value, 4.0);
}

}  // namespace
}  // namespace vdx::market
