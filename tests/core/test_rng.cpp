#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace vdx::core {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{5};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng{13};
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{17};
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLargeRegimes) {
  Rng rng{19};
  for (const double mean : {2.5, 80.0}) {
    double sum = 0.0;
    constexpr int kN = 50'000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kN, mean, mean * 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng{23};
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{29};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIsDeterministicAndLabelSensitive) {
  Rng parent1{99};
  Rng parent2{99};
  Rng a = parent1.fork("alpha");
  Rng b = parent2.fork("alpha");
  EXPECT_EQ(a(), b());

  Rng parent3{99};
  Rng c = parent3.fork("beta");
  Rng parent4{99};
  Rng d = parent4.fork("alpha");
  EXPECT_NE(c(), d());
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{31};
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = split_mix64(state);
  const std::uint64_t second = split_mix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(split_mix64(state2), first);
}

}  // namespace
}  // namespace vdx::core
