#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace vdx::core {
namespace {

TEST(Median, EmptyIsNullopt) {
  EXPECT_FALSE(median(std::span<const double>{}).has_value());
}

TEST(Median, OddAndEvenSizes) {
  const std::array<double, 5> odd{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(*median(std::span<const double>{odd}), 3.0);
  const std::array<double, 4> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(*median(std::span<const double>{even}), 2.5);
}

TEST(Quantile, EdgesAndMiddle) {
  const std::array<double, 5> v{10.0, 20.0, 30.0, 40.0, 50.0};
  const std::span<const double> s{v};
  EXPECT_DOUBLE_EQ(*quantile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(*quantile(s, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(*quantile(s, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(*quantile(s, 0.5), 30.0);
}

TEST(Quantile, InterpolatesBetweenOrderStats) {
  const std::array<double, 2> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(*quantile(std::span<const double>{v}, 0.3), 3.0);
}

TEST(Quantile, RejectsOutOfRangeQ) {
  const std::array<double, 2> v{0.0, 1.0};
  EXPECT_THROW((void)quantile(std::span<const double>{v}, 1.5), std::invalid_argument);
}

TEST(Mean, BasicAndEmpty) {
  const std::array<double, 3> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{v}), 3.0);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);        // bin 0
  h.add(9.9);        // bin 4
  h.add(-3.0);       // clamps to bin 0
  h.add(25.0);       // clamps to bin 4
  h.add(4.0, 2.0);   // bin 2, weight 2
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(2), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 6.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const auto fit = fit_line(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->at(10.0), 21.0, 1e-12);
}

TEST(LinearFit, DegenerateInputsRejected) {
  std::vector<double> one{1.0};
  EXPECT_FALSE(fit_line(one, one).has_value());
  std::vector<double> same_x{2.0, 2.0, 2.0};
  std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_FALSE(fit_line(same_x, ys).has_value());
  std::vector<double> mismatched{1.0, 2.0};
  EXPECT_FALSE(fit_line(mismatched, ys).has_value());
}

TEST(LinearFit, NoisyDataReasonableRSquared) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  const auto fit = fit_line(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 3.0, 0.01);
  EXPECT_GT(fit->r_squared, 0.99);
}

}  // namespace
}  // namespace vdx::core
