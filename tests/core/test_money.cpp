#include "core/money.hpp"

#include <gtest/gtest.h>

namespace vdx::core {
namespace {

TEST(Money, DefaultIsZero) {
  EXPECT_EQ(Money{}.micros(), 0);
  EXPECT_DOUBLE_EQ(Money{}.dollars(), 0.0);
}

TEST(Money, DollarsRoundTrip) {
  const Money m = Money::from_dollars(12.345678);
  EXPECT_EQ(m.micros(), 12'345'678);
  EXPECT_DOUBLE_EQ(m.dollars(), 12.345678);
}

TEST(Money, RoundsHalfAwayFromZero) {
  EXPECT_EQ(Money::from_dollars(0.0000005).micros(), 1);
  EXPECT_EQ(Money::from_dollars(-0.0000005).micros(), -1);
}

TEST(Money, Arithmetic) {
  const Money a = Money::from_dollars(1.5);
  const Money b = Money::from_dollars(0.25);
  EXPECT_EQ((a + b).micros(), 1'750'000);
  EXPECT_EQ((a - b).micros(), 1'250'000);
  EXPECT_EQ((-b).micros(), -250'000);
  Money c = a;
  c += b;
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Money, Comparisons) {
  EXPECT_LT(Money::from_dollars(1.0), Money::from_dollars(2.0));
  EXPECT_EQ(Money::from_dollars(1.0), Money::from_micros(1'000'000));
  EXPECT_GT(Money::from_dollars(-1.0), Money::from_dollars(-2.0));
}

TEST(Money, ScaledAppliesMarkup) {
  const Money cost = Money::from_dollars(100.0);
  EXPECT_DOUBLE_EQ(cost.scaled(1.2).dollars(), 120.0);
  EXPECT_DOUBLE_EQ(cost.scaled(0.0).dollars(), 0.0);
}

TEST(Money, ToStringFormatsMicros) {
  EXPECT_EQ(Money::from_dollars(3.5).to_string(), "$3.500000");
  EXPECT_EQ(Money::from_micros(-1).to_string(), "-$0.000001");
  EXPECT_EQ(Money{}.to_string(), "$0.000000");
}

TEST(Money, OverflowThrows) {
  EXPECT_THROW(Money::from_dollars(1e300), std::overflow_error);
}

}  // namespace
}  // namespace vdx::core
