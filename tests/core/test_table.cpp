#include "core/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace vdx::core {
namespace {

TEST(Table, RejectsEmptyHeadersAndArityMismatch) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t{{"Design", "Cost"}};
  t.set_title("Table 3");
  t.add_row({"Brokered", "136"});
  t.add_row({"Marketplace", "93"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Table 3"), std::string::npos);
  EXPECT_NE(out.find("| Design      |"), std::string::npos);
  EXPECT_NE(out.find("| Marketplace |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t{{"name", "note"}};
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
  EXPECT_EQ(out.find("\"plain\""), std::string::npos);  // no needless quoting
}

TEST(Format, DoubleAndPercent) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_percent(0.314, 1), "31.4%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace vdx::core
