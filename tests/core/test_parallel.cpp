#include "core/parallel.hpp"

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace vdx::core {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(0), ThreadPool::hardware_threads());
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SingleThreadSpawnsNoWorkers) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, ForIndexedRunsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_indexed(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ForIndexedZeroCountIsNoop) {
  ThreadPool pool{4};
  bool touched = false;
  pool.for_indexed(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, PoolIsReusableAcrossJobs) {
  ThreadPool pool{3};
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_indexed(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelMap, CollectsResultsInInputOrder) {
  ThreadPool pool{8};
  const auto squares =
      parallel_map(pool, 500, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 500u);
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMap, MatchesSerialByteForByte) {
  const auto fn = [](std::size_t i) {
    // Deliberately FP-heavy: same slot, same operations, same rounding.
    double x = static_cast<double>(i) * 0.1;
    for (int k = 0; k < 50; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  ThreadPool serial{1};
  ThreadPool parallel{8};
  const auto a = parallel_map(serial, 300, fn);
  const auto b = parallel_map(parallel, 300, fn);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "slot " << i;  // exact, not near
  }
}

TEST(ParallelMap, SupportsMoveOnlyResults) {
  ThreadPool pool{4};
  const auto ptrs = parallel_map(
      pool, 64, [](std::size_t i) { return std::make_unique<std::size_t>(i); });
  for (std::size_t i = 0; i < ptrs.size(); ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(ThreadPool, RethrowsSmallestFailingIndex) {
  ThreadPool pool{4};
  // Several indices fail; the contract picks the smallest one regardless of
  // which thread hit it first.
  const auto body = [](std::size_t i) {
    if (i == 3 || i == 7 || i == 11) {
      throw std::runtime_error{"boom at " + std::to_string(i)};
    }
  };
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.for_indexed(64, body);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom at 3");
    }
  }
}

TEST(ThreadPool, ExceptionDoesNotSkipOtherIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.for_indexed(64,
                                [&](std::size_t i) {
                                  hits[i].fetch_add(1);
                                  if (i == 5) throw std::runtime_error{"x"};
                                }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SerialPathPropagatesExceptionsDirectly) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.for_indexed(
                   8, [](std::size_t i) {
                     if (i == 2) throw std::invalid_argument{"serial"};
                   }),
               std::invalid_argument);
}

TEST(ThreadPool, ReentrantSubmissionThrowsLogicError) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.for_indexed(4,
                                [&](std::size_t) {
                                  pool.for_indexed(4, [](std::size_t) {});
                                }),
               std::logic_error);
}

TEST(ParallelForIndexed, WritesThroughReferences) {
  ThreadPool pool{4};
  std::vector<double> out(128, 0.0);
  parallel_for_indexed(pool, out.size(),
                       [&](std::size_t i) { out[i] = static_cast<double>(i) * 2.0; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

}  // namespace
}  // namespace vdx::core
