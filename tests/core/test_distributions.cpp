#include "core/distributions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace vdx::core {
namespace {

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf{100, 0.8};
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, RankZeroIsMostPopular) {
  ZipfDistribution zipf{50, 1.0};
  for (std::size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_GT(zipf.pmf(0), zipf.pmf(k));
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchPmf) {
  ZipfDistribution zipf{20, 0.8};
  Rng rng{123};
  std::vector<double> counts(20, 0.0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) counts[zipf(rng)] += 1.0;
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(counts[k] / kN, zipf.pmf(k), 0.01) << "rank " << k;
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfDistribution zipf{8, 0.0};
  for (std::size_t k = 0; k < 8; ++k) EXPECT_NEAR(zipf.pmf(k), 0.125, 1e-12);
}

TEST(BoundedPareto, RejectsBadArguments) {
  EXPECT_THROW(BoundedParetoDistribution(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(2.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.0, 2.0, 0.0), std::invalid_argument);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  BoundedParetoDistribution pareto{1.0, 100.0, 1.3};
  Rng rng{7};
  for (int i = 0; i < 20'000; ++i) {
    const double x = pareto(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, HeavyTailSkewsLow) {
  // Closed-form CDF at 10 for alpha=1.5 on [1, 1000] is
  // (1 - 10^-0.5) / (1 - 1000^-0.5) ~= 0.706; check the empirical mass.
  BoundedParetoDistribution pareto{1.0, 1000.0, 1.5};
  Rng rng{11};
  int below_ten = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (pareto(rng) < 10.0) ++below_ten;
  }
  EXPECT_NEAR(static_cast<double>(below_ten) / kN, 0.706, 0.02);
}

TEST(BoundedPareto, AlphaOneSpecialCaseInBounds) {
  BoundedParetoDistribution pareto{2.0, 64.0, 1.0};
  Rng rng{13};
  for (int i = 0; i < 10'000; ++i) {
    const double x = pareto(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 64.0);
  }
}

TEST(Discrete, RejectsBadWeights) {
  EXPECT_THROW(DiscreteDistribution(std::span<const double>{}), std::invalid_argument);
  const std::array<double, 2> zero{0.0, 0.0};
  EXPECT_THROW(DiscreteDistribution(std::span<const double>{zero}), std::invalid_argument);
  const std::array<double, 2> negative{1.0, -0.5};
  EXPECT_THROW(DiscreteDistribution(std::span<const double>{negative}),
               std::invalid_argument);
}

TEST(Discrete, FrequenciesMatchWeights) {
  const std::array<double, 4> weights{1.0, 2.0, 3.0, 4.0};
  DiscreteDistribution dist{std::span<const double>{weights}};
  Rng rng{17};
  std::array<double, 4> counts{};
  constexpr int kN = 400'000;
  for (int i = 0; i < kN; ++i) counts[dist(rng)] += 1.0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / kN, weights[i] / 10.0, 0.005) << "outcome " << i;
  }
}

TEST(Discrete, ProbabilityOfIsNormalized) {
  const std::array<double, 3> weights{2.0, 2.0, 6.0};
  DiscreteDistribution dist{std::span<const double>{weights}};
  EXPECT_NEAR(dist.probability_of(0), 0.2, 1e-12);
  EXPECT_NEAR(dist.probability_of(2), 0.6, 1e-12);
  EXPECT_THROW(dist.probability_of(3), std::out_of_range);
}

TEST(Discrete, ZeroWeightOutcomeNeverSampled) {
  const std::array<double, 3> weights{1.0, 0.0, 1.0};
  DiscreteDistribution dist{std::span<const double>{weights}};
  Rng rng{19};
  for (int i = 0; i < 50'000; ++i) EXPECT_NE(dist(rng), 1u);
}

TEST(Bimodal, SamplesClampedAndBimodal) {
  BimodalDistribution bitrates{{0.5, 0.2, 0.6}, {4.0, 0.5, 0.4}, 0.2, 5.0};
  Rng rng{23};
  int low = 0;
  int high = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = bitrates(rng);
    EXPECT_GE(x, 0.2);
    EXPECT_LE(x, 5.0);
    if (x < 1.5) ++low;
    if (x > 3.0) ++high;
  }
  // Both modes carry substantial mass (paper: peaks at lowest & highest).
  EXPECT_GT(static_cast<double>(low) / kN, 0.4);
  EXPECT_GT(static_cast<double>(high) / kN, 0.25);
}

TEST(Bimodal, RejectsBadClamp) {
  EXPECT_THROW(BimodalDistribution({0.0, 1.0, 0.5}, {1.0, 1.0, 0.5}, 2.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdx::core
