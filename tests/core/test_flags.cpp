// core::Flags: the validated CLI parser behind vdxsim. Invalid values must
// die loudly with a one-line message naming the flag and the offending
// value; absent flags fall back; typo'd flags are rejected, never ignored.
#include "core/flags.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace vdx::core {
namespace {

Flags make(std::initializer_list<std::string> args) {
  return Flags{std::vector<std::string>{args}};
}

/// The exact one-line message matters: it is the CLI's entire error UX.
void expect_throws(const std::function<void()>& action, const std::string& message) {
  try {
    action();
    FAIL() << "expected std::invalid_argument: " << message;
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string{error.what()}, message);
  }
}

TEST(Flags, ParsesValuesSwitchesAndFallbacks) {
  Flags flags = make({"--sessions", "2000", "--hours", "1.5", "--stream",
                      "--name", "marketplace"});
  EXPECT_EQ(flags.count("sessions", 0, 1), 2000u);
  EXPECT_DOUBLE_EQ(flags.positive("hours", 0.0), 1.5);
  EXPECT_TRUE(flags.boolean("stream"));
  EXPECT_EQ(flags.text("name", "x"), "marketplace");
  EXPECT_FALSE(flags.boolean("absent-switch"));
  EXPECT_EQ(flags.count("absent", 7, 1), 7u);
  EXPECT_DOUBLE_EQ(flags.number("absent-number", 2.5), 2.5);
  EXPECT_EQ(flags.text("absent-text", "fallback"), "fallback");
  flags.check_all_used();
}

TEST(Flags, PositiveRejectsZeroAndNegativeButAllowsZeroFallback) {
  expect_throws([] { (void)make({"--hours", "0"}).positive("hours", 0.0); },
                "--hours must be > 0 (got '0')");
  expect_throws([] { (void)make({"--hours", "-2"}).positive("hours", 0.0); },
                "--hours must be > 0 (got '-2')");
  // Absent flag: the 0.0 sentinel passes through untouched (vdxsim uses it
  // for "keep the trace default horizon").
  EXPECT_DOUBLE_EQ(make({}).positive("hours", 0.0), 0.0);
}

TEST(Flags, NumberRejectsGarbageAndNonFinite) {
  expect_throws([] { (void)make({"--veto", "abc"}).number("veto", 0.0); },
                "--veto needs a number (got 'abc')");
  expect_throws([] { (void)make({"--veto", "1.5x"}).number("veto", 0.0); },
                "--veto needs a finite number (got '1.5x')");
  expect_throws([] { (void)make({"--veto", "inf"}).number("veto", 0.0); },
                "--veto needs a finite number (got 'inf')");
  expect_throws([] { (void)make({"--veto"}).number("veto", 0.0); },
                "--veto needs a value");
}

TEST(Flags, CountEnforcesIntegerAndMinimum) {
  expect_throws([] { (void)make({"--threads", "0"}).count("threads", 0, 1); },
                "--threads must be an integer >= 1 (got '0')");
  expect_throws([] { (void)make({"--threads", "-4"}).count("threads", 0, 1); },
                "--threads must be an integer >= 1 (got '-4')");
  expect_throws([] { (void)make({"--threads", "2.5"}).count("threads", 0, 1); },
                "--threads needs an integer (got '2.5')");
  // Absent flag: the fallback may sit below the minimum (vdxsim's 0 =
  // hardware_concurrency sentinel) — only explicit values are range-checked.
  EXPECT_EQ(make({}).count("threads", 0, 1), 0u);
  EXPECT_EQ(make({"--threads", "8"}).count("threads", 0, 1), 8u);
}

TEST(Flags, ExistingPathRejectsMissingFiles) {
  expect_throws(
      [] { (void)make({"--resume-from", "no-such.vdxsnap"}).existing_path("resume-from"); },
      "--resume-from: no such file or directory: 'no-such.vdxsnap'");
  EXPECT_EQ(make({}).existing_path("resume-from"), "");
}

TEST(Flags, UnknownFlagsAreRejectedNotIgnored) {
  Flags flags = make({"--sessions", "2000", "--sesions", "99"});
  EXPECT_EQ(flags.count("sessions", 0, 1), 2000u);
  expect_throws([&flags] { flags.check_all_used(); }, "unknown flag --sesions");
}

TEST(Flags, RejectsMalformedTokens) {
  expect_throws([] { (void)make({"sessions", "2000"}); },
                "expected --flag, got 'sessions'");
  expect_throws([] { (void)make({"--"}); }, "empty flag name '--'");
}

TEST(Flags, OneOfAcceptsListedValuesAndFallsBack) {
  const std::vector<std::string> scenarios{"steady", "flash-crowd", "blackout"};
  EXPECT_EQ(make({"--scenario", "blackout"}).one_of("scenario", "steady", scenarios),
            "blackout");
  // Absent flag: the fallback is returned as-is, not re-validated.
  EXPECT_EQ(make({}).one_of("scenario", "steady", scenarios), "steady");
}

TEST(Flags, OneOfRejectsUnlistedValuesWithTheFullMenu) {
  const std::vector<std::string> scenarios{"steady", "flash-crowd", "blackout"};
  expect_throws(
      [&scenarios] {
        (void)make({"--scenario", "tsunami"}).one_of("scenario", "steady", scenarios);
      },
      "--scenario must be one of steady|flash-crowd|blackout (got 'tsunami')");
  expect_throws(
      [&scenarios] {
        (void)make({"--scenario"}).one_of("scenario", "steady", scenarios);
      },
      "--scenario needs a value");
}

TEST(Flags, EqualsSyntaxParsesLikeSpaceSyntax) {
  Flags flags = make({"--sessions=2000", "--hours=1.5", "--stream",
                      "--name=marketplace", "--scenario=flash-crowd"});
  EXPECT_EQ(flags.count("sessions", 0, 1), 2000u);
  EXPECT_DOUBLE_EQ(flags.positive("hours", 0.0), 1.5);
  EXPECT_TRUE(flags.boolean("stream"));
  EXPECT_EQ(flags.text("name", "x"), "marketplace");
  EXPECT_EQ(flags.one_of("scenario", "steady", {"steady", "flash-crowd"}),
            "flash-crowd");
  flags.check_all_used();
}

TEST(Flags, EqualsSyntaxKeepsValuesThatLookLikeFlags) {
  // `--out=--weird` must take the literal value; the space form would have
  // read `--weird` as the next flag.
  Flags flags = make({"--out=--weird", "--factor=-2.5"});
  EXPECT_EQ(flags.text("out", ""), "--weird");
  EXPECT_DOUBLE_EQ(flags.number("factor", 0.0), -2.5);
  flags.check_all_used();
}

TEST(Flags, EqualsSyntaxRejectionsMatchSpaceSyntax) {
  // Same one-line messages for both spellings of an invalid value.
  expect_throws([] { (void)make({"--hours=0"}).positive("hours", 0.0); },
                "--hours must be > 0 (got '0')");
  expect_throws([] { (void)make({"--threads=2.5"}).count("threads", 0, 1); },
                "--threads needs an integer (got '2.5')");
  expect_throws([] { (void)make({"--veto=abc"}).number("veto", 0.0); },
                "--veto needs a number (got 'abc')");
  expect_throws([] { (void)make({"--veto="}).number("veto", 0.0); },
                "--veto needs a value");
  expect_throws([] { (void)make({"--=5"}); }, "empty flag name '--=5'");
  // The first '=' splits; later ones belong to the value.
  EXPECT_EQ(make({"--out=a=b"}).text("out", ""), "a=b");
}

TEST(Flags, WriteHelpListsDeclaredFlagsInDeclarationOrder) {
  Flags flags = make({});
  (void)flags.count("sessions", 2000, 1);
  (void)flags.positive("hours", 1.5);
  (void)flags.boolean("stream");
  (void)flags.one_of("scenario", "steady", {"steady", "blackout"});
  (void)flags.count("sessions", 0, 1);  // re-declaration: listed once
  std::ostringstream out;
  flags.write_help(out);
  const std::string help = out.str();
  EXPECT_NE(help.find("--sessions <integer >= 1>"), std::string::npos);
  EXPECT_NE(help.find("default: 2000"), std::string::npos);
  EXPECT_NE(help.find("--hours <number > 0>"), std::string::npos);
  EXPECT_NE(help.find("--stream"), std::string::npos);
  EXPECT_NE(help.find("--scenario <steady|blackout>"), std::string::npos);
  EXPECT_NE(help.find("default: steady"), std::string::npos);
  // First declaration wins the ordering and the default shown.
  EXPECT_LT(help.find("--sessions"), help.find("--hours"));
  EXPECT_EQ(help.find("default: 0\n"), std::string::npos);
  // Exactly one line per distinct flag.
  EXPECT_EQ(std::count(help.begin(), help.end(), '\n'), 4);
}

TEST(Flags, BareSwitchBeforeAnotherFlagParses) {
  Flags flags = make({"--stream", "--sessions", "2000"});
  EXPECT_TRUE(flags.boolean("stream"));
  EXPECT_EQ(flags.count("sessions", 0, 1), 2000u);
  EXPECT_TRUE(flags.has("stream"));
  EXPECT_FALSE(flags.has("hours"));
}

}  // namespace
}  // namespace vdx::core
