#include "core/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace vdx::core {
namespace {

TEST(Result, HoldsValue) {
  const Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  const auto r = Result<int>::failure(Errc::kCorruptFrame, "bad checksum");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kCorruptFrame);
  EXPECT_EQ(r.error().message, "bad checksum");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, WrongSideAccessIsLogicError) {
  const Result<int> ok{7};
  const auto bad = Result<int>::failure(Errc::kTimeout, "late");
  EXPECT_THROW((void)ok.error(), std::logic_error);
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string{"payload"}};
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, StatusHelpers) {
  const Status good = ok_status();
  EXPECT_TRUE(good.ok());
  const Status bad = Status::failure(Errc::kNotReady, "no round yet");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kNotReady);
}

TEST(Result, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(errc_name(Errc::kNotReady), "not_ready");
  EXPECT_STREQ(errc_name(Errc::kCorruptFrame), "corrupt_frame");
  EXPECT_STREQ(errc_name(Errc::kTimeout), "timeout");
  EXPECT_STREQ(errc_name(Errc::kUnavailable), "unavailable");
}

}  // namespace
}  // namespace vdx::core
