// Parallel-vs-serial byte-identity acceptance (DESIGN.md §8).
//
// The determinism contract: with the same seed, every placement, journal
// line, trace line, and integer counter is byte-identical at any --threads
// value. Only wall-clock histograms (`*seconds*`) and the FP-sum-order
// diagnostic `broker.optimize.overflow_mbps` are exempt; the metrics-JSONL
// comparison below filters exactly those lines and nothing else.
//
// Override the parallel thread count with VDX_TEST_THREADS (default 8); the
// TSan CI job runs this suite to flush data races out of the shared-cache
// read paths.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "cdn/menu_cache.hpp"
#include "core/parallel.hpp"
#include "market/exchange.hpp"
#include "market/federation.hpp"
#include "sim/experiments.hpp"
#include "sim/multibroker.hpp"
#include "obs/observe.hpp"
#include "obs/tracer.hpp"

namespace vdx {
namespace {

std::size_t test_threads() {
  if (const char* env = std::getenv("VDX_TEST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 1) return static_cast<std::size_t>(parsed);
  }
  return 8;
}

/// Drops the metric lines the determinism contract exempts: wall-clock
/// timings and the one FP-accumulation-order diagnostic.
std::string filter_exempt_lines(const std::string& jsonl) {
  std::istringstream in{jsonl};
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("seconds") != std::string::npos) continue;
    if (line.find("overflow_mbps") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

void expect_outcomes_identical(const sim::DesignOutcome& a,
                               const sim::DesignOutcome& b) {
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].group, b.placements[i].group) << "slot " << i;
    EXPECT_EQ(a.placements[i].cluster, b.placements[i].cluster) << "slot " << i;
    EXPECT_EQ(a.placements[i].clients, b.placements[i].clients) << "slot " << i;
    EXPECT_EQ(a.placements[i].price, b.placements[i].price) << "slot " << i;
    EXPECT_EQ(a.placements[i].score, b.placements[i].score) << "slot " << i;
  }
  EXPECT_EQ(a.cluster_loads, b.cluster_loads);
  EXPECT_EQ(a.background_loads, b.background_loads);
}

void expect_metrics_identical(const sim::DesignMetrics& a,
                              const sim::DesignMetrics& b) {
  EXPECT_EQ(a.median_cost, b.median_cost);
  EXPECT_EQ(a.median_score, b.median_score);
  EXPECT_EQ(a.median_distance_miles, b.median_distance_miles);
  EXPECT_EQ(a.median_load, b.median_load);
  EXPECT_EQ(a.congested_fraction, b.congested_fraction);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.mean_score, b.mean_score);
  EXPECT_EQ(a.broker_traffic_mbps, b.broker_traffic_mbps);
}

class ParallelIdentityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::ScenarioConfig config;
    config.trace.session_count = 4000;
    config.seed = 47;
    scenario_ = new sim::Scenario(sim::Scenario::build(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const sim::Scenario& scenario() { return *scenario_; }

 private:
  static sim::Scenario* scenario_;
};

sim::Scenario* ParallelIdentityTest::scenario_ = nullptr;

TEST_F(ParallelIdentityTest, DesignRunsAreByteIdenticalAcrossThreadCounts) {
  for (const sim::Design design :
       {sim::Design::kBrokered, sim::Design::kMarketplace,
        sim::Design::kBestLookup}) {
    sim::RunConfig serial;
    serial.threads = 1;
    sim::RunConfig parallel;
    parallel.threads = test_threads();
    expect_outcomes_identical(sim::run_design(scenario(), design, serial),
                              sim::run_design(scenario(), design, parallel));
  }
}

TEST_F(ParallelIdentityTest, SharedMenuCacheDoesNotChangeOutcomes) {
  // The cache-eligibility check must make cached and uncached paths
  // indistinguishable: menus come from the same candidates_for.
  sim::RunConfig plain;
  cdn::MatchingConfig matching;
  matching.max_candidates = plain.bid_count;
  matching.score_tolerance = plain.menu_tolerance;
  const cdn::CandidateMenuCache menus{scenario().catalog(), scenario().mapping(),
                                      scenario().world().cities().size(),
                                      matching};
  sim::RunConfig cached = plain;
  cached.menus = &menus;
  for (const sim::Design design :
       {sim::Design::kMarketplace, sim::Design::kDynamicMulticluster}) {
    expect_outcomes_identical(sim::run_design(scenario(), design, plain),
                              sim::run_design(scenario(), design, cached));
  }
}

TEST_F(ParallelIdentityTest, Table3IsByteIdenticalAcrossThreadCounts) {
  sim::RunConfig serial;
  serial.threads = 1;
  sim::RunConfig parallel;
  parallel.threads = test_threads();
  const auto a = sim::table3_design_comparison(scenario(), serial);
  const auto b = sim::table3_design_comparison(scenario(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].design, b[i].design);
    expect_metrics_identical(a[i].metrics, b[i].metrics);
  }
}

TEST_F(ParallelIdentityTest, Fig17SweepIsByteIdenticalAcrossThreadCounts) {
  const double weights[] = {0.5, 2.0};
  const sim::Design designs[] = {sim::Design::kBrokered,
                                 sim::Design::kMarketplace};
  const auto a = sim::fig17_tradeoff(scenario(), weights, designs, 1);
  const auto b =
      sim::fig17_tradeoff(scenario(), weights, designs, test_threads());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].design, b[i].design);
    EXPECT_EQ(a[i].cost_weight, b[i].cost_weight);
    EXPECT_EQ(a[i].median_cost, b[i].median_cost);
    EXPECT_EQ(a[i].median_distance_miles, b[i].median_distance_miles);
  }
}

TEST_F(ParallelIdentityTest, MultiBrokerIsByteIdenticalAcrossThreadCounts) {
  for (const sim::Design design :
       {sim::Design::kBestLookup, sim::Design::kMarketplace}) {
    sim::MultiBrokerConfig serial;
    serial.design = design;
    serial.broker_count = 3;
    serial.run.threads = 1;
    sim::MultiBrokerConfig parallel = serial;
    parallel.run.threads = test_threads();
    const auto a = sim::run_multibroker(scenario(), serial);
    const auto b = sim::run_multibroker(scenario(), parallel);
    EXPECT_EQ(a.broker_clients, b.broker_clients);
    EXPECT_EQ(a.overbooked_clusters, b.overbooked_clusters);
    expect_metrics_identical(a.metrics, b.metrics);
  }
}

/// One fully observed federated run; everything exported to strings.
struct ObservedFederation {
  market::FederationResult result;
  std::string metrics_jsonl;
  std::string trace_jsonl;
  std::string journal_jsonl;
};

ObservedFederation observed_federation(const sim::Scenario& scenario,
                                       std::size_t threads) {
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  market::FederationConfig config;
  config.region_count = 8;
  config.threads = threads;
  config.obs = obs::Observer{&metrics, &tracer, &journal};
  ObservedFederation run;
  run.result = market::run_federated_marketplace(scenario, config);
  std::ostringstream m;
  metrics.write_jsonl(m);
  run.metrics_jsonl = m.str();
  std::ostringstream t;
  tracer.write_jsonl(t);
  run.trace_jsonl = t.str();
  std::ostringstream j;
  journal.write_jsonl(j);
  run.journal_jsonl = j.str();
  return run;
}

TEST_F(ParallelIdentityTest, FederationExportsAreByteIdenticalAcrossThreads) {
  const ObservedFederation serial = observed_federation(scenario(), 1);
  const ObservedFederation parallel =
      observed_federation(scenario(), test_threads());

  EXPECT_EQ(serial.result.region_city_counts,
            parallel.result.region_city_counts);
  EXPECT_EQ(serial.result.fallback_bids, parallel.result.fallback_bids);
  EXPECT_EQ(serial.result.largest_instance_options,
            parallel.result.largest_instance_options);
  expect_metrics_identical(serial.result.metrics, parallel.result.metrics);

  // Journal and trace are recorded by the coordinator in region order:
  // byte-identical, no filtering allowed.
  EXPECT_FALSE(serial.journal_jsonl.empty());
  EXPECT_EQ(serial.journal_jsonl, parallel.journal_jsonl);
  EXPECT_FALSE(serial.trace_jsonl.empty());
  EXPECT_EQ(serial.trace_jsonl, parallel.trace_jsonl);

  // Metrics: identical except the documented exemptions.
  EXPECT_FALSE(serial.metrics_jsonl.empty());
  EXPECT_EQ(filter_exempt_lines(serial.metrics_jsonl),
            filter_exempt_lines(parallel.metrics_jsonl));
  // The filter must not have thrown everything away.
  EXPECT_NE(filter_exempt_lines(serial.metrics_jsonl).find("federation.region_solves"),
            std::string::npos);
}

/// Chaos runs on pool worker threads (the bench/chaos_sweep shape): each
/// sweep point owns its exchange and observer; results must match a direct
/// main-thread run byte for byte, drop rate 0.1 included.
TEST_F(ParallelIdentityTest, ChaosExchangeOnWorkerThreadsIsByteIdentical) {
  const auto observed_chaos = [&](double drop_rate) {
    obs::MetricsRegistry metrics;
    obs::SpanTracer tracer;
    obs::RunJournal journal;
    market::ExchangeConfig config;
    config.chaos.faults.drop_rate = drop_rate;
    config.chaos.faults.seed = 0x5EED;
    config.obs = obs::Observer{&metrics, &tracer, &journal};
    market::VdxExchange exchange{scenario(), config};
    (void)exchange.run(3);
    std::ostringstream t;
    tracer.write_jsonl(t);
    std::ostringstream j;
    journal.write_jsonl(j);
    std::ostringstream m;
    metrics.write_jsonl(m);
    return std::array<std::string, 3>{t.str(), j.str(), m.str()};
  };

  const auto serial = observed_chaos(0.1);
  const double rates[] = {0.05, 0.1, 0.2};
  core::ThreadPool pool{test_threads()};
  const auto parallel = core::parallel_map(
      pool, 3, [&](std::size_t i) { return observed_chaos(rates[i]); });

  EXPECT_FALSE(serial[0].empty());
  EXPECT_EQ(serial[0], parallel[1][0]);  // trace
  EXPECT_EQ(serial[1], parallel[1][1]);  // journal
  EXPECT_EQ(filter_exempt_lines(serial[2]),
            filter_exempt_lines(parallel[1][2]));  // metrics
  // Distinct fault profiles really produced distinct runs.
  EXPECT_NE(parallel[0][1], parallel[2][1]);
}

}  // namespace
}  // namespace vdx
