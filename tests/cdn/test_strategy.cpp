#include "cdn/strategy.hpp"

#include <gtest/gtest.h>

namespace vdx::cdn {
namespace {

const CityId kCity{3};
const ClusterId kCluster{7};
const CityId kOtherCity{4};

TEST(StaticStrategy, FixedShadingAndOptimisticExpectation) {
  StaticStrategy strategy{1.2};
  const BidShading s = strategy.shade(kCity, kCluster);
  EXPECT_DOUBLE_EQ(s.price_multiplier, 1.2);
  EXPECT_DOUBLE_EQ(s.capacity_fraction, 1.0);
  EXPECT_DOUBLE_EQ(strategy.expected_win(kCity, kCluster, 50.0), 50.0);
  strategy.record_outcome(kCity, kCluster, 50.0, 0.0);  // ignored
  EXPECT_DOUBLE_EQ(strategy.shade(kCity, kCluster).price_multiplier, 1.2);
}

TEST(RiskAverseStrategy, UnknownMarketHedges) {
  RiskAverseStrategy strategy;
  const BidShading s = strategy.shade(kCity, kCluster);
  EXPECT_DOUBLE_EQ(s.price_multiplier, 1.2);
  EXPECT_DOUBLE_EQ(s.capacity_fraction, 0.5);
  EXPECT_DOUBLE_EQ(strategy.win_rate(kCity, kCluster), 0.5);
}

TEST(RiskAverseStrategy, RepeatedLossesShavePriceAndCapacity) {
  RiskAverseStrategy strategy;
  for (int round = 0; round < 20; ++round) {
    strategy.record_outcome(kCity, kCluster, 100.0, 0.0);
  }
  EXPECT_LT(strategy.win_rate(kCity, kCluster), 0.05);
  const BidShading s = strategy.shade(kCity, kCluster);
  EXPECT_LT(s.price_multiplier, 1.2);
  EXPECT_GE(s.price_multiplier, 1.02);
  EXPECT_LT(s.capacity_fraction, 0.3);
  EXPECT_GE(s.capacity_fraction, 0.1);  // keeps probing
}

TEST(RiskAverseStrategy, RepeatedWinsRestoreMarkupAndCommitment) {
  RiskAverseStrategy strategy;
  for (int round = 0; round < 10; ++round) {
    strategy.record_outcome(kCity, kCluster, 100.0, 0.0);  // crash the market
  }
  for (int round = 0; round < 30; ++round) {
    strategy.record_outcome(kCity, kCluster, 100.0, 100.0);  // now winning
  }
  EXPECT_GT(strategy.win_rate(kCity, kCluster), 0.9);
  const BidShading s = strategy.shade(kCity, kCluster);
  EXPECT_DOUBLE_EQ(s.price_multiplier, 1.2);  // recovered to max markup
  EXPECT_DOUBLE_EQ(s.capacity_fraction, 1.0);
}

TEST(RiskAverseStrategy, ExpectedWinTracksWinRate) {
  RiskAverseStrategy strategy;
  for (int round = 0; round < 30; ++round) {
    strategy.record_outcome(kCity, kCluster, 100.0, 100.0);
  }
  EXPECT_NEAR(strategy.expected_win(kCity, kCluster, 80.0), 80.0, 8.0);
  // Unknown market: prior 0.5.
  EXPECT_DOUBLE_EQ(strategy.expected_win(kOtherCity, kCluster, 80.0), 40.0);
}

TEST(RiskAverseStrategy, MarketsAreIndependent) {
  RiskAverseStrategy strategy;
  for (int round = 0; round < 20; ++round) {
    strategy.record_outcome(kCity, kCluster, 100.0, 0.0);
  }
  EXPECT_LT(strategy.win_rate(kCity, kCluster), 0.1);
  EXPECT_DOUBLE_EQ(strategy.win_rate(kOtherCity, kCluster), 0.5);
}

TEST(RiskAverseStrategy, PartialWinsCountProportionally) {
  RiskAverseStrategy strategy;
  for (int round = 0; round < 40; ++round) {
    strategy.record_outcome(kCity, kCluster, 100.0, 50.0);
  }
  EXPECT_NEAR(strategy.win_rate(kCity, kCluster), 0.5, 0.05);
}

TEST(StrategyFactories, ProduceWorkingInstances) {
  const auto fixed = make_static_strategy(1.3);
  EXPECT_DOUBLE_EQ(fixed->shade(kCity, kCluster).price_multiplier, 1.3);
  const auto learner = make_risk_averse_strategy();
  EXPECT_DOUBLE_EQ(learner->shade(kCity, kCluster).capacity_fraction, 0.5);
}

}  // namespace
}  // namespace vdx::cdn
