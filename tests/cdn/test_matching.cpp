#include "cdn/matching.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vdx::cdn {
namespace {

class MatchingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::generate({}));
    core::Rng rng{5};
    catalog_ = new CdnCatalog(CdnCatalog::generate(*world_, {}, rng));
    net::PathModel model{{}, 9};
    core::Rng map_rng{6};
    mapping_ = new net::MappingTable(net::MappingTable::measure(
        *world_, catalog_->vantages(*world_), model, {}, map_rng));
  }
  static void TearDownTestSuite() {
    delete mapping_;
    delete catalog_;
    delete world_;
    mapping_ = nullptr;
    catalog_ = nullptr;
    world_ = nullptr;
  }

  static const geo::World& world() { return *world_; }
  static const CdnCatalog& catalog() { return *catalog_; }
  static const net::MappingTable& mapping() { return *mapping_; }

 private:
  static geo::World* world_;
  static CdnCatalog* catalog_;
  static net::MappingTable* mapping_;
};

geo::World* MatchingTest::world_ = nullptr;
CdnCatalog* MatchingTest::catalog_ = nullptr;
net::MappingTable* MatchingTest::mapping_ = nullptr;

TEST_F(MatchingTest, AlwaysAtLeastTwoCandidatesWhenAvailable) {
  // Paper: "If there is no other cluster with a score within 2x the best,
  // the second best scoring cluster is selected."
  for (const Cdn& cdn : catalog().cdns()) {
    if (cdn.clusters.size() < 2) continue;
    for (const geo::City& city : world().cities()) {
      const auto candidates =
          candidates_for(catalog(), mapping(), cdn.id, city.id);
      EXPECT_GE(candidates.size(), 2u) << cdn.name << " @ " << city.name;
    }
  }
}

TEST_F(MatchingTest, CandidatesBelongToTheCdn) {
  const Cdn& cdn = catalog().cdns()[3];
  for (const geo::City& city : world().cities()) {
    for (const Candidate& c : candidates_for(catalog(), mapping(), cdn.id, city.id)) {
      EXPECT_EQ(catalog().cluster(c.cluster).cdn, cdn.id);
      EXPECT_DOUBLE_EQ(c.score, mapping().score(city.id, c.cluster.value()));
      EXPECT_DOUBLE_EQ(c.unit_cost, catalog().cluster(c.cluster).unit_cost());
    }
  }
}

TEST_F(MatchingTest, NoDuplicateClusters) {
  const Cdn& cdn = catalog().cdns().front();
  for (const geo::City& city : world().cities()) {
    const auto candidates = candidates_for(catalog(), mapping(), cdn.id, city.id);
    std::set<std::uint32_t> seen;
    for (const Candidate& c : candidates) {
      EXPECT_TRUE(seen.insert(c.cluster.value()).second);
    }
  }
}

class ToleranceSweep : public MatchingTest, public ::testing::WithParamInterface<double> {};

TEST_P(ToleranceSweep, WiderToleranceNeverShrinksTheSet) {
  const double tolerance = GetParam();
  MatchingConfig narrow;
  narrow.score_tolerance = tolerance;
  MatchingConfig wide;
  wide.score_tolerance = tolerance * 1.5;
  const Cdn& cdn = catalog().cdns().front();
  for (std::size_t i = 0; i < world().cities().size(); i += 7) {
    const geo::CityId city = world().cities()[i].id;
    const auto small = candidates_for(catalog(), mapping(), cdn.id, city, narrow);
    const auto large = candidates_for(catalog(), mapping(), cdn.id, city, wide);
    EXPECT_GE(large.size(), small.size());
  }
}

TEST_P(ToleranceSweep, AllCandidatesWithinToleranceOrForcedSecond) {
  const double tolerance = GetParam();
  MatchingConfig config;
  config.score_tolerance = tolerance;
  const Cdn& cdn = catalog().cdns().front();
  for (std::size_t i = 0; i < world().cities().size(); i += 5) {
    const geo::CityId city = world().cities()[i].id;
    const auto candidates = candidates_for(catalog(), mapping(), cdn.id, city, config);
    double best = 1e18;
    for (const Candidate& c : candidates) best = std::min(best, c.score);
    std::size_t outside = 0;
    for (const Candidate& c : candidates) {
      if (c.score > best * tolerance + 1e-9) ++outside;
    }
    EXPECT_LE(outside, 1u);  // only the forced second may breach
  }
}

TEST_P(ToleranceSweep, CostSortedWithinResult) {
  MatchingConfig config;
  config.score_tolerance = GetParam();
  const Cdn& cdn = catalog().cdns().front();
  const auto candidates =
      candidates_for(catalog(), mapping(), cdn.id, world().cities()[0].id, config);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i].unit_cost, candidates[i - 1].unit_cost - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1.05, 1.2, 1.35, 1.6, 2.0, 3.0));

TEST_F(MatchingTest, MaxCandidatesTakesCheapestOfToleranceSet) {
  MatchingConfig unlimited;
  MatchingConfig capped;
  capped.max_candidates = 2;
  const Cdn& cdn = catalog().cdns().front();
  const geo::CityId city = world().cities()[1].id;
  const auto all = candidates_for(catalog(), mapping(), cdn.id, city, unlimited);
  const auto two = candidates_for(catalog(), mapping(), cdn.id, city, capped);
  ASSERT_LE(two.size(), 2u);
  for (std::size_t i = 0; i < two.size(); ++i) {
    EXPECT_EQ(two[i].cluster, all[i].cluster);  // the prefix of the cost order
  }
}

TEST_F(MatchingTest, RejectsBadTolerance) {
  MatchingConfig config;
  config.score_tolerance = 0.5;
  EXPECT_THROW((void)candidates_for(catalog(), mapping(), catalog().cdns()[0].id,
                                    world().cities()[0].id, config),
               std::invalid_argument);
}

TEST_F(MatchingTest, EmptyCdnYieldsNoCandidates) {
  // A CDN id with no clusters cannot occur from generate(); simulate via a
  // city CDN catalog copy is overkill — instead verify the documented
  // behaviour through an out-of-range id error path.
  EXPECT_THROW((void)candidates_for(catalog(), mapping(), CdnId{999},
                                    world().cities()[0].id),
               std::out_of_range);
}

}  // namespace
}  // namespace vdx::cdn
