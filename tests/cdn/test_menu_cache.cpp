#include "cdn/menu_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/parallel.hpp"

namespace vdx::cdn {
namespace {

class MenuCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new geo::World(geo::World::generate({}));
    core::Rng rng{5};
    catalog_ = new CdnCatalog(CdnCatalog::generate(*world_, {}, rng));
    net::PathModel model{{}, 9};
    core::Rng map_rng{6};
    mapping_ = new net::MappingTable(net::MappingTable::measure(
        *world_, catalog_->vantages(*world_), model, {}, map_rng));
  }
  static void TearDownTestSuite() {
    delete mapping_;
    delete catalog_;
    delete world_;
    mapping_ = nullptr;
    catalog_ = nullptr;
    world_ = nullptr;
  }

  static const geo::World& world() { return *world_; }
  static const CdnCatalog& catalog() { return *catalog_; }
  static const net::MappingTable& mapping() { return *mapping_; }

 private:
  static geo::World* world_;
  static CdnCatalog* catalog_;
  static net::MappingTable* mapping_;
};

geo::World* MenuCacheTest::world_ = nullptr;
CdnCatalog* MenuCacheTest::catalog_ = nullptr;
net::MappingTable* MenuCacheTest::mapping_ = nullptr;

void expect_menu_equal(std::span<const Candidate> cached,
                       const std::vector<Candidate>& direct) {
  ASSERT_EQ(cached.size(), direct.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].cluster, direct[i].cluster);
    EXPECT_EQ(cached[i].score, direct[i].score);        // bit-exact
    EXPECT_EQ(cached[i].unit_cost, direct[i].unit_cost);
  }
}

TEST_F(MenuCacheTest, EverySlotMatchesCandidatesFor) {
  MatchingConfig config;
  config.score_tolerance = 1.35;
  config.max_candidates = 100;
  const CandidateMenuCache cache{catalog(), mapping(), world().cities().size(),
                                 config};
  for (const Cdn& cdn : catalog().cdns()) {
    for (const geo::City& city : world().cities()) {
      expect_menu_equal(cache.menu(cdn.id, city.id),
                        candidates_for(catalog(), mapping(), cdn.id, city.id,
                                       config));
    }
  }
}

TEST_F(MenuCacheTest, ParallelBuildIsIdenticalToSerialBuild) {
  const MatchingConfig config;  // defaults
  const std::size_t cities = world().cities().size();
  const CandidateMenuCache serial{catalog(), mapping(), cities, config};
  core::ThreadPool pool{8};
  const CandidateMenuCache parallel{catalog(), mapping(), cities, config, &pool};
  ASSERT_EQ(serial.total_candidates(), parallel.total_candidates());
  for (const Cdn& cdn : catalog().cdns()) {
    for (const geo::City& city : world().cities()) {
      const auto a = serial.menu(cdn.id, city.id);
      const auto b = parallel.menu(cdn.id, city.id);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cluster, b[i].cluster);
        EXPECT_EQ(a[i].score, b[i].score);
        EXPECT_EQ(a[i].unit_cost, b[i].unit_cost);
      }
    }
  }
}

TEST_F(MenuCacheTest, LanesMirrorTheMenuArenaForEverySlot) {
  MatchingConfig config;
  config.score_tolerance = 1.35;
  const CandidateMenuCache cache{catalog(), mapping(), world().cities().size(),
                                 config};
  std::size_t spanned = 0;
  for (const Cdn& cdn : catalog().cdns()) {
    for (const geo::City& city : world().cities()) {
      const std::span<const Candidate> menu = cache.menu(cdn.id, city.id);
      const MenuLanes lanes = cache.lanes(cdn.id, city.id);
      ASSERT_EQ(lanes.size(), menu.size());
      for (std::size_t i = 0; i < menu.size(); ++i) {
        EXPECT_EQ(lanes.cluster[i], menu[i].cluster.value());
        EXPECT_EQ(lanes.score[i], menu[i].score);
        EXPECT_EQ(lanes.unit_cost[i], menu[i].unit_cost);
        EXPECT_EQ(lanes.capacity[i], menu[i].capacity);
      }
      spanned += menu.size();
    }
  }
  // The arena is exactly the concatenation of the slots: no padding, no gaps.
  EXPECT_EQ(spanned, cache.total_candidates());
}

TEST_F(MenuCacheTest, ZeroCandidateSlotsMatchCandidatesForExactly) {
  // A CDN with no clusters produces a 0-candidate menu for every city; the
  // arena must represent those slots as genuinely empty spans (adjacent
  // offsets), agreeing with a direct candidates_for call, without disturbing
  // its neighbors' spans.
  geo::World world_copy = geo::World::generate({});
  core::Rng rng{5};
  CdnCatalog pruned = CdnCatalog::generate(world_copy, {}, rng);
  const CdnId emptied = pruned.cdns()[1].id;
  pruned.cdn_mutable(emptied).clusters.clear();

  net::PathModel model{{}, 9};
  core::Rng map_rng{6};
  const net::MappingTable pruned_mapping = net::MappingTable::measure(
      world_copy, pruned.vantages(world_copy), model, {}, map_rng);

  const MatchingConfig config;
  const CandidateMenuCache cache{pruned, pruned_mapping,
                                 world_copy.cities().size(), config};
  for (const geo::City& city : world_copy.cities()) {
    EXPECT_EQ(cache.menu(emptied, city.id).size(), 0u);
    EXPECT_EQ(cache.lanes(emptied, city.id).size(), 0u);
    EXPECT_TRUE(
        candidates_for(pruned, pruned_mapping, emptied, city.id, config).empty());
  }
  // Neighboring CDNs still match the uncached path through the holes.
  for (const Cdn& cdn : pruned.cdns()) {
    if (cdn.id == emptied) continue;
    for (const geo::City& city : world_copy.cities()) {
      expect_menu_equal(cache.menu(cdn.id, city.id),
                        candidates_for(pruned, pruned_mapping, cdn.id, city.id,
                                       config));
    }
  }
}

TEST_F(MenuCacheTest, RemembersItsConfig) {
  MatchingConfig config;
  config.max_candidates = 3;
  const CandidateMenuCache cache{catalog(), mapping(), world().cities().size(),
                                 config};
  EXPECT_TRUE(cache.config() == config);
  MatchingConfig other;
  other.max_candidates = 4;
  EXPECT_FALSE(cache.config() == other);
  EXPECT_EQ(cache.cdn_count(), catalog().cdns().size());
  EXPECT_EQ(cache.city_count(), world().cities().size());
  EXPECT_GT(cache.total_candidates(), 0u);
}

TEST_F(MenuCacheTest, OutOfRangeLookupThrows) {
  const CandidateMenuCache cache{catalog(), mapping(), world().cities().size(),
                                 MatchingConfig{}};
  EXPECT_THROW((void)cache.menu(CdnId{999}, world().cities()[0].id),
               std::out_of_range);
  EXPECT_THROW((void)cache.menu(catalog().cdns()[0].id,
                                geo::CityId{static_cast<std::uint32_t>(
                                    world().cities().size())}),
               std::out_of_range);
}

TEST_F(MenuCacheTest, MatchingConfigEqualityComparesAllFields) {
  MatchingConfig a;
  MatchingConfig b;
  EXPECT_TRUE(a == b);
  b.score_tolerance = a.score_tolerance + 0.1;
  EXPECT_FALSE(a == b);
  b = a;
  b.max_candidates = a.max_candidates + 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace vdx::cdn
