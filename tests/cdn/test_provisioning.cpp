#include "cdn/provisioning.hpp"

#include <gtest/gtest.h>

#include "cdn/matching.hpp"

namespace vdx::cdn {
namespace {

class ProvisioningTest : public ::testing::Test {
 protected:
  ProvisioningTest() : world_(geo::World::generate({})) {
    core::Rng rng{17};
    catalog_ = std::make_unique<CdnCatalog>(CdnCatalog::generate(world_, {}, rng));
    const auto vantages = catalog_->vantages(world_);
    core::Rng map_rng{18};
    net::PathModel model;
    mapping_ = std::make_unique<net::MappingTable>(
        net::MappingTable::measure(world_, vantages, model, {}, map_rng));

    for (const auto& city : world_.cities()) {
      demand_.push_back(DemandPoint{city.id, 2.0, 50.0 * city.demand_weight * 100.0});
    }
  }

  geo::World world_;
  std::unique_ptr<CdnCatalog> catalog_;
  std::unique_ptr<net::MappingTable> mapping_;
  std::vector<DemandPoint> demand_;
};

TEST_F(ProvisioningTest, AssignsPositiveCapacityEverywhere) {
  provision(*catalog_, world_, *mapping_, demand_);
  for (const Cluster& cluster : catalog_->clusters()) {
    EXPECT_GT(cluster.capacity, 0.0)
        << "cluster " << cluster.id.value() << " of " << catalog_->cdn(cluster.cdn).name;
  }
}

TEST_F(ProvisioningTest, TotalCapacityIsMultiplierTimesSoloTraffic) {
  const ProvisioningReport report = provision(*catalog_, world_, *mapping_, demand_);
  double total_demand = 0.0;
  for (const DemandPoint& point : demand_) total_demand += point.bitrate * point.count;

  for (const Cdn& cdn : catalog_->cdns()) {
    // Solo traffic == full workload for every CDN.
    EXPECT_NEAR(report.solo_traffic[cdn.id.value()], total_demand, 1e-6);
    double cdn_capacity = 0.0;
    for (const ClusterId id : catalog_->clusters_of(cdn.id)) {
      cdn_capacity += catalog_->cluster(id).capacity;
    }
    // Donor-splitting moves capacity around but conserves the total.
    EXPECT_NEAR(cdn_capacity, 2.0 * total_demand, 1e-6) << cdn.name;
  }
}

TEST_F(ProvisioningTest, ContractPriceIsMarkedUpAverageCost) {
  provision(*catalog_, world_, *mapping_, demand_);
  for (const Cdn& cdn : catalog_->cdns()) {
    EXPECT_GT(cdn.contract_price, 0.0) << cdn.name;
    // Price must sit within the CDN's own cost range, marked up.
    double min_cost = 1e18;
    double max_cost = 0.0;
    for (const ClusterId id : catalog_->clusters_of(cdn.id)) {
      min_cost = std::min(min_cost, catalog_->cluster(id).unit_cost());
      max_cost = std::max(max_cost, catalog_->cluster(id).unit_cost());
    }
    EXPECT_GE(cdn.contract_price, min_cost * cdn.markup - 1e-9) << cdn.name;
    EXPECT_LE(cdn.contract_price, max_cost * cdn.markup + 1e-9) << cdn.name;
  }
}

TEST_F(ProvisioningTest, DistributedCdnHasHigherPriceThanCheapCentral) {
  provision(*catalog_, world_, *mapping_, demand_);
  // The distributed CDN (clusters in expensive countries too) should price
  // above at least one central CDN deployed only in cheap, dense locations
  // (this is the Fig. 11 mechanism: Brokered avoids the distributed CDN).
  const Cdn& distributed = catalog_->cdns().front();
  double min_central_price = 1e18;
  for (const Cdn& cdn : catalog_->cdns()) {
    if (cdn.model == DeploymentModel::kCentral) {
      min_central_price = std::min(min_central_price, cdn.contract_price);
    }
  }
  EXPECT_GT(distributed.contract_price, min_central_price);
}

TEST_F(ProvisioningTest, MedianCapacityReported) {
  const ProvisioningReport report = provision(*catalog_, world_, *mapping_, demand_);
  for (const Cdn& cdn : catalog_->cdns()) {
    EXPECT_GT(report.median_capacity[cdn.id.value()], 0.0) << cdn.name;
  }
}

TEST_F(ProvisioningTest, RejectsBadInputs) {
  EXPECT_THROW(provision(*catalog_, world_, *mapping_, {}), std::invalid_argument);
  ProvisioningConfig config;
  config.capacity_multiplier = 0.0;
  EXPECT_THROW(provision(*catalog_, world_, *mapping_, demand_, config),
               std::invalid_argument);
}

TEST_F(ProvisioningTest, MatchingCandidatesRespectToleranceRule) {
  provision(*catalog_, world_, *mapping_, demand_);
  const Cdn& cdn = catalog_->cdns().front();
  for (const auto& city : world_.cities()) {
    const auto candidates = candidates_for(*catalog_, *mapping_, cdn.id, city.id);
    ASSERT_GE(candidates.size(), 2u);  // >= 2 clusters exist for this CDN
    double best_score = 1e18;
    for (const auto& c : candidates) best_score = std::min(best_score, c.score);
    // All but possibly the forced second candidate are within 2x of best.
    std::size_t outside = 0;
    for (const auto& c : candidates) {
      if (c.score > 2.0 * best_score + 1e-9) ++outside;
    }
    EXPECT_LE(outside, 1u);
    // Sorted by cost.
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      EXPECT_GE(candidates[i].unit_cost, candidates[i - 1].unit_cost - 1e-12);
    }
  }
}

TEST_F(ProvisioningTest, MatchingMaxCandidatesCaps) {
  provision(*catalog_, world_, *mapping_, demand_);
  MatchingConfig config;
  config.max_candidates = 1;
  const auto candidates = candidates_for(*catalog_, *mapping_, catalog_->cdns()[0].id,
                                         world_.cities().front().id, config);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST_F(ProvisioningTest, PickLoadBalancedPrefersCheapWithHeadroom) {
  std::vector<Candidate> candidates{
      {ClusterId{0}, 10.0, 1.0, 100.0},
      {ClusterId{1}, 12.0, 2.0, 100.0},
  };
  std::vector<double> loads{95.0, 0.0};
  // Cheap cluster 0 has only 5 Mbps headroom; a 10 Mbps client must go to 1.
  const Candidate picked = pick_load_balanced(candidates, loads, 10.0);
  EXPECT_EQ(picked.cluster, ClusterId{1});
  // A 3 Mbps client still fits on the cheap one.
  const Candidate small = pick_load_balanced(candidates, loads, 3.0);
  EXPECT_EQ(small.cluster, ClusterId{0});
}

TEST_F(ProvisioningTest, PickLoadBalancedFallsBackToLeastLoaded) {
  std::vector<Candidate> candidates{
      {ClusterId{0}, 10.0, 1.0, 100.0},
      {ClusterId{1}, 12.0, 2.0, 100.0},
  };
  std::vector<double> loads{120.0, 101.0};
  const Candidate picked = pick_load_balanced(candidates, loads, 10.0);
  EXPECT_EQ(picked.cluster, ClusterId{1});  // 101% beats 120%
  EXPECT_THROW((void)pick_load_balanced({}, loads, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::cdn
