#include "cdn/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vdx::cdn {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : world_(geo::World::generate({})) {}

  CdnCatalog make_catalog(std::uint64_t seed = 11) {
    core::Rng rng{seed};
    return CdnCatalog::generate(world_, config_, rng);
  }

  geo::World world_;
  CatalogConfig config_;
};

TEST_F(CatalogTest, GeneratesRequestedCdnCount) {
  const CdnCatalog catalog = make_catalog();
  EXPECT_EQ(catalog.cdns().size(), 14u);
}

TEST_F(CatalogTest, ClusterIdsDenseAndOwnedConsistently) {
  const CdnCatalog catalog = make_catalog();
  for (std::size_t i = 0; i < catalog.clusters().size(); ++i) {
    EXPECT_EQ(catalog.clusters()[i].id.value(), i);
  }
  std::size_t total = 0;
  for (const Cdn& cdn : catalog.cdns()) {
    for (const ClusterId id : catalog.clusters_of(cdn.id)) {
      EXPECT_EQ(catalog.cluster(id).cdn, cdn.id);
      ++total;
    }
  }
  EXPECT_EQ(total, catalog.clusters().size());
}

TEST_F(CatalogTest, DeploymentModelsHaveExpectedFootprints) {
  const CdnCatalog catalog = make_catalog();
  const Cdn& distributed = catalog.cdns().front();
  EXPECT_EQ(distributed.model, DeploymentModel::kDistributed);

  const auto distinct_cities = [&](const Cdn& cdn) {
    std::set<std::uint32_t> cities;
    for (const ClusterId id : cdn.clusters) {
      cities.insert(catalog.cluster(id).city.value());
    }
    return cities.size();
  };

  std::size_t central_count = 0;
  for (const Cdn& cdn : catalog.cdns()) {
    switch (cdn.model) {
      case DeploymentModel::kDistributed:
        EXPECT_GT(distinct_cities(cdn),
                  world_.cities().size() / 2);  // most cities covered
        break;
      case DeploymentModel::kCentral:
        ++central_count;
        // Few strategic sites, multiple clusters per site.
        EXPECT_LE(distinct_cities(cdn), world_.cities().size() / 4);
        EXPECT_GT(cdn.clusters.size(), distinct_cities(cdn));
        break;
      case DeploymentModel::kRegional:
        EXPECT_LT(distinct_cities(cdn), world_.cities().size());
        break;
      case DeploymentModel::kCityCentric:
        ADD_FAILURE() << "no city CDNs in the base catalog";
    }
  }
  EXPECT_EQ(central_count, 4u);
}

TEST_F(CatalogTest, RegionalCdnsAreGeographicallyCompact) {
  const CdnCatalog catalog = make_catalog();
  for (const Cdn& cdn : catalog.cdns()) {
    if (cdn.model != DeploymentModel::kRegional) continue;
    // Max pairwise distance of a regional CDN must be well below antipodal.
    double max_d = 0.0;
    for (const ClusterId a : cdn.clusters) {
      for (const ClusterId b : cdn.clusters) {
        max_d = std::max(max_d, world_.distance_km(catalog.cluster(a).city,
                                                   catalog.cluster(b).city));
      }
    }
    EXPECT_LT(max_d, 19'000.0) << cdn.name;
  }
}

TEST_F(CatalogTest, CostsReflectCountryLadder) {
  const CdnCatalog catalog = make_catalog();
  // Average cluster bandwidth cost in the most expensive country must exceed
  // the average in the cheapest country (jitter cannot invert a 30x gap).
  double expensive_sum = 0.0;
  std::size_t expensive_n = 0;
  double cheap_sum = 0.0;
  std::size_t cheap_n = 0;
  const auto expensive_country = world_.countries().front().id;
  const auto cheap_country = world_.countries().back().id;
  for (const Cluster& cluster : catalog.clusters()) {
    const auto country = world_.country_of(cluster.city).id;
    if (country == expensive_country) {
      expensive_sum += cluster.bandwidth_cost;
      ++expensive_n;
    } else if (country == cheap_country) {
      cheap_sum += cluster.bandwidth_cost;
      ++cheap_n;
    }
  }
  if (expensive_n > 0 && cheap_n > 0) {
    EXPECT_GT(expensive_sum / expensive_n, 5.0 * (cheap_sum / cheap_n));
  }
}

TEST_F(CatalogTest, ColocationDiscountLowersColoCost) {
  CdnCatalog catalog = make_catalog();
  // Count CDNs per city; a city hosting many clusters must have cheaper colo
  // than the same-country city hosting fewer (formula is deterministic).
  const Cluster& sample = catalog.clusters().front();
  const auto& country = world_.country_of(sample.city);
  const double solo_cost = config_.base_colo_cost * country.colo_cost_factor /
                           (1.0 + std::log(2.0));
  EXPECT_LE(sample.colo_cost, solo_cost * 1.0001);
}

TEST_F(CatalogTest, DeterministicForSameSeed) {
  const CdnCatalog a = make_catalog(7);
  const CdnCatalog b = make_catalog(7);
  ASSERT_EQ(a.clusters().size(), b.clusters().size());
  for (std::size_t i = 0; i < a.clusters().size(); ++i) {
    EXPECT_EQ(a.clusters()[i].city, b.clusters()[i].city);
    EXPECT_DOUBLE_EQ(a.clusters()[i].bandwidth_cost, b.clusters()[i].bandwidth_cost);
  }
}

TEST_F(CatalogTest, AddCityCdnsAppendsSingleClusterCdns) {
  CdnCatalog catalog = make_catalog();
  const std::size_t base_cdns = catalog.cdns().size();
  const std::size_t base_clusters = catalog.clusters().size();
  core::Rng rng{3};
  catalog.add_city_cdns(world_, 200, rng);
  EXPECT_EQ(catalog.cdns().size(), base_cdns + 200);
  EXPECT_EQ(catalog.clusters().size(), base_clusters + 200);
  for (std::size_t i = base_cdns; i < catalog.cdns().size(); ++i) {
    const Cdn& cdn = catalog.cdns()[i];
    EXPECT_EQ(cdn.model, DeploymentModel::kCityCentric);
    EXPECT_EQ(cdn.clusters.size(), 1u);
  }
}

TEST_F(CatalogTest, CityCdnArrivalLowersColoCosts) {
  CdnCatalog catalog = make_catalog();
  const double before = catalog.clusters().front().colo_cost;
  core::Rng rng{3};
  catalog.add_city_cdns(world_, 200, rng);
  // With 200 extra tenants spread over the same sites, the first cluster's
  // city almost surely gained co-located CDNs -> discount deepened (never
  // shallower).
  EXPECT_LE(catalog.clusters().front().colo_cost, before);
}

TEST_F(CatalogTest, VantagesAlignWithClusterIds) {
  const CdnCatalog catalog = make_catalog();
  const auto vantages = catalog.vantages(world_);
  ASSERT_EQ(vantages.size(), catalog.clusters().size());
  for (std::size_t i = 0; i < vantages.size(); ++i) {
    EXPECT_EQ(vantages[i].city, catalog.clusters()[i].city);
    EXPECT_EQ(vantages[i].salt, catalog.clusters()[i].salt);
  }
}

TEST_F(CatalogTest, LookupErrors) {
  const CdnCatalog catalog = make_catalog();
  EXPECT_THROW((void)catalog.cdn(CdnId{999}), std::out_of_range);
  EXPECT_THROW((void)catalog.cluster(ClusterId{99'999}), std::out_of_range);
  EXPECT_THROW((void)catalog.cdn(CdnId{}), std::out_of_range);
}

TEST_F(CatalogTest, RejectsZeroCdnConfig) {
  CatalogConfig bad;
  bad.cdn_count = 0;
  core::Rng rng{1};
  EXPECT_THROW((void)CdnCatalog::generate(world_, bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace vdx::cdn
