#include "broker/grouping.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vdx::broker {
namespace {

trace::Session make_session(std::uint32_t city, double bitrate, std::uint32_t as = 1,
                            double duration = 100.0) {
  trace::Session s;
  s.city = CityId{city};
  s.bitrate_mbps = bitrate;
  s.as_number = as;
  s.duration_s = duration;
  return s;
}

TEST(Grouping, GroupsByCityAndBitrate) {
  std::vector<trace::Session> sessions{
      make_session(0, 1.5), make_session(0, 1.5), make_session(0, 4.5),
      make_session(1, 1.5),
  };
  const auto groups = group_sessions(sessions);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_DOUBLE_EQ(total_clients(groups), 4.0);

  // Find the (city 0, 1.5) group.
  bool found = false;
  for (const ClientGroup& g : groups) {
    if (g.city == CityId{0} && g.bitrate_mbps == 1.5) {
      EXPECT_DOUBLE_EQ(g.client_count, 2.0);
      EXPECT_DOUBLE_EQ(g.demand_mbps(), 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Grouping, IdsAreDenseAndUnique) {
  std::vector<trace::Session> sessions;
  for (std::uint32_t c = 0; c < 5; ++c) {
    for (const double b : {0.35, 4.5}) sessions.push_back(make_session(c, b));
  }
  const auto groups = group_sessions(sessions);
  std::set<std::uint32_t> ids;
  for (const ClientGroup& g : groups) ids.insert(g.id.value());
  EXPECT_EQ(ids.size(), groups.size());
  EXPECT_EQ(*ids.rbegin(), groups.size() - 1);  // dense 0..n-1
}

TEST(Grouping, IspSplitting) {
  std::vector<trace::Session> sessions{
      make_session(0, 1.5, 100), make_session(0, 1.5, 200)};
  EXPECT_EQ(group_sessions(sessions).size(), 1u);  // aggregated by default

  GroupingConfig config;
  config.split_by_isp = true;
  const auto split = group_sessions(sessions, config);
  EXPECT_EQ(split.size(), 2u);
  for (const ClientGroup& g : split) EXPECT_NE(g.isp, 0u);
}

TEST(Grouping, MinDurationFilter) {
  std::vector<trace::Session> sessions{make_session(0, 1.5, 1, 2.0),
                                       make_session(0, 1.5, 1, 500.0)};
  GroupingConfig config;
  config.min_duration_s = 10.0;
  const auto groups = group_sessions(sessions, config);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].client_count, 1.0);
}

TEST(Grouping, EmptyInput) {
  EXPECT_TRUE(group_sessions({}).empty());
  EXPECT_DOUBLE_EQ(total_clients({}), 0.0);
}

TEST(Grouping, BitrateQuantizationIsStable) {
  // Two fp-noisy representations of the same ladder rung must merge.
  std::vector<trace::Session> sessions{make_session(0, 1.5),
                                       make_session(0, 1.5000000001)};
  EXPECT_EQ(group_sessions(sessions).size(), 1u);
}

}  // namespace
}  // namespace vdx::broker
