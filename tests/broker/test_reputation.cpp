#include "broker/reputation.hpp"

#include <gtest/gtest.h>

namespace vdx::broker {
namespace {

using core::CdnId;

TEST(Reputation, HonestCdnKeepsCleanRecord) {
  ReputationSystem rep{3};
  for (int i = 0; i < 50; ++i) rep.record(CdnId{0}, 10.0, 10.5);  // 5% error
  EXPECT_DOUBLE_EQ(rep.penalty_multiplier(CdnId{0}), 1.0);
  EXPECT_FALSE(rep.is_blacklisted(CdnId{0}));
  EXPECT_LT(rep.error_estimate(CdnId{0}), 0.1);
}

TEST(Reputation, ToleratedNoiseBandIsFree) {
  ReputationSystem rep{1};
  for (int i = 0; i < 20; ++i) rep.record(CdnId{0}, 10.0, 12.5);  // 25% < 30%
  EXPECT_DOUBLE_EQ(rep.penalty_multiplier(CdnId{0}), 1.0);
}

TEST(Reputation, MisreportsGrowPenalty) {
  ReputationSystem rep{1};
  for (int i = 0; i < 10; ++i) rep.record(CdnId{0}, 10.0, 20.0);  // 100% error
  EXPECT_GT(rep.penalty_multiplier(CdnId{0}), 2.0);
  EXPECT_NEAR(rep.error_estimate(CdnId{0}), 1.0, 0.1);
}

TEST(Reputation, ExtremeFraudGetsBlacklisted) {
  ReputationSystem rep{1};
  for (int i = 0; i < 10; ++i) rep.record(CdnId{0}, 10.0, 50.0);  // 400% error
  EXPECT_TRUE(rep.is_blacklisted(CdnId{0}));
}

TEST(Reputation, BlacklistRequiresConsecutiveStrikes) {
  ReputationConfig config;
  config.blacklist_strikes = 3;
  ReputationSystem rep{1, config};
  // Two big misreports, then honesty resets the strike counter.
  rep.record(CdnId{0}, 10.0, 60.0);
  rep.record(CdnId{0}, 10.0, 60.0);
  for (int i = 0; i < 20; ++i) rep.record(CdnId{0}, 10.0, 10.0);
  EXPECT_FALSE(rep.is_blacklisted(CdnId{0}));
}

TEST(Reputation, RecoveryAfterCleaningUp) {
  ReputationSystem rep{1};
  for (int i = 0; i < 5; ++i) rep.record(CdnId{0}, 10.0, 20.0);
  const double dirty = rep.penalty_multiplier(CdnId{0});
  for (int i = 0; i < 30; ++i) rep.record(CdnId{0}, 10.0, 10.0);
  EXPECT_LT(rep.penalty_multiplier(CdnId{0}), dirty);
  EXPECT_DOUBLE_EQ(rep.penalty_multiplier(CdnId{0}), 1.0);
}

TEST(Reputation, CdnsAreIndependent) {
  ReputationSystem rep{2};
  for (int i = 0; i < 10; ++i) rep.record(CdnId{0}, 10.0, 60.0);
  EXPECT_TRUE(rep.is_blacklisted(CdnId{0}));
  EXPECT_FALSE(rep.is_blacklisted(CdnId{1}));
  EXPECT_DOUBLE_EQ(rep.penalty_multiplier(CdnId{1}), 1.0);
}

TEST(Reputation, UnknownCdnThrows) {
  ReputationSystem rep{2};
  EXPECT_THROW(rep.record(CdnId{5}, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW((void)rep.penalty_multiplier(CdnId{}), std::out_of_range);
  EXPECT_THROW((void)rep.is_blacklisted(CdnId{2}), std::out_of_range);
  EXPECT_EQ(rep.size(), 2u);
}

TEST(Reputation, RelativeErrorGuardsAgainstZeroAnnouncement) {
  ReputationSystem rep{1};
  rep.record(CdnId{0}, 0.0, 5.0);  // announced 0: guarded division
  EXPECT_GT(rep.error_estimate(CdnId{0}), 0.0);
}

}  // namespace
}  // namespace vdx::broker
