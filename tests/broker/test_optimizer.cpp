#include "broker/optimizer.hpp"

#include <gtest/gtest.h>

namespace vdx::broker {
namespace {

ClientGroup make_group(std::uint32_t id, std::uint32_t city, double bitrate,
                       double count) {
  ClientGroup g;
  g.id = ShareId{id};
  g.city = CityId{city};
  g.bitrate_mbps = bitrate;
  g.client_count = count;
  return g;
}

BidView make_bid(std::uint32_t share, std::uint32_t cdn, std::uint32_t cluster,
                 double score, double price, double capacity) {
  BidView b;
  b.share = ShareId{share};
  b.cdn = CdnId{cdn};
  b.cluster = ClusterId{cluster};
  b.score = score;
  b.price = price;
  b.capacity = capacity;
  return b;
}

TEST(Optimizer, PicksBestBidPerGroup) {
  const std::vector<ClientGroup> groups{make_group(0, 0, 2.0, 10.0)};
  const std::vector<BidView> bids{
      make_bid(0, 0, 0, 50.0, 1.0, 1000.0),  // bad score
      make_bid(0, 1, 1, 10.0, 1.0, 1000.0),  // good score, same price
  };
  const OptimizeResult result = optimize(groups, bids);
  ASSERT_EQ(result.allocations.size(), 1u);
  EXPECT_EQ(result.allocations[0].bid_index, 1u);
  EXPECT_NEAR(result.allocations[0].clients, 10.0, 1e-6);
}

TEST(Optimizer, WeightsTradePerformanceForCost) {
  const std::vector<ClientGroup> groups{make_group(0, 0, 1.0, 10.0)};
  const std::vector<BidView> bids{
      make_bid(0, 0, 0, 10.0, 10.0, 1000.0),  // fast & expensive
      make_bid(0, 1, 1, 30.0, 1.0, 1000.0),   // slow & cheap
  };
  OptimizerConfig perf;
  perf.weights = {1.0, 0.0};
  EXPECT_EQ(optimize(groups, bids, perf).allocations[0].bid_index, 0u);

  OptimizerConfig cost;
  cost.weights = {0.0, 1.0};
  EXPECT_EQ(optimize(groups, bids, cost).allocations[0].bid_index, 1u);
}

TEST(Optimizer, RespectsSharedClusterCapacity) {
  // Two groups both want the same cluster; capacity only fits one of them.
  const std::vector<ClientGroup> groups{make_group(0, 0, 2.0, 10.0),
                                        make_group(1, 1, 2.0, 10.0)};
  const std::vector<BidView> bids{
      make_bid(0, 0, 7, 10.0, 1.0, 20.0),  // cluster 7: 20 Mbps total
      make_bid(1, 0, 7, 10.0, 1.0, 20.0),
      make_bid(0, 1, 8, 20.0, 1.0, 1000.0),
      make_bid(1, 1, 8, 20.0, 1.0, 1000.0),
  };
  const OptimizeResult result = optimize(groups, bids);
  double cluster7_mbps = 0.0;
  for (const Allocation& a : result.allocations) {
    if (bids[a.bid_index].cluster == ClusterId{7}) {
      cluster7_mbps += a.clients * 2.0;
    }
  }
  EXPECT_LE(cluster7_mbps, 20.0 + 1e-6);
  EXPECT_NEAR(result.overflow_mbps, 0.0, 1e-6);
}

TEST(Optimizer, EveryClientPlaced) {
  const std::vector<ClientGroup> groups{make_group(0, 0, 1.0, 7.0),
                                        make_group(1, 1, 2.0, 3.0)};
  const std::vector<BidView> bids{
      make_bid(0, 0, 0, 10.0, 1.0, 100.0),
      make_bid(1, 0, 0, 10.0, 1.0, 100.0),
  };
  const OptimizeResult result = optimize(groups, bids);
  std::vector<double> placed(2, 0.0);
  for (const Allocation& a : result.allocations) {
    placed[bids[a.bid_index].share.value()] += a.clients;
  }
  EXPECT_NEAR(placed[0], 7.0, 1e-6);
  EXPECT_NEAR(placed[1], 3.0, 1e-6);
}

TEST(Optimizer, BlacklistedCdnIsIgnored) {
  ReputationSystem reputation{2};
  // Drive CDN 0 into blacklist territory.
  for (int i = 0; i < 10; ++i) reputation.record(CdnId{0}, 10.0, 100.0);
  ASSERT_TRUE(reputation.is_blacklisted(CdnId{0}));

  const std::vector<ClientGroup> groups{make_group(0, 0, 1.0, 5.0)};
  const std::vector<BidView> bids{
      make_bid(0, 0, 0, 1.0, 0.1, 1000.0),  // blacklisted CDN, dream bid
      make_bid(0, 1, 1, 50.0, 5.0, 1000.0),
  };
  OptimizerConfig config;
  config.reputation = &reputation;
  const OptimizeResult result = optimize(groups, bids, config);
  ASSERT_EQ(result.allocations.size(), 1u);
  EXPECT_EQ(bids[result.allocations[0].bid_index].cdn, CdnId{1});
}

TEST(Optimizer, PenaltyMultiplierShiftsChoice) {
  ReputationSystem reputation{2};
  // CDN 0 misreports enough to earn a penalty but not a blacklist.
  for (int i = 0; i < 3; ++i) reputation.record(CdnId{0}, 10.0, 18.0);
  ASSERT_GT(reputation.penalty_multiplier(CdnId{0}), 1.1);
  ASSERT_FALSE(reputation.is_blacklisted(CdnId{0}));

  // Nearly tied bids: the penalty tips the scale to CDN 1.
  const std::vector<ClientGroup> groups{make_group(0, 0, 1.0, 5.0)};
  const std::vector<BidView> bids{
      make_bid(0, 0, 0, 10.0, 1.0, 1000.0),
      make_bid(0, 1, 1, 10.5, 1.05, 1000.0),
  };
  OptimizerConfig config;
  config.reputation = &reputation;
  const OptimizeResult result = optimize(groups, bids, config);
  ASSERT_EQ(result.allocations.size(), 1u);
  EXPECT_EQ(bids[result.allocations[0].bid_index].cdn, CdnId{1});
}

TEST(Optimizer, RejectsMalformedInput) {
  const std::vector<ClientGroup> groups{make_group(0, 0, 1.0, 5.0)};
  // Bid referencing an unknown share.
  const std::vector<BidView> dangling{make_bid(9, 0, 0, 10.0, 1.0, 100.0)};
  EXPECT_THROW((void)optimize(groups, dangling), std::invalid_argument);

  // Group with clients but no bids.
  EXPECT_THROW((void)optimize(groups, {}), std::invalid_argument);

  // Duplicate share ids.
  const std::vector<ClientGroup> duplicate{make_group(0, 0, 1.0, 5.0),
                                           make_group(0, 1, 1.0, 5.0)};
  const std::vector<BidView> bids{make_bid(0, 0, 0, 10.0, 1.0, 100.0)};
  EXPECT_THROW((void)optimize(duplicate, bids), std::invalid_argument);
}

TEST(Optimizer, AllowUnbidGroupsLeavesThemUnservedInsteadOfThrowing) {
  // Incremental feeds can momentarily present a group no CDN bid on: with
  // the opt-in, it simply places nobody while the bid-covered group is
  // optimized normally.
  const std::vector<ClientGroup> groups{make_group(0, 0, 2.0, 10.0),
                                        make_group(1, 1, 2.0, 4.0)};
  const std::vector<BidView> bids{make_bid(0, 0, 0, 10.0, 1.0, 1000.0)};

  EXPECT_THROW((void)optimize(groups, bids), std::invalid_argument);

  OptimizerConfig config;
  config.allow_unbid_groups = true;
  obs::MetricsRegistry metrics;
  config.obs.metrics = &metrics;
  const OptimizeResult result = optimize(groups, bids, config);
  ASSERT_EQ(result.allocations.size(), 1u);
  EXPECT_EQ(result.allocations[0].bid_index, 0u);
  EXPECT_NEAR(result.allocations[0].clients, 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(metrics.counter("broker.optimize.unbid_groups").value(), 1.0);
}

TEST(Optimizer, AllowUnbidGroupsStillRejectsTrulyMalformedInput) {
  // The opt-in relaxes only the unbid-group rule — dangling shares and
  // duplicates stay hard errors.
  OptimizerConfig config;
  config.allow_unbid_groups = true;
  const std::vector<ClientGroup> groups{make_group(0, 0, 1.0, 5.0)};
  const std::vector<BidView> dangling{make_bid(9, 0, 0, 10.0, 1.0, 100.0)};
  EXPECT_THROW((void)optimize(groups, dangling, config), std::invalid_argument);

  // All groups unbid: a legal (empty) outcome, not an error.
  const OptimizeResult result = optimize(groups, {}, config);
  EXPECT_TRUE(result.allocations.empty());
}

TEST(Optimizer, OverflowReportedWhenCapacityShort) {
  const std::vector<ClientGroup> groups{make_group(0, 0, 2.0, 10.0)};
  const std::vector<BidView> bids{make_bid(0, 0, 0, 10.0, 1.0, 4.0)};  // 20 needed
  const OptimizeResult result = optimize(groups, bids);
  EXPECT_NEAR(result.overflow_mbps, 16.0, 1e-5);
}

}  // namespace
}  // namespace vdx::broker
