// Custom gtest main for golden-snapshot suites: recognizes --update-golden
// (regenerate the committed snapshots in the source tree) before handing
// the remaining flags to googletest.
#include <gtest/gtest.h>

#include <cstring>

#include "support/golden.hpp"

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      vdx::test::set_update_golden_mode(true);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
