// Golden-snapshot comparison (ISSUE 4): byte-for-byte diffs against small
// canonical outputs committed under tests/golden/.
//
// Regeneration path: run the golden test binary with --update-golden — the
// custom main (tests/support/golden_main.cpp) flips update mode, and every
// golden_compare call rewrites its file in the source tree instead of
// diffing. Review the git diff, commit, done.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace vdx::test {

/// True when the binary was launched with --update-golden.
[[nodiscard]] bool update_golden_mode();
void set_update_golden_mode(bool on);

/// Absolute path of golden file `name` (VDX_GOLDEN_DIR is baked in by the
/// build and points into the source tree, so updates land in git).
[[nodiscard]] std::string golden_path(std::string_view name);

/// Byte-compares `actual` against the committed golden `name`; the failure
/// message pinpoints the first differing line. In update mode, (re)writes
/// the golden and succeeds.
[[nodiscard]] ::testing::AssertionResult golden_compare(std::string_view name,
                                                        std::string_view actual);

}  // namespace vdx::test
