#include "support/golden.hpp"

#include <fstream>
#include <sstream>
#include <vector>

namespace vdx::test {

namespace {

bool g_update_mode = false;

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < text.size()) lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

bool update_golden_mode() { return g_update_mode; }
void set_update_golden_mode(bool on) { g_update_mode = on; }

std::string golden_path(std::string_view name) {
  return std::string{VDX_GOLDEN_DIR} + "/" + std::string{name};
}

::testing::AssertionResult golden_compare(std::string_view name,
                                          std::string_view actual) {
  const std::string path = golden_path(name);
  if (g_update_mode) {
    std::ofstream out{path, std::ios::binary};
    if (!out) {
      return ::testing::AssertionFailure()
             << "--update-golden: cannot write " << path;
    }
    out << actual;
    return ::testing::AssertionSuccess() << "updated " << path;
  }

  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return ::testing::AssertionFailure()
           << "missing golden file " << path
           << " — regenerate with: <test-binary> --update-golden";
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string expected = content.str();
  if (expected == actual) return ::testing::AssertionSuccess();

  // Pinpoint the first differing line for the failure message.
  const auto expected_lines = split_lines(expected);
  const auto actual_lines = split_lines(actual);
  const std::size_t common = std::min(expected_lines.size(), actual_lines.size());
  std::size_t line = 0;
  while (line < common && expected_lines[line] == actual_lines[line]) ++line;
  auto failure = ::testing::AssertionFailure();
  failure << name << " differs from golden (expected " << expected_lines.size()
          << " lines, got " << actual_lines.size() << ")";
  if (line < common) {
    failure << "; first difference at line " << line + 1 << ":\n  golden: "
            << expected_lines[line] << "\n  actual: " << actual_lines[line];
  } else {
    failure << "; line " << line + 1 << " exists on one side only";
  }
  failure << "\nregenerate with: <test-binary> --update-golden";
  return failure;
}

}  // namespace vdx::test
