// BrownoutController ladder semantics: one step up per unhealthy round,
// hysteretic one-step-down recovery, health mapping, and journaling.
#include "resilience/brownout.hpp"

#include <gtest/gtest.h>

#include "obs/observe.hpp"

namespace vdx::resilience {
namespace {

BrownoutController::Signals unhealthy() {
  BrownoutController::Signals signals;
  signals.open_breakers = 1;
  return signals;
}

TEST(Brownout, ClimbsOneStepPerUnhealthyRound) {
  BrownoutController brownout;
  EXPECT_EQ(brownout.evaluate(unhealthy(), 1), 1);
  EXPECT_EQ(brownout.evaluate(unhealthy(), 2), 2);
  EXPECT_EQ(brownout.evaluate(unhealthy(), 3), 3);
  EXPECT_EQ(brownout.evaluate(unhealthy(), 4), 3);  // capped at max_step
  EXPECT_EQ(brownout.health(), Health::kCritical);
  EXPECT_TRUE(brownout.skip_noncritical_exports());
  EXPECT_TRUE(brownout.stale_slice_mode());
  EXPECT_LT(brownout.admission_factor(), 1.0);
}

TEST(Brownout, HystereticRecoveryOneStepPerStreak) {
  BrownoutConfig config;
  config.recover_after_rounds = 3;
  BrownoutController brownout{config};
  (void)brownout.evaluate(unhealthy(), 1);
  (void)brownout.evaluate(unhealthy(), 2);
  ASSERT_EQ(brownout.step(), 2);
  // Two healthy rounds are not enough; the third steps down once.
  EXPECT_EQ(brownout.evaluate({}, 3), 2);
  EXPECT_EQ(brownout.evaluate({}, 4), 2);
  EXPECT_EQ(brownout.evaluate({}, 5), 1);
  // An unhealthy blip resets the healthy streak.
  EXPECT_EQ(brownout.evaluate({}, 6), 1);
  EXPECT_EQ(brownout.evaluate(unhealthy(), 7), 2);
  EXPECT_EQ(brownout.evaluate({}, 8), 2);
  EXPECT_EQ(brownout.evaluate({}, 9), 2);
  EXPECT_EQ(brownout.evaluate({}, 10), 1);
  EXPECT_EQ(brownout.health(), Health::kDegraded);
}

TEST(Brownout, MaxStepTwoNeverShrinksAdmission) {
  BrownoutConfig config;
  config.max_step = 2;  // the byte-transparent drill ceiling
  BrownoutController brownout{config};
  for (std::uint64_t r = 1; r <= 10; ++r) (void)brownout.evaluate(unhealthy(), r);
  EXPECT_EQ(brownout.step(), 2);
  EXPECT_EQ(brownout.health(), Health::kDegraded);
  EXPECT_DOUBLE_EQ(brownout.admission_factor(), 1.0);
}

TEST(Brownout, CheckpointSuspensionAloneDegrades) {
  BrownoutController brownout;
  BrownoutController::Signals signals;
  signals.checkpoint_suspended = true;
  EXPECT_EQ(brownout.evaluate(signals, 1), 1);
  EXPECT_EQ(brownout.health(), Health::kDegraded);
}

TEST(Brownout, LatencyTriggerGatedBySloAndWarmup) {
  BrownoutConfig config;
  config.p99_slo_ms = 50.0;
  config.min_rounds_for_slo = 4;
  BrownoutController brownout{config};
  BrownoutController::Signals signals;
  signals.p99_ms = 500.0;
  signals.rounds_observed = 3;  // still warming up: p99 not trusted
  EXPECT_EQ(brownout.evaluate(signals, 1), 0);
  signals.rounds_observed = 4;
  EXPECT_EQ(brownout.evaluate(signals, 2), 1);
  // Same p99 with the trigger disabled stays healthy.
  BrownoutController off;
  EXPECT_EQ(off.evaluate(signals, 1), 0);
}

TEST(Brownout, StepTransitionsJournaledWithRoundAndStep) {
  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  BrownoutController brownout{{}, obs::Observer{&metrics, nullptr, &journal}};
  (void)brownout.evaluate(unhealthy(), 42);
  const std::vector<obs::Event> events = journal.events();
  ASSERT_EQ(events.size(), 1u);
  const obs::Event& event = events.front();
  EXPECT_EQ(event.kind, obs::EventKind::kBrownoutStep);
  EXPECT_EQ(event.subject, 42u);
  EXPECT_DOUBLE_EQ(event.value, 1.0);
  EXPECT_EQ(brownout.rounds_degraded(), 1u);
}

}  // namespace
}  // namespace vdx::resilience
