// CircuitBreaker state machine on the logical clock: trip on consecutive
// typed failures, half-open probe after open_ticks, journaled transitions.
#include "resilience/breaker.hpp"

#include <gtest/gtest.h>

#include "obs/observe.hpp"

namespace vdx::resilience {
namespace {

TEST(CircuitBreaker, DisabledByDefaultNeverOpens) {
  CircuitBreaker breaker;
  for (std::uint64_t t = 0; t < 50; ++t) {
    breaker.on_failure(t);
    EXPECT_TRUE(breaker.allow(t));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.opened_total(), 0u);
}

TEST(CircuitBreaker, TripsOnConsecutiveFailuresOnly) {
  BreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker{config};
  breaker.on_failure(1);
  breaker.on_failure(2);
  breaker.on_success(3);  // streak broken
  breaker.on_failure(4);
  breaker.on_failure(5);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.on_failure(6);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opened_total(), 1u);
}

TEST(CircuitBreaker, OpenRejectsUntilHalfOpenProbe) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.open_ticks = 4;
  CircuitBreaker breaker{config};
  breaker.on_failure(10);
  ASSERT_TRUE(breaker.open());
  EXPECT_FALSE(breaker.allow(11));
  EXPECT_FALSE(breaker.allow(13));
  // open_ticks elapsed: exactly one probe is admitted (half-open).
  EXPECT_TRUE(breaker.allow(14));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.on_success(14);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsTimer) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.open_ticks = 4;
  CircuitBreaker breaker{config};
  breaker.on_failure(0);
  EXPECT_TRUE(breaker.allow(4));  // half-open
  breaker.on_failure(4);          // probe failed
  EXPECT_TRUE(breaker.open());
  EXPECT_FALSE(breaker.allow(7));  // timer restarted at 4
  EXPECT_TRUE(breaker.allow(8));
  EXPECT_EQ(breaker.opened_total(), 2u);
}

TEST(CircuitBreaker, MultiProbeCloseRequiresStreak) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.open_ticks = 1;
  config.probe_successes = 2;
  CircuitBreaker breaker{config};
  breaker.on_failure(0);
  EXPECT_TRUE(breaker.allow(1));
  breaker.on_success(1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // 1 of 2
  breaker.on_success(2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, TransitionsAreJournaledAndCounted) {
  BreakerConfig config;
  config.failure_threshold = 2;
  config.open_ticks = 3;
  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  CircuitBreaker breaker{config, obs::Observer{&metrics, nullptr, &journal}, 5};
  breaker.on_failure(1);
  breaker.on_failure(2);   // open
  (void)breaker.allow(5);  // half-open
  breaker.on_success(5);   // close
  bool opened = false, half = false, closed = false;
  for (const obs::Event& event : journal.events()) {
    if (event.subject != 5u) continue;
    opened |= event.kind == obs::EventKind::kBreakerOpen;
    half |= event.kind == obs::EventKind::kBreakerHalfOpen;
    closed |= event.kind == obs::EventKind::kBreakerClose;
  }
  EXPECT_TRUE(opened);
  EXPECT_TRUE(half);
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace vdx::resilience
