// Supervisor restart-budget semantics: deterministic jitter-free backoff,
// sliding-window budgets, and the permissive default policy the serving
// stack relies on for backward compatibility.
#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include "obs/observe.hpp"

namespace vdx::resilience {
namespace {

TEST(Supervisor, DefaultPolicyRestartsImmediatelyForever) {
  Supervisor supervisor;
  // Pre-supervisor behavior: unbounded immediate respawns, even many times
  // within one tick (a shard can fail repeatedly inside a single round).
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(supervisor.on_failure(0, 7), RestartDecision::kRestart);
  }
  EXPECT_EQ(supervisor.restarts_total(), 100u);
  EXPECT_EQ(supervisor.denied_total(), 0u);
}

TEST(Supervisor, BackoffDoublesAndCaps) {
  RestartPolicy policy;
  policy.backoff_base_ticks = 2;
  policy.backoff_max_ticks = 8;
  Supervisor supervisor{policy};

  // First failure of a streak: restart now, next slot 2 ticks out.
  EXPECT_EQ(supervisor.on_failure(3, 10), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.retry_at(3), 12u);
  EXPECT_EQ(supervisor.on_failure(3, 11), RestartDecision::kBackoff);
  // Second in the streak: 2 << 1 = 4.
  EXPECT_EQ(supervisor.on_failure(3, 12), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.retry_at(3), 16u);
  // Third: 2 << 2 = 8; fourth would double past the cap and clamps there.
  EXPECT_EQ(supervisor.on_failure(3, 16), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.retry_at(3), 24u);
  EXPECT_EQ(supervisor.on_failure(3, 24), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.retry_at(3), 32u);

  // A success resets the streak: the next failure backs off from base again.
  supervisor.on_success(3);
  EXPECT_EQ(supervisor.consecutive_failures(3), 0u);
  EXPECT_EQ(supervisor.on_failure(3, 40), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.retry_at(3), 42u);
}

TEST(Supervisor, WindowBudgetDeniesThenForgets) {
  RestartPolicy policy;
  policy.max_restarts = 2;
  policy.window_ticks = 10;
  Supervisor supervisor{policy};
  obs::RunJournal journal;

  EXPECT_EQ(supervisor.on_failure(1, 100), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.on_failure(1, 101), RestartDecision::kRestart);
  // Budget spent inside [92, 101]: give up, not backoff.
  EXPECT_EQ(supervisor.on_failure(1, 102), RestartDecision::kGiveUp);
  EXPECT_EQ(supervisor.denied_total(), 1u);
  // Once the window slides past the old restarts the budget replenishes.
  EXPECT_EQ(supervisor.on_failure(1, 111), RestartDecision::kRestart);
}

TEST(Supervisor, ChildrenAreIndependent) {
  RestartPolicy policy;
  policy.max_restarts = 1;
  policy.window_ticks = 100;
  Supervisor supervisor{policy};
  EXPECT_EQ(supervisor.on_failure(0, 5), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.on_failure(0, 6), RestartDecision::kGiveUp);
  // Child 1 still has its own budget.
  EXPECT_EQ(supervisor.on_failure(1, 6), RestartDecision::kRestart);
}

TEST(Supervisor, GiveUpJournalsRestartDenied) {
  RestartPolicy policy;
  policy.max_restarts = 1;
  policy.window_ticks = 50;
  obs::MetricsRegistry metrics;
  obs::RunJournal journal;
  Supervisor supervisor{policy, obs::Observer{&metrics, nullptr, &journal}};
  EXPECT_EQ(supervisor.on_failure(9, 1), RestartDecision::kRestart);
  EXPECT_EQ(supervisor.on_failure(9, 2), RestartDecision::kGiveUp);
  bool saw = false;
  for (const obs::Event& event : journal.events()) {
    saw = saw || (event.kind == obs::EventKind::kRestartDenied &&
                  event.subject == 9u);
  }
  EXPECT_TRUE(saw);
}

TEST(Supervisor, DeterministicReplay) {
  RestartPolicy policy;
  policy.max_restarts = 3;
  policy.window_ticks = 16;
  policy.backoff_base_ticks = 1;
  policy.backoff_max_ticks = 4;
  const auto run = [&policy] {
    Supervisor supervisor{policy};
    std::vector<int> decisions;
    for (std::uint64_t t = 0; t < 64; ++t) {
      decisions.push_back(static_cast<int>(supervisor.on_failure(0, t)));
      if (t % 7 == 0) supervisor.on_success(0);
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vdx::resilience
