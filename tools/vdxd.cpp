// vdxd — the long-lived VDX serving daemon (DESIGN.md §12).
//
// Owns a VdxExchange plus an online active-session population, admits
// arrivals continuously, and answers Decision-Protocol rounds on the
// logical-clock engine, one decision line per round on stdout:
//
//   vdxd --sim-clock --sessions 33400 --seed 2017 --round 5
//   vdxload --sessions 5000 | vdxd --stdin --budget 8000
//   vdxd --sim-clock --checkpoint-dir ckpt --checkpoint-every 50
//   vdxd --sim-clock --resume-from ckpt
//   vdxd --sim-clock --http-port 0        # scrape GET /metrics
//
// Determinism contract: with --sim-clock (the built-in generator feed) the
// decision log, journal, and every checkpoint are a pure function of the
// flags — two same-seed runs are byte-identical, including --resume-from
// continuations. Wall-clock latency lives only in the serve.* histograms
// and the end-of-run SLO summary (stderr), never in a deterministic output.
//
// Run `vdxd --help` for the generated flag reference.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/flags.hpp"
#include "obs/observe.hpp"
#include "proto/wire.hpp"
#include "serve/daemon.hpp"
#include "serve/export_guard.hpp"
#include "serve/feed.hpp"
#include "serve/httpd.hpp"
#include "sim/scenario.hpp"
#include "state/checkpoint.hpp"
#include "state/snapshot.hpp"
#include "state/store.hpp"

namespace {

using namespace vdx;

// SIGTERM/SIGINT flip this; the daemon sees it between rounds, records
// kDrain, snapshots, and returns (graceful drain, DESIGN.md §12).
std::atomic<bool> g_stop{false};

extern "C" void vdxd_on_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

struct Options {
  std::size_t sessions = 0;
  std::uint64_t seed = 0;
  double hours = 0.0;
  std::size_t city_cdns = 0;
  double round_s = 5.0;
  double budget_mbps = 0.0;
  std::size_t queue_capacity = 0;
  double wp = 1.0;
  double wc = 2.0;
  bool sim_clock = false;
  bool stdin_feed = false;
  std::size_t checkpoint_every = 0;
  std::string checkpoint_dir;
  std::size_t keep = 3;
  std::string resume_from;
  std::uint64_t halt_after = 0;
  std::uint64_t throw_after = 0;
  bool http = false;
  std::size_t http_port = 0;
  std::string decisions_out;
  std::string metrics_out;
  std::string journal_out;
  std::string trace_out;
  std::size_t shards = 1;
  std::string shard_backend = "inproc";
  double p99_slo_ms = 0.0;
  std::size_t breaker_threshold = 0;
  std::size_t breaker_open_rounds = 4;
  std::size_t restart_budget = 0;
  std::size_t restart_window = 32;
};

// The single accessor sequence: parses a real command line, and — run over
// an empty Flags — declares every flag for the generated --help.
Options options_from(core::Flags& flags) {
  Options opt;
  opt.sessions = flags.count("sessions", 33'400, 1);
  opt.seed = static_cast<std::uint64_t>(flags.number("seed", 2017));
  opt.hours = flags.positive("hours", 0.0);
  opt.city_cdns = flags.count("city-cdns", 0);
  opt.round_s = flags.positive("round", 5.0);
  opt.budget_mbps = flags.number("budget", 0.0);
  opt.queue_capacity = flags.count("queue-capacity", 0);
  opt.wp = flags.number("wp", 1.0);
  opt.wc = flags.number("wc", 2.0);
  opt.sim_clock = flags.boolean("sim-clock");
  opt.stdin_feed = flags.boolean("stdin");
  opt.checkpoint_every = flags.count("checkpoint-every", 0, 1);
  opt.checkpoint_dir = flags.text("checkpoint-dir", "");
  opt.keep = flags.count("keep", 3, 1);
  opt.resume_from = flags.existing_path("resume-from");
  opt.halt_after = flags.count("halt-after", 0, 1);
  opt.throw_after = flags.count("throw-after", 0, 1);
  opt.http = flags.has("http-port");
  opt.http_port = flags.count("http-port", 0);
  opt.decisions_out = flags.text("decisions-out", "");
  opt.metrics_out = flags.text("metrics-out", "");
  opt.journal_out = flags.text("journal-out", "");
  opt.trace_out = flags.text("trace-out", "");
  opt.shards = flags.count("shards", 1, 1);
  opt.shard_backend = flags.text("shard-backend", "inproc");
  opt.p99_slo_ms = flags.positive("p99-slo-ms", 0.0);
  opt.breaker_threshold = flags.count("breaker-threshold", 0);
  opt.breaker_open_rounds = flags.count("breaker-open-rounds", 4, 1);
  opt.restart_budget = flags.count("restart-budget", 0);
  opt.restart_window = flags.count("restart-window", 32, 1);
  return opt;
}

void print_help() {
  std::puts(
      "vdxd — long-lived VDX serving daemon\n"
      "\n"
      "usage: vdxd [--flag value | --flag=value ...]\n"
      "\n"
      "Feeds: the built-in deterministic generator client (--sim-clock, the\n"
      "default) or live arrival JSONL on stdin (--stdin; vdxload emits the\n"
      "format). Decision lines go to stdout (or --decisions-out); the run\n"
      "summary and SLO quantiles go to stderr. SIGTERM/SIGINT drain\n"
      "gracefully with a final snapshot when checkpointing is on.\n"
      "\n"
      "flags:");
  core::Flags empty{std::vector<std::string>{}};
  (void)options_from(empty);
  empty.write_help(std::cout);
}

int run(core::Flags& flags) {
  const Options opt = options_from(flags);
  flags.check_all_used();
  if (opt.stdin_feed && opt.sim_clock) {
    throw std::invalid_argument{
        "--stdin and --sim-clock are mutually exclusive (a live feed has no "
        "simulated clock horizon)"};
  }
  if (opt.stdin_feed && !opt.resume_from.empty()) {
    throw std::invalid_argument{
        "--resume-from requires the generator feed (a live --stdin feed "
        "cannot be replayed)"};
  }
  if (opt.checkpoint_every > 0 && opt.checkpoint_dir.empty()) {
    throw std::invalid_argument{"--checkpoint-every requires --checkpoint-dir"};
  }

  // The scenario contributes world/catalog/mapping only; the arrival volume
  // lives in the feed, so the pilot trace stays small (same policy as
  // `vdxsim timeline --stream`).
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = opt.sessions;
  scenario_config.seed = opt.seed;
  scenario_config.city_cdn_count = opt.city_cdns;
  if (opt.hours > 0.0) scenario_config.trace.duration_s = opt.hours * 3600.0;
  sim::ScenarioConfig pilot = scenario_config;
  pilot.trace.session_count = std::min<std::size_t>(opt.sessions, 10'000);
  const sim::Scenario scenario = sim::Scenario::build(pilot);

  std::unique_ptr<serve::ArrivalFeed> feed;
  serve::JsonlFeed* live = nullptr;
  if (opt.stdin_feed) {
    auto jsonl = std::make_unique<serve::JsonlFeed>(std::cin);
    live = jsonl.get();
    feed = std::move(jsonl);
  } else {
    // Same stream derivation as vdxsim/vdxload, so `vdxload --seed S |
    // vdxd --stdin` replays exactly what `vdxd --sim-clock --seed S` serves.
    core::Rng root{scenario_config.seed};
    core::Rng rng = root.fork("stream-trace");
    feed = std::make_unique<serve::GeneratorFeed>(scenario.world(),
                                                  scenario_config.trace, rng);
  }

  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  obs::Observer obs;
  obs.metrics = &metrics;
  obs.tracer = &tracer;
  obs.journal = &journal;

  // The guard outlives the daemon: any exit path — drain, horizon, a thrown
  // round — flushes the configured exports atomically.
  serve::ExportGuard guard{
      {opt.metrics_out, opt.journal_out, opt.trace_out}, obs};

  std::ofstream decisions_file;
  std::ostream* decisions = &std::cout;
  if (!opt.decisions_out.empty()) {
    decisions_file.open(opt.decisions_out);
    if (!decisions_file) {
      throw std::runtime_error{"cannot write " + opt.decisions_out};
    }
    decisions = &decisions_file;
  }

  serve::ServeConfig config;
  config.round_s = opt.round_s;
  config.queue_capacity = opt.queue_capacity;
  config.checkpoint_every_rounds = opt.checkpoint_every;
  config.checkpoint_dir = opt.checkpoint_dir;
  config.checkpoint_keep = opt.keep;
  config.halt_after_rounds = opt.halt_after;
  config.throw_after_rounds = opt.throw_after;
  config.stop = &g_stop;
  config.decisions = decisions;
  config.exchange.overload.demand_budget_mbps = opt.budget_mbps;
  config.exchange.broker.weights = {opt.wp, opt.wc};
  config.obs = obs;
  // Shard topology: decisions are byte-identical at any count (DESIGN.md
  // §14), so the snapshot fingerprint deliberately excludes it — a run
  // checkpointed at --shards 4 resumes cleanly as a monolith and vice versa.
  config.shards = opt.shards;
  const auto backend = market::shard_backend_from(opt.shard_backend);
  if (!backend.has_value()) {
    throw std::invalid_argument{"--shard-backend must be inproc or process, got " +
                                opt.shard_backend};
  }
  config.shard_backend = *backend;

  // Self-healing knobs (DESIGN.md §15). One --breaker-threshold arms both
  // the per-shard-link breakers and the checkpointer breaker; the brownout
  // ladder reacts to whatever opens. All default off: vdxd without these
  // flags behaves exactly as before this layer existed.
  config.brownout.p99_slo_ms = opt.p99_slo_ms;
  if (opt.breaker_threshold > 0) {
    config.shard_link_breaker.failure_threshold = opt.breaker_threshold;
    config.shard_link_breaker.open_ticks = opt.breaker_open_rounds;
    config.checkpoint_breaker.failure_threshold = opt.breaker_threshold;
    config.checkpoint_breaker.open_ticks = opt.breaker_open_rounds;
  }
  if (opt.restart_budget > 0) {
    config.shard_worker_restart.max_restarts = opt.restart_budget;
    config.shard_worker_restart.window_ticks = opt.restart_window;
    config.shard_worker_restart.backoff_base_ticks = 1;
    config.shard_worker_restart.backoff_max_ticks = 8;
  }
  serve::HealthState health;
  config.health = &health;

  // The fingerprint binds snapshots to this exact serving configuration;
  // resuming under different flags is rejected instead of diverging.
  state::RunFingerprint fingerprint;
  fingerprint.seed = scenario_config.seed;
  fingerprint.design = serve::kDaemonDesign;
  fingerprint.broker_sessions = opt.sessions;
  fingerprint.background_sessions = 0;
  fingerprint.duration_s = scenario_config.trace.duration_s;
  fingerprint.epoch_s = opt.round_s;
  {
    proto::ByteWriter hashed;
    hashed.write_f64(opt.budget_mbps);
    hashed.write_u64(opt.queue_capacity);
    hashed.write_f64(opt.wp);
    hashed.write_f64(opt.wc);
    hashed.write_u64(opt.city_cdns);
    const std::vector<std::uint8_t> bytes = hashed.take();
    fingerprint.config_hash = state::fnv1a(bytes);
  }
  config.fingerprint = fingerprint;

  std::signal(SIGTERM, vdxd_on_signal);
  std::signal(SIGINT, vdxd_on_signal);

  serve::ServeDaemon daemon{scenario, *feed, std::move(config)};

  std::optional<serve::Httpd> httpd;
  if (opt.http) {
    httpd.emplace(metrics, static_cast<std::uint16_t>(opt.http_port), &health);
    std::fprintf(stderr, "[http] listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(httpd->port()));
  }

  serve::ServeReport report;
  if (!opt.resume_from.empty()) {
    std::vector<std::uint8_t> snapshot;
    if (std::filesystem::is_directory(opt.resume_from)) {
      // A directory means "latest valid snapshot in this checkpoint dir",
      // falling back across corrupted files.
      const state::CheckpointStore source{opt.resume_from, opt.keep};
      auto loaded = source.load_latest([&](std::span<const std::uint8_t> bytes) {
        auto decoded = state::decode_daemon(bytes);
        if (!decoded.ok()) return core::Status{decoded.error()};
        if (!(decoded.value().fingerprint == fingerprint)) {
          return core::Status::failure(
              core::Errc::kInvalidArgument,
              "snapshot fingerprint does not match these flags");
        }
        return core::ok_status();
      });
      if (!loaded.ok()) {
        std::fprintf(stderr, "vdxd: --resume-from: %s (%s)\n",
                     loaded.error().message.c_str(),
                     errc_name(loaded.error().code));
        return 1;
      }
      for (const std::string& line : loaded.value().rejected) {
        std::fprintf(stderr, "[resume] skipped %s\n", line.c_str());
      }
      std::fprintf(stderr, "[resume] %s (round %llu)\n",
                   loaded.value().path.string().c_str(),
                   static_cast<unsigned long long>(loaded.value().epoch));
      snapshot = std::move(loaded).value().bytes;
    } else {
      auto bytes = state::read_file(opt.resume_from);
      if (!bytes.ok()) {
        std::fprintf(stderr, "vdxd: --resume-from: %s\n",
                     bytes.error().message.c_str());
        return 1;
      }
      snapshot = std::move(bytes).value();
    }
    auto resumed = daemon.resume(snapshot);
    if (!resumed.ok()) {
      std::fprintf(stderr, "vdxd: resume rejected: %s (%s)\n",
                   resumed.error().message.c_str(),
                   errc_name(resumed.error().code));
      return 1;
    }
    report = std::move(resumed).value();
  } else {
    report = daemon.run();
  }

  if (httpd) {
    std::fprintf(stderr, "[http] %llu requests served\n",
                 static_cast<unsigned long long>(httpd->requests()));
    httpd->stop();
  }
  if (live != nullptr && live->malformed() > 0) {
    std::fprintf(stderr, "[stdin] skipped %llu malformed arrival lines\n",
                 static_cast<unsigned long long>(live->malformed()));
  }

  // Summary on stderr: stdout stays a pure decision-line stream.
  std::fprintf(stderr,
               "served: rounds=%llu decisions=%llu skipped=%llu arrivals=%llu "
               "peak-active=%llu queue-dropped=%llu shed-rounds=%llu "
               "shed-mbps=%.1f shed-clients=%.0f checkpoints=%llu "
               "checkpoint-skips=%llu brownout-rounds=%llu%s%s\n",
               static_cast<unsigned long long>(report.rounds),
               static_cast<unsigned long long>(report.decision_rounds),
               static_cast<unsigned long long>(report.skipped_rounds),
               static_cast<unsigned long long>(report.arrivals),
               static_cast<unsigned long long>(report.peak_active_sessions),
               static_cast<unsigned long long>(report.queue_dropped),
               static_cast<unsigned long long>(report.shed_rounds),
               report.shed_mbps_total, report.shed_clients_total,
               static_cast<unsigned long long>(report.checkpoints_written),
               static_cast<unsigned long long>(report.checkpoint_skips),
               static_cast<unsigned long long>(report.brownout_rounds),
               report.drained ? " drained" : "",
               report.halted ? " halted" : "");
  std::fprintf(stderr,
               "slo: rounds=%llu p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms\n",
               static_cast<unsigned long long>(report.slo.rounds),
               report.slo.p50_ms, report.slo.p99_ms, report.slo.p999_ms,
               report.slo.max_ms);

  guard.flush();
  for (const std::string& error : guard.errors()) {
    std::fprintf(stderr, "vdxd: export failed: %s\n", error.c_str());
  }
  return guard.errors().empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    core::Flags flags{argc, argv, 1};
    if (flags.boolean("help")) {
      print_help();
      return 0;
    }
    return run(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vdxd: %s\n", error.what());
    return 1;
  }
}
