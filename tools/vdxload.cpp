// vdxload — open-loop load client for vdxd (DESIGN.md §12).
//
// Emits codec arrival lines (one session-arrival JSONL object per line)
// from the chunked trace::BrokerTraceGenerator, so the stream is a pure
// function of (--seed, --sessions, --hours, --multiplier) and memory stays
// bounded at any volume:
//
//   vdxload --sessions 5000 | vdxd --stdin --round 5
//   vdxload --sessions 33400 --multiplier 4 --out arrivals.jsonl
//
// --multiplier scales the offered load (session count) without touching the
// horizon — the knob bench_serving_load sweeps. With --multiplier 1 the
// stream matches what `vdxd --sim-clock` serves from its built-in feed,
// byte for byte (same generator, same stream fork).
//
// A dying sink (vdxd restarting mid-pipe) no longer kills the client:
// SIGPIPE is ignored, each failed line is retried --retries times with
// exponential backoff (reopening --out sinks between attempts, so a FIFO
// fed by a supervised vdxd reconnects), and lines that exhaust the budget
// are counted and reported on stderr instead of vanishing with the process.
//
// Run `vdxload --help` for the generated flag reference.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flags.hpp"
#include "serve/codec.hpp"
#include "sim/scenario.hpp"
#include "trace/generator.hpp"

namespace {

using namespace vdx;

struct Options {
  std::size_t sessions = 0;
  std::uint64_t seed = 0;
  double hours = 0.0;
  double multiplier = 1.0;
  std::size_t batch = 0;
  std::string out;
  std::size_t retries = 3;
  std::size_t backoff_ms = 50;
};

Options options_from(core::Flags& flags) {
  Options opt;
  opt.sessions = flags.count("sessions", 33'400, 1);
  opt.seed = static_cast<std::uint64_t>(flags.number("seed", 2017));
  opt.hours = flags.positive("hours", 0.0);
  opt.multiplier = flags.positive("multiplier", 1.0);
  opt.batch = flags.count("batch", 4096, 1);
  opt.out = flags.text("out", "");
  opt.retries = flags.count("retries", 3);
  opt.backoff_ms = flags.count("backoff-ms", 50, 1);
  return opt;
}

void print_help() {
  std::puts(
      "vdxload — open-loop arrival-stream client for vdxd\n"
      "\n"
      "usage: vdxload [--flag value | --flag=value ...]\n"
      "\n"
      "Writes deterministic arrival JSONL (the vdxd --stdin format) to\n"
      "stdout or --out; the summary goes to stderr.\n"
      "\n"
      "flags:");
  core::Flags empty{std::vector<std::string>{}};
  (void)options_from(empty);
  empty.write_help(std::cout);
}

int run(core::Flags& flags) {
  const Options opt = options_from(flags);
  flags.check_all_used();

  // The scenario contributes the world only (city population the generator
  // samples from); the pilot trace stays small.
  sim::ScenarioConfig scenario_config;
  scenario_config.trace.session_count = opt.sessions;
  scenario_config.seed = opt.seed;
  if (opt.hours > 0.0) scenario_config.trace.duration_s = opt.hours * 3600.0;
  sim::ScenarioConfig pilot = scenario_config;
  pilot.trace.session_count = std::min<std::size_t>(opt.sessions, 10'000);
  const sim::Scenario scenario = sim::Scenario::build(pilot);

  trace::TraceConfig trace = scenario_config.trace;
  trace.session_count = static_cast<std::size_t>(std::llround(
      opt.multiplier * static_cast<double>(opt.sessions)));

  // Same stream fork as vdxd's built-in generator feed: piping this into
  // `vdxd --stdin` replays the --sim-clock arrival stream exactly.
  core::Rng root{scenario_config.seed};
  core::Rng rng = root.fork("stream-trace");
  trace::BrokerTraceGenerator generator{scenario.world(), trace, rng};

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!opt.out.empty()) {
    out_file.open(opt.out);
    if (!out_file) throw std::runtime_error{"cannot write " + opt.out};
    out = &out_file;
  }

  // EPIPE must surface as a failed write, not a process-killing SIGPIPE —
  // the whole point is to outlive a restarting vdxd on the far end.
  std::signal(SIGPIPE, SIG_IGN);

  // One line per write+flush so a broken pipe is detected at the exact line
  // that lost it (a deep ostream buffer would smear the failure across a
  // whole batch). The syscall per ~100-byte line is noise next to vdxd's
  // round work.
  std::size_t emitted = 0;
  std::size_t dropped = 0;
  std::size_t reconnects = 0;
  bool sink_dead = false;
  const auto emit_line = [&](const std::string& line) {
    for (std::size_t attempt = 0;; ++attempt) {
      out->clear();
      out->write(line.data(), static_cast<std::streamsize>(line.size()));
      out->flush();
      if (out->good()) {
        if (sink_dead) ++reconnects;
        sink_dead = false;
        ++emitted;
        return;
      }
      // Once a line has burned the whole retry budget the sink is declared
      // dead: later lines probe once (so a comeback is still caught) but
      // never sleep — a permanently broken shell pipe drops the remaining
      // stream in milliseconds instead of hours.
      if (sink_dead || attempt >= opt.retries) {
        sink_dead = true;
        ++dropped;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<std::size_t>(opt.backoff_ms << attempt, 2000)));
      if (!opt.out.empty()) {
        // A path sink can genuinely reconnect (a FIFO whose reader
        // restarted); reopen in append mode so survivors are kept.
        out_file.close();
        out_file.clear();
        out_file.open(opt.out, std::ios::app);
      }
    }
  };
  while (true) {
    const std::vector<trace::Session> batch = generator.next_batch(opt.batch);
    if (batch.empty()) break;
    for (const trace::Session& session : batch) {
      std::ostringstream line;
      serve::write_arrival(line, session);
      emit_line(line.str());
    }
  }

  std::fprintf(stderr,
               "vdxload: wrote %zu arrivals over %.0fs%s%s (dropped=%zu "
               "reconnects=%zu)\n",
               emitted, generator.duration_s(), opt.out.empty() ? "" : " to ",
               opt.out.c_str(), dropped, reconnects);
  return dropped == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    core::Flags flags{argc, argv, 1};
    if (flags.boolean("help")) {
      print_help();
      return 0;
    }
    return run(flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vdxload: %s\n", error.what());
    return 1;
  }
}
