// vdxsim — command-line front end for the VDX simulation stack.
//
// A downstream operator's tool: run any paper experiment or extension with
// custom scenario parameters, print the tables, optionally export CSV.
//
//   vdxsim table3  --sessions 33400 --seed 2017 --wc 2
//   vdxsim design  --name marketplace --wc 4
//   vdxsim timeline --name brokered --epoch 300
//   vdxsim exchange --rounds 10 --fraud 2
//   vdxsim federation --regions 8
//   vdxsim transactions --veto 0.3
//   vdxsim multibroker --brokers 4 --name bestlookup
//   vdxsim world
//
// Run `vdxsim help` for the full reference.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/flags.hpp"
#include "core/table.hpp"
#include "market/exchange.hpp"
#include "obs/observe.hpp"
#include "market/federation.hpp"
#include "market/shard.hpp"
#include "market/transactions.hpp"
#include "proto/wire.hpp"
#include "sim/experiments.hpp"
#include "sim/hybrid.hpp"
#include "sim/multibroker.hpp"
#include "sim/streaming.hpp"
#include "sim/stress.hpp"
#include "sim/timeline.hpp"
#include "state/checkpoint.hpp"
#include "state/snapshot.hpp"
#include "state/store.hpp"
#include "trace/stats.hpp"

namespace {

using namespace vdx;

// Strict `--flag value` parsing with typed validation lives in core::Flags;
// every accessor below throws a one-line std::invalid_argument on a bad
// value, which main() prints as `vdxsim <command>: <message>`.
using core::Flags;

sim::ScenarioConfig scenario_config_from(Flags& flags) {
  sim::ScenarioConfig config;
  config.trace.session_count = flags.count("sessions", 33'400, 1);
  config.seed = static_cast<std::uint64_t>(flags.number("seed", 2017));
  config.background_multiplier = flags.number("background", 3.0);
  config.city_cdn_count = flags.count("city-cdns", 0);
  return config;
}

sim::RunConfig run_config_from(Flags& flags) {
  sim::RunConfig config;
  config.weights.performance = flags.number("wp", config.weights.performance);
  config.weights.cost = flags.number("wc", config.weights.cost);
  config.bid_count = flags.count("bids", 100, 1);
  config.menu_tolerance = flags.number("menu-tolerance", config.menu_tolerance);
  // Absent = hardware_concurrency (the internal 0 sentinel), 1 = legacy
  // serial. Output is byte-identical at any value (DESIGN.md §8), so an
  // explicit `--threads 0` is a mistake, not a request — rejected.
  config.threads = flags.count("threads", 0, 1);
  return config;
}

std::optional<sim::Design> design_by_name(const std::string& name) {
  for (const sim::Design design : sim::kAllDesigns) {
    std::string lowered{sim::to_string(design)};
    std::string compact;
    for (const char c : lowered) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        compact += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    std::string want;
    for (const char c : name) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        want += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (compact == want) return design;
  }
  return std::nullopt;
}

void maybe_export_csv(const core::Table& table, Flags& flags) {
  const std::string path = flags.text("csv", "");
  if (path.empty()) return;
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot write " + path};
  table.write_csv(out);
  std::printf("[csv] wrote %s\n", path.c_str());
}

int cmd_world(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  core::Table table{{"Country", "Cost factor", "Colo factor", "Demand share",
                     "Cities", "Clusters"}};
  table.set_title("Synthetic world");
  std::vector<std::size_t> clusters_per_country(scenario.world().countries().size(), 0);
  for (const cdn::Cluster& cluster : scenario.catalog().clusters()) {
    ++clusters_per_country[scenario.world().country_of(cluster.city).id.value()];
  }
  for (const geo::Country& country : scenario.world().countries()) {
    table.add_row({country.name, core::format_double(country.bandwidth_cost_factor, 2),
                   core::format_double(country.colo_cost_factor, 2),
                   core::format_percent(country.demand_share, 1),
                   std::to_string(scenario.world().cities_in(country.id).size()),
                   std::to_string(clusters_per_country[country.id.value()])});
  }
  table.print(std::cout);
  maybe_export_csv(table, flags);
  flags.check_all_used();
  return 0;
}

int cmd_design(Flags& flags) {
  const std::string name = flags.text("name", "marketplace");
  const auto design = design_by_name(name);
  if (!design) {
    std::fprintf(stderr, "unknown design '%s'\n", name.c_str());
    return 2;
  }
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  const sim::RunConfig run = run_config_from(flags);
  const sim::DesignOutcome outcome = sim::run_design(scenario, *design, run);
  const sim::DesignMetrics metrics = sim::compute_metrics(scenario, outcome);

  core::Table table{{"Metric", "Value"}};
  table.set_title(std::string{sim::to_string(*design)});
  table.add_row({"median cost ($/client)", core::format_double(metrics.median_cost, 3)});
  table.add_row({"median score", core::format_double(metrics.median_score, 1)});
  table.add_row({"median distance (mi)",
                 core::format_double(metrics.median_distance_miles, 0)});
  table.add_row({"median cluster load", core::format_percent(metrics.median_load, 1)});
  table.add_row({"congested clients", core::format_percent(metrics.congested_fraction, 1)});
  table.add_row({"broker traffic (Mbps)",
                 core::format_double(metrics.broker_traffic_mbps, 0)});
  table.print(std::cout);

  core::Table accounts{{"CDN", "Traffic (Mbps)", "Revenue", "Cost", "Profit"}};
  accounts.set_title("Per-CDN settlement");
  for (const sim::CdnAccount& account : sim::per_cdn_accounts(scenario, outcome)) {
    if (account.traffic_mbps <= 0.0) continue;
    accounts.add_row({scenario.catalog().cdn(account.cdn).name,
                      core::format_double(account.traffic_mbps, 0),
                      account.revenue.to_string(), account.cost.to_string(),
                      account.profit.to_string()});
  }
  accounts.print(std::cout);
  maybe_export_csv(accounts, flags);
  flags.check_all_used();
  return 0;
}

int cmd_table3(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  const sim::RunConfig run = run_config_from(flags);
  const auto rows = sim::table3_design_comparison(scenario, run);
  core::Table table{{"Design", "Cost", "Score", "Distance (mi)", "Load", "Congested"}};
  table.set_title("Table 3");
  for (const sim::Table3Row& row : rows) {
    table.add_row({std::string{sim::to_string(row.design)},
                   core::format_double(row.metrics.median_cost, 3),
                   core::format_double(row.metrics.median_score, 1),
                   core::format_double(row.metrics.median_distance_miles, 0),
                   core::format_percent(row.metrics.median_load, 0),
                   core::format_percent(row.metrics.congested_fraction, 0)});
  }
  table.print(std::cout);
  maybe_export_csv(table, flags);
  flags.check_all_used();
  return 0;
}

void print_timeline_table(const sim::TimelineResult& result, sim::Design design,
                          Flags& flags) {
  core::Table table{{"Epoch", "Time (s)", "Active", "CDN switch", "Cluster switch",
                     "Mean score"}};
  table.set_title("Timeline: " + std::string{sim::to_string(design)});
  for (const sim::EpochReport& epoch : result.epochs) {
    table.add_row({std::to_string(epoch.epoch), core::format_double(epoch.time_s, 0),
                   std::to_string(epoch.active_sessions),
                   core::format_percent(epoch.cdn_switch_fraction, 1),
                   core::format_percent(epoch.cluster_switch_fraction, 1),
                   core::format_double(epoch.metrics.mean_score, 1)});
  }
  table.print(std::cout);
  std::printf("mean CDN switch fraction: %s\n",
              core::format_percent(result.mean_cdn_switch_fraction, 1).c_str());
  maybe_export_csv(table, flags);
}

int cmd_timeline(Flags& flags) {
  if (flags.boolean("list-scenarios")) {
    for (const std::string_view scenario : sim::stress_scenario_names()) {
      std::printf("%.*s\n", static_cast<int>(scenario.size()), scenario.data());
    }
    flags.check_all_used();
    return 0;
  }
  const std::string name = flags.text("name", "marketplace");
  const auto design = design_by_name(name);
  if (!design) {
    std::fprintf(stderr, "unknown design '%s'\n", name.c_str());
    return 2;
  }
  sim::ScenarioConfig scenario_config = scenario_config_from(flags);
  // 0 sentinel = keep the trace default; an explicit `--hours 0` (or a
  // negative) is rejected by positive() with a one-line error.
  const double hours = flags.positive("hours", 0.0);
  if (hours > 0.0) scenario_config.trace.duration_s = hours * 3600.0;
  const double epoch_s = flags.positive("epoch", 300.0);

  if (!flags.boolean("stream")) {
    for (const char* checkpoint_flag :
         {"checkpoint-every", "checkpoint-dir", "keep", "resume-from"}) {
      if (flags.has(checkpoint_flag)) {
        throw std::invalid_argument{std::string{"--"} + checkpoint_flag +
                                    " requires --stream (checkpointing is a "
                                    "streaming-engine feature)"};
      }
    }
    for (const char* stress_flag : {"scenario", "spike-city", "spike-factor",
                                    "blackout-region", "shock-factor",
                                    "shed-budget"}) {
      if (flags.has(stress_flag)) {
        throw std::invalid_argument{std::string{"--"} + stress_flag +
                                    " requires --stream (stress scenarios run "
                                    "on the streaming engine)"};
      }
    }
    const sim::Scenario scenario = sim::Scenario::build(scenario_config);
    sim::TimelineConfig config;
    config.design = *design;
    config.run = run_config_from(flags);
    config.epoch_s = epoch_s;
    print_timeline_table(sim::run_timeline(scenario, config), *design, flags);
    flags.check_all_used();
    return 0;
  }

  // --stream: the event-driven engine fed from chunked generators. The
  // scenario only contributes world/catalog/mapping here, so it is built
  // with a small pilot trace — the requested session count lives in the
  // streams and is never resident in memory all at once.
  const std::size_t sessions = scenario_config.trace.session_count;
  sim::ScenarioConfig pilot = scenario_config;
  pilot.trace.session_count = std::min<std::size_t>(sessions, 10'000);
  sim::Scenario scenario = sim::Scenario::build(pilot);

  // Adversarial stress (DESIGN.md §11): demand-side modulators attach to the
  // broker generator; supply-side events mutate the catalog through a
  // controller the engine drives at each epoch midpoint.
  const sim::StressConfig stress_config = sim::stress_config_from_flags(flags);
  const sim::StressProfile stress_profile = sim::make_stress_profile(
      scenario.world(), stress_config, scenario_config.trace.duration_s);

  core::Rng stream_root{scenario_config.seed};
  core::Rng broker_rng = stream_root.fork("stream-trace");
  core::Rng background_rng = stream_root.fork("stream-background");
  trace::TraceConfig broker_trace = scenario_config.trace;
  trace::TraceConfig background_trace = broker_trace;
  background_trace.session_count = static_cast<std::size_t>(std::llround(
      scenario_config.background_multiplier * static_cast<double>(sessions)));
  trace::BrokerTraceGenerator::Options broker_options;
  broker_options.modulation = &stress_profile.demand;
  trace::BrokerTraceGenerator::Options background_options;
  background_options.broker_controlled = false;
  trace::BrokerTraceGenerator broker_generator{scenario.world(), broker_trace,
                                               broker_rng, broker_options};
  trace::BrokerTraceGenerator background_generator{
      scenario.world(), background_trace, background_rng, background_options};

  sim::StreamingConfig config;
  config.design = *design;
  config.run = run_config_from(flags);
  config.epoch_s = epoch_s;
  config.overload.max_active_sessions = stress_config.shed_budget;
  std::optional<sim::SupplyStressController> stress;
  if (stress_profile.supply_active()) {
    stress.emplace(scenario, stress_profile);
    config.stress = &*stress;
  }

  // Crash-consistency flags (DESIGN.md §10). The fingerprint binds every
  // snapshot to this exact run configuration: resuming under different
  // flags is rejected instead of silently diverging.
  const std::size_t checkpoint_every = flags.count("checkpoint-every", 0, 1);
  const std::string checkpoint_dir = flags.text("checkpoint-dir", "");
  const std::size_t keep = flags.count("keep", 3, 1);
  const std::string resume_from = flags.existing_path("resume-from");
  if (checkpoint_every > 0 && checkpoint_dir.empty()) {
    throw std::invalid_argument{"--checkpoint-every requires --checkpoint-dir"};
  }
  state::RunFingerprint fingerprint;
  fingerprint.seed = scenario_config.seed;
  fingerprint.design = static_cast<std::uint8_t>(*design);
  fingerprint.broker_sessions = sessions;
  fingerprint.background_sessions = background_trace.session_count;
  fingerprint.duration_s = broker_trace.duration_s;
  fingerprint.epoch_s = epoch_s;
  {
    proto::ByteWriter hashed;
    hashed.write_f64(config.run.weights.performance);
    hashed.write_f64(config.run.weights.cost);
    hashed.write_u64(config.run.bid_count);
    hashed.write_f64(config.run.menu_tolerance);
    hashed.write_f64(scenario_config.background_multiplier);
    hashed.write_u64(scenario_config.city_cdn_count);
    // A checkpoint taken under one stress scenario must refuse to resume
    // under another — the scenario reshapes both streams and the catalog.
    hashed.write_u64(sim::stress_config_hash(stress_config));
    const std::vector<std::uint8_t> bytes = hashed.take();
    fingerprint.config_hash = state::fnv1a(bytes);
  }
  // The engine validates every resumed snapshot against this fingerprint,
  // so it is set even when this invocation writes no checkpoints itself.
  config.checkpoint.fingerprint = fingerprint;
  std::optional<state::CheckpointStore> store;
  if (!checkpoint_dir.empty()) {
    store.emplace(checkpoint_dir, keep);
    config.checkpoint.every_epochs = checkpoint_every > 0 ? checkpoint_every : 1;
    config.checkpoint.store = &*store;
  }

  sim::GeneratorStream broker_stream{broker_generator};
  sim::GeneratorStream background_stream{background_generator};
  const sim::StreamingTimeline timeline{scenario, config};

  sim::StreamingResult result;
  if (!resume_from.empty()) {
    std::vector<std::uint8_t> snapshot;
    if (std::filesystem::is_directory(resume_from)) {
      // A directory means "latest valid snapshot in this checkpoint dir",
      // falling back across corrupted files.
      const state::CheckpointStore source{resume_from, keep};
      auto loaded = source.load_latest([&](std::span<const std::uint8_t> bytes) {
        auto decoded = state::decode_timeline(bytes);
        if (!decoded.ok()) return core::Status{decoded.error()};
        if (!(decoded.value().fingerprint == fingerprint)) {
          return core::Status::failure(
              core::Errc::kInvalidArgument,
              "snapshot fingerprint does not match these flags");
        }
        return core::ok_status();
      });
      if (!loaded.ok()) {
        std::fprintf(stderr, "vdxsim timeline: --resume-from: %s (%s)\n",
                     loaded.error().message.c_str(), errc_name(loaded.error().code));
        return 1;
      }
      for (const std::string& line : loaded.value().rejected) {
        std::fprintf(stderr, "[resume] skipped %s\n", line.c_str());
      }
      std::printf("[resume] %s (epoch %llu)\n",
                  loaded.value().path.string().c_str(),
                  static_cast<unsigned long long>(loaded.value().epoch));
      snapshot = std::move(loaded).value().bytes;
    } else {
      auto bytes = state::read_file(resume_from);
      if (!bytes.ok()) {
        std::fprintf(stderr, "vdxsim timeline: --resume-from: %s\n",
                     bytes.error().message.c_str());
        return 1;
      }
      snapshot = std::move(bytes).value();
    }
    auto resumed = timeline.resume(broker_stream, background_stream, snapshot);
    if (!resumed.ok()) {
      std::fprintf(stderr, "vdxsim timeline: resume rejected: %s (%s)\n",
                   resumed.error().message.c_str(), errc_name(resumed.error().code));
      return 1;
    }
    result = std::move(resumed).value();
  } else {
    result = timeline.run(broker_stream, background_stream);
  }

  print_timeline_table(result.timeline, *design, flags);
  std::printf("streamed: broker=%zu background=%zu peak-active=%zu "
              "decision-rounds=%zu background-recomputes=%zu shed=%zu\n",
              result.broker_sessions, result.background_sessions,
              result.peak_active_sessions, result.decision_rounds,
              result.background_recomputes, result.shed_sessions);
  flags.check_all_used();
  return 0;
}

int cmd_exchange(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  market::ExchangeConfig config;
  if (flags.text("strategy", "risk-averse") == "static") {
    config.strategy = market::StrategyKind::kStatic;
  }
  // Chaos transport (§6.3): --drop/--corrupt per-frame rates switch the
  // exchange onto the deadline/retry engine with stale-bid fallback.
  config.chaos.faults.drop_rate = flags.number("drop", 0.0);
  config.chaos.faults.corrupt_rate = flags.number("corrupt", 0.0);
  config.chaos.faults.seed =
      static_cast<std::uint64_t>(flags.number("chaos-seed", 0xC4A05));

  // Observability exports (DESIGN.md §7). Traces use the logical clock only,
  // so two same-seed runs produce byte-identical files.
  const std::string metrics_path = flags.text("metrics-out", "");
  const std::string trace_path = flags.text("trace-out", "");
  const std::string journal_path = flags.text("journal-out", "");
  obs::MetricsRegistry metrics;
  obs::SpanTracer tracer;
  obs::RunJournal journal;
  config.obs.metrics = &metrics;
  if (!trace_path.empty()) config.obs.tracer = &tracer;
  if (!journal_path.empty()) config.obs.journal = &journal;
  // Shard topology (DESIGN.md §14): --shards N settles through a coordinator
  // over N region workers — byte-identical to the monolith at any count.
  // --shard-drop/--shard-corrupt/--shard-duplicate inject chaos on the
  // coordinator<->worker links (independent of the CDN transport's --drop).
  const std::size_t shards = flags.count("shards", 1, 1);
  const std::string backend_name = flags.text("shard-backend", "inproc");
  const auto backend = market::shard_backend_from(backend_name);
  if (!backend.has_value()) {
    throw std::invalid_argument{"--shard-backend must be inproc or process, got " +
                                backend_name};
  }
  proto::FaultProfile link_faults;
  link_faults.drop_rate = flags.number("shard-drop", 0.0);
  link_faults.corrupt_rate = flags.number("shard-corrupt", 0.0);
  link_faults.duplicate_rate = flags.number("shard-duplicate", 0.0);

  std::unique_ptr<market::VdxExchange> mono;
  std::unique_ptr<market::ShardedExchange> shard_exchange;
  market::ExchangeFrontend* exchange = nullptr;
  if (shards > 1) {
    market::ShardedConfig sharded;
    sharded.shards = shards;
    sharded.backend = *backend;
    sharded.exchange = config;
    sharded.link_faults = link_faults;
    shard_exchange = std::make_unique<market::ShardedExchange>(scenario, sharded);
    exchange = shard_exchange.get();
  } else {
    mono = std::make_unique<market::VdxExchange>(scenario, config);
    exchange = mono.get();
  }
  const bool chaos = config.chaos.faults.any();
  const double fraud = flags.number("fraud", -1.0);
  const double fail = flags.number("fail", -1.0);
  if (fraud >= 0) {
    const cdn::CdnId cdn{static_cast<std::uint32_t>(fraud)};
    if (shard_exchange) shard_exchange->set_fraudulent(cdn, true);
    if (mono) mono->set_fraudulent(cdn, true);
  }
  if (fail >= 0) {
    const cdn::CdnId cdn{static_cast<std::uint32_t>(fail)};
    if (shard_exchange) shard_exchange->set_failed(cdn, true);
    if (mono) mono->set_failed(cdn, true);
  }

  const auto rounds = static_cast<std::size_t>(flags.number("rounds", 5));
  std::vector<std::string> header{"Round",      "Bids",        "Wire MB",
                                  "Mean score", "Mean cost",   "Pred. error",
                                  "Congested"};
  if (chaos) {
    header.insert(header.end(), {"Timeouts", "Retries", "Stale", "Degraded"});
  }
  core::Table table{header};
  table.set_title(chaos ? "VDX exchange rounds (chaos transport)"
                        : "VDX exchange rounds");
  for (std::size_t r = 0; r < rounds; ++r) {
    const market::RoundReport report = exchange->run_round();
    std::vector<std::string> row{
        std::to_string(r + 1), std::to_string(report.wire.bids_received),
        core::format_double(static_cast<double>(report.wire.bytes_on_wire) / 1e6, 1),
        core::format_double(report.mean_score, 1),
        core::format_double(report.mean_cost, 3),
        core::format_double(report.mean_prediction_error, 3),
        core::format_percent(report.congested_fraction, 1)};
    if (chaos) {
      row.push_back(std::to_string(report.wire.chaos.timeouts));
      row.push_back(std::to_string(report.wire.chaos.retries));
      row.push_back(std::to_string(report.stale_bids_used));
      row.push_back(report.degraded ? "yes" : "no");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  if (shard_exchange) {
    const auto link = shard_exchange->link_fault_counters();
    std::printf(
        "[shard] shards=%zu backend=%s restarts=%zu link{injected=%llu "
        "dropped=%llu corrupted=%llu duplicated=%llu}\n",
        shard_exchange->plan().shard_count, backend_name.c_str(),
        shard_exchange->worker_restarts(),
        static_cast<unsigned long long>(link.frames),
        static_cast<unsigned long long>(link.dropped),
        static_cast<unsigned long long>(link.corrupted),
        static_cast<unsigned long long>(link.duplicated));
  }

  const auto export_file = [](const std::string& path, const auto& writer) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error{"cannot write " + path};
    writer(out);
    std::printf("[obs] wrote %s\n", path.c_str());
  };
  if (!metrics_path.empty()) {
    export_file(metrics_path,
                [&](std::ostream& out) { metrics.write_jsonl(out); });
  }
  if (!trace_path.empty()) {
    export_file(trace_path, [&](std::ostream& out) { tracer.write_jsonl(out); });
  }
  if (!journal_path.empty()) {
    export_file(journal_path,
                [&](std::ostream& out) { journal.write_jsonl(out); });
    journal.summary_table().print(std::cout);
  }

  maybe_export_csv(table, flags);
  flags.check_all_used();
  return 0;
}

int cmd_federation(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  market::FederationConfig config;
  config.region_count = static_cast<std::size_t>(flags.number("regions", 4));
  config.run = run_config_from(flags);
  config.threads = config.run.threads;  // --threads parallelizes region solves
  config.run.threads = 1;
  const market::FederationResult result =
      market::run_federated_marketplace(scenario, config);
  std::printf("regions=%zu largest-instance=%zu bids optimize=%.2fs "
              "mean-cost=%.3f mean-score=%.1f fallback-clients=%.0f\n",
              result.region_count, result.largest_instance_options,
              result.optimize_seconds, result.metrics.mean_cost,
              result.metrics.mean_score, result.fallback_clients);
  flags.check_all_used();
  return 0;
}

int cmd_transactions(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  market::TransactionConfig config;
  config.veto_threshold = flags.number("veto", 0.2);
  config.max_rounds = static_cast<std::size_t>(flags.number("rounds", 12));
  const market::TransactionResult result = market::run_transactions(scenario, config);
  std::printf("committed=%s rounds=%zu withdrawn=%zu final-score=%.2f "
              "final-cost=%.3f\n",
              result.committed ? "yes" : "NO", result.rounds_used,
              result.withdrawn_cdns, result.final_mean_score, result.final_mean_cost);
  flags.check_all_used();
  return 0;
}

int cmd_multibroker(Flags& flags) {
  const std::string name = flags.text("name", "bestlookup");
  const auto design = design_by_name(name);
  if (!design) {
    std::fprintf(stderr, "unknown design '%s'\n", name.c_str());
    return 2;
  }
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  sim::MultiBrokerConfig config;
  config.design = *design;
  config.broker_count = static_cast<std::size_t>(flags.number("brokers", 2));
  config.run = run_config_from(flags);
  const sim::MultiBrokerResult result = sim::run_multibroker(scenario, config);
  std::printf("design=%s brokers=%zu congested=%s overbooked-clusters=%zu "
              "mean-score=%.1f\n",
              std::string{sim::to_string(result.design)}.c_str(), result.broker_count,
              core::format_percent(result.metrics.congested_fraction, 1).c_str(),
              result.overbooked_clusters, result.metrics.mean_score);
  flags.check_all_used();
  return 0;
}

int cmd_trace(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  const trace::BrokerTrace& trace = scenario.broker_trace();

  core::Table table{{"Statistic", "Value", "Paper (§3.1)"}};
  table.set_title("Broker trace characterization");
  table.add_row({"sessions", std::to_string(trace.size()), "33.4K"});
  table.add_row({"abandonment rate",
                 core::format_percent(trace::abandonment_rate(trace), 1), "~78%"});
  const auto slope = trace::video_zipf_slope(trace);
  table.add_row({"video rank-frequency slope",
                 slope ? core::format_double(*slope, 2) : "n/a", "Zipf"});
  table.add_row({"sessions moved at least once",
                 core::format_percent(trace::moved_fraction_overall(trace), 1),
                 "high (Fig. 4)"});
  const auto series = trace::moved_fraction_timeseries(trace);
  std::vector<double> steady(series.begin() + series.size() / 6, series.end());
  double mean = 0.0;
  for (const double v : steady) mean += v;
  mean /= static_cast<double>(steady.size());
  table.add_row({"moved fraction per 5s bin (steady mean)",
                 core::format_percent(mean, 1), "~40%"});
  table.print(std::cout);

  const auto usage = trace::country_usage(trace, scenario.world(), 100);
  core::Table countries{{"Country", "Requests", "CDN A", "CDN B", "CDN C", "other"}};
  countries.set_title("Per-country CDN usage (Fig. 7)");
  for (const auto& u : usage) {
    countries.add_row({scenario.world().countries()[u.country.value()].name,
                       std::to_string(u.requests),
                       core::format_percent(u.share[0], 0),
                       core::format_percent(u.share[1], 0),
                       core::format_percent(u.share[2], 0),
                       core::format_percent(u.share[3], 0)});
  }
  countries.print(std::cout);
  maybe_export_csv(countries, flags);
  flags.check_all_used();
  return 0;
}

int cmd_hybrid(Flags& flags) {
  const sim::Scenario scenario = sim::Scenario::build(scenario_config_from(flags));
  const sim::HybridOutcome result =
      sim::run_hybrid_pricing(scenario, run_config_from(flags));
  const double total = result.flat_clients + result.dynamic_clients;
  std::printf("flat=%.1f%% dynamic=%.1f%% mean-cost=%.3f mean-score=%.1f "
              "congested=%s\n",
              100.0 * result.flat_clients / total,
              100.0 * result.dynamic_clients / total, result.metrics.mean_cost,
              result.metrics.mean_score,
              core::format_percent(result.metrics.congested_fraction, 1).c_str());
  flags.check_all_used();
  return 0;
}

void print_help() {
  std::puts(
      "vdxsim — VDX marketplace simulation front end\n"
      "\n"
      "usage: vdxsim <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  world          print the synthetic world (countries, costs, clusters)\n"
      "  design         run one design snapshot   (--name brokered|marketplace|...)\n"
      "  table3         run the full design comparison\n"
      "  timeline       per-epoch decision churn  (--name X --epoch 300\n"
      "                 --hours H --stream: event-driven engine over chunked\n"
      "                 session generators — memory stays bounded at any\n"
      "                 --sessions)\n"
      "                 crash consistency (--stream only):\n"
      "                   --checkpoint-dir D    snapshot directory\n"
      "                   --checkpoint-every N  epochs between snapshots (default 1)\n"
      "                   --keep K              snapshots retained (default 3)\n"
      "                   --resume-from PATH    snapshot file, or a checkpoint\n"
      "                                         dir (= latest valid snapshot)\n"
      "                 adversarial stress (--stream only):\n"
      "                   --scenario S          steady|flash-crowd|diurnal|\n"
      "                                         blackout|price-shock|perfect-storm\n"
      "                   --spike-city I        flash-crowd city (default busiest)\n"
      "                   --spike-factor X      flash-crowd demand multiplier (50)\n"
      "                   --blackout-region R   country name (default highest-demand)\n"
      "                   --shock-factor X      price-shock multiplier (3)\n"
      "                   --shed-budget N       max active sessions per round (0=off)\n"
      "                   --list-scenarios      print scenario names and exit\n"
      "  exchange       multi-round VDX exchange  (--rounds N --fraud I --fail I\n"
      "                 --strategy static|risk-averse --drop P --corrupt P\n"
      "                 --chaos-seed S --metrics-out F --trace-out F\n"
      "                 --journal-out F)\n"
      "                 sharded topology (byte-identical at any N):\n"
      "                   --shards N            region worker shards (default 1)\n"
      "                   --shard-backend B     inproc|process (default inproc)\n"
      "                   --shard-drop P        drop rate on coordinator links\n"
      "                   --shard-corrupt P     corrupt rate on coordinator links\n"
      "                   --shard-duplicate P   duplicate rate on coordinator links\n"
      "  federation     regional marketplaces     (--regions R)\n"
      "  transactions   all-CDN-approval protocol (--veto T --rounds N)\n"
      "  multibroker    overbooking study         (--brokers B --name X)\n"
      "  hybrid         flat+dynamic pricing blend\n"
      "  trace          broker-trace characterization (Figs. 4/7, §3.1)\n"
      "  help           this text\n"
      "\n"
      "scenario flags (all commands): --sessions N --seed S --background X\n"
      "                               --city-cdns N\n"
      "optimizer flags:               --wp W --wc W --bids K --menu-tolerance T\n"
      "parallelism:                   --threads N (0 = all cores, the default;\n"
      "                               1 = serial; same seed gives byte-identical\n"
      "                               output at any N)\n"
      "output flags:                  --csv FILE (where the command prints a table)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_help();
    return 2;
  }
  const std::string command = argv[1];
  try {
    Flags flags{argc, argv, 2};
    if (command == "world") return cmd_world(flags);
    if (command == "design") return cmd_design(flags);
    if (command == "table3") return cmd_table3(flags);
    if (command == "timeline") return cmd_timeline(flags);
    if (command == "exchange") return cmd_exchange(flags);
    if (command == "federation") return cmd_federation(flags);
    if (command == "transactions") return cmd_transactions(flags);
    if (command == "multibroker") return cmd_multibroker(flags);
    if (command == "hybrid") return cmd_hybrid(flags);
    if (command == "trace") return cmd_trace(flags);
    if (command == "help" || command == "--help" || command == "-h") {
      print_help();
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s' (try 'vdxsim help')\n", command.c_str());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vdxsim %s: %s\n", command.c_str(), error.what());
    return 1;
  }
}
