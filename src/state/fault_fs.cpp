#include "state/fault_fs.hpp"

#include <algorithm>
#include <utility>

namespace vdx::state {

namespace {

core::Status fail(core::Errc code, std::string message) {
  return core::Status::failure(code, std::move(message));
}

std::string key_of(const std::filesystem::path& path) {
  return path.lexically_normal().string();
}

}  // namespace

FaultFs::FaultFs(FsFaultProfile profile, obs::Observer obs)
    : profile_(profile), rng_(profile.seed) {
  if (obs.metrics != nullptr) {
    ops_ = obs.metrics->counter("state.fs.ops");
    short_writes_ = obs.metrics->counter("state.fs.short_writes");
    enospc_ = obs.metrics->counter("state.fs.enospc");
    eio_ = obs.metrics->counter("state.fs.eio");
    fsync_lost_ = obs.metrics->counter("state.fs.fsync_lost");
    crashes_ = obs.metrics->counter("state.fs.crashes");
  }
}

core::Status FaultFs::charge_op(const char* what) {
  ++op_count_;
  ops_.add(1.0);
  if (crashed_) {
    return fail(core::Errc::kUnavailable, std::string(what) + ": filesystem crashed");
  }
  if (crash_at_ != 0 && op_count_ >= crash_at_) {
    crashed_ = true;
    crash_at_ = 0;
    crashes_.add(1.0);
    return fail(core::Errc::kUnavailable,
                std::string(what) + ": simulated power cut");
  }
  return core::ok_status();
}

bool FaultFs::roll(double rate) {
  if (rate <= 0.0 || !armed()) return false;
  return rng_.chance(rate);
}

core::Result<FileSystem::Handle> FaultFs::open_write(
    const std::filesystem::path& path) {
  if (auto charged = charge_op("open_write"); !charged.ok()) {
    return core::Result<Handle>::failure(charged.error().code,
                                         charged.error().message);
  }
  if (failing_ || roll(profile_.enospc_rate)) {
    enospc_.add(1.0);
    return core::Result<Handle>::failure(
        core::Errc::kUnavailable, "open " + path.string() + ": no space on device");
  }
  const std::string key = key_of(path);
  FileNode& node = files_[key];
  node.visible.clear();
  node.visible_exists = true;
  const Handle handle = next_handle_++;
  open_[handle] = OpenFile{key};
  return handle;
}

core::Status FaultFs::write(Handle handle, std::span<const std::uint8_t> bytes) {
  if (auto charged = charge_op("write"); !charged.ok()) return charged;
  const auto it = open_.find(handle);
  if (it == open_.end()) {
    return fail(core::Errc::kInvalidArgument, "write on closed handle");
  }
  FileNode& node = files_[it->second.path];
  if (failing_ || roll(profile_.enospc_rate)) {
    enospc_.add(1.0);
    return fail(core::Errc::kUnavailable,
                "write " + it->second.path + ": no space on device");
  }
  if (roll(profile_.eio_rate)) {
    eio_.add(1.0);
    return fail(core::Errc::kUnavailable, "write " + it->second.path + ": I/O error");
  }
  if (roll(profile_.short_write_rate) && !bytes.empty()) {
    // Half the payload lands before the error — the torn-prefix case.
    const std::size_t partial = bytes.size() / 2;
    node.visible.insert(node.visible.end(), bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(partial));
    short_writes_.add(1.0);
    return fail(core::Errc::kUnavailable,
                "write " + it->second.path + ": short write");
  }
  node.visible.insert(node.visible.end(), bytes.begin(), bytes.end());
  return core::ok_status();
}

core::Status FaultFs::fsync(Handle handle) {
  if (auto charged = charge_op("fsync"); !charged.ok()) return charged;
  const auto it = open_.find(handle);
  if (it == open_.end()) {
    return fail(core::Errc::kInvalidArgument, "fsync on closed handle");
  }
  if (failing_ || roll(profile_.eio_rate)) {
    eio_.add(1.0);
    return fail(core::Errc::kUnavailable, "fsync " + it->second.path + ": I/O error");
  }
  if (roll(profile_.fsync_loss_rate)) {
    // The lying disk: success reported, nothing made durable.
    fsync_lost_.add(1.0);
    return core::ok_status();
  }
  FileNode& node = files_[it->second.path];
  node.durable = node.visible;
  node.durable_exists = true;
  return core::ok_status();
}

core::Status FaultFs::close(Handle handle) {
  if (auto charged = charge_op("close"); !charged.ok()) return charged;
  const auto it = open_.find(handle);
  if (it == open_.end()) {
    return fail(core::Errc::kInvalidArgument, "close on unknown handle");
  }
  open_.erase(it);
  return core::ok_status();
}

core::Status FaultFs::rename(const std::filesystem::path& from,
                             const std::filesystem::path& to) {
  if (auto charged = charge_op("rename"); !charged.ok()) return charged;
  const std::string from_key = key_of(from);
  const std::string to_key = key_of(to);
  const auto it = files_.find(from_key);
  if (it == files_.end() || !it->second.visible_exists) {
    return fail(core::Errc::kUnavailable, "rename " + from_key + ": no such file");
  }
  if (failing_ || roll(profile_.eio_rate)) {
    eio_.add(1.0);
    return fail(core::Errc::kUnavailable,
                "rename " + from_key + " -> " + to_key + ": I/O error");
  }
  // Atomic for visibility; each image travels as-is, so a never-fsynced
  // source yields a destination that exists now but not after a crash.
  files_[to_key] = it->second;
  files_.erase(it);
  return core::ok_status();
}

core::Status FaultFs::remove(const std::filesystem::path& path) {
  if (auto charged = charge_op("remove"); !charged.ok()) return charged;
  const std::string key = key_of(path);
  const auto it = files_.find(key);
  if (it == files_.end() || !it->second.visible_exists) {
    return fail(core::Errc::kUnavailable, "remove " + key + ": no such file");
  }
  if (failing_ || roll(profile_.eio_rate)) {
    eio_.add(1.0);
    return fail(core::Errc::kUnavailable, "remove " + key + ": I/O error");
  }
  files_.erase(it);
  return core::ok_status();
}

core::Status FaultFs::create_directories(const std::filesystem::path& dir) {
  if (auto charged = charge_op("create_directories"); !charged.ok()) return charged;
  if (failing_ || roll(profile_.enospc_rate)) {
    enospc_.add(1.0);
    return fail(core::Errc::kUnavailable,
                "mkdir " + dir.string() + ": no space on device");
  }
  dirs_[key_of(dir)] = true;
  return core::ok_status();
}

core::Result<std::vector<std::filesystem::path>> FaultFs::list_dir(
    const std::filesystem::path& dir) {
  using Paths = std::vector<std::filesystem::path>;
  if (auto charged = charge_op("list_dir"); !charged.ok()) {
    return core::Result<Paths>::failure(charged.error().code,
                                        charged.error().message);
  }
  const std::string prefix = key_of(dir) + "/";
  Paths out;
  for (const auto& [key, node] : files_) {
    if (!node.visible_exists) continue;
    if (!key.starts_with(prefix)) continue;
    if (key.find('/', prefix.size()) != std::string::npos) continue;
    out.emplace_back(key);
  }
  return out;
}

core::Result<std::vector<std::uint8_t>> FaultFs::read_file(
    const std::filesystem::path& path) {
  using Bytes = std::vector<std::uint8_t>;
  if (auto charged = charge_op("read_file"); !charged.ok()) {
    return core::Result<Bytes>::failure(charged.error().code,
                                        charged.error().message);
  }
  const auto it = files_.find(key_of(path));
  if (it == files_.end() || !it->second.visible_exists) {
    return core::Result<Bytes>::failure(core::Errc::kUnavailable,
                                        "cannot open " + key_of(path));
  }
  if (roll(profile_.eio_rate)) {
    eio_.add(1.0);
    return core::Result<Bytes>::failure(core::Errc::kUnavailable,
                                        "read " + key_of(path) + ": I/O error");
  }
  return it->second.visible;
}

void FaultFs::reboot() {
  open_.clear();
  for (auto it = files_.begin(); it != files_.end();) {
    FileNode& node = it->second;
    if (node.durable_exists) {
      node.visible = node.durable;
      node.visible_exists = true;
      ++it;
    } else {
      it = files_.erase(it);
    }
  }
  crashed_ = false;
  crash_at_ = 0;
}

bool FaultFs::durable_exists(const std::filesystem::path& path) const {
  const auto it = files_.find(key_of(path));
  return it != files_.end() && it->second.durable_exists;
}

bool FaultFs::visible_exists(const std::filesystem::path& path) const {
  const auto it = files_.find(key_of(path));
  return it != files_.end() && it->second.visible_exists;
}

}  // namespace vdx::state
