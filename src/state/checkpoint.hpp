// Timeline checkpoint: everything a StreamingTimeline run needs to resume
// bit-exactly after its process died (DESIGN.md §10).
//
// The captured state is deliberately *derived-free*: stream positions are
// emitted-session counts (the chunked trace generator regenerates any
// position as a pure function of (seed, block)), active populations are the
// minimal per-session tuples the engine's ActiveSet keeps, and every other
// field is the exact cross-epoch state of the engine loop — churn tracker,
// background placement, result accumulators, and the run journal's ring +
// sequence counter. Doubles round-trip as IEEE-754 bit patterns, so a
// resumed run replays the identical arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "obs/journal.hpp"

namespace vdx::state {

/// Identity of the run a checkpoint belongs to. Resuming validates this
/// against the freshly built run; a mismatch (different seed, horizon,
/// design, or scenario knobs) is rejected before any state is restored.
struct RunFingerprint {
  std::uint64_t seed = 0;
  std::uint8_t design = 0;
  std::uint64_t broker_sessions = 0;
  std::uint64_t background_sessions = 0;
  double duration_s = 0.0;
  double epoch_s = 0.0;
  /// Caller-supplied hash over any further config that shapes the run
  /// (vdxsim folds its scenario flags in here).
  std::uint64_t config_hash = 0;

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

/// One session of a stream's active population (what the engine's ActiveSet
/// needs to rebuild its id map, departure heap, and group-count map).
struct ActiveSession {
  std::uint32_t id = 0;
  std::uint32_t city = 0;
  double bitrate_mbps = 0.0;
  double end_s = 0.0;

  friend bool operator==(const ActiveSession&, const ActiveSession&) = default;
};

/// Position of one session stream: sessions consumed into the engine (the
/// stream re-seeks here on resume) plus the still-active population.
struct StreamCursor {
  std::uint64_t consumed = 0;
  std::vector<ActiveSession> active;  // id-ascending
};

/// detail::ChurnTracker state: previous epoch's assignment and the weighted
/// running mean.
struct ChurnState {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> previous;  // id-ascending
  double sum = 0.0;
  double weight = 0.0;
};

/// obs::RunJournal state: retained ring window plus the counters that make
/// seq survive resume (strict monotonicity across the crash).
struct JournalState {
  std::vector<obs::Event> events;  // oldest first, seq-ascending
  std::uint64_t total = 0;
  std::uint32_t round = 0;
};

struct TimelineCheckpoint {
  RunFingerprint fingerprint;
  /// First epoch the resumed run executes (the checkpoint was taken after
  /// epoch next_epoch - 1 completed).
  std::uint64_t next_epoch = 0;
  StreamCursor broker;
  StreamCursor background;
  ChurnState churn;
  std::vector<double> background_loads;
  bool background_stale = true;
  /// StreamingResult accumulators, restored so the resumed run's final
  /// report covers the whole horizon.
  std::uint64_t peak_active_sessions = 0;
  std::uint64_t decision_rounds = 0;
  std::uint64_t background_recomputes = 0;
  /// Sessions shed by admission control so far (overload-graceful runs).
  std::uint64_t shed_sessions = 0;
  /// SpanTracer logical clock, so post-resume events carry the same stamps.
  std::uint64_t logical_clock = 0;
  JournalState journal;
};

/// Everything a serving daemon (serve::ServeDaemon) needs to resume
/// bit-exactly: feed position + active population, the exchange's opaque
/// save_state() bytes (reputation, strategies, RNG positions, round
/// counter, logical clock), the daemon's own accumulators, and the journal
/// window. Uses its own section ids, so a daemon snapshot and a timeline
/// snapshot reject each other's decoder with a missing-section error.
struct DaemonCheckpoint {
  /// `design` is serve::kDaemonDesign for daemon snapshots; broker_sessions
  /// is the feed horizon (session count), epoch_s the round period.
  RunFingerprint fingerprint;
  /// First round the resumed daemon executes.
  std::uint64_t next_round = 0;
  /// Arrival feed position: sessions consumed plus the still-active set.
  StreamCursor feed;
  /// VdxExchange::save_state() bytes, restored wholesale.
  std::vector<std::uint8_t> exchange_state;
  /// ServeReport accumulators, restored so the resumed run's final report
  /// covers the whole serve.
  std::uint64_t decision_rounds = 0;
  std::uint64_t skipped_rounds = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t peak_active_sessions = 0;
  double shed_mbps_total = 0.0;
  double shed_clients_total = 0.0;
  std::uint64_t shed_rounds = 0;
  /// SpanTracer logical clock at the checkpoint (may run ahead of the
  /// exchange's own saved clock when zero-active rounds were skipped).
  std::uint64_t logical_clock = 0;
  JournalState journal;
};

/// Serializes to the vdx::state snapshot envelope (magic, version, per-
/// section checksums — see snapshot.hpp).
[[nodiscard]] std::vector<std::uint8_t> encode(const TimelineCheckpoint& checkpoint);
[[nodiscard]] std::vector<std::uint8_t> encode(const DaemonCheckpoint& checkpoint);

/// Parses + validates a snapshot produced by encode(). Typed failures:
/// Errc::kCorruptSnapshot (truncation/mutation/checksum), kVersionMismatch
/// (format version), kInvalidArgument (valid envelope, but not a timeline
/// checkpoint or internally inconsistent).
[[nodiscard]] core::Result<TimelineCheckpoint> decode_timeline(
    std::span<const std::uint8_t> bytes);

/// Daemon counterpart of decode_timeline(); a timeline snapshot fails with
/// kCorruptSnapshot ("missing ... section"), never mis-decodes.
[[nodiscard]] core::Result<DaemonCheckpoint> decode_daemon(
    std::span<const std::uint8_t> bytes);

}  // namespace vdx::state
