#include "state/checkpoint.hpp"

#include <limits>
#include <string>
#include <utility>

#include "proto/wire.hpp"
#include "state/snapshot.hpp"

namespace vdx::state {

namespace {

// Section ids inside the snapshot envelope. Readers locate sections by id,
// so the on-disk order is free to change without a format bump.
constexpr std::uint32_t kSectionFingerprint = 1;
constexpr std::uint32_t kSectionProgress = 2;
constexpr std::uint32_t kSectionBrokerCursor = 3;
constexpr std::uint32_t kSectionBackgroundCursor = 4;
constexpr std::uint32_t kSectionChurn = 5;
constexpr std::uint32_t kSectionJournal = 6;
// Daemon-checkpoint sections (disjoint from the timeline's 2..5, so each
// decoder rejects the other kind with a missing-section error).
constexpr std::uint32_t kSectionFeedCursor = 7;
constexpr std::uint32_t kSectionDaemonProgress = 8;
constexpr std::uint32_t kSectionExchangeState = 9;

template <typename T>
core::Result<T> malformed(std::string message) {
  return core::Result<T>::failure(core::Errc::kCorruptSnapshot, std::move(message));
}

std::vector<std::uint8_t> encode_fingerprint(const RunFingerprint& fingerprint) {
  proto::ByteWriter out;
  out.write_u64(fingerprint.seed);
  out.write_u8(fingerprint.design);
  out.write_u64(fingerprint.broker_sessions);
  out.write_u64(fingerprint.background_sessions);
  out.write_f64(fingerprint.duration_s);
  out.write_f64(fingerprint.epoch_s);
  out.write_u64(fingerprint.config_hash);
  return out.take();
}

RunFingerprint decode_fingerprint(proto::ByteReader& in) {
  RunFingerprint fingerprint;
  fingerprint.seed = in.read_u64();
  fingerprint.design = in.read_u8();
  fingerprint.broker_sessions = in.read_u64();
  fingerprint.background_sessions = in.read_u64();
  fingerprint.duration_s = in.read_f64();
  fingerprint.epoch_s = in.read_f64();
  fingerprint.config_hash = in.read_u64();
  return fingerprint;
}

std::vector<std::uint8_t> encode_cursor(const StreamCursor& cursor) {
  proto::ByteWriter out;
  out.write_u64(cursor.consumed);
  out.write_u64(cursor.active.size());
  for (const ActiveSession& session : cursor.active) {
    out.write_u32(session.id);
    out.write_u32(session.city);
    out.write_f64(session.bitrate_mbps);
    out.write_f64(session.end_s);
  }
  return out.take();
}

core::Result<StreamCursor> decode_cursor(proto::ByteReader& in) {
  StreamCursor cursor;
  cursor.consumed = in.read_u64();
  const std::uint64_t count = in.read_u64();
  // Each active session occupies 24 bytes on the wire; bound before
  // reserving so a corrupted count cannot trigger a huge allocation.
  if (count * 24 > in.remaining()) {
    return malformed<StreamCursor>("stream cursor session count overruns the section");
  }
  cursor.active.reserve(static_cast<std::size_t>(count));
  std::uint64_t previous_id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ActiveSession session;
    session.id = in.read_u32();
    session.city = in.read_u32();
    session.bitrate_mbps = in.read_f64();
    session.end_s = in.read_f64();
    if (i > 0 && session.id <= previous_id) {
      return malformed<StreamCursor>("stream cursor sessions are not id-ascending");
    }
    previous_id = session.id;
    cursor.active.push_back(session);
  }
  if (cursor.active.size() > cursor.consumed) {
    return malformed<StreamCursor>("stream cursor has more active sessions than consumed");
  }
  return cursor;
}

std::vector<std::uint8_t> encode_progress(const TimelineCheckpoint& checkpoint) {
  proto::ByteWriter out;
  out.write_u64(checkpoint.next_epoch);
  out.write_u64(checkpoint.peak_active_sessions);
  out.write_u64(checkpoint.decision_rounds);
  out.write_u64(checkpoint.background_recomputes);
  out.write_u64(checkpoint.logical_clock);
  out.write_u8(checkpoint.background_stale ? 1 : 0);
  out.write_u64(checkpoint.shed_sessions);
  out.write_u64(checkpoint.background_loads.size());
  for (const double load : checkpoint.background_loads) out.write_f64(load);
  return out.take();
}

std::vector<std::uint8_t> encode_churn(const ChurnState& churn) {
  proto::ByteWriter out;
  out.write_f64(churn.sum);
  out.write_f64(churn.weight);
  out.write_u64(churn.previous.size());
  for (const auto& [id, cluster] : churn.previous) {
    out.write_u32(id);
    out.write_u32(cluster);
  }
  return out.take();
}

std::vector<std::uint8_t> encode_journal(const JournalState& journal) {
  proto::ByteWriter out;
  out.write_u64(journal.total);
  out.write_u32(journal.round);
  out.write_u64(journal.events.size());
  for (const obs::Event& event : journal.events) {
    out.write_u8(static_cast<std::uint8_t>(event.kind));
    out.write_u64(event.seq);
    out.write_u64(event.logical);
    out.write_u32(event.round);
    out.write_u32(event.subject);
    out.write_f64(event.value);
  }
  return out.take();
}

core::Result<JournalState> decode_journal(proto::ByteReader& in) {
  JournalState journal;
  journal.total = in.read_u64();
  journal.round = in.read_u32();
  const std::uint64_t count = in.read_u64();
  if (count * 33 > in.remaining()) {
    return malformed<JournalState>("journal event count overruns the section");
  }
  if (count > journal.total) {
    return malformed<JournalState>("journal retains more events than were recorded");
  }
  journal.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::Event event;
    const std::uint8_t kind = in.read_u8();
    if (kind > static_cast<std::uint8_t>(obs::EventKind::kCustom)) {
      return malformed<JournalState>("journal event has an unknown kind byte");
    }
    event.kind = static_cast<obs::EventKind>(kind);
    event.seq = in.read_u64();
    event.logical = in.read_u64();
    event.round = in.read_u32();
    event.subject = in.read_u32();
    event.value = in.read_f64();
    if (!journal.events.empty() && event.seq != journal.events.back().seq + 1) {
      return malformed<JournalState>("journal event seqs are not contiguous");
    }
    journal.events.push_back(event);
  }
  if (!journal.events.empty() && journal.events.back().seq + 1 != journal.total) {
    return malformed<JournalState>("journal tail seq disagrees with total_recorded");
  }
  return journal;
}

/// Locates a section and hands its payload to `reader`; a missing section is
/// a corruption-class error (the envelope validated, but a section an
/// intact timeline checkpoint always carries is gone).
core::Result<proto::ByteReader> section_reader(const SnapshotView& view,
                                               std::uint32_t id, const char* name) {
  const Section* section = view.find(id);
  if (section == nullptr) {
    return malformed<proto::ByteReader>(std::string{"snapshot is missing the "} +
                                        name + " section");
  }
  return proto::ByteReader{section->bytes};
}

}  // namespace

std::vector<std::uint8_t> encode(const TimelineCheckpoint& checkpoint) {
  SnapshotWriter writer;
  writer.add_section(kSectionFingerprint, encode_fingerprint(checkpoint.fingerprint));
  writer.add_section(kSectionProgress, encode_progress(checkpoint));
  writer.add_section(kSectionBrokerCursor, encode_cursor(checkpoint.broker));
  writer.add_section(kSectionBackgroundCursor, encode_cursor(checkpoint.background));
  writer.add_section(kSectionChurn, encode_churn(checkpoint.churn));
  writer.add_section(kSectionJournal, encode_journal(checkpoint.journal));
  return writer.finish();
}

std::vector<std::uint8_t> encode(const DaemonCheckpoint& checkpoint) {
  proto::ByteWriter progress;
  progress.write_u64(checkpoint.next_round);
  progress.write_u64(checkpoint.decision_rounds);
  progress.write_u64(checkpoint.skipped_rounds);
  progress.write_u64(checkpoint.queue_dropped);
  progress.write_u64(checkpoint.peak_active_sessions);
  progress.write_f64(checkpoint.shed_mbps_total);
  progress.write_f64(checkpoint.shed_clients_total);
  progress.write_u64(checkpoint.shed_rounds);
  progress.write_u64(checkpoint.logical_clock);

  SnapshotWriter writer;
  writer.add_section(kSectionFingerprint, encode_fingerprint(checkpoint.fingerprint));
  writer.add_section(kSectionDaemonProgress, progress.take());
  writer.add_section(kSectionFeedCursor, encode_cursor(checkpoint.feed));
  writer.add_section(kSectionExchangeState, checkpoint.exchange_state);
  writer.add_section(kSectionJournal, encode_journal(checkpoint.journal));
  return writer.finish();
}

core::Result<DaemonCheckpoint> decode_daemon(std::span<const std::uint8_t> bytes) {
  auto parsed = SnapshotView::parse(bytes);
  if (!parsed.ok()) return core::Result<DaemonCheckpoint>{parsed.error()};
  const SnapshotView view = std::move(parsed).value();

  DaemonCheckpoint checkpoint;
  try {
    auto fingerprint = section_reader(view, kSectionFingerprint, "fingerprint");
    if (!fingerprint.ok()) return core::Result<DaemonCheckpoint>{fingerprint.error()};
    checkpoint.fingerprint = decode_fingerprint(fingerprint.value());

    auto progress = section_reader(view, kSectionDaemonProgress, "daemon progress");
    if (!progress.ok()) return core::Result<DaemonCheckpoint>{progress.error()};
    {
      proto::ByteReader& in = progress.value();
      checkpoint.next_round = in.read_u64();
      checkpoint.decision_rounds = in.read_u64();
      checkpoint.skipped_rounds = in.read_u64();
      checkpoint.queue_dropped = in.read_u64();
      checkpoint.peak_active_sessions = in.read_u64();
      checkpoint.shed_mbps_total = in.read_f64();
      checkpoint.shed_clients_total = in.read_f64();
      checkpoint.shed_rounds = in.read_u64();
      checkpoint.logical_clock = in.read_u64();
    }
    if (checkpoint.decision_rounds + checkpoint.skipped_rounds >
        checkpoint.next_round) {
      return malformed<DaemonCheckpoint>(
          "daemon progress counts more rounds than have elapsed");
    }

    auto feed = section_reader(view, kSectionFeedCursor, "feed cursor");
    if (!feed.ok()) return core::Result<DaemonCheckpoint>{feed.error()};
    auto feed_cursor = decode_cursor(feed.value());
    if (!feed_cursor.ok()) return core::Result<DaemonCheckpoint>{feed_cursor.error()};
    checkpoint.feed = std::move(feed_cursor).value();

    // The exchange payload is opaque here; VdxExchange::restore_state()
    // validates it (it is itself a nested snapshot envelope).
    auto exchange = section_reader(view, kSectionExchangeState, "exchange state");
    if (!exchange.ok()) return core::Result<DaemonCheckpoint>{exchange.error()};
    {
      proto::ByteReader& in = exchange.value();
      checkpoint.exchange_state.resize(in.remaining());
      for (std::uint8_t& byte : checkpoint.exchange_state) byte = in.read_u8();
    }

    auto journal = section_reader(view, kSectionJournal, "journal");
    if (!journal.ok()) return core::Result<DaemonCheckpoint>{journal.error()};
    auto journal_state = decode_journal(journal.value());
    if (!journal_state.ok()) return core::Result<DaemonCheckpoint>{journal_state.error()};
    checkpoint.journal = std::move(journal_state).value();
  } catch (const proto::WireError&) {
    return malformed<DaemonCheckpoint>("checkpoint section truncated");
  }
  return checkpoint;
}

core::Result<TimelineCheckpoint> decode_timeline(std::span<const std::uint8_t> bytes) {
  auto parsed = SnapshotView::parse(bytes);
  if (!parsed.ok()) return core::Result<TimelineCheckpoint>{parsed.error()};
  const SnapshotView view = std::move(parsed).value();

  TimelineCheckpoint checkpoint;
  try {
    auto fingerprint = section_reader(view, kSectionFingerprint, "fingerprint");
    if (!fingerprint.ok()) return core::Result<TimelineCheckpoint>{fingerprint.error()};
    checkpoint.fingerprint = decode_fingerprint(fingerprint.value());

    auto progress = section_reader(view, kSectionProgress, "progress");
    if (!progress.ok()) return core::Result<TimelineCheckpoint>{progress.error()};
    {
      proto::ByteReader& in = progress.value();
      checkpoint.next_epoch = in.read_u64();
      checkpoint.peak_active_sessions = in.read_u64();
      checkpoint.decision_rounds = in.read_u64();
      checkpoint.background_recomputes = in.read_u64();
      checkpoint.logical_clock = in.read_u64();
      checkpoint.background_stale = in.read_u8() != 0;
      checkpoint.shed_sessions = in.read_u64();
      const std::uint64_t loads = in.read_u64();
      if (loads * 8 > in.remaining()) {
        return malformed<TimelineCheckpoint>(
            "background load count overruns the section");
      }
      checkpoint.background_loads.reserve(static_cast<std::size_t>(loads));
      for (std::uint64_t i = 0; i < loads; ++i) {
        checkpoint.background_loads.push_back(in.read_f64());
      }
    }

    auto broker = section_reader(view, kSectionBrokerCursor, "broker cursor");
    if (!broker.ok()) return core::Result<TimelineCheckpoint>{broker.error()};
    auto broker_cursor = decode_cursor(broker.value());
    if (!broker_cursor.ok()) return core::Result<TimelineCheckpoint>{broker_cursor.error()};
    checkpoint.broker = std::move(broker_cursor).value();

    auto background = section_reader(view, kSectionBackgroundCursor, "background cursor");
    if (!background.ok()) return core::Result<TimelineCheckpoint>{background.error()};
    auto background_cursor = decode_cursor(background.value());
    if (!background_cursor.ok()) {
      return core::Result<TimelineCheckpoint>{background_cursor.error()};
    }
    checkpoint.background = std::move(background_cursor).value();

    auto churn = section_reader(view, kSectionChurn, "churn");
    if (!churn.ok()) return core::Result<TimelineCheckpoint>{churn.error()};
    {
      proto::ByteReader& in = churn.value();
      checkpoint.churn.sum = in.read_f64();
      checkpoint.churn.weight = in.read_f64();
      const std::uint64_t count = in.read_u64();
      if (count * 8 > in.remaining()) {
        return malformed<TimelineCheckpoint>(
            "churn assignment count overruns the section");
      }
      checkpoint.churn.previous.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t id = in.read_u32();
        const std::uint32_t cluster = in.read_u32();
        checkpoint.churn.previous.emplace_back(id, cluster);
      }
    }

    auto journal = section_reader(view, kSectionJournal, "journal");
    if (!journal.ok()) return core::Result<TimelineCheckpoint>{journal.error()};
    auto journal_state = decode_journal(journal.value());
    if (!journal_state.ok()) return core::Result<TimelineCheckpoint>{journal_state.error()};
    checkpoint.journal = std::move(journal_state).value();
  } catch (const proto::WireError&) {
    return malformed<TimelineCheckpoint>("checkpoint section truncated");
  }
  return checkpoint;
}

}  // namespace vdx::state
