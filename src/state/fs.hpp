// FileSystem: a syscall-granular seam under the durability layer
// (DESIGN.md §15).
//
// CheckpointStore and write_file_atomic never touch the OS directly; they
// speak this narrow interface instead, so a fault-injecting implementation
// (state::FaultFs) can fail or crash the store at every individual syscall
// boundary — open, each write, fsync, close, rename, unlink — and prove the
// atomic write-tmp-rename protocol holds under torn writes, ENOSPC, EIO,
// silent fsync loss, and power cuts. Production code uses real_fs(), a
// process-wide passthrough to the host filesystem that adds an explicit
// fsync before rename (the classic fopen/fwrite path never made data
// durable before promoting it).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/result.hpp"

namespace vdx::state {

class FileSystem {
 public:
  /// Opaque id for an open write stream (valid until close()).
  using Handle = std::uint64_t;

  virtual ~FileSystem() = default;

  /// Creates/truncates `path` for writing. Errc::kUnavailable on failure.
  [[nodiscard]] virtual core::Result<Handle> open_write(
      const std::filesystem::path& path) = 0;
  /// Appends `bytes`; a short write is an error (partial data may persist).
  [[nodiscard]] virtual core::Status write(Handle handle,
                                           std::span<const std::uint8_t> bytes) = 0;
  /// Makes previously written bytes durable across a crash.
  [[nodiscard]] virtual core::Status fsync(Handle handle) = 0;
  /// Releases the handle. Data is NOT durable unless fsync succeeded.
  [[nodiscard]] virtual core::Status close(Handle handle) = 0;

  /// Atomic replace: `to` refers to the old or the new content, never a mix.
  [[nodiscard]] virtual core::Status rename(const std::filesystem::path& from,
                                            const std::filesystem::path& to) = 0;
  [[nodiscard]] virtual core::Status remove(const std::filesystem::path& path) = 0;
  [[nodiscard]] virtual core::Status create_directories(
      const std::filesystem::path& dir) = 0;
  /// Regular files directly under `dir` (no order guarantee).
  [[nodiscard]] virtual core::Result<std::vector<std::filesystem::path>> list_dir(
      const std::filesystem::path& dir) = 0;
  [[nodiscard]] virtual core::Result<std::vector<std::uint8_t>> read_file(
      const std::filesystem::path& path) = 0;
};

/// Process-wide passthrough to the host filesystem.
[[nodiscard]] FileSystem& real_fs();

}  // namespace vdx::state
