// Versioned, checksummed snapshot container for crash-consistent
// checkpointing (DESIGN.md §10).
//
// A snapshot is a flat sequence of typed byte sections wrapped in a
// self-validating envelope:
//
//   [magic u64]["VDXSNAP1" little-endian]
//   [format version u32]
//   [section count u32]
//   section*:  [id u32][length u64][payload bytes][fnv1a64(id‖length‖payload)]
//   [file checksum u64 = fnv1a64 of every preceding byte]
//
// Every integer is little-endian; doubles travel as IEEE-754 bit patterns
// (the proto wire convention). Parsing never throws across the trust
// boundary: a truncated, bit-flipped, wrong-magic, or wrong-version file is
// rejected with a typed core::Result error (Errc::kCorruptSnapshot /
// kVersionMismatch) naming the first violated invariant. Trailing bytes
// after the file checksum are an error too — a duplicated or concatenated
// snapshot must not silently parse as its first copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/result.hpp"

namespace vdx::state {

/// "VDXSNAP1" read as a little-endian u64.
inline constexpr std::uint64_t kSnapshotMagic = 0x3150414E53584456ULL;
inline constexpr std::uint32_t kFormatVersion = 1;

/// FNV-1a 64-bit over `bytes`, continuing from `basis` (chainable).
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::uint64_t basis = kFnvBasis) noexcept;

struct Section {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> bytes;
};

/// Accumulates sections and serializes the envelope.
class SnapshotWriter {
 public:
  void add_section(std::uint32_t id, std::vector<std::uint8_t> bytes);
  /// Serializes magic + version + sections + checksums. The writer can be
  /// reused after finish() (sections are kept).
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

 private:
  std::vector<Section> sections_;
};

/// A parsed, fully validated snapshot. Construction via parse() is the only
/// path, so holding a SnapshotView implies every checksum verified.
class SnapshotView {
 public:
  [[nodiscard]] static core::Result<SnapshotView> parse(
      std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::vector<Section>& sections() const noexcept {
    return sections_;
  }
  /// First section with this id, or nullptr.
  [[nodiscard]] const Section* find(std::uint32_t id) const noexcept;

 private:
  std::vector<Section> sections_;
};

class FileSystem;

/// Atomically writes `bytes` to `path` through `fs`: the payload lands in
/// `path` + ".tmp" first, is fsynced, and is renamed into place, so a crash
/// at any syscall boundary can never leave a half-written file under the
/// final name (the stale .tmp is ignored by the store and overwritten by the
/// next attempt). The fsync-before-rename is what makes the renamed file's
/// content durable, not just its name — state::FaultFs proves this ordering
/// by crash-sweeping every boundary.
[[nodiscard]] core::Status write_file_atomic(FileSystem& fs,
                                             const std::filesystem::path& path,
                                             std::span<const std::uint8_t> bytes);
/// Convenience overload on the host filesystem (real_fs()).
[[nodiscard]] core::Status write_file_atomic(const std::filesystem::path& path,
                                             std::span<const std::uint8_t> bytes);

/// Reads a whole file; Errc::kUnavailable when it cannot be opened.
[[nodiscard]] core::Result<std::vector<std::uint8_t>> read_file(
    const std::filesystem::path& path);

}  // namespace vdx::state
