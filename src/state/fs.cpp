#include "state/fs.hpp"

#include <cstdio>
#include <map>
#include <mutex>
#include <system_error>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace vdx::state {

namespace {

core::Status unavailable(std::string message) {
  return core::Status::failure(core::Errc::kUnavailable, std::move(message));
}

/// Host-filesystem passthrough. Handles map to open stdio streams; the map
/// is mutex-guarded so concurrent checkpointers (daemon + tests) can share
/// the singleton.
class RealFs final : public FileSystem {
 public:
  core::Result<Handle> open_write(const std::filesystem::path& path) override {
    std::FILE* file = std::fopen(path.string().c_str(), "wb");
    if (file == nullptr) {
      return core::Result<Handle>::failure(
          core::Errc::kUnavailable, "cannot open " + path.string() + " for writing");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const Handle handle = next_handle_++;
    open_[handle] = file;
    return handle;
  }

  core::Status write(Handle handle, std::span<const std::uint8_t> bytes) override {
    std::FILE* file = stream_of(handle);
    if (file == nullptr) return unavailable("write on closed handle");
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
    if (written != bytes.size()) return unavailable("short write");
    return core::ok_status();
  }

  core::Status fsync(Handle handle) override {
    std::FILE* file = stream_of(handle);
    if (file == nullptr) return unavailable("fsync on closed handle");
    if (std::fflush(file) != 0) return unavailable("fflush failed");
#ifndef _WIN32
    if (::fsync(fileno(file)) != 0) return unavailable("fsync failed");
#endif
    return core::ok_status();
  }

  core::Status close(Handle handle) override {
    std::FILE* file = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = open_.find(handle);
      if (it == open_.end()) return unavailable("close on unknown handle");
      file = it->second;
      open_.erase(it);
    }
    if (std::fclose(file) != 0) return unavailable("fclose failed");
    return core::ok_status();
  }

  core::Status rename(const std::filesystem::path& from,
                      const std::filesystem::path& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
      return unavailable("rename " + from.string() + " -> " + to.string() + ": " +
                         ec.message());
    }
    return core::ok_status();
  }

  core::Status remove(const std::filesystem::path& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) return unavailable("remove " + path.string() + ": " + ec.message());
    return core::ok_status();
  }

  core::Status create_directories(const std::filesystem::path& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return unavailable("cannot create " + dir.string() + ": " + ec.message());
    }
    return core::ok_status();
  }

  core::Result<std::vector<std::filesystem::path>> list_dir(
      const std::filesystem::path& dir) override {
    std::vector<std::filesystem::path> out;
    std::error_code ec;
    for (std::filesystem::directory_iterator it{dir, ec}, end; !ec && it != end;
         it.increment(ec)) {
      out.push_back(it->path());
    }
    if (ec) {
      return core::Result<std::vector<std::filesystem::path>>::failure(
          core::Errc::kUnavailable, "cannot list " + dir.string() + ": " + ec.message());
    }
    return out;
  }

  core::Result<std::vector<std::uint8_t>> read_file(
      const std::filesystem::path& path) override {
    std::FILE* in = std::fopen(path.string().c_str(), "rb");
    if (in == nullptr) {
      return core::Result<std::vector<std::uint8_t>>::failure(
          core::Errc::kUnavailable, "cannot open " + path.string());
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
      bytes.insert(bytes.end(), buffer, buffer + got);
    }
    const bool failed = std::ferror(in) != 0;
    std::fclose(in);
    if (failed) {
      return core::Result<std::vector<std::uint8_t>>::failure(
          core::Errc::kUnavailable, "read error on " + path.string());
    }
    return bytes;
  }

 private:
  std::FILE* stream_of(Handle handle) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = open_.find(handle);
    return it == open_.end() ? nullptr : it->second;
  }

  std::mutex mutex_;
  std::map<Handle, std::FILE*> open_;
  Handle next_handle_ = 1;
};

}  // namespace

FileSystem& real_fs() {
  static RealFs fs;
  return fs;
}

}  // namespace vdx::state
