// FaultFs: a deterministic, seeded, in-memory FileSystem that injects disk
// faults and simulates power cuts at every syscall boundary (DESIGN.md §15).
//
// Crash model. Each file carries two byte images: `visible` (what reads and
// directory listings see while the process lives) and `durable` (what
// survives a crash). write() extends only the visible image; fsync() commits
// visible -> durable — unless a seeded fsync-loss fault fires, in which case
// fsync reports success but commits nothing (lying disk). rename() is atomic
// for visibility and carries each image as-is, so promoting a never-fsynced
// tmp file produces a name whose content evaporates on crash — exactly the
// torn-snapshot case recovery must survive. unlink and mkdir are modelled as
// immediately durable (the store's invariants do not depend on their
// persistence ordering).
//
// Fault injection. short_write / ENOSPC / EIO / fsync-loss fire per-op from
// one seeded RNG stream, optionally gated to a proto::FaultWindow on an
// externally advanced logical clock, so any fault schedule replays exactly.
// set_failing(true) is a deterministic master switch (full disk outage) for
// drills. crash_at_op(k) arms a power cut: the k-th subsequent operation
// fails without effect and every later operation fails too, until reboot()
// reverts all files to their durable image — sweeping k across a checkpoint
// write proves no boundary can tear or silently lose an acknowledged
// snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/rng.hpp"
#include "obs/observe.hpp"
#include "proto/fault.hpp"
#include "state/fs.hpp"

namespace vdx::state {

/// Per-op fault probabilities in [0, 1], armed inside `window` (an empty
/// window arms them always).
struct FsFaultProfile {
  /// P(write persists only a prefix and reports an error).
  double short_write_rate = 0.0;
  /// P(open/write/mkdir fails with a no-space error).
  double enospc_rate = 0.0;
  /// P(write/fsync/rename fails with an I/O error).
  double eio_rate = 0.0;
  /// P(fsync reports success without making anything durable).
  double fsync_loss_rate = 0.0;
  std::uint64_t seed = 0xD15CFA17ULL;
  /// Logical-clock window during which the rates above are armed.
  proto::FaultWindow window{};
};

class FaultFs final : public FileSystem {
 public:
  explicit FaultFs(FsFaultProfile profile = {}, obs::Observer obs = {});

  core::Result<Handle> open_write(const std::filesystem::path& path) override;
  core::Status write(Handle handle, std::span<const std::uint8_t> bytes) override;
  core::Status fsync(Handle handle) override;
  core::Status close(Handle handle) override;
  core::Status rename(const std::filesystem::path& from,
                      const std::filesystem::path& to) override;
  core::Status remove(const std::filesystem::path& path) override;
  core::Status create_directories(const std::filesystem::path& dir) override;
  core::Result<std::vector<std::filesystem::path>> list_dir(
      const std::filesystem::path& dir) override;
  core::Result<std::vector<std::uint8_t>> read_file(
      const std::filesystem::path& path) override;

  /// Advances the logical clock that gates profile.window.
  void advance_to(std::uint64_t tick) noexcept { now_ = tick; }
  /// Deterministic full outage: every mutating op fails while set.
  void set_failing(bool failing) noexcept { failing_ = failing; }
  [[nodiscard]] bool failing() const noexcept { return failing_; }

  /// Arms a power cut at the k-th subsequent operation (1 = the very next).
  void crash_at_op(std::uint64_t k) noexcept {
    crash_at_ = k == 0 ? 0 : op_count_ + k;
  }
  /// Cancels a pending crash_at_op.
  void disarm_crash() noexcept { crash_at_ = 0; }
  /// True once a simulated power cut happened; all ops fail until reboot().
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  /// Post-crash restart: every file reverts to its durable image, open
  /// handles are gone, and the fs serves again.
  void reboot();

  /// Operations attempted so far (including the one that crashed).
  [[nodiscard]] std::uint64_t op_count() const noexcept { return op_count_; }

  /// Test introspection: durable image of `path`, or empty-absent.
  [[nodiscard]] bool durable_exists(const std::filesystem::path& path) const;
  [[nodiscard]] bool visible_exists(const std::filesystem::path& path) const;

 private:
  struct FileNode {
    std::vector<std::uint8_t> visible;
    std::vector<std::uint8_t> durable;
    bool visible_exists = false;
    bool durable_exists = false;
  };
  struct OpenFile {
    std::string path;
  };

  /// Charges one op: returns a non-ok status when the fs is crashed, the
  /// master outage switch is on, or the armed power cut fires on this op.
  core::Status charge_op(const char* what);
  [[nodiscard]] bool armed() const noexcept {
    return profile_.window.empty() || profile_.window.active(now_);
  }
  [[nodiscard]] bool roll(double rate);

  FsFaultProfile profile_;
  core::Rng rng_;
  std::map<std::string, FileNode> files_;
  std::map<std::string, bool> dirs_;
  std::map<Handle, OpenFile> open_;
  Handle next_handle_ = 1;
  std::uint64_t now_ = 0;
  std::uint64_t op_count_ = 0;
  std::uint64_t crash_at_ = 0;
  bool crashed_ = false;
  bool failing_ = false;

  obs::Counter ops_;
  obs::Counter short_writes_;
  obs::Counter enospc_;
  obs::Counter eio_;
  obs::Counter fsync_lost_;
  obs::Counter crashes_;
};

}  // namespace vdx::state
