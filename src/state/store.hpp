// CheckpointStore: on-disk snapshot directory with atomic writes, bounded
// retention, and corruption-tolerant recovery (DESIGN.md §10).
//
// Snapshots land as `checkpoint-<epoch, 8 digits>.vdxsnap` via a
// write-tmp-then-rename so a crash mid-checkpoint can never shadow the
// previous good snapshot with a torn file. The store keeps the newest
// `keep` snapshots and prunes older ones after each successful write.
// Recovery walks newest → oldest: every unreadable or invalid file is
// skipped (counted in state.snapshots_rejected, reasons reported to the
// caller) and the next-oldest candidate is tried, so one corrupted snapshot
// degrades recovery by one checkpoint interval instead of killing it.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "obs/observe.hpp"
#include "state/fs.hpp"

namespace vdx::state {

class CheckpointStore {
 public:
  /// `keep` newest snapshots are retained (minimum 1). The observer wires
  /// state.* metrics; a default Observer disables them. `fs` routes every
  /// disk touch (write, list, read, prune) through the FileSystem seam —
  /// nullptr means the host filesystem (real_fs()); tests pass a
  /// state::FaultFs to crash or fail the store at any syscall boundary.
  explicit CheckpointStore(std::filesystem::path dir, std::size_t keep = 3,
                           obs::Observer obs = {}, FileSystem* fs = nullptr);

  /// Validates `bytes` against the caller's domain decoder before accepting
  /// a snapshot during recovery. Return ok() to accept.
  using Validator = std::function<core::Status(std::span<const std::uint8_t>)>;

  /// Atomically writes the snapshot taken after `epoch`, then prunes beyond
  /// the retention bound. Creates the directory on first use.
  [[nodiscard]] core::Status write(std::uint64_t epoch,
                                   std::span<const std::uint8_t> bytes);

  /// Snapshot files present on disk, newest epoch first. Files that do not
  /// match the checkpoint naming scheme (including stale .tmp files from a
  /// crashed write) are ignored.
  [[nodiscard]] std::vector<std::filesystem::path> list() const;

  struct Loaded {
    std::filesystem::path path;
    std::uint64_t epoch = 0;
    std::vector<std::uint8_t> bytes;
    /// One "<file>: <reason>" line per newer snapshot that was rejected
    /// before this one was accepted.
    std::vector<std::string> rejected;
  };

  /// Loads the newest snapshot that passes both the envelope parse and the
  /// caller's validator, falling back across invalid files. Fails with the
  /// last rejection's code when no candidate survives, or kUnavailable when
  /// the directory holds no snapshots at all.
  [[nodiscard]] core::Result<Loaded> load_latest(const Validator& validate = {}) const;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Retention prunes that failed to unlink (non-fatal: the newly written
  /// snapshot is durable either way; the next successful write re-prunes).
  [[nodiscard]] std::uint64_t prune_failures() const noexcept {
    return prune_failures_n_;
  }

 private:
  std::filesystem::path dir_;
  std::size_t keep_;
  FileSystem* fs_;
  std::uint64_t prune_failures_n_ = 0;
  obs::Counter written_;
  obs::Counter written_bytes_;
  obs::Counter rejected_;
  obs::Counter prune_failures_;
};

}  // namespace vdx::state
