#include "state/store.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string_view>
#include <utility>

#include "state/snapshot.hpp"

namespace vdx::state {

namespace {

constexpr std::string_view kPrefix = "checkpoint-";
constexpr std::string_view kSuffix = ".vdxsnap";

std::string file_name(std::uint64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof name, "checkpoint-%08llu.vdxsnap",
                static_cast<unsigned long long>(epoch));
  return name;
}

/// Epoch encoded in a snapshot file name, or nullopt for foreign files.
std::optional<std::uint64_t> epoch_of(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (!name.starts_with(kPrefix) || !name.ends_with(kSuffix)) return std::nullopt;
  std::uint64_t epoch = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return epoch;
}

}  // namespace

CheckpointStore::CheckpointStore(std::filesystem::path dir, std::size_t keep,
                                 obs::Observer obs, FileSystem* fs)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(keep, 1)),
      fs_(fs != nullptr ? fs : &real_fs()) {
  if (obs.metrics != nullptr) {
    written_ = obs.metrics->counter("state.snapshots_written");
    written_bytes_ = obs.metrics->counter("state.snapshot_bytes");
    rejected_ = obs.metrics->counter("state.snapshots_rejected");
    prune_failures_ = obs.metrics->counter("state.prune_failures");
  }
}

core::Status CheckpointStore::write(std::uint64_t epoch,
                                    std::span<const std::uint8_t> bytes) {
  if (auto made = fs_->create_directories(dir_); !made.ok()) return made;
  auto status = write_file_atomic(*fs_, dir_ / file_name(epoch), bytes);
  if (!status.ok()) return status;
  written_.add(1.0);
  written_bytes_.add(static_cast<double>(bytes.size()));

  // Retention: drop everything older than the newest `keep_` snapshots. A
  // failed unlink is non-fatal — the snapshot we just wrote is durable, and
  // recovery reads newest-first, so a surviving stale file costs disk, not
  // correctness. Failures are counted so a sick disk still shows up.
  const std::vector<std::filesystem::path> snapshots = list();
  for (std::size_t i = keep_; i < snapshots.size(); ++i) {
    if (auto removed = fs_->remove(snapshots[i]); !removed.ok()) {
      ++prune_failures_n_;
      prune_failures_.add(1.0);
    }
  }
  return core::ok_status();
}

std::vector<std::filesystem::path> CheckpointStore::list() const {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  auto entries = fs_->list_dir(dir_);
  if (entries.ok()) {
    for (const std::filesystem::path& path : entries.value()) {
      if (const auto epoch = epoch_of(path)) {
        found.emplace_back(*epoch, path);
      }
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::filesystem::path> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) paths.push_back(std::move(path));
  return paths;
}

core::Result<CheckpointStore::Loaded> CheckpointStore::load_latest(
    const Validator& validate) const {
  const std::vector<std::filesystem::path> candidates = list();
  if (candidates.empty()) {
    return core::Result<Loaded>::failure(
        core::Errc::kUnavailable, "no snapshots in " + dir_.string());
  }

  Loaded loaded;
  core::Error last{core::Errc::kUnavailable, "no snapshots in " + dir_.string()};
  for (const std::filesystem::path& path : candidates) {
    auto bytes = fs_->read_file(path);
    if (!bytes.ok()) {
      rejected_.add(1.0);
      loaded.rejected.push_back(path.filename().string() + ": " +
                                bytes.error().message);
      last = bytes.error();
      continue;
    }
    core::Error reason;
    if (auto parsed = SnapshotView::parse(bytes.value()); !parsed.ok()) {
      reason = parsed.error();
    } else if (validate) {
      if (auto verdict = validate(bytes.value()); !verdict.ok()) {
        reason = verdict.error();
      } else {
        loaded.path = path;
        loaded.epoch = epoch_of(path).value_or(0);
        loaded.bytes = std::move(bytes).value();
        return loaded;
      }
    } else {
      loaded.path = path;
      loaded.epoch = epoch_of(path).value_or(0);
      loaded.bytes = std::move(bytes).value();
      return loaded;
    }
    rejected_.add(1.0);
    loaded.rejected.push_back(path.filename().string() + ": " + reason.message);
    last = std::move(reason);
  }
  return core::Result<Loaded>::failure(
      last.code, "no valid snapshot in " + dir_.string() + " (newest rejection: " +
                     last.message + ")");
}

}  // namespace vdx::state
