#include "state/snapshot.hpp"

#include <string>
#include <utility>

#include "proto/wire.hpp"
#include "state/fs.hpp"

namespace vdx::state {

namespace {

using Bytes = std::vector<std::uint8_t>;

template <typename T>
core::Result<T> corrupt(std::string message) {
  return core::Result<T>::failure(core::Errc::kCorruptSnapshot, std::move(message));
}

/// Checksum basis of one section: id and length participate so a bit flip in
/// the framing (not just the payload) is always caught.
std::uint64_t section_checksum(std::uint32_t id, const Bytes& payload) noexcept {
  proto::ByteWriter frame;
  frame.write_u32(id);
  frame.write_u64(payload.size());
  std::uint64_t sum = fnv1a(frame.data());
  return fnv1a(payload, sum);
}

}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t basis) noexcept {
  std::uint64_t hash = basis;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void SnapshotWriter::add_section(std::uint32_t id, std::vector<std::uint8_t> bytes) {
  sections_.push_back(Section{id, std::move(bytes)});
}

std::vector<std::uint8_t> SnapshotWriter::finish() const {
  proto::ByteWriter out;
  out.write_u64(kSnapshotMagic);
  out.write_u32(kFormatVersion);
  out.write_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    out.write_u32(section.id);
    out.write_u64(section.bytes.size());
    out.write_bytes(section.bytes);
    out.write_u64(section_checksum(section.id, section.bytes));
  }
  out.write_u64(fnv1a(out.data()));
  return out.take();
}

core::Result<SnapshotView> SnapshotView::parse(std::span<const std::uint8_t> bytes) {
  // The file checksum covers everything before its own 8 bytes; verify it
  // first so random mutation anywhere in the envelope is one uniform error.
  if (bytes.size() < sizeof(std::uint64_t) * 2 + sizeof(std::uint32_t) * 2) {
    return corrupt<SnapshotView>("snapshot truncated: shorter than the envelope");
  }
  try {
    proto::ByteReader trailer{bytes.subspan(bytes.size() - sizeof(std::uint64_t))};
    const std::uint64_t expected_file_sum = trailer.read_u64();
    const auto body = bytes.first(bytes.size() - sizeof(std::uint64_t));

    proto::ByteReader in{body};
    const std::uint64_t magic = in.read_u64();
    if (magic != kSnapshotMagic) {
      return corrupt<SnapshotView>("snapshot magic mismatch (not a VDX snapshot)");
    }
    const std::uint32_t version = in.read_u32();
    if (version != kFormatVersion) {
      return core::Result<SnapshotView>::failure(
          core::Errc::kVersionMismatch,
          "snapshot format version " + std::to_string(version) +
              " (this build reads version " + std::to_string(kFormatVersion) + ")");
    }
    if (fnv1a(body) != expected_file_sum) {
      return corrupt<SnapshotView>("snapshot file checksum mismatch");
    }

    SnapshotView view;
    const std::uint32_t count = in.read_u32();
    view.sections_.reserve(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      Section section;
      section.id = in.read_u32();
      const std::uint64_t length = in.read_u64();
      if (length > in.remaining()) {
        return corrupt<SnapshotView>("section " + std::to_string(s) +
                                     " length overruns the file");
      }
      const auto payload = in.read_bytes(static_cast<std::size_t>(length));
      section.bytes.assign(payload.begin(), payload.end());
      const std::uint64_t expected = in.read_u64();
      if (section_checksum(section.id, section.bytes) != expected) {
        return corrupt<SnapshotView>("section " + std::to_string(s) +
                                     " (id " + std::to_string(section.id) +
                                     ") checksum mismatch");
      }
      view.sections_.push_back(std::move(section));
    }
    if (!in.exhausted()) {
      return corrupt<SnapshotView>("trailing bytes after the last section");
    }
    return view;
  } catch (const proto::WireError&) {
    return corrupt<SnapshotView>("snapshot truncated mid-section");
  }
}

const Section* SnapshotView::find(std::uint32_t id) const noexcept {
  for (const Section& section : sections_) {
    if (section.id == id) return &section;
  }
  return nullptr;
}

core::Status write_file_atomic(FileSystem& fs, const std::filesystem::path& path,
                               std::span<const std::uint8_t> bytes) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  auto opened = fs.open_write(tmp);
  if (!opened.ok()) {
    return core::Status::failure(opened.error().code, opened.error().message);
  }
  const FileSystem::Handle handle = opened.value();
  core::Status step = fs.write(handle, bytes);
  if (step.ok()) step = fs.fsync(handle);
  {
    // Close regardless of earlier failures; a close error taints success.
    auto closed = fs.close(handle);
    if (step.ok()) step = std::move(closed);
  }
  if (step.ok()) step = fs.rename(tmp, path);
  if (!step.ok()) {
    // Best-effort tmp cleanup; the store ignores stale .tmp files anyway.
    (void)fs.remove(tmp);
    return step;
  }
  return core::ok_status();
}

core::Status write_file_atomic(const std::filesystem::path& path,
                               std::span<const std::uint8_t> bytes) {
  return write_file_atomic(real_fs(), path, bytes);
}

core::Result<std::vector<std::uint8_t>> read_file(const std::filesystem::path& path) {
  return real_fs().read_file(path);
}

}  // namespace vdx::state
