// Serving wire codec: the JSONL formats vdxd speaks (DESIGN.md §12).
//
// Two line formats, both flat fixed-schema JSON objects so the daemon can
// parse with a targeted scanner instead of a JSON dependency (same policy
// as RunJournal):
//   * arrival lines — one session-arrival event per line, produced by
//     vdxload (or any compatible client) and consumed by the daemon's
//     stdin feed;
//   * decision lines — one Decision-Protocol round outcome per line,
//     written by the daemon. Every field is deterministic under --sim-clock
//     (%.17g doubles, logical latency), so two same-seed serving runs emit
//     byte-identical decision logs.
#pragma once

#include <ostream>
#include <string_view>

#include "core/result.hpp"
#include "trace/session.hpp"

namespace vdx::serve {

/// One decision line: the round outcome the daemon publishes per answered
/// Decision-Protocol round.
struct DecisionLine {
  std::uint64_t round = 0;
  std::uint64_t active_sessions = 0;
  double demand_mbps = 0.0;
  double admitted_mbps = 0.0;
  double shed_mbps = 0.0;
  double shed_clients = 0.0;
  double mean_score = 0.0;
  double mean_cost = 0.0;
  /// Logical-clock ticks the round consumed (deterministic; wall latency
  /// lives in the serve.* histograms, never on this line).
  std::uint64_t logical_ticks = 0;

  friend bool operator==(const DecisionLine&, const DecisionLine&) = default;
};

/// Parses one arrival line. Required fields: id, arrival_s, bitrate_mbps,
/// duration_s, city; optional: video, as (default 0). Malformed lines fail
/// with Errc::kCorruptFrame and a one-line reason — the daemon counts and
/// skips them rather than dying on hostile stdin.
[[nodiscard]] core::Result<trace::Session> parse_arrival(std::string_view line);

/// Writes the arrival line parse_arrival() reads back (round-trip exact for
/// the fields the serving path consumes).
void write_arrival(std::ostream& out, const trace::Session& session);

void write_decision(std::ostream& out, const DecisionLine& line);
[[nodiscard]] core::Result<DecisionLine> parse_decision(std::string_view line);

}  // namespace vdx::serve
