#include "serve/export_guard.hpp"

#include <cstdint>
#include <functional>
#include <sstream>
#include <vector>

#include "state/snapshot.hpp"

namespace vdx::serve {

void ExportGuard::flush() noexcept {
  if (flushed_) return;
  flushed_ = true;
  const auto write_one = [this](const std::filesystem::path& path,
                                const std::function<void(std::ostream&)>& emit) {
    if (path.empty()) return;
    try {
      std::ostringstream out;
      emit(out);
      const std::string text = out.str();
      const std::vector<std::uint8_t> payload(text.begin(), text.end());
      const core::Status status = state::write_file_atomic(path, payload);
      if (!status.ok()) {
        errors_.push_back(path.string() + ": " + status.error().message);
      }
    } catch (const std::exception& error) {
      errors_.push_back(path.string() + ": " + error.what());
    } catch (...) {
      errors_.push_back(path.string() + ": unknown error");
    }
  };
  if (obs_.metrics != nullptr) {
    write_one(paths_.metrics_jsonl,
              [this](std::ostream& out) { obs_.metrics->write_jsonl(out); });
  }
  if (obs_.journal != nullptr) {
    write_one(paths_.journal_jsonl,
              [this](std::ostream& out) { obs_.journal->write_jsonl(out); });
  }
  if (obs_.tracer != nullptr) {
    write_one(paths_.trace_jsonl,
              [this](std::ostream& out) { obs_.tracer->write_jsonl(out); });
  }
}

}  // namespace vdx::serve
