#include "serve/health.hpp"

namespace vdx::serve {

const char* to_string(Lifecycle lifecycle) noexcept {
  switch (lifecycle) {
    case Lifecycle::kStarting: return "starting";
    case Lifecycle::kServing: return "serving";
    case Lifecycle::kDraining: return "draining";
    case Lifecycle::kStopped: return "stopped";
  }
  return "unknown";
}

std::string HealthState::healthz_body() const {
  std::string body = resilience::to_string(health());
  body += " lifecycle=";
  body += to_string(lifecycle());
  body += " brownout_step=";
  body += std::to_string(brownout_step());
  body += " open_breakers=";
  body += std::to_string(open_breakers());
  body += '\n';
  return body;
}

}  // namespace vdx::serve
