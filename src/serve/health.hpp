// Daemon health snapshot for /healthz (DESIGN.md §15).
//
// The serve loop writes, the Httpd accept thread reads — every field is a
// relaxed atomic, so the snapshot is lock-free and never blocks either side.
// The rendered body is one line, machine-parseable:
//
//   ok lifecycle=serving brownout_step=0 open_breakers=0
//   degraded lifecycle=serving brownout_step=2 open_breakers=1
//
// The leading token is the overall verdict (ok|degraded|critical) derived
// from the brownout ladder; lifecycle tracks the daemon itself
// (starting|serving|draining|stopped).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "resilience/brownout.hpp"

namespace vdx::serve {

enum class Lifecycle : std::uint8_t { kStarting, kServing, kDraining, kStopped };

[[nodiscard]] const char* to_string(Lifecycle lifecycle) noexcept;

class HealthState {
 public:
  void set_lifecycle(Lifecycle lifecycle) noexcept {
    lifecycle_.store(static_cast<std::uint8_t>(lifecycle),
                     std::memory_order_relaxed);
  }
  void set_brownout(resilience::Health health, int step) noexcept {
    health_.store(static_cast<std::uint8_t>(health), std::memory_order_relaxed);
    step_.store(step, std::memory_order_relaxed);
  }
  void set_open_breakers(std::size_t n) noexcept {
    open_breakers_.store(n, std::memory_order_relaxed);
  }

  [[nodiscard]] Lifecycle lifecycle() const noexcept {
    return static_cast<Lifecycle>(lifecycle_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] resilience::Health health() const noexcept {
    return static_cast<resilience::Health>(
        health_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] int brownout_step() const noexcept {
    return step_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t open_breakers() const noexcept {
    return open_breakers_.load(std::memory_order_relaxed);
  }

  /// Renders the one-line /healthz body (with trailing newline).
  [[nodiscard]] std::string healthz_body() const;

 private:
  std::atomic<std::uint8_t> lifecycle_{
      static_cast<std::uint8_t>(Lifecycle::kStarting)};
  std::atomic<std::uint8_t> health_{
      static_cast<std::uint8_t>(resilience::Health::kOk)};
  std::atomic<int> step_{0};
  std::atomic<std::size_t> open_breakers_{0};
};

}  // namespace vdx::serve
