// ExportGuard: RAII flush of observability exports on *every* daemon exit
// path (DESIGN.md §12).
//
// The graceful-shutdown gap this closes: before the guard, metrics/journal/
// trace JSONL was written at the end of a successful run only — an
// exception (or a drill-injected crash) between rounds lost the entire
// export. The guard flushes in its destructor, so stack unwinding writes
// the journal tail as well-formed JSONL no matter where the daemon died.
// Writes are atomic (write-tmp-rename) and the flush is idempotent, so a
// normal exit path may flush() eagerly to report errors and the destructor
// becomes a no-op.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "obs/observe.hpp"

namespace vdx::serve {

class ExportGuard {
 public:
  struct Paths {
    std::filesystem::path metrics_jsonl;  // empty: skip
    std::filesystem::path journal_jsonl;  // empty: skip
    std::filesystem::path trace_jsonl;    // empty: skip
  };

  /// The observer's pointers are non-owning; null sinks are skipped even
  /// when a path is set.
  ExportGuard(Paths paths, obs::Observer obs) noexcept
      : paths_(std::move(paths)), obs_(obs) {}
  ~ExportGuard() { flush(); }
  ExportGuard(const ExportGuard&) = delete;
  ExportGuard& operator=(const ExportGuard&) = delete;

  /// Writes every configured export atomically. Idempotent: the second and
  /// later calls are no-ops. Never throws (the destructor runs during
  /// unwinding); failures are collected into errors() instead.
  void flush() noexcept;
  [[nodiscard]] bool flushed() const noexcept { return flushed_; }
  /// One "<path>: <reason>" line per failed write in the flush that ran.
  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }

 private:
  Paths paths_;
  obs::Observer obs_;
  bool flushed_ = false;
  std::vector<std::string> errors_;
};

}  // namespace vdx::serve
