// Minimal blocking HTTP/1.0 responder for the daemon's /metrics endpoint
// (DESIGN.md §12).
//
// Scope is deliberately tiny: one accept thread, one request per
// connection, GET only, Connection: close. The daemon's control loop never
// blocks on it — the responder snapshots the (thread-safe) MetricsRegistry
// on each request. This is a scrape endpoint, not a web server: no
// keep-alive, no TLS, no request body handling.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <thread>

#include "obs/metrics.hpp"
#include "serve/health.hpp"

namespace vdx::serve {

/// Writes the registry in a Prometheus-style plaintext exposition: metric
/// names with dots mapped to underscores, one `name value` line per
/// counter/gauge, and `_count`/`_sum`/`{quantile="..."}` lines per
/// histogram. Deterministic (rows() is sorted).
void write_metrics_text(const obs::MetricsRegistry& registry, std::ostream& out);

class Httpd {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral, read the outcome from port())
  /// and starts the accept thread. Throws std::runtime_error when the
  /// socket cannot be bound. With no HealthState attached, /healthz answers
  /// a bare "ok\n"; with one, it renders the live daemon snapshot.
  Httpd(const obs::MetricsRegistry& registry, std::uint16_t port,
        const HealthState* health = nullptr);
  ~Httpd();
  Httpd(const Httpd&) = delete;
  Httpd& operator=(const Httpd&) = delete;

  /// The bound port (the ephemeral one when constructed with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Stops accepting and joins the thread; idempotent.
  void stop();

 private:
  void serve_loop();

  const obs::MetricsRegistry* registry_;
  const HealthState* health_ = nullptr;
  int listen_fd_ = -1;
  /// Self-pipe: stop() writes one byte so the poll() in the accept loop
  /// wakes even with no client connecting.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace vdx::serve
