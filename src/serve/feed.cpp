#include "serve/feed.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <string>

#include "serve/codec.hpp"

namespace vdx::serve {

GeneratorFeed::GeneratorFeed(const geo::World& world,
                             const trace::TraceConfig& config, core::Rng rng,
                             trace::BrokerTraceGenerator::Options options,
                             std::size_t batch_sessions)
    : generator_(std::make_unique<trace::BrokerTraceGenerator>(
          world, config, std::move(rng), options)),
      batch_(std::max<std::size_t>(1, batch_sessions)) {}

std::vector<trace::Session> GeneratorFeed::next_until(double t) {
  std::vector<trace::Session> out;
  while (true) {
    while (!pending_.empty() && pending_.front().arrival_s <= t) {
      out.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    if (!pending_.empty() || generator_->exhausted()) break;
    auto batch = generator_->next_batch(batch_);
    if (batch.empty()) break;
    pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
  }
  consumed_ += out.size();
  return out;
}

bool GeneratorFeed::exhausted() const {
  return pending_.empty() && generator_->exhausted();
}

double GeneratorFeed::duration_s() const { return generator_->duration_s(); }

void GeneratorFeed::seek(std::uint64_t consumed) {
  // Sessions pulled into pending_ but never handed out are regenerated —
  // block substreams are pure functions of (seed, block), so the re-pulled
  // sequence is byte-identical.
  generator_->seek(static_cast<std::size_t>(consumed));
  pending_.clear();
  consumed_ = consumed;
}

JsonlFeed::JsonlFeed(std::istream& in) : in_(&in) {}

std::vector<trace::Session> JsonlFeed::next_until(double t) {
  std::vector<trace::Session> out;
  while (true) {
    while (!pending_.empty() && pending_.front().arrival_s <= t) {
      out.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    if (!pending_.empty() || eof_) break;
    std::string line;
    if (!std::getline(*in_, line)) {
      eof_ = true;
      break;
    }
    if (line.empty()) continue;
    auto parsed = parse_arrival(line);
    if (!parsed.ok()) {
      ++malformed_;
      continue;
    }
    pending_.push_back(std::move(parsed).value());
  }
  consumed_ += out.size();
  return out;
}

bool JsonlFeed::exhausted() const { return pending_.empty() && eof_; }

void JsonlFeed::seek(std::uint64_t consumed) {
  if (consumed != consumed_) {
    throw std::invalid_argument{
        "JsonlFeed: a live feed cannot seek; resume requires the generator "
        "feed (--sessions, not --stdin)"};
  }
}

}  // namespace vdx::serve
