#include "serve/httpd.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vdx::serve {

namespace {

std::string sanitize_name(std::string_view name) {
  std::string out{name};
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

std::string label_block(const obs::Labels& labels, const char* quantile = nullptr) {
  if (labels.empty() && quantile == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    out += sanitize_name(key) + "=\"" + value + "\"";
    first = false;
  }
  if (quantile != nullptr) {
    if (!first) out += ',';
    out += std::string{"quantile=\""} + quantile + "\"";
  }
  out += '}';
  return out;
}

void write_value_line(std::ostream& out, const std::string& name,
                      const std::string& labels, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out << name << labels << ' ' << buffer << '\n';
}

}  // namespace

void write_metrics_text(const obs::MetricsRegistry& registry, std::ostream& out) {
  for (const obs::MetricsRegistry::Row& row : registry.rows()) {
    const std::string name = sanitize_name(row.name);
    switch (row.kind) {
      case obs::MetricKind::kCounter:
      case obs::MetricKind::kGauge:
        write_value_line(out, name, label_block(row.labels), row.value);
        break;
      case obs::MetricKind::kHistogram: {
        write_value_line(out, name + "_count", label_block(row.labels),
                         static_cast<double>(row.count));
        write_value_line(out, name + "_sum", label_block(row.labels), row.sum);
        const auto summary = registry.histogram_summary(row.name, row.labels);
        if (summary) {
          write_value_line(out, name, label_block(row.labels, "0.5"), summary->p50);
          write_value_line(out, name, label_block(row.labels, "0.9"), summary->p90);
          write_value_line(out, name, label_block(row.labels, "0.99"), summary->p99);
          write_value_line(out, name, label_block(row.labels, "0.999"),
                           summary->p999);
        }
        break;
      }
    }
  }
}

Httpd::Httpd(const obs::MetricsRegistry& registry, std::uint16_t port,
             const HealthState* health)
    : registry_(&registry), health_(health) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error{"httpd: socket() failed"};
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error{"httpd: cannot bind 127.0.0.1:" +
                             std::to_string(port)};
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error{"httpd: getsockname() failed"};
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error{"httpd: pipe() failed"};
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  thread_ = std::thread{[this] { serve_loop(); }};
}

Httpd::~Httpd() { stop(); }

void Httpd::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const char byte = 'x';
  [[maybe_unused]] const auto ignored = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

void Httpd::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_relaxed)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // One request line is all we need; read until "\r\n" or a small cap.
    std::string request;
    char buffer[1024];
    while (request.find("\r\n") == std::string::npos && request.size() < 8192) {
      const ssize_t n = ::read(client, buffer, sizeof buffer);
      if (n < 0 && errno == EINTR) continue;  // signal landed mid-read; retry
      if (n <= 0) break;                      // peer gone or hard error
      request.append(buffer, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = request.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? request : request.substr(0, line_end);

    std::string body;
    const char* status = "200 OK";
    const char* content_type = "text/plain; version=0.0.4";
    if (line.rfind("GET /metrics", 0) == 0) {
      std::ostringstream out;
      write_metrics_text(*registry_, out);
      body = out.str();
    } else if (line.rfind("GET /healthz", 0) == 0) {
      // No attached HealthState keeps the legacy contract (bare "ok") for
      // embedders that only want /metrics.
      body = health_ != nullptr ? health_->healthz_body() : "ok\n";
    } else {
      status = "404 Not Found";
      body = "not found\n";
    }

    std::ostringstream response;
    response << "HTTP/1.0 " << status << "\r\n"
             << "Content-Type: " << content_type << "\r\n"
             << "Content-Length: " << body.size() << "\r\n"
             << "Connection: close\r\n\r\n"
             << body;
    const std::string bytes = response.str();
    // Short writes are normal once the body outgrows the socket buffer (a
    // full /metrics page easily does), and a signal can interrupt any write:
    // retry EINTR instead of silently truncating the response, and only give
    // up when the peer is actually gone (n == 0 or a hard error). MSG_NOSIGNAL
    // turns a disconnected peer into EPIPE rather than a process-killing
    // SIGPIPE.
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(client, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    // Count before close: a client that saw EOF must also see the bump
    // (tests and scrapers read requests() right after a completed GET).
    requests_.fetch_add(1, std::memory_order_relaxed);
    ::close(client);
  }
}

}  // namespace vdx::serve
