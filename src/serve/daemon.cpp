#include "serve/daemon.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "serve/codec.hpp"
#include "sim/session_store.hpp"
#include "state/store.hpp"

namespace vdx::serve {

namespace {
/// Journal subject tagging the checkpointer's circuit breaker (shard-link
/// breakers use their shard index; this id cannot collide with one).
constexpr std::uint32_t kCheckpointerSubject = 0xC4EC;
}  // namespace

/// The daemon's active population: the same SoA SessionStore the streaming
/// engine uses, minus the stream coupling — the ArrivalFeed owns the pull
/// side, the daemon pushes arrivals in and fills the feed position into the
/// cursor itself.
class ServeDaemon::ActiveSessions {
 public:
  /// Ingests one arrival at midpoint t; a session that already ended never
  /// becomes active (it lived entirely between two samples).
  void add(const trace::Session& s, double t) {
    store_.admit(s.id.value(), s.city, s.bitrate_mbps, s.end_s(), t);
  }

  /// Drops departures with end_s <= t (half-open [arrival, end) activity).
  void drop_until(double t) { store_.drop_until(t); }

  /// Client groups of the active population — exactly what
  /// broker::group_sessions would return for it.
  [[nodiscard]] std::span<const broker::ClientGroup> groups() {
    return store_.groups();
  }

  [[nodiscard]] std::size_t count() const noexcept { return store_.size(); }

  /// Active population in id order; the daemon fills in the feed position.
  [[nodiscard]] state::StreamCursor cursor() const { return store_.cursor(); }

  void restore(const state::StreamCursor& cursor) {
    store_.restore(cursor.active);
  }

 private:
  sim::SessionStore store_;
};

ServeDaemon::ServeDaemon(const sim::Scenario& scenario, ArrivalFeed& feed,
                         ServeConfig config)
    : scenario_(scenario), config_(std::move(config)), feed_(&feed) {
  if (!std::isfinite(config_.round_s) || config_.round_s <= 0.0) {
    throw std::invalid_argument{"ServeDaemon: round_s must be > 0"};
  }
  if (config_.checkpoint_every_rounds > 0 && config_.checkpoint_dir.empty()) {
    throw std::invalid_argument{
        "ServeDaemon: checkpoint_every_rounds needs checkpoint_dir"};
  }
  if (config_.obs.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    config_.obs.metrics = owned_metrics_.get();
  }
  obs_ = config_.obs;
  // Incremental demand can momentarily present groups every CDN is too
  // loaded to bid for; the broker must tolerate them (PR 4 contract).
  config_.exchange.broker.allow_unbid_groups = true;
  config_.exchange.obs = obs_;
  config_.fingerprint.design = kDaemonDesign;
  config_.fingerprint.epoch_s = config_.round_s;

  if (config_.shards > 1) {
    market::ShardedConfig sharded;
    sharded.shards = config_.shards;
    sharded.backend = config_.shard_backend;
    sharded.exchange = config_.exchange;
    sharded.link_faults = config_.shard_link_faults;
    sharded.worker_restart = config_.shard_worker_restart;
    sharded.link_breaker = config_.shard_link_breaker;
    exchange_ = std::make_unique<market::ShardedExchange>(scenario_, sharded);
  } else {
    exchange_ =
        std::make_unique<market::VdxExchange>(scenario_, config_.exchange);
  }
  active_ = std::make_unique<ActiveSessions>();
  latency_ = std::make_unique<LatencyRecorder>(*obs_.metrics);
  zero_loads_.assign(scenario_.catalog().clusters().size(), 0.0);

  checkpoint_breaker_ = resilience::CircuitBreaker{config_.checkpoint_breaker,
                                                   obs_, kCheckpointerSubject};
  brownout_ = resilience::BrownoutController{config_.brownout, obs_};
  base_demand_budget_ = config_.exchange.overload.demand_budget_mbps;
  if (config_.health != nullptr) {
    config_.health->set_lifecycle(Lifecycle::kStarting);
  }

  rounds_counter_ = obs_.metrics->counter("serve.rounds");
  arrivals_counter_ = obs_.metrics->counter("serve.arrivals");
  queue_dropped_counter_ = obs_.metrics->counter("serve.queue_dropped");
  shed_mbps_counter_ = obs_.metrics->counter("serve.shed.mbps");
  shed_clients_counter_ = obs_.metrics->counter("serve.shed.clients");
  checkpoints_counter_ = obs_.metrics->counter("serve.checkpoints");
  checkpoint_skips_counter_ = obs_.metrics->counter("serve.checkpoint_skips");
  active_gauge_ = obs_.metrics->gauge("serve.active_sessions");
}

ServeDaemon::~ServeDaemon() = default;

ServeReport ServeDaemon::run() { return run_loop(0); }

core::Result<ServeReport> ServeDaemon::resume(
    std::span<const std::uint8_t> snapshot_bytes) {
  auto decoded = state::decode_daemon(snapshot_bytes);
  if (!decoded.ok()) return core::Result<ServeReport>{decoded.error()};
  const state::DaemonCheckpoint& cp = decoded.value();
  if (!(cp.fingerprint == config_.fingerprint)) {
    return core::Result<ServeReport>::failure(
        core::Errc::kInvalidArgument,
        "serve resume: snapshot fingerprint does not match this run");
  }
  if (!feed_->seekable()) {
    return core::Result<ServeReport>::failure(
        core::Errc::kInvalidArgument,
        "serve resume: the arrival feed cannot seek (live feeds are not "
        "resumable)");
  }
  // Restore order matters: the exchange restore also sets the tracer's
  // logical clock to the exchange's saved value; the daemon's own clock
  // (which may run ahead across skipped rounds) is reapplied after.
  const core::Status restored = exchange_->restore_state(cp.exchange_state);
  if (!restored.ok()) return core::Result<ServeReport>{restored.error()};
  try {
    feed_->seek(cp.feed.consumed);
  } catch (const std::invalid_argument& error) {
    return core::Result<ServeReport>::failure(core::Errc::kCorruptSnapshot,
                                              error.what());
  }
  active_->restore(cp.feed);
  if (obs_.journal != nullptr) {
    const core::Status journal = obs_.journal->restore(
        cp.journal.events, cp.journal.total, cp.journal.round);
    if (!journal.ok()) return core::Result<ServeReport>{journal.error()};
  }
  if (obs_.tracer != nullptr) obs_.tracer->set_logical(cp.logical_clock);
  decision_rounds_ = cp.decision_rounds;
  skipped_rounds_ = cp.skipped_rounds;
  queue_dropped_ = cp.queue_dropped;
  peak_active_ = cp.peak_active_sessions;
  shed_mbps_total_ = cp.shed_mbps_total;
  shed_clients_total_ = cp.shed_clients_total;
  shed_rounds_ = cp.shed_rounds;
  // kResume lands in the seq slot the checkpoint's own kCheckpoint event
  // occupied (the snapshot captured the journal *before* that event), so
  // the resumed journal stays byte-identical to the uninterrupted run's.
  obs_.record(obs::EventKind::kResume, obs::RunJournal::kNoSubject,
              static_cast<double>(cp.next_round));
  return run_loop(cp.next_round);
}

state::DaemonCheckpoint ServeDaemon::make_checkpoint(
    std::uint64_t next_round, std::vector<std::uint8_t> exchange_state) const {
  state::DaemonCheckpoint cp;
  cp.fingerprint = config_.fingerprint;
  cp.next_round = next_round;
  cp.feed = active_->cursor();
  cp.feed.consumed = feed_->consumed();
  cp.exchange_state = std::move(exchange_state);
  cp.decision_rounds = decision_rounds_;
  cp.skipped_rounds = skipped_rounds_;
  cp.queue_dropped = queue_dropped_;
  cp.peak_active_sessions = peak_active_;
  cp.shed_mbps_total = shed_mbps_total_;
  cp.shed_clients_total = shed_clients_total_;
  cp.shed_rounds = shed_rounds_;
  cp.logical_clock = obs_.tracer != nullptr ? obs_.tracer->logical_now() : 0;
  if (obs_.journal != nullptr) {
    cp.journal.events = obs_.journal->events();
    cp.journal.total = obs_.journal->total_recorded();
    cp.journal.round = obs_.journal->current_round();
  }
  return cp;
}

ServeReport ServeDaemon::run_loop(std::uint64_t start_round) {
  ServeReport report;
  const double horizon_s = feed_->duration_s();
  const std::uint64_t horizon_rounds =
      horizon_s > 0.0
          ? static_cast<std::uint64_t>(std::ceil(horizon_s / config_.round_s))
          : UINT64_MAX;

  std::unique_ptr<state::CheckpointStore> store;
  if (config_.checkpoint_every_rounds > 0) {
    store = std::make_unique<state::CheckpointStore>(
        config_.checkpoint_dir, std::max<std::size_t>(1, config_.checkpoint_keep),
        obs_, config_.checkpoint_fs);
  }
  const auto skip_checkpoint = [&](std::uint64_t next_round) {
    ++report.checkpoint_skips;
    checkpoint_skips_counter_.add();
    obs_.record(obs::EventKind::kCheckpointSkip, obs::RunJournal::kNoSubject,
                static_cast<double>(next_round));
  };
  const auto write_checkpoint = [&](std::uint64_t next_round) {
    // The checkpointer is supervised by a circuit breaker on the round
    // clock: consecutive failures (a degraded sharded exchange that cannot
    // snapshot, a sick disk) suspend checkpointing — the previous snapshot
    // stays the resume point and serving continues — until a half-open
    // probe succeeds after the fault clears. Every skipped or failed
    // attempt is journaled (checkpoint_skip) and counted.
    if (!checkpoint_breaker_.allow(next_round)) {
      skip_checkpoint(next_round);
      return;
    }
    auto exchange_state = exchange_->try_save_state();
    if (!exchange_state.ok()) {
      checkpoint_breaker_.on_failure(next_round);
      skip_checkpoint(next_round);
      return;
    }
    const state::DaemonCheckpoint cp =
        make_checkpoint(next_round, std::move(exchange_state).value());
    obs_.record(obs::EventKind::kCheckpoint, obs::RunJournal::kNoSubject,
                static_cast<double>(next_round));
    if (store->write(next_round, state::encode(cp)).ok()) {
      checkpoints_counter_.add();
      ++report.checkpoints_written;
      checkpoint_breaker_.on_success(next_round);
    } else {
      checkpoint_breaker_.on_failure(next_round);
      skip_checkpoint(next_round);
    }
  };

  if (config_.health != nullptr) {
    config_.health->set_lifecycle(Lifecycle::kServing);
  }
  // Brownout budget shrink is applied as a multiplier over the configured
  // budget; track what is currently applied so the (journaling-free) setter
  // only runs on transitions.
  double applied_budget_factor = 1.0;

  std::uint64_t r = start_round;
  while (r < horizon_rounds) {
    if (config_.round_hook) config_.round_hook(r);
    if (config_.stop != nullptr && config_.stop->load(std::memory_order_relaxed)) {
      // Graceful drain: journal the event, snapshot, and hand back a
      // resumable state instead of finishing the horizon.
      if (config_.health != nullptr) {
        config_.health->set_lifecycle(Lifecycle::kDraining);
      }
      obs_.record(obs::EventKind::kDrain, obs::RunJournal::kNoSubject,
                  static_cast<double>(active_->count()));
      if (store != nullptr) write_checkpoint(r);
      report.drained = true;
      break;
    }

    const double t = (static_cast<double>(r) + 0.5) * config_.round_s;
    if (obs_.tracer != nullptr) obs_.tracer->advance(1);

    std::vector<trace::Session> arrivals = feed_->next_until(t);
    std::size_t turned_away = 0;
    if (config_.queue_capacity > 0 &&
        active_->count() + arrivals.size() > config_.queue_capacity) {
      // Door backpressure: the latest arrivals are rejected outright (they
      // never enter the population the exchange prices).
      const std::size_t room = config_.queue_capacity > active_->count()
                                   ? config_.queue_capacity - active_->count()
                                   : 0;
      turned_away = arrivals.size() - room;
      arrivals.resize(room);
    }
    for (const trace::Session& s : arrivals) active_->add(s, t);
    active_->drop_until(t);
    if (!arrivals.empty()) {
      arrivals_counter_.add(static_cast<double>(arrivals.size()));
    }
    if (turned_away > 0) {
      queue_dropped_ += turned_away;
      queue_dropped_counter_.add(static_cast<double>(turned_away));
      obs_.record(obs::EventKind::kAdmit, obs::RunJournal::kNoSubject,
                  static_cast<double>(turned_away));
    }
    peak_active_ = std::max(peak_active_, static_cast<std::uint64_t>(active_->count()));
    // Brownout step >= 1 sheds non-critical telemetry first: the active-
    // population gauge goes stale while the SLO-critical serve.* histograms
    // keep recording.
    if (!brownout_.skip_noncritical_exports()) {
      active_gauge_.set(static_cast<double>(active_->count()));
    }

    if (active_->count() == 0 && feed_->exhausted()) break;

    if (active_->count() == 0) {
      // Nothing to price: no exchange round, no decision line (the skip is
      // itself deterministic — it depends only on the feed).
      ++skipped_rounds_;
    } else {
      exchange_->set_active_load(active_->groups(), zero_loads_);
      double demand_mbps = 0.0;
      for (const broker::ClientGroup& g : active_->groups()) {
        demand_mbps += g.demand_mbps();
      }
      const std::uint64_t logical_before = obs_.logical_now();
      double wall_s = 0.0;
      market::RoundReport round_report;
      {
        const obs::ScopedTimer timer{&wall_s};
        round_report = exchange_->run_round();
      }
      const std::uint64_t ticks = obs_.logical_now() - logical_before;
      latency_->record_round(wall_s * 1000.0, ticks, demand_mbps,
                             demand_mbps - round_report.shed_mbps);
      if (round_report.shed_mbps > 0.0) {
        shed_mbps_total_ += round_report.shed_mbps;
        shed_clients_total_ += round_report.shed_clients;
        ++shed_rounds_;
        shed_mbps_counter_.add(round_report.shed_mbps);
        shed_clients_counter_.add(round_report.shed_clients);
      }
      if (config_.decisions != nullptr) {
        DecisionLine line;
        line.round = r;
        line.active_sessions = active_->count();
        line.demand_mbps = demand_mbps;
        line.admitted_mbps = demand_mbps - round_report.shed_mbps;
        line.shed_mbps = round_report.shed_mbps;
        line.shed_clients = round_report.shed_clients;
        line.mean_score = round_report.mean_score;
        line.mean_cost = round_report.mean_cost;
        line.logical_ticks = ticks;
        write_decision(*config_.decisions, line);
      }
      ++decision_rounds_;
    }

    ++r;
    rounds_counter_.add();
    if (store != nullptr && r % config_.checkpoint_every_rounds == 0) {
      write_checkpoint(r);
    }

    // Re-evaluate the brownout ladder once per round, after the checkpoint
    // attempt so a fresh suspension registers the same round. The latency
    // trigger only reads quantiles when armed (p99_slo_ms > 0) — slo() walks
    // every histogram bucket, which is waste on the default path.
    resilience::BrownoutController::Signals signals;
    signals.open_breakers = exchange_->open_breakers();
    signals.checkpoint_suspended = checkpoint_breaker_.open();
    if (brownout_.config().p99_slo_ms > 0.0) {
      const LatencyRecorder::Slo slo = latency_->slo();
      signals.p99_ms = slo.p99_ms;
      signals.rounds_observed = slo.rounds;
    }
    const int step = brownout_.evaluate(signals, r);
    if (step > 0) ++report.brownout_rounds;
    const double factor = brownout_.admission_factor();
    if (base_demand_budget_ > 0.0 && factor != applied_budget_factor) {
      exchange_->set_demand_budget(base_demand_budget_ * factor);
      applied_budget_factor = factor;
    }
    if (config_.health != nullptr) {
      config_.health->set_brownout(brownout_.health(), step);
      config_.health->set_open_breakers(signals.open_breakers +
                                        (signals.checkpoint_suspended ? 1 : 0));
    }
    if (config_.halt_after_rounds > 0 &&
        r - start_round >= config_.halt_after_rounds) {
      report.halted = true;
      break;
    }
    if (config_.throw_after_rounds > 0 &&
        r - start_round >= config_.throw_after_rounds) {
      throw std::runtime_error{"ServeDaemon: injected failure after round " +
                               std::to_string(r)};
    }
  }

  if (config_.health != nullptr) {
    config_.health->set_lifecycle(Lifecycle::kStopped);
  }
  report.rounds = r;
  report.final_brownout_step = brownout_.step();
  report.decision_rounds = decision_rounds_;
  report.skipped_rounds = skipped_rounds_;
  report.arrivals = feed_->consumed();
  report.queue_dropped = queue_dropped_;
  report.peak_active_sessions = peak_active_;
  report.shed_mbps_total = shed_mbps_total_;
  report.shed_clients_total = shed_clients_total_;
  report.shed_rounds = shed_rounds_;
  report.slo = latency_->slo();
  return report;
}

}  // namespace vdx::serve
