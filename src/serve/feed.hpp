// Arrival feeds: where the serving daemon's session-arrival events come
// from (DESIGN.md §12).
//
// A feed hands the daemon every arrival with arrival_s <= t, in arrival
// order, one round midpoint at a time. Two implementations:
//   * GeneratorFeed — the built-in open-loop client: wraps the chunked
//     trace::BrokerTraceGenerator, so the feed is a pure function of
//     (world, config, seed) and is seekable for checkpoint/resume (the
//     determinism contract's --sim-clock path);
//   * JsonlFeed — online admission from a socket/stdin stream of codec
//     arrival lines. Malformed lines are counted and skipped, never fatal
//     (hostile input must not kill the daemon). Not seekable: a live feed
//     cannot be replayed, so --resume-from requires the generator feed.
#pragma once

#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <vector>

#include "trace/generator.hpp"
#include "trace/session.hpp"

namespace vdx::serve {

class ArrivalFeed {
 public:
  virtual ~ArrivalFeed() = default;

  /// Arrivals with arrival_s <= t, arrival-ordered; `t` must be
  /// non-decreasing across calls. Later-arriving sessions stay buffered.
  [[nodiscard]] virtual std::vector<trace::Session> next_until(double t) = 0;
  /// No further sessions will ever be returned.
  [[nodiscard]] virtual bool exhausted() const = 0;
  /// Feed horizon in seconds (0 when unknown — a live stream).
  [[nodiscard]] virtual double duration_s() const = 0;
  /// Sessions handed out via next_until() so far.
  [[nodiscard]] virtual std::uint64_t consumed() const = 0;
  /// Repositions so the next handed-out session is number `consumed`.
  /// Throws std::invalid_argument when unsupported or past the horizon.
  virtual void seek(std::uint64_t consumed) = 0;
  [[nodiscard]] virtual bool seekable() const = 0;
};

/// Built-in open-loop generator feed (seekable, deterministic).
class GeneratorFeed final : public ArrivalFeed {
 public:
  /// `batch_sessions` bounds memory: sessions are pulled from the generator
  /// in batches of this size.
  GeneratorFeed(const geo::World& world, const trace::TraceConfig& config,
                core::Rng rng, trace::BrokerTraceGenerator::Options options = {},
                std::size_t batch_sessions = 4096);

  [[nodiscard]] std::vector<trace::Session> next_until(double t) override;
  [[nodiscard]] bool exhausted() const override;
  [[nodiscard]] double duration_s() const override;
  [[nodiscard]] std::uint64_t consumed() const override { return consumed_; }
  void seek(std::uint64_t consumed) override;
  [[nodiscard]] bool seekable() const override { return true; }

  [[nodiscard]] std::size_t total_sessions() const noexcept {
    return generator_->total_sessions();
  }

 private:
  std::unique_ptr<trace::BrokerTraceGenerator> generator_;
  std::size_t batch_;
  std::deque<trace::Session> pending_;
  std::uint64_t consumed_ = 0;
};

/// Live JSONL feed over an istream of codec arrival lines.
class JsonlFeed final : public ArrivalFeed {
 public:
  /// `in` must outlive the feed. Lines are assumed arrival-ordered; an
  /// out-of-order arrival is clamped to the current midpoint rather than
  /// reordered (the daemon serves it in the round it was seen).
  explicit JsonlFeed(std::istream& in);

  [[nodiscard]] std::vector<trace::Session> next_until(double t) override;
  [[nodiscard]] bool exhausted() const override;
  [[nodiscard]] double duration_s() const override { return 0.0; }
  [[nodiscard]] std::uint64_t consumed() const override { return consumed_; }
  void seek(std::uint64_t consumed) override;
  [[nodiscard]] bool seekable() const override { return false; }

  /// Malformed lines skipped so far.
  [[nodiscard]] std::uint64_t malformed() const noexcept { return malformed_; }

 private:
  std::istream* in_;
  std::deque<trace::Session> pending_;
  std::uint64_t consumed_ = 0;
  std::uint64_t malformed_ = 0;
  bool eof_ = false;
};

}  // namespace vdx::serve
