#include "serve/latency.hpp"

namespace vdx::serve {

LatencyRecorder::LatencyRecorder(obs::MetricsRegistry& registry)
    : registry_(&registry),
      round_ms_(registry.histogram("serve.round_ms")),
      round_ticks_(registry.histogram("serve.round_ticks")),
      demand_mbps_(registry.histogram("serve.demand_mbps")),
      admitted_mbps_(registry.histogram("serve.admitted_mbps")) {}

void LatencyRecorder::record_round(double wall_ms, std::uint64_t logical_ticks,
                                   double demand_mbps, double admitted_mbps) {
  round_ms_.observe(wall_ms);
  round_ticks_.observe(static_cast<double>(logical_ticks));
  demand_mbps_.observe(demand_mbps);
  admitted_mbps_.observe(admitted_mbps);
}

LatencyRecorder::Slo LatencyRecorder::slo() const {
  Slo slo;
  if (const auto summary = registry_->histogram_summary("serve.round_ms")) {
    slo.rounds = summary->count;
    slo.p50_ms = summary->p50;
    slo.p99_ms = summary->p99;
    slo.p999_ms = summary->p999;
    slo.max_ms = summary->max;
  }
  return slo;
}

}  // namespace vdx::serve
