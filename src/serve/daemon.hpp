// ServeDaemon: the long-lived serving loop behind vdxd (DESIGN.md §12).
//
// Owns a VdxExchange and an incrementally maintained active-session
// population, admits arrival events online from an ArrivalFeed, and answers
// Decision-Protocol rounds continuously: round r prices the population
// active at the midpoint (r + 0.5) * round_s on the logical-clock engine.
// Per-round service latency lands in the serve.* histograms (wall ms for
// the SLO, logical ticks for the determinism contract), admission
// backpressure reuses the exchange's shed_to_budget round budget plus an
// arrival-queue bound, checkpoints go through state::CheckpointStore, and a
// stop flag (vdxd wires SIGTERM to it) drains gracefully with a final
// snapshot.
//
// Determinism contract: with a seekable deterministic feed (GeneratorFeed)
// the full serving run — decision lines, journal, shed totals, checkpoint
// bytes — is a pure function of (scenario, config, feed); resume() from any
// mid-run snapshot continues byte-identically. Wall-clock latency is
// recorded but never flows into a deterministic output.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <ostream>
#include <span>

#include "market/exchange.hpp"
#include "market/shard.hpp"
#include "resilience/breaker.hpp"
#include "resilience/brownout.hpp"
#include "resilience/supervisor.hpp"
#include "serve/feed.hpp"
#include "serve/health.hpp"
#include "serve/latency.hpp"
#include "sim/scenario.hpp"
#include "state/checkpoint.hpp"
#include "state/fs.hpp"

namespace vdx::serve {

/// RunFingerprint::design value marking daemon snapshots (timeline designs
/// are small enums; this cannot collide).
inline constexpr std::uint8_t kDaemonDesign = 0xD0;

struct ServeConfig {
  /// Decision-round period (seconds of feed time). Rounds sample the
  /// population at midpoints (r + 0.5) * round_s.
  double round_s = 5.0;
  /// Arrival-queue bound per round: when the incoming batch would push the
  /// active population past this, the latest arrivals are turned away at
  /// the door (counted, journaled as kAdmit). 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Checkpoint every N elapsed rounds (0 = off; needs checkpoint_dir).
  std::size_t checkpoint_every_rounds = 0;
  std::filesystem::path checkpoint_dir;
  std::size_t checkpoint_keep = 3;
  /// Crash drill: stop the loop abruptly after this many rounds (no drain,
  /// no final snapshot) — recovery tests resume from the last checkpoint.
  std::uint64_t halt_after_rounds = 0;
  /// Abnormal-exit drill: throw std::runtime_error after this many rounds —
  /// the ExportGuard test asserts the journal tail still lands well-formed.
  std::uint64_t throw_after_rounds = 0;
  /// Graceful-drain flag (non-owning; vdxd points it at its SIGTERM flag).
  /// When it flips true the daemon records kDrain, takes a final snapshot,
  /// and returns with ServeReport::drained set.
  const std::atomic<bool>* stop = nullptr;
  /// Decision-line sink (one codec decision line per answered round).
  std::ostream* decisions = nullptr;
  /// Exchange configuration; the daemon forces broker.allow_unbid_groups
  /// (incremental demand) and threads `obs` through it. The admission
  /// budget lives in exchange.overload.demand_budget_mbps.
  market::ExchangeConfig exchange;
  /// >1 serves through a market::ShardedExchange: the marketplace is
  /// partitioned into this many region shards behind the coordinator
  /// (byte-identical decisions at any count — see DESIGN.md §14).
  std::size_t shards = 1;
  market::ShardBackend shard_backend = market::ShardBackend::kInproc;
  /// Chaos on the coordinator<->shard links (shards > 1 only).
  proto::FaultProfile shard_link_faults;
  /// Supervision for shard workers (shards > 1): restart budget + backoff
  /// on the settlement round clock. Defaults = unbounded immediate restarts
  /// (the pre-supervisor behavior).
  resilience::RestartPolicy shard_worker_restart;
  /// Per-shard-link circuit breakers (shards > 1, demand mode): consecutive
  /// link failures quarantine the shard onto stale-slice settlement until a
  /// half-open probe succeeds. Disabled by default (failure_threshold = 0).
  resilience::BreakerConfig shard_link_breaker;
  /// Circuit breaker over the checkpointer: consecutive checkpoint failures
  /// (snapshot capture or storage write) suspend checkpointing — journaled
  /// as checkpoint_skip — until a probe succeeds after the disk heals.
  /// Disabled by default: a failed checkpoint is then retried next period.
  resilience::BreakerConfig checkpoint_breaker;
  /// Brownout ladder driven by breaker/checkpoint/latency signals; the
  /// latency trigger stays off unless brownout.p99_slo_ms > 0.
  resilience::BrownoutConfig brownout;
  /// Storage seam for the checkpoint store (nullptr = the host filesystem).
  /// Fault-injection tests pass a state::FaultFs here.
  state::FileSystem* checkpoint_fs = nullptr;
  /// Live health snapshot published for /healthz (non-owning; optional).
  HealthState* health = nullptr;
  /// Test/drill hook invoked at the top of every round with the round index
  /// — fault schedules key off it so chaos lands on the logical clock.
  std::function<void(std::uint64_t)> round_hook;
  /// Identity stamped into checkpoints; resume() validates it. The daemon
  /// overrides `design` with kDaemonDesign and `epoch_s` with round_s.
  state::RunFingerprint fingerprint;
  obs::Observer obs;
};

struct ServeReport {
  /// Rounds elapsed (answered + skipped); the resumed-run total covers the
  /// whole serve, not just the post-resume stretch.
  std::uint64_t rounds = 0;
  std::uint64_t decision_rounds = 0;
  /// Rounds with zero active broker sessions (no exchange round, no
  /// decision line).
  std::uint64_t skipped_rounds = 0;
  /// Sessions consumed from the feed.
  std::uint64_t arrivals = 0;
  /// Arrivals turned away by the queue bound.
  std::uint64_t queue_dropped = 0;
  std::uint64_t peak_active_sessions = 0;
  /// Admission-control (shed_to_budget) totals across all rounds.
  double shed_mbps_total = 0.0;
  double shed_clients_total = 0.0;
  std::uint64_t shed_rounds = 0;
  std::uint64_t checkpoints_written = 0;
  /// Checkpoint attempts skipped (breaker open) or failed (capture/write).
  std::uint64_t checkpoint_skips = 0;
  /// Rounds served at brownout step >= 1.
  std::uint64_t brownout_rounds = 0;
  /// Ladder position when the loop ended (0 = fully recovered).
  int final_brownout_step = 0;
  bool drained = false;
  bool halted = false;
  LatencyRecorder::Slo slo;
};

class ServeDaemon {
 public:
  /// `feed` must outlive the daemon. Throws std::invalid_argument on a
  /// non-positive round_s or a checkpoint policy without a directory.
  ServeDaemon(const sim::Scenario& scenario, ArrivalFeed& feed,
              ServeConfig config);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Serves the whole feed from round 0.
  [[nodiscard]] ServeReport run();

  /// Resumes from encode(DaemonCheckpoint) bytes: validates the
  /// fingerprint, seeks the feed (kInvalidArgument when the feed cannot
  /// seek), restores the exchange/journal/accumulators, then continues the
  /// loop. The continuation is byte-identical to the uninterrupted run.
  [[nodiscard]] core::Result<ServeReport> resume(
      std::span<const std::uint8_t> snapshot_bytes);

  [[nodiscard]] const LatencyRecorder& latency() const noexcept {
    return *latency_;
  }
  [[nodiscard]] const market::ExchangeFrontend& exchange() const noexcept {
    return *exchange_;
  }

 private:
  class ActiveSessions;

  [[nodiscard]] ServeReport run_loop(std::uint64_t start_round);
  /// Assembles the checkpoint around an already-captured exchange snapshot
  /// (the caller gathers it via try_save_state so a degraded sharded
  /// exchange skips the checkpoint instead of killing the daemon).
  [[nodiscard]] state::DaemonCheckpoint make_checkpoint(
      std::uint64_t next_round, std::vector<std::uint8_t> exchange_state) const;

  const sim::Scenario& scenario_;
  ServeConfig config_;
  ArrivalFeed* feed_;
  /// Fallback registry when ServeConfig::obs brings none (the latency
  /// recorder and the /metrics endpoint need one to exist).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<market::ExchangeFrontend> exchange_;
  std::unique_ptr<ActiveSessions> active_;
  std::unique_ptr<LatencyRecorder> latency_;
  std::vector<double> zero_loads_;
  obs::Observer obs_;

  /// Resilience layer: checkpointer breaker + brownout ladder (DESIGN §15).
  resilience::CircuitBreaker checkpoint_breaker_;
  resilience::BrownoutController brownout_;
  /// Unshrunk admission budget, captured before brownout scales it.
  double base_demand_budget_ = 0.0;

  /// Cross-resume accumulators (mirrored into ServeReport).
  std::uint64_t decision_rounds_ = 0;
  std::uint64_t skipped_rounds_ = 0;
  std::uint64_t queue_dropped_ = 0;
  std::uint64_t peak_active_ = 0;
  double shed_mbps_total_ = 0.0;
  double shed_clients_total_ = 0.0;
  std::uint64_t shed_rounds_ = 0;

  /// Pre-interned serve.* handles.
  obs::Counter rounds_counter_;
  obs::Counter arrivals_counter_;
  obs::Counter queue_dropped_counter_;
  obs::Counter shed_mbps_counter_;
  obs::Counter shed_clients_counter_;
  obs::Counter checkpoints_counter_;
  obs::Counter checkpoint_skips_counter_;
  obs::Gauge active_gauge_;
};

}  // namespace vdx::serve
