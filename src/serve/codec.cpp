#include "serve/codec.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

namespace vdx::serve {

namespace {

/// Pulls `"key":<raw value>` out of one flat JSON object line (same
/// targeted scanner as RunJournal::read_jsonl — the codec parses only its
/// own fixed-schema output plus vdxload's).
std::optional<std::string_view> json_field(std::string_view line,
                                           std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle.push_back('"');
  needle.append(key);
  needle.append("\":");
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string_view::npos) return std::nullopt;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

template <typename T>
core::Result<T> corrupt(std::string message) {
  return core::Result<T>::failure(core::Errc::kCorruptFrame, std::move(message));
}

std::optional<double> parse_finite(std::string_view text) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(std::string{text}, &consumed);
    if (consumed != text.size() || !std::isfinite(parsed)) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty() || text.front() == '-') return std::nullopt;
  try {
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(std::string{text}, &consumed);
    if (consumed != text.size()) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

core::Result<trace::Session> parse_arrival(std::string_view line) {
  const auto id = json_field(line, "id");
  const auto arrival = json_field(line, "arrival_s");
  const auto bitrate = json_field(line, "bitrate_mbps");
  const auto duration = json_field(line, "duration_s");
  const auto city = json_field(line, "city");
  if (!id || !arrival || !bitrate || !duration || !city) {
    return corrupt<trace::Session>("arrival line is missing a required field");
  }
  const auto id_v = parse_u64(*id);
  const auto city_v = parse_u64(*city);
  const auto arrival_v = parse_finite(*arrival);
  const auto bitrate_v = parse_finite(*bitrate);
  const auto duration_v = parse_finite(*duration);
  if (!id_v || !city_v || !arrival_v || !bitrate_v || !duration_v ||
      *id_v > UINT32_MAX || *city_v > UINT32_MAX) {
    return corrupt<trace::Session>("arrival line has an unparsable field");
  }
  if (*arrival_v < 0.0 || *bitrate_v <= 0.0 || *duration_v < 0.0) {
    return corrupt<trace::Session>("arrival line has an out-of-range field");
  }
  trace::Session session;
  session.id = trace::SessionId{static_cast<std::uint32_t>(*id_v)};
  session.arrival_s = *arrival_v;
  session.bitrate_mbps = *bitrate_v;
  session.duration_s = *duration_v;
  session.city = trace::CityId{static_cast<std::uint32_t>(*city_v)};
  if (const auto video = json_field(line, "video")) {
    const auto video_v = parse_u64(*video);
    if (!video_v || *video_v > UINT32_MAX) {
      return corrupt<trace::Session>("arrival line has an unparsable field");
    }
    session.video = trace::VideoId{static_cast<std::uint32_t>(*video_v)};
  }
  if (const auto as = json_field(line, "as")) {
    const auto as_v = parse_u64(*as);
    if (!as_v || *as_v > UINT32_MAX) {
      return corrupt<trace::Session>("arrival line has an unparsable field");
    }
    session.as_number = static_cast<std::uint32_t>(*as_v);
  }
  return session;
}

void write_arrival(std::ostream& out, const trace::Session& session) {
  char line[256];
  std::snprintf(line, sizeof line,
                "{\"id\":%u,\"arrival_s\":%.17g,\"video\":%u,"
                "\"bitrate_mbps\":%.17g,\"duration_s\":%.17g,\"city\":%u,"
                "\"as\":%u}",
                session.id.value(), session.arrival_s, session.video.value(),
                session.bitrate_mbps, session.duration_s, session.city.value(),
                session.as_number);
  out << line << '\n';
}

void write_decision(std::ostream& out, const DecisionLine& line) {
  char buffer[512];
  std::snprintf(buffer, sizeof buffer,
                "{\"round\":%" PRIu64 ",\"active\":%" PRIu64
                ",\"demand_mbps\":%.17g,\"admitted_mbps\":%.17g,"
                "\"shed_mbps\":%.17g,\"shed_clients\":%.17g,"
                "\"mean_score\":%.17g,\"mean_cost\":%.17g,"
                "\"logical_ticks\":%" PRIu64 "}",
                line.round, line.active_sessions, line.demand_mbps,
                line.admitted_mbps, line.shed_mbps, line.shed_clients,
                line.mean_score, line.mean_cost, line.logical_ticks);
  out << buffer << '\n';
}

core::Result<DecisionLine> parse_decision(std::string_view line) {
  const auto round = json_field(line, "round");
  const auto active = json_field(line, "active");
  const auto demand = json_field(line, "demand_mbps");
  const auto admitted = json_field(line, "admitted_mbps");
  const auto shed = json_field(line, "shed_mbps");
  const auto shed_clients = json_field(line, "shed_clients");
  const auto score = json_field(line, "mean_score");
  const auto cost = json_field(line, "mean_cost");
  const auto ticks = json_field(line, "logical_ticks");
  if (!round || !active || !demand || !admitted || !shed || !shed_clients ||
      !score || !cost || !ticks) {
    return corrupt<DecisionLine>("decision line is missing a field");
  }
  const auto round_v = parse_u64(*round);
  const auto active_v = parse_u64(*active);
  const auto ticks_v = parse_u64(*ticks);
  const auto demand_v = parse_finite(*demand);
  const auto admitted_v = parse_finite(*admitted);
  const auto shed_v = parse_finite(*shed);
  const auto shed_clients_v = parse_finite(*shed_clients);
  const auto score_v = parse_finite(*score);
  const auto cost_v = parse_finite(*cost);
  if (!round_v || !active_v || !ticks_v || !demand_v || !admitted_v || !shed_v ||
      !shed_clients_v || !score_v || !cost_v) {
    return corrupt<DecisionLine>("decision line has an unparsable field");
  }
  DecisionLine parsed;
  parsed.round = *round_v;
  parsed.active_sessions = *active_v;
  parsed.demand_mbps = *demand_v;
  parsed.admitted_mbps = *admitted_v;
  parsed.shed_mbps = *shed_v;
  parsed.shed_clients = *shed_clients_v;
  parsed.mean_score = *score_v;
  parsed.mean_cost = *cost_v;
  parsed.logical_ticks = *ticks_v;
  return parsed;
}

}  // namespace vdx::serve
