// SLO-grade latency accounting for the serving daemon (DESIGN.md §12).
//
// Every answered Decision-Protocol round lands one observation in each of
// the serve.* histograms; the recorder reads p50/p99/p999 back through
// MetricsRegistry::quantile(), so the daemon, benches, and the /metrics
// endpoint all report from the same log-bucketed data.
//
// Two clock domains, deliberately separate metrics:
//   * serve.round_ms — wall-clock service latency of one round (the SLO
//     quantity; excluded from golden comparisons, it is nondeterministic);
//   * serve.round_ticks — logical-clock ticks the round consumed (byte-
//     stable under --sim-clock; what the determinism contract compares).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace vdx::serve {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(obs::MetricsRegistry& registry);

  /// Records one answered round.
  void record_round(double wall_ms, std::uint64_t logical_ticks,
                    double demand_mbps, double admitted_mbps);

  /// Wall-latency SLO readback (milliseconds), via the registry's quantile
  /// interpolation.
  struct Slo {
    std::uint64_t rounds = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    double max_ms = 0.0;
  };
  [[nodiscard]] Slo slo() const;

 private:
  obs::MetricsRegistry* registry_;
  obs::Histogram round_ms_;
  obs::Histogram round_ticks_;
  obs::Histogram demand_mbps_;
  obs::Histogram admitted_mbps_;
};

}  // namespace vdx::serve
