// StreamingTimeline: the timeline simulation as an event-driven engine over
// a bounded session stream.
//
// run_timeline materializes both traces and rescans every session each
// epoch (O(trace) per epoch, O(trace) resident), which caps the reachable
// scale far below the ROADMAP's "millions of users". This engine consumes
// sessions in arrival order from a SessionStream, maintains the active
// population incrementally — an arrival cursor plus a departure min-heap
// delta-update a per-(city, bitrate) group-count map and the per-cluster
// load inputs — and re-runs the Decision Protocol each epoch over state
// whose size is the *concurrent* session count, not the horizon total.
// Background placements are recomputed only when the background population
// actually changed.
//
// Equivalence guarantee (tier-1-checked): driven by TraceStream over a
// scenario's materialized traces, the engine reproduces run_timeline's
// epoch reports byte-identically (same groups: the count map mirrors
// broker::group_sessions' (city, kbps, isp) map order; same assignment:
// both engines share sim::detail::assign_sessions fed in id order; same
// rounds: run_design_over with qoe_epoch = e+1 and a per-run
// CandidateMenuCache, which is byte-identical to uncached menus). At
// million-session scale, GeneratorStream feeds it from
// trace::BrokerTraceGenerator so the full trace never exists in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "obs/observe.hpp"
#include "sim/timeline.hpp"
#include "state/checkpoint.hpp"
#include "state/store.hpp"
#include "trace/generator.hpp"

namespace vdx::sim {

class SupplyStressController;

/// A bounded, arrival-ordered session source. Implementations must emit
/// sessions with non-decreasing arrival_s and dense ids in emission order
/// (the invariant both adapters below inherit from the trace layer).
class SessionStream {
 public:
  virtual ~SessionStream() = default;
  /// Up to `max_sessions` further sessions; empty means exhausted.
  [[nodiscard]] virtual std::vector<trace::Session> next_batch(
      std::size_t max_sessions) = 0;
  [[nodiscard]] virtual bool exhausted() const = 0;
  /// The stream horizon (drives the epoch count).
  [[nodiscard]] virtual double duration_s() const = 0;
  /// Repositions so the next emitted session is number `consumed` (0-based
  /// in emission order). Checkpoint resume rewinds streams through this;
  /// implementations throw std::invalid_argument past their horizon.
  virtual void seek(std::uint64_t consumed) = 0;
};

/// Adapter over a materialized trace (seed-scale runs and the equivalence
/// tests — the sessions fed are exactly the batch engine's).
class TraceStream final : public SessionStream {
 public:
  explicit TraceStream(const trace::BrokerTrace& trace) : trace_(&trace) {}

  [[nodiscard]] std::vector<trace::Session> next_batch(
      std::size_t max_sessions) override;
  [[nodiscard]] bool exhausted() const override {
    return pos_ >= trace_->sessions().size();
  }
  [[nodiscard]] double duration_s() const override { return trace_->duration_s(); }
  void seek(std::uint64_t consumed) override;

 private:
  const trace::BrokerTrace* trace_;
  std::size_t pos_ = 0;
};

/// Adapter over the chunked generator (million-session runs: memory is
/// bounded by the generator's block size plus the concurrent active set).
class GeneratorStream final : public SessionStream {
 public:
  explicit GeneratorStream(trace::BrokerTraceGenerator& generator)
      : generator_(&generator) {}

  [[nodiscard]] std::vector<trace::Session> next_batch(
      std::size_t max_sessions) override {
    return generator_->next_batch(max_sessions);
  }
  [[nodiscard]] bool exhausted() const override { return generator_->exhausted(); }
  [[nodiscard]] double duration_s() const override { return generator_->duration_s(); }
  void seek(std::uint64_t consumed) override {
    generator_->seek(static_cast<std::size_t>(consumed));
  }

 private:
  trace::BrokerTraceGenerator* generator_;
};

/// Crash-consistency policy for a streaming run (DESIGN.md §10). Disabled
/// by default; when enabled, the engine snapshots its complete state after
/// every `every_epochs`-th epoch into `store`.
struct CheckpointPolicy {
  /// 0 disables checkpointing.
  std::size_t every_epochs = 0;
  /// Snapshot destination; required (non-null) when every_epochs > 0.
  state::CheckpointStore* store = nullptr;
  /// Run identity stamped into every snapshot and validated on resume.
  state::RunFingerprint fingerprint;
};

/// Overload-graceful admission control for streaming runs (DESIGN.md §11).
/// When the broker-side active population exceeds the budget after an
/// epoch's arrivals, the engine sheds the overflow lowest-value-first
/// (ascending bitrate, then id — the deterministic tiebreak) before the
/// decision round, so the round never sees more demand than the budget.
struct OverloadPolicy {
  /// Maximum broker sessions admitted to a decision round; 0 disables.
  std::size_t max_active_sessions = 0;
};

struct StreamingConfig {
  Design design = Design::kMarketplace;
  RunConfig run;
  /// Decision Protocol period (matches TimelineConfig::epoch_s).
  double epoch_s = 300.0;
  /// Stream pull granularity. Pure mechanics: results are identical for any
  /// value (chunk-boundary determinism), it only trades pull overhead
  /// against peak buffered sessions.
  std::size_t batch_sessions = 8192;
  /// Observability sinks (timeline.* metrics/spans, per-epoch journal
  /// events). Default: disabled.
  obs::Observer obs;
  CheckpointPolicy checkpoint;
  /// Admission control; disabled by default.
  OverloadPolicy overload;
  /// Optional supply-side stress (blackouts, price shocks), applied at each
  /// epoch midpoint; non-owning, must outlive the engine. Because the
  /// controller mutates catalog values that candidate menus bake in, the
  /// engine rebuilds its menu caches on every stress transition — which is
  /// why an external RunConfig::menus is rejected when stress is attached
  /// (it would silently go stale).
  SupplyStressController* stress = nullptr;
  /// Test hook simulating a crash: when > 0, run()/resume() return after
  /// executing this many epochs of the current invocation (checkpoints
  /// taken on the way are durable; the partial result is discarded by the
  /// recovery drill).
  std::size_t halt_after_epochs = 0;
};

/// TimelineResult plus the streaming engine's resource accounting.
struct StreamingResult {
  TimelineResult timeline;
  /// Sessions pulled from the broker / background streams.
  std::size_t broker_sessions = 0;
  std::size_t background_sessions = 0;
  /// Peak concurrent active sessions across both populations — with the
  /// stream batch size, the engine's memory bound (no full-trace residency).
  std::size_t peak_active_sessions = 0;
  /// Epochs that ran a decision round (epochs with no active broker
  /// sessions are skipped, exactly like run_timeline).
  std::size_t decision_rounds = 0;
  /// Background placements actually recomputed (≤ decision_rounds; the
  /// delta engine reuses the previous placement when no background session
  /// arrived or departed).
  std::size_t background_recomputes = 0;
  /// Broker sessions shed by admission control across the run.
  std::size_t shed_sessions = 0;
};

class StreamingTimeline {
 public:
  StreamingTimeline(const Scenario& scenario, StreamingConfig config);

  /// Plays both streams through repeated decision rounds. Single-shot per
  /// stream pair (streams are consumed); the engine itself is reusable.
  [[nodiscard]] StreamingResult run(SessionStream& broker,
                                    SessionStream& background) const;

  /// Resumes a run from a serialized checkpoint: decodes and validates the
  /// snapshot (typed rejection of corrupt/mismatched-version bytes and of
  /// fingerprints that disagree with config.checkpoint.fingerprint), seeks
  /// both streams, restores the engine/journal state, records a kResume
  /// journal event, and continues from the checkpointed epoch. The epochs
  /// executed after resume are byte-identical — reports, placements,
  /// journal tail — to the same epochs of an uninterrupted run (the
  /// recovery drill's acceptance invariant). The returned result covers
  /// only the epochs executed by this invocation; churn means and resource
  /// accounting still span the whole horizon.
  [[nodiscard]] core::Result<StreamingResult> resume(
      SessionStream& broker, SessionStream& background,
      std::span<const std::uint8_t> snapshot) const;

 private:
  StreamingResult run_impl(SessionStream& broker, SessionStream& background,
                           const state::TimelineCheckpoint* checkpoint,
                           std::size_t snapshot_bytes) const;

  const Scenario* scenario_;
  StreamingConfig config_;
};

}  // namespace vdx::sim
