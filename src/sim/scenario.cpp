#include "sim/scenario.hpp"

namespace vdx::sim {

Scenario Scenario::build(const ScenarioConfig& config) {
  Scenario s;
  s.config_ = config;

  core::Rng root{config.seed};
  core::Rng world_rng = root.fork("world");
  core::Rng catalog_rng = root.fork("catalog");
  core::Rng mapping_rng = root.fork("mapping");
  core::Rng trace_rng = root.fork("trace");
  core::Rng background_rng = root.fork("background");
  core::Rng city_cdn_rng = root.fork("city-cdns");

  geo::WorldConfig world_config = config.world;
  world_config.seed = world_rng();
  s.world_ = std::make_unique<geo::World>(geo::World::generate(world_config));

  s.catalog_ = std::make_unique<cdn::CdnCatalog>(
      cdn::CdnCatalog::generate(*s.world_, config.catalog, catalog_rng));
  if (config.city_cdn_count > 0) {
    s.catalog_->add_city_cdns(*s.world_, config.city_cdn_count, city_cdn_rng);
  }

  s.path_model_ = std::make_unique<net::PathModel>(config.path, root.fork("path")());
  s.mapping_ = std::make_unique<net::MappingTable>(
      net::MappingTable::measure(*s.world_, s.catalog_->vantages(*s.world_),
                                 *s.path_model_, config.mapping, mapping_rng));

  s.broker_trace_ = std::make_unique<trace::BrokerTrace>(
      trace::generate_trace(*s.world_, config.trace, trace_rng));
  s.background_trace_ = std::make_unique<trace::BrokerTrace>(trace::generate_background(
      *s.world_, config.trace, config.background_multiplier, background_rng));

  s.broker_groups_ = broker::group_sessions(s.broker_trace_->sessions(), config.grouping);
  s.background_groups_ =
      broker::group_sessions(s.background_trace_->sessions(), config.grouping);

  // Provision against the broker workload (§5.1: "all clients are sent to
  // each CDN individually and clusters are assigned 2x received traffic as
  // their capacity" — the clients are the broker trace's). Background
  // traffic arrives on top of this, which is what makes overbooking
  // possible for capacity-blind designs (Table 3's Congested column).
  s.provisioning_ =
      cdn::provision(*s.catalog_, *s.world_, *s.mapping_, to_demand(s.broker_groups_));

  return s;
}

double Scenario::distance_miles(geo::CityId city, cdn::ClusterId cluster) const {
  return geo::haversine_miles(world_->city(city).location,
                              world_->city(catalog_->cluster(cluster).city).location);
}

std::vector<cdn::DemandPoint> to_demand(std::span<const broker::ClientGroup> groups) {
  std::vector<cdn::DemandPoint> out;
  out.reserve(groups.size());
  for (const broker::ClientGroup& g : groups) {
    out.push_back(cdn::DemandPoint{g.city, g.bitrate_mbps, g.client_count});
  }
  return out;
}

}  // namespace vdx::sim
