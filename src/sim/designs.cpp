#include "sim/designs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cdn/matching.hpp"
#include "cdn/menu_cache.hpp"
#include "core/parallel.hpp"

namespace vdx::sim {

std::string_view to_string(Design design) noexcept {
  switch (design) {
    case Design::kBrokered:
      return "Brokered";
    case Design::kMulticluster2:
      return "Multicluster (2)";
    case Design::kMulticluster100:
      return "Multicluster (100)";
    case Design::kDynamicPricing:
      return "DynamicPricing";
    case Design::kDynamicMulticluster:
      return "DynamicMulticluster";
    case Design::kBestLookup:
      return "BestLookup";
    case Design::kMarketplace:
      return "Marketplace";
    case Design::kOmniscient:
      return "Omniscient";
  }
  return "?";
}

DesignTraits traits_of(Design design) noexcept {
  DesignTraits t;
  switch (design) {
    case Design::kBrokered:
      break;
    case Design::kMulticluster2:
    case Design::kMulticluster100:
      t.multi_cluster = true;
      t.cluster_level_optimization = true;
      break;
    case Design::kDynamicPricing:
      t.announces_cost = true;
      t.dynamic_cluster_pricing = true;
      break;
    case Design::kDynamicMulticluster:
      t.multi_cluster = true;
      t.announces_cost = true;
      t.cluster_level_optimization = true;
      t.dynamic_cluster_pricing = true;
      break;
    case Design::kBestLookup:
      t.multi_cluster = true;
      t.announces_cost = true;
      t.announces_capacity = true;
      t.cluster_level_optimization = true;
      t.dynamic_cluster_pricing = true;
      break;
    case Design::kMarketplace:
      t.shares_clients = true;
      t.multi_cluster = true;
      t.announces_cost = true;
      t.announces_capacity = true;
      t.cluster_level_optimization = true;
      t.dynamic_cluster_pricing = true;
      t.traffic_predictability = 1;  // weak
      break;
    case Design::kOmniscient:
      t.shares_clients = true;
      t.multi_cluster = true;
      t.announces_cost = true;
      t.announces_capacity = true;
      t.cluster_level_optimization = true;
      t.dynamic_cluster_pricing = true;
      t.traffic_predictability = 1;
      break;
  }
  return t;
}

std::vector<double> place_background(const Scenario& scenario) {
  return place_background_over(scenario, scenario.background_groups());
}

std::vector<double> place_background_over(const Scenario& scenario,
                                          std::span<const broker::ClientGroup> groups,
                                          const cdn::CandidateMenuCache* menus) {
  const auto& catalog = scenario.catalog();
  std::vector<double> loads(catalog.clusters().size(), 0.0);
  if (menus != nullptr && !(menus->config() == cdn::MatchingConfig{})) {
    throw std::invalid_argument{
        "place_background_over: menu cache must use the default MatchingConfig"};
  }

  // Background traffic belongs to legacy single-CDN contracts: split evenly
  // across the base (non-city-centric) CDNs; each CDN load-balances its
  // slice internally (§2.1 behaviour).
  std::vector<cdn::CdnId> base_cdns;
  for (const cdn::Cdn& c : catalog.cdns()) {
    if (c.model != cdn::DeploymentModel::kCityCentric) base_cdns.push_back(c.id);
  }
  if (base_cdns.empty()) return loads;

  for (const broker::ClientGroup& group : groups) {
    const double slice_clients =
        group.client_count / static_cast<double>(base_cdns.size());
    const double slice_mbps = slice_clients * group.bitrate_mbps;
    if (slice_mbps <= 0.0) continue;
    for (const cdn::CdnId cdn_id : base_cdns) {
      std::vector<cdn::Candidate> built;
      std::span<const cdn::Candidate> candidates;
      if (menus != nullptr) {
        candidates = menus->menu(cdn_id, group.city);
      } else {
        built = cdn::candidates_for(catalog, scenario.mapping(), cdn_id, group.city);
        candidates = built;
      }
      if (candidates.empty()) continue;
      const cdn::Candidate choice =
          cdn::pick_load_balanced(candidates, loads, slice_mbps);
      loads[choice.cluster.value()] += slice_mbps;
    }
  }
  return loads;
}

namespace {

/// Lognormal blur on the broker's own QoE model, used when a design's
/// Announce carries no performance data (Table 2: Brokered, DynamicPricing).
/// For timeline runs (qoe_epoch > 0) the blur splits into a persistent
/// component (the broker's structural estimation bias for this CDN/city)
/// and a fresh per-epoch component (measurement churn between decision
/// rounds) with the same combined magnitude.
constexpr double kQoeNoiseSigma = 0.8;
constexpr double kQoePersistentSigma = 0.65;
constexpr double kQoeEpochSigma = 0.45;  // sqrt(0.65^2 + 0.45^2) ~= 0.8

/// Overflow price (per Mbps) used when the broker only has capacity
/// *estimates*: comparable to a few units of score, so estimate pressure
/// redistributes along the objective instead of acting as a hard wall.
constexpr double kSoftEstimatePenalty = 60.0;

/// How a design prices / sizes / selects bids.
struct DesignPolicy {
  bool single_cluster = false;
  bool flat_price = false;
  /// Whether the Announce step carries per-cluster performance (Table 2).
  /// Without it the broker falls back to its own coarse QoE model, which we
  /// model as the true score blurred by lognormal measurement noise.
  bool announces_performance = true;
  enum class Capacity { kEstimate, kTrue, kNetOfBackground } capacity =
      Capacity::kEstimate;
  bool all_clusters = false;  // Omniscient
  std::size_t bid_count = 100;
};

DesignPolicy policy_of(Design design, const RunConfig& config) {
  DesignPolicy p;
  p.bid_count = config.bid_count;
  switch (design) {
    case Design::kBrokered:
      p.single_cluster = true;
      p.flat_price = true;
      p.announces_performance = false;
      break;
    case Design::kMulticluster2:
      p.flat_price = true;
      p.bid_count = 2;
      break;
    case Design::kMulticluster100:
      p.flat_price = true;
      break;
    case Design::kDynamicPricing:
      p.single_cluster = true;
      p.announces_performance = false;
      break;
    case Design::kDynamicMulticluster:
      break;
    case Design::kBestLookup:
      p.capacity = DesignPolicy::Capacity::kTrue;
      break;
    case Design::kMarketplace:
      p.capacity = DesignPolicy::Capacity::kNetOfBackground;
      break;
    case Design::kOmniscient:
      p.capacity = DesignPolicy::Capacity::kNetOfBackground;
      p.all_clusters = true;
      break;
  }
  return p;
}

}  // namespace

cdn::MatchingConfig menu_config_for(Design design, const RunConfig& config) {
  const DesignPolicy policy = policy_of(design, config);
  cdn::MatchingConfig matching;
  if (!policy.single_cluster && !policy.all_clusters) {
    matching.max_candidates = policy.bid_count;
    matching.score_tolerance = config.menu_tolerance;
  }
  return matching;
}

DesignOutcome run_design(const Scenario& scenario, Design design,
                         const RunConfig& config) {
  return run_design_over(scenario, design, config, scenario.broker_groups(),
                         place_background(scenario));
}

DesignOutcome run_design_over(const Scenario& scenario, Design design,
                              const RunConfig& config,
                              std::span<const broker::ClientGroup> groups,
                              std::span<const double> background_loads) {
  const auto& catalog = scenario.catalog();
  const auto& mapping = scenario.mapping();
  const DesignPolicy policy = policy_of(design, config);

  DesignOutcome outcome;
  outcome.design = design;
  outcome.background_loads.assign(background_loads.begin(), background_loads.end());
  std::vector<broker::BidView> bids;
  bids.reserve(groups.size() * catalog.cdns().size() * 2);

  cdn::MatchingConfig matching_config;
  if (!policy.single_cluster && !policy.all_clusters) {
    matching_config.max_candidates = policy.bid_count;
    matching_config.score_tolerance = config.menu_tolerance;
  }
  // The shared cache can only serve this run when it was built for the exact
  // menu the run needs; Omniscient bypasses menus entirely.
  const cdn::CandidateMenuCache* menus =
      (config.menus != nullptr && !policy.all_clusters &&
       config.menus->config() == matching_config)
          ? config.menus
          : nullptr;

  // The dominant configuration — cached menus, true performance, net-of-
  // background capacity, markup pricing (every Marketplace round) — runs as
  // batched lane sweeps (cdn/score_sweep.hpp) instead of per-candidate
  // struct hops; the arithmetic is identical, so the bids are too.
  const bool sweepable = menus != nullptr && !policy.single_cluster &&
                         policy.announces_performance && !policy.flat_price &&
                         policy.capacity == DesignPolicy::Capacity::kNetOfBackground;

  // Groups are independent: build each group's bids into its own vector and
  // concatenate in group order, so the bid list (and therefore the solve) is
  // identical whether the per-group work ran serially or on a pool.
  const auto build_group_bids =
      [&](const broker::ClientGroup& group) -> std::vector<broker::BidView> {
    std::vector<broker::BidView> group_bids;
    cdn::SweepBuffer sweep;
    for (const cdn::Cdn& cdn_entry : catalog.cdns()) {
      if (cdn_entry.clusters.empty()) continue;

      if (sweepable) {
        const cdn::MenuLanes lanes = menus->lanes(cdn_entry.id, group.city);
        if (lanes.size() == 0) continue;
        cdn::score_sweep(lanes, cdn_entry.markup, outcome.background_loads, sweep);
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          broker::BidView bid;
          bid.share = group.id;
          bid.cdn = cdn_entry.id;
          bid.cluster = cdn::ClusterId{lanes.cluster[i]};
          bid.score = lanes.score[i];
          bid.price = sweep.price[i];
          bid.capacity = sweep.spare[i];
          group_bids.push_back(bid);
        }
        continue;
      }

      std::vector<cdn::Candidate> built;
      std::span<const cdn::Candidate> candidates;
      if (policy.all_clusters) {
        built.reserve(cdn_entry.clusters.size());
        for (const cdn::ClusterId id : cdn_entry.clusters) {
          const cdn::Cluster& cluster = catalog.cluster(id);
          built.push_back(cdn::Candidate{id, mapping.score(group.city, id.value()),
                                         cluster.unit_cost(), cluster.capacity});
        }
        candidates = built;
      } else {
        if (menus != nullptr) {
          candidates = menus->menu(cdn_entry.id, group.city);
        } else {
          built = cdn::candidates_for(catalog, mapping, cdn_entry.id, group.city,
                                      matching_config);
          candidates = built;
        }
        if (candidates.empty()) continue;
        if (policy.single_cluster) {
          // The CDN's answer today: its best-scoring cluster (network-
          // measurement-driven selection, §2.1). Delivery-time load
          // balancing across the CDN's clusters is applied after the
          // broker's decision.
          const auto best = std::min_element(
              candidates.begin(), candidates.end(),
              [](const cdn::Candidate& a, const cdn::Candidate& b) {
                return a.score < b.score;
              });
          built = {*best};
          candidates = built;
        }
      }

      for (const cdn::Candidate& candidate : candidates) {
        broker::BidView bid;
        bid.share = group.id;
        bid.cdn = cdn_entry.id;
        bid.cluster = candidate.cluster;
        bid.score = candidate.score;
        if (!policy.announces_performance) {
          // Coarse broker-side QoE estimate (deterministic per pair): the
          // broker never saw this cluster's score, only its own noisy
          // per-CDN measurements.
          // Keyed on (city, bitrate, cdn, cluster) — stable across epochs
          // even though group ids are re-issued per decision round.
          const auto kbps =
              static_cast<std::uint64_t>(std::llround(group.bitrate_mbps * 1000.0));
          std::uint64_t h = (static_cast<std::uint64_t>(group.city.value()) << 40) ^
                            (kbps << 20) ^
                            (static_cast<std::uint64_t>(cdn_entry.id.value()) << 8) ^
                            candidate.cluster.value();
          if (config.qoe_epoch == 0) {
            core::Rng noise{core::split_mix64(h)};
            bid.score = candidate.score * noise.lognormal(0.0, kQoeNoiseSigma);
          } else {
            std::uint64_t hp = h;
            core::Rng persistent{core::split_mix64(hp)};
            std::uint64_t he = h ^ (config.qoe_epoch * 0x9e3779b97f4a7c15ULL);
            core::Rng fresh{core::split_mix64(he)};
            bid.score = candidate.score *
                        persistent.lognormal(0.0, kQoePersistentSigma) *
                        fresh.lognormal(0.0, kQoeEpochSigma);
          }
        }
        bid.price = policy.flat_price ? cdn_entry.contract_price
                                      : candidate.unit_cost * cdn_entry.markup;
        switch (policy.capacity) {
          case DesignPolicy::Capacity::kEstimate:
            bid.capacity =
                scenario.provisioning().median_capacity[cdn_entry.id.value()];
            break;
          case DesignPolicy::Capacity::kTrue:
            bid.capacity = candidate.capacity;
            break;
          case DesignPolicy::Capacity::kNetOfBackground:
            bid.capacity = std::max(
                0.0, candidate.capacity -
                         outcome.background_loads[candidate.cluster.value()]);
            break;
        }
        group_bids.push_back(bid);
      }
    }
    return group_bids;
  };

  const std::size_t threads = core::ThreadPool::resolve(config.threads);
  if (threads > 1 && groups.size() > 1) {
    core::ThreadPool pool{threads};
    auto per_group = core::parallel_map(
        pool, groups.size(),
        [&](std::size_t i) { return build_group_bids(groups[i]); });
    for (const std::vector<broker::BidView>& group_bids : per_group) {
      bids.insert(bids.end(), group_bids.begin(), group_bids.end());
    }
  } else {
    for (const broker::ClientGroup& group : groups) {
      const auto group_bids = build_group_bids(group);
      bids.insert(bids.end(), group_bids.begin(), group_bids.end());
    }
  }

  // ---- Optimize. ----
  broker::OptimizerConfig optimizer_config;
  optimizer_config.weights = config.weights;
  optimizer_config.solve = config.solve;
  optimizer_config.allow_unbid_groups = config.allow_unbid_groups;
  if (policy.capacity == DesignPolicy::Capacity::kEstimate) {
    // Estimated capacities are hints, not commitments: a real broker pushes
    // past them when its options run out, paying in (estimated) congestion
    // risk rather than treating the estimate as a hard wall. Announced
    // (true) capacities keep the strong default penalty.
    optimizer_config.solve.overflow_penalty = kSoftEstimatePenalty;
  }
  const broker::OptimizeResult result = broker::optimize(groups, bids, optimizer_config);

  // ---- Materialize placements and final loads. ----
  outcome.cluster_loads = outcome.background_loads;
  std::vector<std::size_t> group_of_share(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_share[groups[g].id.value()] = g;
  }
  outcome.placements.reserve(result.allocations.size());
  for (const broker::Allocation& allocation : result.allocations) {
    const broker::BidView& bid = bids[allocation.bid_index];
    Placement placement;
    placement.group = group_of_share[bid.share.value()];
    placement.cluster = bid.cluster;
    placement.clients = allocation.clients;
    placement.price = bid.price;
    // Metrics always use the true path score (delivered QoE), even when the
    // optimizer only had a blurred estimate.
    placement.score =
        mapping.score(groups[placement.group].city, bid.cluster.value());
    outcome.placements.push_back(placement);
    outcome.cluster_loads[bid.cluster.value()] +=
        allocation.clients * groups[placement.group].bitrate_mbps;
  }

  // ---- CDN-internal delivery load balancing (single-cluster designs). ----
  // When the broker only chooses the CDN, cluster selection stays with the
  // CDN's own control plane (§2.1), which shifts clients from an overloaded
  // cluster onto co-located siblings at delivery time. Multi-cluster designs
  // hand that choice to the broker, so their overloads stand — exactly the
  // congestion contrast of Table 3.
  if (policy.single_cluster) {
    rebalance_within_cdn_over(scenario, outcome, groups);
  }
  return outcome;
}

void rebalance_within_cdn(const Scenario& scenario, DesignOutcome& outcome) {
  rebalance_within_cdn_over(scenario, outcome, scenario.broker_groups());
}

void rebalance_within_cdn_over(const Scenario& scenario, DesignOutcome& outcome,
                               std::span<const broker::ClientGroup> groups) {
  const auto& catalog = scenario.catalog();
  const auto& mapping = scenario.mapping();

  // Same-CDN, same-city sibling lists.
  const std::size_t original_count = outcome.placements.size();
  for (std::size_t i = 0; i < original_count; ++i) {
    // Copy the fields we need: push_back below invalidates references.
    const Placement source = outcome.placements[i];
    const cdn::Cluster& cluster = catalog.cluster(source.cluster);
    const double load = outcome.cluster_loads[source.cluster.value()];
    if (load <= cluster.capacity || source.clients <= 0.0) continue;

    const broker::ClientGroup& group = groups[source.group];
    const double bitrate = group.bitrate_mbps;
    double movable_mbps = std::min(source.clients * bitrate, load - cluster.capacity);

    // Same-CDN siblings ordered by distance from the overloaded site:
    // co-located clusters first, then progressively farther ones.
    std::vector<cdn::ClusterId> siblings;
    for (const cdn::ClusterId id : catalog.clusters_of(cluster.cdn)) {
      if (id != source.cluster) siblings.push_back(id);
    }
    std::sort(siblings.begin(), siblings.end(),
              [&](cdn::ClusterId a, cdn::ClusterId b) {
                return scenario.world().distance_km(cluster.city,
                                                    catalog.cluster(a).city) <
                       scenario.world().distance_km(cluster.city,
                                                    catalog.cluster(b).city);
              });

    for (const cdn::ClusterId sibling_id : siblings) {
      if (movable_mbps <= 0.0) break;
      const cdn::Cluster& sibling = catalog.cluster(sibling_id);
      const double headroom =
          sibling.capacity - outcome.cluster_loads[sibling_id.value()];
      if (headroom <= 0.0) continue;

      const double moved_mbps = std::min(movable_mbps, headroom);
      const double moved_clients = moved_mbps / bitrate;
      Placement moved;
      moved.group = source.group;
      moved.cluster = sibling_id;
      moved.clients = moved_clients;
      moved.price = source.price;  // the CP still pays the announced price
      moved.score = mapping.score(group.city, sibling_id.value());
      outcome.placements.push_back(moved);

      outcome.placements[i].clients -= moved_clients;
      outcome.cluster_loads[source.cluster.value()] -= moved_mbps;
      outcome.cluster_loads[sibling_id.value()] += moved_mbps;
      movable_mbps -= moved_mbps;
    }
  }
  std::erase_if(outcome.placements,
                [](const Placement& p) { return p.clients <= 1e-9; });
}

}  // namespace vdx::sim
