#include "sim/multibroker.hpp"

#include <algorithm>
#include <stdexcept>

#include "cdn/matching.hpp"
#include "cdn/menu_cache.hpp"
#include "core/parallel.hpp"

namespace vdx::sim {

MultiBrokerResult run_multibroker(const Scenario& scenario,
                                  const MultiBrokerConfig& config) {
  if (config.broker_count == 0) {
    throw std::invalid_argument{"MultiBrokerConfig: broker_count must be > 0"};
  }
  if (config.design != Design::kBestLookup && config.design != Design::kMarketplace) {
    throw std::invalid_argument{
        "run_multibroker: only BestLookup and Marketplace are meaningful"};
  }
  const bool marketplace = config.design == Design::kMarketplace;
  const auto& catalog = scenario.catalog();
  const auto& mapping = scenario.mapping();

  MultiBrokerResult result;
  result.broker_count = config.broker_count;
  result.design = config.design;
  result.broker_clients.assign(config.broker_count, 0.0);

  // Partition the trace's sessions across brokers by session id hash.
  std::vector<std::vector<trace::Session>> broker_sessions(config.broker_count);
  for (const trace::Session& s : scenario.broker_trace().sessions()) {
    std::uint64_t h = s.id.value();
    broker_sessions[core::split_mix64(h) % config.broker_count].push_back(s);
  }

  const auto background = place_background(scenario);

  DesignOutcome combined;
  combined.design = config.design;
  combined.background_loads = background;
  combined.cluster_loads = background;

  cdn::MatchingConfig menu;
  menu.max_candidates = config.run.bid_count;
  menu.score_tolerance = config.run.menu_tolerance;

  // Every broker asks every CDN for the same menus; the brokers differ only
  // in remaining capacity. Build the menus once, share read-only.
  core::ThreadPool pool{core::ThreadPool::resolve(config.run.threads)};
  const cdn::CandidateMenuCache menus{catalog, mapping,
                                      scenario.world().cities().size(), menu, &pool};

  // Capacity each CDN has already committed to earlier brokers (Marketplace
  // only: Share + Accept give the CDN cross-broker visibility).
  std::vector<double> committed(catalog.clusters().size(), 0.0);

  std::vector<broker::ClientGroup> all_groups;

  // The broker loop itself is inherently sequential — each solve consumes
  // capacity the next broker must see — but a broker's per-group bid
  // building is independent; it runs on the pool and concatenates in group
  // order, keeping the bid list byte-identical to the serial path.
  for (std::size_t b = 0; b < config.broker_count; ++b) {
    const auto groups = broker::group_sessions(broker_sessions[b]);
    if (groups.empty()) continue;
    result.broker_clients[b] = broker::total_clients(groups);

    const auto build_group_bids =
        [&](std::size_t g) -> std::vector<broker::BidView> {
      const broker::ClientGroup& group = groups[g];
      std::vector<broker::BidView> group_bids;
      for (const cdn::Cdn& cdn_entry : catalog.cdns()) {
        if (cdn_entry.clusters.empty()) continue;
        for (const cdn::Candidate& candidate : menus.menu(cdn_entry.id, group.city)) {
          broker::BidView bid;
          bid.share = group.id;
          bid.cdn = cdn_entry.id;
          bid.cluster = candidate.cluster;
          bid.score = candidate.score;
          bid.price = candidate.unit_cost * cdn_entry.markup;
          if (marketplace) {
            bid.capacity = std::max(
                0.0, candidate.capacity - background[candidate.cluster.value()] -
                         committed[candidate.cluster.value()]);
          } else {
            // BestLookup: true capacity, blind to background AND to what the
            // other brokers are about to do with the very same number.
            bid.capacity = candidate.capacity;
          }
          if (bid.capacity <= 0.0) continue;
          group_bids.push_back(bid);
        }
      }
      return group_bids;
    };

    std::vector<broker::BidView> bids;
    const auto per_group = core::parallel_map(pool, groups.size(), build_group_bids);
    for (const std::vector<broker::BidView>& group_bids : per_group) {
      bids.insert(bids.end(), group_bids.begin(), group_bids.end());
    }

    broker::OptimizerConfig optimizer;
    optimizer.weights = config.run.weights;
    optimizer.solve = config.run.solve;
    const broker::OptimizeResult solved = broker::optimize(groups, bids, optimizer);

    const std::size_t group_offset = all_groups.size();
    std::vector<std::size_t> group_of_share(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      group_of_share[groups[g].id.value()] = g;
    }
    all_groups.insert(all_groups.end(), groups.begin(), groups.end());

    for (const broker::Allocation& allocation : solved.allocations) {
      const broker::BidView& bid = bids[allocation.bid_index];
      const std::size_t local_group = group_of_share[bid.share.value()];
      Placement placement;
      placement.group = group_offset + local_group;
      placement.cluster = bid.cluster;
      placement.clients = allocation.clients;
      placement.price = bid.price;
      placement.score = mapping.score(groups[local_group].city, bid.cluster.value());
      const double mbps = allocation.clients * groups[local_group].bitrate_mbps;
      combined.cluster_loads[bid.cluster.value()] += mbps;
      committed[bid.cluster.value()] += mbps;
      combined.placements.push_back(placement);
    }
  }

  result.metrics = compute_metrics_over(scenario, combined, all_groups);
  for (const cdn::Cluster& cluster : catalog.clusters()) {
    // 0.5% slack: solver demand-scale quantization can brush the boundary.
    if (cluster.capacity > 0.0 &&
        combined.cluster_loads[cluster.id.value()] > cluster.capacity * 1.005 + 1e-6) {
      ++result.overbooked_clusters;
    }
  }
  return result;
}

}  // namespace vdx::sim
