// Multi-broker overbooking (paper §4.2, BestLookup's fatal flaw):
//
// "If there are multiple brokers or significant non-broker traffic,
//  'overbooking' of traffic sources may still overwhelm capacity (e.g., a
//  cluster with capacity 10 units may receive 9 units of traffic each from
//  two brokers)."
//
// The trace's sessions are split across B independent brokers. Under
// BestLookup each broker sees the same full cluster capacities and fills
// them independently — combined load can approach B x capacity. Under the
// Marketplace, the Share step tells CDNs exactly which clients each broker
// is auctioning, so CDNs commit disjoint slices of their remaining capacity
// to each broker and overbooking cannot happen.
#pragma once

#include "sim/designs.hpp"
#include "sim/metrics.hpp"

namespace vdx::sim {

struct MultiBrokerConfig {
  std::size_t broker_count = 2;
  /// Only BestLookup and Marketplace are meaningful here.
  Design design = Design::kBestLookup;
  RunConfig run;
};

struct MultiBrokerResult {
  std::size_t broker_count = 0;
  Design design = Design::kBestLookup;
  /// Combined over all brokers' placements.
  DesignMetrics metrics;
  /// Clients per broker (diagnostics).
  std::vector<double> broker_clients;
  /// Clusters whose combined load exceeds capacity.
  std::size_t overbooked_clusters = 0;
};

/// Splits the broker trace across `broker_count` independent brokers and
/// runs one decision round each. Throws for designs other than kBestLookup
/// and kMarketplace.
[[nodiscard]] MultiBrokerResult run_multibroker(const Scenario& scenario,
                                                const MultiBrokerConfig& config = {});

}  // namespace vdx::sim
