// Hybrid pricing (paper §8, "Adoption incentives"):
//
// "More nuanced CDN pricing schemes (e.g., low-but-variable pricing combined
//  with high-but-flat pricing, similar to Amazon EC2) could offer CPs more
//  control in meeting their goals, while retaining similarity to today's
//  flat-rate pricing."
//
// Every CDN makes both offers simultaneously: its traditional flat-rate
// single-cluster answer (high-but-flat, contract price) AND its marketplace
// menu (low-but-variable, per-cluster cost pricing with committed capacity).
// The broker optimizes over the union; we report how the traffic splits —
// the adoption question: does anything stay on flat contracts once dynamic
// menus exist, and what does the blend cost?
#pragma once

#include "sim/designs.hpp"
#include "sim/metrics.hpp"

namespace vdx::sim {

struct HybridOutcome {
  DesignOutcome outcome;      // combined placements/loads
  DesignMetrics metrics;
  double flat_clients = 0.0;     // clients served under flat-rate offers
  double dynamic_clients = 0.0;  // clients served under marketplace offers
};

/// Runs the hybrid-pricing marketplace over the scenario's broker clients.
[[nodiscard]] HybridOutcome run_hybrid_pricing(const Scenario& scenario,
                                               const RunConfig& config = {});

}  // namespace vdx::sim
