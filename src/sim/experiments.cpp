#include "sim/experiments.hpp"

#include <numeric>

namespace vdx::sim {

std::vector<Fig3Row> fig3_country_costs(const Scenario& scenario) {
  const auto& world = scenario.world();
  const double average = world.demand_weighted_cost_factor();
  std::vector<Fig3Row> rows;
  rows.reserve(world.countries().size());
  for (const geo::Country& country : world.countries()) {
    rows.push_back(Fig3Row{country.name, country.bandwidth_cost_factor / average});
  }
  return rows;
}

std::vector<double> fig4_moved_series(const Scenario& scenario, double bin_s) {
  return trace::moved_fraction_timeseries(scenario.broker_trace(), bin_s);
}

Fig5Result fig5_city_usage(const Scenario& scenario) {
  Fig5Result result;
  result.usage = trace::city_usage(scenario.broker_trace(), scenario.world());
  for (std::size_t c = 0; c < trace::kTraceCdnCount; ++c) {
    result.fits[c] = trace::usage_fit(result.usage, static_cast<trace::TraceCdn>(c));
  }
  return result;
}

std::vector<trace::CountryUsage> fig7_country_usage(const Scenario& scenario,
                                                    std::size_t min_requests) {
  return trace::country_usage(scenario.broker_trace(), scenario.world(), min_requests);
}

net::AlternativeStats table1_alternatives(const Scenario& scenario, double tolerance) {
  // "The CDN data" comes from one major, highly distributed CDN — our CDN 1.
  const cdn::Cdn& major = scenario.catalog().cdns().front();
  std::vector<std::size_t> subset;
  subset.reserve(major.clusters.size());
  for (const cdn::ClusterId id : major.clusters) subset.push_back(id.value());
  return scenario.mapping().alternative_stats(scenario.world(), subset, tolerance);
}

std::vector<Table3Row> table3_design_comparison(const Scenario& scenario,
                                                const RunConfig& config) {
  std::vector<Table3Row> rows;
  for (const Design design : kAllDesigns) {
    const DesignOutcome outcome = run_design(scenario, design, config);
    rows.push_back(Table3Row{design, compute_metrics(scenario, outcome)});
  }
  return rows;
}

SettlementComparison settlement_comparison(const Scenario& scenario,
                                           const RunConfig& config) {
  const DesignOutcome brokered = run_design(scenario, Design::kBrokered, config);
  const DesignOutcome vdx = run_design(scenario, Design::kMarketplace, config);
  SettlementComparison out;
  out.brokered_cdn = per_cdn_accounts(scenario, brokered);
  out.vdx_cdn = per_cdn_accounts(scenario, vdx);
  out.brokered_country = per_country_accounts(scenario, brokered);
  out.vdx_country = per_country_accounts(scenario, vdx);
  return out;
}

std::vector<Fig17Point> fig17_tradeoff(const Scenario& scenario,
                                       std::span<const double> cost_weights,
                                       std::span<const Design> designs) {
  std::vector<Fig17Point> points;
  points.reserve(cost_weights.size() * designs.size());
  for (const Design design : designs) {
    for (const double wc : cost_weights) {
      RunConfig config;
      config.weights.cost = wc;
      const DesignOutcome outcome = run_design(scenario, design, config);
      const DesignMetrics metrics = compute_metrics(scenario, outcome);
      points.push_back(
          Fig17Point{design, wc, metrics.median_cost, metrics.median_distance_miles});
    }
  }
  return points;
}

std::vector<Fig18Point> fig18_bid_count(const Scenario& scenario,
                                        std::span<const std::size_t> bid_counts,
                                        double cost_weight) {
  std::vector<Fig18Point> points;
  points.reserve(bid_counts.size());
  for (const std::size_t bids : bid_counts) {
    RunConfig config;
    config.bid_count = bids;
    config.weights.cost = cost_weight;
    const DesignOutcome outcome = run_design(scenario, Design::kMarketplace, config);
    const DesignMetrics metrics = compute_metrics(scenario, outcome);
    points.push_back(Fig18Point{bids, metrics.mean_cost, metrics.mean_score});
  }
  return points;
}

}  // namespace vdx::sim
