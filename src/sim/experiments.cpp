#include "sim/experiments.hpp"

#include <numeric>

#include "cdn/menu_cache.hpp"
#include "core/parallel.hpp"

namespace vdx::sim {

namespace {

/// The menu config shared by every multi-cluster design that keeps the run's
/// own bid_count (Multicluster-100, DynamicMulticluster, BestLookup,
/// Marketplace). Designs with a different menu (Brokered, Multicluster-2,
/// Omniscient) simply fail run_design's config check and build on the fly.
cdn::MatchingConfig common_matching(const RunConfig& config) {
  cdn::MatchingConfig matching;
  matching.max_candidates = config.bid_count;
  matching.score_tolerance = config.menu_tolerance;
  return matching;
}

}  // namespace

std::vector<Fig3Row> fig3_country_costs(const Scenario& scenario) {
  const auto& world = scenario.world();
  const double average = world.demand_weighted_cost_factor();
  std::vector<Fig3Row> rows;
  rows.reserve(world.countries().size());
  for (const geo::Country& country : world.countries()) {
    rows.push_back(Fig3Row{country.name, country.bandwidth_cost_factor / average});
  }
  return rows;
}

std::vector<double> fig4_moved_series(const Scenario& scenario, double bin_s) {
  return trace::moved_fraction_timeseries(scenario.broker_trace(), bin_s);
}

Fig5Result fig5_city_usage(const Scenario& scenario) {
  Fig5Result result;
  result.usage = trace::city_usage(scenario.broker_trace(), scenario.world());
  for (std::size_t c = 0; c < trace::kTraceCdnCount; ++c) {
    result.fits[c] = trace::usage_fit(result.usage, static_cast<trace::TraceCdn>(c));
  }
  return result;
}

std::vector<trace::CountryUsage> fig7_country_usage(const Scenario& scenario,
                                                    std::size_t min_requests) {
  return trace::country_usage(scenario.broker_trace(), scenario.world(), min_requests);
}

net::AlternativeStats table1_alternatives(const Scenario& scenario, double tolerance) {
  // "The CDN data" comes from one major, highly distributed CDN — our CDN 1.
  const cdn::Cdn& major = scenario.catalog().cdns().front();
  std::vector<std::size_t> subset;
  subset.reserve(major.clusters.size());
  for (const cdn::ClusterId id : major.clusters) subset.push_back(id.value());
  return scenario.mapping().alternative_stats(scenario.world(), subset, tolerance);
}

std::vector<Table3Row> table3_design_comparison(const Scenario& scenario,
                                                const RunConfig& config) {
  // Design runs are independent: parallelize across designs (config.threads)
  // and keep each run's inner loop serial. parallel_map collects rows in
  // design order, so the table is identical at any thread count.
  core::ThreadPool pool{core::ThreadPool::resolve(config.threads)};
  const cdn::CandidateMenuCache menus{scenario.catalog(), scenario.mapping(),
                                      scenario.world().cities().size(),
                                      common_matching(config), &pool};
  RunConfig inner = config;
  inner.threads = 1;
  inner.menus = &menus;
  return core::parallel_map(pool, std::size(kAllDesigns), [&](std::size_t i) {
    const Design design = kAllDesigns[i];
    const DesignOutcome outcome = run_design(scenario, design, inner);
    return Table3Row{design, compute_metrics(scenario, outcome)};
  });
}

SettlementComparison settlement_comparison(const Scenario& scenario,
                                           const RunConfig& config) {
  core::ThreadPool pool{core::ThreadPool::resolve(config.threads)};
  const cdn::CandidateMenuCache menus{scenario.catalog(), scenario.mapping(),
                                      scenario.world().cities().size(),
                                      common_matching(config), &pool};
  RunConfig inner = config;
  inner.threads = 1;
  inner.menus = &menus;
  const Design designs[] = {Design::kBrokered, Design::kMarketplace};
  const auto outcomes = core::parallel_map(pool, std::size(designs), [&](std::size_t i) {
    return run_design(scenario, designs[i], inner);
  });
  SettlementComparison out;
  out.brokered_cdn = per_cdn_accounts(scenario, outcomes[0]);
  out.vdx_cdn = per_cdn_accounts(scenario, outcomes[1]);
  out.brokered_country = per_country_accounts(scenario, outcomes[0]);
  out.vdx_country = per_country_accounts(scenario, outcomes[1]);
  return out;
}

std::vector<Fig17Point> fig17_tradeoff(const Scenario& scenario,
                                       std::span<const double> cost_weights,
                                       std::span<const Design> designs,
                                       std::size_t threads) {
  core::ThreadPool pool{core::ThreadPool::resolve(threads)};
  const cdn::CandidateMenuCache menus{scenario.catalog(), scenario.mapping(),
                                      scenario.world().cities().size(),
                                      common_matching(RunConfig{}), &pool};
  const std::size_t count = cost_weights.size() * designs.size();
  return core::parallel_map(pool, count, [&](std::size_t i) {
    const Design design = designs[i / cost_weights.size()];
    const double wc = cost_weights[i % cost_weights.size()];
    RunConfig config;
    config.weights.cost = wc;
    config.menus = &menus;
    const DesignOutcome outcome = run_design(scenario, design, config);
    const DesignMetrics metrics = compute_metrics(scenario, outcome);
    return Fig17Point{design, wc, metrics.median_cost, metrics.median_distance_miles};
  });
}

std::vector<Fig18Point> fig18_bid_count(const Scenario& scenario,
                                        std::span<const std::size_t> bid_counts,
                                        double cost_weight, std::size_t threads) {
  // Each point uses a different menu size, so no shared cache applies here.
  core::ThreadPool pool{core::ThreadPool::resolve(threads)};
  return core::parallel_map(pool, bid_counts.size(), [&](std::size_t i) {
    RunConfig config;
    config.bid_count = bid_counts[i];
    config.weights.cost = cost_weight;
    const DesignOutcome outcome = run_design(scenario, Design::kMarketplace, config);
    const DesignMetrics metrics = compute_metrics(scenario, outcome);
    return Fig18Point{bid_counts[i], metrics.mean_cost, metrics.mean_score};
  });
}

}  // namespace vdx::sim
