#include "sim/timeline_detail.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace vdx::sim::detail {

std::uint64_t group_key(geo::CityId city, double bitrate_mbps) {
  const auto kbps = static_cast<std::uint64_t>(std::llround(bitrate_mbps * 1000.0));
  return (static_cast<std::uint64_t>(city.value()) << 32) | kbps;
}

namespace {

/// Shared tail of both assign_sessions overloads: the sequential quota fill
/// distributing each group's placements (cluster order) over its sessions
/// (id order), then the canonical id sort.
Assignment fill_quotas(std::span<const broker::ClientGroup> groups,
                       const std::vector<std::vector<std::uint32_t>>& sessions_of,
                       const DesignOutcome& outcome) {
  // Group -> ordered placements.
  std::vector<std::vector<const Placement*>> per_group(groups.size());
  for (const Placement& p : outcome.placements) per_group[p.group].push_back(&p);
  for (auto& list : per_group) {
    std::sort(list.begin(), list.end(), [](const Placement* a, const Placement* b) {
      return a->cluster < b->cluster;
    });
  }

  Assignment assignment;
  assignment.reserve(
      std::accumulate(sessions_of.begin(), sessions_of.end(), std::size_t{0},
                      [](std::size_t n, const auto& v) { return n + v.size(); }));
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& list = per_group[g];
    if (list.empty()) continue;
    // Sequential quota fill: placement i serves the next round(clients_i)
    // sessions. Quotas sum to the group size up to rounding; the final
    // placement absorbs the remainder.
    std::size_t next = 0;
    double carry = 0.0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      double quota = list[i]->clients + carry;
      std::size_t take = static_cast<std::size_t>(std::llround(quota));
      carry = quota - static_cast<double>(take);
      if (i + 1 == list.size()) take = sessions_of[g].size() - next;  // remainder
      for (std::size_t k = 0; k < take && next < sessions_of[g].size(); ++k, ++next) {
        assignment.emplace_back(sessions_of[g][next], list[i]->cluster);
      }
    }
  }
  // Per-group runs are id-ascending but groups interleave; one sort restores
  // the canonical order (ids are unique, so the order is total).
  std::sort(assignment.begin(), assignment.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return assignment;
}

}  // namespace

Assignment assign_sessions(std::span<const SessionRef> sessions,
                           std::span<const broker::ClientGroup> groups,
                           const DesignOutcome& outcome) {
  std::unordered_map<std::uint64_t, std::size_t> group_of_key;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_key.emplace(group_key(groups[g].city, groups[g].bitrate_mbps), g);
  }

  // Sessions of each group in id order.
  std::vector<std::vector<std::uint32_t>> sessions_of(groups.size());
  for (const SessionRef& s : sessions) {
    const auto it = group_of_key.find(group_key(s.city, s.bitrate_mbps));
    if (it != group_of_key.end()) sessions_of[it->second].push_back(s.id);
  }
  return fill_quotas(groups, sessions_of, outcome);
}

Assignment assign_sessions(SessionStore& store, const DesignOutcome& outcome) {
  const auto groups = store.groups();
  std::vector<std::vector<std::uint32_t>> sessions_of(groups.size());
  store.for_each_live([&](std::uint32_t id, std::uint32_t slot) {
    sessions_of[store.group_of_slot(slot)].push_back(id);
  });
  return fill_quotas(groups, sessions_of, outcome);
}

ChurnTracker::Saved ChurnTracker::save() const {
  Saved saved;
  saved.previous.reserve(previous_.size());
  for (const auto& [session, cluster] : previous_) {
    saved.previous.emplace_back(session, cluster.value());
  }
  saved.sum = sum_;
  saved.weight = weight_;
  return saved;  // previous_ is already id-ascending
}

void ChurnTracker::restore(const Saved& saved) {
  previous_.clear();
  previous_.reserve(saved.previous.size());
  for (const auto& [session, cluster] : saved.previous) {
    previous_.emplace_back(session, cdn::ClusterId{cluster});
  }
  // Decoders may hand back arbitrary order; canonicalize once.
  if (!std::is_sorted(previous_.begin(), previous_.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; })) {
    std::sort(previous_.begin(), previous_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  sum_ = saved.sum;
  weight_ = saved.weight;
}

void ChurnTracker::observe(const cdn::CdnCatalog& catalog, Assignment assignment,
                           EpochReport& report) {
  if (!previous_.empty()) {
    std::size_t surviving = 0;
    std::size_t cdn_switched = 0;
    std::size_t cluster_switched = 0;
    // Both assignments are id-ascending: a linear merge finds the survivors.
    std::size_t p = 0;
    for (const auto& [session, cluster] : assignment) {
      while (p < previous_.size() && previous_[p].first < session) ++p;
      if (p == previous_.size()) break;
      if (previous_[p].first != session) continue;
      const cdn::ClusterId before = previous_[p].second;
      ++surviving;
      if (before != cluster) ++cluster_switched;
      if (catalog.cluster(before).cdn != catalog.cluster(cluster).cdn) {
        ++cdn_switched;
      }
    }
    if (surviving > 0) {
      report.cdn_switch_fraction =
          static_cast<double>(cdn_switched) / static_cast<double>(surviving);
      report.cluster_switch_fraction =
          static_cast<double>(cluster_switched) / static_cast<double>(surviving);
      sum_ += report.cdn_switch_fraction * static_cast<double>(surviving);
      weight_ += static_cast<double>(surviving);
    }
  }
  previous_ = std::move(assignment);
}

}  // namespace vdx::sim::detail
