#include "sim/timeline_detail.hpp"

#include <algorithm>
#include <cmath>

namespace vdx::sim::detail {

std::uint64_t group_key(geo::CityId city, double bitrate_mbps) {
  const auto kbps = static_cast<std::uint64_t>(std::llround(bitrate_mbps * 1000.0));
  return (static_cast<std::uint64_t>(city.value()) << 32) | kbps;
}

Assignment assign_sessions(std::span<const SessionRef> sessions,
                           std::span<const broker::ClientGroup> groups,
                           const DesignOutcome& outcome) {
  // Group -> ordered placements.
  std::vector<std::vector<const Placement*>> per_group(groups.size());
  for (const Placement& p : outcome.placements) per_group[p.group].push_back(&p);
  for (auto& list : per_group) {
    std::sort(list.begin(), list.end(), [](const Placement* a, const Placement* b) {
      return a->cluster < b->cluster;
    });
  }

  std::unordered_map<std::uint64_t, std::size_t> group_of_key;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_key.emplace(group_key(groups[g].city, groups[g].bitrate_mbps), g);
  }

  // Sessions of each group in id order.
  std::vector<std::vector<const SessionRef*>> sessions_of(groups.size());
  for (const SessionRef& s : sessions) {
    const auto it = group_of_key.find(group_key(s.city, s.bitrate_mbps));
    if (it != group_of_key.end()) sessions_of[it->second].push_back(&s);
  }

  Assignment assignment;
  assignment.reserve(sessions.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& list = per_group[g];
    if (list.empty()) continue;
    // Sequential quota fill: placement i serves the next round(clients_i)
    // sessions. Quotas sum to the group size up to rounding; the final
    // placement absorbs the remainder.
    std::size_t next = 0;
    double carry = 0.0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      double quota = list[i]->clients + carry;
      std::size_t take = static_cast<std::size_t>(std::llround(quota));
      carry = quota - static_cast<double>(take);
      if (i + 1 == list.size()) take = sessions_of[g].size() - next;  // remainder
      for (std::size_t k = 0; k < take && next < sessions_of[g].size(); ++k, ++next) {
        assignment.emplace(sessions_of[g][next]->id, list[i]->cluster);
      }
    }
  }
  return assignment;
}

ChurnTracker::Saved ChurnTracker::save() const {
  Saved saved;
  saved.previous.reserve(previous_.size());
  for (const auto& [session, cluster] : previous_) {
    saved.previous.emplace_back(session, cluster.value());
  }
  std::sort(saved.previous.begin(), saved.previous.end());
  saved.sum = sum_;
  saved.weight = weight_;
  return saved;
}

void ChurnTracker::restore(const Saved& saved) {
  previous_.clear();
  previous_.reserve(saved.previous.size());
  for (const auto& [session, cluster] : saved.previous) {
    previous_.emplace(session, cdn::ClusterId{cluster});
  }
  sum_ = saved.sum;
  weight_ = saved.weight;
}

void ChurnTracker::observe(const cdn::CdnCatalog& catalog, Assignment assignment,
                           EpochReport& report) {
  if (!previous_.empty()) {
    std::size_t surviving = 0;
    std::size_t cdn_switched = 0;
    std::size_t cluster_switched = 0;
    for (const auto& [session, cluster] : assignment) {
      const auto before = previous_.find(session);
      if (before == previous_.end()) continue;
      ++surviving;
      if (before->second != cluster) ++cluster_switched;
      if (catalog.cluster(before->second).cdn != catalog.cluster(cluster).cdn) {
        ++cdn_switched;
      }
    }
    if (surviving > 0) {
      report.cdn_switch_fraction =
          static_cast<double>(cdn_switched) / static_cast<double>(surviving);
      report.cluster_switch_fraction =
          static_cast<double>(cluster_switched) / static_cast<double>(surviving);
      sum_ += report.cdn_switch_fraction * static_cast<double>(surviving);
      weight_ += static_cast<double>(surviving);
    }
  }
  previous_ = std::move(assignment);
}

}  // namespace vdx::sim::detail
