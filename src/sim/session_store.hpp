// SessionStore: the active session population as structure-of-arrays.
//
// Both incremental engines — the streaming timeline's ActiveSet and the
// serving daemon's population — used to keep active sessions in a
// std::map<id, Rec> plus a (city, kbps, isp) -> count tree that was erased
// and reinserted every epoch. At trace scale the node-based containers
// dominate the advance/group sweep: every arrival, departure, group rebuild
// and shed chases pointers. This store keeps the same population as parallel
// flat arrays (id, city, isp, kbps, bitrate, departure time, assigned
// cluster) indexed by slot, with
//
//  * a free-list so departed slots are reused without reallocation,
//  * an id-ascending order index (arrival order == id order, so appends keep
//    it sorted; departures leave tombstones that are skipped lazily and
//    compacted amortized-O(1)),
//  * dense per-(rung, city) count arrays replacing the erase-on-zero count
//    map (a "rung" is one quantized kbps value; the rung dictionary is tiny
//    and iterated in kbps order, so groups() reproduces the old
//    (city, kbps, isp) tree order byte-identically), and
//  * a lazily-validated (end_s, id) departure min-heap shared by both
//    engines.
//
// Everything observable — group order, shed victim order, cursor
// serialization order — is pinned to the std::map semantics the previous
// implementations had, so exports and checkpoints stay byte-identical.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "broker/grouping.hpp"
#include "cdn/cluster.hpp"
#include "state/checkpoint.hpp"

namespace vdx::sim {

class SessionStore {
 public:
  static constexpr std::uint32_t kNoCluster = UINT32_MAX;

  /// `city_hint` presizes the dense count rows (they grow on demand).
  explicit SessionStore(std::size_t city_hint = 0);

  /// Admits one session at midpoint `now` unless it already ended (a session
  /// that lived entirely between two samples never becomes active). Returns
  /// whether the population changed. Ids must be unique; arrival order ==
  /// ascending id order is the fast path (out-of-order ids still work).
  bool admit(std::uint32_t id, core::CityId city, double bitrate_mbps, double end_s,
             double now, std::uint32_t isp = 0);

  /// Drops every session with end_s <= t (half-open [arrival, end) activity).
  /// Returns the number dropped.
  std::size_t drop_until(double t);

  /// Sheds up to `n` active sessions, lowest value first (ascending bitrate,
  /// id as the deterministic tiebreak — thread count and chunking never
  /// change the victim set). Returns the number actually shed.
  std::size_t shed_lowest(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Client groups of the active population — exactly what
  /// broker::group_sessions would return for it (same key order, dense ids,
  /// integral client counts).
  [[nodiscard]] std::span<const broker::ClientGroup> groups();

  /// Index into groups() for a live slot (the group covering its
  /// (city, rung) cell). Only valid after groups() since the last mutation.
  [[nodiscard]] std::uint32_t group_of_slot(std::uint32_t slot) const {
    return group_of_cell_[rung_[slot]][city_[slot]];
  }

  /// Visits live sessions in ascending id order: fn(id, slot).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (const OrderEntry& e : order_) {
      if (ids_[e.slot] == e.id) fn(e.id, e.slot);
    }
  }

  [[nodiscard]] core::CityId city_of_slot(std::uint32_t slot) const {
    return core::CityId{city_[slot]};
  }
  [[nodiscard]] double bitrate_of_slot(std::uint32_t slot) const {
    return bitrate_[slot];
  }

  /// Records the epoch's session -> cluster assignment into the per-slot
  /// assigned-cluster lane. `pairs` must be id-ascending (the canonical
  /// Assignment order); sessions absent from it lose their assignment.
  void apply_assignment(
      std::span<const std::pair<std::uint32_t, cdn::ClusterId>> pairs);

  /// Serving cluster recorded by the last apply_assignment, or kNoCluster.
  [[nodiscard]] std::uint32_t assigned_cluster_of_slot(std::uint32_t slot) const {
    return assigned_epoch_[slot] == assignment_epoch_ ? assigned_[slot] : kNoCluster;
  }

  /// Canonical id-order serialization (StreamCursor.active order). The
  /// departure heap and counts are derived state and are rebuilt on
  /// restore(); (end_s, id) is a total order, so the rebuilt heap pops in
  /// exactly the original sequence.
  [[nodiscard]] state::StreamCursor cursor() const;

  /// Rebuilds the population from a cursor's active list. Entries are
  /// sorted by id if needed; duplicate ids keep the first occurrence (the
  /// semantics of the map-based restore this replaces).
  void restore(std::span<const state::ActiveSession> active);

  // Introspection for the structural tests.
  [[nodiscard]] std::size_t slot_capacity() const noexcept { return ids_.size(); }
  [[nodiscard]] std::size_t free_count() const noexcept { return free_.size(); }

 private:
  static constexpr std::uint32_t kFreeId = UINT32_MAX;

  struct OrderEntry {
    std::uint32_t id = 0;
    std::uint32_t slot = 0;
  };
  struct HeapEntry {
    double end_s = 0.0;
    std::uint32_t id = 0;
    std::uint32_t slot = 0;
  };
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      return a.end_s > b.end_s || (a.end_s == b.end_s && a.id > b.id);
    }
  };

  void insert(std::uint32_t id, std::uint32_t city, std::uint32_t isp,
              double bitrate_mbps, double end_s);
  void erase_slot(std::uint32_t slot);
  [[nodiscard]] std::uint32_t rung_index(std::int64_t kbps);
  void ensure_city(std::uint32_t city);
  void maybe_compact_order();

  // Parallel slot arrays. ids_[slot] == kFreeId marks a free slot; an order
  // or heap entry is live iff ids_[slot] still equals its recorded id (slots
  // are reused only by strictly newer ids).
  std::vector<std::uint32_t> ids_;
  std::vector<std::uint32_t> city_;
  std::vector<std::uint32_t> isp_;
  std::vector<std::uint32_t> rung_;
  std::vector<double> bitrate_;
  std::vector<double> end_s_;
  std::vector<std::uint32_t> assigned_;
  std::vector<std::uint32_t> assigned_epoch_;
  std::vector<std::uint32_t> free_;

  // Id-ascending order index with lazy tombstones.
  std::vector<OrderEntry> order_;
  std::size_t order_dead_ = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> departures_;

  // Rung dictionary (quantized kbps ladder, tiny) + dense counts per rung.
  std::vector<std::int64_t> rung_kbps_;
  std::vector<std::uint32_t> rung_by_kbps_;  // rung indices sorted by kbps
  std::vector<std::vector<std::uint32_t>> counts_;        // [rung][city]
  std::vector<std::vector<std::uint32_t>> group_of_cell_;  // [rung][city]
  std::uint32_t city_count_ = 0;

  std::vector<broker::ClientGroup> groups_;
  bool groups_dirty_ = true;
  std::size_t live_ = 0;
  std::uint32_t assignment_epoch_ = 0;
};

}  // namespace vdx::sim
