// Deterministic JSONL serialization of timeline results and placement
// summaries.
//
// These are the byte-compare surfaces: the golden-snapshot suite commits
// these lines under tests/golden/, and the streaming-vs-batch equivalence
// tests diff them byte-for-byte. Doubles are rendered with %.17g (the
// repo-wide deterministic export format, same as vdx::obs), so two runs are
// equal iff every derived quantity is bit-equal.
#pragma once

#include <ostream>
#include <string>

#include "sim/timeline.hpp"

namespace vdx::sim {

/// One JSON object per epoch report, in epoch order, then one trailing
/// summary object ({"epochs":N,"mean_cdn_switch_fraction":...}).
void write_epoch_reports_jsonl(std::ostream& out, const TimelineResult& result);
[[nodiscard]] std::string epoch_reports_jsonl(const TimelineResult& result);

/// One JSON object per placement, in outcome order (deterministic), then a
/// trailing summary object with the design name and placement count.
void write_placement_summary_jsonl(std::ostream& out, const DesignOutcome& outcome);
[[nodiscard]] std::string placement_summary_jsonl(const DesignOutcome& outcome);

}  // namespace vdx::sim
