#include "sim/session_store.hpp"

#include <algorithm>
#include <cmath>

namespace vdx::sim {

SessionStore::SessionStore(std::size_t city_hint)
    : city_count_(static_cast<std::uint32_t>(city_hint)) {}

bool SessionStore::admit(std::uint32_t id, core::CityId city, double bitrate_mbps,
                         double end_s, double now, std::uint32_t isp) {
  if (end_s <= now) return false;
  insert(id, city.value(), isp, bitrate_mbps, end_s);
  return true;
}

std::uint32_t SessionStore::rung_index(std::int64_t kbps) {
  // The bitrate ladder is tiny (a handful of encodings per scenario), so a
  // linear scan beats any tree/hash and keeps the hot path allocation-free.
  for (std::size_t r = 0; r < rung_kbps_.size(); ++r) {
    if (rung_kbps_[r] == kbps) return static_cast<std::uint32_t>(r);
  }
  const auto rung = static_cast<std::uint32_t>(rung_kbps_.size());
  rung_kbps_.push_back(kbps);
  counts_.emplace_back(city_count_, 0);
  group_of_cell_.emplace_back(city_count_, 0);
  // Keep the kbps-ascending iteration order the count tree used to provide.
  const auto at = std::lower_bound(
      rung_by_kbps_.begin(), rung_by_kbps_.end(), kbps,
      [&](std::uint32_t r, std::int64_t k) { return rung_kbps_[r] < k; });
  rung_by_kbps_.insert(at, rung);
  return rung;
}

void SessionStore::ensure_city(std::uint32_t city) {
  if (city < city_count_) return;
  city_count_ = city + 1;
  for (auto& row : counts_) row.resize(city_count_, 0);
  for (auto& row : group_of_cell_) row.resize(city_count_, 0);
}

void SessionStore::insert(std::uint32_t id, std::uint32_t city, std::uint32_t isp,
                          double bitrate_mbps, double end_s) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    ids_[slot] = id;
    city_[slot] = city;
    isp_[slot] = isp;
    bitrate_[slot] = bitrate_mbps;
    end_s_[slot] = end_s;
    assigned_[slot] = kNoCluster;
    assigned_epoch_[slot] = 0;
  } else {
    slot = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(id);
    city_.push_back(city);
    isp_.push_back(isp);
    rung_.push_back(0);
    bitrate_.push_back(bitrate_mbps);
    end_s_.push_back(end_s);
    assigned_.push_back(kNoCluster);
    assigned_epoch_.push_back(0);
  }
  ensure_city(city);
  const auto kbps = static_cast<std::int64_t>(std::llround(bitrate_mbps * 1000.0));
  const std::uint32_t rung = rung_index(kbps);
  rung_[slot] = rung;
  ++counts_[rung][city];

  // Arrival order == id order, so appends keep the index sorted; the
  // out-of-order fallback only triggers on adversarial input.
  if (order_.empty() || order_.back().id < id) {
    order_.push_back(OrderEntry{id, slot});
  } else {
    const auto at = std::lower_bound(
        order_.begin(), order_.end(), id,
        [](const OrderEntry& e, std::uint32_t key) { return e.id < key; });
    order_.insert(at, OrderEntry{id, slot});
  }
  departures_.push(HeapEntry{end_s, id, slot});
  ++live_;
  groups_dirty_ = true;
}

void SessionStore::erase_slot(std::uint32_t slot) {
  --counts_[rung_[slot]][city_[slot]];
  ids_[slot] = kFreeId;
  free_.push_back(slot);
  ++order_dead_;
  --live_;
  groups_dirty_ = true;
}

void SessionStore::maybe_compact_order() {
  if (order_dead_ <= live_ + 64) return;
  std::erase_if(order_, [&](const OrderEntry& e) { return ids_[e.slot] != e.id; });
  order_dead_ = 0;
}

std::size_t SessionStore::drop_until(double t) {
  std::size_t dropped = 0;
  while (!departures_.empty() && departures_.top().end_s <= t) {
    const HeapEntry top = departures_.top();
    departures_.pop();
    if (ids_[top.slot] != top.id) continue;  // already shed
    erase_slot(top.slot);
    ++dropped;
  }
  if (dropped > 0) maybe_compact_order();
  return dropped;
}

std::size_t SessionStore::shed_lowest(std::size_t n) {
  n = std::min(n, live_);
  if (n == 0) return 0;
  struct Victim {
    double bitrate;
    std::uint32_t id;
    std::uint32_t slot;
  };
  std::vector<Victim> order;
  order.reserve(live_);
  for_each_live([&](std::uint32_t id, std::uint32_t slot) {
    order.push_back(Victim{bitrate_[slot], id, slot});
  });
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
                    order.end(), [](const Victim& a, const Victim& b) {
                      return a.bitrate < b.bitrate ||
                             (a.bitrate == b.bitrate && a.id < b.id);
                    });
  // Heap entries are left behind and lazily skipped by drop_until.
  for (std::size_t i = 0; i < n; ++i) erase_slot(order[i].slot);
  maybe_compact_order();
  return n;
}

std::span<const broker::ClientGroup> SessionStore::groups() {
  if (groups_dirty_) {
    groups_.clear();
    // City-major over kbps-ascending rungs == the (city, kbps, isp) key
    // order of broker::group_sessions' std::map.
    for (std::uint32_t city = 0; city < city_count_; ++city) {
      for (const std::uint32_t rung : rung_by_kbps_) {
        const std::uint32_t count = counts_[rung][city];
        if (count == 0) continue;
        broker::ClientGroup g;
        g.id = broker::ShareId{static_cast<std::uint32_t>(groups_.size())};
        g.city = core::CityId{city};
        g.isp = 0;
        g.bitrate_mbps = static_cast<double>(rung_kbps_[rung]) / 1000.0;
        g.client_count = static_cast<double>(count);
        group_of_cell_[rung][city] = static_cast<std::uint32_t>(groups_.size());
        groups_.push_back(g);
      }
    }
    groups_dirty_ = false;
  }
  return groups_;
}

void SessionStore::apply_assignment(
    std::span<const std::pair<std::uint32_t, cdn::ClusterId>> pairs) {
  ++assignment_epoch_;
  // Both sides are id-ascending: merge-join pairs onto live slots.
  std::size_t p = 0;
  for (const OrderEntry& e : order_) {
    if (ids_[e.slot] != e.id) continue;
    while (p < pairs.size() && pairs[p].first < e.id) ++p;
    if (p == pairs.size()) break;
    if (pairs[p].first == e.id) {
      assigned_[e.slot] = pairs[p].second.value();
      assigned_epoch_[e.slot] = assignment_epoch_;
      ++p;
    }
  }
}

state::StreamCursor SessionStore::cursor() const {
  state::StreamCursor cursor;
  cursor.active.reserve(live_);
  for_each_live([&](std::uint32_t id, std::uint32_t slot) {
    cursor.active.push_back(
        state::ActiveSession{id, city_[slot], bitrate_[slot], end_s_[slot]});
  });
  return cursor;
}

void SessionStore::restore(std::span<const state::ActiveSession> active) {
  ids_.clear();
  city_.clear();
  isp_.clear();
  rung_.clear();
  bitrate_.clear();
  end_s_.clear();
  assigned_.clear();
  assigned_epoch_.clear();
  free_.clear();
  order_.clear();
  order_dead_ = 0;
  departures_ = {};
  rung_kbps_.clear();
  rung_by_kbps_.clear();
  counts_.clear();
  group_of_cell_.clear();
  groups_.clear();
  groups_dirty_ = true;
  live_ = 0;
  assignment_epoch_ = 0;

  // Snapshots written by cursor() are already id-ascending; tolerate (and
  // canonicalize) arbitrary decoder output instead of corrupting the order
  // index. Duplicate ids keep the first occurrence.
  std::vector<std::uint32_t> by_id(active.size());
  for (std::size_t i = 0; i < by_id.size(); ++i) by_id[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(by_id.begin(), by_id.end(), [&](std::uint32_t a, std::uint32_t b) {
    return active[a].id < active[b].id;
  });
  std::uint32_t previous_id = kFreeId;
  for (const std::uint32_t i : by_id) {
    const state::ActiveSession& s = active[i];
    if (s.id == previous_id) continue;
    previous_id = s.id;
    insert(s.id, s.city, 0, s.bitrate_mbps, s.end_s);
  }
}

}  // namespace vdx::sim
