// Time-dynamics simulation: re-running the Decision Protocol periodically
// over the trace hour.
//
// The snapshot evaluation freezes one protocol round; this module plays the
// hour back in epochs (the paper: decisions re-run "every few minutes",
// §4.1) with the then-active sessions, and measures *assignment churn* —
// the fraction of sessions surviving from one epoch to the next whose
// serving CDN changed. Under today's Brokered interface the broker's QoE
// estimates fluctuate between rounds (it keeps re-measuring), so decisions
// keep flapping — the Figure-4 phenomenon. Under VDX the broker optimizes
// over announced (stable) cluster data, so assignments only move when
// demand actually moves (§6.2: "traffic unpredictability is greatly reduced
// in VDX as CDNs are explicitly involved before brokers move any traffic").
#pragma once

#include <vector>

#include "sim/designs.hpp"
#include "sim/metrics.hpp"

namespace vdx::sim {

struct TimelineConfig {
  Design design = Design::kMarketplace;
  RunConfig run;
  /// Decision Protocol period (paper: every few minutes).
  double epoch_s = 300.0;
};

struct EpochReport {
  std::size_t epoch = 0;
  double time_s = 0.0;
  std::size_t active_sessions = 0;
  /// Sessions that received a cluster assignment this epoch — sessions whose
  /// group won placements; at most active_sessions, and each active session
  /// is assigned at most once (the conservation invariant the property
  /// tests pin).
  std::size_t assigned_sessions = 0;
  /// Sessions shed by admission control this epoch (overload-graceful
  /// streaming runs only; 0 and absent from exports otherwise). Shedding
  /// preserves conservation: assigned + shed <= active.
  std::size_t shed_sessions = 0;
  /// Sessions active in both this and the previous epoch whose serving CDN
  /// changed (0 for the first epoch).
  double cdn_switch_fraction = 0.0;
  /// Same, at cluster granularity.
  double cluster_switch_fraction = 0.0;
  DesignMetrics metrics;
};

struct TimelineResult {
  std::vector<EpochReport> epochs;
  /// Time-weighted mean CDN-switch fraction over epochs 1..n.
  double mean_cdn_switch_fraction = 0.0;
};

/// Plays the scenario's broker trace through repeated decision rounds.
[[nodiscard]] TimelineResult run_timeline(const Scenario& scenario,
                                          const TimelineConfig& config = {});

}  // namespace vdx::sim
