#include "sim/timeline_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace vdx::sim {

namespace {

/// %.17g round-trips every double exactly (same convention as vdx::obs).
std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

void write_epoch_reports_jsonl(std::ostream& out, const TimelineResult& result) {
  for (const EpochReport& r : result.epochs) {
    out << "{\"epoch\":" << r.epoch << ",\"time_s\":" << fmt(r.time_s)
        << ",\"active_sessions\":" << r.active_sessions
        << ",\"assigned_sessions\":" << r.assigned_sessions;
    // Only overload-graceful runs carry the field; steady exports (and the
    // golden files) stay byte-identical.
    if (r.shed_sessions > 0) out << ",\"shed_sessions\":" << r.shed_sessions;
    out << ",\"cdn_switch_fraction\":" << fmt(r.cdn_switch_fraction)
        << ",\"cluster_switch_fraction\":" << fmt(r.cluster_switch_fraction)
        << ",\"median_cost\":" << fmt(r.metrics.median_cost)
        << ",\"median_score\":" << fmt(r.metrics.median_score)
        << ",\"median_distance_miles\":" << fmt(r.metrics.median_distance_miles)
        << ",\"median_load\":" << fmt(r.metrics.median_load)
        << ",\"congested_fraction\":" << fmt(r.metrics.congested_fraction)
        << ",\"mean_cost\":" << fmt(r.metrics.mean_cost)
        << ",\"mean_score\":" << fmt(r.metrics.mean_score)
        << ",\"broker_traffic_mbps\":" << fmt(r.metrics.broker_traffic_mbps)
        << "}\n";
  }
  out << "{\"epochs\":" << result.epochs.size() << ",\"mean_cdn_switch_fraction\":"
      << fmt(result.mean_cdn_switch_fraction) << "}\n";
}

std::string epoch_reports_jsonl(const TimelineResult& result) {
  std::ostringstream out;
  write_epoch_reports_jsonl(out, result);
  return out.str();
}

void write_placement_summary_jsonl(std::ostream& out, const DesignOutcome& outcome) {
  for (const Placement& p : outcome.placements) {
    out << "{\"group\":" << p.group << ",\"cluster\":" << p.cluster.value()
        << ",\"clients\":" << fmt(p.clients) << ",\"price\":" << fmt(p.price)
        << ",\"score\":" << fmt(p.score) << "}\n";
  }
  out << "{\"design\":\"" << to_string(outcome.design)
      << "\",\"placements\":" << outcome.placements.size() << "}\n";
}

std::string placement_summary_jsonl(const DesignOutcome& outcome) {
  std::ostringstream out;
  write_placement_summary_jsonl(out, outcome);
  return out.str();
}

}  // namespace vdx::sim
