// Internals shared by the batch (run_timeline) and streaming
// (StreamingTimeline) engines.
//
// Both engines must produce byte-identical epoch reports on the same
// scenario (the streaming engine's acceptance invariant), so everything a
// report depends on — session→cluster assignment, churn bookkeeping — lives
// here and is used by both. Exposed (under ::detail) for the property and
// regression tests that pin these semantics.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "broker/grouping.hpp"
#include "sim/session_store.hpp"
#include "sim/timeline.hpp"

namespace vdx::sim::detail {

/// The per-session fields assignment needs. Both engines hand these over in
/// session-id order (trace ids are dense in arrival order).
struct SessionRef {
  std::uint32_t id = 0;
  geo::CityId city;
  double bitrate_mbps = 0.0;
};

/// Grouping key matching broker::group_sessions (city, quantized bitrate).
[[nodiscard]] std::uint64_t group_key(geo::CityId city, double bitrate_mbps);

/// session id -> serving cluster for one epoch, as id-ascending pairs (each
/// id at most once). The flat canonical order makes churn comparison a
/// merge/binary-search over two sorted arrays and checkpoint serialization a
/// plain copy — no hash-order laundering anywhere on the hot path.
using Assignment = std::vector<std::pair<std::uint32_t, cdn::ClusterId>>;

/// Distributes each group's winning placements over its individual sessions
/// deterministically (sessions in id order, placements in cluster order).
/// Sessions whose group won no placement are absent from the result.
[[nodiscard]] Assignment assign_sessions(std::span<const SessionRef> sessions,
                                         std::span<const broker::ClientGroup> groups,
                                         const DesignOutcome& outcome);

/// Store-aware variant: reads the population straight out of the SoA store
/// (group membership via its dense (rung, city) cells — no key hashing, no
/// materialized SessionRef copy). `store.groups()` must be the `groups` the
/// outcome was computed over, i.e. no mutation in between.
[[nodiscard]] Assignment assign_sessions(SessionStore& store,
                                         const DesignOutcome& outcome);

/// Epoch-over-epoch churn bookkeeping: fraction of sessions present in both
/// consecutive assignments whose serving CDN / cluster changed, and the
/// surviving-session-weighted mean of the CDN fraction.
///
/// Boundary semantics (pinned by regression tests): epochs sample activity
/// at their midpoint with half-open [arrival, end), so a session ending
/// exactly at an epoch boundary is counted in at most one epoch's
/// assignment, and each assignment maps a session id at most once — churn
/// denominators cannot double-count a session.
class ChurnTracker {
 public:
  /// Fills report.cdn_switch_fraction / cluster_switch_fraction against the
  /// previously observed assignment (first call leaves them 0), folds the
  /// epoch into the weighted mean, then adopts `assignment` as previous.
  void observe(const cdn::CdnCatalog& catalog, Assignment assignment,
               EpochReport& report);

  [[nodiscard]] double mean_cdn_switch_fraction() const noexcept {
    return weight_ > 0.0 ? sum_ / weight_ : 0.0;
  }

  /// Checkpointable state: the previous assignment as id-ascending pairs
  /// (the live representation is already in that canonical order, so this is
  /// a plain copy). save() -> restore() reproduces observe() byte-identically.
  struct Saved {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> previous;
    double sum = 0.0;
    double weight = 0.0;
  };
  [[nodiscard]] Saved save() const;
  void restore(const Saved& saved);

 private:
  Assignment previous_;  // id-ascending
  double sum_ = 0.0;
  double weight_ = 0.0;
};

}  // namespace vdx::sim::detail
