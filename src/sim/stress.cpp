#include "sim/stress.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "sim/scenario.hpp"

namespace vdx::sim {

namespace {

constexpr std::array<std::string_view, 6> kScenarioNames{
    "steady", "flash-crowd", "diurnal", "blackout", "price-shock",
    "perfect-storm"};

/// Event-window placement as horizon fractions: the spike peaks in the
/// middle third, the blackout and price shock overlap it so the composed
/// perfect-storm scenario stresses admission, peering, and settlement at
/// once. Model constants — changing them changes every stressed stream.
constexpr double kSpikeStartFrac = 0.25;
constexpr double kSpikeRampFrac = 0.05;
constexpr double kSpikeHoldFrac = 0.25;
constexpr double kSpikeDecayFrac = 0.10;
constexpr double kBlackoutStartFrac = 0.40;
constexpr double kBlackoutEndFrac = 0.70;
constexpr double kShockStartFrac = 0.30;
constexpr double kShockEndFrac = 0.70;
constexpr double kDiurnalAmplitude = 0.5;
constexpr double kDiurnalMaxPeriodS = 86'400.0;

std::size_t busiest_city(const geo::World& world) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < world.cities().size(); ++i) {
    if (world.cities()[i].demand_weight > world.cities()[best].demand_weight) {
      best = i;
    }
  }
  return best;
}

core::CountryId resolve_region(const geo::World& world, const std::string& name) {
  if (name.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < world.countries().size(); ++i) {
      if (world.countries()[i].demand_share > world.countries()[best].demand_share) {
        best = i;
      }
    }
    return core::CountryId{static_cast<std::uint32_t>(best)};
  }
  for (const geo::Country& country : world.countries()) {
    if (country.name == name) return country.id;
  }
  throw std::invalid_argument{
      "--blackout-region: unknown region '" + name + "' (world has " +
      std::string{world.countries().front().name} + ".." +
      std::string{world.countries().back().name} + ")"};
}

}  // namespace

std::string_view to_string(StressScenario scenario) noexcept {
  const auto idx = static_cast<std::size_t>(scenario);
  return idx < kScenarioNames.size() ? kScenarioNames[idx] : "unknown";
}

std::span<const std::string_view> stress_scenario_names() noexcept {
  return kScenarioNames;
}

std::optional<StressScenario> stress_scenario_from(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kScenarioNames.size(); ++i) {
    if (kScenarioNames[i] == name) return static_cast<StressScenario>(i);
  }
  return std::nullopt;
}

StressConfig stress_config_from_flags(core::Flags& flags) {
  StressConfig config;
  std::vector<std::string> names;
  names.reserve(kScenarioNames.size());
  for (const std::string_view name : kScenarioNames) names.emplace_back(name);
  const std::string scenario = flags.one_of("scenario", "steady", names);
  config.scenario = *stress_scenario_from(scenario);
  config.spike_city = flags.count("spike-city", config.spike_city);
  config.spike_factor = flags.positive("spike-factor", config.spike_factor);
  config.blackout_region = flags.text("blackout-region", "");
  config.shock_factor = flags.positive("shock-factor", config.shock_factor);
  config.shed_budget = flags.count("shed-budget", 0);
  return config;
}

std::uint64_t stress_config_hash(const StressConfig& config) noexcept {
  // FNV-1a over the canonical field encoding; steady-with-defaults hashes
  // to a fixed value so pre-stress checkpoints keep their fingerprints.
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= 1099511628211ull;
    }
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(config.scenario));
  mix(static_cast<std::uint64_t>(config.spike_city));
  mix_double(config.spike_factor);
  mix(static_cast<std::uint64_t>(config.blackout_region.size()));
  for (const char c : config.blackout_region) {
    mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  mix_double(config.shock_factor);
  mix(static_cast<std::uint64_t>(config.shed_budget));
  return hash;
}

StressProfile make_stress_profile(const geo::World& world, const StressConfig& config,
                                  double horizon_s) {
  if (!(horizon_s > 0.0)) {
    throw std::invalid_argument{"make_stress_profile: horizon must be > 0"};
  }
  StressProfile profile;
  const StressScenario s = config.scenario;
  const bool storm = s == StressScenario::kPerfectStorm;

  if (s == StressScenario::kFlashCrowd || storm) {
    std::size_t city = config.spike_city;
    if (city == static_cast<std::size_t>(-1)) {
      city = busiest_city(world);
    } else if (city >= world.cities().size()) {
      throw std::invalid_argument{
          "--spike-city: no such city index " + std::to_string(city) + " (world has " +
          std::to_string(world.cities().size()) + " cities)"};
    }
    trace::FlashCrowdSpec spike;
    spike.city = core::CityId{static_cast<std::uint32_t>(city)};
    spike.factor = config.spike_factor;
    spike.start_s = kSpikeStartFrac * horizon_s;
    spike.ramp_s = kSpikeRampFrac * horizon_s;
    spike.hold_s = kSpikeHoldFrac * horizon_s;
    spike.decay_s = kSpikeDecayFrac * horizon_s;
    profile.demand.add_flash_crowd(spike);
  }
  if (s == StressScenario::kDiurnal || storm) {
    trace::DiurnalSpec diurnal;
    diurnal.amplitude = kDiurnalAmplitude;
    diurnal.period_s = std::min(kDiurnalMaxPeriodS, horizon_s);
    profile.demand.add_diurnal(diurnal);
  }
  if (s == StressScenario::kBlackout || storm) {
    profile.blackouts.push_back(BlackoutSpec{resolve_region(world, config.blackout_region),
                                             kBlackoutStartFrac * horizon_s,
                                             kBlackoutEndFrac * horizon_s});
  }
  if (s == StressScenario::kPriceShock || storm) {
    profile.price_shocks.push_back(PriceShockSpec{
        config.shock_factor, kShockStartFrac * horizon_s, kShockEndFrac * horizon_s});
  }
  return profile;
}

SupplyStressController::SupplyStressController(Scenario& scenario,
                                               StressProfile profile)
    : scenario_(&scenario), profile_(std::move(profile)) {
  if (profile_.blackouts.size() > 16 || profile_.price_shocks.size() > 16) {
    throw std::invalid_argument{
        "SupplyStressController: at most 16 blackouts and 16 price shocks"};
  }
  const cdn::CdnCatalog& catalog = scenario_->catalog();
  base_capacity_.reserve(catalog.clusters().size());
  base_bandwidth_cost_.reserve(catalog.clusters().size());
  for (const cdn::Cluster& cluster : catalog.clusters()) {
    base_capacity_.push_back(cluster.capacity);
    base_bandwidth_cost_.push_back(cluster.bandwidth_cost);
  }
  base_contract_price_.reserve(catalog.cdns().size());
  for (const cdn::Cdn& cdn : catalog.cdns()) {
    base_contract_price_.push_back(cdn.contract_price);
  }
  dark_.assign(catalog.clusters().size(), 0);

  blackout_clusters_.reserve(profile_.blackouts.size());
  for (const BlackoutSpec& blackout : profile_.blackouts) {
    std::vector<cdn::ClusterId> hit;
    for (const cdn::Cluster& cluster : catalog.clusters()) {
      if (scenario_->world().country_of(cluster.city).id == blackout.country) {
        hit.push_back(cluster.id);
      }
    }
    blackout_clusters_.push_back(std::move(hit));
  }
}

SupplyStressController::~SupplyStressController() { reset(); }

bool SupplyStressController::apply(double t) {
  std::uint32_t key = 0;
  for (std::size_t i = 0; i < profile_.blackouts.size(); ++i) {
    const BlackoutSpec& b = profile_.blackouts[i];
    if (t >= b.start_s && t < b.end_s) key |= 1u << i;
  }
  for (std::size_t j = 0; j < profile_.price_shocks.size(); ++j) {
    const PriceShockSpec& p = profile_.price_shocks[j];
    if (t >= p.start_s && t < p.end_s) key |= 1u << (16 + j);
  }
  if (key == state_) return false;

  // Rebuild from base so the state is a function of `key` alone.
  cdn::CdnCatalog& catalog = scenario_->catalog_mutable();
  for (std::size_t c = 0; c < base_capacity_.size(); ++c) {
    cdn::Cluster& cluster =
        catalog.cluster_mutable(cdn::ClusterId{static_cast<std::uint32_t>(c)});
    cluster.capacity = base_capacity_[c];
    cluster.bandwidth_cost = base_bandwidth_cost_[c];
  }
  for (std::size_t d = 0; d < base_contract_price_.size(); ++d) {
    catalog.cdn_mutable(cdn::CdnId{static_cast<std::uint32_t>(d)}).contract_price =
        base_contract_price_[d];
  }
  std::fill(dark_.begin(), dark_.end(), 0);

  for (std::size_t i = 0; i < profile_.blackouts.size(); ++i) {
    if ((key & (1u << i)) == 0) continue;
    for (const cdn::ClusterId cluster : blackout_clusters_[i]) {
      catalog.cluster_mutable(cluster).capacity = 0.0;
      dark_[cluster.value()] = 1;
    }
  }
  for (std::size_t j = 0; j < profile_.price_shocks.size(); ++j) {
    if ((key & (1u << (16 + j))) == 0) continue;
    const double factor = profile_.price_shocks[j].factor;
    for (std::size_t c = 0; c < base_capacity_.size(); ++c) {
      catalog.cluster_mutable(cdn::ClusterId{static_cast<std::uint32_t>(c)})
          .bandwidth_cost *= factor;
    }
    for (std::size_t d = 0; d < base_contract_price_.size(); ++d) {
      catalog.cdn_mutable(cdn::CdnId{static_cast<std::uint32_t>(d)}).contract_price *=
          factor;
    }
  }
  state_ = key;
  return true;
}

bool SupplyStressController::cluster_dark(cdn::ClusterId cluster) const noexcept {
  return cluster.value() < dark_.size() && dark_[cluster.value()] != 0;
}

void SupplyStressController::reset() {
  if (state_ == 0) return;
  cdn::CdnCatalog& catalog = scenario_->catalog_mutable();
  for (std::size_t c = 0; c < base_capacity_.size(); ++c) {
    cdn::Cluster& cluster =
        catalog.cluster_mutable(cdn::ClusterId{static_cast<std::uint32_t>(c)});
    cluster.capacity = base_capacity_[c];
    cluster.bandwidth_cost = base_bandwidth_cost_[c];
  }
  for (std::size_t d = 0; d < base_contract_price_.size(); ++d) {
    catalog.cdn_mutable(cdn::CdnId{static_cast<std::uint32_t>(d)}).contract_price =
        base_contract_price_[d];
  }
  std::fill(dark_.begin(), dark_.end(), 0);
  state_ = 0;
}

}  // namespace vdx::sim
