#include "sim/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "cdn/menu_cache.hpp"
#include "sim/session_store.hpp"
#include "sim/stress.hpp"
#include "sim/timeline_detail.hpp"

namespace vdx::sim {

std::vector<trace::Session> TraceStream::next_batch(std::size_t max_sessions) {
  const auto sessions = trace_->sessions();
  const std::size_t take = std::min(max_sessions, sessions.size() - pos_);
  std::vector<trace::Session> out(sessions.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  sessions.begin() +
                                      static_cast<std::ptrdiff_t>(pos_ + take));
  pos_ += take;
  return out;
}

void TraceStream::seek(std::uint64_t consumed) {
  if (consumed > trace_->sessions().size()) {
    throw std::invalid_argument{"TraceStream::seek: position " +
                                std::to_string(consumed) + " past trace size " +
                                std::to_string(trace_->sessions().size())};
  }
  pos_ = static_cast<std::size_t>(consumed);
}

namespace {

/// The incrementally maintained active population of one stream: an arrival
/// cursor (pending sessions pulled but not yet begun) feeding a SessionStore,
/// which holds the population as flat parallel arrays and serves groups,
/// shedding, and the checkpoint cursor (see sim/session_store.hpp).
class ActiveSet {
 public:
  ActiveSet(SessionStream& stream, std::size_t batch_sessions)
      : stream_(&stream), batch_(std::max<std::size_t>(1, batch_sessions)) {}

  /// Advances to midpoint t (non-decreasing across calls): ingests arrivals
  /// with arrival_s <= t, drops departures with end_s <= t (the half-open
  /// [arrival, end) activity convention). Returns whether the population
  /// changed.
  bool advance_to(double t) {
    bool changed = false;
    // Arrivals (stream and pending buffer are arrival-ordered).
    while (true) {
      while (!pending_.empty() && pending_.front().arrival_s <= t) {
        const trace::Session& s = pending_.front();
        changed |= store_.admit(s.id.value(), s.city, s.bitrate_mbps, s.end_s(), t);
        pending_.pop_front();
      }
      if (!pending_.empty() || stream_->exhausted()) break;
      auto batch = stream_->next_batch(batch_);
      if (batch.empty()) break;
      pulled_ += batch.size();
      pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
    }
    changed |= store_.drop_until(t) > 0;
    return changed;
  }

  [[nodiscard]] std::span<const broker::ClientGroup> groups() {
    return store_.groups();
  }

  std::size_t shed_lowest(std::size_t n) { return store_.shed_lowest(n); }

  [[nodiscard]] std::size_t active_count() const noexcept { return store_.size(); }
  [[nodiscard]] std::size_t pulled() const noexcept { return pulled_; }

  [[nodiscard]] SessionStore& store() noexcept { return store_; }

  /// Checkpointable position: sessions consumed from the stream (popped
  /// from the pending buffer — sessions pulled but still pending are
  /// re-pulled on resume) plus the active population in id order.
  [[nodiscard]] state::StreamCursor cursor() const {
    state::StreamCursor cursor = store_.cursor();
    cursor.consumed = pulled_ - pending_.size();
    return cursor;
  }

  /// Restores a cursor(): seeks the stream and rebuilds the store. Throws
  /// std::invalid_argument (via SessionStream::seek) when the position is
  /// past the horizon.
  void restore(const state::StreamCursor& cursor) {
    stream_->seek(cursor.consumed);
    pulled_ = static_cast<std::size_t>(cursor.consumed);
    pending_.clear();
    store_.restore(cursor.active);
  }

 private:
  SessionStream* stream_;
  std::size_t batch_;
  std::deque<trace::Session> pending_;
  SessionStore store_;
  std::size_t pulled_ = 0;
};

}  // namespace

StreamingTimeline::StreamingTimeline(const Scenario& scenario, StreamingConfig config)
    : scenario_(&scenario), config_(std::move(config)) {
  if (!(config_.epoch_s > 0.0)) {
    throw std::invalid_argument{"StreamingConfig: epoch_s must be > 0"};
  }
  if (config_.stress != nullptr && config_.run.menus != nullptr) {
    throw std::invalid_argument{
        "StreamingConfig: supply stress mutates catalog values that candidate "
        "menus bake in; an external RunConfig::menus cache would go stale — "
        "leave menus null so the engine owns (and rebuilds) the caches"};
  }
}

StreamingResult StreamingTimeline::run(SessionStream& broker,
                                       SessionStream& background) const {
  return run_impl(broker, background, nullptr, 0);
}

core::Result<StreamingResult> StreamingTimeline::resume(
    SessionStream& broker, SessionStream& background,
    std::span<const std::uint8_t> snapshot) const {
  auto decoded = state::decode_timeline(snapshot);
  if (!decoded.ok()) return core::Result<StreamingResult>{decoded.error()};
  const state::TimelineCheckpoint checkpoint = std::move(decoded).value();

  if (!(checkpoint.fingerprint == config_.checkpoint.fingerprint)) {
    return core::Result<StreamingResult>::failure(
        core::Errc::kInvalidArgument,
        "snapshot fingerprint does not match this run's configuration "
        "(different seed, design, horizon, or scenario)");
  }
  const auto epochs = static_cast<std::size_t>(
      std::ceil(broker.duration_s() / config_.epoch_s));
  if (checkpoint.next_epoch == 0 || checkpoint.next_epoch > epochs) {
    return core::Result<StreamingResult>::failure(
        core::Errc::kCorruptSnapshot,
        "checkpoint resumes at epoch " + std::to_string(checkpoint.next_epoch) +
            ", outside the run's " + std::to_string(epochs) + "-epoch horizon");
  }
  try {
    return run_impl(broker, background, &checkpoint, snapshot.size());
  } catch (const std::invalid_argument& error) {
    // Stream seeks and journal restores reject internally inconsistent
    // positions; surface them as typed corruption, not a crash.
    return core::Result<StreamingResult>::failure(
        core::Errc::kCorruptSnapshot,
        std::string{"checkpoint rejected during restore: "} + error.what());
  }
}

StreamingResult StreamingTimeline::run_impl(SessionStream& broker,
                                            SessionStream& background,
                                            const state::TimelineCheckpoint* resume_from,
                                            std::size_t snapshot_bytes) const {
  const Scenario& scenario = *scenario_;
  StreamingResult result;
  const double duration = broker.duration_s();
  const auto epochs = static_cast<std::size_t>(std::ceil(duration / config_.epoch_s));

  // Per-run menu caches, shared by every epoch's round (identical to the
  // batch engine's — see run_timeline).
  RunConfig base_run = config_.run;
  const std::size_t cities = scenario.world().cities().size();
  std::optional<cdn::CandidateMenuCache> design_cache;
  std::optional<cdn::CandidateMenuCache> background_cache;
  const cdn::CandidateMenuCache* background_menus = nullptr;
  const auto build_menus = [&] {
    if (config_.run.menus == nullptr) {
      design_cache.emplace(scenario.catalog(), scenario.mapping(), cities,
                           menu_config_for(config_.design, base_run));
      base_run.menus = &*design_cache;
    }
    background_menus = base_run.menus;
    if (!(background_menus->config() == cdn::MatchingConfig{})) {
      background_cache.emplace(scenario.catalog(), scenario.mapping(), cities,
                               cdn::MatchingConfig{});
      background_menus = &*background_cache;
    }
  };
  build_menus();

  obs::Counter rounds_counter;
  obs::Counter recompute_counter;
  obs::Counter resume_counter;
  obs::Counter shed_counter;
  obs::Counter overload_epochs_counter;
  obs::Counter supply_shift_counter;
  obs::Gauge active_gauge;
  obs::Gauge peak_gauge;
  obs::Histogram epoch_seconds;
  if (config_.obs.metrics != nullptr) {
    rounds_counter = config_.obs.metrics->counter("timeline.decision_rounds");
    recompute_counter = config_.obs.metrics->counter("timeline.background_recomputes");
    resume_counter = config_.obs.metrics->counter("state.resumes");
    shed_counter = config_.obs.metrics->counter("timeline.overload.shed_sessions");
    overload_epochs_counter = config_.obs.metrics->counter("timeline.overload.epochs");
    supply_shift_counter = config_.obs.metrics->counter("timeline.stress.supply_shifts");
    active_gauge = config_.obs.metrics->gauge("timeline.active_sessions");
    peak_gauge = config_.obs.metrics->gauge("timeline.peak_active_sessions");
    epoch_seconds = config_.obs.metrics->histogram("timeline.epoch_seconds");
  }

  ActiveSet broker_set{broker, config_.batch_sessions};
  ActiveSet background_set{background, config_.batch_sessions};
  std::vector<double> background_loads;
  bool background_stale = true;
  detail::ChurnTracker churn;
  std::size_t start_epoch = 0;

  if (resume_from != nullptr) {
    const state::TimelineCheckpoint& cp = *resume_from;
    broker_set.restore(cp.broker);
    background_set.restore(cp.background);
    background_loads = cp.background_loads;
    background_stale = cp.background_stale;
    churn.restore(detail::ChurnTracker::Saved{cp.churn.previous, cp.churn.sum,
                                              cp.churn.weight});
    result.peak_active_sessions = static_cast<std::size_t>(cp.peak_active_sessions);
    result.decision_rounds = static_cast<std::size_t>(cp.decision_rounds);
    result.background_recomputes =
        static_cast<std::size_t>(cp.background_recomputes);
    result.shed_sessions = static_cast<std::size_t>(cp.shed_sessions);
    start_epoch = static_cast<std::size_t>(cp.next_epoch);
    if (config_.obs.journal != nullptr) {
      auto restored = config_.obs.journal->restore(
          cp.journal.events, cp.journal.total, cp.journal.round);
      if (!restored.ok()) throw std::invalid_argument{restored.error().message};
    }
    if (config_.obs.tracer != nullptr) {
      config_.obs.tracer->set_logical(cp.logical_clock);
    }
    // The kResume event lands at exactly the seq the uninterrupted run's
    // kCheckpoint occupied (the snapshot captured the journal *before*
    // recording kCheckpoint), so the two journals agree on every later seq.
    config_.obs.record(obs::EventKind::kResume,
                       static_cast<std::uint32_t>(start_epoch - 1),
                       static_cast<double>(snapshot_bytes));
    resume_counter.add(1.0);
  }

  // Snapshots the complete engine state after epoch e into the policy's
  // store. Journal state is captured before the kCheckpoint event is
  // recorded — see the kResume note above.
  const auto take_checkpoint = [&](std::size_t e) {
    state::TimelineCheckpoint cp;
    cp.fingerprint = config_.checkpoint.fingerprint;
    cp.next_epoch = e + 1;
    cp.broker = broker_set.cursor();
    cp.background = background_set.cursor();
    const detail::ChurnTracker::Saved saved = churn.save();
    cp.churn.previous = saved.previous;
    cp.churn.sum = saved.sum;
    cp.churn.weight = saved.weight;
    cp.background_loads = background_loads;
    cp.background_stale = background_stale;
    cp.peak_active_sessions = result.peak_active_sessions;
    cp.decision_rounds = result.decision_rounds;
    cp.background_recomputes = result.background_recomputes;
    cp.shed_sessions = result.shed_sessions;
    cp.logical_clock =
        config_.obs.tracer != nullptr ? config_.obs.tracer->logical_now() : 0;
    if (config_.obs.journal != nullptr) {
      cp.journal.events = config_.obs.journal->events();
      cp.journal.total = config_.obs.journal->total_recorded();
      cp.journal.round = config_.obs.journal->current_round();
    }
    const std::vector<std::uint8_t> bytes = state::encode(cp);
    // A failed write must not kill a long-horizon run: the previous
    // snapshot is still durable, so recovery merely loses one interval.
    // The missing kCheckpoint event keeps the journal honest about it.
    if (config_.checkpoint.store->write(e, bytes).ok()) {
      config_.obs.record(obs::EventKind::kCheckpoint, static_cast<std::uint32_t>(e),
                         static_cast<double>(bytes.size()));
    }
  };

  std::size_t executed = 0;
  for (std::size_t e = start_epoch; e < epochs; ++e) {
    {
      const obs::SpanTracer::Scoped span{config_.obs.tracer, "timeline.epoch"};
      const obs::ScopedTimer timer{epoch_seconds};
      const double mid = (static_cast<double>(e) + 0.5) * config_.epoch_s;

      // Supply-side stress is a pure function of the epoch midpoint, so a
      // resumed run's first apply() reconstitutes the identical catalog
      // state. On a transition everything that baked catalog values —
      // candidate menus, the background placement — must be rebuilt.
      if (config_.stress != nullptr && config_.stress->apply(mid)) {
        build_menus();
        background_stale = true;
        supply_shift_counter.add(1.0);
        config_.obs.record(obs::EventKind::kSupplyShift,
                           static_cast<std::uint32_t>(e),
                           static_cast<double>(config_.stress->state_key()));
      }

      broker_set.advance_to(mid);
      background_stale |= background_set.advance_to(mid);

      const std::size_t concurrent =
          broker_set.active_count() + background_set.active_count();
      result.peak_active_sessions = std::max(result.peak_active_sessions, concurrent);
      active_gauge.set(static_cast<double>(concurrent));

      // Admission control: shed the overflow before the decision round so
      // the round never sees more demand than the budget.
      const std::size_t pre_shed_active = broker_set.active_count();
      std::size_t shed_now = 0;
      if (config_.overload.max_active_sessions > 0 &&
          pre_shed_active > config_.overload.max_active_sessions) {
        shed_now = broker_set.shed_lowest(pre_shed_active -
                                          config_.overload.max_active_sessions);
        result.shed_sessions += shed_now;
        shed_counter.add(static_cast<double>(shed_now));
        overload_epochs_counter.add(1.0);
        config_.obs.record(obs::EventKind::kShed, static_cast<std::uint32_t>(e),
                           static_cast<double>(shed_now));
      }

      if (broker_set.active_count() > 0) {
        // The background only moves when a background session arrived or
        // departed; otherwise last epoch's placement is still exact.
        const auto groups = broker_set.groups();
        if (background_stale) {
          background_loads = place_background_over(scenario, background_set.groups(),
                                                   background_menus);
          background_stale = false;
          ++result.background_recomputes;
          recompute_counter.add(1.0);
        }

        RunConfig run = base_run;
        run.qoe_epoch = e + 1;  // fresh broker-side measurements each round
        const DesignOutcome outcome =
            run_design_over(scenario, config_.design, run, groups, background_loads);

        auto assignment = detail::assign_sessions(broker_set.store(), outcome);
        broker_set.store().apply_assignment(assignment);

        EpochReport report;
        report.epoch = e;
        report.time_s = mid;
        // Pre-shed population: with assigned computed post-shed, the
        // conservation the property tests pin is assigned + shed <= active.
        report.active_sessions = pre_shed_active;
        report.shed_sessions = shed_now;
        report.assigned_sessions = assignment.size();
        report.metrics = compute_metrics_over(scenario, outcome, groups);
        churn.observe(scenario.catalog(), std::move(assignment), report);

        ++result.decision_rounds;
        rounds_counter.add(1.0);
        config_.obs.record(obs::EventKind::kEpoch, static_cast<std::uint32_t>(e),
                           static_cast<double>(report.active_sessions));
        result.timeline.epochs.push_back(std::move(report));
      }
    }

    // Epoch e is complete (checkpoints sit on epoch boundaries; the final
    // epoch is never checkpointed — the run is already done).
    if (config_.checkpoint.every_epochs > 0 && config_.checkpoint.store != nullptr &&
        (e + 1) % config_.checkpoint.every_epochs == 0 && e + 1 < epochs) {
      take_checkpoint(e);
    }
    ++executed;
    if (config_.halt_after_epochs > 0 && executed >= config_.halt_after_epochs) {
      break;  // simulated crash (recovery-drill hook)
    }
  }

  result.timeline.mean_cdn_switch_fraction = churn.mean_cdn_switch_fraction();
  result.broker_sessions = broker_set.pulled();
  result.background_sessions = background_set.pulled();
  peak_gauge.set(static_cast<double>(result.peak_active_sessions));
  return result;
}

}  // namespace vdx::sim
