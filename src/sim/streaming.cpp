#include "sim/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "cdn/menu_cache.hpp"
#include "sim/timeline_detail.hpp"

namespace vdx::sim {

std::vector<trace::Session> TraceStream::next_batch(std::size_t max_sessions) {
  const auto sessions = trace_->sessions();
  const std::size_t take = std::min(max_sessions, sessions.size() - pos_);
  std::vector<trace::Session> out(sessions.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  sessions.begin() +
                                      static_cast<std::ptrdiff_t>(pos_ + take));
  pos_ += take;
  return out;
}

namespace {

/// The incrementally maintained active population of one stream: an arrival
/// cursor (pending sessions pulled but not yet begun), a departure min-heap,
/// the active sessions keyed by id (id order == arrival order, which the
/// assigner requires), and a group-count map mirroring
/// broker::group_sessions' (city, kbps, isp) key order so groups can be
/// rebuilt in O(groups) instead of O(sessions).
class ActiveSet {
 public:
  ActiveSet(SessionStream& stream, std::size_t batch_sessions)
      : stream_(&stream), batch_(std::max<std::size_t>(1, batch_sessions)) {}

  /// Advances to midpoint t (non-decreasing across calls): ingests arrivals
  /// with arrival_s <= t, drops departures with end_s <= t (the half-open
  /// [arrival, end) activity convention). Returns whether the population
  /// changed.
  bool advance_to(double t) {
    bool changed = false;
    // Arrivals (stream and pending buffer are arrival-ordered).
    while (true) {
      while (!pending_.empty() && pending_.front().arrival_s <= t) {
        const trace::Session& s = pending_.front();
        // A session that already ended never becomes active at this or any
        // later midpoint — it lived entirely between two samples.
        if (s.end_s() > t) {
          active_.emplace(s.id.value(),
                          Rec{s.city, s.bitrate_mbps});
          departures_.emplace(s.end_s(), s.id.value());
          bump(s.city, s.bitrate_mbps, +1);
          changed = true;
        }
        pending_.pop_front();
      }
      if (!pending_.empty() || stream_->exhausted()) break;
      auto batch = stream_->next_batch(batch_);
      if (batch.empty()) break;
      pulled_ += batch.size();
      pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
    }
    // Departures.
    while (!departures_.empty() && departures_.top().first <= t) {
      const std::uint32_t id = departures_.top().second;
      departures_.pop();
      const auto it = active_.find(id);
      bump(it->second.city, it->second.bitrate_mbps, -1);
      active_.erase(it);
      changed = true;
    }
    if (changed) groups_dirty_ = true;
    return changed;
  }

  /// Client groups of the active population — exactly what
  /// broker::group_sessions would return for it (same key order, dense ids,
  /// integral client counts).
  [[nodiscard]] std::span<const broker::ClientGroup> groups() {
    if (groups_dirty_) {
      groups_.clear();
      groups_.reserve(counts_.size());
      for (const auto& [key, count] : counts_) {
        broker::ClientGroup g;
        g.id = broker::ShareId{static_cast<std::uint32_t>(groups_.size())};
        g.city = geo::CityId{std::get<0>(key)};
        g.isp = std::get<2>(key);
        g.bitrate_mbps = static_cast<double>(std::get<1>(key)) / 1000.0;
        g.client_count = static_cast<double>(count);
        groups_.push_back(g);
      }
      groups_dirty_ = false;
    }
    return groups_;
  }

  /// Active sessions in id order (std::map iteration).
  [[nodiscard]] std::vector<detail::SessionRef> session_refs() const {
    std::vector<detail::SessionRef> refs;
    refs.reserve(active_.size());
    for (const auto& [id, rec] : active_) {
      refs.push_back(detail::SessionRef{id, rec.city, rec.bitrate_mbps});
    }
    return refs;
  }

  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }
  [[nodiscard]] std::size_t pulled() const noexcept { return pulled_; }

 private:
  struct Rec {
    geo::CityId city;
    double bitrate_mbps = 0.0;
  };

  void bump(geo::CityId city, double bitrate_mbps, int delta) {
    const auto kbps = static_cast<std::int64_t>(std::llround(bitrate_mbps * 1000.0));
    const auto key = std::make_tuple(city.value(), kbps, std::uint32_t{0});
    if (delta > 0) {
      ++counts_[key];
    } else {
      const auto it = counts_.find(key);
      if (--it->second == 0) counts_.erase(it);
    }
  }

  SessionStream* stream_;
  std::size_t batch_;
  std::deque<trace::Session> pending_;
  std::map<std::uint32_t, Rec> active_;
  /// (end_s, id) min-heap.
  std::priority_queue<std::pair<double, std::uint32_t>,
                      std::vector<std::pair<double, std::uint32_t>>,
                      std::greater<>>
      departures_;
  /// (city, kbps, isp) -> active count; mirrors broker::group_sessions.
  std::map<std::tuple<std::uint32_t, std::int64_t, std::uint32_t>, std::size_t>
      counts_;
  std::vector<broker::ClientGroup> groups_;
  bool groups_dirty_ = true;
  std::size_t pulled_ = 0;
};

}  // namespace

StreamingTimeline::StreamingTimeline(const Scenario& scenario, StreamingConfig config)
    : scenario_(&scenario), config_(std::move(config)) {
  if (!(config_.epoch_s > 0.0)) {
    throw std::invalid_argument{"StreamingConfig: epoch_s must be > 0"};
  }
}

StreamingResult StreamingTimeline::run(SessionStream& broker,
                                       SessionStream& background) const {
  const Scenario& scenario = *scenario_;
  StreamingResult result;
  const double duration = broker.duration_s();
  const auto epochs = static_cast<std::size_t>(std::ceil(duration / config_.epoch_s));

  // Per-run menu caches, shared by every epoch's round (identical to the
  // batch engine's — see run_timeline).
  RunConfig base_run = config_.run;
  const std::size_t cities = scenario.world().cities().size();
  std::optional<cdn::CandidateMenuCache> design_cache;
  std::optional<cdn::CandidateMenuCache> background_cache;
  if (base_run.menus == nullptr) {
    design_cache.emplace(scenario.catalog(), scenario.mapping(), cities,
                         menu_config_for(config_.design, base_run));
    base_run.menus = &*design_cache;
  }
  const cdn::CandidateMenuCache* background_menus = base_run.menus;
  if (!(background_menus->config() == cdn::MatchingConfig{})) {
    background_cache.emplace(scenario.catalog(), scenario.mapping(), cities,
                             cdn::MatchingConfig{});
    background_menus = &*background_cache;
  }

  obs::Counter rounds_counter;
  obs::Counter recompute_counter;
  obs::Gauge active_gauge;
  obs::Gauge peak_gauge;
  obs::Histogram epoch_seconds;
  if (config_.obs.metrics != nullptr) {
    rounds_counter = config_.obs.metrics->counter("timeline.decision_rounds");
    recompute_counter = config_.obs.metrics->counter("timeline.background_recomputes");
    active_gauge = config_.obs.metrics->gauge("timeline.active_sessions");
    peak_gauge = config_.obs.metrics->gauge("timeline.peak_active_sessions");
    epoch_seconds = config_.obs.metrics->histogram("timeline.epoch_seconds");
  }

  ActiveSet broker_set{broker, config_.batch_sessions};
  ActiveSet background_set{background, config_.batch_sessions};
  std::vector<double> background_loads;
  bool background_stale = true;

  detail::ChurnTracker churn;
  for (std::size_t e = 0; e < epochs; ++e) {
    const obs::SpanTracer::Scoped span{config_.obs.tracer, "timeline.epoch"};
    const obs::ScopedTimer timer{epoch_seconds};
    const double mid = (static_cast<double>(e) + 0.5) * config_.epoch_s;

    broker_set.advance_to(mid);
    background_stale |= background_set.advance_to(mid);

    const std::size_t concurrent =
        broker_set.active_count() + background_set.active_count();
    result.peak_active_sessions = std::max(result.peak_active_sessions, concurrent);
    active_gauge.set(static_cast<double>(concurrent));

    if (broker_set.active_count() == 0) continue;

    // The background only moves when a background session arrived or
    // departed; otherwise last epoch's placement is still exact.
    const auto groups = broker_set.groups();
    if (background_stale) {
      background_loads =
          place_background_over(scenario, background_set.groups(), background_menus);
      background_stale = false;
      ++result.background_recomputes;
      recompute_counter.add(1.0);
    }

    RunConfig run = base_run;
    run.qoe_epoch = e + 1;  // fresh broker-side measurements each round
    const DesignOutcome outcome =
        run_design_over(scenario, config_.design, run, groups, background_loads);

    auto assignment =
        detail::assign_sessions(broker_set.session_refs(), groups, outcome);

    EpochReport report;
    report.epoch = e;
    report.time_s = mid;
    report.active_sessions = broker_set.active_count();
    report.assigned_sessions = assignment.size();
    report.metrics = compute_metrics_over(scenario, outcome, groups);
    churn.observe(scenario.catalog(), std::move(assignment), report);

    ++result.decision_rounds;
    rounds_counter.add(1.0);
    config_.obs.record(obs::EventKind::kEpoch, static_cast<std::uint32_t>(e),
                       static_cast<double>(report.active_sessions));
    result.timeline.epochs.push_back(std::move(report));
  }

  result.timeline.mean_cdn_switch_fraction = churn.mean_cdn_switch_fraction();
  result.broker_sessions = broker_set.pulled();
  result.background_sessions = background_set.pulled();
  peak_gauge.set(static_cast<double>(result.peak_active_sessions));
  return result;
}

}  // namespace vdx::sim
