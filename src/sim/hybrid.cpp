#include "sim/hybrid.hpp"

#include <algorithm>
#include <limits>

#include "cdn/matching.hpp"
#include "cdn/menu_cache.hpp"
#include "core/parallel.hpp"

namespace vdx::sim {

HybridOutcome run_hybrid_pricing(const Scenario& scenario, const RunConfig& config) {
  const auto& catalog = scenario.catalog();
  const auto& mapping = scenario.mapping();
  const auto groups = scenario.broker_groups();

  HybridOutcome result;
  result.outcome.design = Design::kMarketplace;
  result.outcome.background_loads = place_background(scenario);

  cdn::MatchingConfig menu;
  menu.max_candidates = config.bid_count;
  menu.score_tolerance = config.menu_tolerance;

  // Hybrid needs two menus per (CDN, city): the CDN's full internal view for
  // the flat offer, and the broker-trimmed marketplace menu. Build both once.
  core::ThreadPool pool{core::ThreadPool::resolve(config.threads)};
  const std::size_t city_count = scenario.world().cities().size();
  const cdn::CandidateMenuCache full_menus{catalog, mapping, city_count,
                                           cdn::MatchingConfig{}, &pool};
  const cdn::CandidateMenuCache trimmed_menus{catalog, mapping, city_count, menu,
                                              &pool};

  std::vector<broker::BidView> bids;
  std::vector<std::uint8_t> is_flat;  // parallel to bids

  for (const broker::ClientGroup& group : groups) {
    for (const cdn::Cdn& cdn_entry : catalog.cdns()) {
      if (cdn_entry.clusters.empty()) continue;
      const auto candidates = full_menus.menu(cdn_entry.id, group.city);
      if (candidates.empty()) continue;

      // (a) High-but-flat: the traditional single-cluster offer at the
      // contract price — the CDN serves from its best-scoring candidate.
      const auto best = std::min_element(
          candidates.begin(), candidates.end(),
          [](const cdn::Candidate& a, const cdn::Candidate& b) {
            return a.score < b.score;
          });
      {
        broker::BidView bid;
        bid.share = group.id;
        bid.cdn = cdn_entry.id;
        bid.cluster = best->cluster;
        bid.score = best->score;
        bid.price = cdn_entry.contract_price;
        bid.capacity =
            scenario.provisioning().median_capacity[cdn_entry.id.value()];
        bids.push_back(bid);
        is_flat.push_back(1);
      }

      // (b) Low-but-variable: the marketplace menu at per-cluster pricing,
      // capacity net of the CDN's background load.
      for (const cdn::Candidate& candidate :
           trimmed_menus.menu(cdn_entry.id, group.city)) {
        broker::BidView bid;
        bid.share = group.id;
        bid.cdn = cdn_entry.id;
        bid.cluster = candidate.cluster;
        bid.score = candidate.score;
        bid.price = candidate.unit_cost * cdn_entry.markup;
        bid.capacity = std::max(
            0.0, candidate.capacity -
                     result.outcome.background_loads[candidate.cluster.value()]);
        if (bid.capacity <= 0.0) continue;
        bids.push_back(bid);
        is_flat.push_back(0);
      }
    }
  }

  broker::OptimizerConfig optimizer;
  optimizer.weights = config.weights;
  optimizer.solve = config.solve;
  const broker::OptimizeResult solved = broker::optimize(groups, bids, optimizer);

  std::vector<std::size_t> group_of_share(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_share[groups[g].id.value()] = g;
  }

  result.outcome.cluster_loads = result.outcome.background_loads;
  for (const broker::Allocation& allocation : solved.allocations) {
    const broker::BidView& bid = bids[allocation.bid_index];
    Placement placement;
    placement.group = group_of_share[bid.share.value()];
    placement.cluster = bid.cluster;
    placement.clients = allocation.clients;
    placement.price = bid.price;
    placement.score =
        mapping.score(groups[placement.group].city, bid.cluster.value());
    result.outcome.placements.push_back(placement);
    result.outcome.cluster_loads[bid.cluster.value()] +=
        allocation.clients * groups[placement.group].bitrate_mbps;
    (is_flat[allocation.bid_index] ? result.flat_clients : result.dynamic_clients) +=
        allocation.clients;
  }

  result.metrics = compute_metrics(scenario, result.outcome);
  return result;
}

}  // namespace vdx::sim
