// Evaluation metrics (paper §5.1) and settlement accounting (§7.1).
//
//   Cost, Score, Distance — medians over all broker clients (lower better).
//   Load      — median cluster load over clusters that saw any traffic.
//   Congested — % of broker clients sent to clusters above 100% load.
// Settlement: revenue = traffic x announced price; internal cost = traffic x
// cluster unit cost; profit = revenue - cost (exact, in Money).
#pragma once

#include <vector>

#include "core/money.hpp"
#include "sim/designs.hpp"

namespace vdx::sim {

struct DesignMetrics {
  double median_cost = 0.0;      // $/client ( price x bitrate )
  double median_score = 0.0;
  double median_distance_miles = 0.0;
  double median_load = 0.0;      // fraction of capacity
  double congested_fraction = 0.0;
  double mean_cost = 0.0;   // Figure 18 reports averages
  double mean_score = 0.0;
  double broker_traffic_mbps = 0.0;
};

[[nodiscard]] DesignMetrics compute_metrics(const Scenario& scenario,
                                            const DesignOutcome& outcome);

/// Same, when the outcome was produced over an explicit client population
/// (run_design_over): placement group indices refer to `groups`.
[[nodiscard]] DesignMetrics compute_metrics_over(
    const Scenario& scenario, const DesignOutcome& outcome,
    std::span<const broker::ClientGroup> groups);

/// Per-CDN settlement over the broker-controlled traffic (Figures 10-12).
struct CdnAccount {
  cdn::CdnId cdn;
  double traffic_mbps = 0.0;
  core::Money revenue;
  core::Money cost;
  core::Money profit;
  /// revenue / cost; 1.0 when no traffic.
  double price_to_cost = 1.0;
};

[[nodiscard]] std::vector<CdnAccount> per_cdn_accounts(const Scenario& scenario,
                                                       const DesignOutcome& outcome);

/// Per-country settlement, grouped by the *serving cluster's* country
/// (Figures 13-15: where delivery infrastructure earns or loses money).
struct CountryAccount {
  geo::CountryId country;
  double traffic_mbps = 0.0;
  core::Money revenue;
  core::Money cost;
  core::Money profit;
  double price_to_cost = 1.0;
};

[[nodiscard]] std::vector<CountryAccount> per_country_accounts(
    const Scenario& scenario, const DesignOutcome& outcome);

/// Weighted median helper (exposed for tests): median of `values` where
/// item i carries `weights[i]` mass. Returns 0 for empty/zero-mass input.
[[nodiscard]] double weighted_median(std::vector<std::pair<double, double>> value_weight);

/// Weighted q-quantile (q in [0,1]) of (value, weight) pairs; 0 on empty.
[[nodiscard]] double weighted_quantile(std::vector<std::pair<double, double>> value_weight,
                                       double q);

/// Client-weighted CDF summary of a design outcome: the paper reports "the
/// same trends in the CDFs of cost, score, and distance (not presented)" —
/// we present them as deciles (10th..90th percentile).
struct DistributionSummary {
  std::vector<double> cost_deciles;      // size 9
  std::vector<double> score_deciles;     // size 9
  std::vector<double> distance_deciles;  // size 9
};

[[nodiscard]] DistributionSummary design_distributions(const Scenario& scenario,
                                                       const DesignOutcome& outcome);

}  // namespace vdx::sim
