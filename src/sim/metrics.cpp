#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/stats.hpp"

namespace vdx::sim {

double weighted_median(std::vector<std::pair<double, double>> value_weight) {
  return weighted_quantile(std::move(value_weight), 0.5);
}

double weighted_quantile(std::vector<std::pair<double, double>> value_weight,
                         double q) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument{"weighted_quantile: q outside [0,1]"};
  }
  // Negative weights have no quantile semantics; silently folding them into
  // the total used to shift every threshold.
  for (const auto& [value, weight] : value_weight) {
    if (weight < 0.0) {
      throw std::invalid_argument{"weighted_quantile: negative weight"};
    }
  }
  // Zero-weight entries carry no mass but used to be able to win the final
  // fallback (and, at q=0, the first-entry return). Drop them up front.
  std::erase_if(value_weight, [](const auto& vw) { return vw.second == 0.0; });
  if (value_weight.empty()) return 0.0;
  std::sort(value_weight.begin(), value_weight.end());
  // Accumulate in sorted order and compare against the same accumulation
  // (total == final cumulative), so FP rounding cannot leave q=1 short of
  // the threshold and fall off the end of the loop.
  double total = 0.0;
  for (const auto& [value, weight] : value_weight) total += weight;
  const double threshold = total * q;
  double cumulative = 0.0;
  for (const auto& [value, weight] : value_weight) {
    cumulative += weight;
    if (cumulative >= threshold) return value;
  }
  return value_weight.back().first;
}

DesignMetrics compute_metrics(const Scenario& scenario, const DesignOutcome& outcome) {
  return compute_metrics_over(scenario, outcome, scenario.broker_groups());
}

DesignMetrics compute_metrics_over(const Scenario& scenario,
                                   const DesignOutcome& outcome,
                                   std::span<const broker::ClientGroup> groups) {
  DesignMetrics m;
  const auto& catalog = scenario.catalog();

  std::vector<std::pair<double, double>> costs;
  std::vector<std::pair<double, double>> scores;
  std::vector<std::pair<double, double>> distances;
  costs.reserve(outcome.placements.size());
  scores.reserve(outcome.placements.size());
  distances.reserve(outcome.placements.size());

  double total_clients = 0.0;
  double congested_clients = 0.0;
  double cost_sum = 0.0;
  double score_sum = 0.0;

  for (const Placement& p : outcome.placements) {
    const broker::ClientGroup& group = groups[p.group];
    // The paper's Cost metric is the *delivery* cost (bandwidth + colo) of
    // serving the client (§8 quantifies it as infrastructure savings), not
    // the contract price the CP pays — prices drive the optimizer and the
    // settlement accounting instead.
    const double client_cost =
        catalog.cluster(p.cluster).unit_cost() * group.bitrate_mbps;
    costs.emplace_back(client_cost, p.clients);
    scores.emplace_back(p.score, p.clients);
    distances.emplace_back(scenario.distance_miles(group.city, p.cluster), p.clients);
    total_clients += p.clients;
    cost_sum += client_cost * p.clients;
    score_sum += p.score * p.clients;
    m.broker_traffic_mbps += p.clients * group.bitrate_mbps;

    const cdn::Cluster& cluster = catalog.cluster(p.cluster);
    // "Greater than 100% load": a cluster filled to exactly its capacity is
    // full, not congested — allow solver-quantization slack (0.1%).
    if (cluster.capacity > 0.0 &&
        outcome.cluster_loads[p.cluster.value()] > cluster.capacity * 1.001 + 1e-6) {
      congested_clients += p.clients;
    }
  }

  m.median_cost = weighted_median(std::move(costs));
  m.median_score = weighted_median(std::move(scores));
  m.median_distance_miles = weighted_median(std::move(distances));
  if (total_clients > 0.0) {
    m.congested_fraction = congested_clients / total_clients;
    m.mean_cost = cost_sum / total_clients;
    m.mean_score = score_sum / total_clients;
  }

  std::vector<double> loads;
  for (const cdn::Cluster& cluster : catalog.clusters()) {
    const double load = outcome.cluster_loads[cluster.id.value()];
    if (load > 0.0 && cluster.capacity > 0.0) loads.push_back(load / cluster.capacity);
  }
  m.median_load = core::median(loads).value_or(0.0);
  return m;
}

DistributionSummary design_distributions(const Scenario& scenario,
                                          const DesignOutcome& outcome) {
  const auto groups = scenario.broker_groups();
  const auto& catalog = scenario.catalog();
  std::vector<std::pair<double, double>> costs;
  std::vector<std::pair<double, double>> scores;
  std::vector<std::pair<double, double>> distances;
  for (const Placement& p : outcome.placements) {
    const broker::ClientGroup& group = groups[p.group];
    costs.emplace_back(catalog.cluster(p.cluster).unit_cost() * group.bitrate_mbps,
                       p.clients);
    scores.emplace_back(p.score, p.clients);
    distances.emplace_back(scenario.distance_miles(group.city, p.cluster), p.clients);
  }
  DistributionSummary summary;
  for (int decile = 1; decile <= 9; ++decile) {
    const double q = static_cast<double>(decile) / 10.0;
    summary.cost_deciles.push_back(weighted_quantile(costs, q));
    summary.score_deciles.push_back(weighted_quantile(scores, q));
    summary.distance_deciles.push_back(weighted_quantile(distances, q));
  }
  return summary;
}

namespace {

template <typename Account>
void finalize(Account& account) {
  account.profit = account.revenue - account.cost;
  account.price_to_cost = account.cost.micros() != 0
                              ? account.revenue.dollars() / account.cost.dollars()
                              : 1.0;
}

}  // namespace

std::vector<CdnAccount> per_cdn_accounts(const Scenario& scenario,
                                         const DesignOutcome& outcome) {
  const auto& catalog = scenario.catalog();
  const auto groups = scenario.broker_groups();
  std::vector<CdnAccount> accounts(catalog.cdns().size());
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    accounts[i].cdn = cdn::CdnId{static_cast<std::uint32_t>(i)};
  }
  for (const Placement& p : outcome.placements) {
    const cdn::Cluster& cluster = catalog.cluster(p.cluster);
    CdnAccount& account = accounts[cluster.cdn.value()];
    const double mbps = p.clients * groups[p.group].bitrate_mbps;
    account.traffic_mbps += mbps;
    account.revenue += core::Money::from_dollars(mbps * p.price);
    account.cost += core::Money::from_dollars(mbps * cluster.unit_cost());
  }
  for (auto& account : accounts) finalize(account);
  return accounts;
}

std::vector<CountryAccount> per_country_accounts(const Scenario& scenario,
                                                 const DesignOutcome& outcome) {
  const auto& catalog = scenario.catalog();
  const auto& world = scenario.world();
  const auto groups = scenario.broker_groups();
  std::vector<CountryAccount> accounts(world.countries().size());
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    accounts[i].country = geo::CountryId{static_cast<std::uint32_t>(i)};
  }
  for (const Placement& p : outcome.placements) {
    const cdn::Cluster& cluster = catalog.cluster(p.cluster);
    CountryAccount& account =
        accounts[world.country_of(cluster.city).id.value()];
    const double mbps = p.clients * groups[p.group].bitrate_mbps;
    account.traffic_mbps += mbps;
    account.revenue += core::Money::from_dollars(mbps * p.price);
    account.cost += core::Money::from_dollars(mbps * cluster.unit_cost());
  }
  for (auto& account : accounts) finalize(account);
  return accounts;
}

}  // namespace vdx::sim
