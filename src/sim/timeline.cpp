#include "sim/timeline.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cdn/menu_cache.hpp"
#include "sim/timeline_detail.hpp"

namespace vdx::sim {

namespace {

/// Sessions of `trace` active at time t, in id order.
std::vector<trace::Session> active_at(const trace::BrokerTrace& trace, double t) {
  std::vector<trace::Session> out;
  for (const trace::Session& s : trace.sessions()) {
    if (s.active_at(t)) out.push_back(s);
  }
  return out;
}

std::vector<detail::SessionRef> to_refs(const std::vector<trace::Session>& sessions) {
  std::vector<detail::SessionRef> refs;
  refs.reserve(sessions.size());
  for (const trace::Session& s : sessions) {
    refs.push_back(detail::SessionRef{s.id.value(), s.city, s.bitrate_mbps});
  }
  return refs;
}

}  // namespace

TimelineResult run_timeline(const Scenario& scenario, const TimelineConfig& config) {
  if (!(config.epoch_s > 0.0)) {
    throw std::invalid_argument{"TimelineConfig: epoch_s must be > 0"};
  }
  TimelineResult result;
  const double duration = scenario.broker_trace().duration_s();
  const auto epochs = static_cast<std::size_t>(std::ceil(duration / config.epoch_s));

  // Menus are a pure function of the scenario, so build them once per run
  // and let every epoch's round hit the cache (cached and uncached menus
  // are byte-identical, DESIGN.md §8). Background placement needs
  // default-config menus; the design round may need a trimmed config —
  // share one cache when the two coincide.
  RunConfig base_run = config.run;
  const std::size_t cities = scenario.world().cities().size();
  std::optional<cdn::CandidateMenuCache> design_cache;
  std::optional<cdn::CandidateMenuCache> background_cache;
  if (base_run.menus == nullptr) {
    design_cache.emplace(scenario.catalog(), scenario.mapping(), cities,
                         menu_config_for(config.design, base_run));
    base_run.menus = &*design_cache;
  }
  const cdn::CandidateMenuCache* background_menus = base_run.menus;
  if (!(background_menus->config() == cdn::MatchingConfig{})) {
    background_cache.emplace(scenario.catalog(), scenario.mapping(), cities,
                             cdn::MatchingConfig{});
    background_menus = &*background_cache;
  }

  detail::ChurnTracker churn;
  for (std::size_t e = 0; e < epochs; ++e) {
    const double mid = (static_cast<double>(e) + 0.5) * config.epoch_s;

    const auto broker_sessions = active_at(scenario.broker_trace(), mid);
    const auto background_sessions = active_at(scenario.background_trace(), mid);
    if (broker_sessions.empty()) continue;

    const auto groups = broker::group_sessions(broker_sessions);
    const auto background_groups = broker::group_sessions(background_sessions);
    const auto background_loads =
        place_background_over(scenario, background_groups, background_menus);

    RunConfig run = base_run;
    run.qoe_epoch = e + 1;  // fresh broker-side measurements each round
    const DesignOutcome outcome =
        run_design_over(scenario, config.design, run, groups, background_loads);

    auto assignment =
        detail::assign_sessions(to_refs(broker_sessions), groups, outcome);

    EpochReport report;
    report.epoch = e;
    report.time_s = mid;
    report.active_sessions = broker_sessions.size();
    report.assigned_sessions = assignment.size();
    report.metrics = compute_metrics_over(scenario, outcome, groups);
    churn.observe(scenario.catalog(), std::move(assignment), report);
    result.epochs.push_back(std::move(report));
  }
  result.mean_cdn_switch_fraction = churn.mean_cdn_switch_fraction();
  return result;
}

}  // namespace vdx::sim
