#include "sim/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <unordered_map>

namespace vdx::sim {

namespace {

/// Sessions of `trace` active at time t, in id order.
std::vector<trace::Session> active_at(const trace::BrokerTrace& trace, double t) {
  std::vector<trace::Session> out;
  for (const trace::Session& s : trace.sessions()) {
    if (s.active_at(t)) out.push_back(s);
  }
  return out;
}

/// Grouping key matching broker::group_sessions (city, quantized bitrate).
std::uint64_t group_key(geo::CityId city, double bitrate_mbps) {
  const auto kbps = static_cast<std::uint64_t>(std::llround(bitrate_mbps * 1000.0));
  return (static_cast<std::uint64_t>(city.value()) << 32) | kbps;
}

/// Distributes each group's winning placements over its individual sessions
/// deterministically (sessions in id order, placements in cluster order),
/// returning session-id -> serving cluster.
std::unordered_map<std::uint32_t, cdn::ClusterId> assign_sessions(
    const std::vector<trace::Session>& sessions,
    std::span<const broker::ClientGroup> groups, const DesignOutcome& outcome) {
  // Group -> ordered placements.
  std::vector<std::vector<const Placement*>> per_group(groups.size());
  for (const Placement& p : outcome.placements) per_group[p.group].push_back(&p);
  for (auto& list : per_group) {
    std::sort(list.begin(), list.end(), [](const Placement* a, const Placement* b) {
      return a->cluster < b->cluster;
    });
  }

  std::unordered_map<std::uint64_t, std::size_t> group_of_key;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of_key.emplace(group_key(groups[g].city, groups[g].bitrate_mbps), g);
  }

  // Sessions of each group in id order.
  std::vector<std::vector<const trace::Session*>> sessions_of(groups.size());
  for (const trace::Session& s : sessions) {
    const auto it = group_of_key.find(group_key(s.city, s.bitrate_mbps));
    if (it != group_of_key.end()) sessions_of[it->second].push_back(&s);
  }

  std::unordered_map<std::uint32_t, cdn::ClusterId> assignment;
  assignment.reserve(sessions.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& list = per_group[g];
    if (list.empty()) continue;
    // Sequential quota fill: placement i serves the next round(clients_i)
    // sessions. Quotas sum to the group size up to rounding; the final
    // placement absorbs the remainder.
    std::size_t next = 0;
    double carry = 0.0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      double quota = list[i]->clients + carry;
      std::size_t take = static_cast<std::size_t>(std::llround(quota));
      carry = quota - static_cast<double>(take);
      if (i + 1 == list.size()) take = sessions_of[g].size() - next;  // remainder
      for (std::size_t k = 0; k < take && next < sessions_of[g].size(); ++k, ++next) {
        assignment.emplace(sessions_of[g][next]->id.value(), list[i]->cluster);
      }
    }
  }
  return assignment;
}

}  // namespace

TimelineResult run_timeline(const Scenario& scenario, const TimelineConfig& config) {
  if (!(config.epoch_s > 0.0)) {
    throw std::invalid_argument{"TimelineConfig: epoch_s must be > 0"};
  }
  TimelineResult result;
  const double duration = scenario.broker_trace().duration_s();
  const auto epochs = static_cast<std::size_t>(std::ceil(duration / config.epoch_s));

  std::unordered_map<std::uint32_t, cdn::ClusterId> previous;
  double switch_weight = 0.0;
  double switch_sum = 0.0;

  for (std::size_t e = 0; e < epochs; ++e) {
    const double mid = (static_cast<double>(e) + 0.5) * config.epoch_s;

    const auto broker_sessions = active_at(scenario.broker_trace(), mid);
    const auto background_sessions = active_at(scenario.background_trace(), mid);
    if (broker_sessions.empty()) continue;

    const auto groups = broker::group_sessions(broker_sessions);
    const auto background_groups = broker::group_sessions(background_sessions);
    const auto background_loads = place_background_over(scenario, background_groups);

    RunConfig run = config.run;
    run.qoe_epoch = e + 1;  // fresh broker-side measurements each round
    const DesignOutcome outcome =
        run_design_over(scenario, config.design, run, groups, background_loads);

    const auto assignment = assign_sessions(broker_sessions, groups, outcome);

    EpochReport report;
    report.epoch = e;
    report.time_s = mid;
    report.active_sessions = broker_sessions.size();
    report.metrics = compute_metrics_over(scenario, outcome, groups);

    if (!previous.empty()) {
      std::size_t surviving = 0;
      std::size_t cdn_switched = 0;
      std::size_t cluster_switched = 0;
      for (const auto& [session, cluster] : assignment) {
        const auto before = previous.find(session);
        if (before == previous.end()) continue;
        ++surviving;
        if (before->second != cluster) ++cluster_switched;
        if (scenario.catalog().cluster(before->second).cdn !=
            scenario.catalog().cluster(cluster).cdn) {
          ++cdn_switched;
        }
      }
      if (surviving > 0) {
        report.cdn_switch_fraction =
            static_cast<double>(cdn_switched) / static_cast<double>(surviving);
        report.cluster_switch_fraction =
            static_cast<double>(cluster_switched) / static_cast<double>(surviving);
        switch_sum += report.cdn_switch_fraction * static_cast<double>(surviving);
        switch_weight += static_cast<double>(surviving);
      }
    }
    previous = assignment;
    result.epochs.push_back(std::move(report));
  }
  if (switch_weight > 0.0) {
    result.mean_cdn_switch_fraction = switch_sum / switch_weight;
  }
  return result;
}

}  // namespace vdx::sim
