// Adversarial stress scenarios: the named workload/supply regimes the
// steady-state paper never explores (DESIGN.md §11).
//
// A scenario bundles demand-side modulators (trace::WorkloadModulation:
// flash crowds, diurnal sinusoids) with supply-side events (regional
// blackouts that take clusters dark, CDN price shocks) placed at fixed
// fractions of the run horizon. Both sides are pure functions of
// (config, time): the demand side reshapes the deterministic trace
// partition, and the SupplyStressController below reconstitutes the exact
// catalog state for any epoch time — which is what keeps
// StreamingTimeline::resume() byte-identical across a crash inside a
// blackout or mid-spike.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/catalog.hpp"
#include "core/flags.hpp"
#include "core/ids.hpp"
#include "geo/world.hpp"
#include "trace/modulation.hpp"

namespace vdx::sim {

class Scenario;

/// The named stress regimes. kPerfectStorm composes every other one.
enum class StressScenario : std::uint8_t {
  kSteady = 0,
  kFlashCrowd,
  kDiurnal,
  kBlackout,
  kPriceShock,
  kPerfectStorm,
};

[[nodiscard]] std::string_view to_string(StressScenario scenario) noexcept;
/// All scenario names, registry order (for --list-scenarios and one_of).
[[nodiscard]] std::span<const std::string_view> stress_scenario_names() noexcept;
[[nodiscard]] std::optional<StressScenario> stress_scenario_from(
    std::string_view name) noexcept;

/// CLI-facing stress knobs; defaults reproduce the ISSUE's flagship numbers
/// (a 50x single-city flash crowd, a 3x price shock).
struct StressConfig {
  StressScenario scenario = StressScenario::kSteady;
  /// City hit by the flash crowd; SIZE_MAX picks the busiest city.
  std::size_t spike_city = static_cast<std::size_t>(-1);
  double spike_factor = 50.0;
  /// Country name ("A".."S") blacked out; empty picks the highest-demand one.
  std::string blackout_region;
  double shock_factor = 3.0;
  /// Active-session admission budget for the streaming engine; 0 = off.
  std::size_t shed_budget = 0;
};

/// Reads and validates the stress flags (--scenario, --spike-city,
/// --spike-factor, --blackout-region, --shock-factor, --shed-budget).
/// Throws std::invalid_argument with a one-line message on nonsense
/// (unknown scenario, factor <= 0).
[[nodiscard]] StressConfig stress_config_from_flags(core::Flags& flags);

/// Folds the stress configuration into a stable 64-bit hash, mixed into the
/// run fingerprint so a checkpoint taken under one scenario refuses to
/// resume under another.
[[nodiscard]] std::uint64_t stress_config_hash(const StressConfig& config) noexcept;

/// A regional blackout: every cluster in `country` is dark (capacity 0)
/// while start_s <= t < end_s.
struct BlackoutSpec {
  core::CountryId country;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// A market-wide price shock: bandwidth costs and contract prices multiply
/// by `factor` while start_s <= t < end_s.
struct PriceShockSpec {
  double factor = 3.0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// A fully resolved scenario over one run horizon.
struct StressProfile {
  trace::WorkloadModulation demand;
  std::vector<BlackoutSpec> blackouts;
  std::vector<PriceShockSpec> price_shocks;

  [[nodiscard]] bool supply_active() const noexcept {
    return !blackouts.empty() || !price_shocks.empty();
  }
};

/// Resolves `config` against a world and horizon: picks default spike city /
/// blackout country (busiest by demand), places event windows at fixed
/// horizon fractions, validates explicit city/region references. Throws
/// std::invalid_argument on an unknown city index or region name.
[[nodiscard]] StressProfile make_stress_profile(const geo::World& world,
                                                const StressConfig& config,
                                                double horizon_s);

/// Applies the supply-side events to a Scenario's mutable CDN catalog as a
/// pure function of time. apply(t) computes the set of active windows at t
/// and, only on a set transition, restores every cluster/CDN to its base
/// values and re-applies the active events — so the catalog state depends
/// on t alone, never on the visit order. A freshly constructed controller
/// replaying any epoch sequence lands in the identical state, which makes
/// crash/resume safe without checkpointing the catalog.
class SupplyStressController {
 public:
  /// Captures base catalog values. `scenario` must outlive the controller.
  SupplyStressController(Scenario& scenario, StressProfile profile);
  /// Restores the base catalog.
  ~SupplyStressController();
  SupplyStressController(const SupplyStressController&) = delete;
  SupplyStressController& operator=(const SupplyStressController&) = delete;

  /// Moves the catalog to the state active at time t. Returns true when the
  /// active-window set changed (callers must rebuild anything that baked
  /// catalog values, e.g. candidate menus).
  bool apply(double t);

  /// Whether `cluster` is currently blacked out.
  [[nodiscard]] bool cluster_dark(cdn::ClusterId cluster) const noexcept;
  /// Bitmask of active windows (bit i: blackout i, bit 16+j: shock j).
  [[nodiscard]] std::uint32_t state_key() const noexcept { return state_; }
  [[nodiscard]] const StressProfile& profile() const noexcept { return profile_; }

  /// Restores the base catalog and clears the active set.
  void reset();

 private:
  Scenario* scenario_;
  StressProfile profile_;
  /// Clusters taken dark by each blackout spec (resolved once).
  std::vector<std::vector<cdn::ClusterId>> blackout_clusters_;
  std::vector<double> base_capacity_;
  std::vector<double> base_bandwidth_cost_;
  std::vector<double> base_contract_price_;
  std::vector<char> dark_;
  std::uint32_t state_ = 0;
};

}  // namespace vdx::sim
