// Scenario assembly: one coherent simulated universe.
//
// Mirrors the paper's simulation setup (§5.1): a world, 14 CDNs with
// provisioned capacities and contract prices, an internet mapping table,
// the broker trace (33.4K sessions) plus 3x background traffic, and the
// broker's client groups. Everything is derived deterministically from one
// seed.
#pragma once

#include <memory>
#include <vector>

#include "broker/grouping.hpp"
#include "cdn/catalog.hpp"
#include "cdn/provisioning.hpp"
#include "geo/world.hpp"
#include "net/mapping.hpp"
#include "net/performance.hpp"
#include "trace/generator.hpp"

namespace vdx::sim {

struct ScenarioConfig {
  geo::WorldConfig world;
  cdn::CatalogConfig catalog;
  trace::TraceConfig trace;
  net::PathModelConfig path;
  net::MappingConfig mapping;
  broker::GroupingConfig grouping;
  /// Non-broker traffic volume relative to broker traffic (paper: 3x).
  double background_multiplier = 3.0;
  /// §7.2 proliferation scenario: number of single-cluster city CDNs to
  /// append after base provisioning (0 = off).
  std::size_t city_cdn_count = 0;
  std::uint64_t seed = 2017;
};

class Scenario {
 public:
  [[nodiscard]] static Scenario build(const ScenarioConfig& config = {});

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] const geo::World& world() const noexcept { return *world_; }
  [[nodiscard]] const cdn::CdnCatalog& catalog() const noexcept { return *catalog_; }
  [[nodiscard]] cdn::CdnCatalog& catalog_mutable() noexcept { return *catalog_; }
  [[nodiscard]] const net::PathModel& path_model() const noexcept { return *path_model_; }
  [[nodiscard]] const net::MappingTable& mapping() const noexcept { return *mapping_; }
  [[nodiscard]] const trace::BrokerTrace& broker_trace() const noexcept {
    return *broker_trace_;
  }
  [[nodiscard]] const trace::BrokerTrace& background_trace() const noexcept {
    return *background_trace_;
  }
  [[nodiscard]] std::span<const broker::ClientGroup> broker_groups() const noexcept {
    return broker_groups_;
  }
  [[nodiscard]] std::span<const broker::ClientGroup> background_groups() const noexcept {
    return background_groups_;
  }
  [[nodiscard]] const cdn::ProvisioningReport& provisioning() const noexcept {
    return provisioning_;
  }

  /// Great-circle miles between a client city and a cluster's city (the
  /// paper's data-path Distance metric).
  [[nodiscard]] double distance_miles(geo::CityId city, cdn::ClusterId cluster) const;

 private:
  Scenario() = default;

  ScenarioConfig config_;
  std::unique_ptr<geo::World> world_;
  std::unique_ptr<cdn::CdnCatalog> catalog_;
  std::unique_ptr<net::PathModel> path_model_;
  std::unique_ptr<net::MappingTable> mapping_;
  std::unique_ptr<trace::BrokerTrace> broker_trace_;
  std::unique_ptr<trace::BrokerTrace> background_trace_;
  std::vector<broker::ClientGroup> broker_groups_;
  std::vector<broker::ClientGroup> background_groups_;
  cdn::ProvisioningReport provisioning_;
};

/// Demand points (city, bitrate, count) for a set of client groups.
[[nodiscard]] std::vector<cdn::DemandPoint> to_demand(
    std::span<const broker::ClientGroup> groups);

}  // namespace vdx::sim
