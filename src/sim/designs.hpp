// The CDN-broker decision-interface designs of Table 2, run as snapshot
// simulations (one Decision Protocol round over all clients, §5.1).
//
// Designs differ only in Share / Matching / Announce:
//   Brokered             no share; 1 load-balanced cluster; flat price;
//                        capacity estimated (per-CDN median).
//   Multicluster(k)      k clusters + performance; flat price; est. capacity.
//   DynamicPricing       1 cluster; true cluster price; est. capacity.
//   DynamicMulticluster  k clusters; true prices; est. capacity.
//   BestLookup           k clusters; true prices; TRUE capacity — but blind
//                        to non-broker traffic, so overbooking persists.
//   Marketplace (VDX)    share client data; k bids; true prices; capacity
//                        net of the CDN's own background load.
//   Omniscient           broker sees every cluster, true cost/score and
//                        remaining capacity.
// (Transactions is Marketplace with multi-round all-CDN approval; the paper
// discards it as impractical — the market module implements the round logic.)
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "broker/optimizer.hpp"
#include "cdn/matching.hpp"
#include "sim/scenario.hpp"

namespace vdx::cdn {
class CandidateMenuCache;
}

namespace vdx::sim {

enum class Design : std::uint8_t {
  kBrokered,
  kMulticluster2,
  kMulticluster100,
  kDynamicPricing,
  kDynamicMulticluster,
  kBestLookup,
  kMarketplace,
  kOmniscient,
};

inline constexpr Design kAllDesigns[] = {
    Design::kBrokered,       Design::kMulticluster2,  Design::kMulticluster100,
    Design::kDynamicPricing, Design::kDynamicMulticluster,
    Design::kBestLookup,     Design::kMarketplace,    Design::kOmniscient,
};

[[nodiscard]] std::string_view to_string(Design design) noexcept;

/// Table 2 requirement flags.
struct DesignTraits {
  bool shares_clients = false;       // Share column
  bool multi_cluster = false;        // Matching column
  bool announces_cost = false;       // DCP requirement
  bool announces_capacity = false;   // accurate capacities
  bool cluster_level_optimization = false;  // CO
  bool dynamic_cluster_pricing = false;     // DCP
  int traffic_predictability = 0;           // 0 none, 1 weak, 2 strong
};

[[nodiscard]] DesignTraits traits_of(Design design) noexcept;

struct RunConfig {
  /// Objective weights (paper Fig. 9). The defaults balance the two terms'
  /// magnitudes in our units (median score ~25, median client cost ~5 $),
  /// mirroring the knee of the paper's Figure-17 trade-off curve.
  broker::OptimizeWeights weights{1.0, 2.0};
  /// Bids per (CDN, share) for multi-cluster designs; the Figure-18 knob.
  std::size_t bid_count = 100;
  /// Score tolerance of the multi-bid menus: bids only cover clusters within
  /// this factor of the CDN's best score for the client (the paper's menus
  /// are all "similar performance" alternatives — Table 1 uses 25%; we
  /// default slightly wider to keep menus of ~4+ per CDN).
  double menu_tolerance = 1.35;
  /// Epoch salt for the broker's own QoE model (designs whose Announce has
  /// no performance data). Real brokers re-measure continuously, so their
  /// estimates fluctuate between decision rounds; the timeline simulator
  /// varies this per epoch to reproduce today's re-decision churn.
  std::uint64_t qoe_epoch = 0;
  solver::SolveOptions solve;  // defaults to kAuto (MCF at trace scale)
  /// Per-group bid construction runs on this many threads (0 =
  /// hardware_concurrency, 1 = serial). Groups are independent and bids are
  /// concatenated in group order, so output is byte-identical at any value.
  std::size_t threads = 1;
  /// Optional shared menu cache (non-owning). Used only when its
  /// MatchingConfig matches the one this run needs — otherwise menus are
  /// built on the fly exactly as before.
  const cdn::CandidateMenuCache* menus = nullptr;
  /// Tolerate groups no CDN bid on (they stay unserved) instead of
  /// throwing. Incremental feeds — streaming timelines updating demand
  /// between rounds — can momentarily present such groups.
  bool allow_unbid_groups = false;
};

/// One placement: `clients` clients of `group` served by `cluster` at
/// `price` $/unit; `score` is the true path score for metric purposes.
struct Placement {
  std::size_t group = 0;  // index into scenario.broker_groups()
  cdn::ClusterId cluster;
  double clients = 0.0;
  double price = 0.0;
  double score = 0.0;
};

struct DesignOutcome {
  Design design = Design::kBrokered;
  std::vector<Placement> placements;
  /// Total load per cluster (background + broker), Mbps, by ClusterId value.
  std::vector<double> cluster_loads;
  /// Background-only load per cluster, Mbps.
  std::vector<double> background_loads;
};

/// Places the background (non-broker) traffic: every background group is
/// split evenly across the base CDNs, and each CDN load-balances its slice
/// internally. Deterministic.
[[nodiscard]] std::vector<double> place_background(const Scenario& scenario);

/// Same, over an explicit background population (timeline epochs use the
/// background sessions active at the epoch midpoint). `menus` (optional,
/// non-owning) must be built over the default MatchingConfig — the CDN's own
/// internal load balancing uses full menus, not broker-trimmed ones.
[[nodiscard]] std::vector<double> place_background_over(
    const Scenario& scenario, std::span<const broker::ClientGroup> groups,
    const cdn::CandidateMenuCache* menus = nullptr);

/// The MatchingConfig that run_design_over(design, config, ...) builds its
/// candidate menus with: trimmed (bid_count, menu_tolerance) for
/// multi-cluster designs, the default config for single-cluster designs
/// (the CDN answers from its full menu), default for Omniscient too (which
/// bypasses menus entirely). Build a CandidateMenuCache over this config
/// and pass it via RunConfig::menus to have every round of a timeline hit
/// the cache instead of rebuilding menus per epoch.
[[nodiscard]] cdn::MatchingConfig menu_config_for(Design design,
                                                  const RunConfig& config);

/// Runs one design end to end (background placement + bid construction +
/// broker optimization) and returns the placements and final loads.
[[nodiscard]] DesignOutcome run_design(const Scenario& scenario, Design design,
                                       const RunConfig& config = {});

/// Same, over an explicit client population and background load vector
/// (placement group indices refer to `groups`). Used by the timeline
/// simulator, which re-runs the Decision Protocol per epoch over the
/// then-active sessions.
[[nodiscard]] DesignOutcome run_design_over(const Scenario& scenario, Design design,
                                            const RunConfig& config,
                                            std::span<const broker::ClientGroup> groups,
                                            std::span<const double> background_loads);

/// CDN-internal delivery-time load balancing: shifts clients from overloaded
/// clusters onto same-CDN siblings (co-located first, then nearest) with
/// headroom. Applied by run_design for single-cluster designs (where cluster
/// choice stays with the CDN); exposed for tests.
void rebalance_within_cdn(const Scenario& scenario, DesignOutcome& outcome);
void rebalance_within_cdn_over(const Scenario& scenario, DesignOutcome& outcome,
                               std::span<const broker::ClientGroup> groups);

}  // namespace vdx::sim
