// Experiment drivers: one function per paper table/figure (DESIGN.md §4).
// Bench binaries print these rows; integration tests assert their shapes.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "net/mapping.hpp"
#include "sim/metrics.hpp"
#include "trace/stats.hpp"

namespace vdx::sim {

// ---- Figure 3: per-country cost relative to average. ----
struct Fig3Row {
  std::string country;
  double cost_vs_average = 0.0;  // 1.0 == average
};
[[nodiscard]] std::vector<Fig3Row> fig3_country_costs(const Scenario& scenario);

// ---- Figure 4: moved-session time series (via trace::stats). ----
[[nodiscard]] std::vector<double> fig4_moved_series(const Scenario& scenario,
                                                    double bin_s = 5.0);

// ---- Figure 5: per-city CDN usage + best-fit lines. ----
struct Fig5Result {
  std::vector<trace::CityUsage> usage;
  std::array<std::optional<core::LinearFit>, trace::kTraceCdnCount> fits;
};
[[nodiscard]] Fig5Result fig5_city_usage(const Scenario& scenario);

// ---- Figure 7: per-country CDN usage. ----
[[nodiscard]] std::vector<trace::CountryUsage> fig7_country_usage(
    const Scenario& scenario, std::size_t min_requests = 100);

// ---- Table 1: alternative clusters with similar scores (the major CDN). ----
[[nodiscard]] net::AlternativeStats table1_alternatives(const Scenario& scenario,
                                                        double tolerance = 0.25);

// ---- Table 3: design comparison. ----
struct Table3Row {
  Design design;
  DesignMetrics metrics;
};
[[nodiscard]] std::vector<Table3Row> table3_design_comparison(
    const Scenario& scenario, const RunConfig& config = {});

// ---- Figures 10-12 (per CDN) and 13-15 (per country):
//      Brokered vs Marketplace settlement. ----
struct SettlementComparison {
  std::vector<CdnAccount> brokered_cdn;
  std::vector<CdnAccount> vdx_cdn;
  std::vector<CountryAccount> brokered_country;
  std::vector<CountryAccount> vdx_country;
};
[[nodiscard]] SettlementComparison settlement_comparison(const Scenario& scenario,
                                                         const RunConfig& config = {});

// ---- Figure 17: cost vs distance as the cost weight sweeps. ----
struct Fig17Point {
  Design design;
  double cost_weight = 1.0;
  double median_cost = 0.0;
  double median_distance_miles = 0.0;
};
/// `threads` parallelizes across (design, weight) points (0 = hardware,
/// 1 = serial); points come back in sweep order either way.
[[nodiscard]] std::vector<Fig17Point> fig17_tradeoff(
    const Scenario& scenario, std::span<const double> cost_weights,
    std::span<const Design> designs, std::size_t threads = 1);

// ---- Figure 18: bid count vs average cost and score (Marketplace). ----
// The paper's figure uses a performance-leaning broker (additional bids buy
// performance at higher cost); `cost_weight` defaults accordingly.
struct Fig18Point {
  std::size_t bid_count = 0;
  double mean_cost = 0.0;
  double mean_score = 0.0;
};
[[nodiscard]] std::vector<Fig18Point> fig18_bid_count(
    const Scenario& scenario, std::span<const std::size_t> bid_counts,
    double cost_weight = 0.3, std::size_t threads = 1);

}  // namespace vdx::sim
