#include "resilience/supervisor.hpp"

#include <algorithm>

namespace vdx::resilience {

namespace {

/// min(base << streak, max) with shift-overflow clamping.
std::uint64_t backoff_ticks(const RestartPolicy& policy, std::size_t streak) {
  if (policy.backoff_base_ticks == 0) return 0;
  const std::size_t shift = std::min<std::size_t>(streak, 63);
  std::uint64_t ticks = policy.backoff_base_ticks;
  for (std::size_t i = 0; i < shift; ++i) {
    if (policy.backoff_max_ticks != 0 && ticks >= policy.backoff_max_ticks) break;
    ticks <<= 1;
  }
  if (policy.backoff_max_ticks != 0) {
    ticks = std::min(ticks, policy.backoff_max_ticks);
  }
  return ticks;
}

}  // namespace

Supervisor::Supervisor(RestartPolicy policy, obs::Observer obs)
    : policy_(policy), obs_(obs) {
  if (obs.metrics != nullptr) {
    restarts_ = obs.metrics->counter("resilience.restarts");
    backoffs_ = obs.metrics->counter("resilience.restart_backoffs");
    denials_ = obs.metrics->counter("resilience.restarts_denied");
  }
}

RestartDecision Supervisor::on_failure(std::uint32_t child, std::uint64_t now) {
  Child& state = children_[child];
  if (now < state.next_allowed) {
    backoffs_.add(1.0);
    return RestartDecision::kBackoff;
  }
  if (policy_.window_ticks > 0) {
    const std::uint64_t horizon =
        now >= policy_.window_ticks ? now - policy_.window_ticks + 1 : 0;
    std::erase_if(state.restart_ticks,
                  [horizon](std::uint64_t tick) { return tick < horizon; });
  }
  if (policy_.max_restarts > 0 && state.restart_ticks.size() >= policy_.max_restarts) {
    ++denied_n_;
    denials_.add(1.0);
    obs_.record(obs::EventKind::kRestartDenied, child,
                static_cast<double>(state.restart_ticks.size()));
    return RestartDecision::kGiveUp;
  }
  state.restart_ticks.push_back(now);
  const std::uint64_t wait = backoff_ticks(policy_, state.consecutive);
  ++state.consecutive;
  // base == 0 keeps next_allowed at `now`: immediate retries stay legal.
  state.next_allowed = now + wait;
  ++restarts_n_;
  restarts_.add(1.0);
  return RestartDecision::kRestart;
}

void Supervisor::on_success(std::uint32_t child) {
  const auto it = children_.find(child);
  if (it == children_.end()) return;
  it->second.consecutive = 0;
  it->second.next_allowed = 0;
}

std::uint64_t Supervisor::retry_at(std::uint32_t child) const {
  const auto it = children_.find(child);
  return it == children_.end() ? 0 : it->second.next_allowed;
}

std::size_t Supervisor::consecutive_failures(std::uint32_t child) const {
  const auto it = children_.find(child);
  return it == children_.end() ? 0 : it->second.consecutive;
}

}  // namespace vdx::resilience
