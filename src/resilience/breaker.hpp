// CircuitBreaker: quarantine for flapping dependencies (DESIGN.md §15).
//
// Classic three-state machine driven entirely by the logical clock:
//
//     closed --(N consecutive typed failures)--> open
//     open   --(open_ticks elapsed)-----------> half-open
//     half-open --(probe_successes in a row)--> closed
//     half-open --(any failure)---------------> open (timer restarts)
//
// The exchange keeps one breaker per shard link, the daemon one for the
// checkpointer; while a breaker is open the caller routes around the
// dependency (stale-slice settlement, checkpoint suspension) instead of
// burning its retry budget every round. Transitions are journaled
// (breaker_open / breaker_half_open / breaker_close, subject = breaker id)
// and counted under resilience.breaker.*.
#pragma once

#include <cstdint>

#include "obs/observe.hpp"

namespace vdx::resilience {

struct BreakerConfig {
  /// Consecutive failures that trip closed -> open. 0 disables the breaker
  /// entirely (it never opens), which is the permissive default for callers
  /// that predate this layer.
  std::size_t failure_threshold = 0;
  /// Ticks to hold open before allowing a half-open probe.
  std::uint64_t open_ticks = 4;
  /// Consecutive half-open successes required to close again.
  std::size_t probe_successes = 1;

  [[nodiscard]] bool enabled() const noexcept { return failure_threshold > 0; }
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(BreakerState state) noexcept;

class CircuitBreaker {
 public:
  /// `subject` tags journal events and is the caller's id for this link.
  explicit CircuitBreaker(BreakerConfig config = {}, obs::Observer obs = {},
                          std::uint32_t subject = obs::RunJournal::kNoSubject);

  /// Whether a call may proceed at logical time `now`. Open breakers flip
  /// to half-open (journaled) once `open_ticks` have elapsed, admitting
  /// exactly the probe traffic; otherwise the call must be skipped.
  [[nodiscard]] bool allow(std::uint64_t now);

  void on_success(std::uint64_t now);
  void on_failure(std::uint64_t now);

  [[nodiscard]] BreakerState state() const noexcept { return state_; }
  [[nodiscard]] bool open() const noexcept { return state_ == BreakerState::kOpen; }
  [[nodiscard]] std::uint64_t opened_total() const noexcept { return opened_n_; }

 private:
  void trip(std::uint64_t now);

  BreakerConfig config_;
  obs::Observer obs_;
  std::uint32_t subject_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t probe_streak_ = 0;
  std::uint64_t opened_at_ = 0;
  std::uint64_t opened_n_ = 0;
  obs::Counter opens_;
  obs::Counter closes_;
  obs::Counter rejected_;
};

}  // namespace vdx::resilience
