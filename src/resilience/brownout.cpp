#include "resilience/brownout.hpp"

#include <algorithm>

namespace vdx::resilience {

const char* to_string(Health health) noexcept {
  switch (health) {
    case Health::kOk: return "ok";
    case Health::kDegraded: return "degraded";
    case Health::kCritical: return "critical";
  }
  return "unknown";
}

BrownoutController::BrownoutController(BrownoutConfig config, obs::Observer obs)
    : config_(config), obs_(obs) {
  config_.max_step = std::clamp(config_.max_step, 0, 3);
  if (config_.recover_after_rounds == 0) config_.recover_after_rounds = 1;
  if (obs.metrics != nullptr) {
    step_gauge_ = obs.metrics->gauge("resilience.brownout.step");
    steps_up_ = obs.metrics->counter("resilience.brownout.steps_up");
    steps_down_ = obs.metrics->counter("resilience.brownout.steps_down");
  }
}

int BrownoutController::evaluate(const Signals& signals, std::uint64_t round) {
  const bool slo_breach = config_.p99_slo_ms > 0.0 &&
                          signals.rounds_observed >= config_.min_rounds_for_slo &&
                          signals.p99_ms > config_.p99_slo_ms;
  const bool unhealthy =
      signals.open_breakers > 0 || signals.checkpoint_suspended || slo_breach;

  if (unhealthy) {
    healthy_streak_ = 0;
    if (step_ < config_.max_step) move_to(step_ + 1, round);
  } else if (step_ > 0) {
    if (++healthy_streak_ >= config_.recover_after_rounds) {
      healthy_streak_ = 0;
      move_to(step_ - 1, round);
    }
  }
  if (step_ > 0) ++degraded_n_;
  return step_;
}

void BrownoutController::move_to(int step, std::uint64_t round) {
  if (step == step_) return;
  (step > step_ ? steps_up_ : steps_down_).add(1.0);
  step_ = step;
  step_gauge_.set(static_cast<double>(step_));
  obs_.record(obs::EventKind::kBrownoutStep,
              static_cast<std::uint32_t>(round & 0xFFFFFFFFu),
              static_cast<double>(step_));
}

Health BrownoutController::health() const noexcept {
  if (step_ <= 0) return Health::kOk;
  return step_ >= 3 ? Health::kCritical : Health::kDegraded;
}

}  // namespace vdx::resilience
