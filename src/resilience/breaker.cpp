#include "resilience/breaker.hpp"

namespace vdx::resilience {

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config, obs::Observer obs,
                               std::uint32_t subject)
    : config_(config), obs_(obs), subject_(subject) {
  if (obs.metrics != nullptr) {
    opens_ = obs.metrics->counter("resilience.breaker.opens");
    closes_ = obs.metrics->counter("resilience.breaker.closes");
    rejected_ = obs.metrics->counter("resilience.breaker.rejected");
  }
}

bool CircuitBreaker::allow(std::uint64_t now) {
  if (!config_.enabled()) return true;
  if (state_ == BreakerState::kOpen) {
    if (now >= opened_at_ + config_.open_ticks) {
      state_ = BreakerState::kHalfOpen;
      probe_streak_ = 0;
      obs_.record(obs::EventKind::kBreakerHalfOpen, subject_,
                  static_cast<double>(now - opened_at_));
      return true;
    }
    rejected_.add(1.0);
    return false;
  }
  return true;
}

void CircuitBreaker::on_success(std::uint64_t now) {
  if (!config_.enabled()) return;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    if (++probe_streak_ >= config_.probe_successes) {
      state_ = BreakerState::kClosed;
      probe_streak_ = 0;
      closes_.add(1.0);
      obs_.record(obs::EventKind::kBreakerClose, subject_,
                  static_cast<double>(now - opened_at_));
    }
  }
}

void CircuitBreaker::on_failure(std::uint64_t now) {
  if (!config_.enabled()) return;
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the timer.
    trip(now);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    trip(now);
  }
}

void CircuitBreaker::trip(std::uint64_t now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  probe_streak_ = 0;
  ++opened_n_;
  opens_.add(1.0);
  obs_.record(obs::EventKind::kBreakerOpen, subject_,
              static_cast<double>(config_.open_ticks));
}

}  // namespace vdx::resilience
