// Supervisor: deterministic restart policy for crashing children
// (DESIGN.md §15).
//
// Owns the restart budget for a set of children (shard workers, the
// checkpointer): every failure is answered with one of three decisions —
// restart now, hold off (exponential backoff still running), or give up
// (the per-window budget is spent). All timing is expressed in ticks of
// the caller's logical clock (settlement rounds for the exchange, serve
// rounds for the daemon), never wall time, and the backoff schedule is
// jitter-free — min(base << consecutive_failures, max) — so any failure
// sequence replays to the identical restart sequence.
#pragma once

#include <cstdint>
#include <map>

#include "obs/observe.hpp"

namespace vdx::resilience {

struct RestartPolicy {
  /// Restarts allowed inside a sliding `window_ticks` window; 0 = unbounded.
  std::size_t max_restarts = 0;
  /// Width of the restart-budget window; 0 = budget never expires entries.
  std::uint64_t window_ticks = 0;
  /// First backoff after a failure streak starts; 0 = restart immediately.
  std::uint64_t backoff_base_ticks = 0;
  /// Backoff ceiling; 0 = uncapped doubling.
  std::uint64_t backoff_max_ticks = 0;
};

enum class RestartDecision : std::uint8_t {
  kRestart,  // respawn the child now
  kBackoff,  // too soon — ask again on a later tick
  kGiveUp,   // restart budget spent; quarantine the child
};

class Supervisor {
 public:
  explicit Supervisor(RestartPolicy policy = {}, obs::Observer obs = {});

  /// Child `child` failed at logical time `now`: decides whether to restart.
  /// kRestart charges the budget and schedules the next backoff; kBackoff
  /// and kGiveUp leave the child down (kGiveUp is journaled kRestartDenied).
  [[nodiscard]] RestartDecision on_failure(std::uint32_t child, std::uint64_t now);

  /// Child proved healthy: resets its failure streak and backoff.
  void on_success(std::uint32_t child);

  /// Earliest tick at which on_failure(child) can return kRestart again.
  [[nodiscard]] std::uint64_t retry_at(std::uint32_t child) const;
  [[nodiscard]] std::size_t consecutive_failures(std::uint32_t child) const;
  [[nodiscard]] std::uint64_t restarts_total() const noexcept { return restarts_n_; }
  [[nodiscard]] std::uint64_t denied_total() const noexcept { return denied_n_; }

  [[nodiscard]] const RestartPolicy& policy() const noexcept { return policy_; }

 private:
  struct Child {
    std::vector<std::uint64_t> restart_ticks;  // inside the current window
    std::size_t consecutive = 0;
    std::uint64_t next_allowed = 0;
  };

  RestartPolicy policy_;
  obs::Observer obs_;
  std::map<std::uint32_t, Child> children_;
  std::uint64_t restarts_n_ = 0;
  std::uint64_t denied_n_ = 0;
  obs::Counter restarts_;
  obs::Counter backoffs_;
  obs::Counter denials_;
};

}  // namespace vdx::resilience
