// BrownoutController: explicit, journaled partial-degradation ladder
// (DESIGN.md §15).
//
// Instead of failing rounds outright when the serving loop is unhealthy —
// round p99 over SLO, a breaker open, checkpointing suspended — the daemon
// climbs a small ladder of increasingly aggressive sheds, one step per
// unhealthy round, and climbs back down hysteretically (one step per
// `recover_after_rounds` consecutive healthy rounds) so a single good round
// never snaps straight back to full service:
//
//   step 0  full service                                   health ok
//   step 1  skip non-critical exports (telemetry detail)   health degraded
//   step 2  stale-slice settlement for quarantined shards  health degraded
//   step 3  shrink the admission budget                    health critical
//
// Step transitions are journaled (brownout_step, value = new step) and the
// current step/health are exported via /healthz. All triggers are logical
// (round-indexed), and the latency trigger is off by default (p99_slo_ms =
// 0) so deterministic tests can drive the ladder purely from breaker state.
#pragma once

#include <cstdint>

#include "obs/observe.hpp"

namespace vdx::resilience {

struct BrownoutConfig {
  /// Round-latency SLO in ms; 0 disables the latency trigger.
  double p99_slo_ms = 0.0;
  /// Rounds to observe before the p99 estimate is trusted.
  std::uint64_t min_rounds_for_slo = 16;
  /// Consecutive healthy rounds required per step-down.
  std::uint64_t recover_after_rounds = 3;
  /// Admission budget multiplier while at step >= 3.
  double admission_shrink = 0.5;
  /// Ladder ceiling (<= 3). Drills that must stay byte-transparent cap at 2:
  /// budget shrink changes decisions and diverges downstream state.
  int max_step = 3;
};

enum class Health : std::uint8_t { kOk, kDegraded, kCritical };

[[nodiscard]] const char* to_string(Health health) noexcept;

class BrownoutController {
 public:
  explicit BrownoutController(BrownoutConfig config = {}, obs::Observer obs = {});

  /// Health inputs for one serving round.
  struct Signals {
    std::size_t open_breakers = 0;
    bool checkpoint_suspended = false;
    /// Observed round-latency p99 in ms (ignored while p99_slo_ms == 0 or
    /// fewer than min_rounds_for_slo rounds have completed).
    double p99_ms = 0.0;
    std::uint64_t rounds_observed = 0;
  };

  /// Re-evaluates the ladder after round `round`; returns the active step.
  int evaluate(const Signals& signals, std::uint64_t round);

  [[nodiscard]] int step() const noexcept { return step_; }
  [[nodiscard]] Health health() const noexcept;
  /// Step >= 1: drop non-critical telemetry exports for the round.
  [[nodiscard]] bool skip_noncritical_exports() const noexcept { return step_ >= 1; }
  /// Step >= 2: settle quarantined shards from their cached slices.
  [[nodiscard]] bool stale_slice_mode() const noexcept { return step_ >= 2; }
  /// Budget multiplier for admission (1.0 below step 3).
  [[nodiscard]] double admission_factor() const noexcept {
    return step_ >= 3 ? config_.admission_shrink : 1.0;
  }
  /// Rounds spent at step >= 1 so far.
  [[nodiscard]] std::uint64_t rounds_degraded() const noexcept { return degraded_n_; }

  [[nodiscard]] const BrownoutConfig& config() const noexcept { return config_; }

 private:
  void move_to(int step, std::uint64_t round);

  BrownoutConfig config_;
  obs::Observer obs_;
  int step_ = 0;
  std::uint64_t healthy_streak_ = 0;
  std::uint64_t degraded_n_ = 0;
  obs::Gauge step_gauge_;
  obs::Counter steps_up_;
  obs::Counter steps_down_;
};

}  // namespace vdx::resilience
