// Batched candidate scoring: the one sweep every bidding layer shares.
//
// The streaming timeline (sim/designs.cpp), the exchange CDN agents
// (market/agents.cpp), and the federation regions (market/federation.cpp)
// all walk a (cdn, city) menu computing the same two values per candidate:
// the spare capacity after background load ("max(0, capacity - load)") and a
// scaled price ("unit_cost * multiplier"). With the menu cache holding its
// candidates as structure-of-arrays lanes, that walk becomes two contiguous
// strided sweeps over flat double arrays plus one gather on the cluster ids
// — no per-candidate struct hops, and the arithmetic (operand order and all)
// is exactly the scalar loop each call site used to inline, so bids are
// byte-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vdx::cdn {

/// SoA view of one (cdn, city) menu inside the arena (see
/// CandidateMenuCache::lanes). Lane i describes the same candidate as
/// element i of the menu() span.
struct MenuLanes {
  std::span<const std::uint32_t> cluster;
  std::span<const double> score;
  std::span<const double> unit_cost;
  std::span<const double> capacity;

  [[nodiscard]] std::size_t size() const noexcept { return cluster.size(); }
};

/// Reusable sweep output (sized by score_sweep; keep one per worker so the
/// hot path never allocates).
struct SweepBuffer {
  std::vector<double> price;
  std::vector<double> spare;
};

/// Fills, for each candidate i of `lanes`:
///   out.price[i] = unit_cost[i] * price_multiplier
///   out.spare[i] = max(0.0, capacity[i] - background[cluster[i]])
/// `background` may be empty, in which case spare[i] = max(0.0, capacity[i]).
void score_sweep(const MenuLanes& lanes, double price_multiplier,
                 std::span<const double> background, SweepBuffer& out);

}  // namespace vdx::cdn
