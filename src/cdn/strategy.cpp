#include "cdn/strategy.hpp"

#include <algorithm>

namespace vdx::cdn {

RiskAverseStrategy::RiskAverseStrategy(RiskAverseConfig config) : config_(config) {}

BidShading RiskAverseStrategy::shade(CityId city, ClusterId cluster) {
  const auto it = state_.find(key(city, cluster));
  if (it == state_.end()) {
    // First contact with this market: full markup, hedged capacity.
    return BidShading{config_.max_markup, 0.5};
  }
  const State& s = it->second;
  // Commit capacity proportional to how much we expect to win, with a floor
  // so the CDN keeps probing markets it currently loses.
  const double fraction =
      std::max(config_.min_capacity_fraction, std::min(1.0, s.win_rate + 0.1));
  return BidShading{s.price_multiplier, fraction};
}

void RiskAverseStrategy::record_outcome(CityId city, ClusterId cluster,
                                        double bid_mbps, double won_mbps) {
  auto [it, inserted] =
      state_.try_emplace(key(city, cluster), State{config_.max_markup});
  State& s = it->second;
  const double outcome = bid_mbps > 0.0 ? std::clamp(won_mbps / bid_mbps, 0.0, 1.0) : 0.0;
  s.win_rate = (1.0 - config_.win_rate_alpha) * s.win_rate +
               config_.win_rate_alpha * outcome;
  // Losing market: shave the price toward cost. Winning market: recover
  // margin toward the full markup.
  if (outcome < 0.25) {
    s.price_multiplier =
        std::max(config_.min_markup, s.price_multiplier - config_.price_step);
  } else if (outcome > 0.75) {
    s.price_multiplier =
        std::min(config_.max_markup, s.price_multiplier + config_.price_step);
  }
}

double RiskAverseStrategy::expected_win(CityId city, ClusterId cluster,
                                        double bid_mbps) const {
  const auto it = state_.find(key(city, cluster));
  const double rate = it == state_.end() ? 0.5 : it->second.win_rate;
  return rate * bid_mbps;
}

double RiskAverseStrategy::win_rate(CityId city, ClusterId cluster) const {
  const auto it = state_.find(key(city, cluster));
  return it == state_.end() ? 0.5 : it->second.win_rate;
}

std::vector<BiddingStrategy::SavedEntry> RiskAverseStrategy::save_state() const {
  std::vector<SavedEntry> entries;
  entries.reserve(state_.size());
  for (const auto& [key, s] : state_) {
    entries.push_back(SavedEntry{key, s.win_rate, s.price_multiplier});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SavedEntry& a, const SavedEntry& b) { return a.key < b.key; });
  return entries;
}

void RiskAverseStrategy::restore_state(std::span<const SavedEntry> entries) {
  state_.clear();
  state_.reserve(entries.size());
  for (const SavedEntry& entry : entries) {
    State s{entry.price_multiplier};
    s.win_rate = entry.win_rate;
    state_.emplace(entry.key, s);
  }
}

std::unique_ptr<BiddingStrategy> make_static_strategy(double markup) {
  return std::make_unique<StaticStrategy>(markup);
}

std::unique_ptr<BiddingStrategy> make_risk_averse_strategy(RiskAverseConfig config) {
  return std::make_unique<RiskAverseStrategy>(config);
}

}  // namespace vdx::cdn
