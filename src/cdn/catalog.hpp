// The CDN catalog: 14 world-wide CDNs with heterogeneous deployment models.
//
// Substitution note (DESIGN.md §2): the paper takes one real CDN's footprint
// plus 13 footprints inferred from PeeringDB. We synthesize 14 CDNs over the
// synthetic world with the same *deployment-model contrast* the evaluation
// exploits: one highly distributed CDN ("CDN 1" = the trace's "CDN A"),
// several regional players, and a few centrally-deployed CDNs with deep
// capacity ("CDN B"/"CDN C"). §7.2's proliferation scenario appends 200
// single-cluster city CDNs drawn from the existing location pool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cdn/cluster.hpp"
#include "core/rng.hpp"
#include "geo/world.hpp"
#include "net/mapping.hpp"

namespace vdx::cdn {

struct CatalogConfig {
  std::size_t cdn_count = 14;
  /// Fraction of world cities covered by each deployment model.
  double distributed_coverage = 0.85;
  double regional_coverage = 0.35;
  double central_coverage = 0.10;
  /// Clusters per site: CDNs deploy several clusters in a metro (the paper's
  /// Table 1 finds ~4 clusters with similar scores per client block).
  /// Distributed CDNs multi-home their busiest sites; central CDNs
  /// concentrate capacity into several clusters at each strategic site.
  std::size_t distributed_big_site_clusters = 3;
  std::size_t central_site_clusters = 4;
  std::size_t regional_site_clusters = 2;
  /// Demand-weight rank cutoff (fraction of cities) that counts as a "big"
  /// site for the distributed model.
  double big_site_fraction = 0.3;
  /// Base bandwidth cost in the cheapest country, $/unit.
  double base_bandwidth_cost = 1.0;
  /// Base co-location cost before the colocation-count discount, $/unit.
  double base_colo_cost = 0.5;
  /// Std-dev of per-cluster bandwidth-cost jitter relative to the country
  /// mean (paper: derived from top-8 US ISP spread; ~25%).
  double intra_country_sigma = 0.25;
  /// Settlement markup (paper: 1.2).
  double markup = 1.2;
};

class CdnCatalog {
 public:
  /// Builds the 14-CDN catalog. Deterministic for a given rng state.
  [[nodiscard]] static CdnCatalog generate(const geo::World& world,
                                           const CatalogConfig& config, core::Rng& rng);

  [[nodiscard]] std::span<const Cdn> cdns() const noexcept { return cdns_; }
  [[nodiscard]] std::span<const Cluster> clusters() const noexcept { return clusters_; }

  [[nodiscard]] const Cdn& cdn(CdnId id) const;
  [[nodiscard]] const Cluster& cluster(ClusterId id) const;
  [[nodiscard]] Cluster& cluster_mutable(ClusterId id);
  [[nodiscard]] Cdn& cdn_mutable(CdnId id);

  /// Cluster ids owned by a CDN (ordered).
  [[nodiscard]] std::span<const ClusterId> clusters_of(CdnId id) const;

  /// Mapping-table vantage list: one vantage per cluster, index == cluster
  /// id value (the catalog guarantees dense cluster ids).
  [[nodiscard]] std::vector<net::Vantage> vantages(const geo::World& world) const;

  /// §7.2 proliferation: appends `count` single-cluster city CDNs at
  /// locations drawn from the existing cluster location pool, then reapplies
  /// the co-location discount (their arrival lowers colo costs).
  void add_city_cdns(const geo::World& world, std::size_t count, core::Rng& rng);

  /// Recomputes every cluster's colo cost from co-location counts. Called by
  /// generate()/add_city_cdns(); exposed for tests.
  void apply_colocation_discount(const geo::World& world);

 private:
  CdnCatalog(CatalogConfig config) : config_(config) {}

  ClusterId add_cluster(const geo::World& world, CdnId cdn, geo::CityId city,
                        core::Rng& rng);

  CatalogConfig config_;
  std::vector<Cdn> cdns_;
  std::vector<Cluster> clusters_;
};

}  // namespace vdx::cdn
