#include "cdn/menu_cache.hpp"

#include <stdexcept>

#include "core/parallel.hpp"

namespace vdx::cdn {

CandidateMenuCache::CandidateMenuCache(const CdnCatalog& catalog,
                                       const net::MappingTable& mapping,
                                       std::size_t city_count,
                                       const MatchingConfig& config,
                                       core::ThreadPool* pool)
    : config_(config),
      cdn_count_(catalog.cdns().size()),
      city_count_(city_count),
      menus_(cdn_count_ * city_count_) {
  const auto build_slot = [&](std::size_t slot) {
    const CdnId cdn = catalog.cdns()[slot / city_count_].id;
    const geo::CityId city{static_cast<std::uint32_t>(slot % city_count_)};
    menus_[slot] = candidates_for(catalog, mapping, cdn, city, config_);
  };
  if (pool != nullptr && menus_.size() > 1) {
    core::parallel_for_indexed(*pool, menus_.size(), build_slot);
  } else {
    for (std::size_t slot = 0; slot < menus_.size(); ++slot) build_slot(slot);
  }
}

std::span<const Candidate> CandidateMenuCache::menu(CdnId cdn, geo::CityId city) const {
  const std::size_t c = cdn.value();
  const std::size_t y = city.value();
  if (c >= cdn_count_ || y >= city_count_) {
    throw std::out_of_range{"CandidateMenuCache::menu: cdn/city out of range"};
  }
  return menus_[c * city_count_ + y];
}

std::size_t CandidateMenuCache::total_candidates() const noexcept {
  std::size_t total = 0;
  for (const std::vector<Candidate>& menu : menus_) total += menu.size();
  return total;
}

}  // namespace vdx::cdn
