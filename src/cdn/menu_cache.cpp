#include "cdn/menu_cache.hpp"

#include <stdexcept>

#include "core/parallel.hpp"

namespace vdx::cdn {

CandidateMenuCache::CandidateMenuCache(const CdnCatalog& catalog,
                                       const net::MappingTable& mapping,
                                       std::size_t city_count,
                                       const MatchingConfig& config,
                                       core::ThreadPool* pool)
    : config_(config),
      cdn_count_(catalog.cdns().size()),
      city_count_(city_count) {
  // Menus are computed slot-by-slot (independently, so optionally in
  // parallel), then compacted into the arena serially in slot order — the
  // layout is identical at any thread count.
  const std::size_t slots = cdn_count_ * city_count_;
  std::vector<std::vector<Candidate>> built(slots);
  const auto build_slot = [&](std::size_t slot) {
    const CdnId cdn = catalog.cdns()[slot / city_count_].id;
    const geo::CityId city{static_cast<std::uint32_t>(slot % city_count_)};
    built[slot] = candidates_for(catalog, mapping, cdn, city, config_);
  };
  if (pool != nullptr && slots > 1) {
    core::parallel_for_indexed(*pool, slots, build_slot);
  } else {
    for (std::size_t slot = 0; slot < slots; ++slot) build_slot(slot);
  }

  offsets_.resize(slots + 1);
  std::size_t total = 0;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    offsets_[slot] = static_cast<std::uint32_t>(total);
    total += built[slot].size();
  }
  offsets_[slots] = static_cast<std::uint32_t>(total);

  arena_.reserve(total);
  lane_cluster_.reserve(total);
  lane_score_.reserve(total);
  lane_cost_.reserve(total);
  lane_capacity_.reserve(total);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    for (const Candidate& c : built[slot]) {
      arena_.push_back(c);
      lane_cluster_.push_back(c.cluster.value());
      lane_score_.push_back(c.score);
      lane_cost_.push_back(c.unit_cost);
      lane_capacity_.push_back(c.capacity);
    }
  }
}

std::size_t CandidateMenuCache::slot_of(CdnId cdn, geo::CityId city) const {
  const std::size_t c = cdn.value();
  const std::size_t y = city.value();
  if (c >= cdn_count_ || y >= city_count_) {
    throw std::out_of_range{"CandidateMenuCache::menu: cdn/city out of range"};
  }
  return c * city_count_ + y;
}

std::span<const Candidate> CandidateMenuCache::menu(CdnId cdn, geo::CityId city) const {
  const std::size_t slot = slot_of(cdn, city);
  return {arena_.data() + offsets_[slot], offsets_[slot + 1] - offsets_[slot]};
}

MenuLanes CandidateMenuCache::lanes(CdnId cdn, geo::CityId city) const {
  const std::size_t slot = slot_of(cdn, city);
  const std::size_t first = offsets_[slot];
  const std::size_t len = offsets_[slot + 1] - first;
  MenuLanes lanes;
  lanes.cluster = {lane_cluster_.data() + first, len};
  lanes.score = {lane_score_.data() + first, len};
  lanes.unit_cost = {lane_cost_.data() + first, len};
  lanes.capacity = {lane_capacity_.data() + first, len};
  return lanes;
}

}  // namespace vdx::cdn
