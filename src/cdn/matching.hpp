// CDN-side Matching (Decision Protocol step 4, paper §4.1/§5.1).
//
// "For each client, a CDN selects a set of candidate clusters with scores at
//  most 2x worse than the best score. If there is no other cluster with a
//  score within 2x the best, the second best scoring cluster is selected.
//  Candidate clusters are sorted from lowest to highest cost, with the
//  matchings prioritized in that order."
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cdn/catalog.hpp"
#include "net/mapping.hpp"

namespace vdx::cdn {

/// One candidate matching a CDN would offer for a client location.
struct Candidate {
  ClusterId cluster;
  double score = 0.0;      // performance estimate (lower better)
  double unit_cost = 0.0;  // the CDN's internal cost, $/unit
  double capacity = 0.0;   // cluster capacity, Mbps
};

struct MatchingConfig {
  /// Candidates must score within `score_tolerance` x best (paper: 2x).
  double score_tolerance = 2.0;
  /// Cap on candidates returned (the Figure-18 "number of bids" knob).
  /// 0 means "the tolerance set only".
  std::size_t max_candidates = 0;

  /// Equality is the CandidateMenuCache key check: a cache built for one
  /// config must not serve menus for another.
  friend bool operator==(const MatchingConfig&, const MatchingConfig&) = default;
};

/// Builds the candidate list of `cdn` for clients in `city`, sorted by
/// ascending internal cost (the paper's bid priority order).
[[nodiscard]] std::vector<Candidate> candidates_for(const CdnCatalog& catalog,
                                                    const net::MappingTable& mapping,
                                                    CdnId cdn, geo::CityId city,
                                                    const MatchingConfig& config = {});

/// The CDN's own single-cluster pick for `city` given current cluster loads
/// (Mbps, indexed by ClusterId value): cheapest candidate with headroom for
/// `additional_mbps`, else the least-loaded candidate. This is the
/// capacity-aware internal load balancing of traditional delivery (§2.1) and
/// the reason single-cluster designs do not congest in Table 3.
[[nodiscard]] Candidate pick_load_balanced(std::span<const Candidate> candidates,
                                           std::span<const double> loads,
                                           double additional_mbps);

}  // namespace vdx::cdn
