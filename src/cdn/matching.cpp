#include "cdn/matching.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vdx::cdn {

std::vector<Candidate> candidates_for(const CdnCatalog& catalog,
                                      const net::MappingTable& mapping, CdnId cdn,
                                      geo::CityId city, const MatchingConfig& config) {
  if (!(config.score_tolerance >= 1.0)) {
    throw std::invalid_argument{"MatchingConfig: score_tolerance must be >= 1"};
  }
  const auto cluster_ids = catalog.clusters_of(cdn);
  if (cluster_ids.empty()) return {};

  std::vector<Candidate> all;
  all.reserve(cluster_ids.size());
  for (const ClusterId id : cluster_ids) {
    const Cluster& cluster = catalog.cluster(id);
    all.push_back(Candidate{id, mapping.score(city, id.value()), cluster.unit_cost(),
                            cluster.capacity});
  }
  std::sort(all.begin(), all.end(),
            [](const Candidate& a, const Candidate& b) { return a.score < b.score; });

  const auto by_cost = [](const Candidate& a, const Candidate& b) {
    if (a.unit_cost != b.unit_cost) return a.unit_cost < b.unit_cost;
    return a.score < b.score;
  };

  // Tolerance rule: clusters within score_tolerance x best; if none, the
  // second-best scoring cluster is included anyway (paper §5.1). The 2x
  // default admits a large set (Table 1's "similar" statistic uses a much
  // tighter 25%), which is how Matching can produce up to 100 alternatives.
  const double cutoff = all.front().score * config.score_tolerance;
  std::size_t keep = 1;
  while (keep < all.size() && all[keep].score <= cutoff) ++keep;
  if (keep == 1 && all.size() >= 2) keep = 2;
  all.resize(keep);
  std::sort(all.begin(), all.end(), by_cost);
  if (config.max_candidates != 0 && all.size() > config.max_candidates) {
    all.resize(config.max_candidates);
  }
  return all;
}

Candidate pick_load_balanced(std::span<const Candidate> candidates,
                             std::span<const double> loads, double additional_mbps) {
  if (candidates.empty()) {
    throw std::invalid_argument{"pick_load_balanced: no candidates"};
  }
  // Cheapest candidate that still fits the new traffic.
  for (const Candidate& c : candidates) {
    const double load = loads[c.cluster.value()];
    if (load + additional_mbps <= c.capacity) return c;
  }
  // All full: pick the least relatively-loaded one.
  const Candidate* best = &candidates.front();
  double best_ratio = std::numeric_limits<double>::infinity();
  for (const Candidate& c : candidates) {
    const double cap = c.capacity > 0.0 ? c.capacity : 1e-9;
    const double ratio = loads[c.cluster.value()] / cap;
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = &c;
    }
  }
  return *best;
}

}  // namespace vdx::cdn
