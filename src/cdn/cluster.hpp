// Core CDN entity types shared across the delivery stack.
//
// Unit conventions (used consistently everywhere):
//  * traffic/bitrate/capacity are in Mbps sustained over the evaluation
//    snapshot (the Decision Protocol re-runs every few minutes, §4.1);
//  * money rates are dollars per Mbps served for the snapshot window
//    ("$/unit" below) — only relative magnitudes matter to the paper's
//    metrics, and one coherent unit keeps settlement exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.hpp"

namespace vdx::cdn {

using core::CdnId;
using core::CityId;
using core::ClusterId;

/// One CDN point of presence.
struct Cluster {
  ClusterId id;  // dense across ALL CDNs (doubles as the mapping vantage idx)
  CdnId cdn;
  CityId city;
  /// Bandwidth cost, $/unit: country factor x base with per-ISP spread.
  double bandwidth_cost = 0.0;
  /// Co-location (rack/energy) cost, $/unit: decreases with the log of the
  /// number of co-located CDNs (paper §5.1).
  double colo_cost = 0.0;
  /// Serving capacity in Mbps; assigned by provisioning (2x the traffic the
  /// cluster receives when its CDN is offered the whole workload, §5.1).
  double capacity = 0.0;
  /// Measurement-vantage decorrelation salt for the mapping table.
  std::uint64_t salt = 0;

  /// Full internal delivery cost, $/unit.
  [[nodiscard]] double unit_cost() const noexcept { return bandwidth_cost + colo_cost; }
};

/// Deployment style, the axis the paper's §7.1.1 evaluation contrasts.
enum class DeploymentModel : std::uint8_t {
  kDistributed,  // clusters in most cities (paper's "CDN A")
  kRegional,     // one or two continents
  kCentral,      // few strategic locations, deep capacity ("CDN B/C")
  kCityCentric,  // single cluster (§7.2 proliferation scenario)
};

[[nodiscard]] constexpr const char* to_string(DeploymentModel model) noexcept {
  switch (model) {
    case DeploymentModel::kDistributed:
      return "distributed";
    case DeploymentModel::kRegional:
      return "regional";
    case DeploymentModel::kCentral:
      return "central";
    case DeploymentModel::kCityCentric:
      return "city-centric";
  }
  return "unknown";
}

struct Cdn {
  CdnId id;
  std::string name;
  DeploymentModel model = DeploymentModel::kRegional;
  std::vector<ClusterId> clusters;
  /// Flat-rate contract price, $/unit: the CDN's average unit cost if it
  /// alone served the full workload, times the markup (§5.1, §7.1.1).
  double contract_price = 0.0;
  /// Settlement markup over internal cost (paper uses 1.2).
  double markup = 1.2;
};

}  // namespace vdx::cdn
