#include "cdn/provisioning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "cdn/matching.hpp"
#include "core/stats.hpp"

namespace vdx::cdn {

ProvisioningReport provision(CdnCatalog& catalog, const geo::World& world,
                             const net::MappingTable& mapping,
                             std::span<const DemandPoint> demand,
                             const ProvisioningConfig& config) {
  if (demand.empty()) throw std::invalid_argument{"provision: empty demand"};
  if (!(config.capacity_multiplier > 0.0)) {
    throw std::invalid_argument{"provision: capacity_multiplier must be > 0"};
  }

  ProvisioningReport report;
  report.solo_traffic.assign(catalog.cdns().size(), 0.0);
  report.median_capacity.assign(catalog.cdns().size(), 0.0);

  for (const Cdn& cdn : catalog.cdns()) {
    const auto cluster_ids = catalog.clusters_of(cdn.id);
    if (cluster_ids.empty()) continue;

    // Solo-offer exercise: every demand point lands on this CDN's
    // best-scoring cluster — how CDNs place traffic today, on network
    // measurements (§2.1). The same rule drives single-cluster delivery in
    // the Brokered/DynamicPricing designs, so contract prices and realized
    // delivery costs differ only through broker *selection* skew — the
    // Figure-10 mechanism.
    std::vector<double> traffic(cluster_ids.size(), 0.0);
    double weighted_cost = 0.0;  // traffic-weighted unit cost
    double total_traffic = 0.0;
    for (const DemandPoint& point : demand) {
      std::size_t best = 0;
      double best_score = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < cluster_ids.size(); ++k) {
        const double s = mapping.score(point.city, cluster_ids[k].value());
        if (s < best_score) {
          best_score = s;
          best = k;
        }
      }
      const double mbps = point.bitrate * point.count;
      traffic[best] += mbps;
      weighted_cost += mbps * catalog.cluster(cluster_ids[best]).unit_cost();
      total_traffic += mbps;
    }

    // Capacity: 2x received traffic; zero-traffic clusters borrow from the
    // geographically closest sibling that saw traffic.
    for (std::size_t k = 0; k < cluster_ids.size(); ++k) {
      catalog.cluster_mutable(cluster_ids[k]).capacity =
          config.capacity_multiplier * traffic[k];
    }
    for (std::size_t k = 0; k < cluster_ids.size(); ++k) {
      if (traffic[k] > 0.0) continue;
      double best_distance = std::numeric_limits<double>::infinity();
      std::size_t donor = SIZE_MAX;
      for (std::size_t j = 0; j < cluster_ids.size(); ++j) {
        if (traffic[j] <= 0.0) continue;
        const double d = world.distance_km(catalog.cluster(cluster_ids[k]).city,
                                           catalog.cluster(cluster_ids[j]).city);
        if (d < best_distance) {
          best_distance = d;
          donor = j;
        }
      }
      if (donor != SIZE_MAX) {
        // "Take capacity from" the donor: split the donor's provisioned
        // capacity evenly with the idle cluster.
        Cluster& donor_cluster = catalog.cluster_mutable(cluster_ids[donor]);
        Cluster& idle_cluster = catalog.cluster_mutable(cluster_ids[k]);
        const double half = donor_cluster.capacity / 2.0;
        donor_cluster.capacity -= half;
        idle_cluster.capacity = half;
      }
    }

    // Contract price: average unit cost under the solo offer, marked up.
    const double average_cost =
        total_traffic > 0.0 ? weighted_cost / total_traffic : 0.0;
    catalog.cdn_mutable(cdn.id).contract_price = average_cost * cdn.markup;

    report.solo_traffic[cdn.id.value()] = total_traffic;
    std::vector<double> caps;
    caps.reserve(cluster_ids.size());
    for (const ClusterId id : cluster_ids) caps.push_back(catalog.cluster(id).capacity);
    report.median_capacity[cdn.id.value()] = core::median(caps).value_or(0.0);
  }

  return report;
}

}  // namespace vdx::cdn
