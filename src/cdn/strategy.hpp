// CDN bidding strategies for the marketplace.
//
// The paper argues (§6.3) that under VDX "CDNs can learn risk-averse bidding
// strategies over time that will likely provide traffic predictability", and
// leaves modeling them as future work. We implement the hook and one
// concrete learner: an EWMA win-rate tracker per (city, cluster) that shades
// the committed capacity toward the traffic it actually expects to win and
// nudges the price multiplier down when it keeps losing (and back up toward
// the full markup when it keeps winning).
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "cdn/cluster.hpp"

namespace vdx::cdn {

/// Per-bid adjustment a strategy applies before the bid is announced.
struct BidShading {
  /// Multiplier on internal cost to form the announced price (>= 1.0).
  double price_multiplier = 1.2;
  /// Fraction of the cluster's spare capacity committed to this bid.
  double capacity_fraction = 1.0;
};

class BiddingStrategy {
 public:
  virtual ~BiddingStrategy() = default;

  /// Called before each bid is placed.
  [[nodiscard]] virtual BidShading shade(CityId city, ClusterId cluster) = 0;

  /// Feedback from the broker's Accept step: how much of the bid traffic was
  /// won (0 for a lost bid).
  virtual void record_outcome(CityId city, ClusterId cluster, double bid_mbps,
                              double won_mbps) = 0;

  /// Expected traffic for a bid of `bid_mbps`, used by the predictability
  /// metric (|expected - actual| shrinks as the strategy learns).
  [[nodiscard]] virtual double expected_win(CityId city, ClusterId cluster,
                                            double bid_mbps) const = 0;

  /// One learned (city, cluster) entry, for checkpoint/restore. The key
  /// packs (city << 32 | cluster); values are strategy-specific.
  struct SavedEntry {
    std::uint64_t key = 0;
    double win_rate = 0.0;
    double price_multiplier = 0.0;

    friend bool operator==(const SavedEntry&, const SavedEntry&) = default;
  };

  /// Checkpointable learning state in key-ascending order (a canonical
  /// serialization order, whatever container backs the live state).
  /// Stateless strategies return empty and ignore restores.
  [[nodiscard]] virtual std::vector<SavedEntry> save_state() const { return {}; }
  virtual void restore_state(std::span<const SavedEntry> entries) {
    (void)entries;
  }
};

/// Bids full capacity at the fixed markup every round (no learning).
class StaticStrategy final : public BiddingStrategy {
 public:
  explicit StaticStrategy(double markup = 1.2) : markup_(markup) {}

  [[nodiscard]] BidShading shade(CityId, ClusterId) override {
    return BidShading{markup_, 1.0};
  }
  void record_outcome(CityId, ClusterId, double, double) override {}
  [[nodiscard]] double expected_win(CityId, ClusterId,
                                    double bid_mbps) const override {
    return bid_mbps;  // assumes it wins everything — maximally optimistic
  }

 private:
  double markup_;
};

struct RiskAverseConfig {
  double max_markup = 1.2;
  double min_markup = 1.02;  // never bid below cost plus a sliver
  /// EWMA smoothing for the win-rate estimate.
  double win_rate_alpha = 0.3;
  /// Price step per round of consistent losses/wins.
  double price_step = 0.03;
  /// Floor on committed capacity so the CDN keeps probing lost markets.
  double min_capacity_fraction = 0.1;
};

/// Learns per-(city, cluster) win rates from Accept feedback.
class RiskAverseStrategy final : public BiddingStrategy {
 public:
  explicit RiskAverseStrategy(RiskAverseConfig config = {});

  [[nodiscard]] BidShading shade(CityId city, ClusterId cluster) override;
  void record_outcome(CityId city, ClusterId cluster, double bid_mbps,
                      double won_mbps) override;
  [[nodiscard]] double expected_win(CityId city, ClusterId cluster,
                                    double bid_mbps) const override;

  /// Current win-rate estimate (testing/inspection).
  [[nodiscard]] double win_rate(CityId city, ClusterId cluster) const;

  [[nodiscard]] std::vector<SavedEntry> save_state() const override;
  void restore_state(std::span<const SavedEntry> entries) override;

 private:
  struct State {
    double win_rate = 0.5;  // optimistic-neutral prior
    double price_multiplier;
    explicit State(double markup) : price_multiplier(markup) {}
  };

  [[nodiscard]] static std::uint64_t key(CityId city, ClusterId cluster) noexcept {
    return (static_cast<std::uint64_t>(city.value()) << 32) | cluster.value();
  }

  RiskAverseConfig config_;
  std::unordered_map<std::uint64_t, State> state_;
};

/// Factory helper for the market layer.
[[nodiscard]] std::unique_ptr<BiddingStrategy> make_static_strategy(double markup = 1.2);
[[nodiscard]] std::unique_ptr<BiddingStrategy> make_risk_averse_strategy(
    RiskAverseConfig config = {});

}  // namespace vdx::cdn
