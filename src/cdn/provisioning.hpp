// Capacity and contract-price provisioning (paper §5.1).
//
// "A CDN's contract price is the average price per bit for the CDN if it was
//  individually offered to all clients. Cluster capacity is assigned
//  similarly; all clients are sent to each CDN individually and clusters are
//  assigned 2x received traffic as their capacity. Clusters that did not see
//  any clients take capacity from their closest neighbor with capacity."
#pragma once

#include <span>
#include <vector>

#include "cdn/catalog.hpp"
#include "geo/world.hpp"
#include "net/mapping.hpp"

namespace vdx::cdn {

/// Aggregated demand: `count` concurrent clients in `city` streaming at
/// `bitrate` Mbps each.
struct DemandPoint {
  geo::CityId city;
  double bitrate = 1.0;  // Mbps per client
  double count = 0.0;    // concurrent clients
};

struct ProvisioningConfig {
  /// Capacity = multiplier x traffic received in the solo-offer exercise.
  double capacity_multiplier = 2.0;
};

struct ProvisioningReport {
  /// Traffic each CDN attracted in its solo-offer run (Mbps), per CdnId.
  std::vector<double> solo_traffic;
  /// Median cluster capacity per CDN — the estimate capacity-blind designs
  /// use (§5.1), per CdnId.
  std::vector<double> median_capacity;
};

/// Runs the solo-offer exercise for every CDN: each demand point is served
/// by the CDN's best-scoring cluster; capacities and flat-rate contract
/// prices are derived from the resulting traffic. Mutates `catalog`.
ProvisioningReport provision(CdnCatalog& catalog, const geo::World& world,
                             const net::MappingTable& mapping,
                             std::span<const DemandPoint> demand,
                             const ProvisioningConfig& config = {});

}  // namespace vdx::cdn
