// CandidateMenuCache: memoized, immutable Matching menus.
//
// Every experiment layer (designs, federation, multi-broker, hybrid, the
// exchange agents) asks the same question over and over: "what candidate
// clusters does CDN c offer a client in city y under MatchingConfig m?"
// The answer is a pure function of (catalog, mapping, c, y, m), yet the
// seed code recomputed it from scratch at eight call sites — per design,
// per region, per broker, per round. This cache builds every (CDN, city)
// menu once per scenario and hands out read-only spans.
//
// Thread-safety by construction: the cache is *eagerly* built (optionally
// in parallel — slots are independent) and immutable afterwards, so any
// number of threads can read menus concurrently with no synchronization.
// Menus are byte-identical to calling cdn::candidates_for directly (the
// cache calls it), so cached and uncached paths cannot drift.
//
// Storage is one contiguous arena: every menu is an (offset, length) span
// into flat candidate arrays — an AoS image serving the menu() span API,
// plus structure-of-arrays lanes (cluster/score/cost/capacity) that the
// batched scoring kernel (cdn/score_sweep.hpp) sweeps contiguously.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cdn/matching.hpp"
#include "cdn/score_sweep.hpp"

namespace vdx::core {
class ThreadPool;
}

namespace vdx::cdn {

class CandidateMenuCache {
 public:
  /// Builds all cdn x city menus for one MatchingConfig. `city_count` is the
  /// world/mapping city count (CityIds are dense). Passing a pool builds the
  /// independent slots in parallel; the result is identical either way.
  CandidateMenuCache(const CdnCatalog& catalog, const net::MappingTable& mapping,
                     std::size_t city_count, const MatchingConfig& config,
                     core::ThreadPool* pool = nullptr);

  /// The menu cdn would offer clients in city, cost-sorted (== candidates_for).
  [[nodiscard]] std::span<const Candidate> menu(CdnId cdn, geo::CityId city) const;

  /// The same menu as SoA lanes for the score_sweep kernel (element i of
  /// every lane describes element i of the menu() span).
  [[nodiscard]] MenuLanes lanes(CdnId cdn, geo::CityId city) const;

  [[nodiscard]] const MatchingConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t cdn_count() const noexcept { return cdn_count_; }
  [[nodiscard]] std::size_t city_count() const noexcept { return city_count_; }
  /// Total candidates held — the memoized work a scenario no longer redoes.
  [[nodiscard]] std::size_t total_candidates() const noexcept {
    return arena_.size();
  }

 private:
  [[nodiscard]] std::size_t slot_of(CdnId cdn, geo::CityId city) const;

  MatchingConfig config_;
  std::size_t cdn_count_ = 0;
  std::size_t city_count_ = 0;
  /// Arena: slot = cdn * city_count_ + city (CdnIds and CityIds are dense);
  /// menu(slot) = candidates [offsets_[slot], offsets_[slot + 1]).
  std::vector<std::uint32_t> offsets_;
  std::vector<Candidate> arena_;  // AoS image behind the menu() span API
  // SoA lanes, parallel to arena_.
  std::vector<std::uint32_t> lane_cluster_;
  std::vector<double> lane_score_;
  std::vector<double> lane_cost_;
  std::vector<double> lane_capacity_;
};

}  // namespace vdx::cdn
