// CandidateMenuCache: memoized, immutable Matching menus.
//
// Every experiment layer (designs, federation, multi-broker, hybrid, the
// exchange agents) asks the same question over and over: "what candidate
// clusters does CDN c offer a client in city y under MatchingConfig m?"
// The answer is a pure function of (catalog, mapping, c, y, m), yet the
// seed code recomputed it from scratch at eight call sites — per design,
// per region, per broker, per round. This cache builds every (CDN, city)
// menu once per scenario and hands out read-only spans.
//
// Thread-safety by construction: the cache is *eagerly* built (optionally
// in parallel — slots are independent) and immutable afterwards, so any
// number of threads can read menus concurrently with no synchronization.
// Menus are byte-identical to calling cdn::candidates_for directly (the
// cache calls it), so cached and uncached paths cannot drift.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cdn/matching.hpp"

namespace vdx::core {
class ThreadPool;
}

namespace vdx::cdn {

class CandidateMenuCache {
 public:
  /// Builds all cdn x city menus for one MatchingConfig. `city_count` is the
  /// world/mapping city count (CityIds are dense). Passing a pool builds the
  /// independent slots in parallel; the result is identical either way.
  CandidateMenuCache(const CdnCatalog& catalog, const net::MappingTable& mapping,
                     std::size_t city_count, const MatchingConfig& config,
                     core::ThreadPool* pool = nullptr);

  /// The menu cdn would offer clients in city, cost-sorted (== candidates_for).
  [[nodiscard]] std::span<const Candidate> menu(CdnId cdn, geo::CityId city) const;

  [[nodiscard]] const MatchingConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t cdn_count() const noexcept { return cdn_count_; }
  [[nodiscard]] std::size_t city_count() const noexcept { return city_count_; }
  /// Total candidates held — the memoized work a scenario no longer redoes.
  [[nodiscard]] std::size_t total_candidates() const noexcept;

 private:
  MatchingConfig config_;
  std::size_t cdn_count_ = 0;
  std::size_t city_count_ = 0;
  /// menus_[cdn * city_count_ + city]; CdnIds and CityIds are dense.
  std::vector<std::vector<Candidate>> menus_;
};

}  // namespace vdx::cdn
