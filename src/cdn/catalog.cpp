#include "cdn/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace vdx::cdn {

namespace {

/// Cities ordered by descending demand weight.
std::vector<geo::CityId> cities_by_demand(const geo::World& world) {
  std::vector<geo::CityId> out;
  out.reserve(world.cities().size());
  for (const auto& city : world.cities()) out.push_back(city.id);
  std::sort(out.begin(), out.end(), [&](geo::CityId a, geo::CityId b) {
    return world.city(a).demand_weight > world.city(b).demand_weight;
  });
  return out;
}

std::size_t coverage_count(double coverage, std::size_t city_count) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(coverage * static_cast<double>(city_count))));
}

}  // namespace

ClusterId CdnCatalog::add_cluster(const geo::World& world, CdnId cdn, geo::CityId city,
                                  core::Rng& rng) {
  Cluster cluster;
  cluster.id = ClusterId{static_cast<std::uint32_t>(clusters_.size())};
  cluster.cdn = cdn;
  cluster.city = city;
  cluster.salt = (static_cast<std::uint64_t>(cdn.value()) << 32) ^ city.value() ^
                 (rng() % 1024);
  const auto& country = world.country_of(city);
  cluster.bandwidth_cost = config_.base_bandwidth_cost * country.bandwidth_cost_factor *
                           rng.lognormal(0.0, config_.intra_country_sigma);
  // colo cost finalized by apply_colocation_discount().
  cluster.colo_cost = config_.base_colo_cost * country.colo_cost_factor;
  clusters_.push_back(cluster);
  cdns_[cdn.value()].clusters.push_back(cluster.id);
  return cluster.id;
}

CdnCatalog CdnCatalog::generate(const geo::World& world, const CatalogConfig& config,
                                core::Rng& rng) {
  if (config.cdn_count == 0) throw std::invalid_argument{"CatalogConfig: cdn_count == 0"};
  CdnCatalog catalog{config};

  const auto by_demand = cities_by_demand(world);
  const std::size_t n_cities = world.cities().size();

  for (std::size_t i = 0; i < config.cdn_count; ++i) {
    Cdn cdn;
    cdn.id = CdnId{static_cast<std::uint32_t>(i)};
    cdn.name = "CDN " + std::to_string(i + 1);
    cdn.markup = config.markup;
    // Model mix: CDN 1 is the highly distributed player (the trace's
    // "CDN A"); a block of centrally-deployed CDNs follows (the trace's
    // "CDN B"/"CDN C" archetypes); the rest are regional.
    if (i == 0) {
      cdn.model = DeploymentModel::kDistributed;
    } else if (i >= 5 && i <= 8) {
      cdn.model = DeploymentModel::kCentral;
    } else {
      cdn.model = DeploymentModel::kRegional;
    }
    catalog.cdns_.push_back(std::move(cdn));
  }

  for (auto& cdn : catalog.cdns_) {
    switch (cdn.model) {
      case DeploymentModel::kDistributed: {
        // Nearly everywhere: the most popular cities plus random tail picks.
        // Busy metros get several clusters (multi-homed sites).
        const std::size_t want = coverage_count(config.distributed_coverage, n_cities);
        const std::size_t big_sites = coverage_count(config.big_site_fraction, want);
        for (std::size_t k = 0; k < want; ++k) {
          const std::size_t per_site =
              k < big_sites ? std::max<std::size_t>(
                                  1, config.distributed_big_site_clusters)
                            : 1;
          for (std::size_t c = 0; c < per_site; ++c) {
            catalog.add_cluster(world, cdn.id, by_demand[k], rng);
          }
        }
        break;
      }
      case DeploymentModel::kRegional: {
        // Anchor city plus its geographic neighbourhood.
        const std::size_t want = coverage_count(config.regional_coverage, n_cities);
        const geo::CityId anchor =
            world.cities()[rng.below(world.cities().size())].id;
        std::vector<geo::CityId> ordered;
        for (const auto& city : world.cities()) ordered.push_back(city.id);
        std::sort(ordered.begin(), ordered.end(), [&](geo::CityId a, geo::CityId b) {
          return world.distance_km(anchor, a) < world.distance_km(anchor, b);
        });
        for (std::size_t k = 0; k < want; ++k) {
          const std::size_t per_site =
              k < want / 3 ? std::max<std::size_t>(1, config.regional_site_clusters)
                           : 1;
          for (std::size_t c = 0; c < per_site; ++c) {
            catalog.add_cluster(world, cdn.id, ordered[k], rng);
          }
        }
        break;
      }
      case DeploymentModel::kCentral: {
        // Few strategic sites with deep capacity: several clusters each,
        // at cities with big demand and cheap delivery.
        const std::size_t want = coverage_count(config.central_coverage, n_cities);
        std::vector<geo::CityId> ordered;
        for (const auto& city : world.cities()) ordered.push_back(city.id);
        std::sort(ordered.begin(), ordered.end(), [&](geo::CityId a, geo::CityId b) {
          const double va = world.city(a).demand_weight /
                            world.country_of(a).bandwidth_cost_factor;
          const double vb = world.city(b).demand_weight /
                            world.country_of(b).bandwidth_cost_factor;
          return va > vb;
        });
        // Random offset so the central CDNs don't all stack identically.
        const std::size_t offset = rng.below(3);
        for (std::size_t k = 0; k < want; ++k) {
          for (std::size_t c = 0;
               c < std::max<std::size_t>(1, config.central_site_clusters); ++c) {
            catalog.add_cluster(world, cdn.id, ordered[(k + offset) % ordered.size()],
                                rng);
          }
        }
        break;
      }
      case DeploymentModel::kCityCentric:
        throw std::logic_error{"city-centric CDNs are added via add_city_cdns"};
    }
  }

  catalog.apply_colocation_discount(world);
  return catalog;
}

const Cdn& CdnCatalog::cdn(CdnId id) const {
  if (!id.valid() || id.value() >= cdns_.size()) {
    throw std::out_of_range{"CdnCatalog::cdn: bad id"};
  }
  return cdns_[id.value()];
}

Cdn& CdnCatalog::cdn_mutable(CdnId id) {
  return const_cast<Cdn&>(static_cast<const CdnCatalog*>(this)->cdn(id));
}

const Cluster& CdnCatalog::cluster(ClusterId id) const {
  if (!id.valid() || id.value() >= clusters_.size()) {
    throw std::out_of_range{"CdnCatalog::cluster: bad id"};
  }
  return clusters_[id.value()];
}

Cluster& CdnCatalog::cluster_mutable(ClusterId id) {
  return const_cast<Cluster&>(static_cast<const CdnCatalog*>(this)->cluster(id));
}

std::span<const ClusterId> CdnCatalog::clusters_of(CdnId id) const {
  return cdn(id).clusters;
}

std::vector<net::Vantage> CdnCatalog::vantages(const geo::World& world) const {
  (void)world;
  std::vector<net::Vantage> out;
  out.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    out.push_back(net::Vantage{cluster.city, cluster.salt});
  }
  return out;
}

void CdnCatalog::add_city_cdns(const geo::World& world, std::size_t count,
                               core::Rng& rng) {
  if (clusters_.empty()) {
    throw std::logic_error{"add_city_cdns: generate the base catalog first"};
  }
  // Location pool: existing cluster sites (paper §7.2 draws from the
  // PeeringDB location data, i.e. where CDNs already co-locate).
  const std::size_t base_cluster_count = clusters_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Cdn cdn;
    cdn.id = CdnId{static_cast<std::uint32_t>(cdns_.size())};
    cdn.name = "City CDN " + std::to_string(i + 1);
    cdn.model = DeploymentModel::kCityCentric;
    cdn.markup = config_.markup;
    cdns_.push_back(std::move(cdn));
    const geo::CityId city = clusters_[rng.below(base_cluster_count)].city;
    add_cluster(world, cdns_.back().id, city, rng);
  }
  apply_colocation_discount(world);
}

void CdnCatalog::apply_colocation_discount(const geo::World& world) {
  std::unordered_map<std::uint32_t, std::size_t> cdns_per_city;
  for (const auto& cluster : clusters_) {
    ++cdns_per_city[cluster.city.value()];
  }
  for (auto& cluster : clusters_) {
    const auto& country = world.country_of(cluster.city);
    const auto colocated = static_cast<double>(cdns_per_city[cluster.city.value()]);
    // Paper §5.1: colo cost decreases proportional to the log of the number
    // of CDNs in the location.
    cluster.colo_cost = config_.base_colo_cost * country.colo_cost_factor /
                        (1.0 + std::log(1.0 + colocated));
  }
}

}  // namespace vdx::cdn
