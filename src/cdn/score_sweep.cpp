#include "cdn/score_sweep.hpp"

#include <algorithm>

namespace vdx::cdn {

void score_sweep(const MenuLanes& lanes, double price_multiplier,
                 std::span<const double> background, SweepBuffer& out) {
  const std::size_t n = lanes.size();
  out.price.resize(n);
  out.spare.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.price[i] = lanes.unit_cost[i] * price_multiplier;
  }
  if (background.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      out.spare[i] = std::max(0.0, lanes.capacity[i]);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out.spare[i] = std::max(0.0, lanes.capacity[i] - background[lanes.cluster[i]]);
    }
  }
}

}  // namespace vdx::cdn
