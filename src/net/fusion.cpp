#include "net/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/stats.hpp"

namespace vdx::net {

double fuse_estimates(double cdn_estimate, double cdn_sigma,
                      std::optional<double> broker_estimate, double broker_sigma) {
  if (!(cdn_estimate > 0.0)) {
    throw std::invalid_argument{"fuse_estimates: estimates must be positive"};
  }
  if (!broker_estimate.has_value()) return cdn_estimate;
  if (!(*broker_estimate > 0.0)) {
    throw std::invalid_argument{"fuse_estimates: estimates must be positive"};
  }
  // Lognormal observations: the MLE of the true log-score is the inverse-
  // variance weighted mean of the log-estimates.
  const double w_cdn = 1.0 / (cdn_sigma * cdn_sigma);
  const double w_broker = 1.0 / (broker_sigma * broker_sigma);
  const double fused_log = (w_cdn * std::log(cdn_estimate) +
                            w_broker * std::log(*broker_estimate)) /
                           (w_cdn + w_broker);
  return std::exp(fused_log);
}

FusionReport evaluate_fusion(const geo::World& world, const MappingTable& truth,
                             const VantageNoise& noise, core::Rng& rng) {
  if (!(noise.broker_coverage >= 0.0 && noise.broker_coverage <= 1.0)) {
    throw std::invalid_argument{"VantageNoise: broker_coverage outside [0,1]"};
  }

  std::vector<double> cdn_errors;
  std::vector<double> broker_errors;
  std::vector<double> fused_errors;
  std::size_t improved = 0;
  std::size_t covered = 0;
  std::size_t pairs = 0;

  for (const geo::City& city : world.cities()) {
    for (std::size_t v = 0; v < truth.vantage_count(); ++v) {
      const double t = truth.score(city.id, v);
      ++pairs;

      const double cdn_estimate = t * rng.lognormal(0.0, noise.cdn_sigma);
      std::optional<double> broker_estimate;
      if (rng.chance(noise.broker_coverage)) {
        broker_estimate = t * rng.lognormal(0.0, noise.broker_sigma);
        ++covered;
        broker_errors.push_back(std::abs(*broker_estimate - t) / t);
      }
      const double fused = fuse_estimates(cdn_estimate, noise.cdn_sigma,
                                          broker_estimate, noise.broker_sigma);

      const double cdn_error = std::abs(cdn_estimate - t) / t;
      const double fused_error = std::abs(fused - t) / t;
      cdn_errors.push_back(cdn_error);
      fused_errors.push_back(fused_error);
      if (fused_error < cdn_error) ++improved;
    }
  }

  FusionReport report;
  report.pairs = pairs;
  report.broker_covered_pairs = covered;
  report.cdn_only_error = core::median(cdn_errors).value_or(0.0);
  report.broker_only_error = core::median(broker_errors).value_or(0.0);
  report.fused_error = core::median(fused_errors).value_or(0.0);
  report.improved_fraction =
      pairs > 0 ? static_cast<double>(improved) / static_cast<double>(pairs) : 0.0;
  return report;
}

}  // namespace vdx::net
