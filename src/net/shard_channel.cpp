#include "net/shard_channel.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include <unistd.h>

namespace vdx::net {
namespace {

/// Largest frame the stream framing will accept; mirrors the shard codec's
/// payload bound so a corrupted length prefix cannot trigger a huge alloc.
constexpr std::uint32_t kMaxStreamFrame = 257u * 1024u * 1024u;

[[nodiscard]] core::Status unavailable(const std::string& what) {
  return core::Status::failure(core::Errc::kUnavailable, what);
}

}  // namespace

std::vector<core::Result<std::vector<std::uint8_t>>> ShardTransport::broadcast(
    std::span<const std::vector<std::uint8_t>> requests) {
  std::vector<core::Result<std::vector<std::uint8_t>>> out;
  out.reserve(requests.size());
  for (std::size_t s = 0; s < requests.size(); ++s) {
    out.push_back(roundtrip(s, requests[s]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// InprocShardTransport
// ---------------------------------------------------------------------------

InprocShardTransport::InprocShardTransport(std::size_t shards, HandlerFactory factory,
                                           core::ThreadPool* pool)
    : factory_(std::move(factory)), pool_(pool) {
  if (shards == 0) throw std::invalid_argument{"InprocShardTransport: 0 shards"};
  if (!factory_) throw std::invalid_argument{"InprocShardTransport: null factory"};
  handlers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) handlers_.push_back(factory_(s));
}

core::Result<std::vector<std::uint8_t>> InprocShardTransport::roundtrip(
    std::size_t shard, std::span<const std::uint8_t> request) {
  if (shard >= handlers_.size()) {
    return core::Result<std::vector<std::uint8_t>>::failure(
        core::Errc::kInvalidArgument, "inproc transport: shard out of range");
  }
  if (!handlers_[shard]) {
    return core::Result<std::vector<std::uint8_t>>::failure(
        core::Errc::kUnavailable, "inproc transport: worker killed");
  }
  return handlers_[shard](request);
}

void InprocShardTransport::kill(std::size_t shard) {
  if (shard < handlers_.size()) handlers_[shard] = nullptr;
}

core::Status InprocShardTransport::respawn(std::size_t shard) {
  if (shard >= handlers_.size()) {
    return core::Status::failure(core::Errc::kInvalidArgument,
                                 "inproc transport: shard out of range");
  }
  handlers_[shard] = factory_(shard);
  return core::ok_status();
}

bool InprocShardTransport::alive(std::size_t shard) const noexcept {
  return shard < handlers_.size() && static_cast<bool>(handlers_[shard]);
}

std::vector<core::Result<std::vector<std::uint8_t>>> InprocShardTransport::broadcast(
    std::span<const std::vector<std::uint8_t>> requests) {
  if (pool_ == nullptr || requests.size() < 2) {
    return ShardTransport::broadcast(requests);
  }
  using R = core::Result<std::vector<std::uint8_t>>;
  std::vector<R> out(requests.size(), R::failure(core::Errc::kUnavailable,
                                                 "inproc broadcast: not run"));
  pool_->for_indexed(requests.size(), [&](std::size_t s) {
    out[s] = roundtrip(s, requests[s]);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] core::Status write_all(int fd, const std::uint8_t* data,
                                     std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // coordinator with SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string{"shard channel write: "} + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return core::ok_status();
}

[[nodiscard]] core::Status read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string{"shard channel read: "} + std::strerror(errno));
    }
    if (n == 0) return unavailable("shard channel read: peer hung up");
    got += static_cast<std::size_t>(n);
  }
  return core::ok_status();
}

}  // namespace

core::Status write_frame_fd(int fd, std::span<const std::uint8_t> bytes) {
  if (fd < 0) return unavailable("shard channel write: closed fd");
  std::uint8_t header[4];
  const auto size = static_cast<std::uint32_t>(bytes.size());
  header[0] = static_cast<std::uint8_t>(size & 0xFF);
  header[1] = static_cast<std::uint8_t>((size >> 8) & 0xFF);
  header[2] = static_cast<std::uint8_t>((size >> 16) & 0xFF);
  header[3] = static_cast<std::uint8_t>((size >> 24) & 0xFF);
  if (auto status = write_all(fd, header, sizeof header); !status.ok()) return status;
  return write_all(fd, bytes.data(), bytes.size());
}

core::Result<std::vector<std::uint8_t>> read_frame_fd(int fd) {
  using R = core::Result<std::vector<std::uint8_t>>;
  if (fd < 0) return R::failure(core::Errc::kUnavailable, "shard channel read: closed fd");
  std::uint8_t header[4];
  if (auto status = read_all(fd, header, sizeof header); !status.ok()) {
    return R{status.error()};
  }
  const std::uint32_t size = static_cast<std::uint32_t>(header[0]) |
                             (static_cast<std::uint32_t>(header[1]) << 8) |
                             (static_cast<std::uint32_t>(header[2]) << 16) |
                             (static_cast<std::uint32_t>(header[3]) << 24);
  if (size > kMaxStreamFrame) {
    return R::failure(core::Errc::kCorruptFrame,
                      "shard channel read: frame length lie");
  }
  std::vector<std::uint8_t> bytes(size);
  if (size > 0) {
    if (auto status = read_all(fd, bytes.data(), size); !status.ok()) {
      return R{status.error()};
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// ProcessShardTransport
// ---------------------------------------------------------------------------

ProcessShardTransport::ProcessShardTransport(std::size_t shards, WorkerMain worker_main)
    : worker_main_(std::move(worker_main)) {
  if (shards == 0) throw std::invalid_argument{"ProcessShardTransport: 0 shards"};
  if (!worker_main_) {
    throw std::invalid_argument{"ProcessShardTransport: null worker_main"};
  }
  workers_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    if (auto status = spawn(s); !status.ok()) {
      for (std::size_t k = 0; k < s; ++k) kill(k);
      throw std::runtime_error{"ProcessShardTransport: " + status.error().message};
    }
  }
}

ProcessShardTransport::~ProcessShardTransport() {
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    // Closing our end EOFs the worker's serve loop; it exits on its own.
    if (workers_[s].fd >= 0) ::close(workers_[s].fd);
    workers_[s].fd = -1;
    reap(s);
  }
}

core::Status ProcessShardTransport::spawn(std::size_t shard) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return unavailable(std::string{"socketpair: "} + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return unavailable(std::string{"fork: "} + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Drop every fd that belongs to the parent's side of the world:
    // our parent end, and both ends of every sibling (holding a sibling's
    // parent-end open would defeat its EOF-on-coordinator-death shutdown).
    ::close(fds[0]);
    for (const Worker& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
    }
    int code = 1;
    try {
      code = worker_main_(shard, fds[1]);
    } catch (...) {
      code = 1;
    }
    // Never unwind into the parent's stack (gtest teardown, atexit).
    ::_exit(code);
  }
  ::close(fds[1]);
  workers_[shard].fd = fds[0];
  workers_[shard].pid = pid;
  return core::ok_status();
}

void ProcessShardTransport::reap(std::size_t shard) noexcept {
  Worker& w = workers_[shard];
  if (w.pid > 0) {
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  w.pid = -1;
}

core::Result<std::vector<std::uint8_t>> ProcessShardTransport::roundtrip(
    std::size_t shard, std::span<const std::uint8_t> request) {
  using R = core::Result<std::vector<std::uint8_t>>;
  if (shard >= workers_.size()) {
    return R::failure(core::Errc::kInvalidArgument,
                      "process transport: shard out of range");
  }
  Worker& w = workers_[shard];
  if (w.fd < 0) {
    return R::failure(core::Errc::kUnavailable, "process transport: worker killed");
  }
  if (auto status = write_frame_fd(w.fd, request); !status.ok()) {
    return R{status.error()};
  }
  return read_frame_fd(w.fd);
}

void ProcessShardTransport::kill(std::size_t shard) {
  if (shard >= workers_.size()) return;
  Worker& w = workers_[shard];
  if (w.pid > 0) ::kill(w.pid, SIGKILL);
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  reap(shard);
}

core::Status ProcessShardTransport::respawn(std::size_t shard) {
  if (shard >= workers_.size()) {
    return core::Status::failure(core::Errc::kInvalidArgument,
                                 "process transport: shard out of range");
  }
  kill(shard);
  return spawn(shard);
}

bool ProcessShardTransport::alive(std::size_t shard) const noexcept {
  return shard < workers_.size() && workers_[shard].fd >= 0;
}

int ProcessShardTransport::worker_pid(std::size_t shard) const noexcept {
  return shard < workers_.size() ? workers_[shard].pid : -1;
}

std::vector<core::Result<std::vector<std::uint8_t>>>
ProcessShardTransport::broadcast(std::span<const std::vector<std::uint8_t>> requests) {
  using R = core::Result<std::vector<std::uint8_t>>;
  std::vector<R> out(requests.size(), R::failure(core::Errc::kUnavailable,
                                                 "process broadcast: not run"));
  const std::size_t n = std::min(requests.size(), workers_.size());
  // Leg 1: every live worker gets its request before we block on any reply.
  std::vector<bool> wrote(requests.size(), false);
  for (std::size_t s = 0; s < n; ++s) {
    Worker& w = workers_[s];
    if (w.fd < 0) {
      out[s] = R::failure(core::Errc::kUnavailable, "process transport: worker killed");
      continue;
    }
    if (auto status = write_frame_fd(w.fd, requests[s]); !status.ok()) {
      out[s] = R{status.error()};
      continue;
    }
    wrote[s] = true;
  }
  // Leg 2: collect responses in shard order.
  for (std::size_t s = 0; s < n; ++s) {
    if (wrote[s]) out[s] = read_frame_fd(workers_[s].fd);
  }
  for (std::size_t s = n; s < requests.size(); ++s) {
    out[s] = R::failure(core::Errc::kInvalidArgument,
                        "process transport: shard out of range");
  }
  return out;
}

}  // namespace vdx::net
