// Shard transports: how the exchange coordinator reaches its worker shards
// (DESIGN.md §14).
//
// The contract is a strict request/response RPC over opaque frame bytes —
// the transport moves bytes, the market layer owns the codec, and chaos
// injection happens *above* this interface (so both backends see the
// identical fault stream and stay byte-identical under a fixed seed).
//
// Two interchangeable backends:
//   - InprocShardTransport: workers are in-process handlers (deterministic
//     default; supports dispatching one batch across a ThreadPool).
//   - ProcessShardTransport: each worker is a fork()ed child on a
//     socketpair, speaking [u32 length][bytes] framing — the `vdxd --shard`
//     topology. kill() delivers a real SIGKILL; respawn() forks a fresh
//     worker for the coordinator-driven resume path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "core/result.hpp"

namespace vdx::net {

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  [[nodiscard]] virtual std::size_t shard_count() const noexcept = 0;

  /// One request -> response exchange with `shard`. Fails with
  /// Errc::kUnavailable when the worker is gone (killed process, dropped
  /// handler) and Errc::kInvalidArgument on an out-of-range shard.
  [[nodiscard]] virtual core::Result<std::vector<std::uint8_t>> roundtrip(
      std::size_t shard, std::span<const std::uint8_t> request) = 0;

  /// Hard-kills the worker (SIGKILL for processes, handler drop in-process);
  /// the shard answers kUnavailable until respawn().
  virtual void kill(std::size_t shard) = 0;

  /// Brings a killed worker back with fresh, empty state (the coordinator
  /// re-establishes context and restores from checkpoints above this layer).
  [[nodiscard]] virtual core::Status respawn(std::size_t shard) = 0;

  [[nodiscard]] virtual bool alive(std::size_t shard) const noexcept = 0;

  /// One request per shard (requests.size() must equal shard_count()),
  /// answered in shard order. The default walks shards serially; backends
  /// override to overlap the legs — the process transport writes every
  /// request before reading any response, the in-process transport can fan
  /// handlers out across a ThreadPool. Per-shard failures land in the
  /// matching slot; the batch itself always returns shard_count() entries.
  [[nodiscard]] virtual std::vector<core::Result<std::vector<std::uint8_t>>>
  broadcast(std::span<const std::vector<std::uint8_t>> requests);
};

/// Workers as in-process request handlers. A handler takes the request
/// frame's bytes and returns the response frame's bytes; the factory builds
/// the handler for a shard (and is re-invoked by respawn(), which is what
/// makes an in-process "kill" lose state exactly like a dead process).
class InprocShardTransport final : public ShardTransport {
 public:
  using Handler =
      std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;
  using HandlerFactory = std::function<Handler(std::size_t shard)>;

  /// `pool` (optional, non-owning) parallelises broadcast() across shards —
  /// handlers must then be mutually thread-safe (workers own disjoint state,
  /// so the shard workers are). Null keeps everything on the calling thread.
  InprocShardTransport(std::size_t shards, HandlerFactory factory,
                       core::ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t shard_count() const noexcept override {
    return handlers_.size();
  }
  [[nodiscard]] core::Result<std::vector<std::uint8_t>> roundtrip(
      std::size_t shard, std::span<const std::uint8_t> request) override;
  void kill(std::size_t shard) override;
  [[nodiscard]] core::Status respawn(std::size_t shard) override;
  [[nodiscard]] bool alive(std::size_t shard) const noexcept override;
  [[nodiscard]] std::vector<core::Result<std::vector<std::uint8_t>>> broadcast(
      std::span<const std::vector<std::uint8_t>> requests) override;

 private:
  HandlerFactory factory_;
  std::vector<Handler> handlers_;
  core::ThreadPool* pool_ = nullptr;
};

/// Length-prefixed stream framing shared by the process transport and the
/// worker serve loop: [u32 length, little-endian][length bytes]. Handles
/// partial reads/writes and EINTR; a peer hangup reads as kUnavailable.
[[nodiscard]] core::Status write_frame_fd(int fd, std::span<const std::uint8_t> bytes);
[[nodiscard]] core::Result<std::vector<std::uint8_t>> read_frame_fd(int fd);

/// Workers as fork()ed child processes, one AF_UNIX socketpair each.
class ProcessShardTransport final : public ShardTransport {
 public:
  /// Runs inside the forked child: serve request/response frames on `fd`
  /// until EOF or shutdown, then return the exit code. The transport
  /// _exit()s with that code — the child never unwinds into the parent's
  /// stack (atexit handlers, test harness teardown).
  using WorkerMain = std::function<int(std::size_t shard, int fd)>;

  /// Forks one worker per shard. Throws std::runtime_error when a
  /// socketpair or fork fails outright at construction.
  ProcessShardTransport(std::size_t shards, WorkerMain worker_main);
  ~ProcessShardTransport() override;

  [[nodiscard]] std::size_t shard_count() const noexcept override {
    return workers_.size();
  }
  [[nodiscard]] core::Result<std::vector<std::uint8_t>> roundtrip(
      std::size_t shard, std::span<const std::uint8_t> request) override;
  /// SIGKILL + reap. Idempotent.
  void kill(std::size_t shard) override;
  [[nodiscard]] core::Status respawn(std::size_t shard) override;
  [[nodiscard]] bool alive(std::size_t shard) const noexcept override;
  /// Pipelined: writes every shard's request first, then reads responses in
  /// shard order — the workers crunch concurrently while the coordinator
  /// stays single-threaded.
  [[nodiscard]] std::vector<core::Result<std::vector<std::uint8_t>>> broadcast(
      std::span<const std::vector<std::uint8_t>> requests) override;

  /// Child pid (tests assert the process actually died); -1 when dead.
  [[nodiscard]] int worker_pid(std::size_t shard) const noexcept;

 private:
  struct Worker {
    int fd = -1;
    int pid = -1;
  };

  [[nodiscard]] core::Status spawn(std::size_t shard);
  void reap(std::size_t shard) noexcept;

  WorkerMain worker_main_;
  std::vector<Worker> workers_;
};

}  // namespace vdx::net
