// Internet mapping data: client-city x vantage score table.
//
// Reproduces the paper's CDN mapping dataset (§3.1): a score estimating
// performance between blocks of clients and candidate clusters, measured
// periodically. Some pairs are unmeasured; per the paper (§5.1) missing
// scores are extrapolated "by computing a linear regression of scores with
// respect to client-cluster distance". Table 1's alternative-cluster
// statistic is computed from this table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "geo/world.hpp"
#include "net/performance.hpp"

namespace vdx::net {

/// A measurement endpoint (one CDN cluster's vantage). `salt` decorrelates
/// clusters that share a city so co-located clusters still differ slightly.
struct Vantage {
  geo::CityId city;
  std::uint64_t salt = 0;
};

struct MappingConfig {
  /// Probability that a given (city, vantage) pair was actually measured.
  /// Unmeasured pairs get regression-extrapolated scores.
  double measured_fraction = 0.85;
  /// Relative tolerance defining an "alternative with similar performance"
  /// (paper Table 1 uses "within 25% of the best").
  double similar_tolerance = 0.25;
};

/// Table 1 row data: how often >= k alternative clusters with similar scores
/// exist, demand-weighted over client cities.
struct AlternativeStats {
  /// fraction_with_at_least[k] = demand-weighted fraction of cities that have
  /// >= k+1 alternatives (beyond the best) within tolerance. Size 4.
  std::vector<double> fraction_with_at_least;
  /// Demand-weighted mean number of similar clusters (including the best).
  double mean_similar_clusters = 0.0;
};

/// Dense score table over client cities x vantages.
class MappingTable {
 public:
  /// Measures every (city, vantage) pair with the path model, drops pairs to
  /// simulate measurement gaps, then fills gaps via the paper's
  /// score-vs-distance linear regression.
  [[nodiscard]] static MappingTable measure(const geo::World& world,
                                            std::span<const Vantage> vantages,
                                            const PathModel& model,
                                            const MappingConfig& config, core::Rng& rng);

  [[nodiscard]] std::size_t city_count() const noexcept { return city_count_; }
  [[nodiscard]] std::size_t vantage_count() const noexcept { return vantage_count_; }

  /// Score of the (city, vantage) path; extrapolated where unmeasured.
  [[nodiscard]] double score(geo::CityId city, std::size_t vantage) const;
  /// Whether the pair was directly measured (false -> regression fill).
  [[nodiscard]] bool measured(geo::CityId city, std::size_t vantage) const;

  /// The regression used for extrapolation (nullopt if everything was
  /// measured or the fit was degenerate).
  [[nodiscard]] const std::optional<core::LinearFit>& extrapolation_fit() const noexcept {
    return fit_;
  }

  /// Indices (into `subset`) of vantages whose score is within
  /// (1 + tolerance) x best score for `city`, best first.
  [[nodiscard]] std::vector<std::size_t> similar_vantages(
      geo::CityId city, std::span<const std::size_t> subset, double tolerance) const;

  /// Demand-weighted Table 1 statistics over a subset of vantages (one CDN's
  /// clusters). `max_alternatives` bounds the reported "at least k" ladder.
  [[nodiscard]] AlternativeStats alternative_stats(const geo::World& world,
                                                   std::span<const std::size_t> subset,
                                                   double tolerance,
                                                   std::size_t max_alternatives = 4) const;

 private:
  MappingTable(std::size_t cities, std::size_t vantages);

  [[nodiscard]] std::size_t index(geo::CityId city, std::size_t vantage) const;

  std::size_t city_count_ = 0;
  std::size_t vantage_count_ = 0;
  std::vector<double> scores_;
  std::vector<std::uint8_t> measured_;
  std::optional<core::LinearFit> fit_;
};

}  // namespace vdx::net
