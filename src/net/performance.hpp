// Network performance model: latency, loss, and the CDN "score".
//
// Substitution note (DESIGN.md §2): the paper consumes a major CDN's
// internet-mapping data — a score per {client IP block, candidate cluster}
// that is "a simple function of latency and packet loss", measured by pings
// from clusters to gateway routers. We model path latency as speed-of-light
// propagation plus lognormal access jitter, loss as a distance-correlated
// rare event, and combine them with the classic goodput-inspired penalty
// (score grows with RTT and with sqrt(loss)). Only *relative* scores matter
// to any consumer in the paper's pipeline.
#pragma once

#include <cstdint>

#include "core/ids.hpp"
#include "core/rng.hpp"
#include "geo/geo_point.hpp"

namespace vdx::net {

/// Measured characteristics of one network path.
struct PathQuality {
  double latency_ms = 0.0;
  double loss_rate = 0.0;  // in [0, 1]
};

/// Tunable parameters of the synthetic path model.
struct PathModelConfig {
  /// Round-trip propagation: ms of RTT per km of great-circle distance
  /// (fiber at ~200 km/ms one way -> 0.01 ms RTT/km).
  double rtt_ms_per_km = 0.01;
  /// Median last-mile/access latency added to every path (ms).
  double access_latency_ms = 8.0;
  /// Sigma of the lognormal multiplicative jitter applied to latency.
  double latency_jitter_sigma = 0.25;
  /// Baseline loss rate on a short healthy path.
  double base_loss = 0.001;
  /// Additional loss per km of distance (more hops, more congestion).
  double loss_per_km = 2.0e-7;
  /// Hard cap on loss rate.
  double max_loss = 0.05;
  /// Weight of sqrt(loss) in the score relative to latency.
  double loss_score_weight = 600.0;
};

/// Deterministic synthetic path model. The same (a, b, salt) triple always
/// yields the same quality: jitter is derived by hashing the endpoints, so
/// every component of the simulator observes a consistent network.
class PathModel {
 public:
  explicit PathModel(PathModelConfig config = {}, std::uint64_t seed = 7);

  [[nodiscard]] PathQuality quality(const geo::GeoPoint& client,
                                    const geo::GeoPoint& endpoint,
                                    std::uint64_t endpoint_salt) const;

  /// The CDN score for a path; lower is better.
  [[nodiscard]] double score(const PathQuality& q) const;

  /// Convenience: score of the (client, endpoint, salt) path.
  [[nodiscard]] double score(const geo::GeoPoint& client, const geo::GeoPoint& endpoint,
                             std::uint64_t endpoint_salt) const;

  [[nodiscard]] const PathModelConfig& config() const noexcept { return config_; }

 private:
  PathModelConfig config_;
  std::uint64_t seed_;
};

}  // namespace vdx::net
